// Figure 10 (appendix B): Karousos performance for MOTD under the read-heavy
// (90% reads) workload — (a) server overhead, (b) verification time, (c)
// advice size.
#include "bench/figure_common.h"

int main() {
  using namespace karousos;
  PrintHeader("Figure 10: MOTD, 90% reads");
  FigureOptions options;
  FigureSpec spec{"motd", WorkloadKind::kReadHeavy};
  PrintServerOverhead(spec, options);
  options.reps = 3;
  PrintVerification(spec, options);
  PrintAdviceSize(spec, options);
  return 0;
}
