// Figure 7: Karousos verification time vs the sequential re-executor and the
// Orochi-JS baselines, on the 600-request workloads.
#include "bench/figure_common.h"

int main() {
  using namespace karousos;
  PrintHeader("Figure 7: verification time vs baselines");
  FigureOptions options;
  options.reps = 3;
  PrintVerification({"motd", WorkloadKind::kWriteHeavy}, options);
  PrintVerification({"stacks", WorkloadKind::kReadHeavy}, options);
  PrintVerification({"wiki", WorkloadKind::kWikiMix}, options);
  return 0;
}
