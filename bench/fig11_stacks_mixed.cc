// Figure 11 (appendix B): Karousos performance for the stack-dump logging
// application under the mixed (50/50) workload — (a) server overhead, (b)
// verification time, (c) advice size.
#include "bench/figure_common.h"

int main() {
  using namespace karousos;
  PrintHeader("Figure 11: stacks, mixed workload");
  FigureOptions options;
  FigureSpec spec{"stacks", WorkloadKind::kMixed};
  PrintServerOverhead(spec, options);
  options.reps = 3;
  PrintVerification(spec, options);
  PrintAdviceSize(spec, options);
  return 0;
}
