// Figure 12 (appendix B): Karousos performance for the stack-dump logging
// application under the write-heavy (90% writes) workload — (a) server
// overhead, (b) verification time, (c) advice size.
#include "bench/figure_common.h"

int main() {
  using namespace karousos;
  PrintHeader("Figure 12: stacks, 90% writes");
  FigureOptions options;
  FigureSpec spec{"stacks", WorkloadKind::kWriteHeavy};
  PrintServerOverhead(spec, options);
  options.reps = 3;
  PrintVerification(spec, options);
  PrintAdviceSize(spec, options);
  return 0;
}
