// Epoch-streaming memory benchmark: serves stacks at 600 requests, then
// audits the same (trace, advice) pair one-shot and epoch-streamed at epoch
// sizes {1, 7, 50}, reporting the peak resident advice bytes — the one-shot
// number is the whole serialized advice; the streamed number is the high-water
// mark of (current slice + continuity imports + carries) the AuditSession
// holds between epochs. The headline claim: epoch-50 peak strictly below the
// one-shot footprint at the same verdict.
//
// Usage: epoch_audit [output.json]
#include <cstdio>
#include <string>
#include <vector>

#include "src/audit/audit.h"
#include "src/audit/stream.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

struct Row {
  std::string mode;  // "oneshot" or "epoch-N".
  uint64_t epoch_size = 0;
  uint64_t epochs = 0;
  size_t peak_resident_bytes = 0;
  double seconds = 0;
  bool accepted = false;
};

int Main(int argc, char** argv) {
  std::string out_path = argc > 1 ? argv[1] : "BENCH_epoch_audit.json";
  const size_t kRequests = 600;

  WorkloadConfig wl;
  wl.app = "stacks";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = kRequests;
  wl.seed = 7;
  wl.connections = 15;
  std::vector<Value> inputs = GenerateWorkload(wl);

  AppSpec app = MakeStacksApp();
  ServerConfig config;
  config.concurrency = 15;
  config.seed = 7;
  Server server(*app.program, config);
  ServerRunResult run = server.Run(inputs);

  std::printf("=== Epoch-streamed audit: peak resident advice ===\n");
  std::printf("(stacks, %zu requests; advice total %zu B)\n", kRequests,
              run.advice.MeasureSize().total);
  std::printf("%-10s %8s %8s %16s %10s\n", "mode", "epochs", "size", "peak resident", "audit (s)");

  std::vector<Row> rows;

  {
    AppSpec fresh = MakeStacksApp();
    AuditResult audit = AuditOnly(fresh, run.trace, run.advice,
                                  VerifierConfig{IsolationLevel::kSerializable, 1});
    Row row;
    row.mode = "oneshot";
    row.epochs = 1;
    // The one-shot verifier holds the entire advice resident for the whole
    // audit; its footprint is the full serialized advice.
    row.peak_resident_bytes = run.advice.MeasureSize().total;
    row.seconds = audit.profile.total_seconds;
    row.accepted = audit.accepted;
    rows.push_back(row);
    std::printf("%-10s %8llu %8s %14zu B %10.4f\n", row.mode.c_str(),
                static_cast<unsigned long long>(row.epochs), "-", row.peak_resident_bytes,
                row.seconds);
  }

  for (uint64_t epoch_size : {uint64_t{1}, uint64_t{7}, uint64_t{50}}) {
    AppSpec fresh = MakeStacksApp();
    StreamAuditResult streamed =
        AuditStreamed(fresh, run.trace, run.advice,
                      VerifierConfig{IsolationLevel::kSerializable, 1}, epoch_size);
    Row row;
    row.mode = "epoch-" + std::to_string(epoch_size);
    row.epoch_size = epoch_size;
    row.epochs = streamed.epochs;
    row.peak_resident_bytes = streamed.peak_resident_advice_bytes;
    row.seconds = streamed.audit.profile.total_seconds;
    row.accepted = streamed.audit.accepted;
    rows.push_back(row);
    std::printf("%-10s %8llu %8llu %14zu B %10.4f\n", row.mode.c_str(),
                static_cast<unsigned long long>(row.epochs),
                static_cast<unsigned long long>(epoch_size), row.peak_resident_bytes,
                row.seconds);
    if (!streamed.audit.accepted) {
      std::fprintf(stderr, "BUG: streamed audit rejected at epoch size %llu: %s\n",
                   static_cast<unsigned long long>(epoch_size),
                   streamed.audit.reason.c_str());
      return 1;
    }
  }

  const Row& oneshot = rows.front();
  const Row& epoch50 = rows.back();
  if (!oneshot.accepted) {
    std::fprintf(stderr, "BUG: one-shot audit rejected\n");
    return 1;
  }
  if (epoch50.peak_resident_bytes >= oneshot.peak_resident_bytes) {
    std::fprintf(stderr, "BUG: epoch-50 peak (%zu B) not below one-shot (%zu B)\n",
                 epoch50.peak_resident_bytes, oneshot.peak_resident_bytes);
    return 1;
  }
  std::printf("\nepoch-50 peak is %.1f%% of the one-shot advice footprint\n",
              100.0 * static_cast<double>(epoch50.peak_resident_bytes) /
                  static_cast<double>(oneshot.peak_resident_bytes));

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "failed to open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"epoch_audit\",\n  \"app\": \"stacks\",\n"
                    "  \"requests\": %zu,\n  \"rows\": [\n",
               kRequests);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"epoch_size\": %llu, \"epochs\": %llu, "
                 "\"peak_resident_bytes\": %zu, \"seconds\": %.6f, \"accepted\": %s}%s\n",
                 r.mode.c_str(), static_cast<unsigned long long>(r.epoch_size),
                 static_cast<unsigned long long>(r.epochs), r.peak_resident_bytes, r.seconds,
                 r.accepted ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace karousos

int main(int argc, char** argv) { return karousos::Main(argc, argv); }
