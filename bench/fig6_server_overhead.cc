// Figure 6: Karousos server vs unmodified server, processing time for 480
// post-warmup requests, for the workloads with the largest overheads —
// MOTD write-heavy, stacks read-heavy, and the wiki mixed workload.
#include "bench/figure_common.h"

int main() {
  using namespace karousos;
  PrintHeader("Figure 6: advice-collection overhead at the server");
  FigureOptions options;
  PrintServerOverhead({"motd", WorkloadKind::kWriteHeavy}, options);
  PrintServerOverhead({"stacks", WorkloadKind::kReadHeavy}, options);
  PrintServerOverhead({"wiki", WorkloadKind::kWikiMix}, options);
  return 0;
}
