// Figure 6: Karousos server vs unmodified server — processing time for the
// 480 post-warmup requests of a 600-request run, for the workloads with the
// largest overheads (MOTD write-heavy, stacks read-heavy, wiki mixed), plus
// the per-request record latency distribution (p50/p99) and throughput in
// both modes. The tracked quantity is overhead_seconds = karousos − off: the
// wall-clock cost of advice collection itself, which is what the record-path
// optimizations attack.
//
// Usage: fig6_server_overhead [output.json] [--compare baseline.json] [--quick]
//
// With --compare, each row additionally carries baseline_overhead_seconds and
// overhead_speedup (baseline overhead / this build's overhead), joined
// against the baseline file's (app, concurrency) rows. --quick restricts the
// sweep to concurrency 15 with 3 reps for CI. tools/bench_diff.py diffs two
// output files and gates on overhead regressions.
//
// This file must also compile against the pre-optimization tree (to produce
// the --compare baseline from an older checkout), so every use of the
// latency-measurement API added alongside this benchmark is guarded with
// `if constexpr (requires ...)` inside a template.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/common/json.h"
#include "src/server/server.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

struct Row {
  std::string app;
  int concurrency = 0;
  double off_seconds = 0;
  double karousos_seconds = 0;
  double overhead_seconds = 0;
  double ratio = 0;
  double off_p50_ms = 0;
  double off_p99_ms = 0;
  double karousos_p50_ms = 0;
  double karousos_p99_ms = 0;
  double off_rps = 0;
  double karousos_rps = 0;
  double baseline_overhead_seconds = 0;  // 0 = no baseline row matched.
};

struct BenchSpec {
  std::string app;
  WorkloadKind kind;
};

AppSpec MakeApp(const std::string& name) {
  if (name == "motd") {
    return MakeMotdApp();
  }
  if (name == "stacks") {
    return MakeStacksApp();
  }
  return MakeWikiApp();
}

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

double PercentileMs(const std::vector<double>& sorted_seconds, double p) {
  if (sorted_seconds.empty()) {
    return 0;
  }
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_seconds.size() - 1));
  return sorted_seconds[idx] * 1e3;
}

// Both guards are templates so the discarded branch is never instantiated —
// the pre-optimization ServerConfig/ServerRunResult lack these members and
// this benchmark must still build there for --compare baselines.
template <typename Config>
void EnableLatencyCapture(Config& config) {
  if constexpr (requires { config.measure_request_latencies; }) {
    config.measure_request_latencies = true;
  }
}

template <typename Result>
std::vector<double> TakeLatencies(Result& result, size_t warmup) {
  if constexpr (requires { result.request_latencies; }) {
    std::vector<double>& lat = result.request_latencies;
    if (lat.size() <= warmup) {
      return {};
    }
    return std::vector<double>(lat.begin() + static_cast<long>(warmup), lat.end());
  } else {
    (void)warmup;
    return {};
  }
}

struct ModeStats {
  double seconds = 0;  // Median post-warmup serve time across reps.
  double p50_ms = 0;   // Pooled post-warmup request latencies across reps.
  double p99_ms = 0;
  double rps = 0;
};

ModeStats RunMode(const BenchSpec& spec, CollectMode mode, int concurrency, size_t requests,
                  size_t warmup, int reps) {
  WorkloadConfig wl;
  wl.app = spec.app;
  wl.kind = spec.kind;
  wl.requests = requests;
  wl.seed = 7;
  wl.connections = concurrency;
  std::vector<Value> inputs = GenerateWorkload(wl);

  std::vector<double> times;
  std::vector<double> latencies;
  for (int rep = 0; rep < reps; ++rep) {
    AppSpec app = MakeApp(spec.app);
    ServerConfig config;
    config.mode = mode;
    config.concurrency = concurrency;
    config.seed = 7;
    config.warmup_requests = warmup;
    EnableLatencyCapture(config);
    Server server(*app.program, config);
    ServerRunResult run = server.Run(inputs);
    times.push_back(run.serve_seconds);
    std::vector<double> rep_latencies = TakeLatencies(run, warmup);
    latencies.insert(latencies.end(), rep_latencies.begin(), rep_latencies.end());
  }

  ModeStats stats;
  stats.seconds = Median(times);
  std::sort(latencies.begin(), latencies.end());
  stats.p50_ms = PercentileMs(latencies, 0.50);
  stats.p99_ms = PercentileMs(latencies, 0.99);
  stats.rps = stats.seconds > 0 ? static_cast<double>(requests - warmup) / stats.seconds : 0;
  return stats;
}

// Baseline rows are keyed by (app, concurrency); overhead_seconds is the
// record-path cost being tracked across builds.
std::vector<Row> LoadBaseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "warning: cannot read baseline %s; skipping compare\n", path.c_str());
    return {};
  }
  std::stringstream ss;
  ss << in.rdbuf();
  JsonParseError error;
  std::optional<Value> doc = ParseJson(ss.str(), &error);
  if (!doc || !doc->is_map()) {
    std::fprintf(stderr, "warning: malformed baseline %s; skipping compare\n", path.c_str());
    return {};
  }
  std::vector<Row> rows;
  const Value& json_rows = doc->Field("rows");
  if (!json_rows.is_list()) {
    return rows;
  }
  for (const Value& r : json_rows.AsList()) {
    Row row;
    row.app = r.Field("app").StringOr("");
    row.concurrency = static_cast<int>(r.Field("concurrency").IntOr(0));
    const Value& overhead = r.Field("overhead_seconds");
    row.overhead_seconds =
        overhead.is_double() ? overhead.AsDouble() : static_cast<double>(overhead.IntOr(0));
    rows.push_back(std::move(row));
  }
  return rows;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_fig6_server_overhead.json";
  std::string baseline_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  const size_t kRequests = 600;
  const size_t kWarmup = 120;
  const int reps = quick ? 3 : 5;
  const std::vector<int> concurrencies = quick ? std::vector<int>{15}
                                               : std::vector<int>{1, 4, 15, 30, 60};
  const BenchSpec specs[] = {
      {"motd", WorkloadKind::kWriteHeavy},
      {"stacks", WorkloadKind::kReadHeavy},
      {"wiki", WorkloadKind::kWikiMix},
  };

  std::vector<Row> baseline;
  if (!baseline_path.empty()) {
    baseline = LoadBaseline(baseline_path);
  }

  std::printf("=== Figure 6: advice-collection overhead at the server ===\n");
  std::printf("(%zu requests, first %zu warmup; medians of %d reps%s)\n", kRequests, kWarmup,
              reps, quick ? "; --quick" : "");

  std::vector<Row> rows;
  for (const BenchSpec& spec : specs) {
    std::printf("\n[%s] workload=\"%s\"\n", spec.app.c_str(), WorkloadKindName(spec.kind));
    std::printf("%6s %9s %9s %9s %7s %9s %9s %9s %9s %9s\n", "conc", "off (s)", "krsos (s)",
                "ovhd (s)", "ratio", "off p50", "off p99", "k p50", "k p99", "k req/s");
    for (int concurrency : concurrencies) {
      ModeStats off = RunMode(spec, CollectMode::kOff, concurrency, kRequests, kWarmup, reps);
      ModeStats krs =
          RunMode(spec, CollectMode::kKarousos, concurrency, kRequests, kWarmup, reps);

      Row row;
      row.app = spec.app;
      row.concurrency = concurrency;
      row.off_seconds = off.seconds;
      row.karousos_seconds = krs.seconds;
      row.overhead_seconds = krs.seconds - off.seconds;
      row.ratio = off.seconds > 0 ? krs.seconds / off.seconds : 0;
      row.off_p50_ms = off.p50_ms;
      row.off_p99_ms = off.p99_ms;
      row.karousos_p50_ms = krs.p50_ms;
      row.karousos_p99_ms = krs.p99_ms;
      row.off_rps = off.rps;
      row.karousos_rps = krs.rps;
      for (const Row& b : baseline) {
        if (b.app == row.app && b.concurrency == row.concurrency) {
          row.baseline_overhead_seconds = b.overhead_seconds;
        }
      }
      rows.push_back(row);
      std::printf("%6d %9.4f %9.4f %9.4f %6.2fx %9.3f %9.3f %9.3f %9.3f %9.0f", concurrency,
                  row.off_seconds, row.karousos_seconds, row.overhead_seconds, row.ratio,
                  row.off_p50_ms, row.off_p99_ms, row.karousos_p50_ms, row.karousos_p99_ms,
                  row.karousos_rps);
      if (row.baseline_overhead_seconds > 0 && row.overhead_seconds > 0) {
        std::printf("   (overhead %.2fx lower than baseline)",
                    row.baseline_overhead_seconds / row.overhead_seconds);
      }
      std::printf("\n");
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "failed to open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"fig6_server_overhead\",\n  \"requests\": %zu,\n"
               "  \"warmup\": %zu,\n  \"reps\": %d,\n  \"rows\": [\n",
               kRequests, kWarmup, reps);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"app\": \"%s\", \"concurrency\": %d, \"off_seconds\": %.6f, "
                 "\"karousos_seconds\": %.6f, \"overhead_seconds\": %.6f, \"ratio\": %.4f, "
                 "\"off_p50_ms\": %.4f, \"off_p99_ms\": %.4f, \"karousos_p50_ms\": %.4f, "
                 "\"karousos_p99_ms\": %.4f, \"off_rps\": %.0f, \"karousos_rps\": %.0f",
                 r.app.c_str(), r.concurrency, r.off_seconds, r.karousos_seconds,
                 r.overhead_seconds, r.ratio, r.off_p50_ms, r.off_p99_ms, r.karousos_p50_ms,
                 r.karousos_p99_ms, r.off_rps, r.karousos_rps);
    if (r.baseline_overhead_seconds > 0 && r.overhead_seconds > 0) {
      std::fprintf(out,
                   ", \"baseline_overhead_seconds\": %.6f, \"overhead_speedup\": %.3f",
                   r.baseline_overhead_seconds,
                   r.baseline_overhead_seconds / r.overhead_seconds);
    }
    std::fprintf(out, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace karousos

int main(int argc, char** argv) { return karousos::Main(argc, argv); }
