// Wire front-end benchmark: sustained request throughput and client-observed
// wire latency (p50/p99) through the epoll front-end over a Unix-domain
// socket, per app and worker count, plus the slow-client bounded-memory
// scenario (a client that floods requests without reading responses must be
// read-disabled, keeping resident per-connection bytes near the high
// watermark instead of growing with the backlog).
//
// Usage: net_wire [output.json] [--quick]   (--quick: 150 requests, 1 rep)
//
// Hard-fails on its own if any shard produced over the wire fails its audit,
// if the slow-client flood never triggers backpressure, or if peak resident
// connection memory exceeds high watermark + one read chunk + one response
// frame — so running the binary is itself the correctness gate; bench_diff
// gates the throughput/latency numbers against the committed baseline.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/audit/audit.h"
#include "src/net/client.h"
#include "src/net/wire_server.h"
#include "src/workload/wire_load.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

struct Row {
  std::string app;
  size_t workers = 0;
  size_t requests = 0;
  size_t connections = 0;
  double wire_rps = 0;
  double wire_p50_ms = 0;
  double wire_p99_ms = 0;
  double serve_seconds = 0;
  // The same workload through the same socket path with advice collection
  // off: the wire-level record overhead is what karousos costs end-to-end
  // when the transport, framing, and scheduling are all held constant.
  double wire_off_rps = 0;
  double wire_record_overhead = 0;  // wire_off_rps / wire_rps (1.0 = free).
};

AppSpec MakeApp(const std::string& name) {
  if (name == "stacks") {
    return MakeStacksApp();
  }
  if (name == "auction") {
    return MakeAuctionApp();
  }
  return MakeMotdApp();
}

double MedianOf(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double PercentileMs(std::vector<double> seconds, double pct) {
  std::sort(seconds.begin(), seconds.end());
  size_t idx = static_cast<size_t>(pct * static_cast<double>(seconds.size() - 1));
  return seconds[idx] * 1000.0;
}

std::string UniqueSocketPath(const char* tag) {
  static int counter = 0;
  return "unix:/tmp/karousos_bench_" + std::to_string(getpid()) + "_" + tag + "_" +
         std::to_string(counter++) + ".sock";
}

struct OneRun {
  bool ok = false;
  double rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double serve_seconds = 0;
};

// One server + one load run over a fresh unix socket. In karousos mode every
// wire shard must still audit clean; in off mode there is no advice to audit
// — that run is the transport-only baseline.
OneRun MeasureOnce(const char* name, const OpenLoopWorkload& workload, size_t workers,
                   size_t connections, size_t requests, CollectMode mode, size_t pipeline) {
  OneRun out;
  AppSpec app = MakeApp(name);
  WireServerConfig wc;
  wc.listen = UniqueSocketPath(name);
  wc.workers = workers;
  wc.batch = false;
  wc.server.concurrency = 4;
  wc.server.seed = 21;
  wc.server.mode = mode;
  WireServer server(*app.program, wc);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "start failed (%s): %s\n", name, error.c_str());
    return out;
  }
  WireLoadOptions lo;
  lo.connections = connections;
  lo.batch = false;
  lo.pipeline = pipeline;
  WireLoadReport load = RunWireLoad(server.bound_address(), workload, lo);
  if (!load.ok) {
    std::fprintf(stderr, "load failed (%s): %s\n", name, load.error.c_str());
    return out;
  }
  WireServerReport report = server.Wait();
  if (!report.ok) {
    std::fprintf(stderr, "serve failed (%s): %s\n", name, report.error.c_str());
    return out;
  }
  // Every shard served over the wire must still audit clean: the wire path
  // may reorder admissions but never the recorded facts.
  if (mode == CollectMode::kKarousos) {
    for (const WireShardResult& shard : report.shards) {
      AuditResult audit =
          AuditOnly(app, shard.run.trace, shard.run.advice, IsolationLevel::kSerializable);
      if (!audit.accepted) {
        std::fprintf(stderr, "BUG: wire shard %zu (%s, %zu workers) rejected: %s\n",
                     shard.worker, name, workers, audit.reason.c_str());
        return out;
      }
    }
  }
  out.rps = static_cast<double>(requests) / load.wall_seconds;
  out.p50_ms = PercentileMs(load.latency_seconds, 0.50);
  out.p99_ms = PercentileMs(load.latency_seconds, 0.99);
  out.serve_seconds = report.serve_seconds;
  out.ok = true;
  return out;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_net_wire.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  const size_t kRequests = quick ? 150 : 600;
  const int kReps = quick ? 1 : 3;
  const size_t kConnections = 4;

  struct BenchApp {
    const char* name;
    WorkloadKind kind;
  };
  constexpr BenchApp kApps[] = {
      {"motd", WorkloadKind::kMixed},
      {"stacks", WorkloadKind::kMixed},
      {"auction", WorkloadKind::kAuctionMix},
  };

  std::printf("=== Wire front-end: throughput and latency over unix socket ===\n");
  std::printf("(%zu requests, %zu connections, live mode)\n", kRequests, kConnections);
  std::printf("%-8s %8s %12s %10s %10s %12s %10s %9s\n", "app", "workers", "req/s", "p50 (ms)",
              "p99 (ms)", "serve (s)", "off req/s", "overhead");

  std::vector<Row> rows;
  for (const BenchApp& bench_app : kApps) {
    for (size_t workers : {size_t{1}, size_t{4}}) {
      WorkloadConfig wl;
      wl.app = bench_app.name;
      wl.kind = bench_app.kind;
      wl.requests = kRequests;
      wl.seed = 7;
      wl.connections = static_cast<int>(kConnections);
      wl.arrival = ArrivalPattern::kClosed;
      OpenLoopWorkload workload = GenerateOpenLoop(wl);

      std::vector<double> rps, p50, p99, serve, off_rps;
      for (int rep = 0; rep < kReps; ++rep) {
        OneRun on = MeasureOnce(bench_app.name, workload, workers, kConnections, kRequests,
                                CollectMode::kKarousos, /*pipeline=*/0);
        if (!on.ok) {
          return 1;
        }
        OneRun off = MeasureOnce(bench_app.name, workload, workers, kConnections, kRequests,
                                 CollectMode::kOff, /*pipeline=*/0);
        if (!off.ok) {
          return 1;
        }
        rps.push_back(on.rps);
        p50.push_back(on.p50_ms);
        p99.push_back(on.p99_ms);
        serve.push_back(on.serve_seconds);
        off_rps.push_back(off.rps);
      }

      Row row;
      row.app = bench_app.name;
      row.workers = workers;
      row.requests = kRequests;
      row.connections = kConnections;
      row.wire_rps = MedianOf(rps);
      row.wire_p50_ms = MedianOf(p50);
      row.wire_p99_ms = MedianOf(p99);
      row.serve_seconds = MedianOf(serve);
      row.wire_off_rps = MedianOf(off_rps);
      row.wire_record_overhead = row.wire_rps > 0 ? row.wire_off_rps / row.wire_rps : 0.0;
      rows.push_back(row);
      std::printf("%-8s %8zu %12.0f %10.3f %10.3f %12.4f %10.0f %8.2fx\n", row.app.c_str(),
                  row.workers, row.wire_rps, row.wire_p50_ms, row.wire_p99_ms,
                  row.serve_seconds, row.wire_off_rps, row.wire_record_overhead);
    }
  }

  // Pipeline window sweep: the same closed-loop motd workload through 4
  // workers at per-connection windows 1 (strict RPC), 8 (pipelined), and 0
  // (unbounded — the default discipline above). The delta between 1 and 8 is
  // what request pipelining buys once per-request wire round-trips stop
  // serializing the schedule.
  struct PipeRow {
    size_t pipeline = 0;
    double wire_rps = 0;
    double wire_p50_ms = 0;
  };
  std::vector<PipeRow> pipe_rows;
  {
    WorkloadConfig wl;
    wl.app = "motd";
    wl.kind = WorkloadKind::kMixed;
    wl.requests = kRequests;
    wl.seed = 7;
    wl.connections = static_cast<int>(kConnections);
    wl.arrival = ArrivalPattern::kClosed;
    OpenLoopWorkload workload = GenerateOpenLoop(wl);
    for (size_t pipeline : {size_t{1}, size_t{8}, size_t{0}}) {
      std::vector<double> rps, p50;
      for (int rep = 0; rep < kReps; ++rep) {
        OneRun run = MeasureOnce("motd", workload, 4, kConnections, kRequests,
                                 CollectMode::kKarousos, pipeline);
        if (!run.ok) {
          return 1;
        }
        rps.push_back(run.rps);
        p50.push_back(run.p50_ms);
      }
      PipeRow row;
      row.pipeline = pipeline;
      row.wire_rps = MedianOf(rps);
      row.wire_p50_ms = MedianOf(p50);
      pipe_rows.push_back(row);
    }
    std::printf("pipeline (motd, 4 workers): window 1 %.0f req/s, window 8 %.0f req/s "
                "(%.2fx), unbounded %.0f req/s\n",
                pipe_rows[0].wire_rps, pipe_rows[1].wire_rps,
                pipe_rows[0].wire_rps > 0 ? pipe_rows[1].wire_rps / pipe_rows[0].wire_rps : 0.0,
                pipe_rows[2].wire_rps);
  }

  // Slow-client scenario: flood ~8KB set-requests without reading a single
  // response, then finally drain. Backpressure must engage (>= 1
  // read-disable) and peak resident bytes must stay near the watermark.
  const size_t kHighWatermark = 64 * 1024;
  const size_t kSlowRequests = 200;
  size_t slow_peak = 0;
  uint64_t slow_read_disables = 0;
  {
    AppSpec app = MakeApp("motd");
    WireServerConfig wc;
    wc.listen = UniqueSocketPath("slow");
    wc.workers = 1;
    wc.batch = false;
    wc.high_watermark = kHighWatermark;
    wc.server.concurrency = 2;
    wc.server.seed = 21;
    WireServer server(*app.program, wc);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "slow-client start failed: %s\n", error.c_str());
      return 1;
    }
    auto conn = WireConn::Connect(server.bound_address(), &error);
    if (conn == nullptr) {
      std::fprintf(stderr, "slow-client connect failed: %s\n", error.c_str());
      return 1;
    }
    ValueMap set_req;
    set_req.emplace("op", Value("set"));
    set_req.emplace("day", Value("monday"));
    set_req.emplace("msg", Value(std::string(8 * 1024, 'm')));
    const Value big(set_req);
    for (size_t i = 0; i < kSlowRequests; ++i) {
      if (!conn->SendRequest(i, big, &error)) {
        std::fprintf(stderr, "slow-client send failed: %s\n", error.c_str());
        return 1;
      }
    }
    for (size_t received = 0; received < kSlowRequests; ++received) {
      uint64_t seq = 0;
      Value value;
      if (!conn->ReadResponse(&seq, &value, 30000, &error)) {
        std::fprintf(stderr, "slow-client read failed: %s\n", error.c_str());
        return 1;
      }
    }
    if (!conn->SendShutdown(1, &error)) {
      std::fprintf(stderr, "slow-client shutdown failed: %s\n", error.c_str());
      return 1;
    }
    WireServerReport report = server.Wait();
    if (!report.ok || report.responses != kSlowRequests) {
      std::fprintf(stderr, "slow-client serve failed: %s\n", report.error.c_str());
      return 1;
    }
    slow_peak = report.peak_connection_buffered_bytes;
    slow_read_disables = report.read_disables;
    std::printf("slow client: %zu x 8KB flood, high watermark %zu B -> peak %zu B, "
                "%llu read-disables\n",
                kSlowRequests, kHighWatermark, slow_peak,
                static_cast<unsigned long long>(slow_read_disables));
    if (slow_read_disables == 0) {
      std::fprintf(stderr, "BUG: slow-client flood never triggered backpressure\n");
      return 1;
    }
    // High watermark + one 16KB read chunk + one in-flight response frame;
    // an unbounded buffer would have held ~1.6MB.
    if (slow_peak > kHighWatermark + 64 * 1024) {
      std::fprintf(stderr, "BUG: peak resident %zu B exceeds watermark bound %zu B\n",
                   slow_peak, kHighWatermark + 64 * 1024);
      return 1;
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "failed to open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"net_wire\",\n  \"requests\": %zu,\n"
               "  \"connections\": %zu,\n  \"rows\": [\n",
               kRequests, kConnections);
  for (const Row& r : rows) {
    std::fprintf(out,
                 "    {\"app\": \"%s\", \"workers\": %zu, \"wire_rps\": %.0f, "
                 "\"wire_p50_ms\": %.4f, \"wire_p99_ms\": %.4f, \"serve_seconds\": %.6f, "
                 "\"wire_off_rps\": %.0f, \"wire_record_overhead\": %.4f},\n",
                 r.app.c_str(), r.workers, r.wire_rps, r.wire_p50_ms, r.wire_p99_ms,
                 r.serve_seconds, r.wire_off_rps, r.wire_record_overhead);
  }
  for (const PipeRow& r : pipe_rows) {
    std::fprintf(out,
                 "    {\"scenario\": \"pipeline\", \"app\": \"motd\", \"workers\": 4, "
                 "\"pipeline\": %zu, \"wire_rps\": %.0f, \"wire_p50_ms\": %.4f},\n",
                 r.pipeline, r.wire_rps, r.wire_p50_ms);
  }
  std::fprintf(out,
               "    {\"scenario\": \"slow_client\", \"high_watermark_bytes\": %zu, "
               "\"peak_buffered_bytes\": %zu, \"read_disables\": %llu}\n  ]\n}\n",
               kHighWatermark, slow_peak, static_cast<unsigned long long>(slow_read_disables));
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace karousos

int main(int argc, char** argv) { return karousos::Main(argc, argv); }
