// Ablation A3 (§5 design choice): handler labels make the A-order test a
// label-prefix check. The alternative — walking activator links through a
// parent map — is what an implementation without labels would do. This
// microbenchmark compares both on handler chains of varying depth.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "src/kem/label.h"
#include "src/kem/program.h"

namespace karousos {
namespace {

struct Tree {
  std::vector<HandlerId> chain;  // chain[0] is the root.
  std::unordered_map<HandlerId, HandlerId> parents;
  std::vector<HandlerLabel> labels;
};

Tree BuildChain(int depth) {
  Tree tree;
  HandlerId parent = kNoHandler;
  HandlerLabel label;
  for (int i = 0; i < depth; ++i) {
    HandlerId hid = ComputeHandlerId(DigestOf("f"), parent, static_cast<OpNum>(i + 1));
    tree.parents[hid] = parent;
    label.push_back(0);
    tree.chain.push_back(hid);
    tree.labels.push_back(label);
    parent = hid;
  }
  return tree;
}

void BM_AncestorViaLabelPrefix(benchmark::State& state) {
  Tree tree = BuildChain(static_cast<int>(state.range(0)));
  const HandlerLabel& root = tree.labels.front();
  const HandlerLabel& leaf = tree.labels.back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsLabelPrefix(root, leaf));
  }
}
BENCHMARK(BM_AncestorViaLabelPrefix)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_AncestorViaParentWalk(benchmark::State& state) {
  Tree tree = BuildChain(static_cast<int>(state.range(0)));
  HandlerId root = tree.chain.front();
  HandlerId leaf = tree.chain.back();
  for (auto _ : state) {
    // Walk activator links from the leaf until the root (or the top).
    HandlerId h = leaf;
    bool found = false;
    while (h != kNoHandler) {
      auto it = tree.parents.find(h);
      if (it == tree.parents.end()) {
        break;
      }
      h = it->second;
      if (h == root) {
        found = true;
        break;
      }
    }
    benchmark::DoNotOptimize(found);
  }
}
BENCHMARK(BM_AncestorViaParentWalk)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_RorderTestSiblings(benchmark::State& state) {
  HandlerLabel a{0, 1, 0};
  HandlerLabel b{0, 1, 1};
  OpRef opa{1, 10, 3};
  OpRef opb{1, 11, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(RConcurrent(opa, a, opb, b));
  }
}
BENCHMARK(BM_RorderTestSiblings);

}  // namespace
}  // namespace karousos
