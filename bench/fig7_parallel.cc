// Figure 7 companion: the parallel audit engine's thread sweep. Serves one
// multi-group workload per app, then audits the same (trace, advice) pair at
// 1, 2, 4, and all hardware threads, printing the speedup over the serial
// path and asserting that every thread count yields the same verdict and
// stats (the engine's determinism contract). Results are also written to
// BENCH_fig7_parallel.json in the working directory.
//
// Usage: fig7_parallel [output.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/audit/audit.h"
#include "src/common/pool.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

struct Row {
  std::string app;
  size_t groups = 0;
  unsigned threads = 0;
  double seconds = 0;
  double speedup = 1.0;
};

AppSpec MakeApp(const std::string& name) {
  if (name == "motd") {
    return MakeMotdApp();
  }
  if (name == "stacks") {
    return MakeStacksApp();
  }
  return MakeWikiApp();
}

double Now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_fig7_parallel.json";
  const size_t kRequests = 600;
  const int kReps = 3;
  std::vector<unsigned> sweep = {1, 2, 4};
  unsigned hw = WorkStealingPool::ResolveThreads(0);
  if (std::find(sweep.begin(), sweep.end(), hw) == sweep.end()) {
    sweep.push_back(hw);
  }
  // On a single-core host every "parallel" row is just the serial path plus
  // scheduling overhead; printing those ratios as speedups would be
  // misleading, so they are flagged here and suppressed in the table.
  const bool speedup_meaningful = hw > 1;

  std::printf("=== Figure 7 companion: parallel audit thread sweep ===\n");
  std::printf("HARDWARE THREADS: %u\n", hw);
  std::printf("(%zu requests per app; medians of %d reps)\n", kRequests, kReps);
  if (!speedup_meaningful) {
    std::printf("NOTE: single hardware thread -- speedup columns are not "
                "meaningful and are suppressed.\n");
  }

  std::vector<Row> rows;
  for (const std::string& name : {std::string("motd"), std::string("stacks"),
                                  std::string("wiki")}) {
    WorkloadConfig wl;
    wl.app = name;
    wl.kind = name == "wiki" ? WorkloadKind::kWikiMix : WorkloadKind::kMixed;
    wl.requests = kRequests;
    wl.seed = 7;
    wl.connections = 15;  // Many interleavings -> many distinct groups.
    std::vector<Value> inputs = GenerateWorkload(wl);

    AppSpec app = MakeApp(name);
    ServerConfig config;
    config.concurrency = 15;
    config.seed = 7;
    Server server(*app.program, config);
    ServerRunResult run = server.Run(inputs);

    AuditResult serial;
    double serial_seconds = 0;
    std::printf("\n[%s] %zu requests\n", name.c_str(), inputs.size());
    std::printf("%9s %12s %9s\n", "threads", "audit (s)", "speedup");
    for (unsigned threads : sweep) {
      std::vector<double> times;
      AuditResult audit;
      for (int rep = 0; rep < kReps; ++rep) {
        AppSpec fresh = MakeApp(name);
        double t0 = Now();
        audit = AuditOnly(fresh, run.trace, run.advice,
                          VerifierConfig{IsolationLevel::kSerializable, threads});
        times.push_back(Now() - t0);
      }
      if (!audit.accepted) {
        std::fprintf(stderr, "BUG: audit rejected at threads=%u: %s\n", threads,
                     audit.reason.c_str());
        return 1;
      }
      double median = Median(times);
      if (threads == 1) {
        serial = audit;
        serial_seconds = median;
      } else if (audit.stats.groups != serial.stats.groups ||
                 audit.stats.ops_executed != serial.stats.ops_executed ||
                 audit.stats.graph_edges != serial.stats.graph_edges) {
        std::fprintf(stderr, "BUG: stats diverge between threads=1 and threads=%u\n", threads);
        return 1;
      }
      Row row;
      row.app = name;
      row.groups = audit.stats.groups;
      row.threads = threads;
      row.seconds = median;
      row.speedup = median > 0 ? serial_seconds / median : 0.0;
      rows.push_back(row);
      if (speedup_meaningful) {
        std::printf("%9u %12.4f %8.2fx\n", threads, median, row.speedup);
      } else {
        std::printf("%9u %12.4f %9s\n", threads, median, "--");
      }
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "failed to open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"fig7_parallel\",\n  \"requests\": %zu,\n"
                    "  \"hardware_threads\": %u,\n  \"speedup_meaningful\": %s,\n  \"rows\": [\n",
               kRequests, hw, speedup_meaningful ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    // Emit speedup only when the host could actually run threads in
    // parallel; otherwise mark the row so downstream tooling (and readers)
    // don't average noise into a "scaling" number.
    if (speedup_meaningful) {
      std::fprintf(out,
                   "    {\"app\": \"%s\", \"groups\": %zu, \"threads\": %u, "
                   "\"seconds\": %.6f, \"speedup\": %.3f}%s\n",
                   r.app.c_str(), r.groups, r.threads, r.seconds, r.speedup,
                   i + 1 < rows.size() ? "," : "");
    } else {
      std::fprintf(out,
                   "    {\"app\": \"%s\", \"groups\": %zu, \"threads\": %u, "
                   "\"seconds\": %.6f, \"speedup\": null}%s\n",
                   r.app.c_str(), r.groups, r.threads, r.seconds,
                   i + 1 < rows.size() ? "," : "");
    }
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace karousos

int main(int argc, char** argv) { return karousos::Main(argc, argv); }
