// Audit hot-path benchmark: serves one workload per app (motd / stacks /
// wiki, 600 requests each), then audits the same (trace, advice) pair at
// threads ∈ {1, 4}, reporting the per-phase breakdown the built-in profiler
// (src/common/prof.h) collects — Preprocess / ReExec / Postprocess seconds —
// plus deduplicated ops/sec. The threads=1 rows are the serial hot-path
// numbers the PR-over-PR speedup tracking keys on.
//
// Usage: audit_hotpath [output.json] [--compare baseline.json]
//
// With --compare, each row additionally carries baseline_seconds and
// speedup_vs_baseline, joined against the baseline file's (app, threads)
// rows. tools/bench_diff.py performs the same join for any two BENCH files.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/audit/audit.h"
#include "src/common/json.h"
#include "src/common/pool.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

struct Row {
  std::string app;
  unsigned threads = 0;
  size_t groups = 0;
  size_t ops_executed = 0;
  double seconds = 0;
  double preprocess_seconds = 0;
  double reexec_seconds = 0;
  double postprocess_seconds = 0;
  double ops_per_second = 0;
  double baseline_seconds = 0;  // 0 = no baseline row matched.
};

AppSpec MakeApp(const std::string& name) {
  if (name == "motd") {
    return MakeMotdApp();
  }
  if (name == "stacks") {
    return MakeStacksApp();
  }
  return MakeWikiApp();
}

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

// Baseline rows are keyed by (app, threads); seconds is the total audit time.
std::vector<Row> LoadBaseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "warning: cannot read baseline %s; skipping compare\n", path.c_str());
    return {};
  }
  std::stringstream ss;
  ss << in.rdbuf();
  JsonParseError error;
  std::optional<Value> doc = ParseJson(ss.str(), &error);
  if (!doc || !doc->is_map()) {
    std::fprintf(stderr, "warning: malformed baseline %s; skipping compare\n", path.c_str());
    return {};
  }
  std::vector<Row> rows;
  const Value& json_rows = doc->Field("rows");
  if (!json_rows.is_list()) {
    return rows;
  }
  for (const Value& r : json_rows.AsList()) {
    Row row;
    row.app = r.Field("app").StringOr("");
    row.threads = static_cast<unsigned>(r.Field("threads").IntOr(0));
    const Value& secs = r.Field("seconds");
    row.seconds = secs.is_double() ? secs.AsDouble() : static_cast<double>(secs.IntOr(0));
    rows.push_back(std::move(row));
  }
  return rows;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_audit_hotpath.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      out_path = argv[i];
    }
  }
  const size_t kRequests = 600;
  const int kReps = 3;
  const std::vector<unsigned> sweep = {1, 4};
  std::vector<Row> baseline;
  if (!baseline_path.empty()) {
    baseline = LoadBaseline(baseline_path);
  }

  std::printf("=== Audit hot path: per-phase breakdown ===\n");
  std::printf("(%u hardware threads; %zu requests per app; medians of %d reps)\n",
              WorkStealingPool::ResolveThreads(0), kRequests, kReps);

  std::vector<Row> rows;
  for (const std::string& name : {std::string("motd"), std::string("stacks"),
                                  std::string("wiki")}) {
    WorkloadConfig wl;
    wl.app = name;
    wl.kind = name == "wiki" ? WorkloadKind::kWikiMix : WorkloadKind::kMixed;
    wl.requests = kRequests;
    wl.seed = 7;
    wl.connections = 15;
    std::vector<Value> inputs = GenerateWorkload(wl);

    AppSpec app = MakeApp(name);
    ServerConfig config;
    config.concurrency = 15;
    config.seed = 7;
    Server server(*app.program, config);
    ServerRunResult run = server.Run(inputs);

    std::printf("\n[%s] %zu requests\n", name.c_str(), inputs.size());
    std::printf("%8s %10s %9s %9s %9s %12s\n", "threads", "audit (s)", "pre (s)", "reexec",
                "post", "ops/sec");
    for (unsigned threads : sweep) {
      std::vector<double> times;
      AuditResult best;  // The rep whose total matches the median closest.
      double best_delta = 1e18;
      double median = 0;
      std::vector<AuditResult> reps;
      for (int rep = 0; rep < kReps; ++rep) {
        AppSpec fresh = MakeApp(name);
        AuditResult audit = AuditOnly(fresh, run.trace, run.advice,
                                      VerifierConfig{IsolationLevel::kSerializable, threads});
        if (!audit.accepted) {
          std::fprintf(stderr, "BUG: audit rejected at threads=%u: %s\n", threads,
                       audit.reason.c_str());
          return 1;
        }
        times.push_back(audit.profile.total_seconds);
        reps.push_back(std::move(audit));
      }
      median = Median(times);
      for (AuditResult& audit : reps) {
        double delta = std::abs(audit.profile.total_seconds - median);
        if (delta < best_delta) {
          best_delta = delta;
          best = std::move(audit);
        }
      }
      Row row;
      row.app = name;
      row.threads = threads;
      row.groups = best.stats.groups;
      row.ops_executed = best.stats.ops_executed;
      row.seconds = best.profile.total_seconds;
      row.preprocess_seconds = best.profile.preprocess_seconds;
      row.reexec_seconds = best.profile.reexec_seconds;
      row.postprocess_seconds = best.profile.postprocess_seconds;
      row.ops_per_second = best.profile.OpsPerSecond();
      for (const Row& b : baseline) {
        if (b.app == row.app && b.threads == row.threads) {
          row.baseline_seconds = b.seconds;
        }
      }
      rows.push_back(row);
      std::printf("%8u %10.4f %9.4f %9.4f %9.4f %12.0f", threads, row.seconds,
                  row.preprocess_seconds, row.reexec_seconds, row.postprocess_seconds,
                  row.ops_per_second);
      if (row.baseline_seconds > 0 && row.seconds > 0) {
        std::printf("   (%.2fx vs baseline)", row.baseline_seconds / row.seconds);
      }
      std::printf("\n");
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "failed to open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"audit_hotpath\",\n  \"requests\": %zu,\n"
                    "  \"hardware_threads\": %u,\n  \"rows\": [\n",
               kRequests, WorkStealingPool::ResolveThreads(0));
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"app\": \"%s\", \"threads\": %u, \"groups\": %zu, "
                 "\"ops_executed\": %zu, \"seconds\": %.6f, "
                 "\"preprocess_seconds\": %.6f, \"reexec_seconds\": %.6f, "
                 "\"postprocess_seconds\": %.6f, \"ops_per_second\": %.0f",
                 r.app.c_str(), r.threads, r.groups, r.ops_executed, r.seconds,
                 r.preprocess_seconds, r.reexec_seconds, r.postprocess_seconds,
                 r.ops_per_second);
    if (r.baseline_seconds > 0 && r.seconds > 0) {
      std::fprintf(out, ", \"baseline_seconds\": %.6f, \"speedup_vs_baseline\": %.3f",
                   r.baseline_seconds, r.baseline_seconds / r.seconds);
    }
    std::fprintf(out, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace karousos

int main(int argc, char** argv) { return karousos::Main(argc, argv); }
