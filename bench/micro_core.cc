// Micro-benchmarks of the core primitives the audit pipeline leans on:
// digests, Value encoding, graph cycle detection, the transactional store,
// and SIMD-on-demand multivalues.
#include <benchmark/benchmark.h>

#include "src/common/digest.h"
#include "src/common/graph.h"
#include "src/common/serde.h"
#include "src/common/value.h"
#include "src/multivalue/multivalue.h"
#include "src/txkv/store.h"

namespace karousos {
namespace {

void BM_DigestString(benchmark::State& state) {
  std::string s(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(DigestOf(s));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DigestString)->Arg(16)->Arg(256)->Arg(4096);

void BM_ValueDigest(benchmark::State& state) {
  ValueMap m;
  for (int i = 0; i < state.range(0); ++i) {
    m["key" + std::to_string(i)] = MakeList({i, "text", MakeMap({{"n", i}})});
  }
  Value v(std::move(m));
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.DigestValue());
  }
}
BENCHMARK(BM_ValueDigest)->Arg(4)->Arg(64);

void BM_ValueSerdeRoundTrip(benchmark::State& state) {
  ValueMap m;
  for (int i = 0; i < state.range(0); ++i) {
    m["key" + std::to_string(i)] = MakeList({i, "text"});
  }
  Value v(std::move(m));
  for (auto _ : state) {
    ByteWriter w;
    w.WriteValue(v);
    ByteReader r(w.bytes());
    benchmark::DoNotOptimize(r.ReadValue());
  }
}
BENCHMARK(BM_ValueSerdeRoundTrip)->Arg(4)->Arg(64);

void BM_GraphCycleDetect(benchmark::State& state) {
  DirectedGraph g;
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  for (uint64_t i = 0; i + 1 < n; ++i) {
    g.AddEdge(NodeKey{i, 0, 0}, NodeKey{i + 1, 0, 0});
    if (i % 7 == 0 && i + 8 < n) {
      g.AddEdge(NodeKey{i, 0, 0}, NodeKey{i + 8, 0, 0});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.HasCycle());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_GraphCycleDetect)->Arg(1000)->Arg(100000);

void BM_TxKvCommitCycle(benchmark::State& state) {
  TxKvStore store(IsolationLevel::kSerializable);
  uint64_t next = 1;
  for (auto _ : state) {
    RequestId rid = next;
    TxId tid = next * 1000;
    ++next;
    store.Begin(rid, tid);
    store.Put(rid, tid, 2, "key" + std::to_string(next % 64), Value(static_cast<int64_t>(next)));
    benchmark::DoNotOptimize(store.Get(rid, tid, "key" + std::to_string(next % 64)));
    store.Commit(rid, tid);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TxKvCommitCycle);

void BM_MultiValueZipCollapsed(benchmark::State& state) {
  MultiValue a(Value(1));
  MultiValue b(Value(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MvAdd(a, b));
  }
}
BENCHMARK(BM_MultiValueZipCollapsed);

void BM_MultiValueZipExpanded(benchmark::State& state) {
  std::vector<Value> lanes;
  for (int i = 0; i < state.range(0); ++i) {
    lanes.push_back(Value(i));
  }
  MultiValue a = MultiValue::Expanded(lanes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MvAdd(a, MultiValue(1)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MultiValueZipExpanded)->Arg(8)->Arg(64)->Arg(512);

}  // namespace
}  // namespace karousos
