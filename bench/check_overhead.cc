// Static-check overhead benchmark: what does the streaming model checker
// cost, standalone and as the audit's fast-reject pre-screen?
//
// Serves stacks at 600 requests, then at epoch sizes {1, 50, 0=∞} measures
// (median of 3): the standalone checker pass (CheckRun), the full streamed
// audit with the pre-screen on, and the same audit with it off. The verdict,
// reason, rule, and diagnostics must be identical with the pre-screen on and
// off, and on a clean run the pre-screen must add under 10% end-to-end.
// Final rows replay the KSEG mutation corpora (the fuzzer's stacks and
// auction seed families) through the standalone checker alone and report the
// fraction rejected without any re-execution.
//
// Usage: check_overhead [output.json] [--quick]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/analysis/check.h"
#include "src/analysis/kseg_mutate.h"
#include "src/analysis/shard_mutate.h"
#include "src/audit/stream.h"
#include "src/server/server.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

struct Row {
  uint64_t epoch_size = 0;
  uint64_t epochs = 0;
  double check_seconds = 0;
  double check_per_epoch_ms = 0;
  double audit_seconds = 0;
  double audit_no_prescreen_seconds = 0;
  double prescreen_overhead_pct = 0;
  bool accepted = false;
};

double Now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The audited work is deterministic and CPU-bound, so the fastest rep is the
// closest estimate of its true cost — medians of a 3-rep sample on a shared
// 1-core box still carry enough scheduler noise to swing the <10% overhead
// gate either way on a ~0.2s denominator.
double MinOf(const std::vector<double>& v) { return *std::min_element(v.begin(), v.end()); }

ServerRunResult Serve(const AppSpec& app, const char* name, WorkloadKind kind, size_t requests,
                      int concurrency) {
  WorkloadConfig wl;
  wl.app = name;
  wl.kind = kind;
  wl.requests = requests;
  wl.seed = 7;
  wl.connections = concurrency;
  ServerConfig config;
  config.concurrency = concurrency;
  config.seed = 7;
  Server server(*app.program, config);
  return server.Run(GenerateWorkload(wl));
}

struct FuzzCatch {
  size_t mutations = 0;
  size_t caught = 0;
  double fraction = 0;
};

// Static-catch fraction over a mutation corpus (checker alone, no replay).
FuzzCatch MeasureStaticCatch(const ServerRunResult& run, uint64_t epoch_size) {
  std::vector<KsegMutation> corpus = BuildMutationCorpus(run.trace, run.advice, epoch_size);
  FuzzCatch result;
  result.mutations = corpus.size();
  for (const KsegMutation& m : corpus) {
    if (!CheckSegmentStreams(m.trace_bytes, m.advice_bytes, epoch_size).ok) {
      ++result.caught;
    }
  }
  result.fraction = corpus.empty()
                        ? 0.0
                        : static_cast<double>(result.caught) / static_cast<double>(corpus.size());
  return result;
}

bool SameOutcome(const AuditResult& a, const AuditResult& b) {
  if (a.accepted != b.accepted || a.reason != b.reason || a.rule != b.rule ||
      a.diagnostics.size() != b.diagnostics.size()) {
    return false;
  }
  for (size_t i = 0; i < a.diagnostics.size(); ++i) {
    if (a.diagnostics[i].Format() != b.diagnostics[i].Format()) {
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_check_overhead.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  const size_t kRequests = quick ? 120 : 600;
  const int kReps = quick ? 1 : 5;

  AppSpec app = MakeStacksApp();
  ServerRunResult run = Serve(app, "stacks", WorkloadKind::kMixed, kRequests, 15);

  std::printf("=== Static model check: cost per epoch vs full audit ===\n");
  std::printf("(stacks, %zu requests)\n", kRequests);
  std::printf("%-10s %7s %11s %13s %11s %14s %10s\n", "epoch size", "epochs", "check (s)",
              "per-epoch ms", "audit (s)", "no-screen (s)", "overhead");

  std::vector<Row> rows;
  double total_on = 0, total_off = 0;
  for (uint64_t epoch_size : {uint64_t{1}, uint64_t{50}, uint64_t{0}}) {
    std::vector<double> check_times, on_times, off_times;
    CheckResult check;
    StreamAuditResult on, off;
    for (int rep = 0; rep < kReps; ++rep) {
      double t0 = Now();
      check = CheckRun(run.trace, run.advice, epoch_size);
      check_times.push_back(Now() - t0);

      VerifierConfig cfg{IsolationLevel::kSerializable, 1};
      t0 = Now();
      on = AuditStreamed(app, run.trace, run.advice, cfg, epoch_size);
      on_times.push_back(Now() - t0);

      cfg.prescreen = false;
      t0 = Now();
      off = AuditStreamed(app, run.trace, run.advice, cfg, epoch_size);
      off_times.push_back(Now() - t0);
    }
    if (!check.ok) {
      std::fprintf(stderr, "BUG: honest run failed the model check: %s\n", check.reason.c_str());
      return 1;
    }
    if (!on.audit.accepted) {
      std::fprintf(stderr, "BUG: audit rejected the honest run: %s\n", on.audit.reason.c_str());
      return 1;
    }
    if (!SameOutcome(on.audit, off.audit)) {
      std::fprintf(stderr,
                   "BUG: prescreen changed the verdict at epoch size %llu "
                   "(on: %s/%s, off: %s/%s)\n",
                   static_cast<unsigned long long>(epoch_size), on.audit.rule.c_str(),
                   on.audit.reason.c_str(), off.audit.rule.c_str(), off.audit.reason.c_str());
      return 1;
    }

    Row row;
    row.epoch_size = epoch_size;
    row.epochs = check.epochs;
    row.check_seconds = MinOf(check_times);
    row.check_per_epoch_ms = 1e3 * row.check_seconds / static_cast<double>(check.epochs);
    row.audit_seconds = MinOf(on_times);
    row.audit_no_prescreen_seconds = MinOf(off_times);
    row.prescreen_overhead_pct =
        100.0 * (row.audit_seconds - row.audit_no_prescreen_seconds) /
        row.audit_no_prescreen_seconds;
    row.accepted = on.audit.accepted;
    rows.push_back(row);
    total_on += row.audit_seconds;
    total_off += row.audit_no_prescreen_seconds;
    std::printf("%-10llu %7llu %11.4f %13.4f %11.4f %14.4f %9.1f%%\n",
                static_cast<unsigned long long>(epoch_size),
                static_cast<unsigned long long>(row.epochs), row.check_seconds,
                row.check_per_epoch_ms, row.audit_seconds, row.audit_no_prescreen_seconds,
                row.prescreen_overhead_pct);
  }
  // Gate the aggregate, not the per-row ratios: the epoch-50 and one-epoch
  // audits finish in ~0.2s, where this box's scheduler jitter alone swings a
  // per-row ratio by ~10 points either way. The summed denominator is
  // dominated by the 600-epoch run, which is long enough to be stable.
  const double total_overhead_pct = 100.0 * (total_on - total_off) / total_off;
  std::printf("prescreen overhead (all epoch sizes): %.1f%%\n", total_overhead_pct);
  if (total_overhead_pct >= 10.0) {
    std::fprintf(stderr, "BUG: aggregate prescreen overhead %.1f%% >= 10%%\n",
                 total_overhead_pct);
    return 1;
  }

  // Static-catch fractions over the two fuzz corpora (checker alone, no
  // replay); sized like tools/kseg_fuzz.cc so the corpora match the fuzzer's
  // seed families.
  ServerRunResult fuzz_run =
      quick ? std::move(run) : Serve(app, "stacks", WorkloadKind::kMixed, 63, 6);
  FuzzCatch stacks_catch = MeasureStaticCatch(fuzz_run, 7);
  std::printf("\nfuzz corpus [stacks]: %zu mutations, %zu caught statically (%.1f%%)\n",
              stacks_catch.mutations, stacks_catch.caught, 100.0 * stacks_catch.fraction);

  AppSpec auction_app = MakeAuctionApp();
  ServerRunResult auction_run =
      Serve(auction_app, "auction", WorkloadKind::kAuctionMix, 72, 12);
  FuzzCatch auction_catch = MeasureStaticCatch(auction_run, 8);
  std::printf("fuzz corpus [auction]: %zu mutations, %zu caught statically (%.1f%%)\n",
              auction_catch.mutations, auction_catch.caught, 100.0 * auction_catch.fraction);

  // Shard-axis corpus (src/analysis/shard_mutate.h): fraction of shard
  // file/boundary/artifact mutations rejected with a KAR-SEG rule by the
  // load/merge structural layer.
  FuzzCatch shard_catch;
  for (const ShardMutationOutcome& o :
       RunShardMutationCorpus(*app.program, fuzz_run.trace, fuzz_run.advice, 7,
                              ShardSpec{2, ShardMode::kHash})) {
    if (o.name.rfind("control:", 0) == 0) {
      continue;
    }
    ++shard_catch.mutations;
    if (o.rejected && !o.rule.empty()) {
      ++shard_catch.caught;
    }
  }
  shard_catch.fraction = shard_catch.mutations == 0
                             ? 0.0
                             : static_cast<double>(shard_catch.caught) /
                                   static_cast<double>(shard_catch.mutations);
  std::printf("fuzz corpus [shard]: %zu mutations, %zu caught statically (%.1f%%)\n",
              shard_catch.mutations, shard_catch.caught, 100.0 * shard_catch.fraction);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "failed to open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"check_overhead\",\n  \"app\": \"stacks\",\n"
               "  \"requests\": %zu,\n  \"rows\": [\n",
               kRequests);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"epoch_size\": %llu, \"epochs\": %llu, \"check_seconds\": %.6f, "
                 "\"check_per_epoch_ms\": %.6f, \"audit_seconds\": %.6f, "
                 "\"audit_no_prescreen_seconds\": %.6f, \"prescreen_overhead_pct\": %.3f, "
                 "\"accepted\": %s}%s\n",
                 static_cast<unsigned long long>(r.epoch_size),
                 static_cast<unsigned long long>(r.epochs), r.check_seconds,
                 r.check_per_epoch_ms, r.audit_seconds, r.audit_no_prescreen_seconds,
                 r.prescreen_overhead_pct, r.accepted ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"fuzz_static_catch\": {\"mutations_total\": %zu, "
               "\"mutations_caught_static\": %zu, \"static_catch_fraction\": %.4f},\n"
               "  \"fuzz_static_catch_auction\": {\"mutations_total\": %zu, "
               "\"mutations_caught_static\": %zu, \"static_catch_fraction\": %.4f},\n"
               "  \"fuzz_static_catch_shard\": {\"mutations_total\": %zu, "
               "\"mutations_caught_static\": %zu, \"static_catch_fraction\": %.4f}\n}\n",
               stacks_catch.mutations, stacks_catch.caught, stacks_catch.fraction,
               auction_catch.mutations, auction_catch.caught, auction_catch.fraction,
               shard_catch.mutations, shard_catch.caught, shard_catch.fraction);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace karousos

int main(int argc, char** argv) { return karousos::Main(argc, argv); }
