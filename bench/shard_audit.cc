// Sharded scale-out audit benchmark: real processes, real files.
//
// Serves stacks once through the CLI, then for each shard count K partitions
// the run (`karousos shard`), audits the K shard files as K concurrently
// fork/exec'd `karousos audit-shard` processes, and merges their verdict
// artifacts (`karousos audit-merge`). Per-process peak RSS comes from
// wait4()'s ru_maxrss — the kernel's number for the whole child, not an
// in-process estimate.
//
// The gate (enforced here and by tools/bench_diff.py over the JSON): at K=4
// the per-shard-process peak RSS must stay below the one-shot audit process's
// peak RSS at the same epoch size — the whole point of the shard axis is
// that each worker holds ~1/K of the advice-derived state. Wall-clock totals
// are recorded (hardware-dependent), not gated.
//
// Usage: shard_audit [output.json] [--quick] [--karousos-bin PATH]
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

namespace {

#ifndef KAROUSOS_CLI_DEFAULT
#define KAROUSOS_CLI_DEFAULT "tools/karousos"
#endif

double Now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ChildResult {
  int exit_code = -1;
  double seconds = 0;
  double max_rss_mb = 0;
};

pid_t Launch(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  pid_t pid = fork();
  if (pid == 0) {
    int devnull = open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      dup2(devnull, STDOUT_FILENO);
      close(devnull);
    }
    execv(argv[0], argv.data());
    std::fprintf(stderr, "execv %s: %s\n", argv[0], std::strerror(errno));
    _exit(127);
  }
  return pid;
}

ChildResult Await(pid_t pid, double t0) {
  ChildResult r;
  int status = 0;
  struct rusage ru;
  std::memset(&ru, 0, sizeof(ru));
  if (wait4(pid, &status, 0, &ru) != pid) {
    return r;
  }
  r.seconds = Now() - t0;
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  r.max_rss_mb = static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB.
  return r;
}

ChildResult RunChild(const std::vector<std::string>& args) {
  double t0 = Now();
  return Await(Launch(args), t0);
}

bool Check(const ChildResult& r, const char* what) {
  if (r.exit_code != 0) {
    std::fprintf(stderr, "BUG: %s exited %d\n", what, r.exit_code);
    return false;
  }
  return true;
}

struct KRow {
  uint32_t k = 0;
  double shard_seconds = 0;          // `karousos shard` (partitioning).
  double audit_parallel_seconds = 0; // Launch of first child -> exit of last.
  double merge_seconds = 0;
  double shard_peak_rss_mb = 0;      // Max over the K audit-shard processes.
  double merge_peak_rss_mb = 0;
};

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_shard_audit.json";
  std::string bin = KAROUSOS_CLI_DEFAULT;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--karousos-bin") == 0 && i + 1 < argc) {
      bin = argv[++i];
    } else {
      out_path = argv[i];
    }
  }
  const size_t kRequests = quick ? 300 : 1500;
  const uint64_t kEpochSize = 50;
  const std::vector<uint32_t> ks = quick ? std::vector<uint32_t>{1, 4}
                                         : std::vector<uint32_t>{1, 2, 4, 8};

  namespace fs = std::filesystem;
  fs::path dir = fs::path("bench_shard_audit.tmp");
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  const std::string trace = (dir / "trace.bin").string();
  const std::string advice = (dir / "advice.bin").string();

  std::printf("=== Sharded scale-out audit: K processes vs one-shot ===\n");
  std::printf("(stacks, %zu requests, epoch size %llu, bin %s)\n", kRequests,
              static_cast<unsigned long long>(kEpochSize), bin.c_str());

  ChildResult serve = RunChild({bin, "serve", "--app", "stacks", "--requests",
                                std::to_string(kRequests), "--concurrency", "15", "--seed", "7",
                                "--out-trace", trace, "--out-advice", advice});
  if (!Check(serve, "serve")) {
    return 1;
  }

  // One-shot oracle process: the unsharded streamed audit at the same epoch
  // size — the RSS bar every shard process must come in under.
  ChildResult one_shot = RunChild({bin, "audit", "--app", "stacks", "--trace", trace,
                                   "--advice", advice, "--epoch-size",
                                   std::to_string(kEpochSize)});
  if (!Check(one_shot, "one-shot audit")) {
    return 1;
  }
  std::printf("one-shot: %.3f s, peak RSS %.1f MB\n", one_shot.seconds, one_shot.max_rss_mb);
  std::printf("%-4s %10s %12s %10s %14s %14s\n", "K", "shard (s)", "audits (s)", "merge (s)",
              "shard RSS MB", "merge RSS MB");

  std::vector<KRow> rows;
  for (uint32_t k : ks) {
    fs::path shard_dir = dir / ("k" + std::to_string(k));
    fs::create_directories(shard_dir);

    KRow row;
    row.k = k;
    ChildResult shard = RunChild({bin, "shard", "--trace", trace, "--advice", advice,
                                  "--shards", std::to_string(k), "--epoch-size",
                                  std::to_string(kEpochSize), "--out-dir", shard_dir.string()});
    if (!Check(shard, "shard")) {
      return 1;
    }
    row.shard_seconds = shard.seconds;

    // Launch all K audit-shard processes before reaping any: the wall-clock
    // is the parallel span, the RSS numbers are per process regardless.
    double t0 = Now();
    std::vector<pid_t> pids;
    std::vector<std::string> artifacts;
    for (uint32_t i = 0; i < k; ++i) {
      std::string file = (shard_dir / ("shard" + std::to_string(i) + ".kseg")).string();
      std::string artifact = (shard_dir / ("shard" + std::to_string(i) + ".artifact")).string();
      artifacts.push_back(artifact);
      pids.push_back(Launch({bin, "audit-shard", "--app", "stacks", "--shard-file", file,
                             "--out", artifact}));
    }
    for (uint32_t i = 0; i < k; ++i) {
      ChildResult r = Await(pids[i], t0);
      if (!Check(r, "audit-shard")) {
        return 1;
      }
      row.shard_peak_rss_mb = std::max(row.shard_peak_rss_mb, r.max_rss_mb);
    }
    row.audit_parallel_seconds = Now() - t0;

    ChildResult merge =
        RunChild({bin, "audit-merge", "--in-dir", shard_dir.string()});
    if (!Check(merge, "audit-merge")) {
      return 1;
    }
    row.merge_seconds = merge.seconds;
    row.merge_peak_rss_mb = merge.max_rss_mb;
    rows.push_back(row);
    std::printf("%-4u %10.3f %12.3f %10.3f %14.1f %14.1f\n", k, row.shard_seconds,
                row.audit_parallel_seconds, row.merge_seconds, row.shard_peak_rss_mb,
                row.merge_peak_rss_mb);
  }

  const KRow* gate_row = nullptr;
  for (const KRow& row : rows) {
    if (row.k == 4) {
      gate_row = &row;
    }
  }
  int rc = 0;
  if (gate_row == nullptr) {
    std::fprintf(stderr, "BUG: no K=4 row to gate on\n");
    rc = 1;
  } else if (gate_row->shard_peak_rss_mb >= one_shot.max_rss_mb) {
    std::fprintf(stderr,
                 "GATE FAIL: K=4 per-shard peak RSS %.1f MB >= one-shot %.1f MB\n",
                 gate_row->shard_peak_rss_mb, one_shot.max_rss_mb);
    rc = 1;
  } else {
    std::printf("gate: K=4 per-shard peak RSS %.1f MB < one-shot %.1f MB (%.0f%%)\n",
                gate_row->shard_peak_rss_mb, one_shot.max_rss_mb,
                100.0 * gate_row->shard_peak_rss_mb / one_shot.max_rss_mb);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "failed to open %s\n", out_path.c_str());
    return 1;
  }
  double gate_rss = gate_row ? gate_row->shard_peak_rss_mb : 0.0;
  double gate_wall =
      gate_row ? gate_row->audit_parallel_seconds + gate_row->merge_seconds : 0.0;
  std::fprintf(out,
               "{\n  \"benchmark\": \"shard_audit\",\n  \"app\": \"stacks\",\n"
               "  \"requests\": %zu,\n  \"epoch_size\": %llu,\n"
               "  \"one_shot_peak_rss_mb\": %.2f,\n  \"one_shot_wallclock_s\": %.4f,\n"
               "  \"shard_peak_rss_mb\": %.2f,\n  \"shard_wallclock_s\": %.4f,\n"
               "  \"rows\": [\n",
               kRequests, static_cast<unsigned long long>(kEpochSize), one_shot.max_rss_mb,
               one_shot.seconds, gate_rss, gate_wall);
  for (size_t i = 0; i < rows.size(); ++i) {
    const KRow& r = rows[i];
    std::fprintf(out,
                 "    {\"k\": %u, \"shard_seconds\": %.4f, \"audit_parallel_seconds\": %.4f, "
                 "\"merge_seconds\": %.4f, \"shard_peak_rss_mb\": %.2f, "
                 "\"merge_peak_rss_mb\": %.2f}%s\n",
                 r.k, r.shard_seconds, r.audit_parallel_seconds, r.merge_seconds,
                 r.shard_peak_rss_mb, r.merge_peak_rss_mb, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  fs::remove_all(dir, ec);
  return rc;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
