// Storage-class advice benchmark: what do the KSEG codec stages (delta
// lanes, per-segment dictionaries, block compression) buy on the wire, and
// what do they cost on the clock?
//
// For each application (stacks, motd, auction) at 600 requests, epoch size
// 50: serve once per rep (record path), slice, and encode the segment
// streams raw and at each cumulative stage (lanes, lanes+dict, all). Reports
// stored bytes, bytes/request, the per-component raw composition, median
// encode and decode times for the full stack, and the codec's share of the
// end-to-end record+audit time. The compressed stream must audit-accept with
// a verdict identical to the raw stream's.
//
// Hard gates (BUG + nonzero exit): the full stack must at least halve the
// stacks advice stream, and encode+decode must stay under 15% of
// record+audit on every app.
//
// Usage: advice_size [output.json] [--quick]   (--quick: 1 rep instead of 3;
// sizes are deterministic either way, so the committed baseline's rows still
// match)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/analysis/check.h"
#include "src/audit/stream.h"
#include "src/common/kcodec.h"
#include "src/common/segment.h"
#include "src/server/rollover.h"
#include "src/server/server.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

constexpr uint64_t kEpochSize = 50;

struct BenchApp {
  const char* name;
  WorkloadKind kind;
  int concurrency;
};

constexpr BenchApp kApps[] = {
    {"stacks", WorkloadKind::kMixed, 15},
    {"motd", WorkloadKind::kWriteHeavy, 15},
    {"auction", WorkloadKind::kAuctionMix, 12},
};

struct Row {
  std::string app;
  size_t requests = 0;
  size_t raw_advice_bytes = 0;
  size_t lanes_advice_bytes = 0;
  size_t lanes_dict_advice_bytes = 0;
  size_t packed_advice_bytes = 0;
  size_t raw_trace_bytes = 0;
  size_t packed_trace_bytes = 0;
  double advice_ratio = 0;
  double trace_ratio = 0;
  double raw_advice_bytes_per_request = 0;
  double packed_advice_bytes_per_request = 0;
  // Raw composition of the advice monolith (plus serialized imports).
  size_t tags_bytes = 0;
  size_t handler_logs_bytes = 0;
  size_t var_logs_bytes = 0;
  size_t tx_logs_bytes = 0;
  size_t write_order_bytes = 0;
  size_t other_bytes = 0;
  size_t imports_bytes = 0;
  double record_seconds = 0;
  double audit_seconds = 0;
  double encode_seconds = 0;
  double decode_seconds = 0;
  double codec_overhead_pct = 0;
};

double Now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double MedianOf(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

AppSpec MakeApp(const std::string& name) {
  if (name == "stacks") {
    return MakeStacksApp();
  }
  if (name == "motd") {
    return MakeMotdApp();
  }
  return MakeAuctionApp();
}

// Decodes every frame of both streams (the verifier's read path, isolated
// from replay); returns false on any undecodable frame.
bool DecodeStreams(const std::vector<uint8_t>& trace_bytes,
                   const std::vector<uint8_t>& advice_bytes) {
  for (int which = 0; which < 2; ++which) {
    const std::vector<uint8_t>& bytes = which == 0 ? trace_bytes : advice_bytes;
    std::string error;
    auto reader = SegmentReader::FromBytes(bytes.data(), bytes.size(), &error);
    if (reader == nullptr) {
      return false;
    }
    SegmentRecord rec;
    while (reader->Next(&rec)) {
      if (rec.kind == SegmentKind::kTrace) {
        if (!DecodeTraceSegmentPayload(rec.payload, rec.flags)) {
          return false;
        }
      } else if (rec.kind == SegmentKind::kAdvice) {
        if (!DecodeAdviceSegmentPayload(rec.payload, rec.flags)) {
          return false;
        }
      }
    }
    if (!reader->ok()) {
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_advice_size.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  const size_t kRequests = 600;
  const int kReps = quick ? 1 : 3;

  const KsegCompression kLanes = KsegCompression{true, false, false};
  const KsegCompression kLanesDict = KsegCompression{true, true, false};
  const KsegCompression kAll = KsegCompression::All();

  std::printf("=== Storage-class advice: stored bytes and codec cost ===\n");
  std::printf("(%zu requests, epoch size %llu, %d rep%s)\n", kRequests,
              static_cast<unsigned long long>(kEpochSize), kReps, kReps == 1 ? "" : "s");

  std::vector<Row> rows;
  int bugs = 0;
  for (const BenchApp& spec : kApps) {
    AppSpec app = MakeApp(spec.name);
    WorkloadConfig wl;
    wl.app = spec.name;
    wl.kind = spec.kind;
    wl.requests = kRequests;
    wl.seed = 7;
    wl.connections = spec.concurrency;
    ServerConfig server_config;
    server_config.concurrency = spec.concurrency;
    server_config.seed = 7;

    std::vector<double> record_times, audit_times, encode_times, decode_times;
    ServerRunResult run;
    for (int rep = 0; rep < kReps; ++rep) {
      Server server(*app.program, server_config);
      double t0 = Now();
      run = server.Run(GenerateWorkload(wl));
      record_times.push_back(Now() - t0);
    }

    EpochSlices slices = SliceRun(run.trace, run.advice, kEpochSize);
    std::vector<uint8_t> packed_trace, packed_advice;
    for (int rep = 0; rep < kReps; ++rep) {
      double t0 = Now();
      packed_trace = EncodeTraceSegments(slices, kAll);
      packed_advice = EncodeAdviceSegments(slices, kAll);
      encode_times.push_back(Now() - t0);
    }
    const std::vector<uint8_t> raw_trace = EncodeTraceSegments(slices);
    const std::vector<uint8_t> raw_advice = EncodeAdviceSegments(slices);
    const std::vector<uint8_t> lanes_advice = EncodeAdviceSegments(slices, kLanes);
    const std::vector<uint8_t> lanes_dict_advice = EncodeAdviceSegments(slices, kLanesDict);

    for (int rep = 0; rep < kReps; ++rep) {
      double t0 = Now();
      if (!DecodeStreams(packed_trace, packed_advice)) {
        std::fprintf(stderr, "BUG: [%s] compressed stream failed to decode\n", spec.name);
        return 1;
      }
      decode_times.push_back(Now() - t0);
    }

    VerifierConfig cfg{IsolationLevel::kSerializable, 1};
    StreamAuditResult raw_audit, packed_audit;
    for (int rep = 0; rep < kReps; ++rep) {
      double t0 = Now();
      raw_audit = AuditSegments(app, raw_trace, raw_advice, cfg, kEpochSize);
      audit_times.push_back(Now() - t0);
    }
    packed_audit = AuditSegments(app, packed_trace, packed_advice, cfg, kEpochSize);
    if (!raw_audit.audit.accepted) {
      std::fprintf(stderr, "BUG: [%s] raw stream rejected: %s\n", spec.name,
                   raw_audit.audit.reason.c_str());
      return 1;
    }
    if (packed_audit.audit.accepted != raw_audit.audit.accepted ||
        packed_audit.audit.reason != raw_audit.audit.reason ||
        packed_audit.audit.rule != raw_audit.audit.rule) {
      std::fprintf(stderr, "BUG: [%s] compressed verdict differs from raw\n", spec.name);
      return 1;
    }

    Row row;
    row.app = spec.name;
    row.requests = kRequests;
    row.raw_advice_bytes = raw_advice.size();
    row.lanes_advice_bytes = lanes_advice.size();
    row.lanes_dict_advice_bytes = lanes_dict_advice.size();
    row.packed_advice_bytes = packed_advice.size();
    row.raw_trace_bytes = raw_trace.size();
    row.packed_trace_bytes = packed_trace.size();
    row.advice_ratio =
        static_cast<double>(row.raw_advice_bytes) / static_cast<double>(row.packed_advice_bytes);
    row.trace_ratio =
        static_cast<double>(row.raw_trace_bytes) / static_cast<double>(row.packed_trace_bytes);
    row.raw_advice_bytes_per_request =
        static_cast<double>(row.raw_advice_bytes) / static_cast<double>(kRequests);
    row.packed_advice_bytes_per_request =
        static_cast<double>(row.packed_advice_bytes) / static_cast<double>(kRequests);
    Advice::SizeBreakdown b = run.advice.MeasureSize();
    row.tags_bytes = b.tags;
    row.handler_logs_bytes = b.handler_logs;
    row.var_logs_bytes = b.var_logs;
    row.tx_logs_bytes = b.tx_logs;
    row.write_order_bytes = b.write_order;
    row.other_bytes = b.other;
    for (const EpochSegment& seg : slices.segments) {
      ByteWriter w;
      seg.imports.Serialize(&w);
      row.imports_bytes += w.size();
    }
    row.record_seconds = MedianOf(record_times);
    row.audit_seconds = MedianOf(audit_times);
    row.encode_seconds = MedianOf(encode_times);
    row.decode_seconds = MedianOf(decode_times);
    row.codec_overhead_pct = 100.0 * (row.encode_seconds + row.decode_seconds) /
                             (row.record_seconds + row.audit_seconds);
    rows.push_back(row);

    std::printf("\n[%s] advice: raw %zu B -> lanes %zu B -> +dict %zu B -> +block %zu B "
                "(%.2fx); trace: %zu -> %zu B (%.2fx)\n",
                spec.name, row.raw_advice_bytes, row.lanes_advice_bytes,
                row.lanes_dict_advice_bytes, row.packed_advice_bytes, row.advice_ratio,
                row.raw_trace_bytes, row.packed_trace_bytes, row.trace_ratio);
    std::printf("  %.1f B/request raw -> %.1f B/request packed\n",
                row.raw_advice_bytes_per_request, row.packed_advice_bytes_per_request);
    std::printf("  raw composition: tags %zu, handler %zu, var %zu, tx %zu, "
                "write-order %zu, other %zu, imports %zu B\n",
                row.tags_bytes, row.handler_logs_bytes, row.var_logs_bytes, row.tx_logs_bytes,
                row.write_order_bytes, row.other_bytes, row.imports_bytes);
    std::printf("  record %.4fs, audit %.4fs; encode %.4fs + decode %.4fs = %.1f%% overhead\n",
                row.record_seconds, row.audit_seconds, row.encode_seconds, row.decode_seconds,
                row.codec_overhead_pct);

    if (row.codec_overhead_pct > 15.0) {
      std::fprintf(stderr, "BUG: [%s] codec overhead %.1f%% exceeds the 15%% budget\n",
                   spec.name, row.codec_overhead_pct);
      ++bugs;
    }
    if (std::strcmp(spec.name, "stacks") == 0 && row.advice_ratio < 2.0) {
      std::fprintf(stderr, "BUG: [stacks] full-stack advice ratio %.2fx below the 2x floor\n",
                   row.advice_ratio);
      ++bugs;
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "failed to open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"advice_size\",\n  \"epoch_size\": %llu,\n"
               "  \"rows\": [\n",
               static_cast<unsigned long long>(kEpochSize));
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"app\": \"%s\", \"requests\": %zu, \"raw_advice_bytes\": %zu, "
        "\"lanes_advice_bytes\": %zu, \"lanes_dict_advice_bytes\": %zu, "
        "\"packed_advice_bytes\": %zu, \"advice_ratio\": %.4f, "
        "\"raw_trace_bytes\": %zu, \"packed_trace_bytes\": %zu, \"trace_ratio\": %.4f, "
        "\"raw_advice_bytes_per_request\": %.2f, \"packed_advice_bytes_per_request\": %.2f, "
        "\"tags_bytes\": %zu, \"handler_logs_bytes\": %zu, \"var_logs_bytes\": %zu, "
        "\"tx_logs_bytes\": %zu, \"write_order_bytes\": %zu, \"other_bytes\": %zu, "
        "\"imports_bytes\": %zu, \"record_seconds\": %.6f, \"audit_seconds\": %.6f, "
        "\"encode_seconds\": %.6f, \"decode_seconds\": %.6f, \"codec_overhead_pct\": %.3f}%s\n",
        r.app.c_str(), r.requests, r.raw_advice_bytes, r.lanes_advice_bytes,
        r.lanes_dict_advice_bytes, r.packed_advice_bytes, r.advice_ratio, r.raw_trace_bytes,
        r.packed_trace_bytes, r.trace_ratio, r.raw_advice_bytes_per_request,
        r.packed_advice_bytes_per_request, r.tags_bytes, r.handler_logs_bytes, r.var_logs_bytes,
        r.tx_logs_bytes, r.write_order_bytes, r.other_bytes, r.imports_bytes, r.record_seconds,
        r.audit_seconds, r.encode_seconds, r.decode_seconds, r.codec_overhead_pct,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return bugs == 0 ? 0 : 1;
}

}  // namespace
}  // namespace karousos

int main(int argc, char** argv) { return karousos::Main(argc, argv); }
