// Ablation A1 (§4.1 design choice): how much re-execution dedup does the
// batching granularity buy?
//   * karousos — group requests with the same *tree* of handlers (A relation
//     + per-handler control flow);
//   * orochi   — group only identical *sequences* of handlers;
//   * none     — every request re-executes alone (tags forced unique).
// Reported: group count, deduplicated handler-body executions, verification
// time. The gap between karousos and orochi grows with concurrency because
// interleaving scrambles handler sequences but not handler trees.
#include <chrono>
#include <cstdio>

#include "bench/figure_common.h"
#include "src/audit/audit.h"

namespace karousos {
namespace {

AppSpec MakeApp(const std::string& name) {
  return name == "motd" ? MakeMotdApp() : name == "stacks" ? MakeStacksApp() : MakeWikiApp();
}

double Now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RunAblation(const std::string& app_name, WorkloadKind kind) {
  std::printf("\n[batching ablation] app=%s workload=\"%s\" requests=600\n", app_name.c_str(),
              WorkloadKindName(kind));
  std::printf("%12s %10s | %8s %10s %10s | %8s %10s %10s | %8s %10s\n", "concurrency", "strategy",
              "groups", "hdl execs", "time (s)", "groups", "hdl execs", "time (s)", "groups",
              "time (s)");
  std::printf("%25s  %30s  %30s  %20s\n", "", "---------- karousos ----------",
              "---------- orochi-js ---------", "----- unbatched ----");
  for (int concurrency : {1, 15, 60}) {
    WorkloadConfig wl;
    wl.app = app_name;
    wl.kind = kind;
    wl.requests = 600;
    wl.connections = concurrency;
    std::vector<Value> inputs = GenerateWorkload(wl);

    struct Sample {
      size_t groups = 0;
      size_t handler_execs = 0;
      double seconds = 0;
    };
    Sample samples[3];
    for (int strategy = 0; strategy < 3; ++strategy) {
      AppSpec app = MakeApp(app_name);
      ServerConfig config;
      config.mode = strategy == 1 ? CollectMode::kOrochi : CollectMode::kKarousos;
      config.concurrency = concurrency;
      Server server(*app.program, config);
      ServerRunResult run = server.Run(inputs);
      if (strategy == 2) {
        // Unbatched: force each request into its own group.
        for (auto& [rid, tag] : run.advice.tags) {
          tag = rid;
        }
      }
      double t0 = Now();
      AuditResult audit = AuditOnly(app, run.trace, run.advice, IsolationLevel::kSerializable);
      samples[strategy].seconds = Now() - t0;
      samples[strategy].groups = audit.stats.groups;
      samples[strategy].handler_execs = audit.stats.handler_executions;
      if (!audit.accepted) {
        std::fprintf(stderr, "BUG: ablation audit rejected: %s\n", audit.reason.c_str());
        std::exit(1);
      }
    }
    std::printf("%12d %10s | %8zu %10zu %10.4f | %8zu %10zu %10.4f | %8zu %10.4f\n", concurrency,
                "", samples[0].groups, samples[0].handler_execs, samples[0].seconds,
                samples[1].groups, samples[1].handler_execs, samples[1].seconds,
                samples[2].groups, samples[2].seconds);
  }
}

}  // namespace
}  // namespace karousos

int main() {
  using namespace karousos;
  PrintHeader("Ablation A1: batching granularity (tree vs sequence vs none)");
  RunAblation("stacks", WorkloadKind::kMixed);
  RunAblation("wiki", WorkloadKind::kWikiMix);
  RunAblation("motd", WorkloadKind::kMixed);
  return 0;
}
