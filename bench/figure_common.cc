#include "bench/figure_common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/audit/audit.h"
#include "src/baseline/sequential.h"
#include "src/common/kcodec.h"
#include "src/server/rollover.h"

namespace karousos {

namespace {

AppSpec MakeApp(const std::string& name) {
  if (name == "motd") {
    return MakeMotdApp();
  }
  if (name == "stacks") {
    return MakeStacksApp();
  }
  if (name == "wiki") {
    return MakeWikiApp();
  }
  if (name == "auction") {
    return MakeAuctionApp();
  }
  if (name == "mixed") {
    return MakeMixedApp();
  }
  std::fprintf(stderr, "unknown app '%s'\n", name.c_str());
  std::abort();
}

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<Value> Inputs(const FigureSpec& spec, const FigureOptions& options, int concurrency) {
  WorkloadConfig wl;
  wl.app = spec.app;
  wl.kind = spec.kind;
  wl.requests = options.requests;
  wl.seed = options.seed;
  wl.connections = concurrency;
  return GenerateWorkload(wl);
}

ServerRunResult RunServer(const FigureSpec& spec, const FigureOptions& options, int concurrency,
                          CollectMode mode, size_t warmup) {
  AppSpec app = MakeApp(spec.app);
  ServerConfig config;
  config.mode = mode;
  config.concurrency = concurrency;
  config.seed = options.seed;
  config.warmup_requests = warmup;
  Server server(*app.program, config);
  return server.Run(Inputs(spec, options, concurrency));
}

}  // namespace

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintServerOverhead(const FigureSpec& spec, const FigureOptions& options) {
  std::printf("\n[server overhead] app=%s workload=\"%s\" requests=%zu (warmup %zu)\n",
              spec.app.c_str(), WorkloadKindName(spec.kind), options.requests, options.warmup);
  std::printf("%12s %16s %16s %10s\n", "concurrency", "unmodified (s)", "karousos (s)",
              "overhead");
  for (int concurrency : options.concurrencies) {
    std::vector<double> base_times;
    std::vector<double> karousos_times;
    for (int rep = 0; rep < options.reps; ++rep) {
      base_times.push_back(
          RunServer(spec, options, concurrency, CollectMode::kOff, options.warmup)
              .serve_seconds);
      karousos_times.push_back(
          RunServer(spec, options, concurrency, CollectMode::kKarousos, options.warmup)
              .serve_seconds);
    }
    double base = Median(base_times);
    double karousos = Median(karousos_times);
    std::printf("%12d %16.4f %16.4f %9.2fx\n", concurrency, base, karousos,
                base > 0 ? karousos / base : 0.0);
  }
}

void PrintVerification(const FigureSpec& spec, const FigureOptions& options) {
  std::printf("\n[verification time] app=%s workload=\"%s\" requests=%zu\n", spec.app.c_str(),
              WorkloadKindName(spec.kind), options.requests);
  unsigned par_threads = options.audit_threads;
  std::printf("%12s %14s %14s %14s %14s %9s %9s\n", "concurrency", "karousos (s)",
              ("k-par" + std::to_string(par_threads) + " (s)").c_str(), "orochi-js (s)",
              "sequential(s)", "k-groups", "o-groups");
  for (int concurrency : options.concurrencies) {
    ServerRunResult karousos_run =
        RunServer(spec, options, concurrency, CollectMode::kKarousos, 0);
    ServerRunResult orochi_run = RunServer(spec, options, concurrency, CollectMode::kOrochi, 0);

    std::vector<double> k_times;
    std::vector<double> kp_times;
    std::vector<double> o_times;
    std::vector<double> s_times;
    size_t k_groups = 0;
    size_t o_groups = 0;
    for (int rep = 0; rep < options.reps; ++rep) {
      {
        AppSpec app = MakeApp(spec.app);
        double t0 = Now();
        AuditResult audit =
            AuditOnly(app, karousos_run.trace, karousos_run.advice, IsolationLevel::kSerializable);
        k_times.push_back(Now() - t0);
        k_groups = audit.stats.groups;
        if (!audit.accepted) {
          std::fprintf(stderr, "BUG: karousos audit rejected: %s\n", audit.reason.c_str());
          std::exit(1);
        }
      }
      {
        AppSpec app = MakeApp(spec.app);
        double t0 = Now();
        AuditResult audit =
            AuditOnly(app, karousos_run.trace, karousos_run.advice,
                      VerifierConfig{IsolationLevel::kSerializable, par_threads});
        kp_times.push_back(Now() - t0);
        if (!audit.accepted) {
          std::fprintf(stderr, "BUG: parallel audit rejected: %s\n", audit.reason.c_str());
          std::exit(1);
        }
      }
      {
        AppSpec app = MakeApp(spec.app);
        double t0 = Now();
        AuditResult audit =
            AuditOnly(app, orochi_run.trace, orochi_run.advice, IsolationLevel::kSerializable);
        o_times.push_back(Now() - t0);
        o_groups = audit.stats.groups;
        if (!audit.accepted) {
          std::fprintf(stderr, "BUG: orochi audit rejected: %s\n", audit.reason.c_str());
          std::exit(1);
        }
      }
      {
        AppSpec app = MakeApp(spec.app);
        double t0 = Now();
        SequentialReplay(app, karousos_run.trace);
        s_times.push_back(Now() - t0);
      }
    }
    std::printf("%12d %14.4f %14.4f %14.4f %14.4f %9zu %9zu\n", concurrency, Median(k_times),
                Median(kp_times), Median(o_times), Median(s_times), k_groups, o_groups);
  }
}

void PrintAdviceSize(const FigureSpec& spec, const FigureOptions& options) {
  std::printf("\n[advice size] app=%s workload=\"%s\" requests=%zu\n", spec.app.c_str(),
              WorkloadKindName(spec.kind), options.requests);
  std::printf("%12s %14s %14s %12s %14s %14s %14s %10s\n", "concurrency", "karousos (B)",
              "orochi-js (B)", "k/o ratio", "k varlog (B)", "k varlog frac", "k packed (B)",
              "pack ratio");
  // Storage-class stored size: the run sliced at 50-request epochs and
  // encoded with every codec stage (lanes + dict + block), i.e. the bytes a
  // Karousos server actually ships under --compress all.
  constexpr uint64_t kPackEpochSize = 50;
  for (int concurrency : options.concurrencies) {
    ServerRunResult karousos_run =
        RunServer(spec, options, concurrency, CollectMode::kKarousos, 0);
    ServerRunResult orochi_run = RunServer(spec, options, concurrency, CollectMode::kOrochi, 0);
    Advice::SizeBreakdown k = karousos_run.advice.MeasureSize();
    Advice::SizeBreakdown o = orochi_run.advice.MeasureSize();
    EpochSlices slices = SliceRun(karousos_run.trace, karousos_run.advice, kPackEpochSize);
    const size_t packed = EncodeAdviceSegments(slices, KsegCompression::All()).size();
    std::printf("%12d %14zu %14zu %11.2f%% %14zu %13.1f%% %14zu %9.2fx\n", concurrency, k.total,
                o.total,
                o.total > 0 ? 100.0 * static_cast<double>(k.total) / static_cast<double>(o.total)
                            : 0.0,
                k.var_logs,
                k.total > 0 ? 100.0 * static_cast<double>(k.var_logs) /
                                  static_cast<double>(k.total)
                            : 0.0,
                packed,
                packed > 0 ? static_cast<double>(k.total) / static_cast<double>(packed) : 0.0);
  }
}

}  // namespace karousos
