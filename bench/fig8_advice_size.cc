// Figure 8: size of the advice a Karousos server ships to the verifier, vs
// Orochi-JS, on the 600-request workloads. As in the paper, the stacks
// application is reported at a fixed concurrency: more concurrent stacks
// requests do not execute more concurrent handlers (retry errors shed load),
// so a concurrency sweep is not meaningful for it.
#include "bench/figure_common.h"

int main() {
  using namespace karousos;
  PrintHeader("Figure 8: advice size");
  FigureOptions options;
  PrintAdviceSize({"motd", WorkloadKind::kWriteHeavy}, options);
  PrintAdviceSize({"wiki", WorkloadKind::kWikiMix}, options);
  FigureOptions stacks_options;
  stacks_options.concurrencies = {15};
  PrintAdviceSize({"stacks", WorkloadKind::kReadHeavy}, stacks_options);
  return 0;
}
