// Auction contention benchmark: what does hot-key skew cost to record and to
// audit?
//
// Serves the auction app over the kAuctionMix workload at Zipf theta in
// {0, 0.9, 1.2} (uniform -> hot -> extreme skew over 4 items) and reports per
// theta (median of reps): the transaction abort rate under contention, the
// record overhead of the Karousos collector versus the uninstrumented server
// on the identical input stream, and the serialized audit time. Every audited
// run must be accepted — this benchmark measures honest executions.
//
// Usage: auction_contention [output.json] [--quick]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/audit/audit.h"
#include "src/server/server.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

struct Row {
  double zipf_theta = 0;
  size_t requests = 0;
  size_t conflicts = 0;
  double abort_rate = 0;
  double serve_off_seconds = 0;
  double serve_karousos_seconds = 0;
  double record_overhead_ratio = 0;
  double audit_seconds = 0;
  bool accepted = false;
};

double Now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double MedianOf(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_auction_contention.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  const size_t kRequests = quick ? 150 : 600;
  const int kConcurrency = 12;
  const int kReps = quick ? 1 : 3;

  std::printf("=== Auction contention: abort rate, record overhead, audit time vs skew ===\n");
  std::printf("(auction, %zu requests, concurrency %d, 4 items)\n", kRequests, kConcurrency);
  std::printf("%-6s %10s %11s %10s %14s %10s %10s\n", "theta", "conflicts", "abort rate",
              "off (s)", "karousos (s)", "overhead", "audit (s)");

  std::vector<Row> rows;
  for (double theta : {0.0, 0.9, 1.2}) {
    WorkloadConfig wl;
    wl.app = "auction";
    wl.kind = WorkloadKind::kAuctionMix;
    wl.requests = kRequests;
    wl.seed = 7;
    wl.connections = kConcurrency;
    wl.zipf_theta = theta;
    wl.hot_items = 4;
    std::vector<Value> inputs = GenerateWorkload(wl);

    std::vector<double> off_times, on_times, audit_times;
    Row row;
    row.zipf_theta = theta;
    row.requests = kRequests;
    for (int rep = 0; rep < kReps; ++rep) {
      AppSpec off_app = MakeAuctionApp();
      ServerConfig off_config;
      off_config.mode = CollectMode::kOff;
      off_config.concurrency = kConcurrency;
      off_config.seed = 7;
      Server off_server(*off_app.program, off_config);
      double t0 = Now();
      ServerRunResult off_run = off_server.Run(inputs);
      off_times.push_back(Now() - t0);
      (void)off_run;

      AppSpec app = MakeAuctionApp();
      ServerConfig config;
      config.concurrency = kConcurrency;
      config.seed = 7;
      Server server(*app.program, config);
      t0 = Now();
      ServerRunResult run = server.Run(inputs);
      on_times.push_back(Now() - t0);
      row.conflicts = run.conflicts;

      VerifierConfig audit_config{IsolationLevel::kSerializable, 1};
      t0 = Now();
      AuditResult audit = AuditOnly(app, run.trace, run.advice, audit_config);
      audit_times.push_back(Now() - t0);
      row.accepted = audit.accepted;
      if (!audit.accepted) {
        std::fprintf(stderr, "BUG: audit rejected the honest run at theta %.1f: %s\n", theta,
                     audit.reason.c_str());
        return 1;
      }
    }
    row.abort_rate = static_cast<double>(row.conflicts) / static_cast<double>(kRequests);
    row.serve_off_seconds = MedianOf(off_times);
    row.serve_karousos_seconds = MedianOf(on_times);
    row.record_overhead_ratio = row.serve_karousos_seconds / row.serve_off_seconds;
    row.audit_seconds = MedianOf(audit_times);
    rows.push_back(row);
    std::printf("%-6.1f %10zu %10.3f %10.4f %14.4f %9.2fx %10.4f\n", theta, row.conflicts,
                row.abort_rate, row.serve_off_seconds, row.serve_karousos_seconds,
                row.record_overhead_ratio, row.audit_seconds);
  }

  // Sanity on the claim under reproduction: skew concentrates bids on fewer
  // items, so conflicts must not *decrease* from uniform to extreme skew.
  if (rows.back().conflicts < rows.front().conflicts) {
    std::fprintf(stderr, "BUG: extreme skew produced fewer conflicts (%zu) than uniform (%zu)\n",
                 rows.back().conflicts, rows.front().conflicts);
    return 1;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "failed to open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"benchmark\": \"auction_contention\",\n  \"app\": \"auction\",\n"
               "  \"requests\": %zu,\n  \"concurrency\": %d,\n  \"hot_items\": 4,\n"
               "  \"rows\": [\n",
               kRequests, kConcurrency);
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"zipf_theta\": %.1f, \"conflicts\": %zu, \"abort_rate\": %.4f, "
                 "\"serve_off_seconds\": %.6f, \"serve_karousos_seconds\": %.6f, "
                 "\"record_overhead_ratio\": %.4f, \"audit_seconds\": %.6f, "
                 "\"accepted\": %s}%s\n",
                 r.zipf_theta, r.conflicts, r.abort_rate, r.serve_off_seconds,
                 r.serve_karousos_seconds, r.record_overhead_ratio, r.audit_seconds,
                 r.accepted ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace karousos

int main(int argc, char** argv) { return karousos::Main(argc, argv); }
