// Shared driver for the per-figure benchmark binaries. Each figure binary
// picks an (application, workload) list and which of the three measurements
// to print:
//   * server overhead   (Figure 6 and the (a) panels of Figures 9-12),
//   * verification time (Figure 7 and the (b) panels),
//   * advice size       (Figure 8 and the (c) panels).
//
// Methodology mirrors §6: 600 requests per run, the first 120 as warm-up for
// server-overhead timing, concurrency swept over {1, 4, 15, 30, 60}, medians
// over repeated runs. Absolute times are machine-specific; the claims under
// reproduction are the ratios and trends.
#ifndef BENCH_FIGURE_COMMON_H_
#define BENCH_FIGURE_COMMON_H_

#include <string>
#include <vector>

#include "src/workload/workload.h"

namespace karousos {

struct FigureSpec {
  std::string app;  // "motd" | "stacks" | "wiki".
  WorkloadKind kind = WorkloadKind::kMixed;
};

struct FigureOptions {
  size_t requests = 600;
  size_t warmup = 120;
  int reps = 5;
  std::vector<int> concurrencies = {1, 4, 15, 30, 60};
  uint64_t seed = 7;
  // Audit-group parallelism for the Karousos verifier's parallel column in
  // PrintVerification (VerifierConfig::threads; 0 = all hardware threads).
  unsigned audit_threads = 0;
};

// Figure 6 / panels (a): processing time for the post-warmup requests,
// unmodified vs Karousos server, plus the overhead ratio.
void PrintServerOverhead(const FigureSpec& spec, const FigureOptions& options);

// Figure 7 / panels (b): total time to verify a 600-request trace — Karousos
// verifier (serial and at options.audit_threads), Orochi-JS verifier, and the
// sequential re-executor.
void PrintVerification(const FigureSpec& spec, const FigureOptions& options);

// Figure 8 / panels (c): advice bytes shipped to the verifier, Karousos vs
// Orochi-JS, with the variable-log share.
void PrintAdviceSize(const FigureSpec& spec, const FigureOptions& options);

void PrintHeader(const std::string& title);

}  // namespace karousos

#endif  // BENCH_FIGURE_COMMON_H_
