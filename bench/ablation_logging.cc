// Ablation A2 (§4.2 design choice): how much advice does R-ordered-aware
// logging save? Karousos logs a variable access only when it is R-concurrent
// with the dictating/preceding write; the log-all alternative (what Orochi-JS
// does, and what a naive record-replay would do) logs every access.
//
// Reported per application: logged variable accesses, variable-log bytes and
// total advice bytes under both policies. MOTD is the adversarial case where
// the two coincide (§6.2: every access is R-concurrent, so Karousos logs
// everything too); stacks and wiki show the savings.
#include <cstdio>

#include "bench/figure_common.h"
#include "src/audit/audit.h"

namespace karousos {
namespace {

AppSpec MakeApp(const std::string& name) {
  return name == "motd" ? MakeMotdApp() : name == "stacks" ? MakeStacksApp() : MakeWikiApp();
}

void RunAblation(const std::string& app_name, WorkloadKind kind, int concurrency) {
  WorkloadConfig wl;
  wl.app = app_name;
  wl.kind = kind;
  wl.requests = 600;
  wl.connections = concurrency;
  std::vector<Value> inputs = GenerateWorkload(wl);

  size_t entries[2];
  size_t varlog_bytes[2];
  size_t total_bytes[2];
  size_t accesses = 0;
  for (int policy = 0; policy < 2; ++policy) {
    AppSpec app = MakeApp(app_name);
    ServerConfig config;
    config.mode = policy == 0 ? CollectMode::kKarousos : CollectMode::kOrochi;
    config.concurrency = concurrency;
    Server server(*app.program, config);
    ServerRunResult run = server.Run(inputs);
    Advice::SizeBreakdown size = run.advice.MeasureSize();
    entries[policy] = run.advice.var_log_entry_count();
    varlog_bytes[policy] = size.var_logs;
    total_bytes[policy] = size.total;
    accesses = run.var_accesses;
  }
  std::printf("%8s %12d %10zu | %10zu %12zu %12zu | %10zu %12zu %12zu | %7.1f%%\n",
              app_name.c_str(), concurrency, accesses, entries[0], varlog_bytes[0],
              total_bytes[0], entries[1], varlog_bytes[1], total_bytes[1],
              entries[1] > 0
                  ? 100.0 * (1.0 - static_cast<double>(entries[0]) /
                                       static_cast<double>(entries[1]))
                  : 0.0);
}

}  // namespace
}  // namespace karousos

int main() {
  using namespace karousos;
  PrintHeader("Ablation A2: R-ordered-aware logging vs log-all");
  std::printf("%8s %12s %10s | %10s %12s %12s | %10s %12s %12s | %8s\n", "app", "concurrency",
              "accesses", "logged", "varlog B", "advice B", "logged", "varlog B", "advice B",
              "saved");
  std::printf("%33s %38s %38s\n", "", "------- R-concurrent only -------",
              "----------- log-all -----------");
  for (int concurrency : {1, 15, 60}) {
    RunAblation("motd", WorkloadKind::kMixed, concurrency);
    RunAblation("stacks", WorkloadKind::kMixed, concurrency);
    RunAblation("wiki", WorkloadKind::kWikiMix, concurrency);
  }
  return 0;
}
