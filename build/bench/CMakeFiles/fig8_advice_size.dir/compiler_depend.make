# Empty compiler generated dependencies file for fig8_advice_size.
# This may be replaced when dependencies are built.
