file(REMOVE_RECURSE
  "CMakeFiles/fig8_advice_size.dir/fig8_advice_size.cc.o"
  "CMakeFiles/fig8_advice_size.dir/fig8_advice_size.cc.o.d"
  "fig8_advice_size"
  "fig8_advice_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_advice_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
