# Empty compiler generated dependencies file for fig12_stacks_writes.
# This may be replaced when dependencies are built.
