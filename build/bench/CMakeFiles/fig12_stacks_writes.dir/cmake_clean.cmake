file(REMOVE_RECURSE
  "CMakeFiles/fig12_stacks_writes.dir/fig12_stacks_writes.cc.o"
  "CMakeFiles/fig12_stacks_writes.dir/fig12_stacks_writes.cc.o.d"
  "fig12_stacks_writes"
  "fig12_stacks_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_stacks_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
