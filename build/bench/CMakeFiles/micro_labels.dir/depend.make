# Empty dependencies file for micro_labels.
# This may be replaced when dependencies are built.
