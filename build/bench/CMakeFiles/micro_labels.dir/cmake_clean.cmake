file(REMOVE_RECURSE
  "CMakeFiles/micro_labels.dir/micro_labels.cc.o"
  "CMakeFiles/micro_labels.dir/micro_labels.cc.o.d"
  "micro_labels"
  "micro_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
