# Empty compiler generated dependencies file for fig10_motd_reads.
# This may be replaced when dependencies are built.
