file(REMOVE_RECURSE
  "CMakeFiles/fig10_motd_reads.dir/fig10_motd_reads.cc.o"
  "CMakeFiles/fig10_motd_reads.dir/fig10_motd_reads.cc.o.d"
  "fig10_motd_reads"
  "fig10_motd_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_motd_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
