file(REMOVE_RECURSE
  "CMakeFiles/fig11_stacks_mixed.dir/fig11_stacks_mixed.cc.o"
  "CMakeFiles/fig11_stacks_mixed.dir/fig11_stacks_mixed.cc.o.d"
  "fig11_stacks_mixed"
  "fig11_stacks_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_stacks_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
