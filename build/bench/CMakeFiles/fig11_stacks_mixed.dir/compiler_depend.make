# Empty compiler generated dependencies file for fig11_stacks_mixed.
# This may be replaced when dependencies are built.
