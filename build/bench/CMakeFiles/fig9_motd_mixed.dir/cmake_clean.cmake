file(REMOVE_RECURSE
  "CMakeFiles/fig9_motd_mixed.dir/fig9_motd_mixed.cc.o"
  "CMakeFiles/fig9_motd_mixed.dir/fig9_motd_mixed.cc.o.d"
  "fig9_motd_mixed"
  "fig9_motd_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_motd_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
