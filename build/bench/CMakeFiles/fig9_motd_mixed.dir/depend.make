# Empty dependencies file for fig9_motd_mixed.
# This may be replaced when dependencies are built.
