file(REMOVE_RECURSE
  "CMakeFiles/fig7_verification.dir/fig7_verification.cc.o"
  "CMakeFiles/fig7_verification.dir/fig7_verification.cc.o.d"
  "fig7_verification"
  "fig7_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
