# Empty dependencies file for fig7_verification.
# This may be replaced when dependencies are built.
