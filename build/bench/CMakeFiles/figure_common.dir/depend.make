# Empty dependencies file for figure_common.
# This may be replaced when dependencies are built.
