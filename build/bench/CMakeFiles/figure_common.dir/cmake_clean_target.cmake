file(REMOVE_RECURSE
  "libfigure_common.a"
)
