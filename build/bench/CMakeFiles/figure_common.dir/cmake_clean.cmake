file(REMOVE_RECURSE
  "CMakeFiles/figure_common.dir/figure_common.cc.o"
  "CMakeFiles/figure_common.dir/figure_common.cc.o.d"
  "libfigure_common.a"
  "libfigure_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
