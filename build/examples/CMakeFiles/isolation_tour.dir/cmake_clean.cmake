file(REMOVE_RECURSE
  "CMakeFiles/isolation_tour.dir/isolation_tour.cpp.o"
  "CMakeFiles/isolation_tour.dir/isolation_tour.cpp.o.d"
  "isolation_tour"
  "isolation_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolation_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
