# Empty compiler generated dependencies file for isolation_tour.
# This may be replaced when dependencies are built.
