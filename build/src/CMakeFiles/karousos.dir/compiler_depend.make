# Empty compiler generated dependencies file for karousos.
# This may be replaced when dependencies are built.
