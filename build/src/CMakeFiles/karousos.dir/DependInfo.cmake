
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adya/checker.cc" "src/CMakeFiles/karousos.dir/adya/checker.cc.o" "gcc" "src/CMakeFiles/karousos.dir/adya/checker.cc.o.d"
  "/root/repo/src/apps/app_util.cc" "src/CMakeFiles/karousos.dir/apps/app_util.cc.o" "gcc" "src/CMakeFiles/karousos.dir/apps/app_util.cc.o.d"
  "/root/repo/src/apps/motd.cc" "src/CMakeFiles/karousos.dir/apps/motd.cc.o" "gcc" "src/CMakeFiles/karousos.dir/apps/motd.cc.o.d"
  "/root/repo/src/apps/pingpong.cc" "src/CMakeFiles/karousos.dir/apps/pingpong.cc.o" "gcc" "src/CMakeFiles/karousos.dir/apps/pingpong.cc.o.d"
  "/root/repo/src/apps/stacks.cc" "src/CMakeFiles/karousos.dir/apps/stacks.cc.o" "gcc" "src/CMakeFiles/karousos.dir/apps/stacks.cc.o.d"
  "/root/repo/src/apps/wiki.cc" "src/CMakeFiles/karousos.dir/apps/wiki.cc.o" "gcc" "src/CMakeFiles/karousos.dir/apps/wiki.cc.o.d"
  "/root/repo/src/audit/audit.cc" "src/CMakeFiles/karousos.dir/audit/audit.cc.o" "gcc" "src/CMakeFiles/karousos.dir/audit/audit.cc.o.d"
  "/root/repo/src/baseline/sequential.cc" "src/CMakeFiles/karousos.dir/baseline/sequential.cc.o" "gcc" "src/CMakeFiles/karousos.dir/baseline/sequential.cc.o.d"
  "/root/repo/src/common/graph.cc" "src/CMakeFiles/karousos.dir/common/graph.cc.o" "gcc" "src/CMakeFiles/karousos.dir/common/graph.cc.o.d"
  "/root/repo/src/common/ids.cc" "src/CMakeFiles/karousos.dir/common/ids.cc.o" "gcc" "src/CMakeFiles/karousos.dir/common/ids.cc.o.d"
  "/root/repo/src/common/json.cc" "src/CMakeFiles/karousos.dir/common/json.cc.o" "gcc" "src/CMakeFiles/karousos.dir/common/json.cc.o.d"
  "/root/repo/src/common/serde.cc" "src/CMakeFiles/karousos.dir/common/serde.cc.o" "gcc" "src/CMakeFiles/karousos.dir/common/serde.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/karousos.dir/common/value.cc.o" "gcc" "src/CMakeFiles/karousos.dir/common/value.cc.o.d"
  "/root/repo/src/kem/label.cc" "src/CMakeFiles/karousos.dir/kem/label.cc.o" "gcc" "src/CMakeFiles/karousos.dir/kem/label.cc.o.d"
  "/root/repo/src/kem/program.cc" "src/CMakeFiles/karousos.dir/kem/program.cc.o" "gcc" "src/CMakeFiles/karousos.dir/kem/program.cc.o.d"
  "/root/repo/src/multivalue/multivalue.cc" "src/CMakeFiles/karousos.dir/multivalue/multivalue.cc.o" "gcc" "src/CMakeFiles/karousos.dir/multivalue/multivalue.cc.o.d"
  "/root/repo/src/server/advice.cc" "src/CMakeFiles/karousos.dir/server/advice.cc.o" "gcc" "src/CMakeFiles/karousos.dir/server/advice.cc.o.d"
  "/root/repo/src/server/server.cc" "src/CMakeFiles/karousos.dir/server/server.cc.o" "gcc" "src/CMakeFiles/karousos.dir/server/server.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/karousos.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/karousos.dir/trace/trace.cc.o.d"
  "/root/repo/src/txkv/store.cc" "src/CMakeFiles/karousos.dir/txkv/store.cc.o" "gcc" "src/CMakeFiles/karousos.dir/txkv/store.cc.o.d"
  "/root/repo/src/verifier/reexec.cc" "src/CMakeFiles/karousos.dir/verifier/reexec.cc.o" "gcc" "src/CMakeFiles/karousos.dir/verifier/reexec.cc.o.d"
  "/root/repo/src/verifier/verifier.cc" "src/CMakeFiles/karousos.dir/verifier/verifier.cc.o" "gcc" "src/CMakeFiles/karousos.dir/verifier/verifier.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/karousos.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/karousos.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
