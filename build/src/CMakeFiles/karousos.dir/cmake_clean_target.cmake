file(REMOVE_RECURSE
  "libkarousos.a"
)
