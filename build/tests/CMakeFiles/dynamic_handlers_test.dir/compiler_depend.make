# Empty compiler generated dependencies file for dynamic_handlers_test.
# This may be replaced when dependencies are built.
