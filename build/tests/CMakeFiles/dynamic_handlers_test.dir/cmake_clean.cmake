file(REMOVE_RECURSE
  "CMakeFiles/dynamic_handlers_test.dir/dynamic_handlers_test.cc.o"
  "CMakeFiles/dynamic_handlers_test.dir/dynamic_handlers_test.cc.o.d"
  "dynamic_handlers_test"
  "dynamic_handlers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_handlers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
