# Empty dependencies file for audit_e2e_test.
# This may be replaced when dependencies are built.
