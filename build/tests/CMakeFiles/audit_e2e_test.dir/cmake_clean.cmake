file(REMOVE_RECURSE
  "CMakeFiles/audit_e2e_test.dir/audit_e2e_test.cc.o"
  "CMakeFiles/audit_e2e_test.dir/audit_e2e_test.cc.o.d"
  "audit_e2e_test"
  "audit_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
