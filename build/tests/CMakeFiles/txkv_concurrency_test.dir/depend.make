# Empty dependencies file for txkv_concurrency_test.
# This may be replaced when dependencies are built.
