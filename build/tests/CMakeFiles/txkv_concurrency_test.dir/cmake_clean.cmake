file(REMOVE_RECURSE
  "CMakeFiles/txkv_concurrency_test.dir/txkv_concurrency_test.cc.o"
  "CMakeFiles/txkv_concurrency_test.dir/txkv_concurrency_test.cc.o.d"
  "txkv_concurrency_test"
  "txkv_concurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txkv_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
