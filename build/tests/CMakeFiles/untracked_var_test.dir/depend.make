# Empty dependencies file for untracked_var_test.
# This may be replaced when dependencies are built.
