file(REMOVE_RECURSE
  "CMakeFiles/untracked_var_test.dir/untracked_var_test.cc.o"
  "CMakeFiles/untracked_var_test.dir/untracked_var_test.cc.o.d"
  "untracked_var_test"
  "untracked_var_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/untracked_var_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
