file(REMOVE_RECURSE
  "CMakeFiles/audit_property_test.dir/audit_property_test.cc.o"
  "CMakeFiles/audit_property_test.dir/audit_property_test.cc.o.d"
  "audit_property_test"
  "audit_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
