# Empty dependencies file for audit_property_test.
# This may be replaced when dependencies are built.
