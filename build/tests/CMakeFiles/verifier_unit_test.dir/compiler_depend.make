# Empty compiler generated dependencies file for verifier_unit_test.
# This may be replaced when dependencies are built.
