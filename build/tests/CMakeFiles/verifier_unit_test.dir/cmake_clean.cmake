file(REMOVE_RECURSE
  "CMakeFiles/verifier_unit_test.dir/verifier_unit_test.cc.o"
  "CMakeFiles/verifier_unit_test.dir/verifier_unit_test.cc.o.d"
  "verifier_unit_test"
  "verifier_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifier_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
