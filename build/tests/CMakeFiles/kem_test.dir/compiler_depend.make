# Empty compiler generated dependencies file for kem_test.
# This may be replaced when dependencies are built.
