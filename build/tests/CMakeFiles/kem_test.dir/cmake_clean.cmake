file(REMOVE_RECURSE
  "CMakeFiles/kem_test.dir/kem_test.cc.o"
  "CMakeFiles/kem_test.dir/kem_test.cc.o.d"
  "kem_test"
  "kem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
