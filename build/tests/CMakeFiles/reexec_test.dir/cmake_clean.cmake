file(REMOVE_RECURSE
  "CMakeFiles/reexec_test.dir/reexec_test.cc.o"
  "CMakeFiles/reexec_test.dir/reexec_test.cc.o.d"
  "reexec_test"
  "reexec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reexec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
