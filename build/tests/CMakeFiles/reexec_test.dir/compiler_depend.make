# Empty compiler generated dependencies file for reexec_test.
# This may be replaced when dependencies are built.
