# Empty compiler generated dependencies file for adya_test.
# This may be replaced when dependencies are built.
