file(REMOVE_RECURSE
  "CMakeFiles/karousos_cli.dir/karousos_cli.cc.o"
  "CMakeFiles/karousos_cli.dir/karousos_cli.cc.o.d"
  "karousos"
  "karousos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/karousos_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
