# Empty dependencies file for karousos_cli.
# This may be replaced when dependencies are built.
