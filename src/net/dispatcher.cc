#include "src/net/dispatcher.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

namespace karousos {

namespace {

uint64_t NowMs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

Dispatcher::Dispatcher() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wakeup_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ >= 0 && wakeup_fd_ >= 0) {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = wakeup_fd_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev);
  }
  wheel_last_advance_ms_ = NowMs();
}

Dispatcher::~Dispatcher() {
  if (wakeup_fd_ >= 0) {
    close(wakeup_fd_);
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
  }
}

bool Dispatcher::WatchFd(int fd, uint32_t events, FdEventCb cb) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return false;
  }
  fd_cbs_[fd] = std::move(cb);
  return true;
}

bool Dispatcher::ModifyFd(int fd, uint32_t events) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  return epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void Dispatcher::UnwatchFd(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  fd_cbs_.erase(fd);
}

Dispatcher::TimerId Dispatcher::AddTimer(uint64_t delay_ms, std::function<void()> cb) {
  // Advance first so the delay is measured from "now", not from the last
  // time the loop happened to service the wheel.
  AdvanceWheel();
  uint64_t ticks = (delay_ms + kTickMs - 1) / kTickMs;
  if (ticks == 0) {
    ticks = 1;
  }
  Timer t;
  t.id = next_timer_id_++;
  // The slot is first visited after `ticks mod kWheelSlots` ticks (a full
  // revolution when that is zero), so a timer of exactly one revolution
  // needs zero extra rounds.
  t.rounds = (ticks - 1) / kWheelSlots;
  t.cb = std::move(cb);
  size_t slot = (wheel_pos_ + ticks) % kWheelSlots;
  wheel_[slot].push_back(std::move(t));
  ++armed_timers_;
  return wheel_[slot].back().id;
}

void Dispatcher::CancelTimer(TimerId id) { cancelled_.insert(id); }

void Dispatcher::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  uint64_t one = 1;
  ssize_t rc = write(wakeup_fd_, &one, sizeof(one));
  (void)rc;
}

void Dispatcher::DeferDelete(std::unique_ptr<DeferredDeletable> obj) {
  deferred_.push_back(std::move(obj));
}

void Dispatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    stop_requested_ = true;
  }
  uint64_t one = 1;
  ssize_t rc = write(wakeup_fd_, &one, sizeof(one));
  (void)rc;
}

void Dispatcher::DrainWakeup() {
  uint64_t value = 0;
  while (read(wakeup_fd_, &value, sizeof(value)) > 0) {
  }
}

void Dispatcher::AdvanceWheel() {
  uint64_t now = NowMs();
  uint64_t elapsed_ticks = (now - wheel_last_advance_ms_) / kTickMs;
  if (elapsed_ticks == 0) {
    return;
  }
  wheel_last_advance_ms_ += elapsed_ticks * kTickMs;
  // Fired callbacks run after the sweep so a callback re-arming a timer
  // cannot have it fire within the same sweep.
  std::vector<std::function<void()>> due;
  for (uint64_t i = 0; i < elapsed_ticks; ++i) {
    wheel_pos_ = (wheel_pos_ + 1) % kWheelSlots;
    auto& slot = wheel_[wheel_pos_];
    size_t keep = 0;
    for (size_t j = 0; j < slot.size(); ++j) {
      Timer& t = slot[j];
      if (cancelled_.erase(t.id) > 0) {
        --armed_timers_;
        continue;
      }
      if (t.rounds > 0) {
        --t.rounds;
        slot[keep++] = std::move(t);
        continue;
      }
      due.push_back(std::move(t.cb));
      --armed_timers_;
    }
    slot.resize(keep);
  }
  for (auto& cb : due) {
    cb();
  }
}

int Dispatcher::TimerWaitMs() const {
  if (armed_timers_ == 0) {
    return -1;
  }
  return static_cast<int>(kTickMs);
}

void Dispatcher::Run() {
  running_ = true;
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  for (;;) {
    // Take posted work (and the stop flag) under the lock, run it outside.
    std::vector<std::function<void()>> run_now;
    bool stop;
    {
      std::lock_guard<std::mutex> lock(post_mutex_);
      run_now.swap(posted_);
      stop = stop_requested_;
    }
    for (auto& fn : run_now) {
      fn();
    }
    if (stop) {
      break;
    }
    AdvanceWheel();

    int timeout = TimerWaitMs();
    int n = epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wakeup_fd_) {
        DrainWakeup();
        continue;
      }
      auto it = fd_cbs_.find(fd);
      if (it == fd_cbs_.end()) {
        continue;  // Unwatched by an earlier callback this iteration.
      }
      // Copy: the callback may UnwatchFd(fd) and invalidate `it`.
      FdEventCb cb = it->second;
      cb(events[i].events);
    }
    deferred_.clear();
  }
  deferred_.clear();
  running_ = false;
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    stop_requested_ = false;  // Allow Run() again after a Stop().
  }
}

}  // namespace karousos
