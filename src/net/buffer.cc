#include "src/net/buffer.h"

#include <cstring>

namespace karousos {

void WatermarkBuffer::SetWatermarks(size_t high, size_t low) {
  high_ = high;
  low_ = high == 0 ? 0 : (low < high ? low : high / 2);
  // Re-evaluate against the new marks (a buffer can be re-limited live).
  if (overflowed_) {
    CheckLow();
  } else {
    CheckHigh();
  }
}

void WatermarkBuffer::SetCallbacks(std::function<void()> above_high,
                                   std::function<void()> below_low) {
  above_high_ = std::move(above_high);
  below_low_ = std::move(below_low);
}

void WatermarkBuffer::Append(const uint8_t* data, size_t n) {
  if (n == 0) {
    return;
  }
  // Compact before growing once the dead prefix dominates, so long-lived
  // connections don't accrete drained bytes.
  if (head_ > 0 && head_ >= size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(head_));
    head_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
  if (size() > peak_) {
    peak_ = size();
  }
  CheckHigh();
}

void WatermarkBuffer::Drain(size_t n) {
  head_ += n;
  if (head_ == buf_.size()) {
    buf_.clear();
    head_ = 0;
  }
  CheckLow();
}

void WatermarkBuffer::CheckHigh() {
  if (high_ > 0 && !overflowed_ && size() > high_) {
    overflowed_ = true;
    if (above_high_) {
      above_high_();
    }
  }
}

void WatermarkBuffer::CheckLow() {
  if (overflowed_ && size() <= low_) {
    overflowed_ = false;
    if (below_low_) {
      below_low_();
    }
  }
}

}  // namespace karousos
