// The length-framed binary wire protocol of the network edge.
//
// A connection opens with an 8-byte client preface ("KWIRE/1\n"), then both
// directions carry frames:
//
//   frame   := type:u8  length:u32le  payload[length]
//   request := seq:varint  input:Value     (client -> server, type 1)
//   response:= seq:varint  output:Value    (server -> client, type 2)
//   shutdown:= (empty)                     (client -> server, type 3)
//   error   := message:string              (server -> client, type 4)
//
// `seq` is the client's schedule position for the request; responses echo it
// so an open-loop client can pipeline requests and match completions out of
// order. Values reuse the advice wire encoding (ByteWriter/ByteReader), so
// the network edge adds no second serialization scheme.
//
// FrameDecoder is torn-frame-safe: it consumes from the connection's read
// buffer only when a complete frame is available, so bytes may arrive in any
// split (one syscall per byte included) and decode identically. Oversized
// length prefixes, unknown frame types, and a bad preface latch a permanent
// error — the connection replies with an error frame and closes; nothing is
// ever partially consumed or guessed at.
#ifndef SRC_NET_FRAME_H_
#define SRC_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/serde.h"
#include "src/common/value.h"
#include "src/net/buffer.h"

namespace karousos {

inline constexpr char kWirePreface[] = "KWIRE/1\n";
inline constexpr size_t kWirePrefaceBytes = 8;
inline constexpr size_t kWireFrameHeaderBytes = 5;  // type u8 + length u32le.
inline constexpr size_t kDefaultMaxFrameBytes = 8u << 20;

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
  kShutdown = 3,
  kError = 4,
};

struct WireFrame {
  FrameType type = FrameType::kRequest;
  std::vector<uint8_t> payload;
};

// --- Encoding ------------------------------------------------------------

void AppendWirePreface(ByteWriter* out);
void EncodeFrame(FrameType type, const uint8_t* payload, size_t size, ByteWriter* out);
void EncodeRequestFrame(uint64_t seq, const Value& input, ByteWriter* out);
void EncodeResponseFrame(uint64_t seq, const Value& output, ByteWriter* out);
// expected_connections > 0 tells the server how many connections the client
// opened in total, so drain waits for any still in the accept backlog; 0
// drains immediately.
void EncodeShutdownFrame(ByteWriter* out);
void EncodeShutdownFrame(uint64_t expected_connections, ByteWriter* out);
void EncodeErrorFrame(std::string_view message, ByteWriter* out);

// --- Decoding ------------------------------------------------------------

enum class DecodeStatus : uint8_t {
  kNeedMore,  // No complete frame buffered yet.
  kFrame,     // One frame decoded into *out (and drained from the buffer).
  kError,     // Protocol violation; the decoder is dead (error() says why).
};

class FrameDecoder {
 public:
  // expect_preface: server side demands the client preface before frame one.
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes,
                        bool expect_preface = false);

  // Tries to decode the next frame from the front of `in`. Consumes bytes
  // from `in` only for a complete preface or frame; a torn frame leaves the
  // buffer untouched and returns kNeedMore. After kError every further call
  // returns kError.
  DecodeStatus Next(WatermarkBuffer* in, WireFrame* out);

  // Peeks whether a complete frame is buffered without consuming it.
  bool FrameReady(const WatermarkBuffer& in) const;

  // Checks, without consuming, that the buffered head can still become a
  // valid frame. Returns false (with *error set) on a head that can never
  // complete: a mismatched preface prefix, an unknown frame type, or an
  // oversized length. Connections run this after every read so garbage is
  // rejected the moment it arrives, even while well-formed request frames
  // sit buffered awaiting admission.
  bool HeadValid(const WatermarkBuffer& in, std::string* error) const;

  const std::string& error() const { return error_; }
  size_t frames_decoded() const { return frames_; }

 private:
  DecodeStatus Fail(std::string message);

  size_t max_frame_bytes_;
  bool need_preface_;
  bool dead_ = false;
  std::string error_;
  size_t frames_ = 0;
};

// Request/response payload codec (both are seq + value).
bool DecodeSeqValuePayload(const std::vector<uint8_t>& payload, uint64_t* seq, Value* value);

// Error payload codec.
bool DecodeErrorPayload(const std::vector<uint8_t>& payload, std::string* message);

// Shutdown payload codec: empty payload decodes as 0 (drain immediately).
bool DecodeShutdownPayload(const std::vector<uint8_t>& payload, uint64_t* expected_connections);

}  // namespace karousos

#endif  // SRC_NET_FRAME_H_
