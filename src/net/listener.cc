#include "src/net/listener.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <utility>

namespace karousos {

namespace {

constexpr char kUnixPrefix[] = "unix:";
constexpr size_t kUnixPrefixLen = 5;

// Splits "host:port" at the last colon (IPv4 / hostname only — the edge's
// test and bench traffic is loopback).
bool SplitHostPort(const std::string& address, std::string* host, uint16_t* port,
                   std::string* error) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    *error = "address must be unix:/path or host:port, got '" + address + "'";
    return false;
  }
  *host = address.substr(0, colon);
  if (host->empty()) {
    *host = "127.0.0.1";
  }
  const std::string port_str = address.substr(colon + 1);
  char* end = nullptr;
  long p = strtol(port_str.c_str(), &end, 10);
  if (port_str.empty() || *end != '\0' || p < 0 || p > 65535) {
    *error = "bad port in address '" + address + "'";
    return false;
  }
  *port = static_cast<uint16_t>(p);
  return true;
}

bool MakeSockaddr(const std::string& address, struct sockaddr_storage* storage, socklen_t* len,
                  bool* is_unix, std::string* unix_path, std::string* error) {
  memset(storage, 0, sizeof(*storage));
  if (address.compare(0, kUnixPrefixLen, kUnixPrefix) == 0) {
    std::string path = address.substr(kUnixPrefixLen);
    auto* sun = reinterpret_cast<struct sockaddr_un*>(storage);
    if (path.empty() || path.size() >= sizeof(sun->sun_path)) {
      *error = "bad unix socket path '" + path + "'";
      return false;
    }
    sun->sun_family = AF_UNIX;
    memcpy(sun->sun_path, path.c_str(), path.size() + 1);
    *len = static_cast<socklen_t>(offsetof(struct sockaddr_un, sun_path) + path.size() + 1);
    *is_unix = true;
    *unix_path = std::move(path);
    return true;
  }
  std::string host;
  uint16_t port = 0;
  if (!SplitHostPort(address, &host, &port, error)) {
    return false;
  }
  auto* sin = reinterpret_cast<struct sockaddr_in*>(storage);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(port);
  if (host == "localhost") {
    host = "127.0.0.1";
  }
  if (inet_pton(AF_INET, host.c_str(), &sin->sin_addr) != 1) {
    *error = "bad IPv4 host '" + host + "' (only numeric IPv4 or localhost supported)";
    return false;
  }
  *len = sizeof(struct sockaddr_in);
  *is_unix = false;
  return true;
}

}  // namespace

Listener::~Listener() { Stop(); }

bool Listener::Start(Dispatcher* dispatcher, const std::string& address, AcceptCb on_accept,
                     std::string* error) {
  struct sockaddr_storage storage;
  socklen_t len = 0;
  if (!MakeSockaddr(address, &storage, &len, &is_unix_, &unix_path_, error)) {
    return false;
  }
  if (is_unix_) {
    unlink(unix_path_.c_str());  // Stale socket from a crashed server.
  }
  fd_ = socket(is_unix_ ? AF_UNIX : AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd_ < 0) {
    *error = std::string("socket: ") + strerror(errno);
    return false;
  }
  if (!is_unix_) {
    int one = 1;
    setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  if (bind(fd_, reinterpret_cast<struct sockaddr*>(&storage), len) != 0) {
    *error = "bind " + address + ": " + strerror(errno);
    Stop();
    return false;
  }
  if (listen(fd_, 128) != 0) {
    *error = "listen " + address + ": " + strerror(errno);
    Stop();
    return false;
  }
  if (is_unix_) {
    bound_address_ = address;
  } else {
    struct sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    getsockname(fd_, reinterpret_cast<struct sockaddr*>(&bound), &bound_len);
    char host[INET_ADDRSTRLEN] = {0};
    inet_ntop(AF_INET, &bound.sin_addr, host, sizeof(host));
    bound_address_ = std::string(host) + ":" + std::to_string(ntohs(bound.sin_port));
  }
  dispatcher_ = dispatcher;
  on_accept_ = std::move(on_accept);
  if (!dispatcher_->WatchFd(fd_, EPOLLIN, [this](uint32_t) { OnAcceptable(); })) {
    *error = "failed to register listener fd";
    Stop();
    return false;
  }
  return true;
}

void Listener::Stop() {
  if (fd_ < 0) {
    return;
  }
  if (dispatcher_ != nullptr) {
    dispatcher_->UnwatchFd(fd_);
  }
  close(fd_);
  fd_ = -1;
  if (is_unix_ && !unix_path_.empty()) {
    unlink(unix_path_.c_str());
  }
}

void Listener::OnAcceptable() {
  for (;;) {
    int fd = accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
        return;
      }
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    if (!is_unix_) {
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    on_accept_(fd);
  }
}

int ConnectToAddress(const std::string& address, std::string* error) {
  struct sockaddr_storage storage;
  socklen_t len = 0;
  bool is_unix = false;
  std::string unix_path;
  if (!MakeSockaddr(address, &storage, &len, &is_unix, &unix_path, error)) {
    return -1;
  }
  int fd = socket(is_unix ? AF_UNIX : AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + strerror(errno);
    return -1;
  }
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&storage), len) != 0) {
    *error = "connect " + address + ": " + strerror(errno);
    close(fd);
    return -1;
  }
  if (!is_unix) {
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

}  // namespace karousos
