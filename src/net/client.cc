#include "src/net/client.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/net/listener.h"

namespace karousos {

WireConn::WireConn(int fd) : fd_(fd), decoder_(kDefaultMaxFrameBytes, /*expect_preface=*/false) {}

WireConn::~WireConn() {
  if (fd_ >= 0) {
    close(fd_);
  }
}

std::unique_ptr<WireConn> WireConn::Connect(const std::string& address, std::string* error) {
  int fd = ConnectToAddress(address, error);
  if (fd < 0) {
    return nullptr;
  }
  std::unique_ptr<WireConn> conn(new WireConn(fd));
  conn->scratch_.Clear();
  AppendWirePreface(&conn->scratch_);
  if (!conn->SendAll(conn->scratch_.bytes().data(), conn->scratch_.size(), error)) {
    return nullptr;
  }
  return conn;
}

bool WireConn::SendAll(const uint8_t* data, size_t size, std::string* error) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      *error = std::string("send: ") + strerror(errno);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool WireConn::SendRequest(uint64_t seq, const Value& input, std::string* error) {
  scratch_.Clear();
  EncodeRequestFrame(seq, input, &scratch_);
  return SendAll(scratch_.bytes().data(), scratch_.size(), error);
}

bool WireConn::SendShutdown(uint64_t expected_connections, std::string* error) {
  scratch_.Clear();
  EncodeShutdownFrame(expected_connections, &scratch_);
  return SendAll(scratch_.bytes().data(), scratch_.size(), error);
}

bool WireConn::FinishWrites(std::string* error) {
  if (shutdown(fd_, SHUT_WR) != 0) {
    *error = std::string("shutdown: ") + strerror(errno);
    return false;
  }
  return true;
}

bool WireConn::ReadFrame(WireFrame* out, int timeout_ms, std::string* error) {
  for (;;) {
    DecodeStatus status = decoder_.Next(&read_buf_, out);
    if (status == DecodeStatus::kFrame) {
      return true;
    }
    if (status == DecodeStatus::kError) {
      *error = "protocol error: " + decoder_.error();
      return false;
    }
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int rc = poll(&pfd, 1, timeout_ms);
    if (rc == 0) {
      *error = "timed out waiting for server frame";
      return false;
    }
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      *error = std::string("poll: ") + strerror(errno);
      return false;
    }
    uint8_t chunk[16 * 1024];
    ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      read_buf_.Append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      *error = "server closed the connection";
      return false;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
      continue;
    }
    *error = std::string("recv: ") + strerror(errno);
    return false;
  }
}

bool WireConn::ReadResponse(uint64_t* seq, Value* output, int timeout_ms, std::string* error) {
  WireFrame frame;
  if (!ReadFrame(&frame, timeout_ms, error)) {
    return false;
  }
  if (frame.type == FrameType::kError) {
    std::string message;
    if (!DecodeErrorPayload(frame.payload, &message)) {
      message = "(malformed error payload)";
    }
    *error = "server error: " + message;
    return false;
  }
  if (frame.type != FrameType::kResponse) {
    *error = "unexpected frame type " + std::to_string(static_cast<int>(frame.type)) +
             " from server";
    return false;
  }
  if (!DecodeSeqValuePayload(frame.payload, seq, output)) {
    *error = "malformed response payload";
    return false;
  }
  return true;
}

}  // namespace karousos
