// Accepting socket for the wire server. Understands two address forms:
//
//   unix:/path/to.sock   Unix-domain stream socket (stale path unlinked)
//   host:port            TCP (port 0 binds ephemeral; bound_address() then
//                        reports the kernel-chosen port)
//
// The listener registers with a Dispatcher and accept()s in a nonblocking
// loop, handing each new fd (already nonblocking, TCP_NODELAY where it
// applies) to the on_accept callback — which for the wire server assigns it
// round-robin to a worker loop via Post.
#ifndef SRC_NET_LISTENER_H_
#define SRC_NET_LISTENER_H_

#include <functional>
#include <string>

#include "src/net/dispatcher.h"

namespace karousos {

class Listener {
 public:
  using AcceptCb = std::function<void(int fd)>;

  Listener() = default;
  ~Listener();

  // Binds + listens on `address` and registers with the dispatcher.
  // Returns false with *error set on failure.
  bool Start(Dispatcher* dispatcher, const std::string& address, AcceptCb on_accept,
             std::string* error);
  void Stop();

  // The resolved listen address (ephemeral TCP ports filled in).
  const std::string& bound_address() const { return bound_address_; }
  bool is_unix() const { return is_unix_; }

 private:
  void OnAcceptable();

  Dispatcher* dispatcher_ = nullptr;
  int fd_ = -1;
  bool is_unix_ = false;
  std::string unix_path_;
  std::string bound_address_;
  AcceptCb on_accept_;
};

// Connects a blocking client socket to an address in the same syntax.
// Returns -1 with *error set on failure.
int ConnectToAddress(const std::string& address, std::string* error);

}  // namespace karousos

#endif  // SRC_NET_LISTENER_H_
