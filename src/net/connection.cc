#include "src/net/connection.h"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace karousos {

namespace {
constexpr size_t kReadChunk = 16 * 1024;
}  // namespace

Connection::Connection(Dispatcher* dispatcher, int fd, uint64_t id, size_t high_watermark,
                       size_t max_frame_bytes, Callbacks cbs)
    : dispatcher_(dispatcher),
      fd_(fd),
      id_(id),
      cbs_(std::move(cbs)),
      decoder_(max_frame_bytes, /*expect_preface=*/true) {
  read_buf_.SetWatermarks(high_watermark, high_watermark / 2);
  write_buf_.SetWatermarks(high_watermark, high_watermark / 2);
  auto recheck = [this] { UpdateRegistration(); };
  read_buf_.SetCallbacks(recheck, recheck);
  write_buf_.SetCallbacks(recheck, recheck);
  dispatcher_->WatchFd(fd_, EPOLLIN, [this](uint32_t events) { OnSocketEvent(events); });
}

Connection::~Connection() { Close(); }

void Connection::Close() {
  if (fd_ < 0) {
    return;
  }
  dispatcher_->UnwatchFd(fd_);
  close(fd_);
  fd_ = -1;
}

size_t Connection::peak_buffered_bytes() const {
  return read_buf_.peak_size() > write_buf_.peak_size() ? read_buf_.peak_size()
                                                        : write_buf_.peak_size();
}

void Connection::OnSocketEvent(uint32_t events) {
  if (fd_ < 0) {
    return;
  }
  if (events & (EPOLLERR | EPOLLHUP)) {
    // EPOLLHUP with readable bytes still pending delivers EPOLLIN too; a
    // bare hangup/error means the peer is gone.
    if (!(events & EPOLLIN)) {
      Close();
      if (cbs_.on_closed) {
        cbs_.on_closed();
      }
      return;
    }
  }
  if (events & EPOLLOUT) {
    FlushWrites();
    if (fd_ < 0) {
      return;
    }
  }
  if (events & EPOLLIN) {
    OnReadable();
  }
}

void Connection::OnReadable() {
  bool activity = false;
  uint8_t chunk[kReadChunk];
  while (fd_ >= 0 && read_enabled_) {
    ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      read_buf_.Append(chunk, static_cast<size_t>(n));
      activity = true;
      // Reject bytes that can never form a valid frame the moment they
      // arrive — don't wait for admission to pull them.
      std::string err;
      if (!decoder_.HeadValid(read_buf_, &err)) {
        FailProtocol(err);
        return;
      }
      if (read_buf_.overflowed()) {
        break;  // UpdateRegistration already dropped EPOLLIN.
      }
      continue;
    }
    if (n == 0) {
      eof_ = true;
      activity = true;
      UpdateRegistration();
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    Close();
    if (cbs_.on_closed) {
      cbs_.on_closed();
    }
    return;
  }
  if (activity && cbs_.on_activity) {
    cbs_.on_activity();
  }
}

bool Connection::NextFrame(WireFrame* out) {
  if (closed_decoder()) {
    return false;
  }
  DecodeStatus status = decoder_.Next(&read_buf_, out);
  if (status == DecodeStatus::kFrame) {
    return true;
  }
  if (status == DecodeStatus::kError) {
    FailProtocol(decoder_.error());
  }
  return false;
}

void Connection::SendResponse(uint64_t seq, const Value& output) {
  if (fd_ < 0) {
    return;
  }
  scratch_.Clear();
  EncodeResponseFrame(seq, output, &scratch_);
  write_buf_.Append(scratch_.bytes().data(), scratch_.size());
  FlushWrites();
}

void Connection::SendErrorAndClose(const std::string& message) {
  if (fd_ < 0) {
    return;
  }
  scratch_.Clear();
  EncodeErrorFrame(message, &scratch_);
  write_buf_.Append(scratch_.bytes().data(), scratch_.size());
  close_after_flush_ = true;
  if (FlushWrites()) {
    Close();
    if (cbs_.on_closed) {
      cbs_.on_closed();
    }
  }
}

bool Connection::FlushWrites() {
  while (fd_ >= 0 && !write_buf_.empty()) {
    ssize_t n = send(fd_, write_buf_.data(), write_buf_.size(), MSG_NOSIGNAL);
    if (n > 0) {
      write_buf_.Drain(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!want_write_) {
        want_write_ = true;
        UpdateRegistration();
      }
      return false;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    Close();
    if (cbs_.on_closed) {
      cbs_.on_closed();
    }
    return false;
  }
  if (fd_ < 0) {
    return false;
  }
  if (want_write_) {
    want_write_ = false;
    UpdateRegistration();
  }
  if (close_after_flush_) {
    Close();
    if (cbs_.on_closed) {
      cbs_.on_closed();
    }
    return false;
  }
  return true;
}

void Connection::UpdateRegistration() {
  if (fd_ < 0) {
    return;
  }
  bool want_read = !eof_ && !read_buf_.overflowed() && !write_buf_.overflowed();
  if (want_read != read_enabled_ && !want_read && !eof_) {
    ++read_disables_;  // Watermark-driven only: EOF is not backpressure.
  }
  read_enabled_ = want_read;
  uint32_t events = 0;
  if (want_read) {
    events |= EPOLLIN;
  }
  if (want_write_) {
    events |= EPOLLOUT;
  }
  dispatcher_->ModifyFd(fd_, events);
}

void Connection::FailProtocol(const std::string& message) {
  if (!proto_error_.empty()) {
    return;
  }
  proto_error_ = message;
  SendErrorAndClose(message);
}

}  // namespace karousos
