// Watermark-bounded byte buffer for per-connection flow control (model:
// Envoy's WatermarkBuffer). A connection owns one of these per direction;
// when either buffer rises above its high watermark the connection stops
// reading from its socket, so a slow or malicious peer cannot balloon the
// server's resident memory — unread request bytes stay in the kernel socket
// buffer and TCP backpressure pushes back to the client.
//
// Crossing semantics match Envoy's: the above-high callback fires when size
// first exceeds `high`, the below-low callback when size first falls back to
// `low` or less — each exactly once per crossing (hysteresis, so a producer
// oscillating around the high mark does not flap).
#ifndef SRC_NET_BUFFER_H_
#define SRC_NET_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace karousos {

class WatermarkBuffer {
 public:
  WatermarkBuffer() = default;

  // high == 0 disables watermarking entirely (never overflows). Otherwise
  // `low` must be < high; callers normally use high/2.
  void SetWatermarks(size_t high, size_t low);
  void SetCallbacks(std::function<void()> above_high, std::function<void()> below_low);

  void Append(const uint8_t* data, size_t n);
  // Consumes n bytes from the front (n <= size()).
  void Drain(size_t n);

  // Contiguous view of the unconsumed bytes.
  const uint8_t* data() const { return buf_.data() + head_; }
  size_t size() const { return buf_.size() - head_; }
  bool empty() const { return size() == 0; }

  // Hysteresis state: set when size exceeded `high`, cleared when size fell
  // back to `low` or less. This is what a connection consults to decide
  // whether to keep reading.
  bool overflowed() const { return overflowed_; }
  size_t high_watermark() const { return high_; }
  // Largest size() ever observed (bench/test accounting).
  size_t peak_size() const { return peak_; }

 private:
  void CheckHigh();
  void CheckLow();

  std::vector<uint8_t> buf_;
  size_t head_ = 0;
  size_t high_ = 0;
  size_t low_ = 0;
  bool overflowed_ = false;
  size_t peak_ = 0;
  std::function<void()> above_high_;
  std::function<void()> below_low_;
};

}  // namespace karousos

#endif  // SRC_NET_BUFFER_H_
