// The event-driven network front-end: a Listener thread accepting TCP or
// Unix-domain connections plus N worker event loops, each owning a full
// Server instance (its record shard). Connections are assigned to workers
// round-robin by accept order; worker w serves its requests with seed
// config.server.seed + w, so each shard's trace and advice audit
// independently and a collector can gather shards in worker order.
//
// Two serving modes:
//
//   * Batch (deterministic oracle mode): request frames accumulate until the
//     drain signal arrives and every connection has half-closed; the worker
//     then sorts its requests by client sequence number and serves them with
//     the same admit-while-capacity/step loop Server::Run uses. The shard's
//     trace and advice are byte-identical to an in-process
//     Server(seed + w).Run(shard_inputs) — the equivalence the wire tests
//     pin down.
//
//   * Live: requests are admitted as they decode, interleaved with I/O, up
//     to the concurrency window; responses stream back as requests complete.
//     The schedule depends on arrival timing, so equivalence is at the
//     verdict level: the resulting shard still audits to the same
//     (accepted, reason, rule, diagnostics) as an in-process run.
//
// Drain protocol: a client shutdown frame (optionally carrying the total
// number of connections the load opened, so the drain cannot outrun
// connections still sitting in the accept backlog) or WireServer::Stop()
// closes the listener and posts drain to every worker; each worker finishes
// outstanding work, finalizes its shard (FinishRun, including epoch
// rollover's MergeSlices when segments are configured), flushes client
// writes, and exits its loop. Wait() joins everything and returns the
// per-shard results plus edge counters.
#ifndef SRC_NET_WIRE_SERVER_H_
#define SRC_NET_WIRE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/connection.h"
#include "src/net/dispatcher.h"
#include "src/net/listener.h"
#include "src/server/server.h"

namespace karousos {

struct WireServerConfig {
  std::string listen = "unix:/tmp/karousos.sock";
  // Worker event loops == record shards.
  size_t workers = 1;
  // Batch mode (see file comment). Live when false.
  bool batch = false;
  // Per-connection, per-direction buffer high watermark (low = high/2).
  size_t high_watermark = 1u << 20;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Shard server config; worker w runs with seed = server.seed + w.
  ServerConfig server;
};

struct WireShardResult {
  size_t worker = 0;
  size_t connections = 0;
  size_t requests = 0;
  ServerRunResult run;
};

struct WireServerReport {
  bool ok = false;
  std::string error;
  std::vector<WireShardResult> shards;  // Worker order.
  size_t connections = 0;
  size_t requests = 0;
  size_t responses = 0;
  size_t frames = 0;
  size_t protocol_errors = 0;
  uint64_t read_disables = 0;
  // Largest resident buffer any connection ever held (the slow-client
  // bounded-memory number: stays within high_watermark + one read chunk).
  size_t peak_connection_buffered_bytes = 0;
  double serve_seconds = 0;
};

class WireWorker;

class WireServer {
 public:
  WireServer(const Program& program, WireServerConfig config);
  ~WireServer();

  // Binds the listener and spawns the listener + worker threads. Returns
  // false with *error set on bind/setup failure.
  bool Start(std::string* error);
  // Resolved listen address (ephemeral TCP port filled in).
  const std::string& bound_address() const { return bound_address_; }

  // Initiates drain (idempotent, thread-safe). Wait() returns once every
  // worker has finalized its shard.
  void Stop();
  WireServerReport Wait();

 private:
  friend class WireWorker;

  // Listener-thread callback: assign fd round-robin to a worker.
  void OnAccept(int fd);
  // Called by workers on a client shutdown frame. expected_connections == 0
  // drains immediately; otherwise drain waits until that many accepts.
  void OnShutdownFrame(uint64_t expected_connections);
  void MaybeInitiateDrain();
  void InitiateDrain();

  const Program& program_;
  WireServerConfig config_;
  std::string bound_address_;

  Dispatcher listener_dispatcher_;
  Listener listener_;
  std::thread listener_thread_;

  std::vector<std::unique_ptr<WireWorker>> workers_;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> expected_connections_{0};
  std::atomic<bool> drain_started_{false};
  std::atomic<size_t> workers_done_{0};
  bool started_ = false;
  bool waited_ = false;
};

}  // namespace karousos

#endif  // SRC_NET_WIRE_SERVER_H_
