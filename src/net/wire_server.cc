#include "src/net/wire_server.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>

namespace karousos {

namespace {
// Live-mode pump: at most this many dispatch-loop steps per loop iteration,
// so a deep handler backlog cannot starve epoll service.
constexpr int kMaxStepsPerPump = 64;
// Final-flush polling cadence and give-up budget (a peer that never drains
// its responses is force-closed after this many polls).
constexpr uint64_t kFlushPollMs = 10;
constexpr int kFlushPollBudget = 500;
}  // namespace

// One worker event loop owning one record shard (a full Server instance).
// All members are touched only on the worker thread; cross-thread entry is
// via dispatcher_.Post.
class WireWorker {
 public:
  WireWorker(WireServer* owner, size_t index)
      : owner_(owner), index_(index), config_(owner->config_) {
    ServerConfig shard = config_.server;
    shard.seed = config_.server.seed + index;
    server_ = std::make_unique<Server>(owner->program_, shard);
    result_.worker = index;
  }

  void Start() {
    thread_ = std::thread([this] { ThreadMain(); });
  }

  // Any thread. Ownership of fd passes to the worker loop.
  void AddConnection(int fd) {
    dispatcher_.Post([this, fd] { OnNewConnection(fd); });
  }

  // Any thread.
  void RequestDrain() {
    dispatcher_.Post([this] {
      drain_ = true;
      if (!config_.batch) {
        SchedulePump();
      }
      MaybeFinish();
    });
  }

  void Join() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  WireShardResult TakeShard() { return std::move(result_); }
  size_t responses() const { return stats_responses_; }
  size_t frames() const { return stats_frames_; }
  size_t protocol_errors() const { return stats_protocol_errors_; }
  uint64_t read_disables() const { return stats_read_disables_; }
  size_t peak_buffered() const { return stats_peak_buffered_; }

 private:
  struct BatchEntry {
    uint64_t seq = 0;
    Value input;
    uint64_t conn_id = 0;
  };

  void ThreadMain() {
    server_->set_capture_responses(true);
    if (!config_.batch) {
      // Live mode runs one long incremental run; batch defers BeginRun to
      // serve time so its shard state is exactly a fresh Run's.
      server_->BeginRun();
      began_ = true;
    }
    dispatcher_.Run();
  }

  void OnNewConnection(int fd) {
    uint64_t id = next_conn_id_++;
    Connection::Callbacks cbs;
    cbs.on_activity = [this, id] { OnActivity(id); };
    cbs.on_closed = [this, id] { OnClosed(id); };
    conns_[id] = std::make_unique<Connection>(&dispatcher_, fd, id, config_.high_watermark,
                                              config_.max_frame_bytes, std::move(cbs));
    ++result_.connections;
  }

  void OnActivity(uint64_t id) {
    if (config_.batch) {
      PullBatchFrames(id);
      MaybeFinish();
    } else {
      SchedulePump();
    }
  }

  void OnClosed(uint64_t id) {
    auto it = conns_.find(id);
    if (it == conns_.end()) {
      return;
    }
    if (!it->second->error().empty()) {
      ++stats_protocol_errors_;
    }
    AbsorbStats(*it->second);
    // The close may originate inside the connection's own callbacks; defer
    // destruction to the end of the loop iteration.
    dispatcher_.DeferDelete(std::move(it->second));
    conns_.erase(it);
    MaybeFinish();
  }

  void AbsorbStats(const Connection& conn) {
    stats_frames_ += conn.frames_decoded();
    stats_read_disables_ += conn.read_disable_count();
    stats_peak_buffered_ = std::max(stats_peak_buffered_, conn.peak_buffered_bytes());
  }

  // --- Frame handling -----------------------------------------------------

  // Handles one decoded frame. Returns true for an admitted request (live)
  // or recorded request (batch); control frames return false.
  bool HandleFrame(uint64_t conn_id, WireFrame&& frame) {
    Connection* conn = FindConn(conn_id);
    switch (frame.type) {
      case FrameType::kRequest: {
        if (finished_run_) {
          if (conn != nullptr) {
            conn->SendErrorAndClose("server draining");
          }
          return false;
        }
        uint64_t seq = 0;
        Value input;
        if (!DecodeSeqValuePayload(frame.payload, &seq, &input)) {
          if (conn != nullptr) {
            conn->SendErrorAndClose("malformed request payload");
          }
          return false;
        }
        if (config_.batch) {
          batch_.push_back(BatchEntry{seq, std::move(input), conn_id});
        } else {
          RequestId rid = server_->InjectRequest(input);
          rid_routes_[rid] = {conn_id, seq};
        }
        ++result_.requests;
        return true;
      }
      case FrameType::kShutdown: {
        uint64_t expected = 0;
        if (!DecodeShutdownPayload(frame.payload, &expected)) {
          if (conn != nullptr) {
            conn->SendErrorAndClose("malformed shutdown payload");
          }
          return false;
        }
        owner_->OnShutdownFrame(expected);
        return false;
      }
      default:
        if (conn != nullptr) {
          conn->SendErrorAndClose("unexpected frame type from client");
        }
        return false;
    }
  }

  Connection* FindConn(uint64_t id) {
    auto it = conns_.find(id);
    return it == conns_.end() ? nullptr : it->second.get();
  }

  // --- Batch mode ---------------------------------------------------------

  void PullBatchFrames(uint64_t id) {
    // Batch frames never wait for admission: pull them out of the read
    // buffer immediately (backpressure is a live-mode concern).
    for (;;) {
      Connection* conn = FindConn(id);
      if (conn == nullptr || !conn->FrameReady()) {
        return;
      }
      WireFrame frame;
      if (!conn->NextFrame(&frame)) {
        return;  // Decoder error: FailProtocol already closed the conn.
      }
      HandleFrame(id, std::move(frame));
    }
  }

  bool AllConnsQuiet() const {
    for (const auto& [id, conn] : conns_) {
      if (!conn->read_eof() && !conn->closed()) {
        return false;
      }
    }
    return true;
  }

  void ServeBatch() {
    began_ = true;
    // Client sequence order is the canonical schedule: the shard serves
    // exactly the inputs an in-process Server(seed + index).Run(shard)
    // would, regardless of interleaved arrival across connections.
    std::stable_sort(batch_.begin(), batch_.end(),
                     [](const BatchEntry& a, const BatchEntry& b) { return a.seq < b.seq; });
    server_->BeginRun(batch_.size());
    size_t next = 0;
    const size_t window = static_cast<size_t>(config_.server.concurrency);
    while (next < batch_.size() || server_->in_flight_count() > 0) {
      while (server_->in_flight_count() < window && next < batch_.size()) {
        server_->InjectRequest(batch_[next].input);
        ++next;
      }
      if (!server_->StepOne()) {
        break;
      }
    }
    for (const CompletedRequest& done : server_->TakeCompleted()) {
      // rid r was the r-th admission, i.e. batch_[r - 1] after the sort.
      const BatchEntry& entry = batch_[done.rid - 1];
      if (Connection* conn = FindConn(entry.conn_id)) {
        conn->SendResponse(entry.seq, done.response);
        ++stats_responses_;
      }
    }
    result_.run = server_->FinishRun();
    finished_run_ = true;
  }

  // --- Live mode ----------------------------------------------------------

  void SchedulePump() {
    if (pump_scheduled_ || finished_run_) {
      return;
    }
    pump_scheduled_ = true;
    dispatcher_.Post([this] { PumpLive(); });
  }

  bool AdmitOneLive() {
    if (conns_.empty()) {
      return false;
    }
    // Round-robin across connections for admission fairness.
    std::vector<uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) {
      ids.push_back(id);
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      uint64_t id = ids[(admit_cursor_ + i) % ids.size()];
      Connection* conn = FindConn(id);
      if (conn == nullptr || !conn->FrameReady()) {
        continue;
      }
      WireFrame frame;
      if (!conn->NextFrame(&frame)) {
        continue;
      }
      bool admitted = HandleFrame(id, std::move(frame));
      if (admitted) {
        admit_cursor_ = (admit_cursor_ + i + 1) % ids.size();
        return true;
      }
      // Control frame: keep scanning from the same cursor.
    }
    return false;
  }

  bool HasReadyFrame() {
    for (const auto& [id, conn] : conns_) {
      if (conn->FrameReady()) {
        return true;
      }
    }
    return false;
  }

  void DeliverCompleted() {
    for (const CompletedRequest& done : server_->TakeCompleted()) {
      auto it = rid_routes_.find(done.rid);
      if (it == rid_routes_.end()) {
        continue;
      }
      if (Connection* conn = FindConn(it->second.first)) {
        conn->SendResponse(it->second.second, done.response);
        ++stats_responses_;
      }
      rid_routes_.erase(it);
    }
  }

  void PumpLive() {
    pump_scheduled_ = false;
    if (finished_run_) {
      return;
    }
    const size_t window = static_cast<size_t>(config_.server.concurrency);
    int steps = 0;
    bool progress = true;
    while (progress && steps < kMaxStepsPerPump) {
      progress = false;
      while (server_->in_flight_count() < window && AdmitOneLive()) {
        progress = true;
      }
      if (server_->has_runnable() && server_->StepOne()) {
        ++steps;
        progress = true;
      }
      DeliverCompleted();
    }
    if (server_->has_runnable() || (server_->in_flight_count() < window && HasReadyFrame())) {
      SchedulePump();  // More work: yield to epoll, then continue.
      return;
    }
    MaybeFinish();
  }

  // --- Drain / finish -----------------------------------------------------

  void MaybeFinish() {
    if (!drain_ || finished_run_ || finishing_) {
      return;
    }
    if (config_.batch) {
      if (!AllConnsQuiet()) {
        return;
      }
      ServeBatch();
    } else {
      if (server_->has_runnable() || server_->in_flight_count() > 0 || HasReadyFrame()) {
        return;
      }
      if (!began_) {
        server_->BeginRun();
        began_ = true;
      }
      result_.run = server_->FinishRun();
      finished_run_ = true;
    }
    finishing_ = true;
    flush_polls_left_ = kFlushPollBudget;
    PollFlush();
  }

  void PollFlush() {
    // Id-indexed loop: FlushWrites may close a connection and erase it from
    // conns_ via on_closed, so map iterators cannot be held across it.
    std::vector<uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) {
      ids.push_back(id);
    }
    bool all_drained = true;
    for (uint64_t id : ids) {
      Connection* conn = FindConn(id);
      if (conn == nullptr || conn->closed()) {
        continue;
      }
      if (!conn->FlushWrites()) {
        Connection* again = FindConn(id);
        if (again != nullptr && !again->closed() && !again->write_drained()) {
          all_drained = false;
        }
      }
    }
    if (all_drained || --flush_polls_left_ <= 0) {
      Shutdown();
      return;
    }
    dispatcher_.AddTimer(kFlushPollMs, [this] { PollFlush(); });
  }

  void Shutdown() {
    for (auto& [id, conn] : conns_) {
      AbsorbStats(*conn);
      conn->Close();
    }
    conns_.clear();
    dispatcher_.Stop();
  }

  WireServer* owner_;
  size_t index_;
  const WireServerConfig& config_;
  Dispatcher dispatcher_;
  std::thread thread_;
  std::unique_ptr<Server> server_;

  std::map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;
  size_t admit_cursor_ = 0;

  std::vector<BatchEntry> batch_;
  std::unordered_map<RequestId, std::pair<uint64_t, uint64_t>> rid_routes_;

  bool began_ = false;
  bool drain_ = false;
  bool pump_scheduled_ = false;
  bool finished_run_ = false;
  bool finishing_ = false;
  int flush_polls_left_ = 0;

  WireShardResult result_;
  size_t stats_responses_ = 0;
  size_t stats_frames_ = 0;
  size_t stats_protocol_errors_ = 0;
  uint64_t stats_read_disables_ = 0;
  size_t stats_peak_buffered_ = 0;
};

WireServer::WireServer(const Program& program, WireServerConfig config)
    : program_(program), config_(std::move(config)) {
  if (config_.workers == 0) {
    config_.workers = 1;
  }
}

WireServer::~WireServer() {
  if (started_ && !waited_) {
    Stop();
    Wait();
  }
}

bool WireServer::Start(std::string* error) {
  for (size_t w = 0; w < config_.workers; ++w) {
    workers_.push_back(std::make_unique<WireWorker>(this, w));
  }
  if (!listener_.Start(&listener_dispatcher_, config_.listen, [this](int fd) { OnAccept(fd); },
                       error)) {
    workers_.clear();
    return false;
  }
  bound_address_ = listener_.bound_address();
  for (auto& worker : workers_) {
    worker->Start();
  }
  listener_thread_ = std::thread([this] { listener_dispatcher_.Run(); });
  started_ = true;
  return true;
}

void WireServer::OnAccept(int fd) {
  uint64_t n = accepted_.fetch_add(1);
  workers_[n % workers_.size()]->AddConnection(fd);
  MaybeInitiateDrain();
}

void WireServer::OnShutdownFrame(uint64_t expected_connections) {
  if (expected_connections == 0) {
    InitiateDrain();
    return;
  }
  expected_connections_.store(expected_connections);
  MaybeInitiateDrain();
}

void WireServer::MaybeInitiateDrain() {
  uint64_t expected = expected_connections_.load();
  if (expected > 0 && accepted_.load() >= expected) {
    InitiateDrain();
  }
}

void WireServer::InitiateDrain() {
  if (drain_started_.exchange(true)) {
    return;
  }
  listener_dispatcher_.Post([this] {
    listener_.Stop();
    listener_dispatcher_.Stop();
  });
  for (auto& worker : workers_) {
    worker->RequestDrain();
  }
}

void WireServer::Stop() { InitiateDrain(); }

WireServerReport WireServer::Wait() {
  WireServerReport report;
  if (!started_) {
    report.error = "server was never started";
    return report;
  }
  if (listener_thread_.joinable()) {
    listener_thread_.join();
  }
  for (auto& worker : workers_) {
    worker->Join();
  }
  waited_ = true;
  for (auto& worker : workers_) {
    WireShardResult shard = worker->TakeShard();
    report.connections += shard.connections;
    report.requests += shard.requests;
    report.responses += worker->responses();
    report.frames += worker->frames();
    report.protocol_errors += worker->protocol_errors();
    report.read_disables += worker->read_disables();
    report.peak_connection_buffered_bytes =
        std::max(report.peak_connection_buffered_bytes, worker->peak_buffered());
    report.serve_seconds = std::max(report.serve_seconds, shard.run.serve_seconds);
    report.shards.push_back(std::move(shard));
  }
  report.ok = true;
  return report;
}

}  // namespace karousos
