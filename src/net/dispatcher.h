// Single-threaded epoll event loop (model: Envoy's DispatcherImpl). One
// Dispatcher runs per network thread — the listener thread and each worker —
// and everything a thread owns (fds, timers, connections) is touched only
// from its loop, so the network edge needs no locks around connection or
// server state.
//
//   * Level-triggered epoll: callbacks run while the condition holds; a
//     read-disabled connection simply drops EPOLLIN from its registration
//     and the kernel socket buffer applies backpressure.
//   * Timer wheel: one-shot timers on a fixed-tick wheel (5ms x 256 slots,
//     longer delays ride the wheel multiple rounds). Used for flush/drain
//     deadlines; precision is one tick, which is all the edge needs.
//   * Post(): thread-safe handoff into the loop (eventfd wakeup) — how the
//     listener thread assigns accepted sockets to workers and how Stop
//     reaches a sleeping loop.
//   * Deferred delete: objects whose callbacks may be on the stack (a
//     connection closing itself from its own read callback) are handed to
//     DeferDelete and destroyed at the end of the loop iteration, never
//     mid-callback.
#ifndef SRC_NET_DISPATCHER_H_
#define SRC_NET_DISPATCHER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace karousos {

// Base for anything whose destruction must wait for the end of the current
// loop iteration.
struct DeferredDeletable {
  virtual ~DeferredDeletable() = default;
};

class Dispatcher {
 public:
  using FdEventCb = std::function<void(uint32_t epoll_events)>;
  using TimerId = uint64_t;

  Dispatcher();
  ~Dispatcher();

  bool ok() const { return epoll_fd_ >= 0 && wakeup_fd_ >= 0; }

  // Fd registration (loop thread only). `events` is an EPOLLIN/EPOLLOUT mask.
  bool WatchFd(int fd, uint32_t events, FdEventCb cb);
  bool ModifyFd(int fd, uint32_t events);
  void UnwatchFd(int fd);

  // One-shot timer after `delay_ms` (loop thread only; rounds up to a tick).
  TimerId AddTimer(uint64_t delay_ms, std::function<void()> cb);
  void CancelTimer(TimerId id);

  // Thread-safe: enqueues fn to run on the loop thread and wakes the loop.
  void Post(std::function<void()> fn);

  // Destroys obj at the end of the current loop iteration (loop thread only).
  void DeferDelete(std::unique_ptr<DeferredDeletable> obj);

  // Runs until Stop(). Stop is thread-safe and idempotent.
  void Run();
  void Stop();

  static constexpr uint64_t kTickMs = 5;
  static constexpr size_t kWheelSlots = 256;

 private:
  void DrainWakeup();
  // Fires every due timer; advances the wheel by the wall-clock ticks that
  // elapsed since the last call.
  void AdvanceWheel();
  // Milliseconds until the next armed tick boundary (-1 when no timers).
  int TimerWaitMs() const;

  struct Timer {
    TimerId id = 0;
    uint64_t rounds = 0;  // Full wheel revolutions left before firing.
    std::function<void()> cb;
  };

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
  std::map<int, FdEventCb> fd_cbs_;

  std::vector<Timer> wheel_[kWheelSlots];
  size_t wheel_pos_ = 0;
  uint64_t wheel_last_advance_ms_ = 0;
  size_t armed_timers_ = 0;
  TimerId next_timer_id_ = 1;
  std::unordered_set<TimerId> cancelled_;

  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;
  bool stop_requested_ = false;  // Guarded by post_mutex_.

  std::vector<std::unique_ptr<DeferredDeletable>> deferred_;
  bool running_ = false;
};

}  // namespace karousos

#endif  // SRC_NET_DISPATCHER_H_
