// One accepted socket on a worker's event loop. A Connection owns the fd,
// a watermark-bounded buffer per direction, and a FrameDecoder; the worker
// pulls decoded request frames from it at admission time and pushes response
// frames back through it.
//
// Flow control: decoded-but-unadmitted request frames stay in the read
// buffer, so the read buffer's size is exactly the connection's resident
// backlog. Reads stay enabled only while neither buffer is overflowed and
// the peer has not half-closed — a client that floods requests faster than
// the scheduler admits them, or that never drains its responses, gets its
// EPOLLIN dropped and the kernel socket buffer pushes back (the slow-client
// bounded-memory property the bench asserts).
//
// Connection derives DeferredDeletable because it routinely closes itself
// from inside its own read callback (protocol error, EOF); the owner moves
// it to Dispatcher::DeferDelete rather than destroying it mid-callback.
#ifndef SRC_NET_CONNECTION_H_
#define SRC_NET_CONNECTION_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/net/buffer.h"
#include "src/net/dispatcher.h"
#include "src/net/frame.h"

namespace karousos {

class Connection : public DeferredDeletable {
 public:
  struct Callbacks {
    // A read completed and frames may be ready (or EOF/error state changed).
    std::function<void()> on_activity;
    // The connection transitioned to closed (protocol error or peer reset).
    // The owner should Unregister + DeferDelete it.
    std::function<void()> on_closed;
  };

  // Takes ownership of fd (nonblocking). `id` is the owner's handle.
  Connection(Dispatcher* dispatcher, int fd, uint64_t id, size_t high_watermark,
             size_t max_frame_bytes, Callbacks cbs);
  ~Connection() override;

  uint64_t id() const { return id_; }
  bool closed() const { return fd_ < 0; }
  // Peer sent SHUT_WR / EOF: no further requests will arrive, but buffered
  // frames remain servable and responses can still be written.
  bool read_eof() const { return eof_; }
  const std::string& error() const { return proto_error_; }

  // True when a complete request frame is buffered and decodable.
  bool FrameReady() const { return !closed_decoder() && decoder_.FrameReady(read_buf_); }
  // Pulls the next complete frame. Returns false if none ready or the
  // decoder hit a protocol error (which closes the connection).
  bool NextFrame(WireFrame* out);

  // Queues a response frame (preface-free server->client direction) and
  // flushes as much as the socket accepts.
  void SendResponse(uint64_t seq, const Value& output);
  // Queues an error frame, flushes, then closes once drained (or now if the
  // write buffer cannot drain).
  void SendErrorAndClose(const std::string& message);
  // Flushes pending writes; returns true when the write buffer is empty.
  bool FlushWrites();
  bool write_drained() const { return write_buf_.empty(); }

  void Close();

  // Accounting for the report/bench.
  size_t read_buffered_bytes() const { return read_buf_.size(); }
  size_t peak_buffered_bytes() const;
  size_t frames_decoded() const { return decoder_.frames_decoded(); }
  uint64_t read_disable_count() const { return read_disables_; }

 private:
  bool closed_decoder() const { return !proto_error_.empty(); }
  void OnSocketEvent(uint32_t events);
  void OnReadable();
  void UpdateRegistration();
  void FailProtocol(const std::string& message);

  Dispatcher* dispatcher_;
  int fd_;
  uint64_t id_;
  Callbacks cbs_;
  WatermarkBuffer read_buf_;
  WatermarkBuffer write_buf_;
  FrameDecoder decoder_;
  bool eof_ = false;
  bool close_after_flush_ = false;
  bool want_write_ = false;
  bool read_enabled_ = true;
  uint64_t read_disables_ = 0;
  std::string proto_error_;
  ByteWriter scratch_;
};

}  // namespace karousos

#endif  // SRC_NET_CONNECTION_H_
