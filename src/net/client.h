// Blocking client side of the wire protocol: one WireConn per socket. Used
// by the open-loop load driver (src/workload/wire_load), the CLI `load`
// subcommand, and the wire tests. Writes go out eagerly; reads poll with a
// deadline and decode through the same torn-frame-safe FrameDecoder the
// server uses.
#ifndef SRC_NET_CLIENT_H_
#define SRC_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/value.h"
#include "src/net/buffer.h"
#include "src/net/frame.h"

namespace karousos {

class WireConn {
 public:
  // Connects and sends the client preface. Returns null with *error set on
  // failure. Address syntax matches the listener: unix:/path or host:port.
  static std::unique_ptr<WireConn> Connect(const std::string& address, std::string* error);

  ~WireConn();

  bool SendRequest(uint64_t seq, const Value& input, std::string* error);
  bool SendShutdown(uint64_t expected_connections, std::string* error);
  // Half-close: no more frames will be sent (batch mode's end-of-requests
  // signal). The read side stays open for responses.
  bool FinishWrites(std::string* error);

  // Blocks (up to timeout_ms) for the next server frame. Returns false on
  // timeout, EOF, socket error, or protocol error, with *error set.
  bool ReadFrame(WireFrame* out, int timeout_ms, std::string* error);
  // ReadFrame specialized to a response frame; error frames surface their
  // message in *error.
  bool ReadResponse(uint64_t* seq, Value* output, int timeout_ms, std::string* error);

  // True when a complete frame is already decoded-ready in the userspace
  // read buffer. A poll() on fd() sees only kernel-buffered bytes; callers
  // multiplexing several connections must drain buffered frames first or a
  // burst of responses read in one recv() would strand frames behind an
  // idle socket.
  bool HasBufferedFrame() const { return decoder_.FrameReady(read_buf_); }

  int fd() const { return fd_; }

 private:
  explicit WireConn(int fd);
  bool SendAll(const uint8_t* data, size_t size, std::string* error);

  int fd_;
  WatermarkBuffer read_buf_;
  FrameDecoder decoder_;
  ByteWriter scratch_;
};

}  // namespace karousos

#endif  // SRC_NET_CLIENT_H_
