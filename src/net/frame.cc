#include "src/net/frame.h"

#include <cstring>

namespace karousos {

void AppendWirePreface(ByteWriter* out) {
  out->WriteBytes(reinterpret_cast<const uint8_t*>(kWirePreface), kWirePrefaceBytes);
}

void EncodeFrame(FrameType type, const uint8_t* payload, size_t size, ByteWriter* out) {
  out->Reserve(kWireFrameHeaderBytes + size);
  out->WriteByte(static_cast<uint8_t>(type));
  uint32_t len = static_cast<uint32_t>(size);
  out->WriteByte(static_cast<uint8_t>(len));
  out->WriteByte(static_cast<uint8_t>(len >> 8));
  out->WriteByte(static_cast<uint8_t>(len >> 16));
  out->WriteByte(static_cast<uint8_t>(len >> 24));
  out->WriteBytes(payload, size);
}

namespace {

void EncodeSeqValueFrame(FrameType type, uint64_t seq, const Value& value, ByteWriter* out) {
  ByteWriter payload;
  payload.WriteVarint(seq);
  payload.WriteValue(value);
  EncodeFrame(type, payload.bytes().data(), payload.size(), out);
}

}  // namespace

void EncodeRequestFrame(uint64_t seq, const Value& input, ByteWriter* out) {
  EncodeSeqValueFrame(FrameType::kRequest, seq, input, out);
}

void EncodeResponseFrame(uint64_t seq, const Value& output, ByteWriter* out) {
  EncodeSeqValueFrame(FrameType::kResponse, seq, output, out);
}

void EncodeShutdownFrame(ByteWriter* out) {
  EncodeFrame(FrameType::kShutdown, nullptr, 0, out);
}

void EncodeShutdownFrame(uint64_t expected_connections, ByteWriter* out) {
  if (expected_connections == 0) {
    EncodeShutdownFrame(out);
    return;
  }
  ByteWriter payload;
  payload.WriteVarint(expected_connections);
  EncodeFrame(FrameType::kShutdown, payload.bytes().data(), payload.size(), out);
}

void EncodeErrorFrame(std::string_view message, ByteWriter* out) {
  ByteWriter payload;
  payload.WriteString(message);
  EncodeFrame(FrameType::kError, payload.bytes().data(), payload.size(), out);
}

FrameDecoder::FrameDecoder(size_t max_frame_bytes, bool expect_preface)
    : max_frame_bytes_(max_frame_bytes), need_preface_(expect_preface) {}

DecodeStatus FrameDecoder::Fail(std::string message) {
  dead_ = true;
  error_ = std::move(message);
  return DecodeStatus::kError;
}

DecodeStatus FrameDecoder::Next(WatermarkBuffer* in, WireFrame* out) {
  if (dead_) {
    return DecodeStatus::kError;
  }
  if (need_preface_) {
    if (in->size() < kWirePrefaceBytes) {
      // Whatever prefix has arrived must still match: reject garbage before
      // buffering a malformed connection's bytes any further.
      if (std::memcmp(in->data(), kWirePreface, in->size()) != 0) {
        return Fail("bad connection preface");
      }
      return DecodeStatus::kNeedMore;
    }
    if (std::memcmp(in->data(), kWirePreface, kWirePrefaceBytes) != 0) {
      return Fail("bad connection preface");
    }
    in->Drain(kWirePrefaceBytes);
    need_preface_ = false;
  }
  if (in->size() < kWireFrameHeaderBytes) {
    return DecodeStatus::kNeedMore;
  }
  const uint8_t* head = in->data();
  uint8_t type = head[0];
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kError)) {
    return Fail("unknown frame type " + std::to_string(type));
  }
  uint32_t length = static_cast<uint32_t>(head[1]) | (static_cast<uint32_t>(head[2]) << 8) |
                    (static_cast<uint32_t>(head[3]) << 16) |
                    (static_cast<uint32_t>(head[4]) << 24);
  if (length > max_frame_bytes_) {
    return Fail("frame length " + std::to_string(length) + " exceeds limit " +
                std::to_string(max_frame_bytes_));
  }
  if (in->size() < kWireFrameHeaderBytes + length) {
    return DecodeStatus::kNeedMore;
  }
  out->type = static_cast<FrameType>(type);
  out->payload.assign(head + kWireFrameHeaderBytes, head + kWireFrameHeaderBytes + length);
  in->Drain(kWireFrameHeaderBytes + length);
  ++frames_;
  return DecodeStatus::kFrame;
}

bool FrameDecoder::FrameReady(const WatermarkBuffer& in) const {
  if (dead_) {
    return false;
  }
  size_t offset = 0;
  if (need_preface_) {
    if (in.size() < kWirePrefaceBytes) {
      return false;
    }
    offset = kWirePrefaceBytes;
  }
  if (in.size() < offset + kWireFrameHeaderBytes) {
    return false;
  }
  const uint8_t* head = in.data() + offset;
  uint32_t length = static_cast<uint32_t>(head[1]) | (static_cast<uint32_t>(head[2]) << 8) |
                    (static_cast<uint32_t>(head[3]) << 16) |
                    (static_cast<uint32_t>(head[4]) << 24);
  // A frame that can never complete (oversized) still counts as "ready":
  // Next() must run to latch the protocol error.
  if (length > max_frame_bytes_) {
    return true;
  }
  return in.size() >= offset + kWireFrameHeaderBytes + length;
}

bool FrameDecoder::HeadValid(const WatermarkBuffer& in, std::string* error) const {
  if (dead_) {
    *error = error_;
    return false;
  }
  size_t offset = 0;
  if (need_preface_) {
    size_t check = in.size() < kWirePrefaceBytes ? in.size() : kWirePrefaceBytes;
    if (std::memcmp(in.data(), kWirePreface, check) != 0) {
      *error = "bad connection preface";
      return false;
    }
    if (in.size() < kWirePrefaceBytes) {
      return true;  // Prefix matches so far; need more bytes to judge.
    }
    offset = kWirePrefaceBytes;
  }
  if (in.size() < offset + kWireFrameHeaderBytes) {
    return true;
  }
  const uint8_t* head = in.data() + offset;
  uint8_t type = head[0];
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kError)) {
    *error = "unknown frame type " + std::to_string(type);
    return false;
  }
  uint32_t length = static_cast<uint32_t>(head[1]) | (static_cast<uint32_t>(head[2]) << 8) |
                    (static_cast<uint32_t>(head[3]) << 16) |
                    (static_cast<uint32_t>(head[4]) << 24);
  if (length > max_frame_bytes_) {
    *error = "frame length " + std::to_string(length) + " exceeds limit " +
             std::to_string(max_frame_bytes_);
    return false;
  }
  return true;
}

bool DecodeSeqValuePayload(const std::vector<uint8_t>& payload, uint64_t* seq, Value* value) {
  ByteReader reader(payload);
  auto s = reader.ReadVarint();
  if (!s) {
    return false;
  }
  auto v = reader.ReadValue();
  if (!v || !reader.AtEnd()) {
    return false;
  }
  *seq = *s;
  *value = std::move(*v);
  return true;
}

bool DecodeErrorPayload(const std::vector<uint8_t>& payload, std::string* message) {
  ByteReader reader(payload);
  auto s = reader.ReadString();
  if (!s || !reader.AtEnd()) {
    return false;
  }
  *message = std::move(*s);
  return true;
}

bool DecodeShutdownPayload(const std::vector<uint8_t>& payload, uint64_t* expected_connections) {
  if (payload.empty()) {
    *expected_connections = 0;
    return true;
  }
  ByteReader reader(payload);
  auto n = reader.ReadVarint();
  if (!n || !reader.AtEnd()) {
    return false;
  }
  *expected_connections = *n;
  return true;
}

}  // namespace karousos
