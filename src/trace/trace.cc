#include "src/trace/trace.h"

#include <unordered_map>

namespace karousos {

bool Trace::IsBalanced(std::string* reason) const {
  std::unordered_map<RequestId, int> state;  // 0 unseen, 1 requested, 2 responded.
  for (const TraceEvent& ev : events) {
    int& s = state[ev.rid];
    if (ev.kind == TraceEvent::Kind::kRequest) {
      if (s != 0) {
        *reason = "duplicate request id " + std::to_string(ev.rid);
        return false;
      }
      s = 1;
    } else {
      if (s != 1) {
        *reason = "response for request " + std::to_string(ev.rid) +
                  (s == 0 ? " before its request" : " delivered twice");
        return false;
      }
      s = 2;
    }
  }
  // Report the smallest unresponded rid: the message must not depend on hash
  // order, because the streaming audit reproduces it at Finish and its verdict
  // has to be bit-identical to the one-shot check here.
  std::optional<RequestId> missing;
  for (const auto& [rid, s] : state) {
    if (s != 2 && (!missing || rid < *missing)) {
      missing = rid;
    }
  }
  if (missing) {
    *reason = "request " + std::to_string(*missing) + " has no response";
    return false;
  }
  return true;
}

std::vector<RequestId> Trace::RequestIds() const {
  std::vector<RequestId> rids;
  for (const TraceEvent& ev : events) {
    if (ev.kind == TraceEvent::Kind::kRequest) {
      rids.push_back(ev.rid);
    }
  }
  return rids;
}

namespace {

// Single full scan so a duplicated event yields nullopt (the documented
// contract) instead of silently returning the first occurrence.
std::optional<Value> ScanUnique(const std::vector<TraceEvent>& events, TraceEvent::Kind kind,
                                RequestId rid) {
  const TraceEvent* found = nullptr;
  for (const TraceEvent& ev : events) {
    if (ev.kind == kind && ev.rid == rid) {
      if (found != nullptr) {
        return std::nullopt;
      }
      found = &ev;
    }
  }
  if (found == nullptr) {
    return std::nullopt;
  }
  return found->payload;
}

}  // namespace

std::optional<Value> Trace::RequestInput(RequestId rid) const {
  return ScanUnique(events, TraceEvent::Kind::kRequest, rid);
}

std::optional<Value> Trace::Response(RequestId rid) const {
  return ScanUnique(events, TraceEvent::Kind::kResponse, rid);
}

TraceIndex::TraceIndex(const Trace& trace) : trace_(trace) {
  for (uint32_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& ev = trace.events[i];
    auto& slots = ev.kind == TraceEvent::Kind::kRequest ? inputs_ : responses_;
    auto [it, inserted] = slots.emplace(ev.rid, i);
    if (!inserted) {
      it->second = kDuplicate;
    }
  }
}

std::optional<Value> TraceIndex::Lookup(const std::map<RequestId, uint32_t>& slots,
                                        RequestId rid) const {
  auto it = slots.find(rid);
  if (it == slots.end() || it->second == kDuplicate) {
    return std::nullopt;
  }
  return trace_.events[it->second].payload;
}

std::optional<Value> TraceIndex::RequestInput(RequestId rid) const {
  return Lookup(inputs_, rid);
}

std::optional<Value> TraceIndex::Response(RequestId rid) const {
  return Lookup(responses_, rid);
}

size_t Trace::request_count() const {
  size_t n = 0;
  for (const TraceEvent& ev : events) {
    if (ev.kind == TraceEvent::Kind::kRequest) {
      ++n;
    }
  }
  return n;
}

void SerializeTraceEvents(const std::vector<TraceEvent>& events, ByteWriter* out) {
  // Reserve the fixed per-event floor (kind byte + 1-byte rid varint + value
  // header) up front; payload bytes still grow as needed.
  out->Reserve(1 + events.size() * 3);
  out->WriteVarint(events.size());
  for (const TraceEvent& ev : events) {
    out->WriteByte(static_cast<uint8_t>(ev.kind));
    out->WriteVarint(ev.rid);
    out->WriteValue(ev.payload);
  }
}

void Trace::Serialize(ByteWriter* out) const { SerializeTraceEvents(events, out); }

std::optional<Trace> Trace::Deserialize(ByteReader* in) {
  auto n = in->ReadVarint();
  if (!n) {
    return std::nullopt;
  }
  Trace trace;
  trace.events.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto kind = in->ReadByte();
    auto rid = in->ReadVarint();
    auto payload = in->ReadValue();
    if (!kind || *kind > 1 || !rid || !payload) {
      return std::nullopt;
    }
    trace.events.push_back(TraceEvent{static_cast<TraceEvent::Kind>(*kind), *rid,
                                      std::move(*payload)});
  }
  return trace;
}

}  // namespace karousos
