#include "src/trace/trace.h"

#include <unordered_map>

namespace karousos {

bool Trace::IsBalanced(std::string* reason) const {
  std::unordered_map<RequestId, int> state;  // 0 unseen, 1 requested, 2 responded.
  for (const TraceEvent& ev : events) {
    int& s = state[ev.rid];
    if (ev.kind == TraceEvent::Kind::kRequest) {
      if (s != 0) {
        *reason = "duplicate request id " + std::to_string(ev.rid);
        return false;
      }
      s = 1;
    } else {
      if (s != 1) {
        *reason = "response for request " + std::to_string(ev.rid) +
                  (s == 0 ? " before its request" : " delivered twice");
        return false;
      }
      s = 2;
    }
  }
  for (const auto& [rid, s] : state) {
    if (s != 2) {
      *reason = "request " + std::to_string(rid) + " has no response";
      return false;
    }
  }
  return true;
}

std::vector<RequestId> Trace::RequestIds() const {
  std::vector<RequestId> rids;
  for (const TraceEvent& ev : events) {
    if (ev.kind == TraceEvent::Kind::kRequest) {
      rids.push_back(ev.rid);
    }
  }
  return rids;
}

std::optional<Value> Trace::RequestInput(RequestId rid) const {
  for (const TraceEvent& ev : events) {
    if (ev.kind == TraceEvent::Kind::kRequest && ev.rid == rid) {
      return ev.payload;
    }
  }
  return std::nullopt;
}

std::optional<Value> Trace::Response(RequestId rid) const {
  for (const TraceEvent& ev : events) {
    if (ev.kind == TraceEvent::Kind::kResponse && ev.rid == rid) {
      return ev.payload;
    }
  }
  return std::nullopt;
}

size_t Trace::request_count() const {
  size_t n = 0;
  for (const TraceEvent& ev : events) {
    if (ev.kind == TraceEvent::Kind::kRequest) {
      ++n;
    }
  }
  return n;
}

void Trace::Serialize(ByteWriter* out) const {
  out->WriteVarint(events.size());
  for (const TraceEvent& ev : events) {
    out->WriteByte(static_cast<uint8_t>(ev.kind));
    out->WriteVarint(ev.rid);
    out->WriteValue(ev.payload);
  }
}

std::optional<Trace> Trace::Deserialize(ByteReader* in) {
  auto n = in->ReadVarint();
  if (!n) {
    return std::nullopt;
  }
  Trace trace;
  trace.events.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto kind = in->ReadByte();
    auto rid = in->ReadVarint();
    auto payload = in->ReadValue();
    if (!kind || *kind > 1 || !rid || !payload) {
      return std::nullopt;
    }
    trace.events.push_back(TraceEvent{static_cast<TraceEvent::Kind>(*kind), *rid,
                                      std::move(*payload)});
  }
  return trace;
}

}  // namespace karousos
