// The request/response trace (Definition 1): the ground-truth, chronologically
// ordered list of request arrivals and response deliveries that the trusted
// collector observed at the server's boundary.
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/serde.h"
#include "src/common/value.h"

namespace karousos {

struct TraceEvent {
  enum class Kind : uint8_t { kRequest, kResponse };
  Kind kind = Kind::kRequest;
  RequestId rid = 0;
  Value payload;  // Request input, or response contents.
};

struct Trace {
  std::vector<TraceEvent> events;

  // True iff every request has exactly one response and vice versa, and each
  // response follows its request ("Check Tr is balanced", Figure 14).
  bool IsBalanced(std::string* reason) const;

  // All request ids in arrival order.
  std::vector<RequestId> RequestIds() const;

  // The request input / response payload for a request id (nullopt if absent
  // or duplicated).
  std::optional<Value> RequestInput(RequestId rid) const;
  std::optional<Value> Response(RequestId rid) const;

  size_t request_count() const;

  void Serialize(ByteWriter* out) const;
  static std::optional<Trace> Deserialize(ByteReader* in);
};

// Serializes a bare event list in the Trace wire format (identical bytes to
// Trace{events}.Serialize) — lets callers holding a window of events encode
// it without copying into a temporary Trace.
void SerializeTraceEvents(const std::vector<TraceEvent>& events, ByteWriter* out);

// Built-once lookup index over a trace. `Trace::RequestInput`/`Response` scan
// the event list per call, which is fine for a single probe but quadratic for
// callers that probe every request id; those call sites build one of these
// instead. The trace must outlive the index and must not be mutated under it.
// Same contract as the Trace methods: nullopt when the id is absent or the
// event is duplicated.
class TraceIndex {
 public:
  explicit TraceIndex(const Trace& trace);

  std::optional<Value> RequestInput(RequestId rid) const;
  std::optional<Value> Response(RequestId rid) const;

 private:
  static constexpr uint32_t kDuplicate = ~uint32_t{0};
  std::optional<Value> Lookup(const std::map<RequestId, uint32_t>& slots, RequestId rid) const;

  const Trace& trace_;
  std::map<RequestId, uint32_t> inputs_;     // rid -> event index, kDuplicate on dup.
  std::map<RequestId, uint32_t> responses_;  // rid -> event index, kDuplicate on dup.
};

}  // namespace karousos

#endif  // SRC_TRACE_TRACE_H_
