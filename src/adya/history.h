// Transactional history types (§4.4).
//
// A history comprises (a) the TxOp order, encoded as one *transaction log*
// per transaction — the ordered operations the transaction issued, with each
// GET carrying the position of its dictating PUT — and (b) the *write order*:
// an alleged global order of the (final) writes applied to external state.
// These are exactly the structures the Karousos server places in its advice
// and that Adya's algorithms consume.
#ifndef SRC_ADYA_HISTORY_H_
#define SRC_ADYA_HISTORY_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/ids.h"
#include "src/common/value.h"

namespace karousos {

enum class TxOpType : uint8_t { kTxStart, kTxCommit, kTxAbort, kPut, kGet };

const char* TxOpTypeName(TxOpType t);

// One entry of a transaction log (advice item C.1.3):
//   (hid, opnum, optype, key, opcontents)
// where opcontents is the written value for PUT and the dictating write's
// position for GET.
struct TxOperation {
  TxOpType type = TxOpType::kTxStart;
  // Which handler operation issued this (ties the log entry to re-execution
  // through the verifier's OpMap).
  HandlerId hid = 0;
  OpNum opnum = 0;
  std::string key;          // PUT/GET only.
  Value put_value;          // PUT only.
  TxOpRef get_from;         // GET only; nil when the key had never been written.
  bool get_found = false;   // GET only; whether the key existed.
};

struct TxnKey {
  RequestId rid = 0;
  TxId tid = 0;

  friend bool operator==(const TxnKey&, const TxnKey&) = default;
  friend auto operator<=>(const TxnKey&, const TxnKey&) = default;
};

template <>
struct FlatHash<TxnKey> {
  size_t operator()(const TxnKey& k) const {
    return static_cast<size_t>(HashMix64(SplitMix64(k.rid), k.tid));
  }
};

// Map ordering keeps iteration deterministic (the verifier's behaviour, and
// hence test expectations, must not depend on hash order).
using TransactionLog = std::vector<TxOperation>;
using TransactionLogs = std::map<TxnKey, TransactionLog>;

// Alleged global order of final writes of committed transactions.
using WriteOrder = std::vector<TxOpRef>;

}  // namespace karousos

#endif  // SRC_ADYA_HISTORY_H_
