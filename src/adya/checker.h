// Adya-style isolation testing over an *alleged* history (§4.4, Figure 17).
//
// The verifier cannot trust the server's transaction logs and write order, so
// these checks establish the isolation level only *provisionally*: they prove
// that the alleged history, taken at face value, exhibits the claimed level.
// The Karousos verifier separately ties the alleged history to re-execution
// (CheckStateOp) and to the execution graph G (AddExternalStateEdges), which
// together close the loop.
//
// This module is also usable standalone (tests run it against histories
// produced by src/txkv and against hand-built anomalies).
#ifndef SRC_ADYA_CHECKER_H_
#define SRC_ADYA_CHECKER_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "src/adya/history.h"
#include "src/common/graph.h"
#include "src/txkv/store.h"

namespace karousos {

// What lives at an alleged transaction-log coordinate. The epoch-streaming
// audit resolves references against (current slice -> carried state ->
// continuity imports), while the one-shot path resolves against the full
// logs; both views collapse to this struct, so every consumer (log analysis,
// write-order extraction, the lint, re-execution's GET feed) is agnostic to
// where the answer came from.
struct ResolvedTxOp {
  bool txn_present = false;  // The referenced transaction exists.
  bool op_present = false;   // ... and the index is within its log.
  bool is_put = false;       // The referenced op is a PUT.
  // PUT details, valid only when is_put (no consumer distinguishes the
  // non-PUT types; they only ever ask "is this a PUT of key k").
  std::string_view key;
  const Value* put_value = nullptr;
  HandlerId hid = 0;
  OpNum opnum = 0;
};

using TxOpResolverFn = std::function<ResolvedTxOp(const TxOpRef&)>;

// A resolver over a complete set of logs (the one-shot view).
TxOpResolverFn MakeLogResolver(const TransactionLogs& logs);

// Output of the log-shape analysis shared by the isolation checker and the
// verifier's AddExternalStateEdges.
struct HistoryAnalysis {
  bool ok = true;
  std::string reason;

  // Transactions whose log ends with tx_commit.
  std::set<TxnKey> committed;

  // Dictating write -> the GETs that observed it (Figure 14's ReadMap).
  std::map<TxOpRef, std::vector<TxOpRef>> read_map;

  // (rid, tid, key) -> index of the last PUT that a *committed* transaction
  // made to key (Figure 14's lastModification).
  std::map<std::tuple<RequestId, TxId, std::string>, uint32_t> last_modification;
};

// Validates transaction-log well-formedness and fills the analysis:
//  * logs start with tx_start, end with at most one tx_commit/tx_abort, and
//    contain only PUT/GET in between;
//  * every GET's alleged dictating write exists, is a PUT, and matches keys;
//  * transactions observe their own writes (the MyWrites check): a GET of a
//    key the transaction previously wrote must read its own last write.
// On failure, `ok` is false and `reason` says why.
HistoryAnalysis AnalyzeLogs(const TransactionLogs& logs);

// Incremental form: appends the analysis of `logs` (one epoch's slice) into
// `into`, resolving dictating-write references through `resolve` so that
// cross-epoch references (earlier-epoch carries, later-epoch continuity
// imports) validate exactly as the full-log lookup would. Iterating the
// epoch slices in epoch order visits transactions in the same global sorted
// order as AnalyzeLogs over the merged logs, so the first error — and hence
// the audit verdict — is the same. No-op when `into->ok` is already false.
void AnalyzeLogsInto(const TransactionLogs& logs, const TxOpResolverFn& resolve,
                     HistoryAnalysis* into);

struct IsolationCheckResult {
  bool ok = true;
  std::string reason;
  // Sizes of the dependency graph, for diagnostics and bench counters.
  size_t dg_nodes = 0;
  size_t dg_edges = 0;
};

// Runs Figure 17 — IsolationLvlVer — against the alleged history: extracts
// the per-key write order (checking it lists exactly the last modifications
// of committed transactions), adds write-/read-/anti-dependency edges per the
// claimed level, and checks the dependency graph for cycles. Also enforces
// the G1a/G1b condition that committed transactions only read final writes of
// committed transactions (read-committed and serializable levels).
IsolationCheckResult CheckIsolation(IsolationLevel level, const TransactionLogs& logs,
                                    const WriteOrder& write_order,
                                    const HistoryAnalysis& analysis);

// Resolver-backed form for the streaming audit: identical checks, but
// write-order entries resolve through `resolve` (carried PUT state) instead
// of the full logs, which the session no longer holds at Finish time.
IsolationCheckResult CheckIsolationIndexed(IsolationLevel level, const TxOpResolverFn& resolve,
                                           const WriteOrder& write_order,
                                           const HistoryAnalysis& analysis);

// Convenience wrapper: analyze then check.
IsolationCheckResult CheckHistory(IsolationLevel level, const TransactionLogs& logs,
                                  const WriteOrder& write_order);

}  // namespace karousos

#endif  // SRC_ADYA_CHECKER_H_
