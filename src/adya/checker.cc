#include "src/adya/checker.h"

#include <sstream>
#include <unordered_set>

namespace karousos {

const char* TxOpTypeName(TxOpType t) {
  switch (t) {
    case TxOpType::kTxStart:
      return "tx_start";
    case TxOpType::kTxCommit:
      return "tx_commit";
    case TxOpType::kTxAbort:
      return "tx_abort";
    case TxOpType::kPut:
      return "PUT";
    case TxOpType::kGet:
      return "GET";
  }
  return "?";
}

namespace {

std::string Describe(const TxnKey& t) {
  std::ostringstream out;
  out << "(r" << t.rid << ",t" << std::hex << t.tid << std::dec << ")";
  return out.str();
}

}  // namespace

TxOpResolverFn MakeLogResolver(const TransactionLogs& logs) {
  return [&logs](const TxOpRef& ref) {
    ResolvedTxOp out;
    auto it = logs.find(TxnKey{ref.rid, ref.tid});
    if (it == logs.end()) {
      return out;
    }
    out.txn_present = true;
    if (ref.index < 1 || ref.index > it->second.size()) {
      return out;
    }
    const TxOperation& op = it->second[ref.index - 1];
    out.op_present = true;
    out.is_put = op.type == TxOpType::kPut;
    out.key = op.key;
    out.put_value = &op.put_value;
    out.hid = op.hid;
    out.opnum = op.opnum;
    return out;
  };
}

HistoryAnalysis AnalyzeLogs(const TransactionLogs& logs) {
  HistoryAnalysis out;
  AnalyzeLogsInto(logs, MakeLogResolver(logs), &out);
  return out;
}

void AnalyzeLogsInto(const TransactionLogs& logs, const TxOpResolverFn& resolve,
                     HistoryAnalysis* into) {
  HistoryAnalysis& out = *into;
  if (!out.ok) {
    return;
  }
  for (const auto& [txn, log] : logs) {
    if (log.empty() || log.front().type != TxOpType::kTxStart) {
      out.ok = false;
      out.reason = "transaction log for " + Describe(txn) + " does not begin with tx_start";
      return;
    }
    bool committed = !log.empty() && log.back().type == TxOpType::kTxCommit;
    if (committed) {
      out.committed.insert(txn);
    }
    // Last PUT index per key issued by this transaction so far (MyWrites).
    std::map<std::string, uint32_t> my_writes;
    for (uint32_t i = 1; i <= log.size(); ++i) {
      const TxOperation& op = log[i - 1];
      const bool terminal = op.type == TxOpType::kTxCommit || op.type == TxOpType::kTxAbort;
      if (i > 1 && op.type == TxOpType::kTxStart) {
        out.ok = false;
        out.reason = "transaction " + Describe(txn) + " contains a second tx_start";
        return;
      }
      if (terminal && i != log.size()) {
        out.ok = false;
        out.reason = "transaction " + Describe(txn) + " has operations after its terminal op";
        return;
      }
      if (op.type == TxOpType::kPut) {
        my_writes[op.key] = i;
        if (committed) {
          out.last_modification[{txn.rid, txn.tid, op.key}] = i;
        }
      } else if (op.type == TxOpType::kGet) {
        if (op.get_found) {
          ResolvedTxOp dictating = resolve(op.get_from);
          if (!dictating.op_present || !dictating.is_put || dictating.key != op.key) {
            out.ok = false;
            out.reason = "GET " + Describe(txn) + "#" + std::to_string(i) +
                         " has an invalid dictating write " + op.get_from.ToString();
            return;
          }
          out.read_map[op.get_from].push_back(TxOpRef{txn.rid, txn.tid, i});
        } else if (!op.get_from.IsNil()) {
          out.ok = false;
          out.reason = "not-found GET in " + Describe(txn) + " claims a dictating write";
          return;
        }
        // Transactions must observe their own writes (§4.4 check two).
        auto mine = my_writes.find(op.key);
        if (mine != my_writes.end()) {
          TxOpRef expected{txn.rid, txn.tid, mine->second};
          if (!op.get_found || op.get_from != expected) {
            out.ok = false;
            out.reason = "transaction " + Describe(txn) +
                         " does not observe its own last write to key '" + op.key + "'";
            return;
          }
        }
      }
    }
  }
}

namespace {

struct TxOpRefLess {
  bool operator()(const TxOpRef& a, const TxOpRef& b) const {
    return std::tie(a.rid, a.tid, a.index) < std::tie(b.rid, b.tid, b.index);
  }
};

// Extraction per Figure 17: validates that the write order lists exactly the
// last modifications of committed transactions, and splits it by key.
bool ExtractWriteOrderPerKey(const TxOpResolverFn& resolve, const WriteOrder& write_order,
                             const HistoryAnalysis& analysis,
                             std::map<std::string, std::vector<TxOpRef>>* per_key,
                             std::string* reason) {
  if (write_order.size() != analysis.last_modification.size()) {
    *reason = "write order length (" + std::to_string(write_order.size()) +
              ") does not match the number of last modifications (" +
              std::to_string(analysis.last_modification.size()) + ")";
    return false;
  }
  std::set<TxOpRef, TxOpRefLess> seen;
  for (const TxOpRef& ref : write_order) {
    ResolvedTxOp op = resolve(ref);
    if (!op.op_present || !op.is_put) {
      *reason = "write order entry " + ref.ToString() + " is not a PUT in the logs";
      return false;
    }
    std::string key(op.key);
    if (!seen.insert(ref).second) {
      *reason = "write order repeats entry " + ref.ToString();
      return false;
    }
    auto it = analysis.last_modification.find({ref.rid, ref.tid, key});
    if (it == analysis.last_modification.end() || it->second != ref.index) {
      *reason = "write order entry " + ref.ToString() +
                " is not the last modification of a committed transaction";
      return false;
    }
    (*per_key)[key].push_back(ref);
  }
  return true;
}

void AddWriteDependencyEdges(const std::map<std::string, std::vector<TxOpRef>>& per_key,
                             DirectedGraph* dg) {
  for (const auto& [key, order] : per_key) {
    for (size_t j = 0; j + 1 < order.size(); ++j) {
      dg->AddEdge(NodeKey::ForTxn(order[j].rid, order[j].tid),
                  NodeKey::ForTxn(order[j + 1].rid, order[j + 1].tid));
    }
  }
}

// Read-dependency edges, plus the G1a/G1b enforcement: a committed
// transaction may only read final writes of committed transactions.
bool AddReadDependencyEdges(const HistoryAnalysis& analysis, const WriteOrder& write_order,
                            DirectedGraph* dg, std::string* reason) {
  std::set<TxOpRef, TxOpRefLess> in_write_order(write_order.begin(), write_order.end());
  for (const auto& [write, readers] : analysis.read_map) {
    TxnKey writer{write.rid, write.tid};
    bool final_committed_write = in_write_order.count(write) > 0;
    for (const TxOpRef& read : analysis.read_map.at(write)) {
      TxnKey reader{read.rid, read.tid};
      if (writer == reader) {
        continue;  // Own-reads carry no inter-transaction dependency.
      }
      if (!final_committed_write) {
        if (analysis.committed.count(reader) > 0) {
          *reason = "committed transaction " + Describe(reader) +
                    " reads a non-final or uncommitted write " + write.ToString() +
                    " (phenomenon G1a/G1b)";
          return false;
        }
        continue;
      }
      if (analysis.committed.count(writer) > 0 && analysis.committed.count(reader) > 0) {
        dg->AddEdge(NodeKey::ForTxn(writer.rid, writer.tid),
                    NodeKey::ForTxn(reader.rid, reader.tid));
      }
    }
    (void)readers;
  }
  return true;
}

void AddAntiDependencyEdges(const std::map<std::string, std::vector<TxOpRef>>& per_key,
                            const HistoryAnalysis& analysis, DirectedGraph* dg) {
  for (const auto& [key, order] : per_key) {
    for (size_t j = 0; j + 1 < order.size(); ++j) {
      auto readers = analysis.read_map.find(order[j]);
      if (readers == analysis.read_map.end()) {
        continue;
      }
      TxnKey next_writer{order[j + 1].rid, order[j + 1].tid};
      for (const TxOpRef& read : readers->second) {
        TxnKey reader{read.rid, read.tid};
        if (reader == next_writer || analysis.committed.count(reader) == 0) {
          continue;
        }
        dg->AddEdge(NodeKey::ForTxn(reader.rid, reader.tid),
                    NodeKey::ForTxn(next_writer.rid, next_writer.tid));
      }
    }
  }
}

}  // namespace

IsolationCheckResult CheckIsolation(IsolationLevel level, const TransactionLogs& logs,
                                    const WriteOrder& write_order,
                                    const HistoryAnalysis& analysis) {
  return CheckIsolationIndexed(level, MakeLogResolver(logs), write_order, analysis);
}

IsolationCheckResult CheckIsolationIndexed(IsolationLevel level, const TxOpResolverFn& resolve,
                                           const WriteOrder& write_order,
                                           const HistoryAnalysis& analysis) {
  IsolationCheckResult result;
  if (!analysis.ok) {
    result.ok = false;
    result.reason = analysis.reason;
    return result;
  }
  DirectedGraph dg;
  for (const TxnKey& txn : analysis.committed) {
    dg.AddNode(NodeKey::ForTxn(txn.rid, txn.tid));
  }
  std::map<std::string, std::vector<TxOpRef>> per_key;
  if (!ExtractWriteOrderPerKey(resolve, write_order, analysis, &per_key, &result.reason)) {
    result.ok = false;
    return result;
  }
  AddWriteDependencyEdges(per_key, &dg);
  if (level == IsolationLevel::kReadCommitted || level == IsolationLevel::kSerializable) {
    if (!AddReadDependencyEdges(analysis, write_order, &dg, &result.reason)) {
      result.ok = false;
      return result;
    }
  }
  if (level == IsolationLevel::kSerializable) {
    AddAntiDependencyEdges(per_key, analysis, &dg);
  }
  result.dg_nodes = dg.node_count();
  result.dg_edges = dg.edge_count();
  if (dg.HasCycle()) {
    result.ok = false;
    std::ostringstream out;
    out << "dependency graph has a cycle at isolation level " << IsolationLevelName(level) << ":";
    for (const NodeKey& node : dg.FindCycle()) {
      out << " " << Describe(TxnKey{node.a, node.b});
    }
    result.reason = out.str();
    return result;
  }
  return result;
}

IsolationCheckResult CheckHistory(IsolationLevel level, const TransactionLogs& logs,
                                  const WriteOrder& write_order) {
  HistoryAnalysis analysis = AnalyzeLogs(logs);
  return CheckIsolation(level, logs, write_order, analysis);
}

}  // namespace karousos
