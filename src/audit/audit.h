// One-call audit pipeline: run an application at the (instrumented) server,
// collect trace + advice, and verify. This is the API the examples, tests,
// and benches drive; it mirrors the deployment story of §2.1 — collector in
// front of the server, verifier at the principal.
#ifndef SRC_AUDIT_AUDIT_H_
#define SRC_AUDIT_AUDIT_H_

#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/server/server.h"
#include "src/trace/trace.h"
#include "src/verifier/verifier.h"

namespace karousos {

struct AuditPipelineResult {
  ServerRunResult server;
  AuditResult audit;
};

// Serves `inputs` with the given config, then audits the result with a fresh
// verifier holding the same program. The server's untracked-access log is fed
// to the verifier's race detector, so warnings appear in audit.diagnostics.
// `audit_threads` is VerifierConfig::threads (1 = serial, 0 = all hardware
// threads, N = N audit workers); the result is identical for every value.
AuditPipelineResult RunAndAudit(const AppSpec& app, const std::vector<Value>& inputs,
                                const ServerConfig& config, unsigned audit_threads = 1);

// Audit only (server output already in hand). Pass the server's
// untracked-access log to additionally run the §5 race detector.
AuditResult AuditOnly(const AppSpec& app, const Trace& trace, const Advice& advice,
                      const VerifierConfig& config, const UntrackedAccessLog* untracked = nullptr);

// Convenience overload: serial audit at the given isolation level.
AuditResult AuditOnly(const AppSpec& app, const Trace& trace, const Advice& advice,
                      IsolationLevel isolation, const UntrackedAccessLog* untracked = nullptr);

}  // namespace karousos

#endif  // SRC_AUDIT_AUDIT_H_
