// One-call audit pipeline: run an application at the (instrumented) server,
// collect trace + advice, and verify. This is the API the examples, tests,
// and benches drive; it mirrors the deployment story of §2.1 — collector in
// front of the server, verifier at the principal.
#ifndef SRC_AUDIT_AUDIT_H_
#define SRC_AUDIT_AUDIT_H_

#include <string>
#include <vector>

#include "src/apps/app.h"
#include "src/server/server.h"
#include "src/trace/trace.h"
#include "src/verifier/verifier.h"

namespace karousos {

struct AuditPipelineResult {
  ServerRunResult server;
  AuditResult audit;
};

// Serves `inputs` with the given config, then audits the result with a fresh
// verifier holding the same program.
AuditPipelineResult RunAndAudit(const AppSpec& app, const std::vector<Value>& inputs,
                                const ServerConfig& config);

// Audit only (server output already in hand).
AuditResult AuditOnly(const AppSpec& app, const Trace& trace, const Advice& advice,
                      IsolationLevel isolation);

}  // namespace karousos

#endif  // SRC_AUDIT_AUDIT_H_
