#include "src/audit/stream.h"

#include <utility>

#include "src/analysis/check.h"

namespace karousos {

void FeedRemaining(AuditSession* session, const EpochSlices& slices,
                   const std::function<void(AuditSession&)>& after_epoch) {
  for (const EpochSegment& segment : slices.segments) {
    if (segment.epoch < session->next_epoch()) {
      continue;  // Already covered by the restored checkpoint.
    }
    bool alive = session->FeedEpoch(segment);
    if (after_epoch) {
      after_epoch(*session);
    }
    if (!alive) {
      break;  // Verdict fixed mid-stream; Finish() will report it.
    }
  }
}

StreamAuditResult AuditSegments(const AppSpec& app, const std::vector<uint8_t>& trace_bytes,
                                const std::vector<uint8_t>& advice_bytes,
                                const VerifierConfig& config, uint64_t epoch_requests,
                                const UntrackedAccessLog* untracked) {
  SegmentLoadResult load = LoadSegmentStreams(trace_bytes, advice_bytes, epoch_requests);
  StreamAuditResult result;
  if (!load.ok) {
    result.audit.accepted = false;
    result.audit.reason = std::move(load.reason);
    result.audit.rule = std::move(load.rule);
    result.audit.diagnostics = std::move(load.diagnostics);
    result.epochs = load.slices.segments.size();
    return result;
  }
  AuditSession session(*app.program, config, epoch_requests);
  if (untracked != nullptr) {
    session.set_untracked_accesses(untracked);
  }
  FeedRemaining(&session, load.slices);
  result.audit = session.Finish();
  result.peak_resident_advice_bytes = session.peak_resident_advice_bytes();
  result.epochs = load.slices.segments.size();
  return result;
}

StreamAuditResult AuditStreamed(const AppSpec& app, const Trace& trace, const Advice& advice,
                                const VerifierConfig& config, uint64_t epoch_requests,
                                const UntrackedAccessLog* untracked) {
  EpochSlices slices = SliceRun(trace, advice, epoch_requests);
  AuditSession session(*app.program, config, epoch_requests);
  if (untracked != nullptr) {
    session.set_untracked_accesses(untracked);
  }
  FeedRemaining(&session, slices);
  StreamAuditResult result;
  result.audit = session.Finish();
  result.peak_resident_advice_bytes = session.peak_resident_advice_bytes();
  result.epochs = slices.segments.size();
  return result;
}

}  // namespace karousos
