#include "src/audit/stream.h"

namespace karousos {

void FeedRemaining(AuditSession* session, const EpochSlices& slices,
                   const std::function<void(AuditSession&)>& after_epoch) {
  for (const EpochSegment& segment : slices.segments) {
    if (segment.epoch < session->next_epoch()) {
      continue;  // Already covered by the restored checkpoint.
    }
    bool alive = session->FeedEpoch(segment);
    if (after_epoch) {
      after_epoch(*session);
    }
    if (!alive) {
      break;  // Verdict fixed mid-stream; Finish() will report it.
    }
  }
}

StreamAuditResult AuditStreamed(const AppSpec& app, const Trace& trace, const Advice& advice,
                                const VerifierConfig& config, uint64_t epoch_requests,
                                const UntrackedAccessLog* untracked) {
  EpochSlices slices = SliceRun(trace, advice, epoch_requests);
  AuditSession session(*app.program, config, epoch_requests);
  if (untracked != nullptr) {
    session.set_untracked_accesses(untracked);
  }
  FeedRemaining(&session, slices);
  StreamAuditResult result;
  result.audit = session.Finish();
  result.peak_resident_advice_bytes = session.peak_resident_advice_bytes();
  result.epochs = slices.segments.size();
  return result;
}

}  // namespace karousos
