// Epoch-streamed audit drivers: slice a complete (trace, advice) pair and
// feed it through an AuditSession. This is the path `karousos audit
// --epoch-size N` takes, and the one the epoch bench measures — the verdict
// matches the one-shot AuditOnly for every epoch size, but per-epoch advice
// is dropped as soon as its epoch is re-executed.
#ifndef SRC_AUDIT_STREAM_H_
#define SRC_AUDIT_STREAM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/apps/app.h"
#include "src/server/rollover.h"
#include "src/trace/trace.h"
#include "src/verifier/session.h"

namespace karousos {

struct StreamAuditResult {
  AuditResult audit;
  // High-water mark of resident advice-derived bytes (slice + imports +
  // carries, serialized) across the whole stream.
  size_t peak_resident_advice_bytes = 0;
  uint64_t epochs = 0;
};

// Slices the run at epoch_requests (0 = one epoch holding everything) and
// audits it epoch by epoch. Reaches the same verdict, reason, rule, and
// diagnostics as AuditOnly over the unsliced inputs.
StreamAuditResult AuditStreamed(const AppSpec& app, const Trace& trace, const Advice& advice,
                                const VerifierConfig& config, uint64_t epoch_requests,
                                const UntrackedAccessLog* untracked = nullptr);

// Feeds every segment of `slices` at or beyond session->next_epoch() —
// i.e. resumes cleanly from a restored checkpoint. When `after_epoch` is
// set it runs after each FeedEpoch call (checkpoint writers hook in here).
// Stops early once the session is decided.
void FeedRemaining(AuditSession* session, const EpochSlices& slices,
                   const std::function<void(AuditSession&)>& after_epoch = nullptr);

// Audits directly from KSEG container bytes (the production artifact): the
// container front end (src/analysis/check.h's LoadSegmentStreams) decodes and
// file-checks both streams, then the decoded slices run through an
// AuditSession. A corrupt container rejects with the same reason/rule
// `karousos check` reports; it never reaches the session.
StreamAuditResult AuditSegments(const AppSpec& app, const std::vector<uint8_t>& trace_bytes,
                                const std::vector<uint8_t>& advice_bytes,
                                const VerifierConfig& config, uint64_t epoch_requests,
                                const UntrackedAccessLog* untracked = nullptr);

}  // namespace karousos

#endif  // SRC_AUDIT_STREAM_H_
