#include "src/audit/audit.h"

namespace karousos {

AuditPipelineResult RunAndAudit(const AppSpec& app, const std::vector<Value>& inputs,
                                const ServerConfig& config, unsigned audit_threads) {
  AuditPipelineResult result;
  Server server(*app.program, config);
  result.server = server.Run(inputs);
  result.audit = AuditOnly(app, result.server.trace, result.server.advice,
                           VerifierConfig{config.isolation, audit_threads},
                           &result.server.untracked_accesses);
  return result;
}

AuditResult AuditOnly(const AppSpec& app, const Trace& trace, const Advice& advice,
                      const VerifierConfig& config, const UntrackedAccessLog* untracked) {
  Verifier verifier(*app.program, config);
  if (untracked != nullptr) {
    verifier.set_untracked_accesses(untracked);
  }
  return verifier.Audit(trace, advice);
}

AuditResult AuditOnly(const AppSpec& app, const Trace& trace, const Advice& advice,
                      IsolationLevel isolation, const UntrackedAccessLog* untracked) {
  return AuditOnly(app, trace, advice, VerifierConfig{isolation, 1}, untracked);
}

}  // namespace karousos
