#include "src/audit/audit.h"

namespace karousos {

AuditPipelineResult RunAndAudit(const AppSpec& app, const std::vector<Value>& inputs,
                                const ServerConfig& config) {
  AuditPipelineResult result;
  Server server(*app.program, config);
  result.server = server.Run(inputs);
  result.audit = AuditOnly(app, result.server.trace, result.server.advice, config.isolation,
                           &result.server.untracked_accesses);
  return result;
}

AuditResult AuditOnly(const AppSpec& app, const Trace& trace, const Advice& advice,
                      IsolationLevel isolation, const UntrackedAccessLog* untracked) {
  Verifier verifier(*app.program, isolation);
  if (untracked != nullptr) {
    verifier.set_untracked_accesses(untracked);
  }
  return verifier.Audit(trace, advice);
}

}  // namespace karousos
