#include "src/verifier/shard_audit.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/carry_lint.h"
#include "src/common/segment.h"
#include "src/common/serde.h"
#include "src/server/advice.h"

namespace karousos {

namespace {

constexpr uint8_t kShardArtifactFormatVersion = 1;

void SerializeTxOpImport(const ContinuityImports::TxOpImport& imp, ByteWriter* out) {
  SerializeTxOpRef(imp.ref, out);
  out->WriteBool(imp.txn_present);
  out->WriteBool(imp.op_present);
  out->WriteByte(imp.type);
  out->WriteString(imp.key);
  out->WriteValue(imp.value);
  out->WriteVarint(imp.hid);
  out->WriteVarint(imp.opnum);
}

std::optional<ContinuityImports::TxOpImport> DeserializeTxOpImport(ByteReader* in) {
  ContinuityImports::TxOpImport imp;
  auto ref = DeserializeTxOpRef(in);
  if (!ref) return std::nullopt;
  imp.ref = *ref;
  auto txn_present = in->ReadBool();
  auto op_present = in->ReadBool();
  auto type = in->ReadByte();
  auto key = in->ReadString();
  auto value = in->ReadValue();
  auto hid = in->ReadVarint();
  auto opnum = in->ReadVarint();
  if (!txn_present || !op_present || !type || !key || !value || !hid || !opnum) {
    return std::nullopt;
  }
  imp.txn_present = *txn_present;
  imp.op_present = *op_present;
  imp.type = *type;
  imp.key = std::move(*key);
  imp.value = std::move(*value);
  imp.hid = *hid;
  imp.opnum = static_cast<OpNum>(*opnum);
  return imp;
}

void SerializeVarImport(const ContinuityImports::VarImport& imp, ByteWriter* out) {
  out->WriteFixed64(imp.vid);
  SerializeOpRef(imp.op, out);
  out->WriteBool(imp.present);
  out->WriteByte(imp.kind);
  out->WriteValue(imp.value);
}

std::optional<ContinuityImports::VarImport> DeserializeVarImport(ByteReader* in) {
  ContinuityImports::VarImport imp;
  auto vid = in->ReadFixed64();
  if (!vid) return std::nullopt;
  imp.vid = *vid;
  auto op = DeserializeOpRef(in);
  if (!op) return std::nullopt;
  imp.op = *op;
  auto present = in->ReadBool();
  auto kind = in->ReadByte();
  auto value = in->ReadValue();
  if (!present || !kind || !value) return std::nullopt;
  imp.present = *present;
  imp.kind = *kind;
  imp.value = std::move(*value);
  return imp;
}

// Count guard: every collection element costs at least one encoded byte, so a
// declared count beyond the remaining bytes is malformed (and must reject
// before any allocation is sized from it).
bool BoundedCount(ByteReader* in, uint64_t count) { return count <= in->remaining(); }

}  // namespace

void ShardArtifact::Serialize(ByteWriter* out) const {
  out->WriteByte(kShardArtifactFormatVersion);
  out->WriteVarint(shard);
  out->WriteVarint(count);
  out->WriteByte(static_cast<uint8_t>(mode));
  out->WriteVarint(epoch_requests);
  out->WriteVarint(epochs);
  out->WriteByte(static_cast<uint8_t>(isolation));
  out->WriteBool(prescreen);

  out->WriteVarint(rids.size());
  for (RequestId rid : rids) {
    out->WriteVarint(rid);
  }
  out->WriteFixed64(rid_digest);
  out->WriteFixed64(trace_digest);
  out->WriteFixed64(balance_digest);
  out->WriteFixed64(trace_rid_digest);
  out->WriteVarint(trace_rid_count);

  out->WriteBool(accepted);
  out->WriteString(reason);
  out->WriteString(rule);
  out->WriteVarint(decided_epoch);
  out->WriteVarint(diagnostics.size());
  for (const LintDiagnostic& d : diagnostics) {
    out->WriteString(d.rule);
    out->WriteByte(static_cast<uint8_t>(d.severity));
    out->WriteString(d.location);
    out->WriteString(d.message);
  }
  out->WriteVarint(peak_resident);

  out->WriteVarint(tags.size());
  for (const auto& [rid, tag] : tags) {
    out->WriteVarint(rid);
    out->WriteFixed64(tag);
  }

  out->WriteVarint(write_order.size());
  for (const TxOpRef& ref : write_order) {
    SerializeTxOpRef(ref, out);
  }
  out->WriteVarint(write_order_positions.size());
  for (uint64_t pos : write_order_positions) {
    out->WriteVarint(pos);
  }
  out->WriteVarint(write_order_total);

  out->WriteVarint(committed.size());
  for (const TxnKey& txn : committed) {
    out->WriteVarint(txn.rid);
    out->WriteVarint(txn.tid);
  }
  out->WriteVarint(read_map.size());
  for (const auto& [write, readers] : read_map) {
    SerializeTxOpRef(write, out);
    out->WriteVarint(readers.size());
    for (const TxOpRef& r : readers) {
      SerializeTxOpRef(r, out);
    }
  }
  out->WriteVarint(last_modification.size());
  for (const auto& [key, index] : last_modification) {
    out->WriteVarint(std::get<0>(key));
    out->WriteVarint(std::get<1>(key));
    out->WriteString(std::get<2>(key));
    out->WriteVarint(index);
  }

  out->WriteVarint(put_summaries.size());
  for (const auto& [ref, put] : put_summaries) {
    SerializeTxOpRef(ref, out);
    out->WriteString(put.key);
    out->WriteVarint(put.hid);
    out->WriteVarint(put.opnum);
  }
  out->WriteVarint(txn_sizes.size());
  for (const auto& [txn, size] : txn_sizes) {
    out->WriteVarint(txn.rid);
    out->WriteVarint(txn.tid);
    out->WriteVarint(size);
  }

  out->WriteVarint(pending_tx_imports.size());
  for (const auto& [ref, imp] : pending_tx_imports) {
    SerializeTxOpImport(imp, out);
  }
  out->WriteVarint(pending_var_imports.size());
  for (const auto& [key, imp] : pending_var_imports) {
    SerializeVarImport(imp, out);
  }
  out->WriteVarint(tx_exports.size());
  for (const auto& [ref, imp] : tx_exports) {
    SerializeTxOpImport(imp, out);
  }
  out->WriteVarint(var_exports.size());
  for (const auto& [key, imp] : var_exports) {
    SerializeVarImport(imp, out);
  }

  out->WriteVarint(var_links.size());
  for (const auto& [vid, links] : var_links) {
    out->WriteFixed64(vid);
    out->WriteBool(links.has_initializer);
    if (links.has_initializer) {
      SerializeOpRef(links.initializer, out);
    }
    out->WriteVarint(links.links.size());
    for (const auto& [prec, cur] : links.links) {
      SerializeOpRef(prec, out);
      SerializeOpRef(cur, out);
    }
  }
}

std::optional<ShardArtifact> ShardArtifact::Deserialize(ByteReader* in) {
  auto version = in->ReadByte();
  if (!version || *version != kShardArtifactFormatVersion) return std::nullopt;
  ShardArtifact a;

  auto shard = in->ReadVarint();
  auto count = in->ReadVarint();
  auto mode = in->ReadByte();
  auto epoch_requests = in->ReadVarint();
  auto epochs = in->ReadVarint();
  auto isolation = in->ReadByte();
  auto prescreen = in->ReadBool();
  if (!shard || !count || !mode || *mode > 1 || !epoch_requests || !epochs || !isolation ||
      *isolation > static_cast<uint8_t>(IsolationLevel::kReadUncommitted) || !prescreen) {
    return std::nullopt;
  }
  a.shard = static_cast<uint32_t>(*shard);
  a.count = static_cast<uint32_t>(*count);
  a.mode = static_cast<ShardMode>(*mode);
  a.epoch_requests = *epoch_requests;
  a.epochs = *epochs;
  a.isolation = static_cast<IsolationLevel>(*isolation);
  a.prescreen = *prescreen;

  auto rid_count = in->ReadVarint();
  if (!rid_count || !BoundedCount(in, *rid_count)) return std::nullopt;
  a.rids.reserve(*rid_count);
  for (uint64_t i = 0; i < *rid_count; ++i) {
    auto rid = in->ReadVarint();
    if (!rid) return std::nullopt;
    a.rids.push_back(*rid);
  }
  auto rid_digest = in->ReadFixed64();
  auto trace_digest = in->ReadFixed64();
  auto balance_digest = in->ReadFixed64();
  auto trace_rid_digest = in->ReadFixed64();
  auto trace_rid_count = in->ReadVarint();
  if (!rid_digest || !trace_digest || !balance_digest || !trace_rid_digest || !trace_rid_count) {
    return std::nullopt;
  }
  a.rid_digest = *rid_digest;
  a.trace_digest = *trace_digest;
  a.balance_digest = *balance_digest;
  a.trace_rid_digest = *trace_rid_digest;
  a.trace_rid_count = *trace_rid_count;

  auto accepted = in->ReadBool();
  auto reason = in->ReadString();
  auto rule = in->ReadString();
  auto decided_epoch = in->ReadVarint();
  if (!accepted || !reason || !rule || !decided_epoch) return std::nullopt;
  a.accepted = *accepted;
  a.reason = std::move(*reason);
  a.rule = std::move(*rule);
  a.decided_epoch = *decided_epoch;
  auto diag_count = in->ReadVarint();
  if (!diag_count || !BoundedCount(in, *diag_count)) return std::nullopt;
  for (uint64_t i = 0; i < *diag_count; ++i) {
    auto drule = in->ReadString();
    auto severity = in->ReadByte();
    auto location = in->ReadString();
    auto message = in->ReadString();
    if (!drule || !severity || *severity > 1 || !location || !message) return std::nullopt;
    a.diagnostics.push_back(LintDiagnostic{std::move(*drule),
                                           static_cast<LintSeverity>(*severity),
                                           std::move(*location), std::move(*message)});
  }
  auto peak_resident = in->ReadVarint();
  if (!peak_resident) return std::nullopt;
  a.peak_resident = *peak_resident;

  auto tag_count = in->ReadVarint();
  if (!tag_count || !BoundedCount(in, *tag_count)) return std::nullopt;
  for (uint64_t i = 0; i < *tag_count; ++i) {
    auto rid = in->ReadVarint();
    auto tag = in->ReadFixed64();
    if (!rid || !tag) return std::nullopt;
    a.tags[*rid] = *tag;
  }

  auto wo_count = in->ReadVarint();
  if (!wo_count || !BoundedCount(in, *wo_count)) return std::nullopt;
  a.write_order.reserve(*wo_count);
  for (uint64_t i = 0; i < *wo_count; ++i) {
    auto ref = DeserializeTxOpRef(in);
    if (!ref) return std::nullopt;
    a.write_order.push_back(*ref);
  }
  auto pos_count = in->ReadVarint();
  if (!pos_count || !BoundedCount(in, *pos_count)) return std::nullopt;
  a.write_order_positions.reserve(*pos_count);
  for (uint64_t i = 0; i < *pos_count; ++i) {
    auto pos = in->ReadVarint();
    if (!pos) return std::nullopt;
    a.write_order_positions.push_back(*pos);
  }
  auto wo_total = in->ReadVarint();
  if (!wo_total) return std::nullopt;
  a.write_order_total = *wo_total;

  auto committed_count = in->ReadVarint();
  if (!committed_count || !BoundedCount(in, *committed_count)) return std::nullopt;
  for (uint64_t i = 0; i < *committed_count; ++i) {
    auto rid = in->ReadVarint();
    auto tid = in->ReadVarint();
    if (!rid || !tid) return std::nullopt;
    a.committed.insert(TxnKey{*rid, *tid});
  }
  auto rm_count = in->ReadVarint();
  if (!rm_count || !BoundedCount(in, *rm_count)) return std::nullopt;
  for (uint64_t i = 0; i < *rm_count; ++i) {
    auto write = DeserializeTxOpRef(in);
    if (!write) return std::nullopt;
    auto reader_count = in->ReadVarint();
    if (!reader_count || !BoundedCount(in, *reader_count)) return std::nullopt;
    std::vector<TxOpRef> readers;
    readers.reserve(*reader_count);
    for (uint64_t j = 0; j < *reader_count; ++j) {
      auto r = DeserializeTxOpRef(in);
      if (!r) return std::nullopt;
      readers.push_back(*r);
    }
    a.read_map[*write] = std::move(readers);
  }
  auto lm_count = in->ReadVarint();
  if (!lm_count || !BoundedCount(in, *lm_count)) return std::nullopt;
  for (uint64_t i = 0; i < *lm_count; ++i) {
    auto rid = in->ReadVarint();
    auto tid = in->ReadVarint();
    auto key = in->ReadString();
    auto index = in->ReadVarint();
    if (!rid || !tid || !key || !index) return std::nullopt;
    a.last_modification[std::make_tuple(*rid, *tid, std::move(*key))] =
        static_cast<uint32_t>(*index);
  }

  auto put_count = in->ReadVarint();
  if (!put_count || !BoundedCount(in, *put_count)) return std::nullopt;
  for (uint64_t i = 0; i < *put_count; ++i) {
    auto ref = DeserializeTxOpRef(in);
    if (!ref) return std::nullopt;
    auto key = in->ReadString();
    auto hid = in->ReadVarint();
    auto opnum = in->ReadVarint();
    if (!key || !hid || !opnum) return std::nullopt;
    a.put_summaries[*ref] =
        PutSummary{std::move(*key), *hid, static_cast<OpNum>(*opnum)};
  }
  auto ts_count = in->ReadVarint();
  if (!ts_count || !BoundedCount(in, *ts_count)) return std::nullopt;
  for (uint64_t i = 0; i < *ts_count; ++i) {
    auto rid = in->ReadVarint();
    auto tid = in->ReadVarint();
    auto size = in->ReadVarint();
    if (!rid || !tid || !size) return std::nullopt;
    a.txn_sizes[TxnKey{*rid, *tid}] = static_cast<uint32_t>(*size);
  }

  auto pti_count = in->ReadVarint();
  if (!pti_count || !BoundedCount(in, *pti_count)) return std::nullopt;
  for (uint64_t i = 0; i < *pti_count; ++i) {
    auto imp = DeserializeTxOpImport(in);
    if (!imp) return std::nullopt;
    a.pending_tx_imports[imp->ref] = std::move(*imp);
  }
  auto pvi_count = in->ReadVarint();
  if (!pvi_count || !BoundedCount(in, *pvi_count)) return std::nullopt;
  for (uint64_t i = 0; i < *pvi_count; ++i) {
    auto imp = DeserializeVarImport(in);
    if (!imp) return std::nullopt;
    a.pending_var_imports[std::make_pair(imp->vid, imp->op)] = std::move(*imp);
  }
  auto te_count = in->ReadVarint();
  if (!te_count || !BoundedCount(in, *te_count)) return std::nullopt;
  for (uint64_t i = 0; i < *te_count; ++i) {
    auto imp = DeserializeTxOpImport(in);
    if (!imp) return std::nullopt;
    a.tx_exports[imp->ref] = std::move(*imp);
  }
  auto ve_count = in->ReadVarint();
  if (!ve_count || !BoundedCount(in, *ve_count)) return std::nullopt;
  for (uint64_t i = 0; i < *ve_count; ++i) {
    auto imp = DeserializeVarImport(in);
    if (!imp) return std::nullopt;
    a.var_exports[std::make_pair(imp->vid, imp->op)] = std::move(*imp);
  }

  auto vl_count = in->ReadVarint();
  if (!vl_count || !BoundedCount(in, *vl_count)) return std::nullopt;
  for (uint64_t i = 0; i < *vl_count; ++i) {
    auto vid = in->ReadFixed64();
    auto has_initializer = in->ReadBool();
    if (!vid || !has_initializer) return std::nullopt;
    VarLinks links;
    links.has_initializer = *has_initializer;
    if (links.has_initializer) {
      auto init = DeserializeOpRef(in);
      if (!init) return std::nullopt;
      links.initializer = *init;
    }
    auto link_count = in->ReadVarint();
    if (!link_count || !BoundedCount(in, *link_count)) return std::nullopt;
    links.links.reserve(*link_count);
    for (uint64_t j = 0; j < *link_count; ++j) {
      auto prec = DeserializeOpRef(in);
      auto cur = DeserializeOpRef(in);
      if (!prec || !cur) return std::nullopt;
      links.links.emplace_back(*prec, *cur);
    }
    a.var_links[*vid] = std::move(links);
  }
  return a;
}

// --- Shard audit -------------------------------------------------------------

// Friend shim over Verifier's streaming internals (verifier.h forward-declares
// and befriends this class): drives the scoped streaming audit and harvests
// the carried state the merge needs after StreamFinish.
class ShardAudit {
 public:
  static ShardArtifact Run(const Program& program, const ShardFile& file,
                           const VerifierConfig& config) {
    const ShardBoundary& b = file.boundary;
    ShardArtifact a;
    a.shard = b.shard;
    a.count = b.count;
    a.mode = b.mode;
    a.epoch_requests = b.epoch_requests;
    a.epochs = b.epochs;
    a.isolation = config.isolation;
    a.prescreen = config.prescreen;
    a.rids = b.rids;
    a.rid_digest = b.rid_digest;
    a.trace_digest = b.trace_digest;
    a.balance_digest = b.balance_digest;
    a.write_order_positions = b.write_order_positions;
    a.write_order_total = b.write_order_total;

    // Must outlive the verifier: the scope pointer is held, not copied.
    std::set<RequestId> owned(b.rids.begin(), b.rids.end());

    Verifier v(program, config);
    v.SetShardScope(&owned);
    v.StreamBegin(file.slices.epoch_requests);
    for (const EpochSegment& seg : file.slices.segments) {
      v.StreamEpoch(seg);
    }
    AuditResult r = v.StreamFinish();

    a.accepted = r.accepted;
    a.reason = r.reason;
    a.rule = r.rule;
    a.diagnostics = r.diagnostics;
    // Finish-time rejections never set decided_ (StreamFinish catches into the
    // result directly), so they order after every mid-stream rejection.
    a.decided_epoch = v.decided_ ? v.decided_epoch_ : b.epochs;
    a.peak_resident = v.peak_resident_;
    a.trace_rid_count = v.trace_rids_.size();
    a.trace_rid_digest =
        DigestRids(std::vector<RequestId>(v.trace_rids_.begin(), v.trace_rids_.end()));
    if (!r.accepted) {
      return a;  // Exports are meaningless past the first fault.
    }

    for (const EpochSegment& seg : file.slices.segments) {
      for (const auto& [rid, tag] : seg.advice.tags) {
        a.tags[rid] = tag;
      }
    }
    a.write_order = v.stream_write_order_;
    a.committed = v.history_.committed;
    a.read_map = v.history_.read_map;
    a.last_modification = v.history_.last_modification;
    for (const auto& [ref, put] : v.put_carry_) {
      a.put_summaries[ref] = ShardArtifact::PutSummary{put.key, put.hid, put.opnum};
    }
    a.txn_sizes = v.txn_size_carry_;

    // Unconfirmable (foreign-owned) continuity allegations, for the merge.
    for (const auto& [ref, imp] : v.pending_tx_imports_) {
      if (v.ForeignRid(ref.rid)) {
        a.pending_tx_imports[ref] = imp;
      }
    }
    for (const auto& [key, imp] : v.pending_var_imports_) {
      if (v.ForeignRid(key.second.rid)) {
        a.pending_var_imports[key] = imp;
      }
    }
    // Descriptions of this shard's real content at its export obligations —
    // what the importing shards' allegations must match (same semantics as
    // StreamConfirmImports' carry lookup).
    for (const TxOpRef& ref : b.export_tx_refs) {
      ContinuityImports::TxOpImport e;
      e.ref = ref;
      auto size_it = v.txn_size_carry_.find(TxnKey{ref.rid, ref.tid});
      if (size_it != v.txn_size_carry_.end()) {
        e.txn_present = true;
        if (ref.index >= 1 && ref.index <= size_it->second) {
          e.op_present = true;
          auto put_it = v.put_carry_.find(ref);
          if (put_it != v.put_carry_.end()) {
            e.type = static_cast<uint8_t>(TxOpType::kPut);
            e.key = put_it->second.key;
            e.value = put_it->second.value;
            e.hid = put_it->second.hid;
            e.opnum = put_it->second.opnum;
          } else {
            // Only PUT-ness matters to any confirmation consumer.
            e.type = static_cast<uint8_t>(TxOpType::kGet);
          }
        }
      }
      a.tx_exports[ref] = std::move(e);
    }
    for (const auto& [vid, op] : b.export_var_refs) {
      ContinuityImports::VarImport e;
      e.vid = vid;
      e.op = op;
      auto carry_it = v.var_carry_.find(std::make_pair(vid, op));
      if (carry_it != v.var_carry_.end()) {
        e.present = true;
        e.kind = static_cast<uint8_t>(carry_it->second.is_write ? VarLogEntry::Kind::kWrite
                                                                : VarLogEntry::Kind::kRead);
        if (carry_it->second.is_write) {
          e.value = carry_it->second.value;
        }
      }
      a.var_exports[std::make_pair(vid, op)] = std::move(e);
    }

    // Write-chain fragments from this shard's re-execution. vars_ iterates in
    // hash order; the artifact's std::map restores the canonical order.
    for (const auto& [vid, var] : v.vars_) {
      ShardArtifact::VarLinks links;
      links.has_initializer = !var.initializer.IsNil();
      if (links.has_initializer) {
        links.initializer = var.initializer;
      }
      for (const auto& [prec, cur] : var.write_observer) {
        links.links.emplace_back(prec, cur);
      }
      if (!links.has_initializer && links.links.empty()) {
        continue;
      }
      std::sort(links.links.begin(), links.links.end());
      a.var_links[vid] = std::move(links);
    }
    return a;
  }
};

ShardArtifact RunShardAudit(const Program& program, const ShardFile& file,
                            const VerifierConfig& config) {
  return ShardAudit::Run(program, file, config);
}

// --- Merge -------------------------------------------------------------------

AuditResult MergeShardArtifacts(const std::vector<ShardArtifact>& artifacts) {
  AuditResult result;

  // Diagnostics accumulate in shard order (each shard's audit preserved its
  // own order), with any merge finding appended last.
  auto concat_diags = [](const std::vector<const ShardArtifact*>& ordered) {
    std::vector<LintDiagnostic> out;
    for (const ShardArtifact* a : ordered) {
      out.insert(out.end(), a->diagnostics.begin(), a->diagnostics.end());
    }
    return out;
  };

  std::vector<const ShardArtifact*> ordered;
  // KAR-SEG failure before the artifact set is even indexable.
  auto fail_flat = [&](const char* rule, std::string location, std::string message) {
    LintDiagnostic d{rule, LintSeverity::kError, std::move(location), std::move(message)};
    result.accepted = false;
    result.rule = rule;
    result.reason = "shard merge: " + d.Format();
    result.diagnostics = concat_diags(ordered);
    result.diagnostics.push_back(std::move(d));
    return result;
  };
  // Dynamic-style failure: the same raw reason string (and empty rule) the
  // unsharded audit's Reject() produces for the corresponding global check.
  auto fail_dynamic = [&](std::string reason) {
    result.accepted = false;
    result.rule.clear();
    result.reason = std::move(reason);
    result.diagnostics = concat_diags(ordered);
    return result;
  };

  // --- Artifact set shape (KAR-SEG-015): exactly shards 0..K-1, once each,
  // all agreeing on the run's identity and configuration.
  if (artifacts.empty()) {
    return fail_flat(kKarSeg015, "merge", "no shard artifacts to merge");
  }
  uint32_t k = artifacts.front().count;
  std::map<uint32_t, const ShardArtifact*> by_shard;
  for (const ShardArtifact& a : artifacts) {
    if (a.shard >= k) {
      return fail_flat(kKarSeg015, "merge[shard " + std::to_string(a.shard) + "]",
                       "shard index " + std::to_string(a.shard) +
                           " is out of range for shard count " + std::to_string(k));
    }
    if (!by_shard.emplace(a.shard, &a).second) {
      return fail_flat(kKarSeg015, "merge[shard " + std::to_string(a.shard) + "]",
                       "duplicate artifact for shard " + std::to_string(a.shard));
    }
  }
  if (by_shard.size() != k) {
    for (uint32_t s = 0; s < k; ++s) {
      if (by_shard.count(s) == 0) {
        return fail_flat(kKarSeg015, "merge",
                         "missing artifact for shard " + std::to_string(s) + " of " +
                             std::to_string(k));
      }
    }
  }
  for (const auto& [s, a] : by_shard) {
    ordered.push_back(a);
  }
  const ShardArtifact& head = *ordered.front();
  for (const ShardArtifact* a : ordered) {
    std::string loc = "merge[shard " + std::to_string(a->shard) + "]";
    if (a->count != k) {
      return fail_flat(kKarSeg015, loc, "shard count disagrees across artifacts");
    }
    if (a->mode != head.mode || a->epoch_requests != head.epoch_requests ||
        a->epochs != head.epochs) {
      return fail_flat(kKarSeg015, loc, "shard partitioning disagrees across artifacts");
    }
    if (a->isolation != head.isolation || a->prescreen != head.prescreen) {
      return fail_flat(kKarSeg015, loc, "audit configuration disagrees across artifacts");
    }
    if (a->trace_digest != head.trace_digest || a->balance_digest != head.balance_digest) {
      return fail_flat(kKarSeg015, loc,
                       "replicated-trace digests disagree: artifacts were cut from "
                       "different runs");
    }
    if (a->write_order_total != head.write_order_total) {
      return fail_flat(kKarSeg015, loc, "alleged write-order totals disagree across artifacts");
    }
    if (a->rid_digest != DigestRids(a->rids)) {
      return fail_flat(kKarSeg015, loc, "artifact rid digest does not match its rid set");
    }
  }

  // --- Any shard's own rejection wins, in the unsharded audit's fault order:
  // earliest deciding epoch first, lowest shard index on ties. A fault in the
  // replicated trace rejects every shard identically (shard 0 reports); a
  // fault in one shard's advice rejects there with the unsharded rule.
  const ShardArtifact* rejected = nullptr;
  for (const ShardArtifact* a : ordered) {
    if (a->accepted) {
      continue;
    }
    if (rejected == nullptr || a->decided_epoch < rejected->decided_epoch) {
      rejected = a;
    }
  }
  if (rejected != nullptr) {
    result.accepted = false;
    result.reason = rejected->reason;
    result.rule = rejected->rule;
    result.diagnostics = rejected->diagnostics;
    return result;
  }

  // Full-trace identity (meaningful only now: a shard that rejected mid-stream
  // stops ingesting windows, so its trace-universe digest is partial).
  for (const ShardArtifact* a : ordered) {
    if (a->trace_rid_digest != head.trace_rid_digest ||
        a->trace_rid_count != head.trace_rid_count) {
      return fail_flat(kKarSeg015, "merge[shard " + std::to_string(a->shard) + "]",
                       "trace request universes disagree across artifacts");
    }
  }

  // --- Rid coverage (KAR-SEG-012): the K rid sets must partition the trace
  // exactly, and no re-execution tag group may span shards.
  std::map<RequestId, uint32_t> owner;
  for (const ShardArtifact* a : ordered) {
    for (RequestId rid : a->rids) {
      auto [it, inserted] = owner.emplace(rid, a->shard);
      if (!inserted) {
        return fail_flat(kKarSeg012, "merge[shard " + std::to_string(a->shard) + "]",
                         "request " + std::to_string(rid) + " is claimed by shard " +
                             std::to_string(it->second) + " and shard " +
                             std::to_string(a->shard));
      }
    }
  }
  {
    std::vector<RequestId> all_rids;
    all_rids.reserve(owner.size());
    for (const auto& [rid, s] : owner) {
      all_rids.push_back(rid);
    }
    if (all_rids.size() != head.trace_rid_count ||
        DigestRids(all_rids) != head.trace_rid_digest) {
      return fail_flat(kKarSeg012, "merge",
                       "shard rid sets do not cover the trace exactly (" +
                           std::to_string(all_rids.size()) + " covered, " +
                           std::to_string(head.trace_rid_count) + " in the trace)");
    }
  }
  {
    std::map<uint64_t, uint32_t> tag_shard;
    for (const ShardArtifact* a : ordered) {
      for (const auto& [rid, tag] : a->tags) {
        auto [it, inserted] = tag_shard.emplace(tag, a->shard);
        if (!inserted && it->second != a->shard) {
          return fail_flat(kKarSeg012, "merge[shard " + std::to_string(a->shard) + "]",
                           "re-execution group with tag " + std::to_string(tag) +
                               " is split between shard " + std::to_string(it->second) +
                               " and shard " + std::to_string(a->shard));
        }
      }
    }
  }

  // --- Write-order stitch (KAR-SEG-013): the per-shard chunks, placed at
  // their alleged global positions, must tile 0..total-1 exactly once, and
  // every entry must sit in the shard that owns its request.
  const uint64_t total = head.write_order_total;
  {
    // An exact tiling needs exactly `total` entries across the chunks, so a
    // count mismatch rejects up front — before the alleged total (untrusted)
    // sizes any allocation.
    uint64_t entries = 0;
    for (const ShardArtifact* a : ordered) {
      entries += a->write_order.size();
    }
    if (entries != total) {
      return fail_flat(kKarSeg013, "merge",
                       "shards carry " + std::to_string(entries) +
                           " write-order entries against an alleged total of " +
                           std::to_string(total));
    }
  }
  WriteOrder stitched(total);
  std::vector<uint32_t> placed_by(total, k);  // k == unplaced sentinel.
  uint64_t placed = 0;
  for (const ShardArtifact* a : ordered) {
    std::string loc = "merge[shard " + std::to_string(a->shard) + "]";
    if (a->write_order.size() != a->write_order_positions.size()) {
      return fail_flat(kKarSeg013, loc,
                       "write-order chunk and position list sizes disagree");
    }
    for (size_t i = 0; i < a->write_order.size(); ++i) {
      const TxOpRef& ref = a->write_order[i];
      uint64_t pos = a->write_order_positions[i];
      if (pos >= total) {
        return fail_flat(kKarSeg013, loc,
                         "write-order position " + std::to_string(pos) +
                             " is beyond the alleged total " + std::to_string(total));
      }
      if (placed_by[pos] != k) {
        return fail_flat(kKarSeg013, loc,
                         "write-order position " + std::to_string(pos) +
                             " is claimed by shard " + std::to_string(placed_by[pos]) +
                             " and shard " + std::to_string(a->shard));
      }
      auto own = owner.find(ref.rid);
      if (own != owner.end() && own->second != a->shard) {
        return fail_flat(kKarSeg013, loc,
                         "write-order entry " + ref.ToString() + " belongs to shard " +
                             std::to_string(own->second) + " but was placed by shard " +
                             std::to_string(a->shard));
      }
      stitched[pos] = ref;
      placed_by[pos] = a->shard;
      ++placed;
    }
  }
  if (placed != total) {
    return fail_flat(kKarSeg013, "merge",
                     "stitched write order has gaps: " + std::to_string(placed) +
                         " of " + std::to_string(total) + " positions placed");
  }

  // --- Cross-shard continuity confirmation (KAR-SEG-014): every allegation a
  // shard consumed about another shard's content must match what the owning
  // shard's audit actually found there — StreamConfirmImports, one level up.
  for (const ShardArtifact* a : ordered) {
    std::string loc = "merge[shard " + std::to_string(a->shard) + "]";
    for (const auto& [ref, imp] : a->pending_tx_imports) {
      auto own = owner.find(ref.rid);
      const ShardArtifact* owning = own != owner.end() ? ordered[own->second] : nullptr;
      const ContinuityImports::TxOpImport* real = nullptr;
      if (owning != nullptr) {
        auto it = owning->tx_exports.find(ref);
        if (it != owning->tx_exports.end()) {
          real = &it->second;
        }
      }
      if (real == nullptr) {
        return fail_flat(kKarSeg014, loc,
                         "continuity import for " + ref.ToString() +
                             " has no confirmation from its owning shard");
      }
      bool ok = real->txn_present == imp.txn_present && real->op_present == imp.op_present;
      if (ok && imp.op_present) {
        bool real_is_put = static_cast<TxOpType>(real->type) == TxOpType::kPut;
        bool imp_is_put = static_cast<TxOpType>(imp.type) == TxOpType::kPut;
        ok = real_is_put == imp_is_put;
        if (ok && imp_is_put) {
          ok = real->key == imp.key && real->value == imp.value && real->hid == imp.hid &&
               real->opnum == imp.opnum;
        }
      }
      if (!ok) {
        return fail_flat(kKarSeg014, loc,
                         "continuity import for " + ref.ToString() +
                             " does not match the owning shard's content");
      }
    }
    for (const auto& [key, imp] : a->pending_var_imports) {
      auto own = owner.find(key.second.rid);
      const ShardArtifact* owning = own != owner.end() ? ordered[own->second] : nullptr;
      const ContinuityImports::VarImport* real = nullptr;
      if (owning != nullptr) {
        auto it = owning->var_exports.find(key);
        if (it != owning->var_exports.end()) {
          real = &it->second;
        }
      }
      if (real == nullptr) {
        return fail_flat(kKarSeg014, loc,
                         "continuity import for variable log entry " + key.second.ToString() +
                             " has no confirmation from its owning shard");
      }
      bool ok = real->present == imp.present;
      if (ok && imp.present) {
        bool real_is_write = static_cast<VarLogEntry::Kind>(real->kind) ==
                             VarLogEntry::Kind::kWrite;
        bool imp_is_write = static_cast<VarLogEntry::Kind>(imp.kind) ==
                            VarLogEntry::Kind::kWrite;
        ok = real_is_write == imp_is_write &&
             (!real_is_write || real->value == imp.value);
      }
      if (!ok) {
        return fail_flat(kKarSeg014, loc,
                         "continuity import for variable log entry " + key.second.ToString() +
                             " does not match the owning shard's content");
      }
    }
  }

  // --- Write-chain stitch: union the per-shard fragments and re-run the
  // chain conflict checks (the merge-time analogs of MergeGroup's claim
  // replay) and the acyclicity walk (AddInternalStateEdges' analog). The
  // init-run runs replicated in every shard, so identical initializer /
  // link claims across shards dedupe silently; only contradictions reject.
  std::map<VarId, OpRef> initializer;
  std::map<VarId, std::map<OpRef, OpRef>> successors;
  for (const ShardArtifact* a : ordered) {
    for (const auto& [vid, links] : a->var_links) {
      if (links.has_initializer) {
        auto [it, inserted] = initializer.emplace(vid, links.initializer);
        if (!inserted && it->second != links.initializer) {
          return fail_dynamic("variable has two initializing writes");
        }
      }
      auto& succ = successors[vid];
      for (const auto& [prec, cur] : links.links) {
        auto [it, inserted] = succ.emplace(prec, cur);
        if (!inserted && it->second != cur) {
          return fail_dynamic("two writes overwrite the same value");
        }
      }
    }
  }

  // --- Global isolation over the stitched order and the merged history: the
  // same checker, with the same inputs, the unsharded StreamFinish runs.
  HistoryAnalysis analysis;
  std::map<TxnKey, uint32_t> txn_sizes;
  std::map<TxOpRef, ShardArtifact::PutSummary> puts;
  for (const ShardArtifact* a : ordered) {
    analysis.committed.insert(a->committed.begin(), a->committed.end());
    for (const auto& [write, readers] : a->read_map) {
      auto& merged = analysis.read_map[write];
      merged.insert(merged.end(), readers.begin(), readers.end());
    }
    analysis.last_modification.insert(a->last_modification.begin(),
                                      a->last_modification.end());
    txn_sizes.insert(a->txn_sizes.begin(), a->txn_sizes.end());
    puts.insert(a->put_summaries.begin(), a->put_summaries.end());
  }
  // Epochs ascend rid ranges and transactions sort by (rid, tid, index), so a
  // plain sort restores the global reader order the one-shot analysis built.
  for (auto& [write, readers] : analysis.read_map) {
    std::sort(readers.begin(), readers.end());
  }
  auto resolve = [&txn_sizes, &puts](const TxOpRef& ref) {
    ResolvedTxOp r;
    auto size_it = txn_sizes.find(TxnKey{ref.rid, ref.tid});
    if (size_it != txn_sizes.end()) {
      r.txn_present = true;
      if (ref.index >= 1 && ref.index <= size_it->second) {
        r.op_present = true;
        auto put_it = puts.find(ref);
        if (put_it != puts.end()) {
          r.is_put = true;
          r.key = put_it->second.key;
          r.hid = put_it->second.hid;
          r.opnum = put_it->second.opnum;
          // No consumer dereferences PUT values; summaries are value-free.
          r.put_value = nullptr;
        }
      }
    }
    return r;
  };
  IsolationCheckResult iso =
      CheckIsolationIndexed(head.isolation, resolve, stitched, analysis);
  result.stats.isolation_dg_nodes = iso.dg_nodes;
  result.stats.isolation_dg_edges = iso.dg_edges;
  if (!iso.ok) {
    return fail_dynamic("isolation verification failed: " + iso.reason);
  }

  // --- Chain acyclicity (the Postprocess-stage analog): each write has at
  // most one successor, so the union is a functional graph; a full-coverage
  // 0/1/2-colored walk finds any cycle, including one threaded entirely
  // through cross-shard links that no single shard's walk could close.
  for (const auto& [vid, succ] : successors) {
    std::map<OpRef, uint8_t> color;
    for (const auto& [start, unused] : succ) {
      if (color.count(start) != 0) {
        continue;
      }
      std::vector<OpRef> path;
      OpRef cur = start;
      while (true) {
        auto c = color.find(cur);
        if (c != color.end()) {
          if (c->second == 1) {
            return fail_dynamic("variable write chain is cyclic");
          }
          break;  // Merges into an already-finished chain.
        }
        color[cur] = 1;
        path.push_back(cur);
        auto next = succ.find(cur);
        if (next == succ.end()) {
          break;
        }
        cur = next->second;
      }
      for (const OpRef& n : path) {
        color[n] = 2;
      }
    }
  }

  result.accepted = true;
  result.diagnostics = concat_diags(ordered);
  return result;
}

// --- Artifact container ------------------------------------------------------

std::vector<uint8_t> EncodeShardArtifact(const ShardArtifact& artifact) {
  SegmentWriter writer;
  ByteWriter payload;
  artifact.Serialize(&payload);
  writer.Append(SegmentKind::kShardArtifact, artifact.shard, payload.bytes());
  return writer.Take();
}

namespace {

ShardArtifactLoadResult LoadShardArtifact(std::unique_ptr<SegmentReader> reader,
                                          const std::string& open_error) {
  ShardArtifactLoadResult out;
  auto fail = [&out](const char* rule, std::string message) -> ShardArtifactLoadResult& {
    out.ok = false;
    out.rule = rule;
    LintDiagnostic d{rule, LintSeverity::kError, "artifact", std::move(message)};
    out.reason = "segment stream: " + d.Format();
    return out;
  };
  if (reader == nullptr) {
    return fail(kKarSeg001, "unreadable segment container: " + open_error);
  }
  SegmentRecord rec;
  if (!reader->Next(&rec)) {
    if (!reader->ok()) {
      return fail(kKarSeg001, "unreadable segment container: " + reader->error());
    }
    return fail(kKarSeg015, "artifact file has no shard-artifact frame");
  }
  if (rec.kind != SegmentKind::kShardArtifact) {
    return fail(kKarSeg015, std::string("artifact file must hold a shard-artifact frame, found ") +
                                SegmentKindName(rec.kind));
  }
  if (rec.flags != 0) {
    return fail(kKarSeg015, "shard-artifact frame must be raw (flags 0)");
  }
  {
    ByteReader in(rec.payload);
    auto artifact = ShardArtifact::Deserialize(&in);
    if (!artifact || !in.AtEnd()) {
      return fail(kKarSeg015, "shard-artifact payload is malformed");
    }
    out.artifact = std::move(*artifact);
  }
  if (rec.epoch != out.artifact.shard) {
    return fail(kKarSeg015, "artifact frame's shard index disagrees with its payload");
  }
  if (reader->Next(&rec)) {
    return fail(kKarSeg015, "artifact file holds more than one frame");
  }
  if (!reader->ok()) {
    return fail(kKarSeg001, "unreadable segment container: " + reader->error());
  }
  out.ok = true;
  return out;
}

}  // namespace

ShardArtifactLoadResult LoadShardArtifactFile(const std::string& path) {
  std::string error;
  auto reader = SegmentReader::OpenFile(path, &error);
  return LoadShardArtifact(std::move(reader), error);
}

ShardArtifactLoadResult LoadShardArtifactBytes(const std::vector<uint8_t>& bytes) {
  std::string error;
  auto reader = SegmentReader::FromBytes(bytes.data(), bytes.size(), &error);
  return LoadShardArtifact(std::move(reader), error);
}

}  // namespace karousos
