// Resumable epoch-streaming audit: AuditSession consumes one EpochSegment at
// a time (trace window + advice slice + continuity imports, as produced by
// SliceRun or a collector's segment stream) and assembles the verdict at
// Finish. Between epochs the session's entire cross-epoch state — the carry
// state — serializes to a single checkpoint frame, so an interrupted audit
// resumes from the last completed epoch instead of restarting.
//
// Contract with the one-shot Audit(): for the same complete (trace, advice)
// pair, feeding the slices of any epoch size (including one epoch holding
// everything) reaches the same verdict, reason, rule, and diagnostics as
// Verifier::Audit — honest runs and single-fault adversarial runs alike.
// What streaming buys is memory: per-epoch advice is dropped once its epoch
// is re-executed, and only the compact carries (transaction shapes, PUT
// payloads, var-log entry kinds plus write values) stay resident.
#ifndef SRC_VERIFIER_SESSION_H_
#define SRC_VERIFIER_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/server/rollover.h"
#include "src/verifier/verifier.h"

namespace karousos {

class AuditSession {
 public:
  AuditSession(const Program& program, const VerifierConfig& config, uint64_t epoch_requests);

  // As Verifier::set_untracked_accesses: attach the §5 race scan's findings
  // (warnings) to the final result. The log must outlive Finish().
  void set_untracked_accesses(const UntrackedAccessLog* log);

  // Feeds the next epoch. Segments must arrive in epoch order starting at
  // next_epoch(); an out-of-order segment rejects the audit (segment streams
  // are part of the server's claim, so reordering is misbehavior). Returns
  // false once the verdict is already determined — callers may stop feeding
  // and jump to Finish(), or keep draining; both are safe.
  bool FeedEpoch(const EpochSegment& segment);

  // Runs the global end-of-stream checks (write-order lint, continuity
  // import confirmation, isolation, internal-state edges, graph acyclicity)
  // and assembles the verdict. Call exactly once, after the last epoch.
  AuditResult Finish();

  // Serializes the full carry state as one kCheckpoint segment frame. Valid
  // between epochs (i.e. after any FeedEpoch call and before Finish).
  std::vector<uint8_t> SaveCheckpoint() const;

  // Reconstructs a session from SaveCheckpoint bytes. The program and the
  // config must match the checkpointing session's (the isolation level is
  // embedded and verified). Returns nullptr and sets *error on mismatch or
  // malformed bytes.
  static std::unique_ptr<AuditSession> Restore(const Program& program,
                                               const VerifierConfig& config,
                                               const std::vector<uint8_t>& bytes,
                                               std::string* error);

  // The epoch index the next FeedEpoch call must carry.
  uint64_t next_epoch() const;
  // Requests per epoch (0 = single epoch). After Restore this is the
  // checkpointing session's value, so callers re-slice consistently.
  uint64_t epoch_requests() const;
  // True once a mid-stream rejection fixed the verdict.
  bool decided() const;
  // High-water mark of resident advice-derived bytes (current slice +
  // imports + carries, serialized) — the epoch bench's y-axis.
  size_t peak_resident_advice_bytes() const;

 private:
  Verifier v_;
};

}  // namespace karousos

#endif  // SRC_VERIFIER_SESSION_H_
