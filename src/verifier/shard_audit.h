// Shard-axis audit: verify one shard file in isolation with the full
// Verifier machinery, emit a compact verdict artifact, and deterministically
// merge K artifacts into the run's verdict (ROADMAP item 2 — process-parallel
// scale-out orthogonal to epoch streaming).
//
// Division of labor:
//   * Each shard audit is a complete streaming audit (AuditSession's phases)
//     over the replicated trace and the shard's advice slice, scoped to the
//     shard's requests (Verifier::SetShardScope). Every trace-level check and
//     every check over shard-owned advice fires exactly as the unsharded
//     audit would, so a fault inside one shard's content rejects there with
//     the unsharded rule.
//   * The genuinely global checks — cross-shard continuity-import
//     confirmation, write-order stitching, write-chain stitching, and the
//     isolation check over the alleged global transaction order — cannot be
//     decided inside any one shard. Each shard audit exports the state those
//     checks need (a few maps of references and summaries, not the advice)
//     into its ShardArtifact, and MergeShardArtifacts re-runs them over the
//     union, exactly like AuditSession::Finish runs the cross-epoch checks
//     over the carries.
//
// Verdict contract (mirroring the epoch axis): for an honest run, the merged
// (accepted, reason, rule, diagnostics) quadruple is bit-identical to the
// one-shot Verifier::Audit at every shard count; tampering with a shard's
// content rejects in that shard's audit under the unsharded rule; tampering
// that only the cross-shard view can see (a merge-only adversary) rejects at
// merge under KAR-SEG-012..015 or the corresponding dynamic reason.
#ifndef SRC_VERIFIER_SHARD_AUDIT_H_
#define SRC_VERIFIER_SHARD_AUDIT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/analysis/diagnostic.h"
#include "src/common/kcodec.h"
#include "src/server/shard.h"
#include "src/verifier/verifier.h"

namespace karousos {

// One shard audit's signed verdict plus the exports the merge consumes. The
// artifact is tiny relative to the shard's advice: references, digests and
// per-key summaries, never logs or values beyond what cross-shard
// confirmation requires.
struct ShardArtifact {
  // Identity and config echo (KAR-SEG-015 cross-checks these for equality).
  uint32_t shard = 0;
  uint32_t count = 1;
  ShardMode mode = ShardMode::kHash;
  uint64_t epoch_requests = 0;
  uint64_t epochs = 0;
  IsolationLevel isolation = IsolationLevel::kSerializable;
  bool prescreen = true;

  // Boundary echoes: per-shard rid coverage and the replicated-run digests.
  std::vector<RequestId> rids;
  uint64_t rid_digest = 0;
  uint64_t trace_digest = 0;
  uint64_t balance_digest = 0;
  // Digest/count over the FULL trace rid universe (replicated, so every
  // honest shard computes the same value): the merge's partition target.
  uint64_t trace_rid_digest = 0;
  uint64_t trace_rid_count = 0;

  // The shard's verdict. decided_epoch is the epoch being fed when a
  // mid-stream rejection surfaced, or `epochs` for finish-time rejections —
  // the merge reports the earliest-deciding shard, matching the unsharded
  // audit's first-fault order.
  bool accepted = false;
  std::string reason;
  std::string rule;
  uint64_t decided_epoch = 0;
  std::vector<LintDiagnostic> diagnostics;

  // Resident high-water mark of the shard audit (bench counter).
  uint64_t peak_resident = 0;

  // --- Exports for the merge's global checks (populated on accept) ---------

  // Per-request re-execution tags (KAR-SEG-012's group-atomicity check).
  std::map<RequestId, uint64_t> tags;

  // The shard's write-order entries with their alleged global positions
  // (KAR-SEG-013 re-stitches the total order).
  std::vector<TxOpRef> write_order;
  std::vector<uint64_t> write_order_positions;
  uint64_t write_order_total = 0;

  // The shard's history analysis (src/adya/checker.h), merged for the global
  // isolation check: committed and last_modification partition by owning rid;
  // read_map reader lists interleave by sorted reader reference.
  std::set<TxnKey> committed;
  std::map<TxOpRef, std::vector<TxOpRef>> read_map;
  std::map<std::tuple<RequestId, TxId, std::string>, uint32_t> last_modification;

  // Value-free resolution carries for the merged isolation check. The
  // checker never dereferences PUT values, so key/hid/opnum suffice.
  struct PutSummary {
    std::string key;
    HandlerId hid = 0;
    OpNum opnum = 0;
  };
  std::map<TxOpRef, PutSummary> put_summaries;
  std::map<TxnKey, uint32_t> txn_sizes;

  // Cross-shard continuity allegations this shard consumed but could not
  // confirm locally (targets owned by other shards), and the descriptions of
  // this shard's real content at its export obligations. The merge matches
  // every pending import against the owner's export — the shard-axis
  // StreamConfirmImports (KAR-SEG-014 on contradiction).
  std::map<TxOpRef, ContinuityImports::TxOpImport> pending_tx_imports;
  std::map<std::pair<VarId, OpRef>, ContinuityImports::VarImport> pending_var_imports;
  std::map<TxOpRef, ContinuityImports::TxOpImport> tx_exports;
  std::map<std::pair<VarId, OpRef>, ContinuityImports::VarImport> var_exports;

  // Per-variable write-chain fragments reconstructed by this shard's
  // re-execution: the claimed initializing write and every prec -> cur
  // overwrite link. The merge unions them and re-runs the chain checks
  // (initializer uniqueness, overwrite conflicts, acyclicity) that no single
  // shard can see across the cut.
  struct VarLinks {
    bool has_initializer = false;
    OpRef initializer;
    std::vector<std::pair<OpRef, OpRef>> links;  // (prec, cur), sorted by prec.
  };
  std::map<VarId, VarLinks> var_links;

  void Serialize(ByteWriter* out) const;
  static std::optional<ShardArtifact> Deserialize(ByteReader* in);
};

// Runs the full streaming audit over one (loaded and validated) shard file,
// scoped to the shard's requests, and packages verdict + exports.
// config.threads and config.prescreen compose exactly as on the epoch axis.
ShardArtifact RunShardAudit(const Program& program, const ShardFile& file,
                            const VerifierConfig& config);

// Deterministically merges K shard artifacts into the run's verdict:
// artifact-set consistency (KAR-SEG-015), rid partition + tag atomicity
// (KAR-SEG-012), write-order stitch (KAR-SEG-013), cross-shard import
// confirmation (KAR-SEG-014), write-chain stitch, and the isolation check
// over the stitched order — in that order, with any shard's own rejection
// (earliest deciding epoch, then lowest shard index) taking precedence.
AuditResult MergeShardArtifacts(const std::vector<ShardArtifact>& artifacts);

// Artifact container: a single kShardArtifact frame (epoch field = shard
// index), CRC-guarded like every KSEG frame.
std::vector<uint8_t> EncodeShardArtifact(const ShardArtifact& artifact);

struct ShardArtifactLoadResult {
  bool ok = false;
  std::string reason;
  std::string rule;
  ShardArtifact artifact;
};

ShardArtifactLoadResult LoadShardArtifactFile(const std::string& path);
ShardArtifactLoadResult LoadShardArtifactBytes(const std::vector<uint8_t>& bytes);

}  // namespace karousos

#endif  // SRC_VERIFIER_SHARD_AUDIT_H_
