// The Karousos verifier: Audit = Preprocess -> ReExec -> Postprocess
// (Figures 14-21). The verifier holds the golden-master Program, receives the
// trusted trace and the untrusted advice, and accepts iff the trace could
// have been produced by some schedule of the program on those requests.
//
// The same verifier audits both Karousos and Orochi-JS advice: grouping is
// driven by the (untrusted) tags in the advice, and every difference between
// the two systems lives in how the server computed tags and how much it
// logged. Wrong tags can only cause rejection (divergence checks), never
// wrong acceptance.
#ifndef SRC_VERIFIER_VERIFIER_H_
#define SRC_VERIFIER_VERIFIER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/adya/checker.h"
#include "src/analysis/access_log.h"
#include "src/analysis/carry_lint.h"
#include "src/analysis/diagnostic.h"
#include "src/common/flat_map.h"
#include "src/common/graph.h"
#include "src/common/ids.h"
#include "src/common/memo.h"
#include "src/common/prof.h"
#include "src/kem/program.h"
#include "src/multivalue/multivalue.h"
#include "src/server/advice.h"
#include "src/server/rollover.h"
#include "src/trace/trace.h"

namespace karousos {

struct AuditStats {
  size_t groups = 0;
  size_t group_lane_total = 0;       // Sum of group widths == #requests.
  size_t handler_executions = 0;     // Handler-body executions (deduplicated).
  size_t handler_lanes = 0;          // Sum over executions of group width.
  size_t ops_executed = 0;           // Deduplicated operation executions.
  size_t graph_nodes = 0;
  size_t graph_edges = 0;
  size_t var_dict_entries = 0;
  size_t isolation_dg_nodes = 0;
  size_t isolation_dg_edges = 0;

  // Accumulates another stats block into this one, field by field. The merge
  // is commutative and associative, so per-group deltas can be combined in
  // any order (the parallel audit engine merges them in group-index order
  // anyway, purely for the determinism of everything else).
  void Merge(const AuditStats& other);
};

// Verifier-side knobs, kept separate from ServerConfig: the verifier runs at
// the principal, on different hardware than the server.
struct VerifierConfig {
  IsolationLevel isolation = IsolationLevel::kSerializable;
  // Audit-group parallelism for ReExec: 0 = one thread per hardware thread,
  // 1 = the serial path (the determinism oracle), N = N worker threads.
  unsigned threads = 1;
  // Streaming-only: run the cross-epoch static model check (KAR-SEG rules,
  // src/analysis/carry_lint.h) as a fast-reject pre-screen inside each epoch,
  // before that epoch's re-execution. Off switches to the purely dynamic
  // path; the verdict is identical either way (the pre-screen only ever
  // rejects advice the dynamic checks would also reject).
  bool prescreen = true;
};

struct AuditResult {
  bool accepted = false;
  std::string reason;  // Empty on accept.
  // Stable rule ID when the rejection came from the advice-lint preprocess
  // stage (e.g. "KAR-ADV-003"); empty for re-execution rejections.
  std::string rule;
  // Analysis-layer findings that accompanied the audit: lint diagnostics
  // (including the one that caused a rejection) and, when an untracked-access
  // log was supplied, happens-before race findings (warnings).
  std::vector<LintDiagnostic> diagnostics;
  AuditStats stats;
  // Phase timings and allocation counters (src/common/prof.h). Wall-clock
  // values vary run to run; everything else in the result is deterministic.
  AuditProfile profile;
};

// Thrown by internal checks on server misbehavior; caught by Audit().
struct RejectError {
  explicit RejectError(std::string r) : reason(std::move(r)) {}
  RejectError(std::string rule_id, std::string r)
      : reason(std::move(r)), rule(std::move(rule_id)) {}
  std::string reason;
  std::string rule;  // Analysis rule ID; empty for re-execution rejections.
};

class ReplayCtx;
class AuditSession;
class ShardAudit;

class Verifier {
 public:
  Verifier(const Program& program, IsolationLevel isolation)
      : Verifier(program, VerifierConfig{isolation, 1}) {}

  Verifier(const Program& program, const VerifierConfig& config)
      : program_(program), config_(config) {}

  // One-shot: audits a single (trace, advice) pair.
  AuditResult Audit(const Trace& trace, const Advice& advice);

  // Optional: supply the server-side untracked-access log so that the
  // preprocess stage can run the §5 happens-before race detector and attach
  // its findings to the audit result as warnings. (The accesses are not part
  // of the advice — untracked variables are unlogged by design — so this is
  // only available when the auditor also operated the collector pipeline.)
  void set_untracked_accesses(const UntrackedAccessLog* log) { untracked_accesses_ = log; }

 private:
  friend class ReplayCtx;
  friend class AuditSession;
  friend class ShardAudit;

  // Location of an operation in the advice logs (Figure 14's OpMap).
  struct OpLocation {
    enum class Kind : uint8_t { kHandlerLog, kTxLog };
    Kind kind = Kind::kHandlerLog;
    RequestId rid = 0;  // Handler-log owner.
    TxnKey txn{};       // Tx-log owner.
    uint32_t index = 0; // 1-based position within the log.
  };

  struct Activation {
    HandlerId hid = 0;
    FunctionId function = 0;
  };

  // Verifier-side tracked-variable state (Figures 20-21). All three tables
  // are lookup-only on the hot path (FindNearestRPrecedingWrite, LinkWrite),
  // so they live in flat hash containers; the one consumer that needs a
  // canonical order — AddInternalStateEdges — walks explicit chains / sorted
  // keys, never container iteration order.
  struct VerifierVar {
    // var_dict: per (rid, hid), the writes that handler performed, in opnum
    // order (value snapshots for FindNearestRPrecedingWrite).
    FlatMap<std::pair<RequestId, HandlerId>, std::vector<std::pair<OpNum, Value>>> var_dict;
    FlatMap<OpRef, std::vector<OpRef>> read_observers;
    FlatMap<OpRef, OpRef> write_observer;
    OpRef initializer;  // First write in the reconstructed history (nil until set).
    bool declared = false;
  };

  // All mutable state one re-execution group touches, captured as a delta
  // over the post-initialization base state. Groups execute against base +
  // their own delta only — never against each other — which is what makes
  // them schedulable on any thread in any order. The deltas are then merged
  // into the verifier in group-index order, reproducing one canonical serial
  // execution bit for bit (result, reason, diagnostics, stats) regardless of
  // thread count.
  struct GroupState {
    // A shared-variable mutation that can collide with another group's:
    // re-checked against the merged state, in recorded order, at merge time.
    struct Claim {
      enum class Kind : uint8_t {
        kDeclare,      // var declared (rejects "variable declared twice").
        kInitializer,  // cur claims the initializing write.
        kChainLink,    // cur overwrites prec in the write chain.
      };
      Kind kind = Kind::kChainLink;
      VarId vid = 0;
      OpRef prec;  // kChainLink only.
      OpRef cur;   // kInitializer / kChainLink.
    };

    // Local VerifierVar overlays: var_dict entries and read-observer pushes
    // produced by this group (merge appends them; keys are disjoint across
    // groups), plus write_observer/initializer/declared shadows used only
    // for this group's own visibility during execution (the authoritative
    // cross-group application happens through `claims`).
    FlatMap<VarId, VerifierVar> vars;
    FlatMap<VarId, Value> untracked;  // Overlay over the post-init snapshot.
    FlatMap<RequestId, FlatMap<HandlerId, HandlerId>> parents;
    FlatMap<TxnKey, uint32_t> tx_positions;
    FlatSet<std::pair<RequestId, HandlerId>> executed;
    FlatSet<RequestId> responded;
    FlatSet<std::pair<VarId, OpRef>> var_log_touched;
    std::vector<Claim> claims;
    AuditStats stats;  // Only the ReExec-phase counters are populated.
    size_t arena_bytes = 0;  // Scratch bytes bump-allocated by this group.

    // Outcome of the isolated execution. A fault is a non-Reject exception
    // surfacing from re-executed application code.
    bool rejected = false;
    bool fault = false;
    std::string reason;
    std::string rule;
  };

  // --- Preprocess (Figure 14) -------------------------------------------
  void Preprocess();
  // Builds the hashed advice indices below and pre-sizes the execution graph
  // from the advice cardinalities. Must run before anything consults the
  // idx_ members (the graph passes and all of ReExec).
  void BuildAdviceIndices();
  // Analysis-layer preprocess: structural advice lint (rejecting on the
  // first error, with its rule ID) plus the untracked-access race scan.
  void RunAnalysisPasses();
  void RunInitialization();
  void AddTimePrecedenceEdges();
  void AddProgramEdges();
  void AddBoundaryEdges();
  void AddHandlerRelatedEdges();
  void AddExternalStateEdges();
  void IsolationLevelVerification();
  void CheckOpIsValid(RequestId rid, HandlerId hid, OpNum opnum);

  // --- ReExec (Figures 18-19) --------------------------------------------
  void ReExec();
  // Runs one group against the post-init base state, capturing every
  // mutation (and the outcome) in the returned delta. Never throws.
  GroupState ExecuteGroup(const std::vector<RequestId>& rids);
  void ReExecGroup(const std::vector<RequestId>& rids, GroupState* gs);
  // Applies a group delta to the verifier in group-index order; replays the
  // recorded claims against the merged state and throws RejectError on a
  // cross-group conflict or on the group's own captured rejection.
  void MergeGroup(GroupState& gs);

  // --- Postprocess (Figure 21) --------------------------------------------
  void Postprocess();
  void AddInternalStateEdges();

  // --- Epoch-streaming support (driven by AuditSession) --------------------
  //
  // The streaming audit feeds one EpochSegment at a time. Each epoch runs the
  // slice-local preprocess passes and re-executes the epoch's groups, then
  // StreamEndEpoch folds the slice into compact carried state and drops the
  // per-epoch structures. Globally-scoped checks (write-order lint, isolation,
  // internal-state edges, the graph cycle check, import confirmation) run once
  // at StreamFinish, which assembles the verdict. The one-shot Audit() path is
  // untouched: streaming_ is false there and every ResolveTxOp/ResolveVarEntry
  // call collapses to the original direct index lookup.

  // Carried view of a completed epoch's PUT (everything any later consumer —
  // GET feed, WR edge, write-order lint, isolation extraction — can ask for).
  struct PutCarry {
    std::string key;
    Value value;
    HandlerId hid = 0;
    OpNum opnum = 0;
  };
  // Carried view of a var-log entry. Reads drop their value: no consumer ever
  // feeds from a read entry, and keeping read values resident would make the
  // carry as large as the advice itself.
  struct VarCarry {
    bool is_write = false;
    Value value;
  };
  // Resolution of a variable-log coordinate across epoch boundaries. `value`
  // is null for carried reads (see VarCarry); it is always set for writes.
  struct ResolvedVarEntry {
    bool present = false;
    bool is_write = false;
    const Value* value = nullptr;
  };

  // Resolve a transaction-log / var-log coordinate: current slice first (the
  // one-shot lookup, and the only step taken when !streaming_), then carried
  // state from completed epochs, then forward continuity imports.
  ResolvedTxOp ResolveTxOp(const TxOpRef& ref) const;
  ResolvedVarEntry ResolveVarEntry(VarId vid, const OpRef& op) const;

  // Shard-axis scope (src/verifier/shard_audit.h): restricts this audit to
  // the requests a shard owns. Must be set before StreamBegin. The trace-level
  // checks (balance, epoch completeness, time precedence) still cover the full
  // replicated trace; only advice-facing work — re-execution, boundary edges,
  // response matching — narrows to the owned rids, and continuity imports
  // targeting foreign-owned requests are exported for the merge to confirm
  // instead of being confirmed (impossibly) against local carries.
  void SetShardScope(const std::set<RequestId>* owned) { shard_rids_ = owned; }
  // True when a shard scope is set and `rid` is an in-trace request owned by
  // another shard. Mirrors CarryLint::ForeignTarget.
  bool ForeignRid(RequestId rid) const {
    return shard_rids_ != nullptr && rid != kInitRequestId && shard_rids_->count(rid) == 0 &&
           trace_rids_.count(rid) != 0;
  }

  void StreamBegin(uint64_t epoch_requests);
  void StreamEpoch(const EpochSegment& segment);
  AuditResult StreamFinish();
  void StreamIngestWindow(const std::vector<TraceEvent>& window);
  void StreamTimePrecedence(const std::vector<TraceEvent>& window);
  void StreamEndEpoch(const EpochSegment& segment);
  void StreamConfirmImports();
  size_t MeasureResidentBytes(const EpochSegment& segment) const;

  // The canonical handler-matching order shared with the server: global
  // handlers in registration order, then per-request registrations in
  // registration order.
  static std::vector<FunctionId> MatchHandlers(
      const std::vector<std::pair<uint64_t, FunctionId>>& globals,
      const std::vector<std::pair<uint64_t, FunctionId>>& registered, uint64_t event);

  [[noreturn]] static void Reject(std::string reason) { throw RejectError(std::move(reason)); }

  const Program& program_;
  VerifierConfig config_;

  const Trace* trace_ = nullptr;
  const Advice* advice_ = nullptr;
  const UntrackedAccessLog* untracked_accesses_ = nullptr;
  std::vector<LintDiagnostic> diagnostics_;

  DirectedGraph graph_;
  FlatMap<OpRef, OpLocation> op_map_;
  FlatMap<OpRef, std::vector<Activation>> activated_handlers_;
  // Global handlers registered by the verifier's own initialization run.
  std::vector<std::pair<uint64_t, FunctionId>> global_handlers_;
  HistoryAnalysis history_;

  // Hashed indices over the advice, built once by BuildAdviceIndices. The
  // advice structures themselves stay std::map (their iteration order is the
  // wire format's byte order); the pointers here alias the advice, which
  // outlives the audit.
  FlatMap<std::pair<RequestId, HandlerId>, OpNum> opcount_idx_;
  FlatMap<OpRef, const NondetRecord*> nondet_idx_;
  FlatMap<VarId, FlatMap<OpRef, const VarLogEntry*>> var_log_idx_;
  FlatMap<TxnKey, const TransactionLog*> tx_log_idx_;
  FlatMap<RequestId, const std::vector<HandlerLogEntry>*> handler_log_idx_;
  FlatMap<RequestId, std::pair<HandlerId, OpNum>> resp_idx_;

  // Stays std::set: its sorted iteration order feeds error messages and the
  // group-formation order, which must be canonical.
  std::set<RequestId> trace_rids_;
  FlatMap<VarId, VerifierVar> vars_;
  // Parent handler of each executed handler, per request (for the var-dict
  // ancestor climb). Request handlers map to kNoHandler.
  FlatMap<RequestId, FlatMap<HandlerId, HandlerId>> parents_;
  // Position counters per transaction during re-execution.
  FlatMap<TxnKey, uint32_t> tx_positions_;
  // (rid, hid) pairs executed by ReExec (for the final opcounts check).
  FlatSet<std::pair<RequestId, HandlerId>> executed_;
  FlatSet<RequestId> responded_;
  // Request inputs / expected responses, indexed once from the trace.
  std::map<RequestId, Value> request_inputs_;
  std::map<RequestId, Value> responses_;
  // Variable-log entries that re-execution actually produced; at the end of
  // ReExec every entry must have been produced, or the log smuggled values
  // ("the verifier ensures that all operations in the logs are produced
  // during re-execution", §4.4 — applied to variable logs as well).
  FlatSet<std::pair<VarId, OpRef>> var_log_touched_;
  // Unannotated variables: a plain reconstructed copy, no version tracking.
  FlatMap<VarId, Value> untracked_vars_;

  // Audit-scoped memo for the simulated application work (MvExpensiveMemo):
  // the per-lane result is a pure function of (lane digest, units), so groups
  // share results. One per audit run — every audit starts cold.
  DigestMemo work_memo_;

  AuditStats stats_;
  AuditProfile profile_;

  // --- Streaming state (untouched on the one-shot path) --------------------
  // All cross-epoch containers are std::map/std::set: their sorted iteration
  // order is the checkpoint wire format, which must be canonical.
  bool streaming_ = false;
  bool init_done_ = false;
  uint64_t epoch_requests_ = 0;
  uint64_t epochs_fed_ = 0;
  // A rejection raised mid-stream; the verdict is still only assembled at
  // StreamFinish (later segments are drained without further work).
  bool decided_ = false;
  std::string decided_reason_;
  std::string decided_rule_;
  uint64_t decided_epoch_ = 0;  // Epoch being fed when the rejection surfaced.
  // Shard scope (not owned; outlives the audit). nullptr == unsharded.
  const std::set<RequestId>* shard_rids_ = nullptr;
  // Requests belonging to the epoch currently being fed.
  std::set<RequestId> epoch_rids_;
  // Request lifecycle over the whole stream: 1 arrived, 2 responded.
  std::map<RequestId, uint8_t> balance_;
  // Time-precedence chain state carried across trace windows.
  uint64_t tp_epoch_count_ = 0;
  bool tp_have_epoch_ = false;
  NodeKey tp_current_epoch_{};
  std::vector<RequestId> tp_pending_responses_;
  // The alleged global write order, concatenated from per-epoch chunks.
  WriteOrder stream_write_order_;
  // Carried state from completed epochs (everything later epochs or the
  // Finish-time global checks can reference).
  std::map<TxnKey, uint32_t> txn_size_carry_;
  std::map<TxOpRef, PutCarry> put_carry_;
  std::map<std::pair<VarId, OpRef>, VarCarry> var_carry_;
  // Forward continuity imports, trusted provisionally during the stream and
  // confirmed against the carries at Finish.
  std::map<TxOpRef, ContinuityImports::TxOpImport> pending_tx_imports_;
  std::map<std::pair<VarId, OpRef>, ContinuityImports::VarImport> pending_var_imports_;
  // The fast-reject pre-screen (config_.prescreen): cross-epoch static rules
  // run per epoch before re-execution, sharing the session checkpoint.
  CarryLint carry_lint_;
  // var_dict entries dropped by per-epoch pruning, so the final
  // stats.var_dict_entries matches the one-shot count.
  size_t var_dict_entries_pruned_ = 0;
  // High-water mark of serialized resident advice-derived bytes (slice +
  // imports + carries), the quantity the epoch bench plots.
  size_t peak_resident_ = 0;
};

}  // namespace karousos

#endif  // SRC_VERIFIER_VERIFIER_H_
