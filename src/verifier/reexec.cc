// Grouped re-execution (Figures 18-21): the verifier runs each re-execution
// group's handler tree once, SIMD-on-demand over the group's requests,
// checking every operation against the untrusted advice.
//
// Parallel audit engine: groups are independent (their rids partition the
// trace, reads feed from the advice logs or from same-request/init history,
// never from another group), so ReExec executes them concurrently on a
// work-stealing pool. Every group runs against the post-initialization base
// state only and captures its mutations in a GroupState delta; the deltas
// are merged on the calling thread in group-index order, with cross-group
// shared-variable claims (write-chain links, initializing writes, declares)
// replayed against the merged state in their recorded order. The merged
// outcome — including which rejection fires first and the exact diagnostics
// and stats — is therefore a pure function of (trace, advice), bit-identical
// from threads=1 (the serial oracle, same code minus the pool) to any N.
#include <algorithm>
#include <deque>
#include <optional>
#include <stdexcept>

#include "src/apps/app_util.h"
#include "src/common/arena.h"
#include "src/common/pool.h"
#include "src/kem/varid.h"
#include "src/verifier/verifier.h"

namespace karousos {

namespace {

struct PendingActivation {
  HandlerId hid = 0;
  FunctionId function = 0;
  MultiValue input;
};

// The value points into the owning var_dict (group-local or base); callers
// copy it out before mutating that dictionary's entry for the same handler.
struct FoundWrite {
  OpRef op;
  const Value* value = nullptr;
};

}  // namespace

// The Ctx implementation for re-execution. One instance per handler-body
// execution; `rids` are the group lanes. With is_init set it executes the
// initialization pseudo-handler: no advice consultation at all (the verifier
// trusts its own init run, Figure 14 line 20).
//
// All mutable state goes through the group's GroupState delta; the verifier
// itself is only read (base variable state from the init run, the advice,
// the op map). That asymmetry is what makes a ReplayCtx safe to run on any
// pool thread.
class ReplayCtx : public Ctx {
 public:
  ReplayCtx(Verifier* verifier, Verifier::GroupState* gs, std::vector<RequestId> rids,
            HandlerId hid, MultiValue input, bool is_init, Arena* arena)
      : v_(*verifier), gs_(*gs), rids_(std::move(rids)), hid_(hid), input_(std::move(input)),
        is_init_(is_init), arena_(arena) {
    if (!is_init_) {
      // Every enqueued handler was checked against opcounts before enqueue;
      // cache the per-lane bounds so NextOp avoids a map lookup per lane.
      lane_opcounts_ = arena_->AllocateArray<OpNum>(rids_.size());
      for (size_t i = 0; i < rids_.size(); ++i) {
        auto it = v_.opcount_idx_.find({rids_[i], hid_});
        lane_opcounts_[i] = it == v_.opcount_idx_.end() ? 0 : it->second;
      }
    }
  }

  // Wired by ReExecGroup so emits can enqueue activations.
  std::deque<PendingActivation>* active = nullptr;
  FlatSet<HandlerId>* enqueued_hids = nullptr;

  const MultiValue& Input() const override { return input_; }

  // ---- Tracked variables (Figures 20-21) --------------------------------

  void DeclareVar(std::string_view name, VarScope scope) override {
    if (scope == VarScope::kUntracked) {
      gs_.untracked[ResolveVarId(name, scope, 0)] = Value();
      return;
    }
    OpNum opnum = NextOp();
    RequireUnlogged(opnum);
    for (RequestId rid : rids_) {
      VarId vid = ResolveVarId(name, scope, rid);
      const Verifier::VerifierVar* base = BaseVar(vid);
      Verifier::VerifierVar& local = gs_.vars[vid];
      if (local.declared || (base != nullptr && base->declared)) {
        Verifier::Reject("variable declared twice during re-execution");
      }
      local.declared = true;
      gs_.claims.push_back(
          {Verifier::GroupState::Claim::Kind::kDeclare, vid, OpRef{}, OpRef{}});
    }
  }

  MultiValue ReadVar(std::string_view name, VarScope scope) override {
    if (scope == VarScope::kUntracked) {
      VarId vid = ResolveVarId(name, scope, 0);
      auto local_it = gs_.untracked.find(vid);
      if (local_it != gs_.untracked.end()) {
        return MultiValue(local_it->second);
      }
      auto base_it = v_.untracked_vars_.find(vid);
      return MultiValue(base_it == v_.untracked_vars_.end() ? Value() : base_it->second);
    }
    OpNum opnum = NextOp();
    RequireUnlogged(opnum);
    std::vector<Value> lanes;
    lanes.reserve(rids_.size());
    for (RequestId rid : rids_) {
      lanes.push_back(ReadLane(ResolveVarId(name, scope, rid), OpRef{rid, hid_, opnum}));
    }
    return MultiValue::Expanded(std::move(lanes));
  }

  void WriteVar(std::string_view name, VarScope scope, const MultiValue& value) override {
    if (scope == VarScope::kUntracked) {
      if (!value.collapsed()) {
        Verifier::Reject("diverging write to an unannotated variable");
      }
      gs_.untracked[ResolveVarId(name, scope, 0)] = value.CollapsedValue();
      return;
    }
    OpNum opnum = NextOp();
    RequireUnlogged(opnum);
    for (size_t i = 0; i < rids_.size(); ++i) {
      WriteLane(ResolveVarId(name, scope, rids_[i]), OpRef{rids_[i], hid_, opnum}, value.Lane(i));
    }
  }

  // ---- Control flow -------------------------------------------------------

  bool Branch(const MultiValue& condition) override {
    bool truth = condition.Lane(0).Truthy();
    for (size_t i = 1; i < rids_.size(); ++i) {
      if (condition.Lane(i).Truthy() != truth) {
        Verifier::Reject("control flow diverged within a re-execution group");
      }
    }
    return truth;
  }

  // ---- Handler operations (Figure 19) -------------------------------------

  void Emit(std::string_view event, const MultiValue& payload) override {
    if (is_init_) {
      Verifier::Reject("initialization emitted an event");
    }
    OpNum opnum = NextOp();
    uint64_t event_id = EventId(event);
    for (RequestId rid : rids_) {
      CheckHandlerOp(rid, opnum, HandlerLogEntry::Kind::kEmit, event_id, 0);
    }
    ActivateHandlers(opnum, payload);
  }

  void RegisterHandler(std::string_view event, std::string_view function) override {
    uint64_t event_id = EventId(event);
    FunctionId function_id = DigestOf(function);
    if (is_init_) {
      if (v_.program_.FindFunction(function_id) == nullptr) {
        Verifier::Reject("initialization registered an unknown function");
      }
      v_.global_handlers_.emplace_back(event_id, function_id);
      return;
    }
    OpNum opnum = NextOp();
    for (RequestId rid : rids_) {
      CheckHandlerOp(rid, opnum, HandlerLogEntry::Kind::kRegister, event_id, function_id);
    }
  }

  void UnregisterHandler(std::string_view event, std::string_view function) override {
    if (is_init_) {
      Verifier::Reject("initialization unregistered a handler");
    }
    OpNum opnum = NextOp();
    for (RequestId rid : rids_) {
      CheckHandlerOp(rid, opnum, HandlerLogEntry::Kind::kUnregister, EventId(event),
                     DigestOf(function));
    }
  }

  // ---- External state (Figure 19, CheckStateOp) ---------------------------

  TxHandle TxStart() override {
    if (is_init_) {
      Verifier::Reject("initialization used external state");
    }
    OpNum opnum = NextOp();
    TxId* tids = arena_->AllocateArray<TxId>(rids_.size());
    for (size_t i = 0; i < rids_.size(); ++i) {
      TxId tid = DigestOfInts(rids_[i], hid_, opnum);
      CheckStateOp(rids_[i], opnum, TxOpType::kTxStart, tid, nullptr, nullptr);
      tids[i] = tid;
    }
    TxHandle handle;
    handle.slot = static_cast<uint32_t>(open_txns_.size());
    handle.valid = true;
    open_txns_.push_back(tids);
    return handle;
  }

  TxGetResult TxGet(TxHandle tx, const MultiValue& key) override {
    TxGetResult out;
    OpNum opnum = NextOp();
    if (CheckConflictMarker(opnum)) {
      out.conflict = true;
      return out;
    }
    const TxId* tids = TidsOf(tx);
    std::vector<Value> values;
    std::vector<Value> found;
    values.reserve(rids_.size());
    found.reserve(rids_.size());
    for (size_t i = 0; i < rids_.size(); ++i) {
      std::string key_str = key.Lane(i).StringOrToString();
      const TxOperation& op =
          CheckStateOpReturning(rids_[i], opnum, TxOpType::kGet, tids[i], &key_str);
      if (op.get_found) {
        // Feed from the dictating PUT (validated by AnalyzeLogs; in the
        // streaming audit the PUT may resolve from a carried epoch or a
        // continuity import rather than the current slice).
        ResolvedTxOp writer = v_.ResolveTxOp(op.get_from);
        values.push_back(*writer.put_value);
        found.push_back(Value(true));
      } else {
        values.push_back(Value());
        found.push_back(Value(false));
      }
    }
    out.value = MultiValue::Expanded(std::move(values));
    out.found = MultiValue::Expanded(std::move(found));
    return out;
  }

  bool TxPut(TxHandle tx, const MultiValue& key, const MultiValue& value) override {
    OpNum opnum = NextOp();
    if (CheckConflictMarker(opnum)) {
      return false;
    }
    const TxId* tids = TidsOf(tx);
    for (size_t i = 0; i < rids_.size(); ++i) {
      std::string key_str = key.Lane(i).StringOrToString();
      Value lane_value = value.Lane(i);
      CheckStateOp(rids_[i], opnum, TxOpType::kPut, tids[i], &key_str, &lane_value);
    }
    return true;
  }

  bool TxCommit(TxHandle tx) override {
    OpNum opnum = NextOp();
    const TxId* tids = TidsOf(tx);
    bool committed = true;
    bool first = true;
    for (size_t i = 0; i < rids_.size(); ++i) {
      const TxOperation& op =
          CheckStateOpReturning(rids_[i], opnum, TxOpType::kTxCommit, tids[i], nullptr);
      bool lane_committed = op.type == TxOpType::kTxCommit;
      if (first) {
        committed = lane_committed;
        first = false;
      } else if (lane_committed != committed) {
        Verifier::Reject("commit outcome diverged within a re-execution group");
      }
    }
    return committed;
  }

  void TxAbort(TxHandle tx) override {
    OpNum opnum = NextOp();
    const TxId* tids = TidsOf(tx);
    for (size_t i = 0; i < rids_.size(); ++i) {
      CheckStateOp(rids_[i], opnum, TxOpType::kTxAbort, tids[i], nullptr, nullptr);
    }
  }

  MultiValue TxIdValue(TxHandle tx) override {
    const TxId* tids = TidsOf(tx);
    std::vector<Value> lanes;
    lanes.reserve(rids_.size());
    for (size_t i = 0; i < rids_.size(); ++i) {
      lanes.push_back(Value(static_cast<int64_t>(tids[i])));
    }
    return MultiValue::Expanded(std::move(lanes));
  }

  TxHandle TxResume(const MultiValue& tid_value) override {
    TxId* tids = arena_->AllocateArray<TxId>(rids_.size());
    for (size_t i = 0; i < rids_.size(); ++i) {
      tids[i] = static_cast<TxId>(tid_value.Lane(i).IntOr(0));
    }
    TxHandle handle;
    handle.slot = static_cast<uint32_t>(open_txns_.size());
    handle.valid = true;
    open_txns_.push_back(tids);
    return handle;
  }

  // ---- Application computation ---------------------------------------------

  MultiValue AppWork(const MultiValue& seed, uint32_t units) override {
    // MultiValue::Map dedups within this call (SIMD-on-demand); the
    // audit-scoped memo additionally dedups across groups and operations.
    return MvExpensiveMemo(seed, units, &v_.work_memo_);
  }

  // ---- Non-determinism -----------------------------------------------------

  MultiValue Random() override {
    OpNum opnum = NextOp();
    RequireUnlogged(opnum);
    std::vector<Value> lanes;
    lanes.reserve(rids_.size());
    for (RequestId rid : rids_) {
      auto it = v_.nondet_idx_.find(OpRef{rid, hid_, opnum});
      if (it == v_.nondet_idx_.end() || it->second->kind != NondetRecord::Kind::kValue) {
        Verifier::Reject("non-deterministic operation has no recorded value");
      }
      lanes.push_back(it->second->value);
    }
    return MultiValue::Expanded(std::move(lanes));
  }

  // ---- Response ------------------------------------------------------------

  void Respond(const MultiValue& body) override {
    if (is_init_) {
      Verifier::Reject("initialization produced a response");
    }
    for (size_t i = 0; i < rids_.size(); ++i) {
      RequestId rid = rids_[i];
      auto it = v_.resp_idx_.find(rid);
      if (it == v_.resp_idx_.end() ||
          it->second != std::make_pair(hid_, ops_issued_)) {
        Verifier::Reject("response delivered at a different operation than advice claims");
      }
      if (!gs_.responded.insert(rid).second) {
        Verifier::Reject("request responded twice during re-execution");
      }
      auto expected = v_.responses_.find(rid);
      if (expected == v_.responses_.end() || !(expected->second == body.Lane(i))) {
        Verifier::Reject("re-executed response does not match the trace");
      }
    }
  }

  OpNum ops_issued() const { return ops_issued_; }

 private:
  OpNum NextOp() {
    ++ops_issued_;
    ++gs_.stats.ops_executed;
    if (!is_init_) {
      for (size_t i = 0; i < rids_.size(); ++i) {
        if (ops_issued_ > lane_opcounts_[i]) {
          Verifier::Reject("handler issued more operations than its opcount");
        }
      }
    }
    return ops_issued_;
  }

  // Annotated-variable and non-deterministic operations must not coincide
  // with any handler-log or transaction-log entry: otherwise a log entry
  // would exist that re-execution never validates.
  void RequireUnlogged(OpNum opnum) {
    if (is_init_) {
      return;
    }
    for (RequestId rid : rids_) {
      if (v_.op_map_.count(OpRef{rid, hid_, opnum}) > 0) {
        Verifier::Reject("advice log entry occupies a non-loggable operation position");
      }
    }
  }

  // One TxId per lane, arena-allocated (lifetime = this handler execution).
  const TxId* TidsOf(TxHandle tx) const {
    if (!tx.valid || tx.slot >= open_txns_.size()) {
      Verifier::Reject("invalid transaction handle during re-execution");
    }
    return open_txns_[tx.slot];
  }

  // True if the server recorded a no-wait conflict for this operation. The
  // marker must be uniform across lanes (divergent outcomes imply divergent
  // control flow, which grouping forbids). Conflicted operations consumed an
  // opnum online but never reached the store, so they must have no log entry.
  bool CheckConflictMarker(OpNum opnum) {
    bool conflict = false;
    bool first = true;
    for (RequestId rid : rids_) {
      auto it = v_.nondet_idx_.find(OpRef{rid, hid_, opnum});
      bool lane_conflict =
          it != v_.nondet_idx_.end() && it->second->kind == NondetRecord::Kind::kConflict;
      if (first) {
        conflict = lane_conflict;
        first = false;
      } else if (lane_conflict != conflict) {
        Verifier::Reject("conflict outcome diverged within a re-execution group");
      }
    }
    if (conflict) {
      RequireUnlogged(opnum);
    }
    return conflict;
  }

  void CheckHandlerOp(RequestId rid, OpNum opnum, HandlerLogEntry::Kind kind, uint64_t event,
                      FunctionId function) {
    OpRef cur{rid, hid_, opnum};
    auto loc = v_.op_map_.find(cur);
    if (loc == v_.op_map_.end() || loc->second.kind != Verifier::OpLocation::Kind::kHandlerLog ||
        loc->second.rid != rid) {
      Verifier::Reject("handler operation missing from the handler log");
    }
    const HandlerLogEntry& entry =
        (*v_.handler_log_idx_.find(rid)->second)[loc->second.index - 1];
    if (entry.kind != kind || entry.event != event ||
        (kind != HandlerLogEntry::Kind::kEmit && entry.function != function)) {
      Verifier::Reject("handler operation does not match the handler log entry");
    }
  }

  const TxOperation& CheckStateOpReturning(RequestId rid, OpNum opnum, TxOpType type, TxId tid,
                                           const std::string* key) {
    OpRef cur{rid, hid_, opnum};
    auto loc = v_.op_map_.find(cur);
    if (loc == v_.op_map_.end() || loc->second.kind != Verifier::OpLocation::Kind::kTxLog) {
      Verifier::Reject("state operation missing from the transaction logs");
    }
    const TxnKey txn = loc->second.txn;
    if (txn.rid != rid || txn.tid != tid) {
      Verifier::Reject("state operation attributed to the wrong transaction");
    }
    uint32_t position = ++gs_.tx_positions[txn];
    if (loc->second.index != position) {
      Verifier::Reject("state operation out of order within its transaction log");
    }
    const TxOperation& op = (*v_.tx_log_idx_.find(txn)->second)[loc->second.index - 1];
    // A re-executed tx_commit may face a logged tx_abort: the online commit
    // failed (Figure 19 line 9). Every other type must match exactly.
    if (op.type != type && !(type == TxOpType::kTxCommit && op.type == TxOpType::kTxAbort)) {
      Verifier::Reject("state operation type does not match the transaction log");
    }
    if (key != nullptr && op.key != *key) {
      Verifier::Reject("state operation key does not match the transaction log");
    }
    return op;
  }

  void CheckStateOp(RequestId rid, OpNum opnum, TxOpType type, TxId tid, const std::string* key,
                    const Value* put_value) {
    const TxOperation& op = CheckStateOpReturning(rid, opnum, type, tid, key);
    if (put_value != nullptr && !(op.put_value == *put_value)) {
      Verifier::Reject("re-executed PUT value does not match the transaction log");
    }
  }

  void ActivateHandlers(OpNum opnum, const MultiValue& payload) {
    // All lanes must activate the same handlers (Figure 19 line 31).
    const std::vector<Verifier::Activation>* expected = nullptr;
    static const std::vector<Verifier::Activation> kEmpty;
    for (RequestId rid : rids_) {
      auto it = v_.activated_handlers_.find(OpRef{rid, hid_, opnum});
      const std::vector<Verifier::Activation>* lane =
          it == v_.activated_handlers_.end() ? &kEmpty : &it->second;
      if (expected == nullptr) {
        expected = lane;
      } else if (lane->size() != expected->size() ||
                 !std::equal(lane->begin(), lane->end(), expected->begin(),
                             [](const Verifier::Activation& a, const Verifier::Activation& b) {
                               return a.hid == b.hid && a.function == b.function;
                             })) {
        Verifier::Reject("emit activates different handlers across the group");
      }
    }
    for (const Verifier::Activation& act : *expected) {
      if (!enqueued_hids->insert(act.hid).second) {
        Verifier::Reject("handler activated twice within a request");
      }
      for (RequestId rid : rids_) {
        gs_.parents[rid][act.hid] = hid_;
      }
      active->push_back(PendingActivation{act.hid, act.function, payload});
    }
  }

  // Base (post-initialization) view of a variable; null if the init run
  // never touched it. Read-only during group execution.
  const Verifier::VerifierVar* BaseVar(VarId vid) const {
    auto it = v_.vars_.find(vid);
    return it == v_.vars_.end() ? nullptr : &it->second;
  }

  // This group's local overlay of a variable; null until the group touches it.
  Verifier::VerifierVar* LocalVar(VarId vid) {
    auto it = gs_.vars.find(vid);
    return it == gs_.vars.end() ? nullptr : &it->second;
  }

  bool IsDeclared(VarId vid) {
    const Verifier::VerifierVar* base = BaseVar(vid);
    if (base != nullptr && base->declared) {
      return true;
    }
    Verifier::VerifierVar* local = LocalVar(vid);
    return local != nullptr && local->declared;
  }

  // Links cur as the overwriter of prec: rejects if the link is already
  // taken locally or in the base state, and records a claim so that a
  // conflict with another group's link is caught at merge time.
  void LinkWrite(VarId vid, const OpRef& prec, const OpRef& cur) {
    const Verifier::VerifierVar* base = BaseVar(vid);
    Verifier::VerifierVar& local = gs_.vars[vid];
    if (local.write_observer.count(prec) > 0 ||
        (base != nullptr && base->write_observer.count(prec) > 0)) {
      Verifier::Reject("two writes overwrite the same value");
    }
    local.write_observer[prec] = cur;
    gs_.claims.push_back({Verifier::GroupState::Claim::Kind::kChainLink, vid, prec, cur});
  }

  Value ReadLane(VarId vid, const OpRef& cur);
  void WriteLane(VarId vid, const OpRef& cur, const Value& value);
  std::optional<FoundWrite> FindNearestRPrecedingWrite(VarId vid, const OpRef& cur);

  Verifier& v_;
  Verifier::GroupState& gs_;
  std::vector<RequestId> rids_;
  HandlerId hid_;
  MultiValue input_;
  bool is_init_;
  Arena* arena_;
  OpNum ops_issued_ = 0;
  OpNum* lane_opcounts_ = nullptr;     // Arena array, one bound per lane.
  std::vector<TxId*> open_txns_;       // Arena arrays, one TxId per lane.
};

// Figure 20, OnRead.
Value ReplayCtx::ReadLane(VarId vid, const OpRef& cur) {
  if (!IsDeclared(vid)) {
    Verifier::Reject("re-executed read of an undeclared variable");
  }
  if (!is_init_) {
    auto log_it = v_.var_log_idx_.find(vid);
    if (log_it != v_.var_log_idx_.end()) {
      auto entry_it = log_it->second.find(cur);
      if (entry_it != log_it->second.end()) {
        const VarLogEntry& entry = *entry_it->second;
        if (entry.kind != VarLogEntry::Kind::kRead || entry.prec.IsNil()) {
          Verifier::Reject("variable log entry for a read is malformed");
        }
        Verifier::ResolvedVarEntry dictating = v_.ResolveVarEntry(vid, entry.prec);
        if (!dictating.present || !dictating.is_write || dictating.value == nullptr) {
          Verifier::Reject("logged read's dictating write is not a logged write");
        }
        if (!gs_.var_log_touched.insert({vid, cur}).second) {
          Verifier::Reject("variable log entry re-executed twice");
        }
        gs_.vars[vid].read_observers[entry.prec].push_back(cur);
        return *dictating.value;
      }
    }
  }
  std::optional<FoundWrite> found = FindNearestRPrecedingWrite(vid, cur);
  if (!found.has_value()) {
    return Value();  // Reads before any write observe the initial nil.
  }
  // Copy the value before touching gs_.vars: rehash of the outer table moves
  // the VerifierVar structs the pointer's vector lives behind (the vector's
  // heap buffer survives a move, but keeping the copy first makes the
  // lifetime obvious).
  Value result = *found->value;
  gs_.vars[vid].read_observers[found->op].push_back(cur);
  return result;
}

// Figure 21, OnWrite — with one recovery beyond the paper's pseudocode:
// back-filled log entries carry a nil predecessor, so their position in the
// write chain is recovered through FindNearestRPrecedingWrite, keeping the
// reconstructed history connected.
void ReplayCtx::WriteLane(VarId vid, const OpRef& cur, const Value& value) {
  if (!IsDeclared(vid)) {
    Verifier::Reject("re-executed write of an undeclared variable");
  }
  // The variable's dictionary keeps every written version, keyed by handler
  // and opnum (§4.2). `nearest` is consumed only for its OpRef below: the
  // emplace may reallocate the very vector its value pointer aims into.
  std::optional<FoundWrite> nearest = FindNearestRPrecedingWrite(vid, cur);
  gs_.vars[vid].var_dict[{cur.rid, cur.hid}].emplace_back(cur.opnum, value);
  if (!is_init_) {
    auto log_it = v_.var_log_idx_.find(vid);
    if (log_it != v_.var_log_idx_.end()) {
      auto entry_it = log_it->second.find(cur);
      if (entry_it != log_it->second.end()) {
        const VarLogEntry& entry = *entry_it->second;
        if (entry.kind != VarLogEntry::Kind::kWrite) {
          Verifier::Reject("variable log entry for a write is marked as a read");
        }
        if (!(entry.value == value)) {
          Verifier::Reject("re-executed write value does not match the variable log");
        }
        if (!gs_.var_log_touched.insert({vid, cur}).second) {
          Verifier::Reject("variable log entry re-executed twice");
        }
        if (!entry.prec.IsNil()) {
          Verifier::ResolvedVarEntry prec = v_.ResolveVarEntry(vid, entry.prec);
          if (!prec.present || !prec.is_write) {
            Verifier::Reject("logged write's predecessor is not a logged write");
          }
          LinkWrite(vid, entry.prec, cur);
          return;
        }
      }
    }
  }
  // Unlogged write, or a back-filled entry (nil predecessor): link into the
  // chain through the nearest R-preceding write.
  if (nearest.has_value()) {
    LinkWrite(vid, nearest->op, cur);
  } else {
    const Verifier::VerifierVar* base = BaseVar(vid);
    Verifier::VerifierVar& local = gs_.vars[vid];
    if (!local.initializer.IsNil() || (base != nullptr && !base->initializer.IsNil())) {
      Verifier::Reject("variable has two initializing writes");
    }
    local.initializer = cur;
    gs_.claims.push_back(
        {Verifier::GroupState::Claim::Kind::kInitializer, vid, OpRef{}, cur});
  }
}

// The dictionary interrogation of §4.2: the last write by this handler before
// `cur`, else the last write by the nearest ancestor (walking activator
// links), falling back to the initialization pseudo-handler I. Consults the
// group's local dictionary first, then the post-init base dictionary — the
// climb only ever visits this group's own requests plus the init request, so
// no other group's writes can be observed.
std::optional<FoundWrite> ReplayCtx::FindNearestRPrecedingWrite(VarId vid, const OpRef& cur) {
  const Verifier::VerifierVar* base = BaseVar(vid);
  Verifier::VerifierVar* local = LocalVar(vid);
  RequestId rid = cur.rid;
  HandlerId h = cur.hid;
  bool same_handler = true;
  while (true) {
    const std::vector<std::pair<OpNum, Value>>* writes_ptr = nullptr;
    const std::pair<RequestId, HandlerId> key{rid, h};
    if (local != nullptr) {
      auto it = local->var_dict.find(key);
      if (it != local->var_dict.end() && !it->second.empty()) {
        writes_ptr = &it->second;
      }
    }
    if (writes_ptr == nullptr && base != nullptr) {
      auto it = base->var_dict.find(key);
      if (it != base->var_dict.end() && !it->second.empty()) {
        writes_ptr = &it->second;
      }
    }
    if (writes_ptr != nullptr) {
      const auto& writes = *writes_ptr;
      if (same_handler) {
        // Last write strictly before cur.opnum (entries are opnum-sorted).
        const std::pair<OpNum, Value>* best = nullptr;
        for (const auto& w : writes) {
          if (w.first < cur.opnum) {
            best = &w;
          } else {
            break;
          }
        }
        if (best != nullptr) {
          return FoundWrite{OpRef{rid, h, best->first}, &best->second};
        }
      } else {
        return FoundWrite{OpRef{rid, h, writes.back().first}, &writes.back().second};
      }
    }
    if (rid == kInitRequestId) {
      return std::nullopt;  // Climbed past I: no write exists.
    }
    same_handler = false;
    auto parents_it = gs_.parents.find(rid);
    HandlerId parent = kNoHandler;
    if (parents_it != gs_.parents.end()) {
      auto p = parents_it->second.find(h);
      if (p != parents_it->second.end()) {
        parent = p->second;
      }
    }
    if (parent == kNoHandler) {
      // Request handlers are activated by I (§3).
      rid = kInitRequestId;
      h = kInitHandlerId;
    } else {
      h = parent;
    }
  }
}

void Verifier::RunInitialization() {
  if (!program_.init()) {
    return;
  }
  // The init run is an ordinary isolated execution whose delta becomes the
  // read-only base state every group executes against. Rejections propagate
  // directly (the verifier trusts its own init run; a throw here is a
  // program/advice mismatch surfaced before any group runs).
  GroupState gs;
  {
    Arena arena;
    ReplayCtx ctx(this, &gs, {kInitRequestId}, kInitHandlerId, MultiValue(), /*is_init=*/true,
                  &arena);
    program_.init()(ctx);
    gs.arena_bytes = arena.bytes_allocated();
  }
  MergeGroup(gs);
}

void Verifier::ReExec() {
  // Group requests by their (alleged) tag; groups merge in order of their
  // earliest request id, which is deterministic but otherwise arbitrary
  // (Lemma 1: all well-formed orders are equivalent). The streaming audit
  // re-executes one epoch's requests at a time — its groups partition the
  // epoch, not the whole trace (tags never span epochs; a tag that tried
  // would leave its handler un-run and reject below).
  const std::set<RequestId>& reexec_rids = streaming_ ? epoch_rids_ : trace_rids_;
  std::map<uint64_t, std::vector<RequestId>> by_tag;
  for (RequestId rid : reexec_rids) {
    auto it = advice_->tags.find(rid);
    if (it == advice_->tags.end()) {
      Reject("no re-execution tag for request " + std::to_string(rid));
    }
    by_tag[it->second].push_back(rid);
  }
  std::vector<const std::vector<RequestId>*> groups;
  groups.reserve(by_tag.size());
  for (const auto& [tag, rids] : by_tag) {
    groups.push_back(&rids);
  }
  std::sort(groups.begin(), groups.end(),
            [](const auto* a, const auto* b) { return a->front() < b->front(); });

  // Execute every group in isolation (possibly concurrently), then merge the
  // deltas in group-index order. The merge — not the execution schedule —
  // decides the audit outcome, so any thread count yields the same result.
  std::vector<GroupState> states(groups.size());
  size_t executed_count = groups.size();
  unsigned threads = WorkStealingPool::ResolveThreads(config_.threads);
  if (threads > 1 && groups.size() > 1) {
    WorkStealingPool pool(static_cast<unsigned>(std::min<size_t>(threads, groups.size())));
    pool.ParallelFor(groups.size(),
                     [&](size_t i) { states[i] = ExecuteGroup(*groups[i]); });
  } else {
    // Serial oracle path: same isolated execution and merge, no pool. A
    // locally rejected group ends the merge at or before its index, so later
    // groups need not execute at all.
    executed_count = 0;
    for (size_t i = 0; i < groups.size(); ++i) {
      states[i] = ExecuteGroup(*groups[i]);
      ++executed_count;
      if (states[i].rejected) {
        break;
      }
    }
  }
  for (size_t i = 0; i < executed_count; ++i) {
    MergeGroup(states[i]);
    ++stats_.groups;
    stats_.group_lane_total += groups[i]->size();
  }

  // Every handler the advice mentions must have been re-executed (Figure 18
  // line 64) and every request must have produced its response.
  for (const auto& [key, count] : advice_->opcounts) {
    if (executed_.count(key) == 0) {
      Reject("advice mentions a handler that re-execution never ran");
    }
  }
  for (RequestId rid : reexec_rids) {
    if (responded_.count(rid) == 0) {
      Reject("request " + std::to_string(rid) + " produced no response during re-execution");
    }
  }
  // Every variable-log entry must have been produced by re-execution, or the
  // log could feed values from operations that never happened.
  if (var_log_touched_.size() != advice_->var_log_entry_count()) {
    Reject("variable log contains entries that re-execution never produced");
  }
}

Verifier::GroupState Verifier::ExecuteGroup(const std::vector<RequestId>& rids) {
  GroupState gs;
  try {
    ReExecGroup(rids, &gs);
  } catch (const RejectError& e) {
    gs.rejected = true;
    gs.reason = e.reason;
    gs.rule = e.rule;
  } catch (const std::exception& e) {
    // Faults from re-executed application code are captured here (never
    // propagated across pool threads) and re-raised during the ordered
    // merge, where Audit() wraps them as "re-execution fault: ...".
    gs.rejected = true;
    gs.fault = true;
    gs.reason = e.what();
  }
  return gs;
}

void Verifier::MergeGroup(GroupState& gs) {
  // Non-conflicting deltas first: var-dict entries and read-observer pushes
  // append (keys are per-request, disjoint across groups), the bookkeeping
  // sets are unions of disjoint key spaces, untracked overlays apply in
  // group order.
  for (auto& [vid, local] : gs.vars) {
    VerifierVar& var = vars_[vid];
    for (auto& [key, writes] : local.var_dict) {
      auto& dst = var.var_dict[key];
      if (dst.empty()) {
        dst = std::move(writes);
      } else {
        dst.insert(dst.end(), std::make_move_iterator(writes.begin()),
                   std::make_move_iterator(writes.end()));
      }
    }
    for (auto& [prec, readers] : local.read_observers) {
      auto& dst = var.read_observers[prec];
      dst.insert(dst.end(), readers.begin(), readers.end());
    }
  }
  for (auto& [vid, value] : gs.untracked) {
    untracked_vars_[vid] = std::move(value);
  }
  for (auto& [rid, per_request] : gs.parents) {
    auto& dst = parents_[rid];
    for (const auto& [hid, parent] : per_request) {
      dst[hid] = parent;
    }
  }
  for (const auto& [txn, position] : gs.tx_positions) {
    tx_positions_[txn] = position;
  }
  executed_.insert(gs.executed.begin(), gs.executed.end());
  responded_.insert(gs.responded.begin(), gs.responded.end());
  var_log_touched_.insert(gs.var_log_touched.begin(), gs.var_log_touched.end());
  stats_.Merge(gs.stats);
  profile_.arena_bytes += gs.arena_bytes;

  // Shared-variable claims, replayed in the order the group issued them.
  // Each was pre-checked against base + the group's own state; re-checking
  // against the merged state catches exactly the cross-group conflicts, at
  // the same program point (and with the same reason) the serial execution
  // would have caught them.
  for (const GroupState::Claim& claim : gs.claims) {
    VerifierVar& var = vars_[claim.vid];
    switch (claim.kind) {
      case GroupState::Claim::Kind::kDeclare:
        if (var.declared) {
          Reject("variable declared twice during re-execution");
        }
        var.declared = true;
        break;
      case GroupState::Claim::Kind::kInitializer:
        if (!var.initializer.IsNil()) {
          Reject("variable has two initializing writes");
        }
        var.initializer = claim.cur;
        break;
      case GroupState::Claim::Kind::kChainLink:
        if (var.write_observer.count(claim.prec) > 0) {
          Reject("two writes overwrite the same value");
        }
        var.write_observer[claim.prec] = claim.cur;
        break;
    }
  }

  // The group's own captured outcome comes after its claims: a group stops
  // executing at its first failure, so every recorded claim precedes it.
  if (gs.rejected) {
    if (gs.fault) {
      throw std::runtime_error(gs.reason);
    }
    throw RejectError(gs.rule, gs.reason);
  }
}

void Verifier::ReExecGroup(const std::vector<RequestId>& rids, GroupState* gs) {
  std::vector<Value> inputs;
  inputs.reserve(rids.size());
  for (RequestId rid : rids) {
    inputs.push_back(request_inputs_.at(rid));
  }
  MultiValue group_input = MultiValue::Expanded(std::move(inputs));

  std::deque<PendingActivation> active;
  FlatSet<HandlerId> enqueued;
  for (const auto& [event, function] : global_handlers_) {
    if (event != EventId(kRequestEventName)) {
      continue;
    }
    HandlerId hid = ComputeHandlerId(function, kNoHandler, 0);
    for (RequestId rid : rids) {
      if (!opcount_idx_.contains({rid, hid})) {
        Reject("request handler missing from opcounts");
      }
      gs->parents[rid][hid] = kNoHandler;
    }
    if (!enqueued.insert(hid).second) {
      Reject("duplicate request handler activation");
    }
    active.push_back(PendingActivation{hid, function, group_input});
  }
  // One arena for the whole group, rewound between handler executions: the
  // per-handler scratch (lane opcounts, open-transaction tid arrays) dies
  // with its ReplayCtx, so Reset() reuses the same blocks with zero frees.
  Arena arena;
  while (!active.empty()) {
    PendingActivation next = std::move(active.front());
    active.pop_front();
    const FunctionDef* def = program_.FindFunction(next.function);
    if (def == nullptr) {
      Reject("activation of an unknown function");
    }
    arena.Reset();
    ReplayCtx ctx(this, gs, rids, next.hid, std::move(next.input), /*is_init=*/false, &arena);
    ctx.active = &active;
    ctx.enqueued_hids = &enqueued;
    ++gs->stats.handler_executions;
    gs->stats.handler_lanes += rids.size();
    def->fn(ctx);
    for (RequestId rid : rids) {
      auto it = opcount_idx_.find({rid, next.hid});
      if (it == opcount_idx_.end() || it->second != ctx.ops_issued()) {
        Reject("handler issued fewer operations than its opcount");
      }
      gs->executed.insert({rid, next.hid});
    }
  }
  gs->arena_bytes = arena.bytes_allocated();
}

}  // namespace karousos
