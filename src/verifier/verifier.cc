#include "src/verifier/verifier.h"

#include <algorithm>
#include <sstream>

#include "src/analysis/lint.h"
#include "src/analysis/race.h"

namespace karousos {

namespace {

// Auxiliary node marker for the time-precedence epoch chain (never collides
// with request ids, which are assigned from 1 upward).
constexpr uint64_t kEpochMarker = ~uint64_t{0};

std::string DescribeNode(const NodeKey& key) {
  std::ostringstream out;
  if (key.a == kEpochMarker) {
    out << "epoch#" << key.b;
  } else if (key.b == 0 && key.c == 0) {
    out << "req(r" << key.a << ")";
  } else if (key.b == 0 && key.c == kOpNumInf) {
    out << "resp(r" << key.a << ")";
  } else {
    out << OpRef{key.a, key.b, static_cast<OpNum>(key.c)}.ToString();
  }
  return out.str();
}

}  // namespace

void AuditStats::Merge(const AuditStats& other) {
  groups += other.groups;
  group_lane_total += other.group_lane_total;
  handler_executions += other.handler_executions;
  handler_lanes += other.handler_lanes;
  ops_executed += other.ops_executed;
  graph_nodes += other.graph_nodes;
  graph_edges += other.graph_edges;
  var_dict_entries += other.var_dict_entries;
  isolation_dg_nodes += other.isolation_dg_nodes;
  isolation_dg_edges += other.isolation_dg_edges;
}

AuditResult Verifier::Audit(const Trace& trace, const Advice& advice) {
  trace_ = &trace;
  advice_ = &advice;
  AuditResult result;
  PhaseTimer total_timer(&profile_.total_seconds);
  try {
    {
      PhaseTimer t(&profile_.preprocess_seconds);
      Preprocess();
    }
    {
      PhaseTimer t(&profile_.reexec_seconds);
      ReExec();
    }
    {
      PhaseTimer t(&profile_.postprocess_seconds);
      Postprocess();
    }
    result.accepted = true;
  } catch (const RejectError& e) {
    result.reason = e.reason;
    result.rule = e.rule;
  } catch (const std::exception& e) {
    // Malformed advice must never crash the verifier: any fault surfacing
    // from re-executed application code counts as server misbehavior.
    result.reason = std::string("re-execution fault: ") + e.what();
  }
  result.diagnostics = std::move(diagnostics_);
  diagnostics_.clear();
  stats_.graph_nodes = graph_.node_count();
  stats_.graph_edges = graph_.edge_count();
  for (const auto& [vid, var] : vars_) {
    for (const auto& [key, writes] : var.var_dict) {
      stats_.var_dict_entries += writes.size();
    }
  }
  result.stats = stats_;
  total_timer.Stop();
  profile_.ops_executed = stats_.ops_executed;
  result.profile = profile_;
  return result;
}

void Verifier::Preprocess() {
  std::string reason;
  if (!trace_->IsBalanced(&reason)) {
    Reject("trace is not balanced: " + reason);
  }
  for (RequestId rid : trace_->RequestIds()) {
    if (rid == kInitRequestId) {
      Reject("trace contains the reserved init request id");
    }
    trace_rids_.insert(rid);
  }
  for (const TraceEvent& ev : trace_->events) {
    if (ev.kind == TraceEvent::Kind::kRequest) {
      request_inputs_[ev.rid] = ev.payload;
    } else {
      responses_[ev.rid] = ev.payload;
    }
  }
  RunAnalysisPasses();
  BuildAdviceIndices();
  RunInitialization();  // Implemented with ReplayCtx in reexec.cc.
  AddTimePrecedenceEdges();
  AddProgramEdges();
  AddBoundaryEdges();
  AddHandlerRelatedEdges();
  AddExternalStateEdges();
  IsolationLevelVerification();
}

void Verifier::RunAnalysisPasses() {
  // Structural advice lint (src/analysis/lint.h). All findings are kept for
  // the result; the first error becomes the structured rejection so callers
  // see the rule ID without grepping the reason text.
  for (LintDiagnostic& d : LintAdvice(*trace_, *advice_)) {
    diagnostics_.push_back(std::move(d));
  }
  // Happens-before race scan over untracked accesses, when the caller
  // supplied the server-side log. Races are Completeness hazards (the
  // developer must annotate the variable), not proof of misbehavior: they are
  // reported as warnings, never rejected on.
  if (untracked_accesses_ != nullptr) {
    for (LintDiagnostic& d :
         RaceFindingsToDiagnostics(DetectUntrackedRaces(*untracked_accesses_))) {
      diagnostics_.push_back(std::move(d));
    }
  }
  for (const LintDiagnostic& d : diagnostics_) {
    if (d.severity == LintSeverity::kError) {
      throw RejectError(d.rule, "advice lint: " + d.Format());
    }
  }
}

void Verifier::BuildAdviceIndices() {
  // One pass over the advice maps into flat hash tables: the re-execution
  // inner loop does several lookups per operation, and O(log n) node-based
  // probes there dominate the serial audit. Index entries hold pointers into
  // the advice, which the caller keeps alive for the whole audit.
  size_t total_ops = 0;
  opcount_idx_.reserve(advice_->opcounts.size());
  for (const auto& [key, count] : advice_->opcounts) {
    opcount_idx_.emplace(key, count);
    total_ops += count;
  }
  nondet_idx_.reserve(advice_->nondet.size());
  for (const auto& [op, record] : advice_->nondet) {
    nondet_idx_.emplace(op, &record);
  }
  var_log_idx_.reserve(advice_->var_logs.size());
  size_t var_log_entries = 0;
  for (const auto& [vid, log] : advice_->var_logs) {
    FlatMap<OpRef, const VarLogEntry*>& idx = var_log_idx_[vid];
    idx.reserve(log.size());
    for (const auto& [op, entry] : log) {
      idx.emplace(op, &entry);
    }
    var_log_entries += log.size();
  }
  tx_log_idx_.reserve(advice_->tx_logs.size());
  size_t tx_ops = 0;
  for (const auto& [txn, log] : advice_->tx_logs) {
    tx_log_idx_.emplace(txn, &log);
    tx_ops += log.size();
  }
  handler_log_idx_.reserve(advice_->handler_logs.size());
  size_t handler_ops = 0;
  for (const auto& [rid, log] : advice_->handler_logs) {
    handler_log_idx_.emplace(rid, &log);
    handler_ops += log.size();
  }
  resp_idx_.reserve(advice_->response_emitted_by.size());
  for (const auto& [rid, by] : advice_->response_emitted_by) {
    resp_idx_.emplace(rid, by);
  }
  profile_.advice_index_entries = advice_->opcounts.size() + advice_->nondet.size() +
                                  var_log_entries + advice_->tx_logs.size() +
                                  advice_->handler_logs.size() +
                                  advice_->response_emitted_by.size();

  // Pre-size the execution graph: the program chains alone contribute one
  // node per operation plus the 0/inf pseudo-ops, and every log entry adds
  // at most a handful of edges. Over-reserving slightly is fine.
  graph_.ReserveNodes(total_ops + 2 * advice_->opcounts.size() + 2 * trace_rids_.size() + 16);
  graph_.ReserveEdges(total_ops + 3 * advice_->opcounts.size() + 4 * trace_rids_.size() +
                      handler_ops + tx_ops + 3 * var_log_entries + 16);
  op_map_.reserve(handler_ops + tx_ops);
}

void Verifier::AddTimePrecedenceEdges() {
  // Encodes exactly the response-before-request constraints of the trace with
  // O(n) edges: responses feed an auxiliary epoch chain, and each request
  // arrival hangs off the most recent epoch. Epoch nodes have no incoming
  // edges from requests, so no spurious response-response or request-request
  // ordering is introduced (that would break Completeness).
  uint64_t epoch_count = 0;
  bool have_epoch = false;
  NodeKey current_epoch{};
  std::vector<RequestId> pending_responses;
  for (const TraceEvent& ev : trace_->events) {
    if (ev.kind == TraceEvent::Kind::kResponse) {
      pending_responses.push_back(ev.rid);
      continue;
    }
    if (!pending_responses.empty()) {
      NodeKey next{kEpochMarker, ++epoch_count, 0};
      if (have_epoch) {
        graph_.AddEdge(current_epoch, next);
      }
      for (RequestId resp_rid : pending_responses) {
        graph_.AddEdge(NodeKey::ForResponseDelivery(resp_rid), next);
      }
      pending_responses.clear();
      current_epoch = next;
      have_epoch = true;
    }
    if (have_epoch) {
      graph_.AddEdge(current_epoch, NodeKey::ForRequestArrival(ev.rid));
    }
  }
}

void Verifier::AddProgramEdges() {
  for (const auto& [key, count] : advice_->opcounts) {
    const auto& [rid, hid] = key;
    if (trace_rids_.count(rid) == 0) {
      Reject("opcounts entry for request not in trace");
    }
    if (hid == kNoHandler || hid == kInitHandlerId) {
      Reject("opcounts entry with reserved handler id");
    }
    if (count >= kOpNumInf) {
      Reject("opcount overflow");
    }
    DirectedGraph::NodeId prev = graph_.AddNode(NodeKey::ForOp(OpRef{rid, hid, 0}));
    for (OpNum i = 1; i <= count; ++i) {
      DirectedGraph::NodeId node = graph_.AddNode(NodeKey::ForOp(OpRef{rid, hid, i}));
      graph_.AddEdge(prev, node);
      prev = node;
    }
    graph_.AddEdge(prev, graph_.AddNode(NodeKey::ForOp(OpRef{rid, hid, kOpNumInf})));
  }
}

void Verifier::AddBoundaryEdges() {
  // Request arrival -> request-handler start, for the request handlers the
  // verifier's own initialization run registered.
  std::set<HandlerId> request_handler_hids;
  for (const auto& [event, function] : global_handlers_) {
    if (event == EventId(kRequestEventName)) {
      request_handler_hids.insert(ComputeHandlerId(function, kNoHandler, 0));
    }
  }
  for (const auto& [key, count] : advice_->opcounts) {
    const auto& [rid, hid] = key;
    if (request_handler_hids.count(hid) > 0) {
      graph_.AddEdge(NodeKey::ForRequestArrival(rid), NodeKey::ForOp(OpRef{rid, hid, 0}));
    }
  }
  // Response delivery sits between the delivering handler's last-op-before
  // and next-op-after (Figure 15).
  for (const auto& [rid, by] : advice_->response_emitted_by) {
    if (trace_rids_.count(rid) == 0) {
      Reject("responseEmittedBy entry for request not in trace");
    }
  }
  for (RequestId rid : streaming_ ? epoch_rids_ : trace_rids_) {
    auto it = resp_idx_.find(rid);
    if (it == resp_idx_.end()) {
      Reject("responseEmittedBy missing for request " + std::to_string(rid));
    }
    const auto& [hid_r, opnum_r] = it->second;
    auto count_it = opcount_idx_.find({rid, hid_r});
    if (count_it == opcount_idx_.end() || opnum_r > count_it->second) {
      Reject("responseEmittedBy references a nonexistent operation");
    }
    graph_.AddEdge(NodeKey::ForOp(OpRef{rid, hid_r, opnum_r}), NodeKey::ForResponseDelivery(rid));
    OpNum next = opnum_r == count_it->second ? kOpNumInf : opnum_r + 1;
    graph_.AddEdge(NodeKey::ForResponseDelivery(rid), NodeKey::ForOp(OpRef{rid, hid_r, next}));
  }
}

void Verifier::CheckOpIsValid(RequestId rid, HandlerId hid, OpNum opnum) {
  auto it = opcount_idx_.find({rid, hid});
  if (it == opcount_idx_.end()) {
    Reject("log entry for handler with no opcount");
  }
  if (opnum < 1 || opnum > it->second) {
    Reject("log entry opnum out of range");
  }
  if (op_map_.count(OpRef{rid, hid, opnum}) > 0) {
    Reject("two log entries claim the same operation");
  }
}

std::vector<FunctionId> Verifier::MatchHandlers(
    const std::vector<std::pair<uint64_t, FunctionId>>& globals,
    const std::vector<std::pair<uint64_t, FunctionId>>& registered, uint64_t event) {
  std::vector<FunctionId> matched;
  for (const auto& [ev, fn] : globals) {
    if (ev == event) {
      matched.push_back(fn);
    }
  }
  for (const auto& [ev, fn] : registered) {
    if (ev == event) {
      matched.push_back(fn);
    }
  }
  return matched;
}

void Verifier::AddHandlerRelatedEdges() {
  for (const auto& [rid, log] : advice_->handler_logs) {
    if (trace_rids_.count(rid) == 0) {
      Reject("handler log for request not in trace");
    }
    std::vector<std::pair<uint64_t, FunctionId>> registered;
    OpRef prev{};
    for (uint32_t i = 1; i <= log.size(); ++i) {
      const HandlerLogEntry& e = log[i - 1];
      CheckOpIsValid(rid, e.hid, e.opnum);
      OpRef cur{rid, e.hid, e.opnum};
      OpLocation loc;
      loc.kind = OpLocation::Kind::kHandlerLog;
      loc.rid = rid;
      loc.index = i;
      op_map_.emplace(cur, loc);
      if (i > 1) {
        graph_.AddEdge(NodeKey::ForOp(prev), NodeKey::ForOp(cur));
      }
      prev = cur;
      switch (e.kind) {
        case HandlerLogEntry::Kind::kRegister:
          if (program_.FindFunction(e.function) == nullptr) {
            Reject("handler log registers an unknown function");
          }
          registered.emplace_back(e.event, e.function);
          break;
        case HandlerLogEntry::Kind::kUnregister: {
          auto match = std::find(registered.begin(), registered.end(),
                                 std::make_pair(e.event, e.function));
          if (match == registered.end()) {
            Reject("handler log unregisters a function that is not registered");
          }
          registered.erase(match);
          break;
        }
        case HandlerLogEntry::Kind::kEmit: {
          for (FunctionId fn : MatchHandlers(global_handlers_, registered, e.event)) {
            HandlerId child = ComputeHandlerId(fn, e.hid, e.opnum);
            if (!opcount_idx_.contains({rid, child})) {
              Reject("emitted event activates a handler missing from opcounts");
            }
            activated_handlers_[cur].push_back(Activation{child, fn});
            graph_.AddEdge(NodeKey::ForOp(cur), NodeKey::ForOp(OpRef{rid, child, 0}));
          }
          break;
        }
      }
    }
  }
}

void Verifier::AddExternalStateEdges() {
  if (streaming_) {
    // Incremental analysis: epoch slices arrive in epoch order, which visits
    // transactions in the same global sorted order AnalyzeLogs would, so the
    // accumulated history_ — and the first rejection — are identical.
    AnalyzeLogsInto(advice_->tx_logs, [this](const TxOpRef& ref) { return ResolveTxOp(ref); },
                    &history_);
  } else {
    history_ = AnalyzeLogs(advice_->tx_logs);
  }
  if (!history_.ok) {
    Reject(history_.reason);
  }
  for (const auto& [txn, log] : advice_->tx_logs) {
    if (trace_rids_.count(txn.rid) == 0) {
      Reject("transaction log for request not in trace");
    }
    for (uint32_t i = 1; i <= log.size(); ++i) {
      const TxOperation& op = log[i - 1];
      CheckOpIsValid(txn.rid, op.hid, op.opnum);
      OpRef cur{txn.rid, op.hid, op.opnum};
      OpLocation loc;
      loc.kind = OpLocation::Kind::kTxLog;
      loc.txn = txn;
      loc.index = i;
      op_map_.emplace(cur, loc);
      if (op.type == TxOpType::kGet && op.get_found) {
        // Write-read edge from the dictating PUT to this GET (§4.4; footnote
        // 3 explains why no WW/RW edges are added for external state).
        // AnalyzeLogs/AnalyzeLogsInto already validated the reference; in the
        // streaming audit the dictating PUT may live in another epoch, in
        // which case the edge endpoint is interned now and unified with the
        // real operation node when (or because) its epoch contributes it.
        ResolvedTxOp writer = ResolveTxOp(op.get_from);
        graph_.AddEdge(NodeKey::ForOp(OpRef{op.get_from.rid, writer.hid, writer.opnum}),
                       NodeKey::ForOp(cur));
      }
    }
  }
}

void Verifier::IsolationLevelVerification() {
  IsolationCheckResult result =
      CheckIsolation(config_.isolation, advice_->tx_logs, advice_->write_order, history_);
  stats_.isolation_dg_nodes = result.dg_nodes;
  stats_.isolation_dg_edges = result.dg_edges;
  if (!result.ok) {
    Reject("isolation verification failed: " + result.reason);
  }
}

void Verifier::Postprocess() {
  AddInternalStateEdges();
  if (graph_.HasCycle()) {
    std::ostringstream out;
    out << "execution graph has a cycle:";
    for (const NodeKey& node : graph_.FindCycle()) {
      out << " " << DescribeNode(node);
    }
    Reject(out.str());
  }
}

void Verifier::AddInternalStateEdges() {
  // vars_ is a hash table whose iteration order is insertion order; the edges
  // (and any cycle diagnostic they produce) must not depend on it, so walk
  // the variables in sorted-vid order — the order the old std::map gave.
  std::vector<VarId> vids;
  vids.reserve(vars_.size());
  for (const auto& [vid, var] : vars_) {
    vids.push_back(vid);
  }
  std::sort(vids.begin(), vids.end());
  for (VarId vid : vids) {
    const VerifierVar& var = vars_.find(vid)->second;
    OpRef cur = var.initializer;
    FlatSet<OpRef> visited;
    while (!cur.IsNil()) {
      if (!visited.insert(cur).second) {
        Reject("variable write chain is cyclic");
      }
      auto readers = var.read_observers.find(cur);
      if (readers != var.read_observers.end()) {
        for (const OpRef& r : readers->second) {
          graph_.AddEdge(NodeKey::ForOp(cur), NodeKey::ForOp(r));  // WR
        }
      }
      auto next = var.write_observer.find(cur);
      if (next == var.write_observer.end()) {
        break;
      }
      if (readers != var.read_observers.end()) {
        for (const OpRef& r : readers->second) {
          graph_.AddEdge(NodeKey::ForOp(r), NodeKey::ForOp(next->second));  // RW
        }
      }
      graph_.AddEdge(NodeKey::ForOp(cur), NodeKey::ForOp(next->second));  // WW
      cur = next->second;
    }
  }
}

// --- Epoch-streaming implementation (driven by AuditSession) ----------------

ResolvedTxOp Verifier::ResolveTxOp(const TxOpRef& ref) const {
  auto it = tx_log_idx_.find(TxnKey{ref.rid, ref.tid});
  if (it != tx_log_idx_.end()) {
    ResolvedTxOp out;
    out.txn_present = true;
    const auto& log = *it->second;
    if (ref.index >= 1 && ref.index <= log.size()) {
      const TxOperation& op = log[ref.index - 1];
      out.op_present = true;
      out.is_put = op.type == TxOpType::kPut;
      out.key = op.key;
      out.put_value = &op.put_value;
      out.hid = op.hid;
      out.opnum = op.opnum;
    }
    return out;
  }
  if (!streaming_) {
    return ResolvedTxOp{};
  }
  auto size_it = txn_size_carry_.find(TxnKey{ref.rid, ref.tid});
  if (size_it != txn_size_carry_.end()) {
    ResolvedTxOp out;
    out.txn_present = true;
    if (ref.index >= 1 && ref.index <= size_it->second) {
      out.op_present = true;
      auto put_it = put_carry_.find(ref);
      if (put_it != put_carry_.end()) {
        out.is_put = true;
        out.key = put_it->second.key;
        out.put_value = &put_it->second.value;
        out.hid = put_it->second.hid;
        out.opnum = put_it->second.opnum;
      }
    }
    return out;
  }
  auto imp_it = pending_tx_imports_.find(ref);
  if (imp_it != pending_tx_imports_.end()) {
    const ContinuityImports::TxOpImport& imp = imp_it->second;
    ResolvedTxOp out;
    out.txn_present = imp.txn_present;
    out.op_present = imp.op_present;
    if (imp.op_present) {
      out.is_put = static_cast<TxOpType>(imp.type) == TxOpType::kPut;
      out.key = imp.key;
      out.put_value = &imp.value;
      out.hid = imp.hid;
      out.opnum = imp.opnum;
    }
    return out;
  }
  return ResolvedTxOp{};
}

Verifier::ResolvedVarEntry Verifier::ResolveVarEntry(VarId vid, const OpRef& op) const {
  auto log_it = var_log_idx_.find(vid);
  if (log_it != var_log_idx_.end()) {
    auto entry_it = log_it->second.find(op);
    if (entry_it != log_it->second.end()) {
      const VarLogEntry& entry = *entry_it->second;
      return {true, entry.kind == VarLogEntry::Kind::kWrite, &entry.value};
    }
  }
  if (!streaming_) {
    return {};
  }
  auto carry_it = var_carry_.find({vid, op});
  if (carry_it != var_carry_.end()) {
    const VarCarry& carry = carry_it->second;
    return {true, carry.is_write, carry.is_write ? &carry.value : nullptr};
  }
  auto imp_it = pending_var_imports_.find({vid, op});
  if (imp_it != pending_var_imports_.end() && imp_it->second.present) {
    const ContinuityImports::VarImport& imp = imp_it->second;
    return {true, static_cast<VarLogEntry::Kind>(imp.kind) == VarLogEntry::Kind::kWrite,
            &imp.value};
  }
  return {};
}

void Verifier::StreamBegin(uint64_t epoch_requests) {
  streaming_ = true;
  epoch_requests_ = epoch_requests;
  if (config_.prescreen) {
    carry_lint_.Begin(epoch_requests, /*standalone=*/false);
    carry_lint_.SetShardFilter(shard_rids_);  // Begin resets the lint's state.
  }
}

void Verifier::StreamIngestWindow(const std::vector<TraceEvent>& window) {
  // Balance transitions first, then the reserved-id check and input/response
  // capture — the same fault order as the one-shot Preprocess (IsBalanced
  // runs before the rid-0 scan), with the same reason strings.
  for (const TraceEvent& ev : window) {
    uint8_t& s = balance_[ev.rid];
    if (ev.kind == TraceEvent::Kind::kRequest) {
      if (s != 0) {
        Reject("trace is not balanced: duplicate request id " + std::to_string(ev.rid));
      }
      s = 1;
    } else {
      if (s != 1) {
        Reject("trace is not balanced: response for request " + std::to_string(ev.rid) +
               (s == 0 ? " before its request" : " delivered twice"));
      }
      s = 2;
    }
  }
  for (const TraceEvent& ev : window) {
    if (ev.kind == TraceEvent::Kind::kRequest) {
      if (ev.rid == kInitRequestId) {
        Reject("trace contains the reserved init request id");
      }
      trace_rids_.insert(ev.rid);
      request_inputs_[ev.rid] = ev.payload;
    } else {
      responses_[ev.rid] = ev.payload;
    }
  }
}

void Verifier::StreamTimePrecedence(const std::vector<TraceEvent>& window) {
  // AddTimePrecedenceEdges over a window, with the chain state persisted
  // across windows: concatenating every window replays the full trace event
  // stream, so the streamed edge set is identical to the one-shot pass.
  for (const TraceEvent& ev : window) {
    if (ev.kind == TraceEvent::Kind::kResponse) {
      tp_pending_responses_.push_back(ev.rid);
      continue;
    }
    if (!tp_pending_responses_.empty()) {
      NodeKey next{kEpochMarker, ++tp_epoch_count_, 0};
      if (tp_have_epoch_) {
        graph_.AddEdge(tp_current_epoch_, next);
      }
      for (RequestId resp_rid : tp_pending_responses_) {
        graph_.AddEdge(NodeKey::ForResponseDelivery(resp_rid), next);
      }
      tp_pending_responses_.clear();
      tp_current_epoch_ = next;
      tp_have_epoch_ = true;
    }
    if (tp_have_epoch_) {
      graph_.AddEdge(tp_current_epoch_, NodeKey::ForRequestArrival(ev.rid));
    }
  }
}

void Verifier::StreamEpoch(const EpochSegment& segment) {
  if (decided_) {
    return;  // Drain: the verdict is already determined.
  }
  PhaseTimer total_timer(&profile_.total_seconds);
  try {
    {
      PhaseTimer t(&profile_.preprocess_seconds);
      StreamIngestWindow(segment.window);
      epoch_rids_.clear();
      for (RequestId rid : trace_rids_) {
        if (EpochOfRid(rid, epoch_requests_) == epochs_fed_) {
          epoch_rids_.insert(rid);
        }
      }
      // Epoch completeness: every request of this epoch must have both
      // arrived and responded by the end of its window — the collector's
      // rollover guarantees that, so a gap is misbehavior. The reason matches
      // the one-shot balance check, keeping single-fault verdicts aligned.
      for (RequestId rid : epoch_rids_) {
        auto bal = balance_.find(rid);
        if (bal == balance_.end() || bal->second != 2) {
          Reject("trace is not balanced: request " + std::to_string(rid) + " has no response");
        }
      }
      // Shard scope: the completeness check above covers the full replicated
      // trace (every shard judges trace defects identically); everything from
      // here on — lint epoch context, boundary edges, re-execution groups,
      // response matching — narrows to the requests this shard owns.
      if (shard_rids_ != nullptr) {
        for (auto it = epoch_rids_.begin(); it != epoch_rids_.end();) {
          it = shard_rids_->count(*it) != 0 ? std::next(it) : epoch_rids_.erase(it);
        }
      }
      advice_ = &segment.advice;
      for (const auto& imp : segment.imports.tx_ops) {
        pending_tx_imports_.emplace(imp.ref, imp);
      }
      for (const auto& imp : segment.imports.var_entries) {
        pending_var_imports_.emplace(std::make_pair(imp.vid, imp.op), imp);
      }
      if (config_.prescreen) {
        carry_lint_.RegisterImports(segment);
      }
      // Slice-local lint; the global write-order rules run once at Finish.
      LintEpochContext lint_ctx;
      lint_ctx.trace_rids = &trace_rids_;
      lint_ctx.epoch_rids = &epoch_rids_;
      lint_ctx.var_prec = [this](VarId vid, const OpRef& op) {
        ResolvedVarEntry entry = ResolveVarEntry(vid, op);
        return VarPrecLookup{entry.present, entry.is_write};
      };
      lint_ctx.tx_op = [this](const TxOpRef& ref) { return ResolveTxOp(ref); };
      size_t first_new = diagnostics_.size();
      for (LintDiagnostic& d : LintAdviceEpoch(segment.advice, lint_ctx)) {
        diagnostics_.push_back(std::move(d));
      }
      for (size_t i = first_new; i < diagnostics_.size(); ++i) {
        if (diagnostics_[i].severity == LintSeverity::kError) {
          throw RejectError(diagnostics_[i].rule, "advice lint: " + diagnostics_[i].Format());
        }
      }
      if (config_.prescreen) {
        // Fast-reject pre-screen: the cross-epoch static rules, before any of
        // this epoch's graph building or re-execution.
        size_t first_seg = diagnostics_.size();
        carry_lint_.CheckEpoch(segment, trace_rids_, &diagnostics_);
        for (size_t i = first_seg; i < diagnostics_.size(); ++i) {
          if (diagnostics_[i].severity == LintSeverity::kError) {
            throw RejectError(diagnostics_[i].rule, "model check: " + diagnostics_[i].Format());
          }
        }
      }
      BuildAdviceIndices();
      if (!init_done_) {
        RunInitialization();
        init_done_ = true;
      }
      StreamTimePrecedence(segment.window);
      AddProgramEdges();
      AddBoundaryEdges();
      AddHandlerRelatedEdges();
      AddExternalStateEdges();
      stream_write_order_.insert(stream_write_order_.end(), segment.advice.write_order.begin(),
                                 segment.advice.write_order.end());
    }
    {
      PhaseTimer t(&profile_.reexec_seconds);
      ReExec();
    }
  } catch (const RejectError& e) {
    decided_ = true;
    decided_reason_ = e.reason;
    decided_rule_ = e.rule;
    decided_epoch_ = epochs_fed_;
  } catch (const std::exception& e) {
    decided_ = true;
    decided_reason_ = std::string("re-execution fault: ") + e.what();
    decided_epoch_ = epochs_fed_;
  }
  StreamEndEpoch(segment);
  ++epochs_fed_;
}

size_t Verifier::MeasureResidentBytes(const EpochSegment& segment) const {
  // What the session must hold to keep auditing: this epoch's slice and
  // imports plus the carried state of every completed epoch, measured in
  // serialized bytes (the same metric as the one-shot advice footprint).
  ByteWriter w;
  segment.advice.Serialize(&w);
  segment.imports.Serialize(&w);
  for (const auto& [txn, size] : txn_size_carry_) {
    w.WriteVarint(txn.rid);
    w.WriteVarint(txn.tid);
    w.WriteVarint(size);
  }
  for (const auto& [ref, put] : put_carry_) {
    SerializeTxOpRef(ref, &w);
    w.WriteString(put.key);
    w.WriteValue(put.value);
    w.WriteVarint(put.hid);
    w.WriteVarint(put.opnum);
  }
  for (const auto& [key, carry] : var_carry_) {
    w.WriteVarint(key.first);
    SerializeOpRef(key.second, &w);
    w.WriteBool(carry.is_write);
    if (carry.is_write) {
      w.WriteValue(carry.value);
    }
  }
  return w.size();
}

void Verifier::StreamEndEpoch(const EpochSegment& segment) {
  peak_resident_ = std::max(peak_resident_, MeasureResidentBytes(segment));
  if (config_.prescreen && !decided_) {
    carry_lint_.EndEpoch(segment);
  }

  // Fold the slice into the carries: transaction shapes + PUT payloads, and
  // var-log entries (reads kind-only — nothing ever feeds from a read).
  for (const auto& [txn, log] : segment.advice.tx_logs) {
    txn_size_carry_[txn] = static_cast<uint32_t>(log.size());
    for (uint32_t i = 1; i <= log.size(); ++i) {
      const TxOperation& op = log[i - 1];
      if (op.type == TxOpType::kPut) {
        put_carry_[TxOpRef{txn.rid, txn.tid, i}] = PutCarry{op.key, op.put_value, op.hid, op.opnum};
      }
    }
  }
  for (const auto& [vid, log] : segment.advice.var_logs) {
    for (const auto& [op, entry] : log) {
      bool is_write = entry.kind == VarLogEntry::Kind::kWrite;
      var_carry_[{vid, op}] = VarCarry{is_write, is_write ? entry.value : Value()};
    }
  }

  // Drop everything scoped to the finished epoch. The graph, vars_ (minus
  // pruned var_dict payloads), history_, balance, carried indices, and the
  // accumulated write order are all that survive.
  advice_ = nullptr;
  op_map_.clear();
  activated_handlers_.clear();
  executed_.clear();
  responded_.clear();
  var_log_touched_.clear();
  tx_positions_.clear();
  parents_.clear();
  opcount_idx_.clear();
  nondet_idx_.clear();
  var_log_idx_.clear();
  tx_log_idx_.clear();
  handler_log_idx_.clear();
  resp_idx_.clear();
  for (RequestId rid : epoch_rids_) {
    request_inputs_.erase(rid);
    responses_.erase(rid);
  }
  // var_dict payloads for this epoch's requests are dead weight: later
  // epochs' dictionary climbs only visit their own requests plus init.
  for (auto& [vid, var] : vars_) {
    std::vector<std::pair<RequestId, HandlerId>> doomed;
    for (const auto& [key, writes] : var.var_dict) {
      if (key.first != kInitRequestId) {
        var_dict_entries_pruned_ += writes.size();
        doomed.push_back(key);
      }
    }
    for (const auto& key : doomed) {
      var.var_dict.erase(key);
    }
  }
}

void Verifier::StreamConfirmImports() {
  // Every forward allegation the stream consumed must match what the real
  // slice carried once its epoch arrived. Wrong continuity data can only
  // cause rejection (§2.1's advice property, applied to the slicer).
  for (const auto& [ref, imp] : pending_tx_imports_) {
    if (ForeignRid(ref.rid)) {
      continue;  // Owned elsewhere: the merge confirms it against that shard.
    }
    bool real_txn = false;
    bool real_op = false;
    const PutCarry* real_put = nullptr;
    auto size_it = txn_size_carry_.find(TxnKey{ref.rid, ref.tid});
    if (size_it != txn_size_carry_.end()) {
      real_txn = true;
      if (ref.index >= 1 && ref.index <= size_it->second) {
        real_op = true;
        auto put_it = put_carry_.find(ref);
        if (put_it != put_carry_.end()) {
          real_put = &put_it->second;
        }
      }
    }
    bool ok = real_txn == imp.txn_present && real_op == imp.op_present;
    if (ok && imp.op_present) {
      // Only PUT-ness and PUT payloads can influence any consumer, so that is
      // what the confirmation pins down.
      bool imp_is_put = static_cast<TxOpType>(imp.type) == TxOpType::kPut;
      ok = (real_put != nullptr) == imp_is_put;
      if (ok && imp_is_put) {
        ok = real_put->key == imp.key && real_put->value == imp.value &&
             real_put->hid == imp.hid && real_put->opnum == imp.opnum;
      }
    }
    if (!ok) {
      Reject("continuity import for " + ref.ToString() + " does not match the advice it mirrors");
    }
  }
  for (const auto& [key, imp] : pending_var_imports_) {
    if (ForeignRid(key.second.rid)) {
      continue;
    }
    auto carry_it = var_carry_.find(key);
    bool ok;
    if (carry_it == var_carry_.end()) {
      ok = !imp.present;
    } else {
      const VarCarry& carry = carry_it->second;
      bool imp_is_write = static_cast<VarLogEntry::Kind>(imp.kind) == VarLogEntry::Kind::kWrite;
      ok = imp.present && carry.is_write == imp_is_write &&
           (!carry.is_write || carry.value == imp.value);
    }
    if (!ok) {
      Reject("continuity import for variable log entry " + key.second.ToString() +
             " does not match the advice it mirrors");
    }
  }
}

AuditResult Verifier::StreamFinish() {
  AuditResult result;
  PhaseTimer total_timer(&profile_.total_seconds);
  if (decided_) {
    result.reason = decided_reason_;
    result.rule = decided_rule_;
  } else {
    try {
      PhaseTimer t(&profile_.postprocess_seconds);
      // The stream must have covered every epoch the trace mentions; a rid
      // beyond the last fed epoch would otherwise silently skip re-execution.
      for (RequestId rid : trace_rids_) {
        if (EpochOfRid(rid, epoch_requests_) >= epochs_fed_) {
          Reject("trace contains requests beyond the final advice epoch");
        }
      }
      // Residual imbalance: responses the stream never delivered. balance_ is
      // sorted, so the smallest rid reports — same as the one-shot check.
      for (const auto& [rid, state] : balance_) {
        if (state != 2) {
          Reject("trace is not balanced: request " + std::to_string(rid) + " has no response");
        }
      }
      // Global write-order lint over the concatenated order (rules 009/010).
      size_t first_new = diagnostics_.size();
      LintWriteOrder(stream_write_order_,
                     [this](const TxOpRef& ref) { return ResolveTxOp(ref); }, &diagnostics_);
      for (size_t i = first_new; i < diagnostics_.size(); ++i) {
        if (diagnostics_[i].severity == LintSeverity::kError) {
          throw RejectError(diagnostics_[i].rule, "advice lint: " + diagnostics_[i].Format());
        }
      }
      if (config_.prescreen) {
        // Finish-time static rules (early content, residual imports, prec
        // acyclicity), in the same slot the standalone checker runs them.
        size_t first_seg = diagnostics_.size();
        carry_lint_.Finish(&diagnostics_);
        for (size_t i = first_seg; i < diagnostics_.size(); ++i) {
          if (diagnostics_[i].severity == LintSeverity::kError) {
            throw RejectError(diagnostics_[i].rule, "model check: " + diagnostics_[i].Format());
          }
        }
      }
      StreamConfirmImports();
      // Isolation is a property of the global transaction order; under a
      // shard scope the local write order and history are one shard's
      // projection, so the check runs once at audit-merge over the stitched
      // order and merged history instead (same checker, same inputs as the
      // unsharded audit — see src/verifier/shard_audit.cc).
      if (shard_rids_ == nullptr) {
        IsolationCheckResult iso = CheckIsolationIndexed(
            config_.isolation, [this](const TxOpRef& ref) { return ResolveTxOp(ref); },
            stream_write_order_, history_);
        stats_.isolation_dg_nodes = iso.dg_nodes;
        stats_.isolation_dg_edges = iso.dg_edges;
        if (!iso.ok) {
          Reject("isolation verification failed: " + iso.reason);
        }
      }
      Postprocess();
      result.accepted = true;
    } catch (const RejectError& e) {
      result.reason = e.reason;
      result.rule = e.rule;
    } catch (const std::exception& e) {
      result.reason = std::string("re-execution fault: ") + e.what();
    }
  }
  // Race findings sit after every lint diagnostic, matching their position in
  // the one-shot result (RunAnalysisPasses appends them last).
  if (untracked_accesses_ != nullptr) {
    for (LintDiagnostic& d :
         RaceFindingsToDiagnostics(DetectUntrackedRaces(*untracked_accesses_))) {
      diagnostics_.push_back(std::move(d));
    }
  }
  result.diagnostics = std::move(diagnostics_);
  diagnostics_.clear();
  stats_.graph_nodes = graph_.node_count();
  stats_.graph_edges = graph_.edge_count();
  stats_.var_dict_entries = var_dict_entries_pruned_;
  for (const auto& [vid, var] : vars_) {
    for (const auto& [key, writes] : var.var_dict) {
      stats_.var_dict_entries += writes.size();
    }
  }
  result.stats = stats_;
  total_timer.Stop();
  profile_.ops_executed = stats_.ops_executed;
  result.profile = profile_;
  return result;
}

}  // namespace karousos
