#include "src/verifier/session.h"

#include <algorithm>
#include <utility>

#include "src/common/segment.h"
#include "src/common/serde.h"

namespace karousos {

namespace {

// Bumped whenever the checkpoint payload layout changes; Restore refuses
// other versions (a stale checkpoint must fail loudly, not misparse).
constexpr uint64_t kCheckpointVersion = 2;

void WriteTxnKey(const TxnKey& t, ByteWriter* w) {
  w->WriteVarint(t.rid);
  w->WriteFixed64(t.tid);
}

// Failure-latching reader: every getter returns a default once any field
// fails to parse, and ok() reports the verdict at the end. Keeps the Restore
// body linear instead of a pyramid of optional checks.
struct CkptReader {
  explicit CkptReader(const std::vector<uint8_t>& payload) : r(payload) {}

  uint64_t V() { return Get(r.ReadVarint()); }
  uint64_t F64() { return Get(r.ReadFixed64()); }
  uint8_t B() { return Get(r.ReadByte()); }
  bool Bool() { return Get(r.ReadBool()); }
  std::string S() { return Get(r.ReadString()); }
  Value Val() { return Get(r.ReadValue()); }
  OpRef Op() { return Get(DeserializeOpRef(&r)); }
  TxOpRef Tx() { return Get(DeserializeTxOpRef(&r)); }
  TxnKey Txn() {
    TxnKey t;
    t.rid = V();
    t.tid = F64();
    return t;
  }

  // A count about to drive a loop; bounded by the remaining bytes so a
  // corrupted length cannot make Restore allocate unboundedly.
  size_t N() {
    uint64_t n = V();
    if (n > r.remaining()) {
      ok = false;
      return 0;
    }
    return static_cast<size_t>(n);
  }

  template <typename T>
  T Get(std::optional<T> v) {
    if (!v) {
      ok = false;
      return T{};
    }
    return std::move(*v);
  }

  ByteReader r;
  bool ok = true;
};

}  // namespace

AuditSession::AuditSession(const Program& program, const VerifierConfig& config,
                           uint64_t epoch_requests)
    : v_(program, config) {
  v_.StreamBegin(epoch_requests);
}

void AuditSession::set_untracked_accesses(const UntrackedAccessLog* log) {
  v_.set_untracked_accesses(log);
}

uint64_t AuditSession::next_epoch() const { return v_.epochs_fed_; }

uint64_t AuditSession::epoch_requests() const { return v_.epoch_requests_; }

bool AuditSession::decided() const { return v_.decided_; }

size_t AuditSession::peak_resident_advice_bytes() const { return v_.peak_resident_; }

bool AuditSession::FeedEpoch(const EpochSegment& segment) {
  if (v_.decided_) {
    return false;
  }
  if (segment.epoch != v_.epochs_fed_) {
    v_.decided_ = true;
    v_.decided_reason_ = "epoch segment " + std::to_string(segment.epoch) +
                         " arrived out of order (expected epoch " +
                         std::to_string(v_.epochs_fed_) + ")";
    return false;
  }
  v_.StreamEpoch(segment);
  return !v_.decided_;
}

AuditResult AuditSession::Finish() { return v_.StreamFinish(); }

std::vector<uint8_t> AuditSession::SaveCheckpoint() const {
  ByteWriter w;
  w.WriteVarint(kCheckpointVersion);
  w.WriteVarint(v_.epoch_requests_);
  w.WriteVarint(v_.epochs_fed_);
  w.WriteByte(static_cast<uint8_t>(v_.config_.isolation));
  w.WriteBool(v_.init_done_);
  w.WriteBool(v_.decided_);
  w.WriteString(v_.decided_reason_);
  w.WriteString(v_.decided_rule_);

  w.WriteVarint(v_.balance_.size());
  for (const auto& [rid, state] : v_.balance_) {
    w.WriteVarint(rid);
    w.WriteByte(state);
  }
  w.WriteVarint(v_.request_inputs_.size());
  for (const auto& [rid, value] : v_.request_inputs_) {
    w.WriteVarint(rid);
    w.WriteValue(value);
  }
  w.WriteVarint(v_.responses_.size());
  for (const auto& [rid, value] : v_.responses_) {
    w.WriteVarint(rid);
    w.WriteValue(value);
  }
  w.WriteVarint(v_.trace_rids_.size());
  for (RequestId rid : v_.trace_rids_) {
    w.WriteVarint(rid);
  }

  // Time-precedence chain carry.
  w.WriteVarint(v_.tp_epoch_count_);
  w.WriteBool(v_.tp_have_epoch_);
  w.WriteFixed64(v_.tp_current_epoch_.a);
  w.WriteFixed64(v_.tp_current_epoch_.b);
  w.WriteFixed64(v_.tp_current_epoch_.c);
  w.WriteVarint(v_.tp_pending_responses_.size());
  for (RequestId rid : v_.tp_pending_responses_) {
    w.WriteVarint(rid);
  }

  // Execution graph: node keys in id order, then the raw edge list. Replayed
  // in the same order, AddNode reassigns identical ids and the CSR traversal
  // order — and with it any cycle diagnostic — is preserved.
  w.WriteVarint(v_.graph_.node_count());
  for (size_t i = 0; i < v_.graph_.node_count(); ++i) {
    const NodeKey& key = v_.graph_.KeyOf(static_cast<DirectedGraph::NodeId>(i));
    w.WriteFixed64(key.a);
    w.WriteFixed64(key.b);
    w.WriteFixed64(key.c);
  }
  w.WriteVarint(v_.graph_.edges().size());
  for (const auto& [from, to] : v_.graph_.edges()) {
    w.WriteVarint(static_cast<uint64_t>(from));
    w.WriteVarint(static_cast<uint64_t>(to));
  }

  // Tracked variables. The flat containers iterate in insertion order, so
  // every key set is sorted first — the checkpoint must be canonical. Each
  // read-observer vector's *internal* order is preserved as stored (it is
  // append-order from the deterministic merge, and edge-insertion order at
  // Finish depends on it).
  {
    std::vector<VarId> vids;
    vids.reserve(v_.vars_.size());
    for (const auto& [vid, var] : v_.vars_) {
      vids.push_back(vid);
    }
    std::sort(vids.begin(), vids.end());
    w.WriteVarint(vids.size());
    for (VarId vid : vids) {
      const Verifier::VerifierVar& var = v_.vars_.find(vid)->second;
      w.WriteFixed64(vid);
      w.WriteBool(var.declared);
      SerializeOpRef(var.initializer, &w);
      std::vector<std::pair<RequestId, HandlerId>> dict_keys;
      dict_keys.reserve(var.var_dict.size());
      for (const auto& [key, writes] : var.var_dict) {
        dict_keys.push_back(key);
      }
      std::sort(dict_keys.begin(), dict_keys.end());
      w.WriteVarint(dict_keys.size());
      for (const auto& key : dict_keys) {
        const auto& writes = var.var_dict.find(key)->second;
        w.WriteVarint(key.first);
        w.WriteFixed64(key.second);
        w.WriteVarint(writes.size());
        for (const auto& [opnum, value] : writes) {
          w.WriteVarint(opnum);
          w.WriteValue(value);
        }
      }
      std::vector<OpRef> read_keys;
      read_keys.reserve(var.read_observers.size());
      for (const auto& [key, readers] : var.read_observers) {
        read_keys.push_back(key);
      }
      std::sort(read_keys.begin(), read_keys.end());
      w.WriteVarint(read_keys.size());
      for (const OpRef& key : read_keys) {
        const auto& readers = var.read_observers.find(key)->second;
        SerializeOpRef(key, &w);
        w.WriteVarint(readers.size());
        for (const OpRef& reader : readers) {
          SerializeOpRef(reader, &w);
        }
      }
      std::vector<OpRef> write_keys;
      write_keys.reserve(var.write_observer.size());
      for (const auto& [key, overwriter] : var.write_observer) {
        write_keys.push_back(key);
      }
      std::sort(write_keys.begin(), write_keys.end());
      w.WriteVarint(write_keys.size());
      for (const OpRef& key : write_keys) {
        SerializeOpRef(key, &w);
        SerializeOpRef(var.write_observer.find(key)->second, &w);
      }
    }
  }
  {
    std::vector<VarId> vids;
    vids.reserve(v_.untracked_vars_.size());
    for (const auto& [vid, value] : v_.untracked_vars_) {
      vids.push_back(vid);
    }
    std::sort(vids.begin(), vids.end());
    w.WriteVarint(vids.size());
    for (VarId vid : vids) {
      w.WriteFixed64(vid);
      w.WriteValue(v_.untracked_vars_.find(vid)->second);
    }
  }
  w.WriteVarint(v_.global_handlers_.size());
  for (const auto& [event, function] : v_.global_handlers_) {
    w.WriteFixed64(event);
    w.WriteFixed64(function);
  }

  // Accumulated history analysis.
  w.WriteBool(v_.history_.ok);
  w.WriteString(v_.history_.reason);
  w.WriteVarint(v_.history_.committed.size());
  for (const TxnKey& txn : v_.history_.committed) {
    WriteTxnKey(txn, &w);
  }
  w.WriteVarint(v_.history_.read_map.size());
  for (const auto& [write, readers] : v_.history_.read_map) {
    SerializeTxOpRef(write, &w);
    w.WriteVarint(readers.size());
    for (const TxOpRef& reader : readers) {
      SerializeTxOpRef(reader, &w);
    }
  }
  w.WriteVarint(v_.history_.last_modification.size());
  for (const auto& [key, index] : v_.history_.last_modification) {
    w.WriteVarint(std::get<0>(key));
    w.WriteFixed64(std::get<1>(key));
    w.WriteString(std::get<2>(key));
    w.WriteVarint(index);
  }

  w.WriteVarint(v_.stream_write_order_.size());
  for (const TxOpRef& ref : v_.stream_write_order_) {
    SerializeTxOpRef(ref, &w);
  }

  // Carries and pending imports.
  w.WriteVarint(v_.txn_size_carry_.size());
  for (const auto& [txn, size] : v_.txn_size_carry_) {
    WriteTxnKey(txn, &w);
    w.WriteVarint(size);
  }
  w.WriteVarint(v_.put_carry_.size());
  for (const auto& [ref, put] : v_.put_carry_) {
    SerializeTxOpRef(ref, &w);
    w.WriteString(put.key);
    w.WriteValue(put.value);
    w.WriteFixed64(put.hid);
    w.WriteVarint(put.opnum);
  }
  w.WriteVarint(v_.var_carry_.size());
  for (const auto& [key, carry] : v_.var_carry_) {
    w.WriteFixed64(key.first);
    SerializeOpRef(key.second, &w);
    w.WriteBool(carry.is_write);
    if (carry.is_write) {
      w.WriteValue(carry.value);
    }
  }
  w.WriteVarint(v_.pending_tx_imports_.size());
  for (const auto& [ref, imp] : v_.pending_tx_imports_) {
    SerializeTxOpRef(ref, &w);
    w.WriteBool(imp.txn_present);
    w.WriteBool(imp.op_present);
    w.WriteByte(imp.type);
    w.WriteString(imp.key);
    w.WriteValue(imp.value);
    w.WriteFixed64(imp.hid);
    w.WriteVarint(imp.opnum);
  }
  w.WriteVarint(v_.pending_var_imports_.size());
  for (const auto& [key, imp] : v_.pending_var_imports_) {
    w.WriteFixed64(key.first);
    SerializeOpRef(key.second, &w);
    w.WriteBool(imp.present);
    w.WriteByte(imp.kind);
    w.WriteValue(imp.value);
  }

  w.WriteVarint(v_.diagnostics_.size());
  for (const LintDiagnostic& d : v_.diagnostics_) {
    w.WriteString(d.rule);
    w.WriteByte(static_cast<uint8_t>(d.severity));
    w.WriteString(d.location);
    w.WriteString(d.message);
  }

  w.WriteVarint(v_.stats_.groups);
  w.WriteVarint(v_.stats_.group_lane_total);
  w.WriteVarint(v_.stats_.handler_executions);
  w.WriteVarint(v_.stats_.handler_lanes);
  w.WriteVarint(v_.stats_.ops_executed);
  w.WriteVarint(v_.stats_.isolation_dg_nodes);
  w.WriteVarint(v_.stats_.isolation_dg_edges);
  w.WriteVarint(v_.var_dict_entries_pruned_);
  w.WriteVarint(v_.peak_resident_);

  // v2: the fast-reject pre-screen's cross-epoch state (empty when the
  // session runs with prescreen off — the encoding is the same either way).
  v_.carry_lint_.Serialize(&w);

  SegmentWriter out;
  out.Append(SegmentKind::kCheckpoint, v_.epochs_fed_, w.bytes());
  return out.Take();
}

std::unique_ptr<AuditSession> AuditSession::Restore(const Program& program,
                                                    const VerifierConfig& config,
                                                    const std::vector<uint8_t>& bytes,
                                                    std::string* error) {
  std::string container_error;
  auto reader = SegmentReader::FromBytes(bytes.data(), bytes.size(), &container_error);
  if (reader == nullptr) {
    *error = "checkpoint: " + container_error;
    return nullptr;
  }
  SegmentRecord record;
  if (!reader->Next(&record)) {
    *error = reader->ok() ? "checkpoint: container holds no frames"
                          : "checkpoint: " + reader->error();
    return nullptr;
  }
  if (record.kind != SegmentKind::kCheckpoint) {
    *error = "checkpoint: unexpected frame kind";
    return nullptr;
  }

  CkptReader c(record.payload);
  uint64_t version = c.V();
  if (!c.ok || version != kCheckpointVersion) {
    *error = "checkpoint: unsupported version " + std::to_string(version);
    return nullptr;
  }
  uint64_t epoch_requests = c.V();
  uint64_t epochs_fed = c.V();
  uint8_t isolation = c.B();
  if (c.ok && isolation != static_cast<uint8_t>(config.isolation)) {
    *error = "checkpoint: isolation level does not match the session config";
    return nullptr;
  }

  auto session =
      std::unique_ptr<AuditSession>(new AuditSession(program, config, epoch_requests));
  Verifier& v = session->v_;
  v.epochs_fed_ = epochs_fed;
  v.init_done_ = c.Bool();
  v.decided_ = c.Bool();
  v.decided_reason_ = c.S();
  v.decided_rule_ = c.S();

  for (size_t i = c.N(); i > 0; --i) {
    RequestId rid = c.V();
    v.balance_[rid] = c.B();
  }
  for (size_t i = c.N(); i > 0; --i) {
    RequestId rid = c.V();
    v.request_inputs_[rid] = c.Val();
  }
  for (size_t i = c.N(); i > 0; --i) {
    RequestId rid = c.V();
    v.responses_[rid] = c.Val();
  }
  for (size_t i = c.N(); i > 0; --i) {
    v.trace_rids_.insert(c.V());
  }

  v.tp_epoch_count_ = c.V();
  v.tp_have_epoch_ = c.Bool();
  v.tp_current_epoch_.a = c.F64();
  v.tp_current_epoch_.b = c.F64();
  v.tp_current_epoch_.c = c.F64();
  for (size_t i = c.N(); i > 0; --i) {
    v.tp_pending_responses_.push_back(c.V());
  }

  {
    size_t nodes = c.N();
    v.graph_.ReserveNodes(nodes);
    for (size_t i = 0; i < nodes && c.ok; ++i) {
      NodeKey key;
      key.a = c.F64();
      key.b = c.F64();
      key.c = c.F64();
      v.graph_.AddNode(key);
    }
    size_t edges = c.N();
    v.graph_.ReserveEdges(edges);
    for (size_t i = 0; i < edges && c.ok; ++i) {
      auto from = static_cast<DirectedGraph::NodeId>(c.V());
      auto to = static_cast<DirectedGraph::NodeId>(c.V());
      if (static_cast<size_t>(from) >= nodes || static_cast<size_t>(to) >= nodes) {
        c.ok = false;
        break;
      }
      v.graph_.AddEdge(from, to);
    }
  }

  for (size_t i = c.N(); i > 0 && c.ok; --i) {
    VarId vid = c.F64();
    Verifier::VerifierVar& var = v.vars_[vid];
    var.declared = c.Bool();
    var.initializer = c.Op();
    for (size_t j = c.N(); j > 0 && c.ok; --j) {
      RequestId rid = c.V();
      HandlerId hid = c.F64();
      auto& writes = var.var_dict[{rid, hid}];
      for (size_t k = c.N(); k > 0 && c.ok; --k) {
        OpNum opnum = static_cast<OpNum>(c.V());
        writes.emplace_back(opnum, c.Val());
      }
    }
    for (size_t j = c.N(); j > 0 && c.ok; --j) {
      OpRef key = c.Op();
      auto& readers = var.read_observers[key];
      for (size_t k = c.N(); k > 0 && c.ok; --k) {
        readers.push_back(c.Op());
      }
    }
    for (size_t j = c.N(); j > 0 && c.ok; --j) {
      OpRef key = c.Op();
      var.write_observer[key] = c.Op();
    }
  }
  for (size_t i = c.N(); i > 0 && c.ok; --i) {
    VarId vid = c.F64();
    v.untracked_vars_[vid] = c.Val();
  }
  for (size_t i = c.N(); i > 0 && c.ok; --i) {
    uint64_t event = c.F64();
    uint64_t function = c.F64();
    v.global_handlers_.emplace_back(event, function);
  }

  v.history_.ok = c.Bool();
  v.history_.reason = c.S();
  for (size_t i = c.N(); i > 0 && c.ok; --i) {
    v.history_.committed.insert(c.Txn());
  }
  for (size_t i = c.N(); i > 0 && c.ok; --i) {
    TxOpRef write = c.Tx();
    auto& readers = v.history_.read_map[write];
    for (size_t j = c.N(); j > 0 && c.ok; --j) {
      readers.push_back(c.Tx());
    }
  }
  for (size_t i = c.N(); i > 0 && c.ok; --i) {
    RequestId rid = c.V();
    TxId tid = c.F64();
    std::string key = c.S();
    v.history_.last_modification[{rid, tid, std::move(key)}] = static_cast<uint32_t>(c.V());
  }

  for (size_t i = c.N(); i > 0 && c.ok; --i) {
    v.stream_write_order_.push_back(c.Tx());
  }

  for (size_t i = c.N(); i > 0 && c.ok; --i) {
    TxnKey txn = c.Txn();
    v.txn_size_carry_[txn] = static_cast<uint32_t>(c.V());
  }
  for (size_t i = c.N(); i > 0 && c.ok; --i) {
    TxOpRef ref = c.Tx();
    Verifier::PutCarry& put = v.put_carry_[ref];
    put.key = c.S();
    put.value = c.Val();
    put.hid = c.F64();
    put.opnum = static_cast<OpNum>(c.V());
  }
  for (size_t i = c.N(); i > 0 && c.ok; --i) {
    VarId vid = c.F64();
    OpRef op = c.Op();
    Verifier::VarCarry& carry = v.var_carry_[{vid, op}];
    carry.is_write = c.Bool();
    if (carry.is_write) {
      carry.value = c.Val();
    }
  }
  for (size_t i = c.N(); i > 0 && c.ok; --i) {
    TxOpRef ref = c.Tx();
    ContinuityImports::TxOpImport& imp = v.pending_tx_imports_[ref];
    imp.ref = ref;
    imp.txn_present = c.Bool();
    imp.op_present = c.Bool();
    imp.type = c.B();
    imp.key = c.S();
    imp.value = c.Val();
    imp.hid = c.F64();
    imp.opnum = static_cast<OpNum>(c.V());
  }
  for (size_t i = c.N(); i > 0 && c.ok; --i) {
    VarId vid = c.F64();
    OpRef op = c.Op();
    ContinuityImports::VarImport& imp = v.pending_var_imports_[{vid, op}];
    imp.vid = vid;
    imp.op = op;
    imp.present = c.Bool();
    imp.kind = c.B();
    imp.value = c.Val();
  }

  for (size_t i = c.N(); i > 0 && c.ok; --i) {
    LintDiagnostic d;
    d.rule = c.S();
    d.severity = static_cast<LintSeverity>(c.B());
    d.location = c.S();
    d.message = c.S();
    v.diagnostics_.push_back(std::move(d));
  }

  v.stats_.groups = c.V();
  v.stats_.group_lane_total = c.V();
  v.stats_.handler_executions = c.V();
  v.stats_.handler_lanes = c.V();
  v.stats_.ops_executed = c.V();
  v.stats_.isolation_dg_nodes = c.V();
  v.stats_.isolation_dg_edges = c.V();
  v.var_dict_entries_pruned_ = c.V();
  v.peak_resident_ = c.V();

  if (c.ok && !v.carry_lint_.Deserialize(&c.r)) {
    c.ok = false;
  }

  if (!c.ok || !c.r.AtEnd()) {
    *error = "checkpoint: payload is malformed or truncated";
    return nullptr;
  }
  return session;
}

}  // namespace karousos
