// Lane-wise helpers that application handlers use to compute on multivalues.
// Each helper is a pure element-wise function, so it behaves identically at
// the width-1 server and in grouped re-execution.
#ifndef SRC_APPS_APP_UTIL_H_
#define SRC_APPS_APP_UTIL_H_

#include <string>
#include <string_view>

#include "src/common/memo.h"
#include "src/common/value.h"
#include "src/multivalue/multivalue.h"

namespace karousos {

// Field access on map-valued lanes: mv.field(key), null when absent.
MultiValue MvField(const MultiValue& mv, std::string_view key);

// map[key] (null when absent) / map-with-key-set / key-presence test.
MultiValue MvMapGet(const MultiValue& map, const MultiValue& key);
MultiValue MvMapSet(const MultiValue& map, const MultiValue& key, const MultiValue& value);
MultiValue MvMapErase(const MultiValue& map, const MultiValue& key);
MultiValue MvMapHas(const MultiValue& map, const MultiValue& key);
MultiValue MvMapSize(const MultiValue& map);

// List operations.
MultiValue MvListAppend(const MultiValue& list, const MultiValue& item);
MultiValue MvListLen(const MultiValue& list);
MultiValue MvListGet(const MultiValue& list, int64_t index);

// Logic.
MultiValue MvNot(const MultiValue& mv);
MultiValue MvAnd(const MultiValue& a, const MultiValue& b);
MultiValue MvLtScalar(int64_t scalar, const MultiValue& mv);  // scalar < lane

// String digest of each lane's canonical rendering ("d<hex>"), used by the
// stacks application to derive stable row keys from dump contents.
MultiValue MvContentDigest(const MultiValue& mv);

// Simulated application computation: `units` rounds of digest mixing over
// each lane's value, standing in for the real work (template rendering,
// markdown parsing, ...) that the paper's applications perform per request.
// Because it runs through MultiValue::Map, a re-execution group whose
// operand lanes collapse pays for it ONCE — this is exactly the computation
// that SIMD-on-demand deduplicates (§2.3). Returns a digest-string of the
// result so the work cannot be optimized away and can flow into responses.
MultiValue MvExpensive(const MultiValue& mv, uint32_t units);

// MvExpensive with an audit-scoped memo. The per-lane result is a pure
// function of (lane digest, units), so the verifier shares results across
// groups: distinct groups re-execute distinct request sets, but the values
// flowing through them repeat. Byte-identical to MvExpensive.
MultiValue MvExpensiveMemo(const MultiValue& mv, uint32_t units, DigestMemo* memo);

// Three-way zip (map/set-style updates need it).
MultiValue MvZip3(const MultiValue& a, const MultiValue& b, const MultiValue& c,
                  const std::function<Value(const Value&, const Value&, const Value&)>& f);

// Builds a map multivalue lane-wise from (constant key, multivalue) pairs.
MultiValue MvMakeMap(std::initializer_list<std::pair<std::string, MultiValue>> fields);

// String concatenation of a constant prefix with each lane.
MultiValue MvPrefix(std::string_view prefix, const MultiValue& mv);

}  // namespace karousos

#endif  // SRC_APPS_APP_UTIL_H_
