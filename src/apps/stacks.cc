#include "src/apps/app.h"
#include "src/apps/app_util.h"
#include "src/kem/ctx.h"
#include "src/multivalue/multivalue.h"

namespace karousos {

namespace {

constexpr std::string_view kAllDigestsVar = "all_digests";
constexpr std::string_view kInflightVar = "inflight";
constexpr std::string_view kAccVar = "list_acc";
constexpr std::string_view kRemainingVar = "list_remaining";
// Parent-written, child-read context variables (§4.2's "common pattern":
// writes in a handler h, reads in the handlers h activates are R-ordered, so
// they need no logging under Karousos).
constexpr std::string_view kSubmitCtxVar = "submit_ctx";
constexpr std::string_view kListCtxVar = "list_ctx";

// Simulated per-request computation (~9k LoC in the paper's stacks app):
// parsing and symbolizing the submitted dump, formatting counts.
constexpr uint32_t kParseWork = 25000;
constexpr uint32_t kFormatWork = 10000;

MultiValue RowKey(const MultiValue& digest) { return MvPrefix("dump:", digest); }

void RespondRetry(Ctx& ctx) { ctx.Respond(MvMakeMap({{"retry", MultiValue(true)}})); }

// Request handler: dispatches submit / count / list.
void HandleStacks(Ctx& ctx) {
  MultiValue in = ctx.Input();
  MultiValue op = MvField(in, "op");
  if (ctx.Branch(MvEq(op, MultiValue("submit")))) {
    // Parse/symbolize the dump; collapses across a group submitting the same
    // dump (90% of submits repeat a known dump).
    MultiValue parsed = ctx.AppWork(MvField(in, "dump"), kParseWork);
    (void)parsed;
    MultiValue digest = MvContentDigest(MvField(in, "dump"));
    // The in-flight guard: if a concurrent request is reporting the same
    // dump, return a retry error instead of risking a lock conflict (§6,
    // "Stack dump logging").
    MultiValue inflight = ctx.ReadVar(kInflightVar, VarScope::kGlobal);
    if (ctx.Branch(MvMapHas(inflight, digest))) {
      RespondRetry(ctx);
      return;
    }
    ctx.WriteVar(kInflightVar, VarScope::kGlobal, MvMapSet(inflight, digest, MultiValue(true)));
    TxHandle tx = ctx.TxStart();
    TxGetResult got = ctx.TxGet(tx, RowKey(digest));
    if (ctx.Branch(MultiValue(got.conflict))) {
      ctx.TxAbort(tx);
      MultiValue guard = ctx.ReadVar(kInflightVar, VarScope::kGlobal);
      ctx.WriteVar(kInflightVar, VarScope::kGlobal, MvMapErase(guard, digest));
      RespondRetry(ctx);
      return;
    }
    // Finish in a second handler so the transaction stays open across an
    // event boundary: this is what creates lock windows and handler trees.
    // The submit context rides in a per-request variable: the child's read is
    // R-ordered with this write (ancestor), so Karousos does not log it.
    ctx.DeclareVar(kSubmitCtxVar, VarScope::kRequest);
    ctx.WriteVar(kSubmitCtxVar, VarScope::kRequest,
                 MvMakeMap({{"digest", digest},
                            {"found", got.found},
                            {"count", MvField(got.value, "count")}}));
    ctx.Emit("stacks_submit_finish", MvMakeMap({{"tid", ctx.TxIdValue(tx)}}));
  } else if (ctx.Branch(MvEq(op, MultiValue("count")))) {
    MultiValue digest = MvContentDigest(MvField(in, "dump"));
    TxHandle tx = ctx.TxStart();
    TxGetResult got = ctx.TxGet(tx, RowKey(digest));
    if (ctx.Branch(MultiValue(got.conflict))) {
      ctx.TxAbort(tx);
      RespondRetry(ctx);
      return;
    }
    ctx.Branch(MultiValue(ctx.TxCommit(tx)));
    MultiValue count = MultiValue::Zip(got.found, MvField(got.value, "count"),
                                       [](const Value& found, const Value& n) {
                                         return found.Truthy() ? n : Value(int64_t{0});
                                       });
    MultiValue etag = ctx.AppWork(count, kFormatWork);  // Render the report page.
    ctx.Respond(MvMakeMap({{"count", count}, {"etag", etag}}));
  } else {
    // list: fan out one child handler per known digest; the children share a
    // per-request accumulator and countdown variable — sibling activations
    // whose accesses are R-concurrent (the logging-heavy pattern of §4.2).
    MultiValue all = ctx.ReadVar(kAllDigestsVar, VarScope::kGlobal);
    MultiValue len = MvListLen(all);
    if (!ctx.Branch(len)) {
      ctx.Respond(MvMakeMap({{"dumps", MultiValue(Value(ValueList{}))}}));
      return;
    }
    ctx.DeclareVar(kAccVar, VarScope::kRequest);
    ctx.WriteVar(kAccVar, VarScope::kRequest, MultiValue(Value(ValueList{})));
    ctx.DeclareVar(kRemainingVar, VarScope::kRequest);
    ctx.WriteVar(kRemainingVar, VarScope::kRequest, len);
    // The digest list itself travels through a per-request variable: every
    // child's read of it is R-ordered with this write.
    ctx.DeclareVar(kListCtxVar, VarScope::kRequest);
    ctx.WriteVar(kListCtxVar, VarScope::kRequest, all);
    int64_t i = 0;
    while (ctx.Branch(MvLtScalar(i, len))) {
      ctx.Emit("stacks_fetch_one", MvMakeMap({{"idx", MultiValue(i)}}));
      ++i;
    }
  }
}

// Continuation of submit: applies the PUT and commits.
void HandleSubmitFinish(Ctx& ctx) {
  MultiValue sctx = ctx.ReadVar(kSubmitCtxVar, VarScope::kRequest);
  MultiValue digest = MvField(sctx, "digest");
  TxHandle tx = ctx.TxResume(MvField(ctx.Input(), "tid"));
  bool is_new = !ctx.Branch(MvField(sctx, "found"));
  MultiValue next_count =
      is_new ? MultiValue(1) : MvAdd(MvField(sctx, "count"), MultiValue(1));
  bool put_ok = ctx.TxPut(tx, RowKey(digest), MvMakeMap({{"count", next_count}}));
  if (!ctx.Branch(MultiValue(put_ok))) {
    ctx.TxAbort(tx);
    MultiValue guard = ctx.ReadVar(kInflightVar, VarScope::kGlobal);
    ctx.WriteVar(kInflightVar, VarScope::kGlobal, MvMapErase(guard, digest));
    RespondRetry(ctx);
    return;
  }
  if (is_new) {
    MultiValue all = ctx.ReadVar(kAllDigestsVar, VarScope::kGlobal);
    ctx.WriteVar(kAllDigestsVar, VarScope::kGlobal, MvListAppend(all, digest));
  }
  ctx.Branch(MultiValue(ctx.TxCommit(tx)));
  MultiValue guard = ctx.ReadVar(kInflightVar, VarScope::kGlobal);
  ctx.WriteVar(kInflightVar, VarScope::kGlobal, MvMapErase(guard, digest));
  ctx.Respond(MvMakeMap({{"ok", MultiValue(true)}, {"new", MultiValue(is_new)}}));
}

// Child of list: reads one dump row and folds it into the accumulator; the
// last sibling to finish delivers the response.
void HandleFetchOne(Ctx& ctx) {
  MultiValue in = ctx.Input();
  // Reading the digest list from the parent-written context is R-ordered:
  // every sibling performs this read, and none of them get logged.
  MultiValue all = ctx.ReadVar(kListCtxVar, VarScope::kRequest);
  MultiValue digest = MultiValue::Zip(all, MvField(in, "idx"),
                                      [](const Value& list, const Value& idx) {
                                        int64_t i = idx.IntOr(-1);
                                        if (!list.is_list() || i < 0 ||
                                            static_cast<size_t>(i) >= list.AsList().size()) {
                                          return Value();
                                        }
                                        return list.AsList()[static_cast<size_t>(i)];
                                      });
  TxHandle tx = ctx.TxStart();
  TxGetResult got = ctx.TxGet(tx, RowKey(digest));
  MultiValue count;
  if (ctx.Branch(MultiValue(got.conflict))) {
    ctx.TxAbort(tx);
    count = MultiValue(-1);  // Retry marker for this entry.
  } else {
    ctx.Branch(MultiValue(ctx.TxCommit(tx)));
    count = MultiValue::Zip(got.found, MvField(got.value, "count"),
                            [](const Value& found, const Value& n) {
                              return found.Truthy() ? n : Value(int64_t{0});
                            });
  }
  MultiValue line = ctx.AppWork(count, kFormatWork);  // Format this list row.
  MultiValue acc = ctx.ReadVar(kAccVar, VarScope::kRequest);
  acc = MvListAppend(acc, MvMakeMap({{"digest", digest}, {"count", count}, {"line", line}}));
  ctx.WriteVar(kAccVar, VarScope::kRequest, acc);
  MultiValue remaining = MvAdd(ctx.ReadVar(kRemainingVar, VarScope::kRequest), MultiValue(-1));
  ctx.WriteVar(kRemainingVar, VarScope::kRequest, remaining);
  if (!ctx.Branch(remaining)) {
    ctx.Respond(MvMakeMap({{"dumps", acc}}));
  }
}

}  // namespace

void InstallStacksApp(Program& program, std::string request_event,
                      std::vector<HandlerFn>* init_steps) {
  program.DefineFunction("stacks_handle", HandleStacks);
  program.DefineFunction("stacks_submit_finish", HandleSubmitFinish);
  program.DefineFunction("stacks_fetch_one", HandleFetchOne);
  init_steps->push_back([request_event = std::move(request_event)](Ctx& ctx) {
    ctx.DeclareVar(kAllDigestsVar, VarScope::kGlobal);
    ctx.WriteVar(kAllDigestsVar, VarScope::kGlobal, MultiValue(Value(ValueList{})));
    ctx.DeclareVar(kInflightVar, VarScope::kGlobal);
    ctx.WriteVar(kInflightVar, VarScope::kGlobal, MultiValue(Value(ValueMap{})));
    ctx.RegisterHandler(request_event, "stacks_handle");
    ctx.RegisterHandler("stacks_submit_finish", "stacks_submit_finish");
    ctx.RegisterHandler("stacks_fetch_one", "stacks_fetch_one");
  });
}

AppSpec MakeStacksApp() {
  auto program = std::make_shared<Program>();
  std::vector<HandlerFn> steps;
  InstallStacksApp(*program, std::string(kRequestEventName), &steps);
  program->SetInit([steps = std::move(steps)](Ctx& ctx) {
    for (const HandlerFn& step : steps) {
      step(ctx);
    }
  });
  return AppSpec{"stacks", std::move(program)};
}

}  // namespace karousos
