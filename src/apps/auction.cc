// Auction: the hot-key contention app (ROADMAP item 5). Every bid is a
// read-modify-write transaction on one of a handful of item rows, held open
// across an event boundary (read in the request handler, write + commit in
// the bid-finish child). With N clients racing on a Zipf-popular item this
// drives the store's no-wait lock conflicts, app-level retries, and
// uncommitted-write windows far harder than motd/stacks/wiki ever do — the
// regime where grouped re-execution's advantage over sequential replay is
// largest, and where the three isolation levels become distinguishable:
//
//   * serializable    — bid readers take shared locks, so racing bids abort
//                       and retry instead of interleaving;
//   * read committed  — readers never block, only writer-writer exclusion
//                       remains: two bids can both read high=X and the slower
//                       one silently loses its precondition (lost update);
//   * read uncommitted— bid reads observe in-flight dirty rows.
//
// The verify op reads the same row twice in one transaction, across an event
// boundary. Under serializable its shared lock makes the double read
// repeatable by construction; under the weaker levels a concurrent bid can
// commit between the two reads, which is exactly the anti-dependency cycle
// the isolation verifier convicts when asked to certify serializability.
#include "src/apps/app.h"
#include "src/apps/app_util.h"
#include "src/kem/ctx.h"
#include "src/multivalue/multivalue.h"

namespace karousos {

namespace {

// Global index of opened items, in open-commit order (list fan-out reads it).
constexpr std::string_view kIndexVar = "auction_index";
// Hot shared statistics object: every bid outcome is a read-modify-write on
// this one global map, so concurrent bids produce R-concurrent accesses that
// Karousos must log — the variable-log analogue of the row contention below.
constexpr std::string_view kStatsVar = "auction_stats";
// Parent-written context for the bid / verify / list handler trees.
constexpr std::string_view kBidCtxVar = "auction_bid_ctx";
constexpr std::string_view kVerifyCtxVar = "auction_verify_ctx";
constexpr std::string_view kListCtxVar = "auction_list_ctx";
constexpr std::string_view kListAccVar = "auction_list_acc";
constexpr std::string_view kListRemainingVar = "auction_list_remaining";

// Simulated per-request computation: fraud screening on a bid, formatting a
// listing row / receipt. Sized between motd (8k) and stacks (25k).
constexpr uint32_t kScreenWork = 15000;
constexpr uint32_t kFormatWork = 9000;

MultiValue ItemKey(const MultiValue& item) { return MvPrefix("item:", item); }

void RespondRetry(Ctx& ctx) { ctx.Respond(MvMakeMap({{"retry", MultiValue(true)}})); }

// Read-modify-write on the shared stats map: counts[item][field] += 1.
// Concurrent handler activations hit this from bid, retry, and close paths,
// so these accesses are the app's R-concurrent variable-log pressure.
void BumpStat(Ctx& ctx, const MultiValue& item, std::string_view field) {
  MultiValue stats = ctx.ReadVar(kStatsVar, VarScope::kGlobal);
  MultiValue entry = MvMapGet(stats, item);
  MultiValue count = MvAdd(MvField(entry, field), MultiValue(1));
  entry = MvZip3(entry, MultiValue(std::string(field)), count,
                 [](const Value& e, const Value& f, const Value& c) {
                   ValueMap out = e.is_map() ? e.AsMap() : ValueMap{};
                   out[f.StringOrToString()] = c;
                   return Value(std::move(out));
                 });
  ctx.WriteVar(kStatsVar, VarScope::kGlobal, MvMapSet(stats, item, entry));
}

// Request handler: dispatches open / bid / query / verify / close / list.
void HandleAuction(Ctx& ctx) {
  MultiValue in = ctx.Input();
  MultiValue op = MvField(in, "op");
  if (ctx.Branch(MvEq(op, MultiValue("open")))) {
    MultiValue item = MvField(in, "item");
    TxHandle tx = ctx.TxStart();
    TxGetResult got = ctx.TxGet(tx, ItemKey(item));
    if (ctx.Branch(MultiValue(got.conflict))) {
      ctx.TxAbort(tx);
      RespondRetry(ctx);
      return;
    }
    if (ctx.Branch(got.found)) {
      ctx.Branch(MultiValue(ctx.TxCommit(tx)));
      ctx.Respond(MvMakeMap({{"ok", MultiValue(false)}, {"error", MultiValue("exists")}}));
      return;
    }
    bool ok = ctx.TxPut(tx, ItemKey(item),
                        MvMakeMap({{"open", MultiValue(true)},
                                   {"high", MultiValue(0)},
                                   {"bids", MultiValue(0)},
                                   {"bidder", MultiValue("")}}));
    if (!ctx.Branch(MultiValue(ok))) {
      ctx.TxAbort(tx);
      RespondRetry(ctx);
      return;
    }
    ctx.Branch(MultiValue(ctx.TxCommit(tx)));
    MultiValue index = ctx.ReadVar(kIndexVar, VarScope::kGlobal);
    ctx.WriteVar(kIndexVar, VarScope::kGlobal, MvListAppend(index, item));
    ctx.Respond(MvMakeMap({{"ok", MultiValue(true)}}));
  } else if (ctx.Branch(MvEq(op, MultiValue("bid")))) {
    // The hot path. Screen the bid (collapses across a group bidding the
    // same amount), read the row, and finish in a child handler so the
    // transaction — and under serializable its shared lock — spans an event
    // boundary: the window in which racing bids conflict.
    MultiValue item = MvField(in, "item");
    MultiValue amount = MvField(in, "amount");
    MultiValue screened = ctx.AppWork(amount, kScreenWork);
    (void)screened;
    TxHandle tx = ctx.TxStart();
    TxGetResult got = ctx.TxGet(tx, ItemKey(item));
    if (ctx.Branch(MultiValue(got.conflict))) {
      ctx.TxAbort(tx);
      BumpStat(ctx, item, "retries");
      RespondRetry(ctx);
      return;
    }
    if (!ctx.Branch(MvAnd(got.found, MvField(got.value, "open")))) {
      ctx.Branch(MultiValue(ctx.TxCommit(tx)));
      ctx.Respond(
          MvMakeMap({{"accepted", MultiValue(false)}, {"error", MultiValue("closed")}}));
      return;
    }
    ctx.DeclareVar(kBidCtxVar, VarScope::kRequest);
    ctx.WriteVar(kBidCtxVar, VarScope::kRequest,
                 MvMakeMap({{"item", item},
                            {"amount", amount},
                            {"bidder", MvField(in, "bidder")},
                            {"high", MvField(got.value, "high")},
                            {"bids", MvField(got.value, "bids")},
                            {"holder", MvField(got.value, "bidder")}}));
    ctx.Emit("auction_bid_finish", MvMakeMap({{"tid", ctx.TxIdValue(tx)}}));
  } else if (ctx.Branch(MvEq(op, MultiValue("query")))) {
    MultiValue item = MvField(in, "item");
    TxHandle tx = ctx.TxStart();
    TxGetResult got = ctx.TxGet(tx, ItemKey(item));
    if (ctx.Branch(MultiValue(got.conflict))) {
      ctx.TxAbort(tx);
      RespondRetry(ctx);
      return;
    }
    ctx.Branch(MultiValue(ctx.TxCommit(tx)));
    MultiValue board = ctx.AppWork(MvField(got.value, "high"), kFormatWork);
    ctx.Respond(MvMakeMap({{"high", MvField(got.value, "high")},
                           {"bids", MvField(got.value, "bids")},
                           {"open", MvField(got.value, "open")},
                           {"board", board}}));
  } else if (ctx.Branch(MvEq(op, MultiValue("verify")))) {
    // Double read of one row in one transaction, split across an event
    // boundary. "stable" reports whether the two reads agreed.
    MultiValue item = MvField(in, "item");
    TxHandle tx = ctx.TxStart();
    TxGetResult first = ctx.TxGet(tx, ItemKey(item));
    if (ctx.Branch(MultiValue(first.conflict))) {
      ctx.TxAbort(tx);
      RespondRetry(ctx);
      return;
    }
    ctx.DeclareVar(kVerifyCtxVar, VarScope::kRequest);
    ctx.WriteVar(kVerifyCtxVar, VarScope::kRequest,
                 MvMakeMap({{"item", item},
                            {"first_high", MvField(first.value, "high")},
                            {"first_bids", MvField(first.value, "bids")}}));
    ctx.Emit("auction_verify_finish", MvMakeMap({{"tid", ctx.TxIdValue(tx)}}));
  } else if (ctx.Branch(MvEq(op, MultiValue("close")))) {
    MultiValue item = MvField(in, "item");
    TxHandle tx = ctx.TxStart();
    TxGetResult got = ctx.TxGet(tx, ItemKey(item));
    if (ctx.Branch(MultiValue(got.conflict))) {
      ctx.TxAbort(tx);
      BumpStat(ctx, item, "retries");
      RespondRetry(ctx);
      return;
    }
    if (!ctx.Branch(MvAnd(got.found, MvField(got.value, "open")))) {
      ctx.Branch(MultiValue(ctx.TxCommit(tx)));
      ctx.Respond(MvMakeMap({{"ok", MultiValue(false)}, {"error", MultiValue("closed")}}));
      return;
    }
    bool ok = ctx.TxPut(tx, ItemKey(item),
                        MvMakeMap({{"open", MultiValue(false)},
                                   {"high", MvField(got.value, "high")},
                                   {"bids", MvField(got.value, "bids")},
                                   {"bidder", MvField(got.value, "bidder")}}));
    if (!ctx.Branch(MultiValue(ok))) {
      ctx.TxAbort(tx);
      BumpStat(ctx, item, "retries");
      RespondRetry(ctx);
      return;
    }
    ctx.Branch(MultiValue(ctx.TxCommit(tx)));
    BumpStat(ctx, item, "closes");
    ctx.Respond(MvMakeMap({{"winner", MvField(got.value, "bidder")},
                           {"high", MvField(got.value, "high")}}));
  } else {
    // list: one child per opened item, sharing a per-request accumulator —
    // the sibling R-concurrent pattern, over the auction index.
    MultiValue index = ctx.ReadVar(kIndexVar, VarScope::kGlobal);
    MultiValue len = MvListLen(index);
    if (!ctx.Branch(len)) {
      ctx.Respond(MvMakeMap({{"items", MultiValue(Value(ValueList{}))}}));
      return;
    }
    ctx.DeclareVar(kListAccVar, VarScope::kRequest);
    ctx.WriteVar(kListAccVar, VarScope::kRequest, MultiValue(Value(ValueList{})));
    ctx.DeclareVar(kListRemainingVar, VarScope::kRequest);
    ctx.WriteVar(kListRemainingVar, VarScope::kRequest, len);
    ctx.DeclareVar(kListCtxVar, VarScope::kRequest);
    ctx.WriteVar(kListCtxVar, VarScope::kRequest, index);
    int64_t i = 0;
    while (ctx.Branch(MvLtScalar(i, len))) {
      ctx.Emit("auction_list_one", MvMakeMap({{"idx", MultiValue(i)}}));
      ++i;
    }
  }
}

// Continuation of bid: applies the row update and commits. The precondition
// (the row state captured by the parent's read) rides in the request-scoped
// context, so under weak isolation a racing bid that committed in between
// silently overwrites — the lost update the isolation verifier must judge.
void HandleBidFinish(Ctx& ctx) {
  MultiValue bctx = ctx.ReadVar(kBidCtxVar, VarScope::kRequest);
  MultiValue item = MvField(bctx, "item");
  MultiValue amount = MvField(bctx, "amount");
  MultiValue high = MvField(bctx, "high");
  TxHandle tx = ctx.TxResume(MvField(ctx.Input(), "tid"));
  MultiValue leads = MultiValue::Zip(amount, high, [](const Value& a, const Value& h) {
    return Value(a.IntOr(0) > h.IntOr(0));
  });
  MultiValue new_high = MvZip3(leads, amount, high,
                               [](const Value& l, const Value& a, const Value& h) {
                                 return l.Truthy() ? a : h;
                               });
  MultiValue new_holder = MvZip3(leads, MvField(bctx, "bidder"), MvField(bctx, "holder"),
                                 [](const Value& l, const Value& b, const Value& p) {
                                   return l.Truthy() ? b : p;
                                 });
  bool ok = ctx.TxPut(tx, ItemKey(item),
                      MvMakeMap({{"open", MultiValue(true)},
                                 {"high", new_high},
                                 {"bids", MvAdd(MvField(bctx, "bids"), MultiValue(1))},
                                 {"bidder", new_holder}}));
  if (!ctx.Branch(MultiValue(ok))) {
    ctx.TxAbort(tx);
    BumpStat(ctx, item, "retries");
    RespondRetry(ctx);
    return;
  }
  ctx.Branch(MultiValue(ctx.TxCommit(tx)));
  BumpStat(ctx, item, "bids");
  MultiValue receipt = ctx.AppWork(new_high, kFormatWork);
  ctx.Branch(leads);
  ctx.Respond(
      MvMakeMap({{"accepted", leads}, {"high", new_high}, {"receipt", receipt}}));
}

// Continuation of verify: the second read of the same row, then commit.
void HandleVerifyFinish(Ctx& ctx) {
  MultiValue vctx = ctx.ReadVar(kVerifyCtxVar, VarScope::kRequest);
  MultiValue item = MvField(vctx, "item");
  TxHandle tx = ctx.TxResume(MvField(ctx.Input(), "tid"));
  TxGetResult second = ctx.TxGet(tx, ItemKey(item));
  if (ctx.Branch(MultiValue(second.conflict))) {
    ctx.TxAbort(tx);
    RespondRetry(ctx);
    return;
  }
  ctx.Branch(MultiValue(ctx.TxCommit(tx)));
  MultiValue first_high = MvField(vctx, "first_high");
  MultiValue second_high = MvField(second.value, "high");
  MultiValue stable = MvEq(first_high, second_high);
  ctx.Branch(stable);
  ctx.Respond(MvMakeMap({{"stable", stable},
                         {"first_high", first_high},
                         {"second_high", second_high},
                         {"bids", MvField(second.value, "bids")}}));
}

// Child of list: reads one item row and folds a formatted line into the
// accumulator; the last sibling delivers the response.
void HandleListOne(Ctx& ctx) {
  MultiValue index = ctx.ReadVar(kListCtxVar, VarScope::kRequest);
  MultiValue item = MultiValue::Zip(index, MvField(ctx.Input(), "idx"),
                                    [](const Value& list, const Value& idx) {
                                      int64_t i = idx.IntOr(-1);
                                      if (!list.is_list() || i < 0 ||
                                          static_cast<size_t>(i) >= list.AsList().size()) {
                                        return Value();
                                      }
                                      return list.AsList()[static_cast<size_t>(i)];
                                    });
  TxHandle tx = ctx.TxStart();
  TxGetResult got = ctx.TxGet(tx, ItemKey(item));
  MultiValue high;
  MultiValue bids;
  if (ctx.Branch(MultiValue(got.conflict))) {
    ctx.TxAbort(tx);
    high = MultiValue(-1);  // Retry marker for this row.
    bids = MultiValue(-1);
  } else {
    ctx.Branch(MultiValue(ctx.TxCommit(tx)));
    high = MvField(got.value, "high");
    bids = MvField(got.value, "bids");
  }
  MultiValue line = ctx.AppWork(high, kFormatWork);
  MultiValue acc = ctx.ReadVar(kListAccVar, VarScope::kRequest);
  acc = MvListAppend(
      acc, MvMakeMap({{"item", item}, {"high", high}, {"bids", bids}, {"line", line}}));
  ctx.WriteVar(kListAccVar, VarScope::kRequest, acc);
  MultiValue remaining =
      MvAdd(ctx.ReadVar(kListRemainingVar, VarScope::kRequest), MultiValue(-1));
  ctx.WriteVar(kListRemainingVar, VarScope::kRequest, remaining);
  if (!ctx.Branch(remaining)) {
    ctx.Respond(MvMakeMap({{"items", acc}}));
  }
}

}  // namespace

void InstallAuctionApp(Program& program, std::string request_event,
                       std::vector<HandlerFn>* init_steps) {
  program.DefineFunction("auction_handle", HandleAuction);
  program.DefineFunction("auction_bid_finish", HandleBidFinish);
  program.DefineFunction("auction_verify_finish", HandleVerifyFinish);
  program.DefineFunction("auction_list_one", HandleListOne);
  init_steps->push_back([request_event = std::move(request_event)](Ctx& ctx) {
    ctx.DeclareVar(kIndexVar, VarScope::kGlobal);
    ctx.WriteVar(kIndexVar, VarScope::kGlobal, MultiValue(Value(ValueList{})));
    ctx.DeclareVar(kStatsVar, VarScope::kGlobal);
    ctx.WriteVar(kStatsVar, VarScope::kGlobal, MultiValue(Value(ValueMap{})));
    ctx.RegisterHandler(request_event, "auction_handle");
    ctx.RegisterHandler("auction_bid_finish", "auction_bid_finish");
    ctx.RegisterHandler("auction_verify_finish", "auction_verify_finish");
    ctx.RegisterHandler("auction_list_one", "auction_list_one");
  });
}

AppSpec MakeAuctionApp() {
  auto program = std::make_shared<Program>();
  std::vector<HandlerFn> steps;
  InstallAuctionApp(*program, std::string(kRequestEventName), &steps);
  program->SetInit([steps = std::move(steps)](Ctx& ctx) {
    for (const HandlerFn& step : steps) {
      step(ctx);
    }
  });
  return AppSpec{"auction", std::move(program)};
}

}  // namespace karousos
