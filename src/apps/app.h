// The evaluation applications (§6): two model applications designed to
// exercise Karousos's algorithms (message-of-the-day and stack-dump logging)
// and a wiki application standing in for Wiki.js. Each returns a KEM Program
// whose handlers the server executes online and the verifier re-executes.
#ifndef SRC_APPS_APP_H_
#define SRC_APPS_APP_H_

#include <memory>
#include <string>

#include "src/kem/program.h"

namespace karousos {

struct AppSpec {
  std::string name;
  std::shared_ptr<Program> program;
};

// MOTD: users get or set a "message of the day", per-day or for every day.
// All state lives in one shared hashmap variable; every request is handled by
// a single request handler, so all accesses are R-concurrent (children of I)
// and Karousos logs exactly what Orochi-JS does — the paper's pathological
// case (§6.2).
//
// Requests: {"op":"set","day":<d>,"msg":<m>} -> {"ok":true}
//           {"op":"get","day":<d>}           -> {"msg":<m>}
AppSpec MakeMotdApp();

// Stacks: stack-dump logging over the transactional store, with an in-flight
// guard variable that returns retry errors for concurrent same-dump submits,
// a shared digest index variable, and fan-out child handlers for listing —
// the app that exercises handler trees, R-concurrent sibling accesses, and
// the KV interface (§6 "Stack dump logging").
//
// Requests: {"op":"submit","dump":<s>} -> {"ok":true,"new":<b>} | {"retry":true}
//           {"op":"count","dump":<s>}  -> {"count":<n>} | {"retry":true}
//           {"op":"list"}              -> {"dumps":[{digest,count}...]}
AppSpec MakeStacksApp();

// Wiki: pages and comments in the transactional store; a page-index variable,
// a render cache, and a connection-pool statistics object whose logged size
// grows with concurrency (§6.3).
//
// Requests: {"op":"create_page","id","title","content","conn"} -> {"ok":true}
//           {"op":"create_comment","page","text","conn"}       -> {"ok":..}
//           {"op":"render","page","conn"}                      -> {"html":..}
AppSpec MakeWikiApp();

// Pingpong: a minimal two-handler app used by unit tests (not part of the
// paper's evaluation): the request handler emits an event whose child handler
// responds with a transformed payload.
AppSpec MakePingpongApp();

}  // namespace karousos

#endif  // SRC_APPS_APP_H_
