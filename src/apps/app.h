// The evaluation applications (§6): two model applications designed to
// exercise Karousos's algorithms (message-of-the-day and stack-dump logging)
// and a wiki application standing in for Wiki.js, plus two apps beyond the
// paper's evaluation — an auction app that maximizes hot-key transaction
// contention, and a mixed-mode router that serves all apps in one run. Each
// factory returns a KEM Program whose handlers the server executes online and
// the verifier re-executes.
#ifndef SRC_APPS_APP_H_
#define SRC_APPS_APP_H_

#include <memory>
#include <string>
#include <vector>

#include "src/kem/program.h"

namespace karousos {

struct AppSpec {
  std::string name;
  std::shared_ptr<Program> program;
};

// MOTD: users get or set a "message of the day", per-day or for every day.
// All state lives in one shared hashmap variable; every request is handled by
// a single request handler, so all accesses are R-concurrent (children of I)
// and Karousos logs exactly what Orochi-JS does — the paper's pathological
// case (§6.2).
//
// Requests: {"op":"set","day":<d>,"msg":<m>} -> {"ok":true}
//           {"op":"get","day":<d>}           -> {"msg":<m>}
AppSpec MakeMotdApp();

// Stacks: stack-dump logging over the transactional store, with an in-flight
// guard variable that returns retry errors for concurrent same-dump submits,
// a shared digest index variable, and fan-out child handlers for listing —
// the app that exercises handler trees, R-concurrent sibling accesses, and
// the KV interface (§6 "Stack dump logging").
//
// Requests: {"op":"submit","dump":<s>} -> {"ok":true,"new":<b>} | {"retry":true}
//           {"op":"count","dump":<s>}  -> {"count":<n>} | {"retry":true}
//           {"op":"list"}              -> {"dumps":[{digest,count}...]}
AppSpec MakeStacksApp();

// Wiki: pages and comments in the transactional store; a page-index variable,
// a render cache, and a connection-pool statistics object whose logged size
// grows with concurrency (§6.3).
//
// Requests: {"op":"create_page","id","title","content","conn"} -> {"ok":true}
//           {"op":"create_comment","page","text","conn"}       -> {"ok":..}
//           {"op":"render","page","conn"}                      -> {"html":..}
AppSpec MakeWikiApp();

// Auction: listings and bids over the transactional store, built to stress
// the regime the three paper apps never reach — many concurrent clients
// racing read-modify-write transactions on a tiny set of hot rows, with the
// transaction held open across an event boundary. This maximizes no-wait
// lock conflicts and app-level retries (serializable), writer-writer
// exclusion (read committed), and dirty reads (read uncommitted); the
// verify op's double-read makes the weaker levels' anomalies observable to
// the isolation verifier.
//
// Requests: {"op":"open","item":<i>}                          -> {"ok":<b>}
//           {"op":"bid","item":<i>,"amount":<n>,"bidder":<s>} -> {"accepted":<b>,"high":<n>} | {"retry":true}
//           {"op":"query","item":<i>}                         -> {"high":<n>,"bids":<n>,"open":<b>}
//           {"op":"verify","item":<i>}                        -> {"stable":<b>,...} | {"retry":true}
//           {"op":"close","item":<i>}                         -> {"winner":<s>,"high":<n>} | {"retry":true}
//           {"op":"list"}                                     -> {"items":[{item,high,bids}...]}
AppSpec MakeAuctionApp();

// Pingpong: a minimal two-handler app used by unit tests (not part of the
// paper's evaluation): the request handler emits an event whose child handler
// responds with a transformed payload.
AppSpec MakePingpongApp();

// Mixed-mode composition. Each Install*App contributes the app's two halves:
// its DefineFunction calls into `program`, and one init step (appended to
// `init_steps`) that declares the app's globals and registers its handlers —
// with the request handler bound to `request_event` instead of
// kRequestEventName. The Make*App factories above are thin wrappers
// (request_event == kRequestEventName, one init step).
void InstallMotdApp(Program& program, std::string request_event,
                    std::vector<HandlerFn>* init_steps);
void InstallStacksApp(Program& program, std::string request_event,
                      std::vector<HandlerFn>* init_steps);
void InstallWikiApp(Program& program, std::string request_event,
                    std::vector<HandlerFn>* init_steps);
void InstallAuctionApp(Program& program, std::string request_event,
                       std::vector<HandlerFn>* init_steps);

// Mixed: all four apps installed into one Program behind a router request
// handler. Requests are {"app":<motd|stacks|wiki|auction>,"req":<payload>}
// envelopes; the router re-emits the inner payload on a per-app event, so
// each app keeps its own handler trees (and therefore its own re-execution
// groups) while sharing one server, one store, and one advice stream.
AppSpec MakeMixedApp();

}  // namespace karousos

#endif  // SRC_APPS_APP_H_
