#include "src/apps/app_util.h"

#include <sstream>

#include "src/common/digest.h"

namespace karousos {

MultiValue MvField(const MultiValue& mv, std::string_view key) {
  std::string k(key);
  return MultiValue::Map(mv, [k](const Value& v) { return v.Field(k); });
}

MultiValue MvMapGet(const MultiValue& map, const MultiValue& key) {
  return MultiValue::Zip(map, key, [](const Value& m, const Value& k) {
    return m.Field(k.StringOr(k.ToString()));
  });
}

MultiValue MvMapSet(const MultiValue& map, const MultiValue& key, const MultiValue& value) {
  return MvZip3(map, key, value, [](const Value& m, const Value& k, const Value& v) {
    ValueMap out = m.is_map() ? m.AsMap() : ValueMap{};
    out[k.StringOr(k.ToString())] = v;
    return Value(std::move(out));
  });
}

MultiValue MvMapErase(const MultiValue& map, const MultiValue& key) {
  return MultiValue::Zip(map, key, [](const Value& m, const Value& k) {
    ValueMap out = m.is_map() ? m.AsMap() : ValueMap{};
    out.erase(k.StringOr(k.ToString()));
    return Value(std::move(out));
  });
}

MultiValue MvMapHas(const MultiValue& map, const MultiValue& key) {
  return MultiValue::Zip(map, key, [](const Value& m, const Value& k) {
    return Value(m.HasField(k.StringOr(k.ToString())));
  });
}

MultiValue MvMapSize(const MultiValue& map) {
  return MultiValue::Map(map, [](const Value& m) {
    return Value(static_cast<int64_t>(m.is_map() ? m.AsMap().size() : 0));
  });
}

MultiValue MvListAppend(const MultiValue& list, const MultiValue& item) {
  return MultiValue::Zip(list, item, [](const Value& l, const Value& x) {
    ValueList out = l.is_list() ? l.AsList() : ValueList{};
    out.push_back(x);
    return Value(std::move(out));
  });
}

MultiValue MvListLen(const MultiValue& list) {
  return MultiValue::Map(list, [](const Value& l) {
    return Value(static_cast<int64_t>(l.is_list() ? l.AsList().size() : 0));
  });
}

MultiValue MvListGet(const MultiValue& list, int64_t index) {
  return MultiValue::Map(list, [index](const Value& l) {
    if (!l.is_list() || index < 0 || static_cast<size_t>(index) >= l.AsList().size()) {
      return Value();
    }
    return l.AsList()[static_cast<size_t>(index)];
  });
}

MultiValue MvNot(const MultiValue& mv) {
  return MultiValue::Map(mv, [](const Value& v) { return Value(!v.Truthy()); });
}

MultiValue MvAnd(const MultiValue& a, const MultiValue& b) {
  return MultiValue::Zip(
      a, b, [](const Value& x, const Value& y) { return Value(x.Truthy() && y.Truthy()); });
}

MultiValue MvLtScalar(int64_t scalar, const MultiValue& mv) {
  return MultiValue::Map(mv, [scalar](const Value& v) { return Value(scalar < v.IntOr(0)); });
}

MultiValue MvContentDigest(const MultiValue& mv) {
  return MultiValue::Map(mv, [](const Value& v) {
    std::ostringstream out;
    out << "d" << std::hex << DigestOf(v.ToString());
    return Value(out.str());
  });
}

MultiValue MvExpensive(const MultiValue& mv, uint32_t units) {
  return MultiValue::Map(mv, [units](const Value& v) {
    uint64_t h = v.DigestValue();
    for (uint32_t i = 0; i < units; ++i) {
      h = Avalanche(h + i);
    }
    std::ostringstream out;
    out << std::hex << h;
    return Value(out.str());
  });
}

MultiValue MvZip3(const MultiValue& a, const MultiValue& b, const MultiValue& c,
                  const std::function<Value(const Value&, const Value&, const Value&)>& f) {
  MultiValue ab = MultiValue::Zip(a, b, [](const Value& x, const Value& y) {
    return Value(ValueList{x, y});
  });
  return MultiValue::Zip(ab, c, [&f](const Value& xy, const Value& z) {
    return f(xy.AsList()[0], xy.AsList()[1], z);
  });
}

MultiValue MvMakeMap(std::initializer_list<std::pair<std::string, MultiValue>> fields) {
  MultiValue acc{Value(ValueMap{})};
  for (const auto& [key, mv] : fields) {
    std::string k = key;
    acc = MultiValue::Zip(acc, mv, [k](const Value& m, const Value& v) {
      ValueMap out = m.AsMap();
      out[k] = v;
      return Value(std::move(out));
    });
  }
  return acc;
}

MultiValue MvPrefix(std::string_view prefix, const MultiValue& mv) {
  std::string p(prefix);
  return MultiValue::Map(mv, [p](const Value& v) { return Value(p + v.StringOr(v.ToString())); });
}

}  // namespace karousos
