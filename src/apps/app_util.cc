#include "src/apps/app_util.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/digest.h"

namespace karousos {

namespace {

// Lowercase hex with no leading zeros — the exact bytes the historical
// ostringstream << std::hex formatting produced.
std::string HexString(uint64_t h) {
  char buf[17];
  int n = std::snprintf(buf, sizeof(buf), "%" PRIx64, h);
  return std::string(buf, static_cast<size_t>(n));
}

// The simulated expensive computation. The result depends only on the
// operand's digest and the unit count, which is what makes DigestMemo-keyed
// caching exact rather than approximate.
std::string ExpensiveHex(uint64_t digest, uint64_t units) {
  uint64_t h = digest;
  for (uint64_t i = 0; i < units; ++i) {
    h = Avalanche(h + i);
  }
  return HexString(h);
}

}  // namespace

MultiValue MvField(const MultiValue& mv, std::string_view key) {
  std::string k(key);
  return MultiValue::Map(mv, [k](const Value& v) { return v.Field(k); });
}

MultiValue MvMapGet(const MultiValue& map, const MultiValue& key) {
  return MultiValue::Zip(map, key, [](const Value& m, const Value& k) {
    return m.Field(k.StringOrToString());
  });
}

MultiValue MvMapSet(const MultiValue& map, const MultiValue& key, const MultiValue& value) {
  return MvZip3(map, key, value, [](const Value& m, const Value& k, const Value& v) {
    ValueMap out = m.is_map() ? m.AsMap() : ValueMap{};
    out[k.StringOrToString()] = v;
    return Value(std::move(out));
  });
}

MultiValue MvMapErase(const MultiValue& map, const MultiValue& key) {
  return MultiValue::Zip(map, key, [](const Value& m, const Value& k) {
    ValueMap out = m.is_map() ? m.AsMap() : ValueMap{};
    out.erase(k.StringOrToString());
    return Value(std::move(out));
  });
}

MultiValue MvMapHas(const MultiValue& map, const MultiValue& key) {
  return MultiValue::Zip(map, key, [](const Value& m, const Value& k) {
    return Value(m.HasField(k.StringOrToString()));
  });
}

MultiValue MvMapSize(const MultiValue& map) {
  return MultiValue::Map(map, [](const Value& m) {
    return Value(static_cast<int64_t>(m.is_map() ? m.AsMap().size() : 0));
  });
}

MultiValue MvListAppend(const MultiValue& list, const MultiValue& item) {
  return MultiValue::Zip(list, item, [](const Value& l, const Value& x) {
    ValueList out = l.is_list() ? l.AsList() : ValueList{};
    out.push_back(x);
    return Value(std::move(out));
  });
}

MultiValue MvListLen(const MultiValue& list) {
  return MultiValue::Map(list, [](const Value& l) {
    return Value(static_cast<int64_t>(l.is_list() ? l.AsList().size() : 0));
  });
}

MultiValue MvListGet(const MultiValue& list, int64_t index) {
  return MultiValue::Map(list, [index](const Value& l) {
    if (!l.is_list() || index < 0 || static_cast<size_t>(index) >= l.AsList().size()) {
      return Value();
    }
    return l.AsList()[static_cast<size_t>(index)];
  });
}

MultiValue MvNot(const MultiValue& mv) {
  return MultiValue::Map(mv, [](const Value& v) { return Value(!v.Truthy()); });
}

MultiValue MvAnd(const MultiValue& a, const MultiValue& b) {
  return MultiValue::Zip(
      a, b, [](const Value& x, const Value& y) { return Value(x.Truthy() && y.Truthy()); });
}

MultiValue MvLtScalar(int64_t scalar, const MultiValue& mv) {
  return MultiValue::Map(mv, [scalar](const Value& v) { return Value(scalar < v.IntOr(0)); });
}

MultiValue MvContentDigest(const MultiValue& mv) {
  return MultiValue::Map(mv, [](const Value& v) {
    return Value("d" + HexString(DigestOf(v.ToString())));
  });
}

MultiValue MvExpensive(const MultiValue& mv, uint32_t units) {
  return MultiValue::Map(mv, [units](const Value& v) {
    return Value(ExpensiveHex(v.DigestValue(), units));
  });
}

MultiValue MvExpensiveMemo(const MultiValue& mv, uint32_t units, DigestMemo* memo) {
  return MultiValue::Map(mv, [units, memo](const Value& v) {
    return Value(memo->GetOrCompute(v.DigestValue(), units, ExpensiveHex));
  });
}

MultiValue MvZip3(const MultiValue& a, const MultiValue& b, const MultiValue& c,
                  const std::function<Value(const Value&, const Value&, const Value&)>& f) {
  MultiValue ab = MultiValue::Zip(a, b, [](const Value& x, const Value& y) {
    return Value(ValueList{x, y});
  });
  return MultiValue::Zip(ab, c, [&f](const Value& xy, const Value& z) {
    return f(xy.AsList()[0], xy.AsList()[1], z);
  });
}

MultiValue MvMakeMap(std::initializer_list<std::pair<std::string, MultiValue>> fields) {
  MultiValue acc{Value(ValueMap{})};
  for (const auto& [key, mv] : fields) {
    std::string k = key;
    acc = MultiValue::Zip(acc, mv, [k](const Value& m, const Value& v) {
      ValueMap out = m.AsMap();
      out[k] = v;
      return Value(std::move(out));
    });
  }
  return acc;
}

MultiValue MvPrefix(std::string_view prefix, const MultiValue& mv) {
  std::string p(prefix);
  return MultiValue::Map(mv, [p](const Value& v) { return Value(p + v.StringOrToString()); });
}

}  // namespace karousos
