// Mixed-mode composition: all four apps installed into one Program, served by
// one router request handler. The router unwraps {"app","req"} envelopes and
// re-emits the inner request on a per-app event, so each app's real request
// handler runs as a child activation. Routing by app name is a Branch, so the
// control-flow digest separates the apps into distinct re-execution groups —
// a motd burst still collapses into one group even with auction traffic
// interleaved between its requests.
#include "src/apps/app.h"
#include "src/apps/app_util.h"
#include "src/kem/ctx.h"
#include "src/multivalue/multivalue.h"

namespace karousos {

namespace {

void HandleRoute(Ctx& ctx) {
  MultiValue in = ctx.Input();
  MultiValue app = MvField(in, "app");
  MultiValue req = MvField(in, "req");
  if (ctx.Branch(MvEq(app, MultiValue("motd")))) {
    ctx.Emit("route_motd", req);
  } else if (ctx.Branch(MvEq(app, MultiValue("stacks")))) {
    ctx.Emit("route_stacks", req);
  } else if (ctx.Branch(MvEq(app, MultiValue("wiki")))) {
    ctx.Emit("route_wiki", req);
  } else if (ctx.Branch(MvEq(app, MultiValue("auction")))) {
    ctx.Emit("route_auction", req);
  } else {
    ctx.Respond(MvMakeMap({{"error", MultiValue("unknown app")}}));
  }
}

}  // namespace

AppSpec MakeMixedApp() {
  auto program = std::make_shared<Program>();
  std::vector<HandlerFn> steps;
  // Install order is fixed: it determines the order of init-time DeclareVar /
  // RegisterHandler ops in the trace, which golden fixtures pin byte-for-byte.
  InstallMotdApp(*program, "route_motd", &steps);
  InstallStacksApp(*program, "route_stacks", &steps);
  InstallWikiApp(*program, "route_wiki", &steps);
  InstallAuctionApp(*program, "route_auction", &steps);
  program->DefineFunction("mixed_route", HandleRoute);
  program->SetInit([steps = std::move(steps)](Ctx& ctx) {
    for (const HandlerFn& step : steps) {
      step(ctx);
    }
    ctx.RegisterHandler(kRequestEventName, "mixed_route");
  });
  return AppSpec{"mixed", std::move(program)};
}

}  // namespace karousos
