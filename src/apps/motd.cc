#include "src/apps/app.h"
#include "src/apps/app_util.h"
#include "src/kem/ctx.h"
#include "src/multivalue/multivalue.h"

namespace karousos {

namespace {

constexpr std::string_view kMotdVar = "motd";

// Simulated per-request computation (~1.6k LoC of app + library code in the
// paper's MOTD): formatting the message for display. SIMD-on-demand pays for
// it once per group when the operands collapse.
constexpr uint32_t kMotdWork = 8000;

void HandleMotd(Ctx& ctx) {
  MultiValue in = ctx.Input();
  MultiValue op = MvField(in, "op");
  if (ctx.Branch(MvEq(op, MultiValue("set")))) {
    MultiValue day = MvField(in, "day");
    MultiValue msg = MvField(in, "msg");
    MultiValue etag = ctx.AppWork(msg, kMotdWork);  // Validate/escape the message.
    MultiValue map = ctx.ReadVar(kMotdVar, VarScope::kGlobal);
    map = MvMapSet(map, day, msg);
    ctx.WriteVar(kMotdVar, VarScope::kGlobal, map);
    ctx.Respond(MvMakeMap({{"ok", MultiValue(true)}, {"etag", etag}}));
  } else {
    MultiValue day = MvField(in, "day");
    MultiValue map = ctx.ReadVar(kMotdVar, VarScope::kGlobal);
    MultiValue msg = MvMapGet(map, day);
    // Fall back to the every-day message, then to a default.
    MultiValue every = MvMapGet(map, MultiValue("every"));
    msg = MultiValue::Zip(msg, every, [](const Value& specific, const Value& fallback) {
      if (specific.Truthy()) {
        return specific;
      }
      if (fallback.Truthy()) {
        return fallback;
      }
      return Value("no message");
    });
    MultiValue etag = ctx.AppWork(msg, kMotdWork);  // Render the banner.
    ctx.Respond(MvMakeMap({{"msg", msg}, {"etag", etag}}));
  }
}

}  // namespace

void InstallMotdApp(Program& program, std::string request_event,
                    std::vector<HandlerFn>* init_steps) {
  program.DefineFunction("motd_handle", HandleMotd);
  init_steps->push_back([request_event = std::move(request_event)](Ctx& ctx) {
    ctx.DeclareVar(kMotdVar, VarScope::kGlobal);
    ctx.WriteVar(kMotdVar, VarScope::kGlobal, MultiValue(Value(ValueMap{})));
    ctx.RegisterHandler(request_event, "motd_handle");
  });
}

AppSpec MakeMotdApp() {
  auto program = std::make_shared<Program>();
  std::vector<HandlerFn> steps;
  InstallMotdApp(*program, std::string(kRequestEventName), &steps);
  program->SetInit([steps = std::move(steps)](Ctx& ctx) {
    for (const HandlerFn& step : steps) {
      step(ctx);
    }
  });
  return AppSpec{"motd", std::move(program)};
}

}  // namespace karousos
