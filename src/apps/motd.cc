#include "src/apps/app.h"
#include "src/apps/app_util.h"
#include "src/kem/ctx.h"
#include "src/multivalue/multivalue.h"

namespace karousos {

namespace {

constexpr std::string_view kMotdVar = "motd";

// Simulated per-request computation (~1.6k LoC of app + library code in the
// paper's MOTD): formatting the message for display. SIMD-on-demand pays for
// it once per group when the operands collapse.
constexpr uint32_t kMotdWork = 8000;

void HandleMotd(Ctx& ctx) {
  MultiValue in = ctx.Input();
  MultiValue op = MvField(in, "op");
  if (ctx.Branch(MvEq(op, MultiValue("set")))) {
    MultiValue day = MvField(in, "day");
    MultiValue msg = MvField(in, "msg");
    MultiValue etag = ctx.AppWork(msg, kMotdWork);  // Validate/escape the message.
    MultiValue map = ctx.ReadVar(kMotdVar, VarScope::kGlobal);
    map = MvMapSet(map, day, msg);
    ctx.WriteVar(kMotdVar, VarScope::kGlobal, map);
    ctx.Respond(MvMakeMap({{"ok", MultiValue(true)}, {"etag", etag}}));
  } else {
    MultiValue day = MvField(in, "day");
    MultiValue map = ctx.ReadVar(kMotdVar, VarScope::kGlobal);
    MultiValue msg = MvMapGet(map, day);
    // Fall back to the every-day message, then to a default.
    MultiValue every = MvMapGet(map, MultiValue("every"));
    msg = MultiValue::Zip(msg, every, [](const Value& specific, const Value& fallback) {
      if (specific.Truthy()) {
        return specific;
      }
      if (fallback.Truthy()) {
        return fallback;
      }
      return Value("no message");
    });
    MultiValue etag = ctx.AppWork(msg, kMotdWork);  // Render the banner.
    ctx.Respond(MvMakeMap({{"msg", msg}, {"etag", etag}}));
  }
}

}  // namespace

AppSpec MakeMotdApp() {
  auto program = std::make_shared<Program>();
  program->DefineFunction("motd_handle", HandleMotd);
  program->SetInit([](Ctx& ctx) {
    ctx.DeclareVar(kMotdVar, VarScope::kGlobal);
    ctx.WriteVar(kMotdVar, VarScope::kGlobal, MultiValue(Value(ValueMap{})));
    ctx.RegisterHandler(kRequestEventName, "motd_handle");
  });
  return AppSpec{"motd", std::move(program)};
}

}  // namespace karousos
