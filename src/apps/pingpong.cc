#include "src/apps/app.h"
#include "src/apps/app_util.h"
#include "src/kem/ctx.h"
#include "src/multivalue/multivalue.h"

namespace karousos {

namespace {

void HandlePing(Ctx& ctx) {
  MultiValue n = MvField(ctx.Input(), "n");
  ctx.Emit("pong", MvMakeMap({{"n", MvAdd(n, MultiValue(1))}}));
}

void HandlePong(Ctx& ctx) {
  MultiValue n = MvField(ctx.Input(), "n");
  ctx.Respond(MvMakeMap({{"n", MvAdd(n, MultiValue(1))}}));
}

}  // namespace

AppSpec MakePingpongApp() {
  auto program = std::make_shared<Program>();
  program->DefineFunction("ping", HandlePing);
  program->DefineFunction("pong_handler", HandlePong);
  program->SetInit([](Ctx& ctx) {
    ctx.RegisterHandler(kRequestEventName, "ping");
    ctx.RegisterHandler("pong", "pong_handler");
  });
  return AppSpec{"pingpong", std::move(program)};
}

}  // namespace karousos
