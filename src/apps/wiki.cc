#include "src/apps/app.h"
#include "src/apps/app_util.h"
#include "src/kem/ctx.h"
#include "src/multivalue/multivalue.h"

namespace karousos {

namespace {

constexpr std::string_view kPageIndexVar = "page_index";
constexpr std::string_view kRenderCacheVar = "render_cache";
constexpr std::string_view kPoolStatsVar = "pool_stats";
// Per-request context object: written by the request handler, read and
// updated by the handlers it activates. Reads/writes along the activation
// chain are R-ordered with their dictating/preceding write, so Karousos logs
// none of them (§4.2's "common pattern"); sibling read-modify-writes on the
// join counter are R-concurrent and do get logged.
constexpr std::string_view kReqCtxVar = "wctx";

// Rendered pages cached, LRU-ish bounded (drop the oldest key once full).
constexpr size_t kRenderCacheCapacity = 8;

// Simulated application computation (markdown rendering, sanitization...):
// Wiki.js executes ~19k LoC per request; these stand in for that work and
// are what SIMD-on-demand deduplicates across a group.
constexpr uint32_t kRenderWork = 300000;
constexpr uint32_t kWriteWork = 60000;

MultiValue PageKey(const MultiValue& id) { return MvPrefix("page:", id); }
MultiValue MetaKey(const MultiValue& id) { return MvPrefix("meta:", id); }
MultiValue CommentsKey(const MultiValue& id) { return MvPrefix("comments:", id); }

// Connection-pool bookkeeping: a shared statistics object whose key space
// grows with the number of concurrent connections, so its logged size grows
// with concurrency (the Figure 8 discussion for Wiki.js).
void UpdateStats(Ctx& ctx, const MultiValue& conn) {
  MultiValue stats = ctx.ReadVar(kPoolStatsVar, VarScope::kGlobal);
  MultiValue key = MvPrefix("conn", conn);
  MultiValue entry = MvMapGet(stats, key);
  MultiValue count = MvAdd(MvField(entry, "ops"), MultiValue(1));
  entry = MvMakeMap({{"ops", count}, {"open", MultiValue(true)}});
  ctx.WriteVar(kPoolStatsVar, VarScope::kGlobal, MvMapSet(stats, key, entry));
}

void RespondRetry(Ctx& ctx) { ctx.Respond(MvMakeMap({{"retry", MultiValue(true)}})); }

MultiValue CachePut(const MultiValue& cache, const MultiValue& key, const MultiValue& html) {
  return MvZip3(cache, key, html, [](const Value& c, const Value& k, const Value& h) {
    ValueMap out = c.is_map() ? c.AsMap() : ValueMap{};
    out[k.StringOrToString()] = h;
    while (out.size() > kRenderCacheCapacity) {
      out.erase(out.begin());
    }
    return Value(std::move(out));
  });
}

// One ReadVar per field access: this mirrors what the paper's transpiler
// produces for JavaScript property reads on an annotated object — each
// property access is its own OnRead annotation.
MultiValue CtxField(Ctx& ctx, std::string_view field) {
  return MvField(ctx.ReadVar(kReqCtxVar, VarScope::kRequest), field);
}

// Stage bookkeeping on the request context, as middleware chains do. Chain
// writes are R-ordered with the preceding write, so only a log-all policy
// pays for them.
void MarkStage(Ctx& ctx, std::string_view stage) {
  MultiValue wctx = ctx.ReadVar(kReqCtxVar, VarScope::kRequest);
  ctx.WriteVar(kReqCtxVar, VarScope::kRequest,
               MvMapSet(wctx, MultiValue("stage"), MultiValue(std::string(stage))));
}

void HandleWiki(Ctx& ctx) {
  MultiValue in = ctx.Input();
  MultiValue op = MvField(in, "op");
  MultiValue conn = MvField(in, "conn");
  if (ctx.Branch(MvEq(op, MultiValue("create_page")))) {
    MultiValue id = MvField(in, "id");
    MultiValue content = MvField(in, "content");
    MultiValue preview = ctx.AppWork(content, kWriteWork);  // Sanitizer pass.
    TxHandle tx = ctx.TxStart();
    bool ok = ctx.TxPut(tx, PageKey(id),
                        MvMakeMap({{"title", MvField(in, "title")}, {"content", content}}));
    if (!ctx.Branch(MultiValue(ok))) {
      ctx.TxAbort(tx);
      RespondRetry(ctx);
      return;
    }
    ok = ctx.TxPut(tx, MetaKey(id), MvMakeMap({{"preview", preview}, {"conn", conn}}));
    if (!ctx.Branch(MultiValue(ok))) {
      ctx.TxAbort(tx);
      RespondRetry(ctx);
      return;
    }
    ok = ctx.TxPut(tx, CommentsKey(id), MultiValue(Value(ValueList{})));
    if (!ctx.Branch(MultiValue(ok))) {
      ctx.TxAbort(tx);
      RespondRetry(ctx);
      return;
    }
    ctx.DeclareVar(kReqCtxVar, VarScope::kRequest);
    ctx.WriteVar(kReqCtxVar, VarScope::kRequest,
                 MvMakeMap({{"id", id}, {"conn", conn}, {"op", op}}));
    ctx.Emit("wiki_create_finish", MvMakeMap({{"tid", ctx.TxIdValue(tx)}}));
  } else if (ctx.Branch(MvEq(op, MultiValue("create_comment")))) {
    MultiValue page = MvField(in, "page");
    TxHandle tx = ctx.TxStart();
    TxGetResult page_row = ctx.TxGet(tx, PageKey(page));
    if (ctx.Branch(MultiValue(page_row.conflict))) {
      ctx.TxAbort(tx);
      RespondRetry(ctx);
      return;
    }
    if (!ctx.Branch(page_row.found)) {
      ctx.TxAbort(tx);
      ctx.Respond(MvMakeMap({{"ok", MultiValue(false)}, {"error", MultiValue("no such page")}}));
      return;
    }
    TxGetResult comments = ctx.TxGet(tx, CommentsKey(page));
    if (ctx.Branch(MultiValue(comments.conflict))) {
      ctx.TxAbort(tx);
      RespondRetry(ctx);
      return;
    }
    ctx.DeclareVar(kReqCtxVar, VarScope::kRequest);
    ctx.WriteVar(kReqCtxVar, VarScope::kRequest,
                 MvMakeMap({{"page", page},
                            {"comments", comments.value},
                            {"text", MvField(in, "text")},
                            {"conn", conn}}));
    ctx.Emit("wiki_comment_finish", MvMakeMap({{"tid", ctx.TxIdValue(tx)}}));
  } else {
    // render: the page row, page metadata, and comments are fetched by three
    // parallel child handlers, as an event-driven app would issue three
    // concurrent queries. Their completion order varies with concurrency —
    // Karousos still groups such requests (same tree), whereas Orochi-JS
    // needs identical completion sequences (§4.1).
    MultiValue page = MvField(in, "page");
    MultiValue cache = ctx.ReadVar(kRenderCacheVar, VarScope::kGlobal);
    if (ctx.Branch(MvMapHas(cache, page))) {
      UpdateStats(ctx, conn);
      ctx.Respond(MvMakeMap({{"html", MvMapGet(cache, page)}, {"cached", MultiValue(true)}}));
      return;
    }
    ctx.DeclareVar(kReqCtxVar, VarScope::kRequest);
    ctx.WriteVar(kReqCtxVar, VarScope::kRequest,
                 MvMakeMap({{"page", page}, {"conn", conn}, {"pending", MultiValue(3)}}));
    ctx.Emit("wiki_fetch", MvMakeMap({{"what", MultiValue("row")}}));
    ctx.Emit("wiki_fetch", MvMakeMap({{"what", MultiValue("meta")}}));
    ctx.Emit("wiki_fetch", MvMakeMap({{"what", MultiValue("comments")}}));
  }
}

// One of the three parallel fetches for a render; the last one to finish
// hands off to the join handler.
void HandleFetch(Ctx& ctx) {
  MultiValue what = MvField(ctx.Input(), "what");
  MultiValue page = CtxField(ctx, "page");
  MultiValue key = ctx.Branch(MvEq(what, MultiValue("row")))      ? PageKey(page)
                   : ctx.Branch(MvEq(what, MultiValue("meta"))) ? MetaKey(page)
                                                                  : CommentsKey(page);
  TxHandle tx = ctx.TxStart();
  TxGetResult got = ctx.TxGet(tx, key);
  MultiValue result;
  if (ctx.Branch(MultiValue(got.conflict))) {
    ctx.TxAbort(tx);
    result = MultiValue("conflict");
  } else {
    ctx.Branch(MultiValue(ctx.TxCommit(tx)));
    ctx.Branch(got.found);
    result = got.value;
  }
  // Sibling read-modify-writes on the shared context: R-concurrent, logged.
  MultiValue wctx = ctx.ReadVar(kReqCtxVar, VarScope::kRequest);
  wctx = MvMapSet(wctx, what, result);
  MultiValue pending = MvAdd(MvField(wctx, "pending"), MultiValue(-1));
  wctx = MvMapSet(wctx, MultiValue("pending"), pending);
  ctx.WriteVar(kReqCtxVar, VarScope::kRequest, wctx);
  if (!ctx.Branch(pending)) {
    ctx.Emit("wiki_render_finish", MultiValue(Value(ValueMap{})));
  }
}

void HandleCreateFinish(Ctx& ctx) {
  MultiValue id = CtxField(ctx, "id");
  TxHandle tx = ctx.TxResume(MvField(ctx.Input(), "tid"));
  ctx.Branch(MultiValue(ctx.TxCommit(tx)));
  MarkStage(ctx, "committed");
  MultiValue index = ctx.ReadVar(kPageIndexVar, VarScope::kGlobal);
  ctx.WriteVar(kPageIndexVar, VarScope::kGlobal, MvListAppend(index, id));
  UpdateStats(ctx, CtxField(ctx, "conn"));
  ctx.Respond(MvMakeMap({{"ok", MultiValue(true)}}));
}

void HandleCommentFinish(Ctx& ctx) {
  MultiValue page = CtxField(ctx, "page");
  TxHandle tx = ctx.TxResume(MvField(ctx.Input(), "tid"));
  MultiValue sanitized = ctx.AppWork(CtxField(ctx, "text"), kWriteWork);
  MultiValue comment =
      MvMakeMap({{"text", CtxField(ctx, "text")}, {"etag", sanitized}});
  bool ok = ctx.TxPut(tx, CommentsKey(page), MvListAppend(CtxField(ctx, "comments"), comment));
  if (!ctx.Branch(MultiValue(ok))) {
    ctx.TxAbort(tx);
    RespondRetry(ctx);
    return;
  }
  ctx.Branch(MultiValue(ctx.TxCommit(tx)));
  MarkStage(ctx, "committed");
  // Invalidate any cached rendering of the page.
  MultiValue cache = ctx.ReadVar(kRenderCacheVar, VarScope::kGlobal);
  ctx.WriteVar(kRenderCacheVar, VarScope::kGlobal, MvMapErase(cache, page));
  UpdateStats(ctx, CtxField(ctx, "conn"));
  ctx.Respond(MvMakeMap({{"ok", MultiValue(true)}}));
}

// Join of the three fetches: builds the page (the expensive part) and caches.
void HandleRenderFinish(Ctx& ctx) {
  MultiValue page = CtxField(ctx, "page");
  MultiValue row = CtxField(ctx, "row");
  MultiValue meta = CtxField(ctx, "meta");
  MultiValue comments = CtxField(ctx, "comments");
  MultiValue body = MvZip3(row, meta, comments, [](const Value& r, const Value& m,
                                                   const Value& cs) {
    std::string out = "<h1>" + r.Field("title").StringOr("") + "</h1><p>" +
                      r.Field("content").StringOr("") + "</p><meta>" +
                      m.Field("preview").StringOr("") + "</meta>";
    if (cs.is_list()) {
      for (const Value& c : cs.AsList()) {
        out += "<li>" + c.Field("text").StringOr("") + "</li>";
      }
    }
    return Value(out);
  });
  // Markdown/template rendering: collapses (and is paid once) for a group of
  // renders of the same page version.
  MultiValue etag = ctx.AppWork(body, kRenderWork);
  MultiValue html = MvConcat(body, MvPrefix("<etag>", etag));
  // Stash the render on the request context (a large R-ordered write).
  MultiValue wctx = ctx.ReadVar(kReqCtxVar, VarScope::kRequest);
  wctx = MvMapSet(wctx, MultiValue("stage"), MultiValue("rendered"));
  wctx = MvMapSet(wctx, MultiValue("html"), html);
  ctx.WriteVar(kReqCtxVar, VarScope::kRequest, wctx);
  MultiValue cache = ctx.ReadVar(kRenderCacheVar, VarScope::kGlobal);
  ctx.WriteVar(kRenderCacheVar, VarScope::kGlobal, CachePut(cache, page, html));
  UpdateStats(ctx, CtxField(ctx, "conn"));
  ctx.Respond(MvMakeMap({{"html", html}, {"cached", MultiValue(false)}}));
}

}  // namespace

void InstallWikiApp(Program& program, std::string request_event,
                    std::vector<HandlerFn>* init_steps) {
  program.DefineFunction("wiki_handle", HandleWiki);
  program.DefineFunction("wiki_fetch", HandleFetch);
  program.DefineFunction("wiki_create_finish", HandleCreateFinish);
  program.DefineFunction("wiki_comment_finish", HandleCommentFinish);
  program.DefineFunction("wiki_render_finish", HandleRenderFinish);
  init_steps->push_back([request_event = std::move(request_event)](Ctx& ctx) {
    ctx.DeclareVar(kPageIndexVar, VarScope::kGlobal);
    ctx.WriteVar(kPageIndexVar, VarScope::kGlobal, MultiValue(Value(ValueList{})));
    ctx.DeclareVar(kRenderCacheVar, VarScope::kGlobal);
    ctx.WriteVar(kRenderCacheVar, VarScope::kGlobal, MultiValue(Value(ValueMap{})));
    ctx.DeclareVar(kPoolStatsVar, VarScope::kGlobal);
    ctx.WriteVar(kPoolStatsVar, VarScope::kGlobal, MultiValue(Value(ValueMap{})));
    ctx.RegisterHandler(request_event, "wiki_handle");
    ctx.RegisterHandler("wiki_fetch", "wiki_fetch");
    ctx.RegisterHandler("wiki_create_finish", "wiki_create_finish");
    ctx.RegisterHandler("wiki_comment_finish", "wiki_comment_finish");
    ctx.RegisterHandler("wiki_render_finish", "wiki_render_finish");
  });
}

AppSpec MakeWikiApp() {
  auto program = std::make_shared<Program>();
  std::vector<HandlerFn> steps;
  InstallWikiApp(*program, std::string(kRequestEventName), &steps);
  program->SetInit([steps = std::move(steps)](Ctx& ctx) {
    for (const HandlerFn& step : steps) {
      step(ctx);
    }
  });
  return AppSpec{"wiki", std::move(program)};
}

}  // namespace karousos
