// Open-loop socket load driver: replays a GenerateOpenLoop schedule against
// a running wire server over C connections (request i rides connection
// i mod C, so with C equal to the server's worker count each worker's shard
// is the strided subsequence inputs[w::N]). Two issue disciplines:
//
//   * Batch: write every request up front (pacing ignored), send the
//     shutdown frame carrying the connection count, half-close all
//     connections, then collect responses. Pairs with the server's batch
//     mode for byte-deterministic shards.
//   * Live: issue each request at its arrival timestamp (or back-to-back
//     for closed-loop schedules), reading responses as they become
//     readable; per-request latency is measured from scheduled send to
//     response receipt. The shutdown frame goes out after the last response
//     so drain never races outstanding work.
#ifndef SRC_WORKLOAD_WIRE_LOAD_H_
#define SRC_WORKLOAD_WIRE_LOAD_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/workload/workload.h"

namespace karousos {

struct WireLoadOptions {
  size_t connections = 1;
  // Batch discipline (see file comment). Live when false.
  bool batch = false;
  // Live-only: maximum in-flight (sent, not yet answered) requests per
  // connection — the pipeline window. 0 = unbounded (issue at schedule
  // time no matter how many responses are outstanding), 1 = strict
  // request/response RPC, N = classic pipelining. Ignored in batch mode,
  // which is by definition an unbounded window.
  size_t pipeline = 0;
  // Send the drain-the-server shutdown frame when done.
  bool send_shutdown = true;
  // Per-read timeout; the whole run fails if any response takes longer.
  int timeout_ms = 30000;
};

struct WireLoadReport {
  bool ok = false;
  std::string error;
  size_t sent = 0;
  size_t received = 0;
  double wall_seconds = 0;
  // Response payloads and send-to-receive latencies, indexed by schedule
  // position (seq).
  std::vector<Value> responses;
  std::vector<double> latency_seconds;
};

WireLoadReport RunWireLoad(const std::string& address, const OpenLoopWorkload& workload,
                           const WireLoadOptions& options);

}  // namespace karousos

#endif  // SRC_WORKLOAD_WIRE_LOAD_H_
