// Workload generators mirroring §6's evaluation setup: read-heavy (90/10),
// write-heavy (10/90), and mixed (50/50) request streams for the model
// applications, and the 25% page-creation / 15% comment / 60% render mix
// (loosely derived from a Wikipedia trace) for the wiki application. Write
// requests to the stacks application are split 10% new dump / 90% previously
// reported, as in the paper.
//
// Beyond the paper's closed-loop streams, this layer also generates
// contention-shaped traffic: Zipf-skewed key popularity for the auction app
// (a handful of hot items soak up most bids), and open-loop arrival
// timestamps — steady Poisson, bursty on/off phases, or a diurnal sinusoid —
// so benchmarks can drive the server at a rate instead of in lockstep.
#ifndef SRC_WORKLOAD_WORKLOAD_H_
#define SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/value.h"

namespace karousos {

enum class WorkloadKind : uint8_t {
  kReadHeavy,   // 90% reads / 10% writes.
  kWriteHeavy,  // 10% reads / 90% writes.
  kMixed,       // 50% / 50%.
  kWikiMix,     // 25% create-page, 15% create-comment, 60% render.
  kAuctionMix,  // 62% bid, 18% query, 12% verify, 8% list over Zipf items.
  kMixedApps,   // All four apps interleaved in one {"app","req"} stream.
};

const char* WorkloadKindName(WorkloadKind kind);

// How request arrival timestamps are generated (open-loop clients fire at
// these times regardless of completions; kClosed generates none).
enum class ArrivalPattern : uint8_t {
  kClosed,   // No timestamps: back-to-back closed-loop issue.
  kUniform,  // Poisson arrivals at mean_rate req/s.
  kBursty,   // Alternating high/low-rate phases of phase_requests each.
  kDiurnal,  // Sinusoidal rate around mean_rate (a compressed day cycle).
};

const char* ArrivalPatternName(ArrivalPattern pattern);

struct WorkloadConfig {
  std::string app;  // "motd", "stacks", "wiki", "auction", or "mixed".
  WorkloadKind kind = WorkloadKind::kMixed;
  size_t requests = 600;
  uint64_t seed = 1;
  // Number of simulated client connections; stamped into wiki requests as
  // the connection-pool slot and used as the auction bidder-name pool.
  int connections = 1;

  // Auction shape: bids target `hot_items` items with Zipf(zipf_theta)
  // popularity. theta = 0 is uniform; 0.9 is the YCSB default; >1 means the
  // hottest item takes most of the traffic.
  int hot_items = 4;
  double zipf_theta = 0.9;

  // Open-loop arrival shape (used by GenerateOpenLoop).
  ArrivalPattern arrival = ArrivalPattern::kClosed;
  double mean_rate = 2000.0;   // Requests per second.
  double burst_factor = 8.0;   // Bursty: high phase = rate*f, low = rate/f.
  size_t phase_requests = 64;  // Requests per bursty phase / diurnal quarter.
};

// Zipf(theta) over {0..n-1} by CDF inversion: P(k) proportional to
// 1/(k+1)^theta. theta = 0 degenerates to uniform. Deterministic given the
// caller's Rng stream.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta);
  size_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

std::vector<Value> GenerateWorkload(const WorkloadConfig& config);

// An open-loop request stream: inputs[i] should be issued at
// arrival_seconds[i] (non-decreasing, starting near 0). With
// ArrivalPattern::kClosed, arrival_seconds is empty.
struct OpenLoopWorkload {
  std::vector<Value> inputs;
  std::vector<double> arrival_seconds;
};

OpenLoopWorkload GenerateOpenLoop(const WorkloadConfig& config);

}  // namespace karousos

#endif  // SRC_WORKLOAD_WORKLOAD_H_
