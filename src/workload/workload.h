// Workload generators mirroring §6's evaluation setup: read-heavy (90/10),
// write-heavy (10/90), and mixed (50/50) request streams for the model
// applications, and the 25% page-creation / 15% comment / 60% render mix
// (loosely derived from a Wikipedia trace) for the wiki application. Write
// requests to the stacks application are split 10% new dump / 90% previously
// reported, as in the paper.
#ifndef SRC_WORKLOAD_WORKLOAD_H_
#define SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace karousos {

enum class WorkloadKind : uint8_t {
  kReadHeavy,   // 90% reads / 10% writes.
  kWriteHeavy,  // 10% reads / 90% writes.
  kMixed,       // 50% / 50%.
  kWikiMix,     // 25% create-page, 15% create-comment, 60% render.
};

const char* WorkloadKindName(WorkloadKind kind);

struct WorkloadConfig {
  std::string app;  // "motd", "stacks", or "wiki".
  WorkloadKind kind = WorkloadKind::kMixed;
  size_t requests = 600;
  uint64_t seed = 1;
  // Number of simulated client connections; stamped into wiki requests as
  // the connection-pool slot.
  int connections = 1;
};

std::vector<Value> GenerateWorkload(const WorkloadConfig& config);

}  // namespace karousos

#endif  // SRC_WORKLOAD_WORKLOAD_H_
