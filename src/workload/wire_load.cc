#include "src/workload/wire_load.h"

#include <poll.h>

#include <chrono>
#include <memory>

#include "src/net/client.h"

namespace karousos {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

WireLoadReport Fail(WireLoadReport report, std::string error) {
  report.ok = false;
  report.error = std::move(error);
  return report;
}

}  // namespace

WireLoadReport RunWireLoad(const std::string& address, const OpenLoopWorkload& workload,
                           const WireLoadOptions& options) {
  WireLoadReport report;
  const size_t n = workload.inputs.size();
  const size_t n_conns = options.connections == 0 ? 1 : options.connections;
  report.responses.assign(n, Value());
  report.latency_seconds.assign(n, 0.0);

  std::vector<std::unique_ptr<WireConn>> conns;
  std::string error;
  for (size_t c = 0; c < n_conns; ++c) {
    auto conn = WireConn::Connect(address, &error);
    if (conn == nullptr) {
      return Fail(std::move(report), "connection " + std::to_string(c) + ": " + error);
    }
    conns.push_back(std::move(conn));
  }

  const Clock::time_point start = Clock::now();
  std::vector<Clock::time_point> send_time(n);
  // Responses remaining per connection (request i rides connection i % C).
  std::vector<size_t> conn_outstanding(n_conns, 0);

  // A response only counts if its seq is in range, not yet answered, and
  // arrived on the connection that sent it — a server crossing responses
  // between connections must fail the run, not corrupt the accounting.
  auto record_response = [&](size_t c, uint64_t seq, Value&& value,
                             Clock::time_point at) -> bool {
    if (seq >= n || seq % n_conns != c || report.latency_seconds[seq] != 0.0) {
      return false;
    }
    report.responses[seq] = std::move(value);
    report.latency_seconds[seq] = Seconds(send_time[seq], at);
    ++report.received;
    --conn_outstanding[c];
    return true;
  };

  if (options.batch) {
    for (size_t i = 0; i < n; ++i) {
      send_time[i] = Clock::now();
      if (!conns[i % n_conns]->SendRequest(i, workload.inputs[i], &error)) {
        return Fail(std::move(report), "send " + std::to_string(i) + ": " + error);
      }
      ++report.sent;
      ++conn_outstanding[i % n_conns];
    }
    if (options.send_shutdown && !conns[0]->SendShutdown(n_conns, &error)) {
      return Fail(std::move(report), "shutdown frame: " + error);
    }
    for (auto& conn : conns) {
      if (!conn->FinishWrites(&error)) {
        return Fail(std::move(report), "half-close: " + error);
      }
    }
    // Per-connection sequential collection: each connection's worker sends
    // all its responses once its shard is served.
    for (size_t c = 0; c < n_conns; ++c) {
      while (conn_outstanding[c] > 0) {
        uint64_t seq = 0;
        Value value;
        if (!conns[c]->ReadResponse(&seq, &value, options.timeout_ms, &error)) {
          return Fail(std::move(report), "connection " + std::to_string(c) + ": " + error);
        }
        if (!record_response(c, seq, std::move(value), Clock::now())) {
          return Fail(std::move(report),
                      "connection " + std::to_string(c) +
                          ": mismatched, duplicate, or out-of-range seq " + std::to_string(seq));
        }
      }
    }
    report.wall_seconds = Seconds(start, Clock::now());
    report.ok = true;
    return report;
  }

  // Live discipline: issue at arrival timestamps (back-to-back when the
  // schedule is closed-loop), reading whichever connections turn readable
  // in between.
  const bool paced = !workload.arrival_seconds.empty();
  const size_t window = options.pipeline;  // 0 = unbounded.
  size_t next_send = 0;
  while (report.received < n) {
    const double elapsed = Seconds(start, Clock::now());
    while (next_send < n &&
           (!paced || workload.arrival_seconds[next_send] <= elapsed) &&
           (window == 0 || conn_outstanding[next_send % n_conns] < window)) {
      send_time[next_send] = Clock::now();
      if (!conns[next_send % n_conns]->SendRequest(next_send, workload.inputs[next_send],
                                                   &error)) {
        return Fail(std::move(report), "send " + std::to_string(next_send) + ": " + error);
      }
      ++conn_outstanding[next_send % n_conns];
      ++report.sent;
      ++next_send;
    }

    // Drain frames already decoded-ready in userspace buffers first: a
    // single recv() can pull several responses, and poll() below only sees
    // kernel-buffered bytes — blocking there would strand them.
    bool drained_buffered = false;
    for (size_t c = 0; c < n_conns; ++c) {
      while (conns[c]->HasBufferedFrame()) {
        uint64_t seq = 0;
        Value value;
        if (!conns[c]->ReadResponse(&seq, &value, /*timeout_ms=*/0, &error)) {
          return Fail(std::move(report), "connection " + std::to_string(c) + ": " + error);
        }
        if (!record_response(c, seq, std::move(value), Clock::now())) {
          return Fail(std::move(report),
                      "connection " + std::to_string(c) +
                          ": mismatched, duplicate, or out-of-range seq " + std::to_string(seq));
        }
        drained_buffered = true;
      }
    }
    if (drained_buffered) {
      continue;  // Re-evaluate sends and completion before blocking.
    }

    // Wait for the earlier of "next scheduled send" and "a response". When
    // the pipeline window is full, only a response can unblock the next
    // send, so the arrival clock does not shorten the wait.
    const bool window_blocked =
        next_send < n && window != 0 && conn_outstanding[next_send % n_conns] >= window;
    int wait_ms = options.timeout_ms;
    if (next_send < n && !window_blocked) {
      if (paced) {
        double until = workload.arrival_seconds[next_send] - Seconds(start, Clock::now());
        wait_ms = until <= 0 ? 0 : static_cast<int>(until * 1000) + 1;
      } else {
        wait_ms = 0;
      }
    }

    std::vector<struct pollfd> pfds(n_conns);
    for (size_t c = 0; c < n_conns; ++c) {
      pfds[c].fd = conns[c]->fd();
      pfds[c].events = conn_outstanding[c] > 0 ? POLLIN : 0;
      pfds[c].revents = 0;
    }
    int rc = poll(pfds.data(), pfds.size(), wait_ms);
    if (rc == 0 && (next_send >= n || window_blocked)) {
      return Fail(std::move(report), "timed out with " + std::to_string(n - report.received) +
                                         " responses outstanding");
    }
    for (size_t c = 0; c < n_conns && rc > 0; ++c) {
      if (!(pfds[c].revents & (POLLIN | POLLHUP | POLLERR))) {
        continue;
      }
      uint64_t seq = 0;
      Value value;
      if (!conns[c]->ReadResponse(&seq, &value, options.timeout_ms, &error)) {
        return Fail(std::move(report), "connection " + std::to_string(c) + ": " + error);
      }
      if (!record_response(c, seq, std::move(value), Clock::now())) {
        return Fail(std::move(report),
                    "connection " + std::to_string(c) +
                        ": mismatched, duplicate, or out-of-range seq " + std::to_string(seq));
      }
    }
  }
  report.wall_seconds = Seconds(start, Clock::now());
  if (options.send_shutdown && !conns[0]->SendShutdown(n_conns, &error)) {
    return Fail(std::move(report), "shutdown frame: " + error);
  }
  report.ok = true;
  return report;
}

}  // namespace karousos
