#include "src/workload/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace karousos {

namespace {

const char* kDays[] = {"mon", "tue", "wed", "thu", "fri", "sat", "sun", "every"};

std::vector<Value> GenerateMotd(const WorkloadConfig& config, uint64_t write_percent) {
  Rng rng(config.seed ^ 0x6d6f7464);
  std::vector<Value> out;
  out.reserve(config.requests);
  for (size_t i = 0; i < config.requests; ++i) {
    const char* day = kDays[rng.Below(8)];
    if (rng.Percent(write_percent)) {
      // Realistic message bodies (a few hundred bytes): large written values
      // are what make write-heavy MOTD expensive to verify — each logged
      // write is stored in the variable log and the verifier's value
      // dictionary (§6.2).
      std::string msg = "msg-" + std::to_string(rng.Below(100000)) + " ";
      msg.append(1400, static_cast<char>('a' + rng.Below(26)));
      out.push_back(MakeMap({{"op", "set"}, {"day", day}, {"msg", Value(std::move(msg))}}));
    } else {
      out.push_back(MakeMap({{"op", "get"}, {"day", day}}));
    }
  }
  return out;
}

std::vector<Value> GenerateStacks(const WorkloadConfig& config, uint64_t write_percent) {
  Rng rng(config.seed ^ 0x737461636b);
  std::vector<Value> out;
  out.reserve(config.requests);
  std::vector<std::string> known_dumps;
  uint64_t fresh = 0;
  for (size_t i = 0; i < config.requests; ++i) {
    if (rng.Percent(write_percent) || known_dumps.empty()) {
      // 10% of submits report a new dump, 90% a previously reported one.
      std::string dump;
      if (known_dumps.empty() || rng.Percent(10)) {
        dump = "stack#" + std::to_string(++fresh) + " at frame " + std::to_string(rng.Below(64));
        known_dumps.push_back(dump);
      } else {
        dump = known_dumps[rng.Below(known_dumps.size())];
      }
      out.push_back(MakeMap({{"op", "submit"}, {"dump", Value(dump)}}));
    } else if (rng.Percent(75) && !known_dumps.empty()) {
      out.push_back(MakeMap(
          {{"op", "count"}, {"dump", Value(known_dumps[rng.Below(known_dumps.size())])}}));
    } else {
      out.push_back(MakeMap({{"op", "list"}}));
    }
  }
  return out;
}

std::vector<Value> GenerateWiki(const WorkloadConfig& config) {
  Rng rng(config.seed ^ 0x77696b69);
  std::vector<Value> out;
  out.reserve(config.requests);
  std::vector<std::string> pages;
  uint64_t next_page = 0;
  for (size_t i = 0; i < config.requests; ++i) {
    Value conn(static_cast<int64_t>(
        config.connections > 0 ? static_cast<int64_t>(i) % config.connections : 0));
    uint64_t roll = rng.Below(100);
    if (roll < 25 || pages.empty()) {
      std::string id = "p" + std::to_string(++next_page);
      pages.push_back(id);
      out.push_back(MakeMap({{"op", "create_page"},
                             {"id", Value(id)},
                             {"title", Value("Title " + id)},
                             {"content", Value("Contents of " + id)},
                             {"conn", conn}}));
    } else if (roll < 40) {
      out.push_back(MakeMap({{"op", "create_comment"},
                             {"page", Value(pages[rng.Below(pages.size())])},
                             {"text", Value("comment " + std::to_string(i))},
                             {"conn", conn}}));
    } else {
      out.push_back(MakeMap({{"op", "render"},
                             {"page", Value(pages[rng.Below(pages.size())])},
                             {"conn", conn}}));
    }
  }
  return out;
}

// Auction: opens every item up front, closes each at the end, and in between
// races bids on Zipf-popular items. The bid share follows the workload kind
// (bids are the writes), so read-heavy vs write-heavy sweeps apply here too.
std::vector<Value> GenerateAuction(const WorkloadConfig& config, uint64_t bid_percent) {
  Rng rng(config.seed ^ 0x61756374696f6e);
  std::vector<Value> out;
  out.reserve(config.requests);
  size_t items = config.hot_items > 0 ? static_cast<size_t>(config.hot_items) : 1;
  ZipfSampler zipf(items, config.zipf_theta);
  int bidders = config.connections > 0 ? config.connections : 1;
  // Every item is opened first and closed last so the contended middle of the
  // stream always targets live rows.
  size_t opens = std::min(items, config.requests);
  for (size_t i = 0; i < opens; ++i) {
    out.push_back(MakeMap({{"op", "open"}, {"item", Value(static_cast<int64_t>(i))}}));
  }
  size_t closes = config.requests > opens ? std::min(items, config.requests - opens) : 0;
  size_t middle = config.requests - opens - closes;
  for (size_t i = 0; i < middle; ++i) {
    Value item(static_cast<int64_t>(zipf.Sample(rng)));
    if (rng.Percent(bid_percent)) {
      out.push_back(
          MakeMap({{"op", "bid"},
                   {"item", item},
                   {"amount", Value(rng.Range(1, 1000))},
                   {"bidder", Value("c" + std::to_string(rng.Below(
                                              static_cast<uint64_t>(bidders))))}}));
    } else {
      // Split the read share: mostly queries, then verifies (the isolation
      // probe), then full listings.
      uint64_t roll = rng.Below(100);
      if (roll < 48) {
        out.push_back(MakeMap({{"op", "query"}, {"item", item}}));
      } else if (roll < 79) {
        out.push_back(MakeMap({{"op", "verify"}, {"item", item}}));
      } else {
        out.push_back(MakeMap({{"op", "list"}}));
      }
    }
  }
  for (size_t i = 0; i < closes; ++i) {
    out.push_back(MakeMap({{"op", "close"}, {"item", Value(static_cast<int64_t>(i))}}));
  }
  return out;
}

// Mixed-apps: per-app sub-streams (auction-heavy, since it is the contention
// driver) wrapped in {"app","req"} envelopes and interleaved by weighted
// lottery over the apps' remaining requests — deterministic given the seed,
// and each sub-stream keeps its own generator's shape.
std::vector<Value> GenerateMixedApps(const WorkloadConfig& config) {
  size_t n = config.requests;
  size_t n_auction = n * 40 / 100;
  size_t n_stacks = n * 25 / 100;
  size_t n_wiki = n * 20 / 100;
  size_t n_motd = n - n_auction - n_stacks - n_wiki;
  WorkloadConfig sub = config;
  struct Stream {
    const char* app;
    std::vector<Value> reqs;
    size_t next = 0;
  };
  Stream streams[4];
  sub.app = "auction";
  sub.kind = WorkloadKind::kAuctionMix;
  sub.requests = n_auction;
  sub.seed = config.seed ^ 0xa1;
  streams[0] = Stream{"auction", GenerateWorkload(sub)};
  sub.app = "stacks";
  sub.kind = WorkloadKind::kMixed;
  sub.requests = n_stacks;
  sub.seed = config.seed ^ 0xa2;
  streams[1] = Stream{"stacks", GenerateWorkload(sub)};
  sub.app = "wiki";
  sub.kind = WorkloadKind::kWikiMix;
  sub.requests = n_wiki;
  sub.seed = config.seed ^ 0xa3;
  streams[2] = Stream{"wiki", GenerateWorkload(sub)};
  sub.app = "motd";
  sub.kind = WorkloadKind::kMixed;
  sub.requests = n_motd;
  sub.seed = config.seed ^ 0xa4;
  streams[3] = Stream{"motd", GenerateWorkload(sub)};

  Rng rng(config.seed ^ 0x6d6978);
  std::vector<Value> out;
  out.reserve(n);
  while (out.size() < n) {
    size_t remaining = 0;
    for (const Stream& s : streams) {
      remaining += s.reqs.size() - s.next;
    }
    if (remaining == 0) {
      break;
    }
    uint64_t pick = rng.Below(remaining);
    for (Stream& s : streams) {
      size_t left = s.reqs.size() - s.next;
      if (pick < left) {
        out.push_back(
            MakeMap({{"app", Value(s.app)}, {"req", std::move(s.reqs[s.next])}}));
        ++s.next;
        break;
      }
      pick -= left;
    }
  }
  return out;
}

}  // namespace

ZipfSampler::ZipfSampler(size_t n, double theta) {
  cdf_.reserve(n == 0 ? 1 : n);
  double total = 0.0;
  for (size_t k = 0; k < std::max<size_t>(n, 1); ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) {
    c /= total;
  }
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kReadHeavy:
      return "90% reads";
    case WorkloadKind::kWriteHeavy:
      return "90% writes";
    case WorkloadKind::kMixed:
      return "mixed";
    case WorkloadKind::kWikiMix:
      return "wiki mix";
    case WorkloadKind::kAuctionMix:
      return "auction mix";
    case WorkloadKind::kMixedApps:
      return "mixed apps";
  }
  return "?";
}

const char* ArrivalPatternName(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kClosed:
      return "closed";
    case ArrivalPattern::kUniform:
      return "uniform";
    case ArrivalPattern::kBursty:
      return "bursty";
    case ArrivalPattern::kDiurnal:
      return "diurnal";
  }
  return "?";
}

std::vector<Value> GenerateWorkload(const WorkloadConfig& config) {
  uint64_t write_percent = 50;
  switch (config.kind) {
    case WorkloadKind::kReadHeavy:
      write_percent = 10;
      break;
    case WorkloadKind::kWriteHeavy:
      write_percent = 90;
      break;
    case WorkloadKind::kMixed:
      write_percent = 50;
      break;
    case WorkloadKind::kWikiMix:
      break;
    case WorkloadKind::kAuctionMix:
      write_percent = 62;
      break;
    case WorkloadKind::kMixedApps:
      break;
  }
  if (config.app == "motd") {
    return GenerateMotd(config, write_percent);
  }
  if (config.app == "stacks") {
    return GenerateStacks(config, write_percent);
  }
  if (config.app == "wiki") {
    return GenerateWiki(config);
  }
  if (config.app == "auction") {
    return GenerateAuction(config, write_percent);
  }
  if (config.app == "mixed") {
    return GenerateMixedApps(config);
  }
  std::fprintf(stderr, "unknown workload app '%s'\n", config.app.c_str());
  std::abort();
}

OpenLoopWorkload GenerateOpenLoop(const WorkloadConfig& config) {
  OpenLoopWorkload out;
  out.inputs = GenerateWorkload(config);
  if (config.arrival == ArrivalPattern::kClosed) {
    return out;
  }
  Rng rng(config.seed ^ 0x6172726976);
  out.arrival_seconds.reserve(out.inputs.size());
  double rate = config.mean_rate > 0 ? config.mean_rate : 1.0;
  double factor = config.burst_factor > 1.0 ? config.burst_factor : 1.0;
  size_t phase = config.phase_requests > 0 ? config.phase_requests : 1;
  double t = 0.0;
  for (size_t i = 0; i < out.inputs.size(); ++i) {
    double r = rate;
    switch (config.arrival) {
      case ArrivalPattern::kClosed:
      case ArrivalPattern::kUniform:
        break;
      case ArrivalPattern::kBursty:
        // On/off phases: bursts at rate*f, troughs at rate/f.
        r = ((i / phase) % 2 == 0) ? rate * factor : rate / factor;
        break;
      case ArrivalPattern::kDiurnal: {
        // One "day" spans four phases; rate swings ±80% around the mean.
        double cycle = static_cast<double>(phase) * 4.0;
        double angle = 2.0 * M_PI * static_cast<double>(i) / cycle;
        r = rate * (1.0 + 0.8 * std::sin(angle));
        if (r < rate * 0.05) {
          r = rate * 0.05;
        }
        break;
      }
    }
    // Exponential interarrival at the current instantaneous rate (clamp the
    // uniform away from 0 so log() stays finite).
    double u = rng.NextDouble();
    if (u < 1e-12) {
      u = 1e-12;
    }
    t += -std::log(u) / r;
    out.arrival_seconds.push_back(t);
  }
  return out;
}

}  // namespace karousos
