#include "src/workload/workload.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/rng.h"

namespace karousos {

namespace {

const char* kDays[] = {"mon", "tue", "wed", "thu", "fri", "sat", "sun", "every"};

std::vector<Value> GenerateMotd(const WorkloadConfig& config, uint64_t write_percent) {
  Rng rng(config.seed ^ 0x6d6f7464);
  std::vector<Value> out;
  out.reserve(config.requests);
  for (size_t i = 0; i < config.requests; ++i) {
    const char* day = kDays[rng.Below(8)];
    if (rng.Percent(write_percent)) {
      // Realistic message bodies (a few hundred bytes): large written values
      // are what make write-heavy MOTD expensive to verify — each logged
      // write is stored in the variable log and the verifier's value
      // dictionary (§6.2).
      std::string msg = "msg-" + std::to_string(rng.Below(100000)) + " ";
      msg.append(1400, static_cast<char>('a' + rng.Below(26)));
      out.push_back(MakeMap({{"op", "set"}, {"day", day}, {"msg", Value(std::move(msg))}}));
    } else {
      out.push_back(MakeMap({{"op", "get"}, {"day", day}}));
    }
  }
  return out;
}

std::vector<Value> GenerateStacks(const WorkloadConfig& config, uint64_t write_percent) {
  Rng rng(config.seed ^ 0x737461636b);
  std::vector<Value> out;
  out.reserve(config.requests);
  std::vector<std::string> known_dumps;
  uint64_t fresh = 0;
  for (size_t i = 0; i < config.requests; ++i) {
    if (rng.Percent(write_percent) || known_dumps.empty()) {
      // 10% of submits report a new dump, 90% a previously reported one.
      std::string dump;
      if (known_dumps.empty() || rng.Percent(10)) {
        dump = "stack#" + std::to_string(++fresh) + " at frame " + std::to_string(rng.Below(64));
        known_dumps.push_back(dump);
      } else {
        dump = known_dumps[rng.Below(known_dumps.size())];
      }
      out.push_back(MakeMap({{"op", "submit"}, {"dump", Value(dump)}}));
    } else if (rng.Percent(75) && !known_dumps.empty()) {
      out.push_back(MakeMap(
          {{"op", "count"}, {"dump", Value(known_dumps[rng.Below(known_dumps.size())])}}));
    } else {
      out.push_back(MakeMap({{"op", "list"}}));
    }
  }
  return out;
}

std::vector<Value> GenerateWiki(const WorkloadConfig& config) {
  Rng rng(config.seed ^ 0x77696b69);
  std::vector<Value> out;
  out.reserve(config.requests);
  std::vector<std::string> pages;
  uint64_t next_page = 0;
  for (size_t i = 0; i < config.requests; ++i) {
    Value conn(static_cast<int64_t>(
        config.connections > 0 ? static_cast<int64_t>(i) % config.connections : 0));
    uint64_t roll = rng.Below(100);
    if (roll < 25 || pages.empty()) {
      std::string id = "p" + std::to_string(++next_page);
      pages.push_back(id);
      out.push_back(MakeMap({{"op", "create_page"},
                             {"id", Value(id)},
                             {"title", Value("Title " + id)},
                             {"content", Value("Contents of " + id)},
                             {"conn", conn}}));
    } else if (roll < 40) {
      out.push_back(MakeMap({{"op", "create_comment"},
                             {"page", Value(pages[rng.Below(pages.size())])},
                             {"text", Value("comment " + std::to_string(i))},
                             {"conn", conn}}));
    } else {
      out.push_back(MakeMap({{"op", "render"},
                             {"page", Value(pages[rng.Below(pages.size())])},
                             {"conn", conn}}));
    }
  }
  return out;
}

}  // namespace

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kReadHeavy:
      return "90% reads";
    case WorkloadKind::kWriteHeavy:
      return "90% writes";
    case WorkloadKind::kMixed:
      return "mixed";
    case WorkloadKind::kWikiMix:
      return "wiki mix";
  }
  return "?";
}

std::vector<Value> GenerateWorkload(const WorkloadConfig& config) {
  uint64_t write_percent = 50;
  switch (config.kind) {
    case WorkloadKind::kReadHeavy:
      write_percent = 10;
      break;
    case WorkloadKind::kWriteHeavy:
      write_percent = 90;
      break;
    case WorkloadKind::kMixed:
      write_percent = 50;
      break;
    case WorkloadKind::kWikiMix:
      break;
  }
  if (config.app == "motd") {
    return GenerateMotd(config, write_percent);
  }
  if (config.app == "stacks") {
    return GenerateStacks(config, write_percent);
  }
  if (config.app == "wiki") {
    return GenerateWiki(config);
  }
  std::fprintf(stderr, "unknown workload app '%s'\n", config.app.c_str());
  std::abort();
}

}  // namespace karousos
