#include "src/common/pool.h"

namespace karousos {

unsigned WorkStealingPool::ResolveThreads(unsigned requested) {
  if (requested != 0) {
    return requested;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

WorkStealingPool::WorkStealingPool(unsigned threads) {
  if (threads == 0) {
    threads = 1;
  }
  queues_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(threads - 1);
  for (unsigned i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(job_mu_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

bool WorkStealingPool::PopOwn(size_t worker, size_t* out) {
  Queue& q = *queues_[worker];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.items.empty()) {
    return false;
  }
  *out = q.items.front();
  q.items.pop_front();
  return true;
}

bool WorkStealingPool::Steal(size_t thief, size_t* out) {
  for (size_t offset = 1; offset < queues_.size(); ++offset) {
    Queue& victim = *queues_[(thief + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.items.empty()) {
      *out = victim.items.back();
      victim.items.pop_back();
      return true;
    }
  }
  return false;
}

void WorkStealingPool::DrainJob(size_t worker) {
  size_t index = 0;
  while (PopOwn(worker, &index) || Steal(worker, &index)) {
    // Read the live job function under the lock: a worker that raced past the
    // end of the previous job may claim an index of the next one, and must
    // run it with the next job's function, not a stale pointer.
    const std::function<void(size_t)>* fn = nullptr;
    {
      std::lock_guard<std::mutex> lock(job_mu_);
      fn = job_fn_;
    }
    (*fn)(index);
    {
      std::lock_guard<std::mutex> lock(job_mu_);
      if (--job_pending_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void WorkStealingPool::WorkerMain(size_t worker) {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(job_mu_);
      job_cv_.wait(lock, [&] { return shutdown_ || job_epoch_ != seen_epoch; });
      if (shutdown_) {
        return;
      }
      seen_epoch = job_epoch_;
    }
    DrainJob(worker);
  }
}

void WorkStealingPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (queues_.size() == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  {
    // Publish the job BEFORE any index becomes visible, all under job_mu_: a
    // worker still draining the tail of the previous job can legally claim an
    // index of this one, and the fn read in DrainJob must then observe the
    // new function, never a stale or null pointer.
    std::lock_guard<std::mutex> lock(job_mu_);
    job_fn_ = &fn;
    job_pending_ = n;
    ++job_epoch_;
    // Deal indices round-robin so every participant starts with a fair
    // share and stealing only kicks in on skew.
    for (size_t i = 0; i < n; ++i) {
      Queue& q = *queues_[i % queues_.size()];
      std::lock_guard<std::mutex> qlock(q.mu);
      q.items.push_back(i);
    }
  }
  job_cv_.notify_all();
  DrainJob(0);
  std::unique_lock<std::mutex> lock(job_mu_);
  done_cv_.wait(lock, [&] { return job_pending_ == 0; });
  job_fn_ = nullptr;
}

}  // namespace karousos
