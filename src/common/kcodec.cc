#include "src/common/kcodec.h"

#include <cstring>

namespace karousos {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
// Hash-chain matcher: 15-bit head table, bounded walk per position. Deep
// enough to find the long repeats that dominate advice payloads (digest
// tables, repeated keys) without quadratic blowup on pathological input.
constexpr size_t kHashBits = 15;
constexpr int kMaxChainDepth = 32;
// A stored byte can contribute at most a 255-run extension byte's worth of
// output, so decoded_size has a hard structural ceiling relative to the
// stored size; anything above it is forged.
constexpr uint64_t kMaxExpansion = 255;

uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t HashOf(uint32_t v) { return (v * 2654435761u) >> (32 - kHashBits); }

// One sequence: literals then (unless final) a back-reference.
void EmitSequence(const uint8_t* literals, size_t literal_len, size_t match_len, size_t offset,
                  std::vector<uint8_t>* out) {
  const size_t match_code = match_len == 0 ? 0 : match_len - kMinMatch;
  const uint8_t lit_nibble = literal_len >= 15 ? 15 : static_cast<uint8_t>(literal_len);
  const uint8_t match_nibble = match_code >= 15 ? 15 : static_cast<uint8_t>(match_code);
  out->push_back(static_cast<uint8_t>((lit_nibble << 4) | match_nibble));
  if (literal_len >= 15) {
    size_t rest = literal_len - 15;
    while (rest >= 255) {
      out->push_back(255);
      rest -= 255;
    }
    out->push_back(static_cast<uint8_t>(rest));
  }
  out->insert(out->end(), literals, literals + literal_len);
  if (match_len != 0) {
    out->push_back(static_cast<uint8_t>(offset & 0xff));
    out->push_back(static_cast<uint8_t>(offset >> 8));
    if (match_code >= 15) {
      size_t rest = match_code - 15;
      while (rest >= 255) {
        out->push_back(255);
        rest -= 255;
      }
      out->push_back(static_cast<uint8_t>(rest));
    }
  }
}

}  // namespace

void BlockCompress(const uint8_t* data, size_t size, std::vector<uint8_t>* out) {
  if (size == 0) {
    return;
  }
  std::vector<int64_t> head(size_t{1} << kHashBits, -1);
  std::vector<int64_t> chain(size, -1);
  size_t anchor = 0;
  size_t i = 0;
  while (i + kMinMatch <= size) {
    const uint32_t h = HashOf(Load32(data + i));
    int64_t cand = head[h];
    size_t best_len = 0;
    size_t best_offset = 0;
    int depth = 0;
    while (cand >= 0 && depth < kMaxChainDepth &&
           i - static_cast<size_t>(cand) <= kMaxOffset) {
      const uint8_t* p = data + cand;
      const uint8_t* q = data + i;
      const size_t max_len = size - i;
      size_t len = 0;
      while (len < max_len && p[len] == q[len]) {
        ++len;
      }
      if (len >= kMinMatch && len > best_len) {
        best_len = len;
        best_offset = i - static_cast<size_t>(cand);
      }
      cand = chain[static_cast<size_t>(cand)];
      ++depth;
    }
    if (best_len >= kMinMatch) {
      EmitSequence(data + anchor, i - anchor, best_len, best_offset, out);
      const size_t end = i + best_len;
      for (; i < end && i + kMinMatch <= size; ++i) {
        const uint32_t hh = HashOf(Load32(data + i));
        chain[i] = head[hh];
        head[hh] = static_cast<int64_t>(i);
      }
      i = end;
      anchor = end;
    } else {
      chain[i] = head[h];
      head[h] = static_cast<int64_t>(i);
      ++i;
    }
  }
  // Final literals-only sequence (always present, possibly empty): the
  // decoder's terminator.
  EmitSequence(data + anchor, size - anchor, 0, 0, out);
}

std::optional<std::vector<uint8_t>> BlockDecompress(const uint8_t* data, size_t size,
                                                    size_t decoded_size) {
  std::vector<uint8_t> out;
  out.reserve(decoded_size);
  size_t pos = 0;
  if (decoded_size == 0) {
    return size == 0 ? std::optional<std::vector<uint8_t>>(std::move(out)) : std::nullopt;
  }
  // The stream must end with a literals-only final sequence (possibly empty);
  // ending on a match means the terminator was truncated away.
  bool terminated = false;
  while (pos < size) {
    const uint8_t token = data[pos++];
    size_t literal_len = token >> 4;
    if (literal_len == 15) {
      uint8_t b;
      do {
        if (pos >= size) {
          return std::nullopt;
        }
        b = data[pos++];
        literal_len += b;
      } while (b == 255);
    }
    if (literal_len > size - pos || out.size() + literal_len > decoded_size) {
      return std::nullopt;
    }
    out.insert(out.end(), data + pos, data + pos + literal_len);
    pos += literal_len;
    if (pos == size) {
      // Final sequence: literals only.
      if ((token & 0x0f) != 0) {
        return std::nullopt;
      }
      terminated = true;
      break;
    }
    if (size - pos < 2) {
      return std::nullopt;
    }
    const size_t offset =
        static_cast<size_t>(data[pos]) | (static_cast<size_t>(data[pos + 1]) << 8);
    pos += 2;
    if (offset == 0 || offset > out.size()) {
      return std::nullopt;
    }
    size_t match_len = token & 0x0f;
    if (match_len == 15) {
      uint8_t b;
      do {
        if (pos >= size) {
          return std::nullopt;
        }
        b = data[pos++];
        match_len += b;
      } while (b == 255);
    }
    match_len += kMinMatch;
    if (out.size() + match_len > decoded_size) {
      return std::nullopt;
    }
    // Byte-by-byte so overlapping matches (offset < match_len) replicate,
    // exactly as the encoder's greedy matcher assumes.
    size_t from = out.size() - offset;
    for (size_t k = 0; k < match_len; ++k) {
      out.push_back(out[from + k]);
    }
  }
  if (!terminated || out.size() != decoded_size) {
    return std::nullopt;
  }
  return out;
}

std::vector<uint8_t> BlockFrameEncode(const uint8_t* data, size_t size) {
  ByteWriter prefix;
  prefix.WriteVarint(size);
  std::vector<uint8_t> out = prefix.Take();
  BlockCompress(data, size, &out);
  return out;
}

std::optional<std::vector<uint8_t>> BlockFrameDecode(const uint8_t* data, size_t size) {
  ByteReader reader(data, size);
  auto decoded_size = reader.ReadVarint();
  if (!decoded_size) {
    return std::nullopt;
  }
  const size_t body = reader.remaining();
  if (*decoded_size > kMaxExpansion * static_cast<uint64_t>(body) + 64) {
    return std::nullopt;  // Forged size: no honest stream expands this much.
  }
  return BlockDecompress(data + (size - body), body, static_cast<size_t>(*decoded_size));
}

std::optional<std::vector<uint64_t>> ReadU64Dict(ByteReader* in) {
  auto count = in->ReadVarint();
  if (!count || *count > in->remaining() / 8) {
    return std::nullopt;
  }
  std::vector<uint64_t> dict;
  dict.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    auto v = in->ReadFixed64();
    if (!v) {
      return std::nullopt;
    }
    dict.push_back(*v);
  }
  return dict;
}

std::optional<std::vector<std::string>> ReadStringDict(ByteReader* in) {
  auto count = in->ReadVarint();
  if (!count || *count > in->remaining()) {
    return std::nullopt;
  }
  std::vector<std::string> dict;
  dict.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    auto s = in->ReadString();
    if (!s) {
      return std::nullopt;
    }
    dict.push_back(std::move(*s));
  }
  return dict;
}

}  // namespace karousos
