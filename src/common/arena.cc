#include "src/common/arena.h"

#include <algorithm>

namespace karousos {

void Arena::ActivateBlock(size_t index, size_t min_bytes) {
  if (index == blocks_.size()) {
    Block block;
    block.size = std::max(block_bytes_, min_bytes);
    block.data = std::make_unique<uint8_t[]>(block.size);
    bytes_reserved_ += block.size;
    blocks_.push_back(std::move(block));
  }
  current_ = index;
  offset_ = 0;
}

void* Arena::Allocate(size_t bytes, size_t align) {
  if (bytes == 0) {
    bytes = 1;  // Distinct non-null pointers, mirroring operator new.
  }
  if (blocks_.empty()) {
    ActivateBlock(0, bytes);
  }
  size_t aligned = (offset_ + align - 1) & ~(align - 1);
  if (aligned + bytes > blocks_[current_].size) {
    // Reuse the next retained block if the request fits (blocks after a
    // Reset), otherwise append a fresh one. Oversized requests that land on
    // an undersized retained block skip it — wasting its tail is cheaper
    // than shuffling the block list.
    size_t next = current_ + 1;
    while (next < blocks_.size() && blocks_[next].size < bytes) {
      ++next;
    }
    ActivateBlock(next, bytes);
    aligned = 0;  // Fresh blocks are max_align-aligned by operator new[].
  }
  offset_ = aligned + bytes;
  bytes_allocated_ += bytes;
  return blocks_[current_].data.get() + aligned;
}

void Arena::Reset() {
  current_ = 0;
  offset_ = 0;
}

}  // namespace karousos
