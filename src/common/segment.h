// Versioned, CRC-checked, length-framed segment container for epoch-sliced
// audit inputs. The collector emits the trace and the advice as a sequence of
// epoch segments instead of two monolithic blobs, and the verifier's
// AuditSession consumes them one epoch at a time — the streaming reader holds
// exactly one frame payload resident.
//
// File layout:
//   magic "KSEG" (4 bytes) | format version (1 byte) | frame*
// Frame layout (v1):
//   kind (1 byte) | epoch (varint) | payload length (varint)
//   | payload CRC-32 (fixed32, little-endian) | payload bytes
// Frame layout (v2): identical except a flags byte follows the kind byte:
//   kind (1 byte) | flags (1 byte) | epoch (varint) | ...
// The flags byte names the storage-class codec stages applied to the payload
// (src/common/kcodec.h); the CRC covers the stored (post-codec) bytes. A
// reader that understands only v1 rejects every v2 container through the
// format-version check, so flagged frames can never be misread as raw; a v2
// reader rejects any flag bit it does not know.
//
// Every decode failure is a diagnostic string, never a crash: a corrupted or
// truncated segment file is indistinguishable from server misbehavior and the
// audit must reject it cleanly.
#ifndef SRC_COMMON_SEGMENT_H_
#define SRC_COMMON_SEGMENT_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

namespace karousos {

inline constexpr char kSegmentMagic[4] = {'K', 'S', 'E', 'G'};
inline constexpr uint8_t kSegmentFormatVersion = 1;
// v2 adds the per-frame flags byte. Raw (uncompressed) streams stay v1 so
// their bytes — pinned by the record-golden fixtures — are untouched.
inline constexpr uint8_t kSegmentFormatVersionV2 = 2;

enum class SegmentKind : uint8_t {
  kTrace = 1,          // One epoch's slice of the request/response trace.
  kAdvice = 2,         // One epoch's advice slice + continuity imports.
  kCheckpoint = 3,     // A serialized AuditSession CarryState.
  kShardBoundary = 4,  // Cross-shard boundary manifest (src/server/shard.h).
  kShardArtifact = 5,  // A shard's exported verdict state (src/verifier/shard_audit.h).
};

const char* SegmentKindName(SegmentKind kind);

struct SegmentRecord {
  SegmentKind kind = SegmentKind::kTrace;
  uint8_t flags = 0;           // Codec stages applied to payload (v2; 0 in v1).
  uint64_t epoch = 0;
  uint32_t crc = 0;            // Stored CRC (always matches payload on success).
  uint64_t offset = 0;         // Byte offset of the frame header in the file.
  std::vector<uint8_t> payload;
};

// Appends frames to an in-memory buffer, and optionally streams each frame to
// a file as it is appended (so an indefinitely-running collector never holds
// more than the current epoch in memory).
class SegmentWriter {
 public:
  // In-memory only; `format_version` selects v1 (no frame flags) or v2.
  explicit SegmentWriter(uint8_t format_version = kSegmentFormatVersion);
  // Streams to `path`; check ok() after construction.
  explicit SegmentWriter(const std::string& path,
                         uint8_t format_version = kSegmentFormatVersion);

  void Append(SegmentKind kind, uint64_t epoch, const std::vector<uint8_t>& payload);
  // v2 form: nonzero flags require a v2 writer (error otherwise).
  void Append(SegmentKind kind, uint64_t epoch, uint8_t flags,
              const std::vector<uint8_t>& payload);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  // The full container bytes (header + all frames). Only meaningful in
  // in-memory mode; in file mode frames are flushed as they are appended and
  // the buffer holds the same bytes unless `Append` is called after `Take`.
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
  std::ofstream file_;
  bool to_file_ = false;
  uint8_t version_ = kSegmentFormatVersion;
  std::string error_;
};

// Streaming reader: validates the header eagerly, then yields one frame per
// Next() call. Only the current frame's payload is resident.
class SegmentReader {
 public:
  // Opens `path`; on failure returns nullptr and sets *error.
  static std::unique_ptr<SegmentReader> OpenFile(const std::string& path, std::string* error);
  // Reads from an in-memory buffer (the buffer must outlive the reader); on a
  // malformed header returns nullptr and sets *error.
  static std::unique_ptr<SegmentReader> FromBytes(const uint8_t* data, size_t size,
                                                  std::string* error);

  // True and fills *out when a frame was read. False at clean end-of-file or
  // on error; distinguish with ok()/error().
  bool Next(SegmentRecord* out);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  uint8_t format_version() const { return version_; }

 private:
  SegmentReader() = default;
  bool ReadHeader(std::string* error);
  bool Pull(uint8_t* dest, size_t n, size_t* got);
  bool PullByte(uint8_t* b);
  bool PullVarint(uint64_t* v, const char* what, uint64_t frame_offset);
  void Fail(std::string msg) { error_ = std::move(msg); }

  std::ifstream file_;
  bool from_file_ = false;
  const uint8_t* mem_ = nullptr;
  size_t mem_size_ = 0;
  size_t pos_ = 0;  // Bytes consumed so far (both modes).
  uint8_t version_ = kSegmentFormatVersion;
  std::string error_;
};

// True iff the buffer starts with the segment container magic — used by the
// CLI to sniff segmented vs monolithic input files.
bool LooksLikeSegmentFile(const std::vector<uint8_t>& bytes);

}  // namespace karousos

#endif  // SRC_COMMON_SEGMENT_H_
