#include "src/common/value.h"

#include <sstream>

#include "src/common/digest.h"

namespace karousos {

namespace {

const Value kNullValue{};

void AppendJson(const Value& v, std::ostringstream& out) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      out << "null";
      break;
    case Value::Kind::kBool:
      out << (v.AsBool() ? "true" : "false");
      break;
    case Value::Kind::kInt:
      out << v.AsInt();
      break;
    case Value::Kind::kDouble:
      out << v.AsDouble();
      break;
    case Value::Kind::kString:
      out << '"';
      for (char c : v.AsString()) {
        if (c == '"' || c == '\\') {
          out << '\\';
        }
        out << c;
      }
      out << '"';
      break;
    case Value::Kind::kList: {
      out << '[';
      bool first = true;
      for (const Value& item : v.AsList()) {
        if (!first) {
          out << ',';
        }
        first = false;
        AppendJson(item, out);
      }
      out << ']';
      break;
    }
    case Value::Kind::kMap: {
      out << '{';
      bool first = true;
      for (const auto& [key, item] : v.AsMap()) {
        if (!first) {
          out << ',';
        }
        first = false;
        out << '"' << key << "\":";
        AppendJson(item, out);
      }
      out << '}';
      break;
    }
  }
}

void DigestInto(const Value& v, Digest& d) {
  d.Update(static_cast<uint64_t>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kBool:
      d.Update(static_cast<uint64_t>(v.AsBool()));
      break;
    case Value::Kind::kInt:
      d.Update(static_cast<uint64_t>(v.AsInt()));
      break;
    case Value::Kind::kDouble: {
      double x = v.AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(x));
      __builtin_memcpy(&bits, &x, sizeof(bits));
      d.Update(bits);
      break;
    }
    case Value::Kind::kString:
      d.Update(v.AsString());
      break;
    case Value::Kind::kList:
      d.Update(static_cast<uint64_t>(v.AsList().size()));
      for (const Value& item : v.AsList()) {
        DigestInto(item, d);
      }
      break;
    case Value::Kind::kMap:
      d.Update(static_cast<uint64_t>(v.AsMap().size()));
      for (const auto& [key, item] : v.AsMap()) {
        d.Update(key);
        DigestInto(item, d);
      }
      break;
  }
}

}  // namespace

bool Value::Truthy() const {
  switch (kind()) {
    case Kind::kNull:
      return false;
    case Kind::kBool:
      return AsBool();
    case Kind::kInt:
      return AsInt() != 0;
    case Kind::kDouble:
      return AsDouble() != 0.0;
    case Kind::kString:
      return !AsString().empty();
    case Kind::kList:
      return !AsList().empty();
    case Kind::kMap:
      return !AsMap().empty();
  }
  return false;
}

const Value& Value::Field(std::string_view key) const {
  if (!is_map()) {
    return kNullValue;
  }
  auto it = AsMap().find(std::string(key));
  return it == AsMap().end() ? kNullValue : it->second;
}

bool Value::HasField(std::string_view key) const {
  return is_map() && AsMap().count(std::string(key)) > 0;
}

uint64_t Value::DigestValue() const {
  Digest d;
  DigestInto(*this, d);
  return d.Finish();
}

std::string Value::ToString() const {
  std::ostringstream out;
  AppendJson(*this, out);
  return out.str();
}

bool operator<(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) {
    return static_cast<int>(a.kind()) < static_cast<int>(b.kind());
  }
  switch (a.kind()) {
    case Value::Kind::kNull:
      return false;
    case Value::Kind::kBool:
      return a.AsBool() < b.AsBool();
    case Value::Kind::kInt:
      return a.AsInt() < b.AsInt();
    case Value::Kind::kDouble:
      return a.AsDouble() < b.AsDouble();
    case Value::Kind::kString:
      return a.AsString() < b.AsString();
    case Value::Kind::kList:
      return a.AsList() < b.AsList();
    case Value::Kind::kMap:
      return a.AsMap() < b.AsMap();
  }
  return false;
}

Value MakeList(std::initializer_list<Value> items) { return Value(ValueList(items)); }

Value MakeMap(std::initializer_list<std::pair<std::string, Value>> fields) {
  ValueMap m;
  for (const auto& [k, v] : fields) {
    m.emplace(k, v);
  }
  return Value(std::move(m));
}

}  // namespace karousos
