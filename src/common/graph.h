// Interned directed graph with iterative cycle detection.
//
// Used for the verifier's execution graph G (§4.3) and for the Adya
// dependency graph DG/DSG (§4.4). Nodes are interned from 3-tuples of 64-bit
// words, which covers both node spaces:
//   - G:  (rid, hid, opnum), with (rid, 0, 0) = request arrival and
//         (rid, 0, kOpNumInf) = response delivery;
//   - DG: (rid, tid, 0) per committed transaction.
//
// Edges accumulate in a flat edge list; adjacency is materialized lazily as a
// CSR (offset + target arrays) the first time a traversal needs it, via a
// stable counting sort. This replaces the per-node std::vector forest — one
// allocation per node plus growth churn — with two bulk arrays, while keeping
// each node's neighbor order identical to edge insertion order, so DFS
// traversal order (and therefore cycle diagnostics) is unchanged.
#ifndef SRC_COMMON_GRAPH_H_
#define SRC_COMMON_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/flat_map.h"
#include "src/common/ids.h"

namespace karousos {

struct NodeKey {
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;

  friend bool operator==(const NodeKey&, const NodeKey&) = default;

  static NodeKey ForOp(const OpRef& op) { return {op.rid, op.hid, op.opnum}; }
  static NodeKey ForRequestArrival(RequestId rid) { return {rid, 0, 0}; }
  static NodeKey ForResponseDelivery(RequestId rid) { return {rid, 0, kOpNumInf}; }
  static NodeKey ForTxn(RequestId rid, TxId tid) { return {rid, tid, 0}; }
};

struct NodeKeyHash {
  size_t operator()(const NodeKey& k) const {
    return static_cast<size_t>(HashMix64(HashMix64(SplitMix64(k.a), k.b), k.c));
  }
};

class DirectedGraph {
 public:
  using NodeId = int32_t;

  // Interns the key, creating the node if absent.
  NodeId AddNode(const NodeKey& key);

  // Returns the node id if the key has been interned, nullopt otherwise.
  std::optional<NodeId> FindNode(const NodeKey& key) const;

  bool HasNode(const NodeKey& key) const { return FindNode(key).has_value(); }

  // Adds a directed edge, interning endpoints as needed. Self-loops are kept
  // (they are cycles and must be detected). Parallel edges are deduplicated
  // lazily during cycle detection, not on insert.
  void AddEdge(const NodeKey& from, const NodeKey& to);
  void AddEdge(NodeId from, NodeId to);

  // Pre-size the intern table / edge list; callers that know the advice
  // cardinalities (the verifier's Preprocess) avoid rehash and growth churn.
  void ReserveNodes(size_t n);
  void ReserveEdges(size_t m);

  size_t node_count() const { return keys_.size(); }
  size_t edge_count() const { return edges_.size(); }

  const NodeKey& KeyOf(NodeId id) const { return keys_[static_cast<size_t>(id)]; }

  // Raw edge list in insertion order. Exposed for checkpoint serialization:
  // re-adding nodes in id order and edges in this order reconstructs a graph
  // with identical ids, traversal order, and cycle diagnostics.
  const std::vector<std::pair<NodeId, NodeId>>& edges() const { return edges_; }

  // True iff the graph contains a directed cycle. Iterative three-color DFS;
  // safe for graphs with millions of nodes (no recursion).
  bool HasCycle() const;

  // If a cycle exists, returns one cycle as a sequence of node keys
  // (first == last); otherwise returns an empty vector. For diagnostics.
  std::vector<NodeKey> FindCycle() const;

 private:
  // Rebuilds the CSR arrays if edges were added since the last build.
  void EnsureCsr() const;

  FlatMap<NodeKey, NodeId, NodeKeyHash> intern_;
  std::vector<NodeKey> keys_;
  std::vector<std::pair<NodeId, NodeId>> edges_;

  // Lazily-built CSR adjacency: neighbors of node v are
  // csr_targets_[csr_offsets_[v] .. csr_offsets_[v+1]).
  mutable std::vector<size_t> csr_offsets_;
  mutable std::vector<NodeId> csr_targets_;
  mutable size_t csr_built_edges_ = 0;
  mutable size_t csr_built_nodes_ = 0;
};

}  // namespace karousos

#endif  // SRC_COMMON_GRAPH_H_
