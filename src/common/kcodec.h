// Storage-class codecs for KSEG frame payloads.
//
// Advice bytes are the audit's dominant cost at production traffic (the paper
// reports advice size as a headline metric), and most of those bytes are
// high-entropy 64-bit digests and repeated keys. Three composable stages, each
// behind its own frame flag in the v2 segment container:
//
//   * kFrameFlagLanes — columnar delta+varint coding for the monotone and
//     near-monotone integer lanes (request ids, opnums, opcounts, tx indices):
//     first value + zigzag deltas instead of absolute varints/fixed64s.
//   * kFrameFlagDict  — per-segment dictionaries: every distinct 64-bit id
//     digest (handler/var/tx/function/event/tag) and every distinct string
//     (app keys, value strings, map keys) is written once, occurrences become
//     small varint refs. The symbol-table idiom; LabelStore already makes
//     these enumerable on the record side.
//   * kFrameFlagBlock — an LZ4-style block compressor (self-contained greedy
//     LZ77 with hash-chain matching, no external deps) applied to the whole
//     frame payload last, undone first on decode.
//
// The grammar-aware transcoder that applies lanes/dict to advice and trace
// payloads lives in src/server/kseg_codec.h; this header owns the primitives
// and the block codec. Every decoder here returns nullopt on malformed input
// — a corrupt compressed frame is indistinguishable from server misbehavior
// and must reject cleanly, never crash or over-allocate.
#ifndef SRC_COMMON_KCODEC_H_
#define SRC_COMMON_KCODEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/serde.h"

namespace karousos {

// Frame-flag bits (v2 segment container, one flags byte per frame). Readers
// reject any bit outside kFrameFlagsKnownMask; old (v1-only) readers reject
// the whole container through the existing format-version path.
inline constexpr uint8_t kFrameFlagLanes = 0x01;
inline constexpr uint8_t kFrameFlagDict = 0x02;
inline constexpr uint8_t kFrameFlagBlock = 0x04;
inline constexpr uint8_t kFrameFlagsKnownMask =
    kFrameFlagLanes | kFrameFlagDict | kFrameFlagBlock;

// Which stages a writer applies / a reader must undo. The block stage is
// advisory on encode: a frame whose payload does not shrink is stored raw
// with the flag dropped, so decode cost is only ever paid where it won.
struct KsegCompression {
  bool lanes = false;
  bool dict = false;
  bool block = false;

  bool any() const { return lanes || dict || block; }
  uint8_t Flags() const {
    return static_cast<uint8_t>((lanes ? kFrameFlagLanes : 0) | (dict ? kFrameFlagDict : 0) |
                                (block ? kFrameFlagBlock : 0));
  }
  static KsegCompression FromFlags(uint8_t flags) {
    KsegCompression c;
    c.lanes = (flags & kFrameFlagLanes) != 0;
    c.dict = (flags & kFrameFlagDict) != 0;
    c.block = (flags & kFrameFlagBlock) != 0;
    return c;
  }
  static KsegCompression All() { return KsegCompression{true, true, true}; }
};

// --- Zigzag + delta lanes ----------------------------------------------------

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t z) {
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

// One value of a delta lane: v relative to *prev as a zigzag varint; *prev
// advances to v. Monotone lanes encode as a run of tiny positive deltas;
// occasional regressions stay cheap instead of breaking the lane.
inline void WriteDelta(ByteWriter* out, uint64_t v, uint64_t* prev) {
  out->WriteVarint(ZigzagEncode(static_cast<int64_t>(v - *prev)));
  *prev = v;
}
inline std::optional<uint64_t> ReadDelta(ByteReader* in, uint64_t* prev) {
  auto z = in->ReadVarint();
  if (!z) {
    return std::nullopt;
  }
  uint64_t v = *prev + static_cast<uint64_t>(ZigzagDecode(*z));
  *prev = v;
  return v;
}

// --- Per-segment dictionaries ------------------------------------------------

// Interns 64-bit id digests in first-use order. The transcoder writes the
// body against refs first, then serializes the table ahead of it.
class U64DictBuilder {
 public:
  uint64_t Ref(uint64_t v) {
    auto [it, inserted] = index_.emplace(v, order_.size());
    if (inserted) {
      order_.push_back(v);
    }
    return it->second;
  }
  void Serialize(ByteWriter* out) const {
    out->WriteVarint(order_.size());
    for (uint64_t v : order_) {
      out->WriteFixed64(v);
    }
  }
  size_t size() const { return order_.size(); }

 private:
  std::unordered_map<uint64_t, uint64_t> index_;
  std::vector<uint64_t> order_;
};

class StringDictBuilder {
 public:
  uint64_t Ref(std::string_view s) {
    auto it = index_.find(std::string(s));
    if (it != index_.end()) {
      return it->second;
    }
    uint64_t id = order_.size();
    order_.emplace_back(s);
    index_.emplace(order_.back(), id);
    return id;
  }
  void Serialize(ByteWriter* out) const {
    out->WriteVarint(order_.size());
    for (const std::string& s : order_) {
      out->WriteString(s);
    }
  }
  size_t size() const { return order_.size(); }

 private:
  std::unordered_map<std::string, uint64_t> index_;
  std::vector<std::string> order_;
};

// Dictionary tables, decode side. Both guard the declared count against the
// bytes actually remaining, so a truncated dictionary (or a forged huge
// count) rejects before any allocation is sized from attacker input.
std::optional<std::vector<uint64_t>> ReadU64Dict(ByteReader* in);
std::optional<std::vector<std::string>> ReadStringDict(ByteReader* in);

// --- LZ4-style block codec ---------------------------------------------------

// Appends the compressed form of [data, data+size) to *out. Sequence format
// (LZ4 block idiom): token byte with literal length in the high nibble and
// (match length - 4) in the low nibble, 15 meaning "extended by 255-run
// bytes"; literal bytes; 2-byte little-endian match offset (1..65535). The
// final sequence is literals-only (match nibble 0, no offset). Greedy matcher
// over a hash-chain table, bounded chain depth — compression is one pass.
void BlockCompress(const uint8_t* data, size_t size, std::vector<uint8_t>* out);

// Decompresses exactly `decoded_size` bytes or returns nullopt. Every read
// and match copy is bounds-checked; overlapping matches copy byte-by-byte.
std::optional<std::vector<uint8_t>> BlockDecompress(const uint8_t* data, size_t size,
                                                    size_t decoded_size);

// Frame-level wrapper: [varint decoded size | sequences]. Encode returns the
// stored bytes; decode validates the declared size against a structural
// expansion bound before allocating and requires the decoded length to match
// the declaration exactly (a mismatch is a rejection, not a truncation).
std::vector<uint8_t> BlockFrameEncode(const uint8_t* data, size_t size);
inline std::vector<uint8_t> BlockFrameEncode(const std::vector<uint8_t>& payload) {
  return BlockFrameEncode(payload.data(), payload.size());
}
std::optional<std::vector<uint8_t>> BlockFrameDecode(const uint8_t* data, size_t size);
inline std::optional<std::vector<uint8_t>> BlockFrameDecode(const std::vector<uint8_t>& stored) {
  return BlockFrameDecode(stored.data(), stored.size());
}

}  // namespace karousos

#endif  // SRC_COMMON_KCODEC_H_
