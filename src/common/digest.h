// 64-bit digests used for function ids, handler ids, control-flow digests and
// request tags (§5). FNV-1a with an avalanche finalizer: not cryptographic,
// but collision-resistant enough for the id spaces involved, and — more
// importantly — bit-for-bit reproducible between the server and the verifier.
#ifndef SRC_COMMON_DIGEST_H_
#define SRC_COMMON_DIGEST_H_

#include <cstdint>
#include <string_view>

namespace karousos {

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

// SplitMix64 finalizer: spreads FNV output across all bits.
constexpr uint64_t Avalanche(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Incrementally built digest. Order-sensitive: Update(a) then Update(b)
// differs from Update(b) then Update(a).
class Digest {
 public:
  constexpr Digest() = default;
  explicit constexpr Digest(uint64_t seed) : state_(kFnvOffset ^ Avalanche(seed)) {}

  constexpr void Update(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state_ ^= (v >> (i * 8)) & 0xff;
      state_ *= kFnvPrime;
    }
  }

  void Update(std::string_view s) {
    for (unsigned char c : s) {
      state_ ^= c;
      state_ *= kFnvPrime;
    }
    // Length-delimit so that ("ab","c") != ("a","bc").
    Update(static_cast<uint64_t>(s.size()));
  }

  constexpr uint64_t Finish() const { return Avalanche(state_); }

 private:
  uint64_t state_ = kFnvOffset;
};

// Digest of a single string (used for function ids and event names).
inline uint64_t DigestOf(std::string_view s) {
  Digest d;
  d.Update(s);
  return d.Finish();
}

// Digest of a tuple of integers.
template <typename... Ts>
constexpr uint64_t DigestOfInts(Ts... vs) {
  Digest d;
  (d.Update(static_cast<uint64_t>(vs)), ...);
  return d.Finish();
}

// Order-insensitive combiner for set digests (request tags combine the
// per-handler digests of a *tree*, whose traversal order must not matter;
// §4.1). Commutative and associative.
constexpr uint64_t CombineUnordered(uint64_t acc, uint64_t item) {
  return acc + (Avalanche(item) | 1);
}

}  // namespace karousos

#endif  // SRC_COMMON_DIGEST_H_
