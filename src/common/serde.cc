#include "src/common/serde.h"

namespace karousos {

void ByteWriter::WriteVarint(uint64_t v) {
  // Encode into a stack scratch first so the vector pays one growth check
  // per varint instead of one per byte (10 bytes max for a 64-bit value).
  uint8_t scratch[10];
  size_t n = 0;
  while (v >= 0x80) {
    scratch[n++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  scratch[n++] = static_cast<uint8_t>(v);
  buf_.insert(buf_.end(), scratch, scratch + n);
}

void ByteWriter::WriteFixed64(uint64_t v) {
  uint8_t scratch[8];
  for (int i = 0; i < 8; ++i) {
    scratch[i] = static_cast<uint8_t>(v >> (i * 8));
  }
  buf_.insert(buf_.end(), scratch, scratch + 8);
}

void ByteWriter::WriteFixed32(uint32_t v) {
  uint8_t scratch[4];
  for (int i = 0; i < 4; ++i) {
    scratch[i] = static_cast<uint8_t>(v >> (i * 8));
  }
  buf_.insert(buf_.end(), scratch, scratch + 4);
}

void ByteWriter::WriteString(std::string_view s) {
  WriteVarint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::WriteValue(const Value& v) {
  WriteByte(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::kNull:
      break;
    case Value::Kind::kBool:
      WriteBool(v.AsBool());
      break;
    case Value::Kind::kInt: {
      // ZigZag so negative ints stay small.
      int64_t i = v.AsInt();
      WriteVarint((static_cast<uint64_t>(i) << 1) ^ static_cast<uint64_t>(i >> 63));
      break;
    }
    case Value::Kind::kDouble: {
      double d = v.AsDouble();
      uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      WriteFixed64(bits);
      break;
    }
    case Value::Kind::kString:
      WriteString(v.AsString());
      break;
    case Value::Kind::kList:
      WriteVarint(v.AsList().size());
      for (const Value& item : v.AsList()) {
        WriteValue(item);
      }
      break;
    case Value::Kind::kMap:
      WriteVarint(v.AsMap().size());
      for (const auto& [key, item] : v.AsMap()) {
        WriteString(key);
        WriteValue(item);
      }
      break;
  }
}

namespace {

// Nibble-sliced CRC-32 table (16 entries) for the reflected IEEE polynomial
// 0xEDB88320: small enough to keep in cache, fast enough for segment files.
constexpr uint32_t kCrcNibble[16] = {
    0x00000000, 0x1db71064, 0x3b6e20c8, 0x26d930ac, 0x76dc4190, 0x6b6b51f4,
    0x4db26158, 0x5005713c, 0xedb88320, 0xf00f9344, 0xd6d6a3e8, 0xcb61b38c,
    0x9b64c2b0, 0x86d3d2d4, 0xa00ae278, 0xbdbdf21c};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    crc ^= data[i];
    crc = (crc >> 4) ^ kCrcNibble[crc & 0x0f];
    crc = (crc >> 4) ^ kCrcNibble[crc & 0x0f];
  }
  return crc ^ 0xffffffffu;
}

std::optional<uint64_t> ByteReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (pos_ < size_) {
    uint8_t b = buf_[pos_++];
    if (shift >= 64) {
      return std::nullopt;
    }
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
  return std::nullopt;
}

std::optional<uint64_t> ByteReader::ReadFixed64() {
  if (size_ - pos_ < 8) {
    return std::nullopt;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(buf_[pos_++]) << (i * 8);
  }
  return v;
}

std::optional<uint32_t> ByteReader::ReadFixed32() {
  if (size_ - pos_ < 4) {
    return std::nullopt;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(buf_[pos_++]) << (i * 8);
  }
  return v;
}

std::optional<uint8_t> ByteReader::ReadByte() {
  if (pos_ >= size_) {
    return std::nullopt;
  }
  return buf_[pos_++];
}

std::optional<std::string_view> ByteReader::ReadStringView() {
  auto len = ReadVarint();
  if (!len || *len > remaining()) {
    return std::nullopt;
  }
  std::string_view s(reinterpret_cast<const char*>(buf_ + pos_), *len);
  pos_ += *len;
  return s;
}

std::optional<std::string> ByteReader::ReadString() {
  auto view = ReadStringView();
  if (!view) {
    return std::nullopt;
  }
  return std::string(*view);
}

std::optional<bool> ByteReader::ReadBool() {
  auto b = ReadByte();
  if (!b || *b > 1) {
    return std::nullopt;
  }
  return *b == 1;
}

std::optional<Value> ByteReader::ReadValue() {
  auto kind_byte = ReadByte();
  if (!kind_byte || *kind_byte > static_cast<uint8_t>(Value::Kind::kMap)) {
    return std::nullopt;
  }
  switch (static_cast<Value::Kind>(*kind_byte)) {
    case Value::Kind::kNull:
      return Value();
    case Value::Kind::kBool: {
      auto b = ReadBool();
      if (!b) {
        return std::nullopt;
      }
      return Value(*b);
    }
    case Value::Kind::kInt: {
      auto z = ReadVarint();
      if (!z) {
        return std::nullopt;
      }
      int64_t i = static_cast<int64_t>((*z >> 1) ^ (~(*z & 1) + 1));
      return Value(i);
    }
    case Value::Kind::kDouble: {
      auto bits = ReadFixed64();
      if (!bits) {
        return std::nullopt;
      }
      double d;
      __builtin_memcpy(&d, &*bits, sizeof(d));
      return Value(d);
    }
    case Value::Kind::kString: {
      auto s = ReadString();
      if (!s) {
        return std::nullopt;
      }
      return Value(std::move(*s));
    }
    case Value::Kind::kList: {
      auto n = ReadVarint();
      if (!n || *n > remaining()) {
        return std::nullopt;
      }
      ValueList items;
      items.reserve(*n);
      for (uint64_t i = 0; i < *n; ++i) {
        auto item = ReadValue();
        if (!item) {
          return std::nullopt;
        }
        items.push_back(std::move(*item));
      }
      return Value(std::move(items));
    }
    case Value::Kind::kMap: {
      auto n = ReadVarint();
      if (!n || *n > remaining()) {
        return std::nullopt;
      }
      ValueMap m;
      for (uint64_t i = 0; i < *n; ++i) {
        auto key = ReadString();
        if (!key) {
          return std::nullopt;
        }
        auto item = ReadValue();
        if (!item) {
          return std::nullopt;
        }
        m.emplace(std::move(*key), std::move(*item));
      }
      return Value(std::move(m));
    }
  }
  return std::nullopt;
}

}  // namespace karousos
