// JSON parsing for Value: the inverse of Value::ToString(). Lets users feed
// hand-written request streams to the CLI and makes traces/advice dumps
// round-trippable for debugging.
//
// Accepts standard JSON: null, true/false, numbers (integers parse to kInt,
// anything with '.', 'e' or 'E' to kDouble), strings with \" \\ \/ \b \f \n
// \r \t and \uXXXX escapes (BMP only; surrogate pairs are combined), arrays,
// and objects. Trailing garbage after the value is an error.
#ifndef SRC_COMMON_JSON_H_
#define SRC_COMMON_JSON_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/common/value.h"

namespace karousos {

struct JsonParseError {
  size_t position = 0;
  std::string message;
};

// Parses a complete JSON document. On failure returns nullopt and, if
// `error` is non-null, fills it with the offending position and a message.
std::optional<Value> ParseJson(std::string_view text, JsonParseError* error = nullptr);

}  // namespace karousos

#endif  // SRC_COMMON_JSON_H_
