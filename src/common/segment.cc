#include "src/common/segment.h"

#include <cstring>

#include "src/common/kcodec.h"
#include "src/common/serde.h"

namespace karousos {

namespace {

void AppendVarint(std::vector<uint8_t>* buf, uint64_t v) {
  while (v >= 0x80) {
    buf->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf->push_back(static_cast<uint8_t>(v));
}

}  // namespace

const char* SegmentKindName(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kTrace:
      return "trace";
    case SegmentKind::kAdvice:
      return "advice";
    case SegmentKind::kCheckpoint:
      return "checkpoint";
    case SegmentKind::kShardBoundary:
      return "shard-boundary";
    case SegmentKind::kShardArtifact:
      return "shard-artifact";
  }
  return "unknown";
}

SegmentWriter::SegmentWriter(uint8_t format_version) : version_(format_version) {
  buf_.insert(buf_.end(), kSegmentMagic, kSegmentMagic + 4);
  buf_.push_back(version_);
  if (version_ != kSegmentFormatVersion && version_ != kSegmentFormatVersionV2) {
    error_ = "unsupported segment format version " + std::to_string(version_);
  }
}

SegmentWriter::SegmentWriter(const std::string& path, uint8_t format_version)
    : SegmentWriter(format_version) {
  to_file_ = true;
  file_.open(path, std::ios::binary | std::ios::trunc);
  if (!file_) {
    error_ = "cannot open segment file for writing: " + path;
    return;
  }
  file_.write(reinterpret_cast<const char*>(buf_.data()), static_cast<std::streamsize>(buf_.size()));
  if (!file_) {
    error_ = "write failed on segment file: " + path;
  }
}

void SegmentWriter::Append(SegmentKind kind, uint64_t epoch, const std::vector<uint8_t>& payload) {
  Append(kind, epoch, /*flags=*/0, payload);
}

void SegmentWriter::Append(SegmentKind kind, uint64_t epoch, uint8_t flags,
                           const std::vector<uint8_t>& payload) {
  if (!ok()) {
    return;
  }
  if (flags != 0 && version_ < kSegmentFormatVersionV2) {
    error_ = "frame flags require segment format version 2";
    return;
  }
  std::vector<uint8_t> frame;
  frame.push_back(static_cast<uint8_t>(kind));
  if (version_ >= kSegmentFormatVersionV2) {
    frame.push_back(flags);
  }
  AppendVarint(&frame, epoch);
  AppendVarint(&frame, payload.size());
  uint32_t crc = Crc32(payload);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<uint8_t>(crc >> (i * 8)));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  buf_.insert(buf_.end(), frame.begin(), frame.end());
  if (to_file_) {
    file_.write(reinterpret_cast<const char*>(frame.data()), static_cast<std::streamsize>(frame.size()));
    file_.flush();
    if (!file_) {
      error_ = "write failed on segment file";
    }
  }
}

std::unique_ptr<SegmentReader> SegmentReader::OpenFile(const std::string& path,
                                                       std::string* error) {
  std::unique_ptr<SegmentReader> r(new SegmentReader());
  r->from_file_ = true;
  r->file_.open(path, std::ios::binary);
  if (!r->file_) {
    *error = "cannot open segment file: " + path;
    return nullptr;
  }
  if (!r->ReadHeader(error)) {
    return nullptr;
  }
  return r;
}

std::unique_ptr<SegmentReader> SegmentReader::FromBytes(const uint8_t* data, size_t size,
                                                        std::string* error) {
  std::unique_ptr<SegmentReader> r(new SegmentReader());
  r->mem_ = data;
  r->mem_size_ = size;
  if (!r->ReadHeader(error)) {
    return nullptr;
  }
  return r;
}

bool SegmentReader::Pull(uint8_t* dest, size_t n, size_t* got) {
  if (from_file_) {
    file_.read(reinterpret_cast<char*>(dest), static_cast<std::streamsize>(n));
    *got = static_cast<size_t>(file_.gcount());
  } else {
    size_t avail = mem_size_ - pos_;
    *got = n < avail ? n : avail;
    std::memcpy(dest, mem_ + pos_, *got);
  }
  pos_ += *got;
  return *got == n;
}

bool SegmentReader::PullByte(uint8_t* b) {
  size_t got = 0;
  return Pull(b, 1, &got);
}

bool SegmentReader::PullVarint(uint64_t* v, const char* what, uint64_t frame_offset) {
  *v = 0;
  int shift = 0;
  uint8_t b = 0;
  while (PullByte(&b)) {
    if (shift >= 64) {
      Fail("segment frame at offset " + std::to_string(frame_offset) + ": malformed " +
           std::string(what) + " varint");
      return false;
    }
    *v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      return true;
    }
    shift += 7;
  }
  Fail("segment frame at offset " + std::to_string(frame_offset) + ": truncated " +
       std::string(what));
  return false;
}

bool SegmentReader::ReadHeader(std::string* error) {
  uint8_t header[5];
  size_t got = 0;
  if (!Pull(header, sizeof(header), &got)) {
    *error = "segment file too short for header (" + std::to_string(got) + " bytes)";
    return false;
  }
  if (std::memcmp(header, kSegmentMagic, 4) != 0) {
    *error = "not a segment file (bad magic)";
    return false;
  }
  if (header[4] != kSegmentFormatVersion && header[4] != kSegmentFormatVersionV2) {
    *error = "unsupported segment format version " + std::to_string(header[4]) + " (expected " +
             std::to_string(kSegmentFormatVersion) + " or " +
             std::to_string(kSegmentFormatVersionV2) + ")";
    return false;
  }
  version_ = header[4];
  return true;
}

bool SegmentReader::Next(SegmentRecord* out) {
  if (!ok()) {
    return false;
  }
  uint64_t frame_offset = pos_;
  uint8_t kind_byte = 0;
  if (!PullByte(&kind_byte)) {
    return false;  // Clean end of stream.
  }
  if (kind_byte < static_cast<uint8_t>(SegmentKind::kTrace) ||
      kind_byte > static_cast<uint8_t>(SegmentKind::kShardArtifact)) {
    Fail("segment frame at offset " + std::to_string(frame_offset) + ": unknown kind " +
         std::to_string(kind_byte));
    return false;
  }
  uint8_t flags = 0;
  if (version_ >= kSegmentFormatVersionV2) {
    if (!PullByte(&flags)) {
      Fail("segment frame at offset " + std::to_string(frame_offset) + ": truncated flags");
      return false;
    }
    if ((flags & ~kFrameFlagsKnownMask) != 0) {
      Fail("segment frame at offset " + std::to_string(frame_offset) +
           ": unknown frame flags 0x" + std::to_string(flags & ~kFrameFlagsKnownMask));
      return false;
    }
  }
  uint64_t epoch = 0;
  uint64_t length = 0;
  if (!PullVarint(&epoch, "epoch", frame_offset) ||
      !PullVarint(&length, "payload length", frame_offset)) {
    return false;
  }
  uint8_t crc_bytes[4];
  size_t got = 0;
  if (!Pull(crc_bytes, sizeof(crc_bytes), &got)) {
    Fail("segment frame at offset " + std::to_string(frame_offset) + ": truncated CRC");
    return false;
  }
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(crc_bytes[i]) << (i * 8);
  }
  // Guard the allocation: a corrupted length must not trigger a huge reserve.
  if (!from_file_ && length > mem_size_ - pos_) {
    Fail("segment frame at offset " + std::to_string(frame_offset) + ": truncated payload (want " +
         std::to_string(length) + " bytes, have " + std::to_string(mem_size_ - pos_) + ")");
    return false;
  }
  std::vector<uint8_t> payload;
  if (from_file_) {
    // Read in bounded chunks so a forged multi-gigabyte length fails at the
    // true file size instead of a bad_alloc.
    constexpr size_t kChunk = 1 << 20;
    uint64_t want = length;
    while (want > 0) {
      size_t step = want < kChunk ? static_cast<size_t>(want) : kChunk;
      size_t base = payload.size();
      payload.resize(base + step);
      if (!Pull(payload.data() + base, step, &got)) {
        Fail("segment frame at offset " + std::to_string(frame_offset) +
             ": truncated payload (want " + std::to_string(length) + " bytes, have " +
             std::to_string(payload.size() - step + got) + ")");
        return false;
      }
      want -= step;
    }
  } else {
    payload.resize(static_cast<size_t>(length));
    Pull(payload.data(), payload.size(), &got);
  }
  uint32_t computed = Crc32(payload);
  if (computed != stored_crc) {
    Fail("segment frame at offset " + std::to_string(frame_offset) + ": CRC mismatch (stored " +
         std::to_string(stored_crc) + ", computed " + std::to_string(computed) + ")");
    return false;
  }
  out->kind = static_cast<SegmentKind>(kind_byte);
  out->flags = flags;
  out->epoch = epoch;
  out->crc = stored_crc;
  out->offset = frame_offset;
  out->payload = std::move(payload);
  return true;
}

bool LooksLikeSegmentFile(const std::vector<uint8_t>& bytes) {
  return bytes.size() >= 4 && std::memcmp(bytes.data(), kSegmentMagic, 4) == 0;
}

}  // namespace karousos
