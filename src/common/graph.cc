#include "src/common/graph.h"

#include <algorithm>

namespace karousos {

DirectedGraph::NodeId DirectedGraph::AddNode(const NodeKey& key) {
  auto [it, inserted] = intern_.try_emplace(key, static_cast<NodeId>(keys_.size()));
  if (inserted) {
    keys_.push_back(key);
    adjacency_.emplace_back();
  }
  return it->second;
}

std::optional<DirectedGraph::NodeId> DirectedGraph::FindNode(const NodeKey& key) const {
  auto it = intern_.find(key);
  if (it == intern_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void DirectedGraph::AddEdge(const NodeKey& from, const NodeKey& to) {
  AddEdge(AddNode(from), AddNode(to));
}

void DirectedGraph::AddEdge(NodeId from, NodeId to) {
  adjacency_[static_cast<size_t>(from)].push_back(to);
  ++edge_count_;
}

namespace {

enum class Color : uint8_t { kWhite, kGray, kBlack };

}  // namespace

bool DirectedGraph::HasCycle() const {
  const size_t n = adjacency_.size();
  std::vector<Color> color(n, Color::kWhite);
  // Explicit stack of (node, next-neighbor-index) frames.
  std::vector<std::pair<NodeId, size_t>> stack;
  for (size_t root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite) {
      continue;
    }
    stack.emplace_back(static_cast<NodeId>(root), 0);
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const auto& out = adjacency_[static_cast<size_t>(node)];
      if (next < out.size()) {
        NodeId child = out[next++];
        if (color[static_cast<size_t>(child)] == Color::kGray) {
          return true;
        }
        if (color[static_cast<size_t>(child)] == Color::kWhite) {
          color[static_cast<size_t>(child)] = Color::kGray;
          stack.emplace_back(child, 0);
        }
      } else {
        color[static_cast<size_t>(node)] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

std::vector<NodeKey> DirectedGraph::FindCycle() const {
  const size_t n = adjacency_.size();
  std::vector<Color> color(n, Color::kWhite);
  std::vector<std::pair<NodeId, size_t>> stack;
  for (size_t root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite) {
      continue;
    }
    stack.emplace_back(static_cast<NodeId>(root), 0);
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const auto& out = adjacency_[static_cast<size_t>(node)];
      if (next < out.size()) {
        NodeId child = out[next++];
        if (color[static_cast<size_t>(child)] == Color::kGray) {
          // Reconstruct the cycle from the DFS stack: child ... node child.
          std::vector<NodeKey> cycle;
          cycle.push_back(KeyOf(child));
          auto it = std::find_if(stack.begin(), stack.end(),
                                 [child](const auto& f) { return f.first == child; });
          for (; it != stack.end(); ++it) {
            cycle.push_back(KeyOf(it->first));
          }
          cycle.push_back(KeyOf(child));
          // Drop the duplicated leading entry (stack walk re-adds child).
          cycle.erase(cycle.begin());
          return cycle;
        }
        if (color[static_cast<size_t>(child)] == Color::kWhite) {
          color[static_cast<size_t>(child)] = Color::kGray;
          stack.emplace_back(child, 0);
        }
      } else {
        color[static_cast<size_t>(node)] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace karousos
