#include "src/common/graph.h"

#include <algorithm>

namespace karousos {

DirectedGraph::NodeId DirectedGraph::AddNode(const NodeKey& key) {
  auto [it, inserted] = intern_.emplace(key, static_cast<NodeId>(keys_.size()));
  if (inserted) {
    keys_.push_back(key);
  }
  return it->second;
}

std::optional<DirectedGraph::NodeId> DirectedGraph::FindNode(const NodeKey& key) const {
  auto it = intern_.find(key);
  if (it == intern_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void DirectedGraph::AddEdge(const NodeKey& from, const NodeKey& to) {
  AddEdge(AddNode(from), AddNode(to));
}

void DirectedGraph::AddEdge(NodeId from, NodeId to) {
  edges_.emplace_back(from, to);
}

void DirectedGraph::ReserveNodes(size_t n) {
  intern_.reserve(n);
  keys_.reserve(n);
}

void DirectedGraph::ReserveEdges(size_t m) { edges_.reserve(m); }

void DirectedGraph::EnsureCsr() const {
  if (csr_built_edges_ == edges_.size() && csr_built_nodes_ == keys_.size()) {
    return;
  }
  const size_t n = keys_.size();
  // Stable counting sort of the edge list by source node: per-node neighbor
  // order equals edge insertion order, so DFS visits children in the same
  // order the old per-node vectors produced.
  csr_offsets_.assign(n + 1, 0);
  for (const auto& [from, to] : edges_) {
    ++csr_offsets_[static_cast<size_t>(from) + 1];
  }
  for (size_t v = 0; v < n; ++v) {
    csr_offsets_[v + 1] += csr_offsets_[v];
  }
  csr_targets_.resize(edges_.size());
  std::vector<size_t> cursor(csr_offsets_.begin(), csr_offsets_.end() - 1);
  for (const auto& [from, to] : edges_) {
    csr_targets_[cursor[static_cast<size_t>(from)]++] = to;
  }
  csr_built_edges_ = edges_.size();
  csr_built_nodes_ = keys_.size();
}

namespace {

enum class Color : uint8_t { kWhite, kGray, kBlack };

}  // namespace

bool DirectedGraph::HasCycle() const {
  EnsureCsr();
  const size_t n = keys_.size();
  std::vector<Color> color(n, Color::kWhite);
  // Explicit stack of (node, next-neighbor-cursor) frames; the cursor indexes
  // straight into csr_targets_.
  std::vector<std::pair<NodeId, size_t>> stack;
  for (size_t root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite) {
      continue;
    }
    stack.emplace_back(static_cast<NodeId>(root), csr_offsets_[root]);
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next < csr_offsets_[static_cast<size_t>(node) + 1]) {
        NodeId child = csr_targets_[next++];
        if (color[static_cast<size_t>(child)] == Color::kGray) {
          return true;
        }
        if (color[static_cast<size_t>(child)] == Color::kWhite) {
          color[static_cast<size_t>(child)] = Color::kGray;
          stack.emplace_back(child, csr_offsets_[static_cast<size_t>(child)]);
        }
      } else {
        color[static_cast<size_t>(node)] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

std::vector<NodeKey> DirectedGraph::FindCycle() const {
  EnsureCsr();
  const size_t n = keys_.size();
  std::vector<Color> color(n, Color::kWhite);
  std::vector<std::pair<NodeId, size_t>> stack;
  for (size_t root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite) {
      continue;
    }
    stack.emplace_back(static_cast<NodeId>(root), csr_offsets_[root]);
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next < csr_offsets_[static_cast<size_t>(node) + 1]) {
        NodeId child = csr_targets_[next++];
        if (color[static_cast<size_t>(child)] == Color::kGray) {
          // Reconstruct the cycle from the DFS stack: child ... node child.
          std::vector<NodeKey> cycle;
          cycle.push_back(KeyOf(child));
          auto it = std::find_if(stack.begin(), stack.end(),
                                 [child](const auto& f) { return f.first == child; });
          for (; it != stack.end(); ++it) {
            cycle.push_back(KeyOf(it->first));
          }
          cycle.push_back(KeyOf(child));
          // Drop the duplicated leading entry (stack walk re-adds child).
          cycle.erase(cycle.begin());
          return cycle;
        }
        if (color[static_cast<size_t>(child)] == Color::kWhite) {
          color[static_cast<size_t>(child)] = Color::kGray;
          stack.emplace_back(child, csr_offsets_[static_cast<size_t>(child)]);
        }
      } else {
        color[static_cast<size_t>(node)] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace karousos
