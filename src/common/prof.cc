#include "src/common/prof.h"

#include <cstdio>

namespace karousos {

std::string AuditProfileToJson(const AuditProfile& profile) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"preprocess_seconds\": %.6f, \"reexec_seconds\": %.6f, "
                "\"postprocess_seconds\": %.6f, \"total_seconds\": %.6f, "
                "\"arena_bytes\": %zu, \"advice_index_entries\": %zu, "
                "\"ops_executed\": %zu, \"ops_per_second\": %.0f}",
                profile.preprocess_seconds, profile.reexec_seconds,
                profile.postprocess_seconds, profile.total_seconds, profile.arena_bytes,
                profile.advice_index_entries, profile.ops_executed, profile.OpsPerSecond());
  return buf;
}

}  // namespace karousos
