// A JSON-like dynamic value: the datatype that flows through applications,
// request inputs, responses, program variables, and the transactional store.
// It plays the role JavaScript values play in the paper's implementation.
//
// Values have a canonical byte encoding (Encode/Decode in src/common/serde.h
// helpers below) used for (a) response comparison against the trace, (b)
// advice size accounting, and (c) value digests feeding control-flow and
// simulate-and-check logic.
#ifndef SRC_COMMON_VALUE_H_
#define SRC_COMMON_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace karousos {

class Value;

using ValueList = std::vector<Value>;
using ValueMap = std::map<std::string, Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kList, kMap };

  Value() : rep_(std::monostate{}) {}
  Value(bool b) : rep_(b) {}                      // NOLINT(google-explicit-constructor)
  Value(int64_t i) : rep_(i) {}                   // NOLINT(google-explicit-constructor)
  Value(int i) : rep_(static_cast<int64_t>(i)) {} // NOLINT(google-explicit-constructor)
  Value(uint64_t i) : rep_(static_cast<int64_t>(i)) {}  // NOLINT
  Value(double d) : rep_(d) {}                    // NOLINT(google-explicit-constructor)
  Value(const char* s) : rep_(std::string(s)) {}  // NOLINT(google-explicit-constructor)
  Value(std::string s) : rep_(std::move(s)) {}    // NOLINT(google-explicit-constructor)
  Value(std::string_view s) : rep_(std::string(s)) {}  // NOLINT
  Value(ValueList l) : rep_(std::move(l)) {}      // NOLINT(google-explicit-constructor)
  Value(ValueMap m) : rep_(std::move(m)) {}       // NOLINT(google-explicit-constructor)

  Kind kind() const { return static_cast<Kind>(rep_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_int() const { return kind() == Kind::kInt; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_list() const { return kind() == Kind::kList; }
  bool is_map() const { return kind() == Kind::kMap; }

  // Accessors: the asserted accessors abort on kind mismatch (programming
  // error in application code); the *Or accessors return a default.
  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  const ValueList& AsList() const { return std::get<ValueList>(rep_); }
  const ValueMap& AsMap() const { return std::get<ValueMap>(rep_); }
  ValueList& MutableList() { return std::get<ValueList>(rep_); }
  ValueMap& MutableMap() { return std::get<ValueMap>(rep_); }

  int64_t IntOr(int64_t def) const { return is_int() ? AsInt() : def; }
  bool BoolOr(bool def) const { return is_bool() ? AsBool() : def; }
  std::string StringOr(std::string def) const { return is_string() ? AsString() : def; }
  // Lazy form of StringOr(v.ToString()): the common pattern evaluated
  // ToString() — an allocation and a format — even when the value already was
  // a string and the default got thrown away.
  std::string StringOrToString() const { return is_string() ? AsString() : ToString(); }

  // Truthiness, JavaScript-style: null/false/0/""/[]/{} are falsy.
  bool Truthy() const;

  // Map field access: returns null when absent or when this is not a map.
  const Value& Field(std::string_view key) const;
  bool HasField(std::string_view key) const;

  // 64-bit structural digest of the canonical encoding.
  uint64_t DigestValue() const;

  // Human-readable JSON-ish rendering, for diagnostics and trace dumps.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) { return a.rep_ == b.rep_; }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  // Total order across kinds (kind index first), used for deterministic
  // iteration in tests and workload generation.
  friend bool operator<(const Value& a, const Value& b);

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string, ValueList, ValueMap> rep_;
};

// Convenience builders used pervasively by the applications.
Value MakeList(std::initializer_list<Value> items);
Value MakeMap(std::initializer_list<std::pair<std::string, Value>> fields);

}  // namespace karousos

#endif  // SRC_COMMON_VALUE_H_
