#include "src/common/ids.h"

#include <sstream>

namespace karousos {

std::string OpRef::ToString() const {
  std::ostringstream out;
  out << "(r" << rid << ",h" << std::hex << hid << std::dec << ",";
  if (opnum == kOpNumInf) {
    out << "inf";
  } else {
    out << opnum;
  }
  out << ")";
  return out.str();
}

std::string TxOpRef::ToString() const {
  std::ostringstream out;
  out << "(r" << rid << ",t" << std::hex << tid << std::dec << ",#" << index << ")";
  return out.str();
}

}  // namespace karousos
