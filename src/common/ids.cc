#include "src/common/ids.h"

#include <sstream>

namespace karousos {

std::string OpRef::ToString() const {
  std::ostringstream out;
  out << "(r" << rid << ",h" << std::hex << hid << std::dec << ",";
  if (opnum == kOpNumInf) {
    out << "inf";
  } else {
    out << opnum;
  }
  out << ")";
  return out.str();
}

std::string TxOpRef::ToString() const {
  std::ostringstream out;
  out << "(r" << rid << ",t" << std::hex << tid << std::dec << ",#" << index << ")";
  return out.str();
}

NameDigestCache::Slot& NameDigestCache::SlotFor(std::string_view name, uint64_t salt) {
  // Slot selection only has to be cheap and spread the (few) hot names; the
  // byte comparison in Get carries correctness. First/last characters and the
  // length distinguish sibling names ("stack_count" vs "stack_total") without
  // walking the whole string.
  uint64_t h = salt * 0x9e3779b97f4a7c15ULL + name.size() * 131;
  if (!name.empty()) {
    h += static_cast<uint8_t>(name.front()) * 31 + static_cast<uint8_t>(name.back()) * 7;
  }
  return slots_[(h ^ (h >> 13)) & (kSlotCount - 1)];
}

}  // namespace karousos
