// Thread-safe memo table for pure digest-keyed computations.
//
// The simulated application work (MvExpensive and friends) derives its result
// from nothing but the operand's 64-bit digest and a unit count, so one audit
// can share results across groups: different groups re-execute different
// request sets, but the values flowing through them repeat heavily. The memo
// is owned by the verifier (one per audit run), which keeps benchmark numbers
// honest — every audit starts cold.
//
// Concurrency: parallel group re-execution probes the table from worker
// threads. The compute runs outside the lock; a lost race recomputes the same
// bytes (the function is pure), so the first insert simply wins.
#ifndef SRC_COMMON_MEMO_H_
#define SRC_COMMON_MEMO_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>

#include "src/common/flat_map.h"

namespace karousos {

class DigestMemo {
 public:
  // Returns fn(digest, tag), computing it at most once per (digest, tag) in
  // the common case. fn must be pure: its result fully determined by the key.
  template <typename Fn>
  std::string GetOrCompute(uint64_t digest, uint64_t tag, Fn&& fn) {
    const std::pair<uint64_t, uint64_t> key{digest, tag};
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = table_.find(key);
      if (it != table_.end()) {
        return it->second;
      }
    }
    std::string result = fn(digest, tag);
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = table_.emplace(key, std::move(result));
    return it->second;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return table_.size();
  }

 private:
  mutable std::mutex mu_;
  FlatMap<std::pair<uint64_t, uint64_t>, std::string> table_;
};

}  // namespace karousos

#endif  // SRC_COMMON_MEMO_H_
