// A small work-stealing thread pool for embarrassingly parallel index
// spaces. Built for the verifier's parallel audit engine: re-execution
// groups are independent (§4.1 / Lemma 1), so the audit scheduler fans a
// group list out over workers and lets idle workers steal from busy ones —
// group costs are highly skewed (one hot group can carry most of the
// deduplicated work), which is exactly the load shape work stealing evens
// out.
//
// Design notes:
//   * One deque per participant (the calling thread participates as worker
//     0), each guarded by its own mutex. Owners pop from the front (LIFO for
//     locality); thieves steal from the back (FIFO — they take the oldest,
//     typically largest, remaining chunk of the victim's share).
//   * Determinism is the caller's job: tasks run in an arbitrary order on
//     arbitrary threads, so callers that need reproducible output must write
//     into index-addressed slots and merge in index order afterwards (the
//     verifier does exactly this).
//   * Tasks must not throw — capture failures into the per-index result slot
//     instead. An escaping exception would tear down the process.
#ifndef SRC_COMMON_POOL_H_
#define SRC_COMMON_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace karousos {

class WorkStealingPool {
 public:
  // Spawns `threads - 1` worker threads (the caller is the remaining
  // participant). `threads` is clamped to at least 1; with 1 participant
  // ParallelFor degenerates to an inline loop.
  explicit WorkStealingPool(unsigned threads);

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  ~WorkStealingPool();

  // Total participants, including the calling thread.
  unsigned threads() const { return static_cast<unsigned>(queues_.size()); }

  // Runs fn(i) for every i in [0, n), distributed over all participants, and
  // blocks until every index has finished. The calling thread works too.
  // Not reentrant: do not call ParallelFor from inside a task.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Maps the user-facing thread knob to a participant count:
  // 0 = one per hardware thread (at least 1), anything else verbatim.
  static unsigned ResolveThreads(unsigned requested);

 private:
  struct Queue {
    std::mutex mu;
    std::deque<size_t> items;
  };

  bool PopOwn(size_t worker, size_t* out);
  bool Steal(size_t thief, size_t* out);
  // Claims and runs indices until no queue holds work, then returns.
  void DrainJob(size_t worker);
  void WorkerMain(size_t worker);

  std::vector<std::unique_ptr<Queue>> queues_;  // [0] = caller.
  std::vector<std::thread> workers_;            // queues_[i + 1] belongs to workers_[i].

  std::mutex job_mu_;
  std::condition_variable job_cv_;   // Workers: a new job was published.
  std::condition_variable done_cv_;  // Caller: all indices finished.
  const std::function<void(size_t)>* job_fn_ = nullptr;
  uint64_t job_epoch_ = 0;
  size_t job_pending_ = 0;  // Indices published but not yet finished.
  bool shutdown_ = false;
};

}  // namespace karousos

#endif  // SRC_COMMON_POOL_H_
