// Built-in phase profiler for the audit hot path.
//
// The verifier times its three phases (Preprocess / ReExec / Postprocess)
// with RAII PhaseTimers and threads allocation and operation counters into an
// AuditProfile that rides along on every AuditResult. The profile is
// observational only: nothing in the audit verdict, reason, diagnostics, or
// AuditStats depends on it, so it is exempt from the parallel engine's
// bit-identical determinism contract (wall-clock times differ run to run by
// nature).
//
// Consumers: `karousos audit --profile` (JSON to stdout) and
// bench/audit_hotpath (BENCH_audit_hotpath.json).
#ifndef SRC_COMMON_PROF_H_
#define SRC_COMMON_PROF_H_

#include <chrono>
#include <cstddef>
#include <string>

namespace karousos {

// Per-phase wall-clock breakdown and hot-path counters for one Audit() call.
struct AuditProfile {
  double preprocess_seconds = 0;
  double reexec_seconds = 0;
  double postprocess_seconds = 0;
  double total_seconds = 0;

  // Allocation counters: bytes handed out by the per-group re-execution
  // arenas, and entries in the hashed advice indices built during Preprocess.
  size_t arena_bytes = 0;
  size_t advice_index_entries = 0;
  // Deduplicated operation executions (copy of AuditStats::ops_executed, so
  // profile consumers can compute ops/sec without carrying AuditStats too).
  size_t ops_executed = 0;

  // Deduplicated re-execution throughput; 0 when the phase took no time.
  double OpsPerSecond() const {
    return reexec_seconds > 0 ? static_cast<double>(ops_executed) / reexec_seconds : 0;
  }
};

// RAII wall-clock timer: adds the scope's elapsed seconds to *sink.
class PhaseTimer {
 public:
  explicit PhaseTimer(double* sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() { Stop(); }

  // Stops early (idempotent); returns the elapsed seconds of this timer.
  double Stop() {
    if (sink_ != nullptr) {
      elapsed_ = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
      *sink_ += elapsed_;
      sink_ = nullptr;
    }
    return elapsed_;
  }

 private:
  double* sink_;
  double elapsed_ = 0;
  std::chrono::steady_clock::time_point start_;
};

// Renders the profile as a self-contained JSON object (used verbatim by
// `karousos audit --profile`; the bench embeds the same fields per row).
std::string AuditProfileToJson(const AuditProfile& profile);

}  // namespace karousos

#endif  // SRC_COMMON_PROF_H_
