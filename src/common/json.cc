#include "src/common/json.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace karousos {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> Parse(JsonParseError* error) {
    std::optional<Value> value = ParseValue();
    if (value.has_value()) {
      SkipWhitespace();
      if (pos_ != text_.size()) {
        Fail("trailing characters after JSON value");
        value.reset();
      }
    }
    if (!value.has_value() && error != nullptr) {
      error->position = error_pos_;
      error->message = error_msg_;
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Fail(std::string message) {
    if (error_msg_.empty()) {
      error_pos_ = pos_;
      error_msg_ = std::move(message);
    }
    return false;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return Fail("invalid literal");
  }

  std::optional<Value> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case 'n':
        if (!ConsumeLiteral("null")) {
          return std::nullopt;
        }
        return Value();
      case 't':
        if (!ConsumeLiteral("true")) {
          return std::nullopt;
        }
        return Value(true);
      case 'f':
        if (!ConsumeLiteral("false")) {
          return std::nullopt;
        }
        return Value(false);
      case '"':
        return ParseString();
      case '[':
        return ParseArray();
      case '{':
        return ParseObject();
      default:
        return ParseNumber();
    }
  }

  std::optional<Value> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      Fail("invalid number");
      return std::nullopt;
    }
    if (!is_double) {
      int64_t i = 0;
      auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Value(i);
      }
      // Fall through to double on overflow.
    }
    char* end = nullptr;
    std::string owned(token);
    double d = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size()) {
      Fail("invalid number");
      return std::nullopt;
    }
    return Value(d);
  }

  // Appends a Unicode code point as UTF-8.
  static void AppendUtf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  std::optional<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      Fail("truncated \\u escape");
      return std::nullopt;
    }
    uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        Fail("invalid \\u escape");
        return std::nullopt;
      }
    }
    pos_ += 4;
    return cp;
  }

  std::optional<Value> ParseString() {
    if (!Consume('"')) {
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Value(std::move(out));
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          break;
        }
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            auto cp = ParseHex4();
            if (!cp) {
              return std::nullopt;
            }
            uint32_t code = *cp;
            // Combine surrogate pairs.
            if (code >= 0xd800 && code <= 0xdbff && pos_ + 1 < text_.size() &&
                text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              auto low = ParseHex4();
              if (!low) {
                return std::nullopt;
              }
              if (*low >= 0xdc00 && *low <= 0xdfff) {
                code = 0x10000 + ((code - 0xd800) << 10) + (*low - 0xdc00);
              } else {
                Fail("invalid surrogate pair");
                return std::nullopt;
              }
            }
            AppendUtf8(out, code);
            break;
          }
          default:
            Fail("invalid escape character");
            return std::nullopt;
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    Fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> ParseArray() {
    if (!Consume('[')) {
      return std::nullopt;
    }
    ValueList items;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    while (true) {
      auto item = ParseValue();
      if (!item) {
        return std::nullopt;
      }
      items.push_back(std::move(*item));
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!Consume(']')) {
        return std::nullopt;
      }
      return Value(std::move(items));
    }
  }

  std::optional<Value> ParseObject() {
    if (!Consume('{')) {
      return std::nullopt;
    }
    ValueMap fields;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Value(std::move(fields));
    }
    while (true) {
      SkipWhitespace();
      auto key = ParseString();
      if (!key) {
        return std::nullopt;
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return std::nullopt;
      }
      auto value = ParseValue();
      if (!value) {
        return std::nullopt;
      }
      fields[key->AsString()] = std::move(*value);
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!Consume('}')) {
        return std::nullopt;
      }
      return Value(std::move(fields));
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t error_pos_ = 0;
  std::string error_msg_;
};

}  // namespace

std::optional<Value> ParseJson(std::string_view text, JsonParseError* error) {
  Parser parser(text);
  return parser.Parse(error);
}

}  // namespace karousos
