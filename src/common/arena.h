// Bump allocator for audit-scoped scratch data.
//
// The re-execution hot path allocates many small, identically-shaped POD
// arrays whose lifetime is bounded by one handler execution or one group
// (per-lane opcount caches, per-transaction tid arrays). Routing them through
// the general-purpose heap costs a malloc/free pair per array; an arena turns
// each into a pointer bump, and the whole batch is released at once with
// Reset() — the classic region discipline of audit work: everything a group
// allocates dies with the group.
//
// Only trivially destructible types may live in an arena (destructors are
// never run); AllocateArray enforces this at compile time.
#ifndef SRC_COMMON_ARENA_H_
#define SRC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace karousos {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes) : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  // Returns `bytes` of storage aligned to `align` (a power of two). Requests
  // larger than the block size get a dedicated block.
  void* Allocate(size_t bytes, size_t align);

  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage never runs destructors");
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned types are not supported");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  // Rewinds to empty, keeping the allocated blocks for reuse. Pointers handed
  // out earlier become dangling.
  void Reset();

  // Total bytes handed out since construction (across Resets) — the
  // profiler's allocation counter.
  size_t bytes_allocated() const { return bytes_allocated_; }
  // Total block capacity currently held.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
  };

  // Makes block `index` current, growing the block list if needed;
  // `min_bytes` is the allocation that must fit.
  void ActivateBlock(size_t index, size_t min_bytes);

  size_t block_bytes_;
  std::vector<Block> blocks_;
  size_t current_ = 0;    // Index of the block being bumped.
  size_t offset_ = 0;     // Bump offset within the current block.
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

// Append-only log of trivially-destructible records whose storage comes from
// an arena in fixed-size chunks. Growing never relocates existing records
// (unlike std::vector, which re-copies everything on each doubling), and a
// run's worth of per-request lanes is released wholesale by resetting the
// arena. The owning arena must outlive every access.
template <typename T, size_t kChunkEntries = 32>
class ArenaLog {
  static_assert(std::is_trivially_destructible_v<T>,
                "arena storage never runs destructors");

 public:
  void Append(Arena* arena, const T& record) {
    if (size_ == chunks_.size() * kChunkEntries) {
      chunks_.push_back(arena->AllocateArray<T>(kChunkEntries));
    }
    chunks_[size_ / kChunkEntries][size_ % kChunkEntries] = record;
    ++size_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](size_t i) const { return chunks_[i / kChunkEntries][i % kChunkEntries]; }

  // Flattens into a contiguous vector (the shape the advice wire format and
  // the verifier expect).
  std::vector<T> ToVector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (size_t i = 0; i < size_; ++i) {
      out.push_back((*this)[i]);
    }
    return out;
  }

 private:
  std::vector<T*> chunks_;
  size_t size_ = 0;
};

}  // namespace karousos

#endif  // SRC_COMMON_ARENA_H_
