// Open-addressing robin-hood hash map/set for the audit hot path.
//
// The verifier's per-operation bookkeeping is lookup-dominated: every
// re-executed operation probes the OpMap, the opcount table, the variable
// dictionaries, and the advice indices. Node-based std::map/std::set pay a
// pointer chase (and an allocation) per entry; FlatMap keeps entries inline
// in one backing array with robin-hood displacement (probe distances stay
// short and variance-free even at high load) and backward-shift deletion (no
// tombstones). Keys and values must be default-constructible and movable.
//
// Determinism contract: iteration order depends on insertion order and
// capacity history — it is stable for a fixed insertion sequence but is NOT
// sorted. Verifier code that needs a canonical order (graph edge emission,
// merge of parallel group deltas) must sort keys explicitly; see
// DESIGN.md "Audit hot-path memory layout".
#ifndef SRC_COMMON_FLAT_MAP_H_
#define SRC_COMMON_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/ids.h"

namespace karousos {

// Default hasher: splitmix64 finalizing (src/common/ids.h) so sequential
// ids — the common key distribution — avalanche over power-of-two tables.
// Specializations below cover the id types; add one next to any new key type.
template <typename K>
struct FlatHash {
  size_t operator()(const K& k) const { return static_cast<size_t>(SplitMix64(k)); }
};

template <>
struct FlatHash<OpRef> : OpRefHash {};

template <>
struct FlatHash<TxOpRef> : TxOpRefHash {};

template <typename A, typename B>
struct FlatHash<std::pair<A, B>> {
  size_t operator()(const std::pair<A, B>& p) const {
    return static_cast<size_t>(HashMix64(FlatHash<A>{}(p.first), FlatHash<B>{}(p.second)));
  }
};

template <typename Key, typename T, typename Hash = FlatHash<Key>>
class FlatMap {
 public:
  using Entry = std::pair<Key, T>;

  FlatMap() = default;

  // --- iteration (skips empty slots; unspecified but insertion-stable order)
  template <bool Const>
  class Iter {
   public:
    using MapPtr = std::conditional_t<Const, const FlatMap*, FlatMap*>;
    using Ref = std::conditional_t<Const, const Entry&, Entry&>;
    using Ptr = std::conditional_t<Const, const Entry*, Entry*>;
    // std::iterator_traits interface (range constructors and algorithms).
    using iterator_category = std::forward_iterator_tag;
    using value_type = Entry;
    using difference_type = std::ptrdiff_t;
    using pointer = Ptr;
    using reference = Ref;

    Iter() = default;
    Iter(MapPtr map, size_t idx) : map_(map), idx_(idx) { SkipEmpty(); }
    // const_iterator from iterator.
    template <bool C = Const, typename = std::enable_if_t<C>>
    Iter(const Iter<false>& other) : map_(other.map_), idx_(other.idx_) {}  // NOLINT

    Ref operator*() const { return map_->slots_[idx_]; }
    Ptr operator->() const { return &map_->slots_[idx_]; }
    Iter& operator++() {
      ++idx_;
      SkipEmpty();
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) { return a.idx_ == b.idx_; }
    friend bool operator!=(const Iter& a, const Iter& b) { return a.idx_ != b.idx_; }

   private:
    friend class FlatMap;
    template <bool>
    friend class Iter;

    void SkipEmpty() {
      while (idx_ < map_->meta_.size() && map_->meta_[idx_] == 0) {
        ++idx_;
      }
    }
    MapPtr map_ = nullptr;
    size_t idx_ = 0;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, meta_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, meta_.size()); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    meta_.clear();
    size_ = 0;
  }

  // Ensures capacity for n entries without rehashing.
  void reserve(size_t n) {
    size_t needed = CapacityFor(n);
    if (needed > meta_.size()) {
      Rehash(needed);
    }
  }

  iterator find(const Key& key) { return iterator(this, FindSlot(key)); }
  const_iterator find(const Key& key) const { return const_iterator(this, FindSlot(key)); }
  size_t count(const Key& key) const { return FindSlot(key) == meta_.size() ? 0 : 1; }
  bool contains(const Key& key) const { return count(key) != 0; }

  T& operator[](const Key& key) { return slots_[InsertSlot(key, T()).first].second; }

  // Inserts (key, value) if absent; returns {iterator, inserted}.
  std::pair<iterator, bool> emplace(const Key& key, T value) {
    auto [idx, inserted] = InsertSlot(key, std::move(value));
    return {iterator(this, idx), inserted};
  }
  std::pair<iterator, bool> insert(Entry entry) {
    return emplace(entry.first, std::move(entry.second));
  }

  // Backward-shift deletion: no tombstones, so probe distances never decay.
  bool erase(const Key& key) {
    size_t idx = FindSlot(key);
    if (idx == meta_.size()) {
      return false;
    }
    size_t mask = meta_.size() - 1;
    size_t next = (idx + 1) & mask;
    while (meta_[next] > 1) {
      slots_[idx] = std::move(slots_[next]);
      meta_[idx] = static_cast<uint16_t>(meta_[next] - 1);
      idx = next;
      next = (next + 1) & mask;
    }
    slots_[idx] = Entry();
    meta_[idx] = 0;
    --size_;
    return true;
  }

 private:
  static constexpr size_t kMinCapacity = 16;
  static constexpr uint16_t kMaxProbe = 0xFFF0;

  // Smallest power-of-two capacity keeping load factor under 7/8.
  static size_t CapacityFor(size_t n) {
    size_t cap = kMinCapacity;
    while (cap - cap / 8 < n) {
      cap <<= 1;
    }
    return cap;
  }

  // Index of the key's slot, or meta_.size() when absent.
  size_t FindSlot(const Key& key) const {
    if (size_ == 0) {
      return meta_.size();
    }
    size_t mask = meta_.size() - 1;
    size_t idx = Hash{}(key) & mask;
    uint16_t dist = 1;
    while (meta_[idx] != 0) {
      // Robin-hood invariant: a present key is never further from home than
      // any entry it probes past, so falling below ends the search.
      if (meta_[idx] < dist) {
        break;
      }
      if (slots_[idx].first == key) {
        return idx;
      }
      idx = (idx + 1) & mask;
      ++dist;
    }
    return meta_.size();
  }

  // Finds or inserts; returns {slot, inserted}.
  std::pair<size_t, bool> InsertSlot(const Key& key, T value) {
    size_t existing = FindSlot(key);
    if (existing != meta_.size()) {
      return {existing, false};
    }
    if (meta_.empty() || size_ + 1 > meta_.size() - meta_.size() / 8) {
      Rehash(meta_.size() == 0 ? kMinCapacity : meta_.size() * 2);
    }
    PlaceNew(Entry(key, std::move(value)));
    ++size_;
    // Re-probe for the final slot: inserts are rare next to lookups, and the
    // displacement walk above may have moved the entry past its first rest.
    return {FindSlot(key), true};
  }

  // Robin-hood placement of a key known to be absent from the table.
  void PlaceNew(Entry entry) {
    size_t mask = meta_.size() - 1;
    size_t idx = Hash{}(entry.first) & mask;
    uint16_t dist = 1;
    while (true) {
      if (meta_[idx] == 0) {
        slots_[idx] = std::move(entry);
        meta_[idx] = dist;
        return;
      }
      if (meta_[idx] < dist) {
        std::swap(slots_[idx], entry);
        std::swap(meta_[idx], dist);
      }
      idx = (idx + 1) & mask;
      ++dist;
      if (dist >= kMaxProbe) {
        // Unreachable with a mixing hash; grow rather than overflow meta.
        Rehash(meta_.size() * 2, &entry);
        return;
      }
    }
  }

  void Rehash(size_t capacity, Entry* pending = nullptr) {
    std::vector<Entry> old_slots = std::move(slots_);
    std::vector<uint16_t> old_meta = std::move(meta_);
    slots_.clear();
    slots_.resize(capacity);
    meta_.assign(capacity, 0);
    for (size_t i = 0; i < old_meta.size(); ++i) {
      if (old_meta[i] != 0) {
        PlaceNew(std::move(old_slots[i]));
      }
    }
    if (pending != nullptr) {
      PlaceNew(std::move(*pending));
    }
  }

  std::vector<Entry> slots_;
  // 0 = empty; otherwise probe distance + 1 (1 = sitting at its home slot).
  std::vector<uint16_t> meta_;
  size_t size_ = 0;
};

// Hash set over the same table: FlatMap with an empty payload and key-only
// surface (insert returns whether the key was new, matching std::set usage).
template <typename Key, typename Hash = FlatHash<Key>>
class FlatSet {
  struct Unit {};

 public:
  class const_iterator {
   public:
    const_iterator() = default;
    explicit const_iterator(typename FlatMap<Key, Unit, Hash>::const_iterator it) : it_(it) {}
    const Key& operator*() const { return it_->first; }
    const Key* operator->() const { return &it_->first; }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.it_ == b.it_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.it_ != b.it_;
    }

   private:
    typename FlatMap<Key, Unit, Hash>::const_iterator it_;
  };

  const_iterator begin() const { return const_iterator(map_.begin()); }
  const_iterator end() const { return const_iterator(map_.end()); }

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }
  void reserve(size_t n) { map_.reserve(n); }

  // Returns {ignored, inserted}, shaped like std::set::insert for the common
  // `.second` idiom.
  std::pair<const_iterator, bool> insert(const Key& key) {
    auto [it, inserted] = map_.emplace(key, Unit{});
    return {const_iterator(it), inserted};
  }
  template <typename It>
  void insert(It first, It last) {
    for (; first != last; ++first) {
      map_.emplace(*first, Unit{});
    }
  }
  size_t count(const Key& key) const { return map_.count(key); }
  bool contains(const Key& key) const { return map_.contains(key); }
  bool erase(const Key& key) { return map_.erase(key); }

 private:
  FlatMap<Key, Unit, Hash> map_;
};

}  // namespace karousos

#endif  // SRC_COMMON_FLAT_MAP_H_
