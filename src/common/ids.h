// Core identifier types shared across the Karousos modules.
//
// All identifiers are 64-bit digests (see src/common/digest.h) so that the
// server and the verifier compute exactly the same ids from the same
// structural information, as required by §5 of the paper ("handlerIDs ...
// correspond across requests").
#ifndef SRC_COMMON_IDS_H_
#define SRC_COMMON_IDS_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace karousos {

// Globally unique id of a request, assigned by the collector in trace order.
using RequestId = uint64_t;

// Globally unique id of a handler *function* (piece of code), the digest of
// its registered name.
using FunctionId = uint64_t;

// Handler id: digest of (functionID, parent handler id, opnum of the
// activating operation). Unique within a request; equal across requests that
// activate the same handler tree (§5, "Identifying batches").
using HandlerId = uint64_t;

// Globally unique id of a tracked program variable.
using VarId = uint64_t;

// Transaction id: digest of (request id, hid, opnum) of the tx_start.
using TxId = uint64_t;

// Index of an operation within a handler activation (1-based; 0 denotes the
// handler-start pseudo-operation and kOpNumInf the handler-exit one).
using OpNum = uint32_t;

inline constexpr OpNum kOpNumInf = std::numeric_limits<OpNum>::max();

// The request id reserved for the initialization pseudo-handler I (§3): the
// initialization function's execution is treated as a handler activation that
// is the activator of all request handlers.
inline constexpr RequestId kInitRequestId = 0;
inline constexpr HandlerId kInitHandlerId = 1;

// Sentinel for "no handler" (e.g. the parent of a request handler).
inline constexpr HandlerId kNoHandler = 0;

// Coordinate of one operation during execution: the universal key used by the
// advice logs, the OpMap, and the execution graph G.
struct OpRef {
  RequestId rid = 0;
  HandlerId hid = 0;
  OpNum opnum = 0;

  friend bool operator==(const OpRef&, const OpRef&) = default;
  friend auto operator<=>(const OpRef&, const OpRef&) = default;

  bool IsNil() const { return rid == 0 && hid == 0 && opnum == 0; }
  std::string ToString() const;
};

inline constexpr OpRef kNilOp{};

// splitmix64 finalizer (Steele et al.): a full-avalanche 64-bit mixer, so
// sequential rids/opnums — the common case, since the collector assigns rids
// in trace order — spread evenly over power-of-two hash tables. The previous
// xor/shift chain here barely mixed the low bits and produced >4x bucket skew
// on exactly those sequential keys.
inline constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Chains splitmix over multiple words: mix each word, fold into the state.
inline constexpr uint64_t HashMix64(uint64_t seed, uint64_t word) {
  return SplitMix64(seed ^ SplitMix64(word));
}

struct OpRefHash {
  size_t operator()(const OpRef& o) const {
    return static_cast<size_t>(HashMix64(HashMix64(SplitMix64(o.rid), o.hid), o.opnum));
  }
};

// Coordinate of one operation within a transaction log: (rid, tid, index).
struct TxOpRef {
  RequestId rid = 0;
  TxId tid = 0;
  uint32_t index = 0;  // 1-based position within the transaction log.

  friend bool operator==(const TxOpRef&, const TxOpRef&) = default;
  friend auto operator<=>(const TxOpRef&, const TxOpRef&) = default;

  bool IsNil() const { return rid == 0 && tid == 0 && index == 0; }
  std::string ToString() const;
};

inline constexpr TxOpRef kNilTxOp{};

struct TxOpRefHash {
  size_t operator()(const TxOpRef& o) const {
    return static_cast<size_t>(HashMix64(HashMix64(SplitMix64(o.rid), o.tid), o.index));
  }
};

// Direct-mapped memo of (name, salt) -> 64-bit digest for the collector's
// hot path, where the same handful of variable / event / function names are
// digested once per operation. A hit validates the cached bytes with a plain
// comparison (cheaper than the FNV multiply chain it replaces), so the cache
// is sound for any argument storage — dynamic strings that reuse an address
// with different contents simply miss. Names longer than kMaxNameLength
// bypass the cache entirely.
class NameDigestCache {
 public:
  static constexpr size_t kSlotCount = 256;  // Power of two.
  static constexpr size_t kMaxNameLength = 40;

  // Cached digest for (name, salt); `compute` supplies the value on a miss.
  template <typename Fn>
  uint64_t Get(std::string_view name, uint64_t salt, Fn&& compute) {
    if (name.size() > kMaxNameLength) {
      return compute();
    }
    Slot& slot = SlotFor(name, salt);
    if (slot.used && slot.salt == salt && slot.length == name.size() &&
        std::char_traits<char>::compare(slot.bytes, name.data(), name.size()) == 0) {
      ++hits_;
      return slot.digest;
    }
    ++misses_;
    uint64_t digest = compute();
    slot.used = true;
    slot.salt = salt;
    slot.length = static_cast<uint32_t>(name.size());
    std::char_traits<char>::copy(slot.bytes, name.data(), name.size());
    slot.digest = digest;
    return digest;
  }

  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  struct Slot {
    bool used = false;
    uint32_t length = 0;
    uint64_t salt = 0;
    uint64_t digest = 0;
    char bytes[kMaxNameLength] = {};
  };

  Slot& SlotFor(std::string_view name, uint64_t salt);

  Slot slots_[kSlotCount];
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace karousos

#endif  // SRC_COMMON_IDS_H_
