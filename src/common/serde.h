// Compact binary encoding used as the advice wire format.
//
// The paper evaluates advice *size* (Figure 8), so the advice structures in
// src/server/advice.h get a real byte encoding rather than an estimate: the
// server serializes, the verifier deserializes, and the benches report the
// encoded byte counts.
#ifndef SRC_COMMON_SERDE_H_
#define SRC_COMMON_SERDE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/value.h"

namespace karousos {

class ByteWriter {
 public:
  // LEB128-style varint; small ids and opnums dominate the advice, so this
  // is where the encoding wins its compactness.
  void WriteVarint(uint64_t v);
  void WriteFixed64(uint64_t v);
  void WriteFixed32(uint32_t v);
  void WriteByte(uint8_t b) { buf_.push_back(b); }
  void WriteString(std::string_view s);
  void WriteValue(const Value& v);
  void WriteBool(bool b) { WriteByte(b ? 1 : 0); }
  // Raw append, no length prefix — used to splice a pre-encoded body (e.g. a
  // compact KSEG payload assembled after its dictionaries).
  void WriteBytes(const uint8_t* data, size_t size) { buf_.insert(buf_.end(), data, data + size); }

  // Pre-sizes the backing buffer so a burst of writes (one advice component,
  // one epoch payload) appends without reallocating.
  void Reserve(size_t bytes) { buf_.reserve(buf_.size() + bytes); }
  // Rewinds to empty while keeping the allocation, so one writer can be
  // reused across epochs / components instead of reallocating per use.
  void Clear() { buf_.clear(); }
  size_t capacity() const { return buf_.capacity(); }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  size_t size() const { return buf_.size(); }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& buf) : buf_(buf.data()), size_(buf.size()) {}
  ByteReader(const uint8_t* data, size_t size) : buf_(data), size_(size) {}

  // Each reader returns nullopt on malformed input; the verifier treats a
  // malformed advice stream as server misbehavior (REJECT), never a crash.
  std::optional<uint64_t> ReadVarint();
  std::optional<uint64_t> ReadFixed64();
  std::optional<uint32_t> ReadFixed32();
  std::optional<uint8_t> ReadByte();
  std::optional<std::string> ReadString();
  // Zero-copy variant: the returned view aliases the reader's buffer and is
  // valid only while that buffer outlives the view. Same validation as
  // ReadString (rejects truncated buffers identically).
  std::optional<std::string_view> ReadStringView();
  std::optional<Value> ReadValue();
  std::optional<bool> ReadBool();

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* buf_;
  size_t size_;
  size_t pos_ = 0;
};

// CRC-32 (IEEE 802.3 polynomial, reflected). Used by the epoch segment
// container to detect payload corruption; a bad checksum is a diagnostic,
// never a crash or a silent accept.
uint32_t Crc32(const uint8_t* data, size_t size);
inline uint32_t Crc32(const std::vector<uint8_t>& buf) { return Crc32(buf.data(), buf.size()); }

}  // namespace karousos

#endif  // SRC_COMMON_SERDE_H_
