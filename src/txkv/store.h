// In-memory transactional key-value store: the substrate standing in for
// MySQL (§5, "Transactional state").
//
// The store supports exactly the abstract interface of §4.4 — tx_start,
// tx_commit, tx_abort, PUT, GET — over single rows addressed by primary key,
// at one of three isolation levels:
//
//   * kSerializable     — no-wait strict two-phase locking: a conflicting
//                         lock acquisition fails immediately with kConflict
//                         (the application is expected to abort and surface a
//                         retry error, as the paper's stacks app does).
//   * kReadCommitted    — writers take exclusive locks until commit; readers
//                         read the latest committed version without locking.
//   * kReadUncommitted  — readers observe in-place dirty writes.
//
// Two features mirror the paper's MySQL integration:
//   * each row stores its last writer (rid, tid, op-index), so a GET reports
//     its dictating PUT ("storing each row's last writer in the row itself");
//   * a binlog records, at commit time, the final modification each committed
//     transaction made to each key, in commit order — this is the write
//     order the server ships as advice (§4.4, "repurposing MySQL's binlog").
#ifndef SRC_TXKV_STORE_H_
#define SRC_TXKV_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/adya/history.h"
#include "src/common/ids.h"
#include "src/common/value.h"

namespace karousos {

enum class IsolationLevel : uint8_t { kSerializable, kReadCommitted, kReadUncommitted };

const char* IsolationLevelName(IsolationLevel level);

enum class TxStatus : uint8_t {
  kOk,
  kConflict,      // Lock conflict; caller should Abort (no-wait 2PL).
  kInvalidTxn,    // Unknown or already-finished transaction.
};

struct KvGetResult {
  TxStatus status = TxStatus::kOk;
  bool found = false;
  Value value;
  // Dictating PUT: position of the write this read observed (nil when the
  // key had never been written).
  TxOpRef dictating_write;
};

class TxKvStore {
 public:
  explicit TxKvStore(IsolationLevel level) : level_(level) {}

  IsolationLevel level() const { return level_; }

  // Opens a transaction. `tid` must be globally unique (the server derives it
  // from the tx_start operation's coordinates). Returns kInvalidTxn on reuse.
  TxStatus Begin(RequestId rid, TxId tid);

  // Reads `key`. `self_index` is the 1-based position of this GET within the
  // transaction's operation sequence (used only for bookkeeping symmetry; the
  // dictating write is what matters).
  KvGetResult Get(RequestId rid, TxId tid, const std::string& key);

  // Writes `key`. `self` identifies this PUT (rid, tid, index within txn) so
  // the row's last-writer field and the binlog can reference it.
  TxStatus Put(RequestId rid, TxId tid, uint32_t self_index, const std::string& key, Value value);

  // Commits: applies buffered/dirty writes as the committed versions, appends
  // the transaction's final per-key writes to the binlog, releases locks.
  TxStatus Commit(RequestId rid, TxId tid);

  // Aborts: reverts dirty writes, releases locks. Aborting an unknown
  // transaction is a no-op (applications abort defensively on conflict).
  void Abort(RequestId rid, TxId tid);

  // The binlog: write order of committed final modifications.
  const WriteOrder& binlog() const { return binlog_; }

  // Committed-state inspection (tests and the sequential baseline).
  std::optional<Value> CommittedValue(const std::string& key) const;
  size_t open_transaction_count() const { return open_.size(); }
  size_t key_count() const { return rows_.size(); }

  // Drops all state (between benchmark repetitions).
  void Reset();

 private:
  struct Row {
    bool has_committed = false;
    Value committed;
    TxOpRef committed_writer;      // Last committed PUT (nil before first commit).
    // At most one uncommitted writer at a time (writers always take the
    // exclusive lock, at every isolation level).
    bool has_dirty = false;
    Value dirty;
    TxOpRef dirty_writer;
    // Lock table entry: exclusive owner, or shared holders (serializable).
    TxnKey x_owner{};              // {0,0} when unheld.
    std::vector<TxnKey> s_holders;
  };

  struct OpenTxn {
    RequestId rid = 0;
    // Keys this transaction has locked, for release on commit/abort.
    std::vector<std::string> s_locked;
    std::vector<std::string> x_locked;
    // Final write per key: op index of the last PUT (insertion-ordered by
    // first write so the binlog order is deterministic). Own-reads are served
    // from the row's dirty slot, which this transaction owns while writing.
    std::vector<std::pair<std::string, uint32_t>> final_writes;
  };

  bool AcquireShared(Row& row, const TxnKey& txn);
  bool AcquireExclusive(Row& row, const TxnKey& txn);
  void ReleaseLocks(const TxnKey& txn, OpenTxn& state);
  void RecordFinalWrite(OpenTxn& state, const std::string& key, uint32_t index);

  IsolationLevel level_;
  std::map<std::string, Row> rows_;
  std::map<TxnKey, OpenTxn> open_;
  // Ids of transactions that ever existed, to reject tid reuse.
  std::map<TxnKey, bool> seen_;
  WriteOrder binlog_;
};

}  // namespace karousos

#endif  // SRC_TXKV_STORE_H_
