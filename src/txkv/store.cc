#include "src/txkv/store.h"

#include <algorithm>

namespace karousos {

const char* IsolationLevelName(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kSerializable:
      return "serializable";
    case IsolationLevel::kReadCommitted:
      return "read-committed";
    case IsolationLevel::kReadUncommitted:
      return "read-uncommitted";
  }
  return "unknown";
}

TxStatus TxKvStore::Begin(RequestId rid, TxId tid) {
  TxnKey txn{rid, tid};
  if (seen_.count(txn) > 0) {
    return TxStatus::kInvalidTxn;
  }
  seen_[txn] = true;
  OpenTxn state;
  state.rid = rid;
  open_.emplace(txn, std::move(state));
  return TxStatus::kOk;
}

bool TxKvStore::AcquireShared(Row& row, const TxnKey& txn) {
  if (row.x_owner == txn) {
    return true;  // Already hold exclusive; shared is implied.
  }
  if (row.x_owner != TxnKey{}) {
    return false;  // No-wait: another writer holds the row.
  }
  if (std::find(row.s_holders.begin(), row.s_holders.end(), txn) == row.s_holders.end()) {
    row.s_holders.push_back(txn);
    return true;
  }
  return true;
}

bool TxKvStore::AcquireExclusive(Row& row, const TxnKey& txn) {
  if (row.x_owner == txn) {
    return true;
  }
  if (row.x_owner != TxnKey{}) {
    return false;
  }
  if (level_ == IsolationLevel::kSerializable) {
    for (const TxnKey& holder : row.s_holders) {
      if (!(holder == txn)) {
        return false;  // Readers block writers under 2PL; no-wait -> conflict.
      }
    }
  }
  // Upgrade: drop our shared hold, take exclusive.
  row.s_holders.erase(std::remove(row.s_holders.begin(), row.s_holders.end(), txn),
                      row.s_holders.end());
  row.x_owner = txn;
  return true;
}

void TxKvStore::RecordFinalWrite(OpenTxn& state, const std::string& key, uint32_t index) {
  for (auto& [k, idx] : state.final_writes) {
    if (k == key) {
      idx = index;
      return;
    }
  }
  state.final_writes.emplace_back(key, index);
}

KvGetResult TxKvStore::Get(RequestId rid, TxId tid, const std::string& key) {
  KvGetResult result;
  TxnKey txn{rid, tid};
  auto it = open_.find(txn);
  if (it == open_.end()) {
    result.status = TxStatus::kInvalidTxn;
    return result;
  }
  auto row_it = rows_.find(key);
  Row* row = row_it == rows_.end() ? nullptr : &row_it->second;

  // Own uncommitted write: every isolation level observes it.
  if (row != nullptr && row->has_dirty && row->dirty_writer.rid == rid &&
      row->dirty_writer.tid == tid) {
    result.found = true;
    result.value = row->dirty;
    result.dictating_write = row->dirty_writer;
    return result;
  }

  switch (level_) {
    case IsolationLevel::kSerializable: {
      // Lock even absent rows, via row creation, so that a later writer of
      // the key conflicts with this reader (phantom-free for point reads).
      if (row == nullptr) {
        row = &rows_[key];
      }
      if (!AcquireShared(*row, txn)) {
        result.status = TxStatus::kConflict;
        return result;
      }
      it->second.s_locked.push_back(key);
      if (row->has_committed) {
        result.found = true;
        result.value = row->committed;
        result.dictating_write = row->committed_writer;
      }
      return result;
    }
    case IsolationLevel::kReadCommitted: {
      if (row != nullptr && row->has_committed) {
        result.found = true;
        result.value = row->committed;
        result.dictating_write = row->committed_writer;
      }
      return result;
    }
    case IsolationLevel::kReadUncommitted: {
      if (row != nullptr && row->has_dirty) {
        result.found = true;
        result.value = row->dirty;
        result.dictating_write = row->dirty_writer;
      } else if (row != nullptr && row->has_committed) {
        result.found = true;
        result.value = row->committed;
        result.dictating_write = row->committed_writer;
      }
      return result;
    }
  }
  return result;
}

TxStatus TxKvStore::Put(RequestId rid, TxId tid, uint32_t self_index, const std::string& key,
                        Value value) {
  TxnKey txn{rid, tid};
  auto it = open_.find(txn);
  if (it == open_.end()) {
    return TxStatus::kInvalidTxn;
  }
  Row& row = rows_[key];
  if (!AcquireExclusive(row, txn)) {
    return TxStatus::kConflict;
  }
  if (!row.has_dirty) {
    it->second.x_locked.push_back(key);
  }
  row.has_dirty = true;
  row.dirty = std::move(value);
  row.dirty_writer = TxOpRef{rid, tid, self_index};
  RecordFinalWrite(it->second, key, self_index);
  return TxStatus::kOk;
}

TxStatus TxKvStore::Commit(RequestId rid, TxId tid) {
  TxnKey txn{rid, tid};
  auto it = open_.find(txn);
  if (it == open_.end()) {
    return TxStatus::kInvalidTxn;
  }
  OpenTxn& state = it->second;
  for (const auto& [key, index] : state.final_writes) {
    Row& row = rows_[key];
    row.has_committed = true;
    row.committed = row.dirty;
    row.committed_writer = TxOpRef{rid, tid, index};
    row.has_dirty = false;
    binlog_.push_back(TxOpRef{rid, tid, index});
  }
  ReleaseLocks(txn, state);
  open_.erase(it);
  return TxStatus::kOk;
}

void TxKvStore::Abort(RequestId rid, TxId tid) {
  TxnKey txn{rid, tid};
  auto it = open_.find(txn);
  if (it == open_.end()) {
    return;
  }
  OpenTxn& state = it->second;
  for (const std::string& key : state.x_locked) {
    Row& row = rows_[key];
    if (row.has_dirty && row.dirty_writer.rid == rid && row.dirty_writer.tid == tid) {
      row.has_dirty = false;
      row.dirty = Value();
      row.dirty_writer = kNilTxOp;
    }
  }
  ReleaseLocks(txn, state);
  open_.erase(it);
}

void TxKvStore::ReleaseLocks(const TxnKey& txn, OpenTxn& state) {
  for (const std::string& key : state.x_locked) {
    auto row_it = rows_.find(key);
    if (row_it != rows_.end() && row_it->second.x_owner == txn) {
      row_it->second.x_owner = TxnKey{};
    }
  }
  for (const std::string& key : state.s_locked) {
    auto row_it = rows_.find(key);
    if (row_it == rows_.end()) {
      continue;
    }
    auto& holders = row_it->second.s_holders;
    holders.erase(std::remove(holders.begin(), holders.end(), txn), holders.end());
  }
}

std::optional<Value> TxKvStore::CommittedValue(const std::string& key) const {
  auto it = rows_.find(key);
  if (it == rows_.end() || !it->second.has_committed) {
    return std::nullopt;
  }
  return it->second.committed;
}

void TxKvStore::Reset() {
  rows_.clear();
  open_.clear();
  seen_.clear();
  binlog_.clear();
}

}  // namespace karousos
