#include "src/analysis/race.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <vector>

namespace karousos {

std::string UntrackedAccess::ToString() const {
  std::ostringstream out;
  out << (kind == Kind::kWrite ? "write" : "read") << " of '" << name << "' at r" << rid << "/h"
      << std::hex << hid << std::dec << " (label " << LabelToString(label) << ", access #" << seq
      << ")";
  return out.str();
}

std::string RaceFinding::Describe() const {
  std::ostringstream out;
  out << "untracked variable '" << var_name << "': " << first.ToString() << " and "
      << second.ToString()
      << " are not ordered by R — annotate the variable as loggable (§5 precondition violated)";
  return out.str();
}

namespace {

// Vector clock over one request's handler activations. Components are
// interned per distinct A-order label; values are access counts (see race.h).
using VectorClock = std::vector<uint32_t>;

// Interns handler labels to dense component slots, per request.
class ComponentSpace {
 public:
  uint32_t SlotOf(const HandlerLabel& label) {
    auto [it, inserted] = slots_.emplace(label, static_cast<uint32_t>(slots_.size()));
    return it->second;
  }
  size_t size() const { return slots_.size(); }

 private:
  std::map<HandlerLabel, uint32_t> slots_;
};

bool PointwiseLeq(const VectorClock& a, const VectorClock& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    uint32_t rhs = i < b.size() ? b[i] : 0;
    if (a[i] > rhs) {
      return false;
    }
  }
  return true;
}

struct ClockedAccess {
  const UntrackedAccess* access = nullptr;
  VectorClock clock;
};

// R-orders two accesses of the same request via their vector clocks.
bool HappensBefore(const ClockedAccess& a, const ClockedAccess& b) {
  return PointwiseLeq(a.clock, b.clock);
}

}  // namespace

std::vector<RaceFinding> DetectUntrackedRaces(const UntrackedAccessLog& log) {
  // Pass 1: per (request, handler-label), total number of untracked accesses
  // — the clock value ancestors contribute — and the component slots.
  std::map<RequestId, ComponentSpace> spaces;
  std::map<std::pair<RequestId, HandlerLabel>, uint32_t> handler_access_counts;
  for (const UntrackedAccess& a : log) {
    if (a.rid == kInitRequestId) {
      continue;  // Initialization R-precedes everything; never part of a race.
    }
    spaces[a.rid].SlotOf(a.label);
    uint32_t& count = handler_access_counts[{a.rid, a.label}];
    count = std::max(count, a.seq);
  }

  // Pass 2: assemble the per-variable access lists with their clocks.
  struct VarAccesses {
    std::vector<ClockedAccess> all;
    bool has_request_write = false;  // Any non-init write at all?
  };
  std::map<VarId, VarAccesses> by_var;
  for (const UntrackedAccess& a : log) {
    ClockedAccess clocked;
    clocked.access = &a;
    if (a.rid != kInitRequestId) {
      ComponentSpace& space = spaces[a.rid];
      clocked.clock.assign(space.size(), 0);
      // Ancestor components: all of the ancestor handler's accesses precede
      // this one (A orders at handler granularity, matching RPrecedes).
      HandlerLabel prefix;
      for (size_t depth = 0; depth < a.label.size(); ++depth) {
        prefix.push_back(a.label[depth]);
        auto count_it = handler_access_counts.find({a.rid, prefix});
        if (count_it == handler_access_counts.end()) {
          continue;  // Ancestor performed no untracked accesses.
        }
        uint32_t value = depth + 1 == a.label.size() ? a.seq : count_it->second;
        clocked.clock[space.SlotOf(prefix)] = value;
      }
      if (a.kind == UntrackedAccess::Kind::kWrite) {
        by_var[a.vid].has_request_write = true;
      }
    }
    by_var[a.vid].all.push_back(std::move(clocked));
  }

  // Pass 3: pairwise conflict detection per variable. Only pairs with at
  // least one write conflict; a variable never written after initialization
  // (the legitimate read-only-config pattern) is skipped outright.
  std::vector<RaceFinding> findings;
  std::set<std::tuple<VarId, RequestId, HandlerId, RequestId, HandlerId, bool>> seen;
  for (const auto& [vid, var] : by_var) {
    if (!var.has_request_write) {
      continue;
    }
    const std::vector<ClockedAccess>& accesses = var.all;
    for (size_t i = 0; i < accesses.size(); ++i) {
      const UntrackedAccess& a = *accesses[i].access;
      if (a.rid == kInitRequestId) {
        continue;
      }
      for (size_t j = i + 1; j < accesses.size(); ++j) {
        const UntrackedAccess& b = *accesses[j].access;
        if (b.rid == kInitRequestId) {
          continue;
        }
        bool a_writes = a.kind == UntrackedAccess::Kind::kWrite;
        bool b_writes = b.kind == UntrackedAccess::Kind::kWrite;
        if (!a_writes && !b_writes) {
          continue;
        }
        bool ordered;
        if (a.rid != b.rid) {
          ordered = false;  // Different requests are never R-ordered.
        } else {
          ordered = HappensBefore(accesses[i], accesses[j]) ||
                    HappensBefore(accesses[j], accesses[i]);
        }
        if (ordered) {
          continue;
        }
        bool both_write = a_writes && b_writes;
        // One racy code path (handler pair) reports once, not per request
        // pair: key on the handler ids with requests collapsed when the race
        // is cross-request.
        bool cross_request = a.rid != b.rid;
        auto key = std::make_tuple(vid, cross_request ? 0 : a.rid, std::min(a.hid, b.hid),
                                   cross_request ? 0 : b.rid, std::max(a.hid, b.hid), both_write);
        if (!seen.insert(key).second) {
          continue;
        }
        RaceFinding finding;
        finding.rule = both_write ? kRuleRaceWriteWrite : kRuleRaceReadWrite;
        finding.vid = vid;
        finding.var_name = !a.name.empty() ? a.name : b.name;
        finding.first = a;
        finding.second = b;
        findings.push_back(std::move(finding));
      }
    }
  }
  return findings;
}

std::vector<LintDiagnostic> RaceFindingsToDiagnostics(const std::vector<RaceFinding>& findings) {
  std::vector<LintDiagnostic> out;
  out.reserve(findings.size());
  for (const RaceFinding& f : findings) {
    LintDiagnostic d;
    d.rule = f.rule;
    d.severity = LintSeverity::kWarning;
    std::ostringstream loc;
    loc << "untracked[0x" << std::hex << f.vid << std::dec << "]";
    d.location = loc.str();
    d.message = f.Describe();
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace karousos
