// Systematic mutation catalog over KSEG segment streams, shared by the
// mutation fuzzer (tools/kseg_fuzz.cc) and the static-check bench. Three
// mutation families over one honest (trace, advice, epoch_requests) run:
//
//   * component — the nine adversarial seeds from tests/epoch_audit_test.cc
//     (forged responses, tampered/ghost/dropped log entries, inflated
//     opcounts, swapped write order, ...) applied to the monolith and then
//     sliced, so the defect survives honest slicing;
//   * slice — cross-epoch defects injected after slicing (content duplicated
//     into a foreign epoch, recurring write-order entries, tampered or
//     fabricated continuity imports): the KAR-SEG rule family's home turf;
//   * frame — byte-level container damage (payload/CRC/kind/epoch bytes,
//     dropped/duplicated/swapped/truncated frames, header corruption) against
//     every frame of both encoded streams;
//   * codec — damage to storage-class compressed (v2) streams: unknown or
//     stripped flag bits (the flags byte is outside the CRC), a dropped block
//     stage, stored-payload truncation with the length and CRC fixed up, and
//     declared-decoded-size tampering on blocked frames. The container framing
//     stays honest, so only the codec layer can reject these.
//
// Every mutation is semantic: an audit must reject it (statically or
// dynamically), and neither the checker nor the audit may crash on it.
#ifndef SRC_ANALYSIS_KSEG_MUTATE_H_
#define SRC_ANALYSIS_KSEG_MUTATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/server/advice.h"
#include "src/trace/trace.h"

namespace karousos {

struct KsegMutation {
  std::string name;  // Family:detail, e.g. "frame:trace[3]:payload-flip@0".
  std::vector<uint8_t> trace_bytes;
  std::vector<uint8_t> advice_bytes;
};

// Builds the full corpus for one honest run. Deterministic: same inputs,
// same mutations in the same order. Mutations that do not apply to this run
// (e.g. no found GET in the schedule) are skipped, so size the run to make
// every family fire when a floor matters.
std::vector<KsegMutation> BuildMutationCorpus(const Trace& trace, const Advice& advice,
                                              uint64_t epoch_requests);

}  // namespace karousos

#endif  // SRC_ANALYSIS_KSEG_MUTATE_H_
