// The advice linter: a pure, re-execution-free structural pass over a
// deserialized (Trace, Advice) pair.
//
// The verifier's grouped re-execution eventually rejects any malformed
// advice, but it does so deep inside ReExec with reasons phrased in terms of
// divergence ("handler operation missing from the handler log", ...). The
// linter validates the advice's *cross-referential integrity* up front —
// every OpRef, transaction position, and opcount the advice alleges must
// resolve — so that a misbehaving (or merely buggy) server fails fast, with
// a diagnostic naming the exact broken reference. Wrong advice can only cause
// rejection, never wrong acceptance (§2.1), so linting first is free:
// anything the linter rejects, re-execution would also have rejected.
//
// Rule catalogue (stable IDs; tests pin one corruption to each rule):
//   KAR-ADV-001  advice component references a request id not in the trace
//   KAR-ADV-002  opcounts entry malformed (reserved handler id, count overflow)
//   KAR-ADV-003  dangling VarLogEntry::prec (absent, non-write, or self)
//   KAR-ADV-004  var-log entry coordinates not covered by opcounts
//   KAR-ADV-005  handler-log entry coordinates not covered by opcounts
//   KAR-ADV-006  two log entries claim the same operation coordinates
//   KAR-ADV-007  responseEmittedBy references an unknown (rid, hid) or opnum
//   KAR-ADV-008  responseEmittedBy missing for a request in the trace
//   KAR-ADV-009  write-order entry names a transaction-log position that is
//                absent or not a PUT
//   KAR-ADV-010  the alleged write order is cyclic (an entry recurs)
//   KAR-ADV-011  tx-log GET's dictating-write reference does not resolve to a
//                matching PUT
//   KAR-ADV-012  tx-log entry coordinates not covered by opcounts
//   KAR-ADV-013  nondet record references an operation not covered by opcounts
//   KAR-ADV-014  re-execution tag missing for a request in the trace
#ifndef SRC_ANALYSIS_LINT_H_
#define SRC_ANALYSIS_LINT_H_

#include <functional>
#include <set>
#include <vector>

#include "src/adya/checker.h"
#include "src/analysis/diagnostic.h"
#include "src/server/advice.h"
#include "src/trace/trace.h"

namespace karousos {

// Runs every lint rule and returns the findings in rule-ID order (then in
// deterministic advice-iteration order within a rule). Pure: no re-execution,
// no program access, no mutation.
std::vector<LintDiagnostic> LintAdvice(const Trace& trace, const Advice& advice);

// --- Epoch-sliced linting (the streaming AuditSession) ----------------------
//
// The session lints each epoch's advice slice as it arrives. Rules that are
// local to a slice run unchanged; the cross-slice references (a var-log prec
// or a GET's dictating write living in another epoch) resolve through the
// hooks below, and the write-order rules (009/010) — which are global by
// definition — run once over the accumulated order via LintWriteOrder.

// Whether a var-log predecessor reference resolves, and to a write entry.
struct VarPrecLookup {
  bool present = false;
  bool is_write = false;
};

struct LintEpochContext {
  // Request ids seen in the trace stream so far (rule 001's universe).
  const std::set<RequestId>* trace_rids = nullptr;
  // This epoch's request ids (rules 008/014 demand per-request coverage; the
  // slice can only be expected to cover its own epoch's requests).
  const std::set<RequestId>* epoch_rids = nullptr;
  // Resolves a prec that is absent from the slice's own var log (earlier
  // epochs' carried entries, later epochs' continuity imports).
  std::function<VarPrecLookup(VarId, const OpRef&)> var_prec;
  // Same, for transaction-log coordinates (rule 011).
  TxOpResolverFn tx_op;
};

// Runs rules 001-008 and 011-014 over one epoch slice. Write-order rules are
// deferred; run LintWriteOrder over the accumulated order at Finish.
std::vector<LintDiagnostic> LintAdviceEpoch(const Advice& slice, const LintEpochContext& ctx);

// Rules 009/010 over an assembled write order, resolving entries through
// `tx_op` (the session's carries). Appends findings to `out`.
void LintWriteOrder(const WriteOrder& write_order, const TxOpResolverFn& tx_op,
                    std::vector<LintDiagnostic>* out);

}  // namespace karousos

#endif  // SRC_ANALYSIS_LINT_H_
