// Cross-epoch static model checking over KSEG advice streams.
//
// The per-epoch linter (src/analysis/lint.h) validates one slice at a time;
// everything that spans segment boundaries — claim uniqueness across epochs,
// opcount stability, write-order totality over the concatenated chunks,
// continuity-import closure, prec-chain acyclicity over the whole run — needs
// state carried from every completed epoch. CarryLint is that state: a static
// mirror of the AuditSession's CarryState that costs no re-execution and whose
// pass runs both inside the session (the fast-reject pre-screen before
// Preprocess/ReExec) and standalone (`karousos check`), emitting identical
// diagnostics wherever both run.
//
// Rule catalogue (stable IDs; KAR-SEG-001..003 and 010 are container-layer and
// fire in the stream loader, 004..009 fire here):
//   KAR-SEG-001  segment container unreadable (magic/version, CRC, truncation)
//   KAR-SEG-002  frame schema violation (unexpected kind, undecodable payload)
//   KAR-SEG-003  epoch sequencing violation (duplicate, out of order, gap)
//   KAR-SEG-004  operation coordinates claimed by log entries in two epochs
//   KAR-SEG-005  opcounts entry for one (rid, hid) declared in two epochs
//   KAR-SEG-006  write-order entry recurs across epoch chunks
//   KAR-SEG-007  advice content outside its owning epoch's slice
//   KAR-SEG-008  continuity import broken (non-forward, contradicts the slice
//                it mirrors once that epoch arrives, or dangles past the end)
//   KAR-SEG-009  var-log prec chain cyclic across epochs
//   KAR-SEG-010  trace and advice streams disagree on the epoch set
//
// Every KAR-SEG advice rule fires only on genuinely cross-epoch phenomena: a
// single-epoch stream (epoch_requests == 0) can never trip 004..009, which is
// what keeps the streamed-with-pre-screen verdict bit-identical to the
// one-shot audit on honest slicings.
#ifndef SRC_ANALYSIS_CARRY_LINT_H_
#define SRC_ANALYSIS_CARRY_LINT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/adya/checker.h"
#include "src/analysis/diagnostic.h"
#include "src/analysis/lint.h"
#include "src/common/flat_map.h"
#include "src/common/serde.h"
#include "src/server/rollover.h"

namespace karousos {

inline constexpr const char* kKarSeg001 = "KAR-SEG-001";
inline constexpr const char* kKarSeg002 = "KAR-SEG-002";
inline constexpr const char* kKarSeg003 = "KAR-SEG-003";
inline constexpr const char* kKarSeg004 = "KAR-SEG-004";
inline constexpr const char* kKarSeg005 = "KAR-SEG-005";
inline constexpr const char* kKarSeg006 = "KAR-SEG-006";
inline constexpr const char* kKarSeg007 = "KAR-SEG-007";
inline constexpr const char* kKarSeg008 = "KAR-SEG-008";
inline constexpr const char* kKarSeg009 = "KAR-SEG-009";
inline constexpr const char* kKarSeg010 = "KAR-SEG-010";
// Shard-axis rules (PR 10). 011 fires in the shard-file loader, 012..015 at
// audit-merge; like 004..009 they can only fire on genuinely cross-shard
// phenomena, so a single-shard run (K == 1) reproduces the unsharded verdict.
inline constexpr const char* kKarSeg011 = "KAR-SEG-011";  // boundary segment malformed
inline constexpr const char* kKarSeg012 = "KAR-SEG-012";  // rid coverage broken (overlap, gap, split group)
inline constexpr const char* kKarSeg013 = "KAR-SEG-013";  // write-order stitch broken / totals mismatch
inline constexpr const char* kKarSeg014 = "KAR-SEG-014";  // cross-shard state contradiction
inline constexpr const char* kKarSeg015 = "KAR-SEG-015";  // artifact set inconsistent

// Incremental cross-epoch checker. Drive it like the session drives its own
// carries: RegisterImports + CheckEpoch as each epoch arrives (after the
// slice-local KAR-ADV lint, so per-epoch diagnostics keep catalogue order),
// EndEpoch to fold the slice in, Finish once the stream ends.
class CarryLint {
 public:
  CarryLint() = default;

  // `standalone` additionally tracks the resolution carries (transaction
  // shapes, PUT keys, var-entry kinds, the concatenated write order) that the
  // standalone checker needs to mirror the session's reference resolution and
  // finish-time write-order lint. The in-session instance leaves them off:
  // the verifier already holds the real carries.
  void Begin(uint64_t epoch_requests, bool standalone);

  // Registers this epoch's forward allegations. Runs before the slice lint so
  // that (in standalone mode) the lint hooks can resolve through them —
  // mirroring the session, which registers imports before LintAdviceEpoch.
  void RegisterImports(const EpochSegment& segment);

  // Shard-axis scope (src/server/shard.h): `owned` is the set of trace rids
  // this shard's audit owns, kept alive by the caller. With a filter set,
  // continuity imports whose target is an in-trace rid owned by another shard
  // are exempt from the forward-direction rule (cross-shard imports may point
  // backward) and from local arrival-confirmation (the target's content never
  // arrives here; the merge confirms them against the owning shard's
  // artifact). nullptr — the default — is the unsharded behavior.
  void SetShardFilter(const std::set<RequestId>* owned) { shard_filter_ = owned; }

  // The per-epoch KAR-SEG pass (rules 004..008). `trace_rids` is the stream's
  // accumulated request-id universe (rids outside it are KAR-ADV-001's to
  // report, not ours). Appends findings to `out`.
  void CheckEpoch(const EpochSegment& segment, const std::set<RequestId>& trace_rids,
                  std::vector<LintDiagnostic>* out);

  // Folds the slice into the carried claim/opcount/write-order/prec state.
  void EndEpoch(const EpochSegment& segment);

  // Finish-time rules. In standalone mode the accumulated write-order lint
  // (KAR-ADV-009/010) runs first — the same position it holds in the
  // session's StreamFinish — then rule 007's early-content verdicts, 008's
  // residual import closure, and 009's cross-epoch prec acyclicity.
  void Finish(std::vector<LintDiagnostic>* out);

  // Standalone resolvers: the static mirror of Verifier::ResolveTxOp /
  // ResolveVarEntry minus the live slice (the lint checks its own slice
  // before falling back to these).
  ResolvedTxOp ResolveTxOp(const TxOpRef& ref) const;
  VarPrecLookup ResolveVarPrec(VarId vid, const OpRef& op) const;

  uint64_t epochs_folded() const { return epochs_; }

  // Checkpoint round-trip (canonical sorted encoding, the session checkpoint
  // discipline). Deserialize returns false on malformed or truncated input.
  void Serialize(ByteWriter* out) const;
  bool Deserialize(ByteReader* in);

 private:
  struct PrecEdge {
    OpRef prec;
    uint64_t epoch = 0;  // Epoch of the entry holding the prec.
  };
  struct EarlyContent {
    uint64_t seen_epoch = 0;   // Slice the content appeared in.
    uint64_t owner_epoch = 0;  // Epoch its rid belongs to (> seen_epoch).
    std::string location;
  };
  struct PendingTxImport {
    ContinuityImports::TxOpImport imp;
    uint64_t registered_epoch = 0;
  };
  struct PendingVarImport {
    ContinuityImports::VarImport imp;
    uint64_t registered_epoch = 0;
  };

  void Emit(const char* rule, std::string location, std::string message,
            std::vector<LintDiagnostic>* out) const;
  void CheckDuplicateClaims(const EpochSegment& segment, std::vector<LintDiagnostic>* out);
  void CheckOpcountEpochs(const EpochSegment& segment, std::vector<LintDiagnostic>* out);
  void CheckWriteOrderRecurrence(const EpochSegment& segment, std::vector<LintDiagnostic>* out);
  void CheckContentOwnership(const EpochSegment& segment, std::vector<LintDiagnostic>* out);
  void CheckImports(const EpochSegment& segment, const std::set<RequestId>& trace_rids,
                    std::vector<LintDiagnostic>* out);
  // True when a shard filter is set and `rid` is an in-trace request owned by
  // another shard (imports targeting it are confirmed at merge, not here).
  bool ForeignTarget(RequestId rid, const std::set<RequestId>& trace_rids) const;
  void FinishEarlyContent(std::vector<LintDiagnostic>* out);
  void FinishImports(std::vector<LintDiagnostic>* out);
  void FinishPrecChains(std::vector<LintDiagnostic>* out);

  uint64_t epoch_requests_ = 0;
  bool standalone_ = false;
  uint64_t epochs_ = 0;  // Epochs folded so far == index of the current epoch.
  // Not owned, not checkpointed: the shard audit re-installs it per process.
  const std::set<RequestId>* shard_filter_ = nullptr;

  // Cross-epoch bookkeeping (both modes). Values are the first epoch that
  // owned the key; probes against the current epoch detect recurrence.
  FlatMap<OpRef, uint64_t> claimed_ops_;
  FlatMap<std::pair<RequestId, HandlerId>, uint64_t> opcount_epochs_;
  FlatMap<TxOpRef, uint64_t> write_order_epochs_;
  FlatMap<std::pair<VarId, OpRef>, PrecEdge> prec_edges_;
  std::vector<EarlyContent> early_content_;
  // node-keyed maps stay std::map: resolvers hand out pointers into them and
  // the checkpoint wants their sorted order anyway.
  std::map<TxOpRef, PendingTxImport> pending_tx_imports_;
  std::map<std::pair<VarId, OpRef>, PendingVarImport> pending_var_imports_;

  // Standalone-only resolution carries.
  FlatMap<TxnKey, uint32_t> txn_sizes_;
  std::map<TxOpRef, std::string> put_keys_;
  FlatMap<std::pair<VarId, OpRef>, bool> var_kinds_;  // true == write entry.
  WriteOrder order_;
};

}  // namespace karousos

#endif  // SRC_ANALYSIS_CARRY_LINT_H_
