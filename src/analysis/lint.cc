#include "src/analysis/lint.h"

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "src/common/flat_map.h"
#include "src/common/graph.h"

namespace karousos {

const char* LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kError:
      return "error";
    case LintSeverity::kWarning:
      return "warning";
  }
  return "?";
}

std::string LintDiagnostic::Format() const {
  std::ostringstream out;
  out << rule << " " << LintSeverityName(severity) << " at " << location << ": " << message;
  return out.str();
}

bool HasLintErrors(const std::vector<LintDiagnostic>& diagnostics) {
  for (const LintDiagnostic& d : diagnostics) {
    if (d.severity == LintSeverity::kError) {
      return true;
    }
  }
  return false;
}

namespace {

// Shared state for one lint run: the trace's request-id set and the advice
// under scrutiny, plus the output sink. One-shot runs own their request-id
// set and resolve every reference inside the advice itself; epoch runs
// (LintAdviceEpoch) borrow the session's accumulated id sets and fall back to
// the session's resolvers for references that leave the slice.
class Linter {
 public:
  Linter(const Trace& trace, const Advice& advice, std::vector<LintDiagnostic>* out)
      : advice_(advice), out_(*out) {
    for (RequestId rid : trace.RequestIds()) {
      own_rids_.insert(rid);
    }
    trace_rids_ = &own_rids_;
    coverage_rids_ = &own_rids_;
  }

  Linter(const Advice& slice, const LintEpochContext& ctx, std::vector<LintDiagnostic>* out)
      : advice_(slice), out_(*out), trace_rids_(ctx.trace_rids), coverage_rids_(ctx.epoch_rids),
        var_prec_hook_(ctx.var_prec), tx_op_hook_(ctx.tx_op), epoch_mode_(true) {}

  void Run() {
    // Rules run in catalogue order so that the first error — the one the
    // verifier's structured RejectError carries — is deterministic.
    CheckRequestIds();        // 001
    CheckOpcounts();          // 002
    CheckVarLogPrecs();       // 003
    CheckVarLogCoverage();    // 004
    CheckHandlerLogs();       // 005
    CheckDuplicateClaims();   // 006
    CheckResponseEmittedBy(); // 007, 008
    if (!epoch_mode_) {
      // The write order is global; epoch sessions lint the accumulated order
      // once, at Finish, through RunWriteOrderRules.
      CheckWriteOrderRefs(advice_.write_order);   // 009
      CheckWriteOrderAcyclic(advice_.write_order);// 010
    }
    CheckTxLogGets();         // 011
    CheckTxLogCoverage();     // 012
    CheckNondet();            // 013
    CheckTags();              // 014
  }

  void RunWriteOrderRules(const WriteOrder& order) {
    CheckWriteOrderRefs(order);     // 009
    CheckWriteOrderAcyclic(order);  // 010
  }

 private:
  void Emit(const char* rule, std::string location, std::string message) {
    out_.push_back(LintDiagnostic{rule, LintSeverity::kError, std::move(location),
                                  std::move(message)});
  }

  bool InTrace(RequestId rid) const { return trace_rids_->count(rid) > 0; }

  // Resolves a transaction-log coordinate: the advice under scrutiny first
  // (the whole advice one-shot, the slice in epoch mode), then the epoch
  // hook. One-shot behavior is exactly the old direct map lookup.
  ResolvedTxOp LookupTxOp(const TxOpRef& ref) const {
    auto log_it = advice_.tx_logs.find(TxnKey{ref.rid, ref.tid});
    if (log_it != advice_.tx_logs.end()) {
      ResolvedTxOp out;
      out.txn_present = true;
      if (ref.index >= 1 && ref.index <= log_it->second.size()) {
        const TxOperation& op = log_it->second[ref.index - 1];
        out.op_present = true;
        out.is_put = op.type == TxOpType::kPut;
        out.key = op.key;
        out.put_value = &op.put_value;
        out.hid = op.hid;
        out.opnum = op.opnum;
      }
      return out;
    }
    if (tx_op_hook_) {
      return tx_op_hook_(ref);
    }
    return ResolvedTxOp{};
  }

  // True iff (rid, hid, opnum) is a real operation position: opcounts has the
  // handler and 1 <= opnum <= count.
  bool CoveredByOpcounts(const OpRef& op) const {
    auto it = advice_.opcounts.find({op.rid, op.hid});
    return it != advice_.opcounts.end() && op.opnum >= 1 && op.opnum <= it->second;
  }

  static std::string VarLogLoc(VarId vid, const OpRef& op) {
    std::ostringstream out;
    out << "var_logs[0x" << std::hex << vid << std::dec << "][" << op.ToString() << "]";
    return out.str();
  }

  // KAR-ADV-001: every request id the advice mentions must appear in the
  // trace (the trace is ground truth; advice for phantom requests could only
  // come from a misbehaving server).
  void CheckRequestIds() {
    for (const auto& [rid, tag] : advice_.tags) {
      if (!InTrace(rid)) {
        Emit(kRule001, "tags[r" + std::to_string(rid) + "]",
             "tag for request not in trace");
      }
    }
    for (const auto& [rid, log] : advice_.handler_logs) {
      if (!InTrace(rid)) {
        Emit(kRule001, "handler_logs[r" + std::to_string(rid) + "]",
             "handler log for request not in trace");
      }
    }
    for (const auto& [vid, log] : advice_.var_logs) {
      for (const auto& [op, entry] : log) {
        if (!InTrace(op.rid)) {
          Emit(kRule001, VarLogLoc(vid, op), "variable log entry for request not in trace");
        }
      }
    }
    for (const auto& [txn, log] : advice_.tx_logs) {
      if (!InTrace(txn.rid)) {
        Emit(kRule001, "tx_logs[r" + std::to_string(txn.rid) + "]",
             "transaction log for request not in trace");
      }
    }
    for (const auto& [rid, by] : advice_.response_emitted_by) {
      if (!InTrace(rid)) {
        Emit(kRule001, "response_emitted_by[r" + std::to_string(rid) + "]",
             "responseEmittedBy entry for request not in trace");
      }
    }
    for (const auto& [key, count] : advice_.opcounts) {
      if (!InTrace(key.first)) {
        Emit(kRule001, "opcounts[r" + std::to_string(key.first) + "]",
             "opcounts entry for request " + std::to_string(key.first) + " not in trace");
      }
    }
    for (const auto& [op, record] : advice_.nondet) {
      if (!InTrace(op.rid)) {
        Emit(kRule001, "nondet[" + op.ToString() + "]",
             "non-determinism record for request not in trace");
      }
    }
  }

  // KAR-ADV-002: opcounts keys must name real, non-reserved handlers and the
  // counts must leave room for the handler-exit pseudo-operation.
  void CheckOpcounts() {
    for (const auto& [key, count] : advice_.opcounts) {
      const auto& [rid, hid] = key;
      // Location strings are built only on emission: the happy path across a
      // large advice must not pay for diagnostics it never produces.
      auto loc = [rid = rid, hid = hid] {
        return "opcounts[(r" + std::to_string(rid) + ",h" + std::to_string(hid) + ")]";
      };
      if (hid == kNoHandler || hid == kInitHandlerId) {
        Emit(kRule002, loc(), "opcounts entry with reserved handler id");
      }
      if (count >= kOpNumInf) {
        Emit(kRule002, loc(), "opcount overflow");
      }
    }
  }

  // KAR-ADV-003: a VarLogEntry::prec must resolve within the *same*
  // variable's log, to a distinct entry of kind write. (Reads always carry a
  // dictating write; writes may carry nil when the predecessor was the
  // initialization write or was back-filled.)
  void CheckVarLogPrecs() {
    for (const auto& [vid, log] : advice_.var_logs) {
      for (const auto& [op, entry] : log) {
        // Built lazily: var logs dominate the advice, and the clean path
        // through this check must not format a location per entry.
        auto loc = [vid = vid, &op] { return VarLogLoc(vid, op) + ".prec"; };
        if (entry.prec.IsNil()) {
          if (entry.kind == VarLogEntry::Kind::kRead) {
            Emit(kRule003, loc(), "logged read has no dictating write");
          }
          continue;
        }
        if (entry.prec == op) {
          Emit(kRule003, loc(), "log entry names itself as its own predecessor");
          continue;
        }
        VarPrecLookup prec;
        auto prec_it = log.find(entry.prec);
        if (prec_it != log.end()) {
          prec.present = true;
          prec.is_write = prec_it->second.kind == VarLogEntry::Kind::kWrite;
        } else if (var_prec_hook_) {
          prec = var_prec_hook_(vid, entry.prec);
        }
        if (!prec.present) {
          Emit(kRule003, loc(),
               "dangling predecessor " + entry.prec.ToString() +
                   " (no such entry in this variable's log)");
        } else if (!prec.is_write) {
          Emit(kRule003, loc(),
               "predecessor " + entry.prec.ToString() + " is not a write entry");
        }
      }
    }
  }

  // KAR-ADV-004: variable-log entry keys must be real operation positions.
  void CheckVarLogCoverage() {
    for (const auto& [vid, log] : advice_.var_logs) {
      for (const auto& [op, entry] : log) {
        if (!InTrace(op.rid)) {
          continue;  // Already reported under KAR-ADV-001.
        }
        if (!CoveredByOpcounts(op)) {
          Emit(kRule004, VarLogLoc(vid, op),
               "variable log entry coordinates not covered by opcounts");
        }
      }
    }
  }

  // KAR-ADV-005: handler-log entries must be real operation positions.
  void CheckHandlerLogs() {
    for (const auto& [rid, log] : advice_.handler_logs) {
      if (!InTrace(rid)) {
        continue;  // Already reported under KAR-ADV-001.
      }
      for (size_t i = 0; i < log.size(); ++i) {
        const HandlerLogEntry& e = log[i];
        if (!CoveredByOpcounts(OpRef{rid, e.hid, e.opnum})) {
          Emit(kRule005,
               "handler_logs[r" + std::to_string(rid) + "][" + std::to_string(i) + "]",
               "handler log entry " + OpRef{rid, e.hid, e.opnum}.ToString() +
                   " out of range of opcounts");
        }
      }
    }
  }

  // KAR-ADV-006: every (rid, hid, opnum) may be claimed by at most one log
  // entry across the handler logs, transaction logs, and variable logs — an
  // operation executes once, so two entries for it are contradictory advice.
  void CheckDuplicateClaims() {
    // The claim set is only probed, never iterated, so a hashed set keeps the
    // emitted diagnostics (and their order) identical. Location strings are
    // formatted lazily — only a duplicate pays for one.
    FlatSet<OpRef> claimed;
    auto claim = [&](const OpRef& op, auto&& loc) {
      if (!claimed.insert(op).second) {
        Emit(kRule006, loc(), "two log entries claim the same operation " + op.ToString());
      }
    };
    for (const auto& [rid, log] : advice_.handler_logs) {
      for (size_t i = 0; i < log.size(); ++i) {
        claim(OpRef{rid, log[i].hid, log[i].opnum}, [rid = rid, i] {
          return "handler_logs[r" + std::to_string(rid) + "][" + std::to_string(i) + "]";
        });
      }
    }
    for (const auto& [txn, log] : advice_.tx_logs) {
      for (size_t i = 0; i < log.size(); ++i) {
        claim(OpRef{txn.rid, log[i].hid, log[i].opnum}, [&txn, i] {
          return "tx_logs[" +
                 TxOpRef{txn.rid, txn.tid, static_cast<uint32_t>(i) + 1}.ToString() + "]";
        });
      }
    }
    for (const auto& [vid, log] : advice_.var_logs) {
      for (const auto& [op, entry] : log) {
        claim(op, [vid = vid, &op] { return VarLogLoc(vid, op); });
      }
    }
  }

  // KAR-ADV-007/008: responseEmittedBy must name a real operation for every
  // request, and every trace request must have an entry.
  void CheckResponseEmittedBy() {
    for (const auto& [rid, by] : advice_.response_emitted_by) {
      if (!InTrace(rid)) {
        continue;  // Already reported under KAR-ADV-001.
      }
      const auto& [hid, opnum] = by;
      if (!CoveredByOpcounts(OpRef{rid, hid, opnum}) && opnum != 0) {
        Emit(kRule007, "response_emitted_by[r" + std::to_string(rid) + "]",
             "responseEmittedBy references nonexistent operation " +
                 OpRef{rid, hid, opnum}.ToString());
      } else if (opnum == 0 && advice_.opcounts.count({rid, hid}) == 0) {
        // opnum 0 (response before the handler's first op) is legal, but the
        // handler itself must still exist.
        Emit(kRule007, "response_emitted_by[r" + std::to_string(rid) + "]",
             "responseEmittedBy references unknown handler h" + std::to_string(hid));
      }
    }
    for (RequestId rid : *coverage_rids_) {
      if (advice_.response_emitted_by.count(rid) == 0) {
        Emit(kRule008, "response_emitted_by[r" + std::to_string(rid) + "]",
             "responseEmittedBy missing for request " + std::to_string(rid));
      }
    }
  }

  // KAR-ADV-009: every write-order entry must name an existing transaction-log
  // position holding a PUT.
  void CheckWriteOrderRefs(const WriteOrder& write_order) {
    for (size_t i = 0; i < write_order.size(); ++i) {
      const TxOpRef& w = write_order[i];
      auto loc = [i] { return "write_order[" + std::to_string(i) + "]"; };
      ResolvedTxOp op = LookupTxOp(w);
      if (!op.txn_present) {
        Emit(kRule009, loc(),
             "write-order entry " + w.ToString() + " names a transaction absent from tx_logs");
        continue;
      }
      if (!op.op_present) {
        Emit(kRule009, loc(),
             "write-order entry " + w.ToString() + " index out of range");
        continue;
      }
      if (!op.is_put) {
        Emit(kRule009, loc(),
             "write-order entry " + w.ToString() + " does not name a PUT");
      }
    }
  }

  // KAR-ADV-010: the write order is an alleged *total order*; encode its
  // consecutive-pair precedences as a graph and demand acyclicity. A repeated
  // entry w at positions i < j yields w -> ... -> w, i.e. a cycle.
  void CheckWriteOrderAcyclic(const WriteOrder& write_order) {
    if (write_order.size() < 2) {
      return;
    }
    DirectedGraph order;
    for (size_t i = 0; i + 1 < write_order.size(); ++i) {
      const TxOpRef& from = write_order[i];
      const TxOpRef& to = write_order[i + 1];
      order.AddEdge(NodeKey{from.rid, from.tid, from.index}, NodeKey{to.rid, to.tid, to.index});
    }
    if (!order.HasCycle()) {
      return;
    }
    std::ostringstream cycle;
    for (const NodeKey& node : order.FindCycle()) {
      cycle << " " << TxOpRef{node.a, node.b, static_cast<uint32_t>(node.c)}.ToString();
    }
    Emit(kRule010, "write_order", "the alleged write order is cyclic:" + cycle.str());
  }

  // KAR-ADV-011: a found GET must point at a PUT of the same key; a not-found
  // GET must point at nothing.
  void CheckTxLogGets() {
    for (const auto& [txn, log] : advice_.tx_logs) {
      for (size_t i = 0; i < log.size(); ++i) {
        const TxOperation& op = log[i];
        if (op.type != TxOpType::kGet) {
          continue;
        }
        auto loc = [&txn, i] {
          return "tx_logs[" +
                 TxOpRef{txn.rid, txn.tid, static_cast<uint32_t>(i) + 1}.ToString() + "]";
        };
        if (!op.get_found) {
          if (!op.get_from.IsNil()) {
            Emit(kRule011, loc(), "not-found GET carries a dictating-write reference");
          }
          continue;
        }
        if (op.get_from.IsNil()) {
          Emit(kRule011, loc(), "found GET carries no dictating-write reference");
          continue;
        }
        ResolvedTxOp writer = LookupTxOp(op.get_from);
        if (!writer.txn_present) {
          Emit(kRule011, loc(),
               "GET's dictating write " + op.get_from.ToString() +
                   " names a transaction absent from tx_logs");
          continue;
        }
        if (!writer.op_present) {
          Emit(kRule011, loc(),
               "GET's dictating write " + op.get_from.ToString() + " index out of range");
          continue;
        }
        if (!writer.is_put) {
          Emit(kRule011, loc(),
               "GET's dictating write " + op.get_from.ToString() + " is not a PUT");
        } else if (writer.key != op.key) {
          Emit(kRule011, loc(),
               "GET's dictating write " + op.get_from.ToString() + " wrote key '" +
                   std::string(writer.key) + "', not '" + op.key + "'");
        }
      }
    }
  }

  // KAR-ADV-012: transaction-log entries must be real operation positions.
  void CheckTxLogCoverage() {
    for (const auto& [txn, log] : advice_.tx_logs) {
      if (!InTrace(txn.rid)) {
        continue;  // Already reported under KAR-ADV-001.
      }
      for (size_t i = 0; i < log.size(); ++i) {
        const TxOperation& op = log[i];
        if (!CoveredByOpcounts(OpRef{txn.rid, op.hid, op.opnum})) {
          Emit(kRule012,
               "tx_logs[" + TxOpRef{txn.rid, txn.tid, static_cast<uint32_t>(i) + 1}.ToString() +
                   "]",
               "transaction log entry " + OpRef{txn.rid, op.hid, op.opnum}.ToString() +
                   " not covered by opcounts");
        }
      }
    }
  }

  // KAR-ADV-013: non-determinism records must sit at real operation positions.
  void CheckNondet() {
    for (const auto& [op, record] : advice_.nondet) {
      if (!InTrace(op.rid)) {
        continue;  // Already reported under KAR-ADV-001.
      }
      if (!CoveredByOpcounts(op)) {
        Emit(kRule013, "nondet[" + op.ToString() + "]",
             "non-determinism record not covered by opcounts");
      }
    }
  }

  // KAR-ADV-014: every trace request needs a grouping tag or re-execution
  // cannot place it in any group.
  void CheckTags() {
    for (RequestId rid : *coverage_rids_) {
      if (advice_.tags.count(rid) == 0) {
        Emit(kRule014, "tags[r" + std::to_string(rid) + "]",
             "no re-execution tag for request " + std::to_string(rid));
      }
    }
  }

  static constexpr const char* kRule001 = "KAR-ADV-001";
  static constexpr const char* kRule002 = "KAR-ADV-002";
  static constexpr const char* kRule003 = "KAR-ADV-003";
  static constexpr const char* kRule004 = "KAR-ADV-004";
  static constexpr const char* kRule005 = "KAR-ADV-005";
  static constexpr const char* kRule006 = "KAR-ADV-006";
  static constexpr const char* kRule007 = "KAR-ADV-007";
  static constexpr const char* kRule008 = "KAR-ADV-008";
  static constexpr const char* kRule009 = "KAR-ADV-009";
  static constexpr const char* kRule010 = "KAR-ADV-010";
  static constexpr const char* kRule011 = "KAR-ADV-011";
  static constexpr const char* kRule012 = "KAR-ADV-012";
  static constexpr const char* kRule013 = "KAR-ADV-013";
  static constexpr const char* kRule014 = "KAR-ADV-014";

  const Advice& advice_;
  std::vector<LintDiagnostic>& out_;
  // One-shot runs build own_rids_ from the trace and point both universes at
  // it; epoch runs borrow the session's sets (all requests streamed so far vs
  // this epoch's requests).
  std::set<RequestId> own_rids_;
  const std::set<RequestId>* trace_rids_ = nullptr;
  const std::set<RequestId>* coverage_rids_ = nullptr;
  std::function<VarPrecLookup(VarId, const OpRef&)> var_prec_hook_;
  TxOpResolverFn tx_op_hook_;
  bool epoch_mode_ = false;
};

}  // namespace

std::vector<LintDiagnostic> LintAdvice(const Trace& trace, const Advice& advice) {
  std::vector<LintDiagnostic> diagnostics;
  Linter(trace, advice, &diagnostics).Run();
  return diagnostics;
}

std::vector<LintDiagnostic> LintAdviceEpoch(const Advice& slice, const LintEpochContext& ctx) {
  std::vector<LintDiagnostic> diagnostics;
  Linter(slice, ctx, &diagnostics).Run();
  return diagnostics;
}

void LintWriteOrder(const WriteOrder& write_order, const TxOpResolverFn& tx_op,
                    std::vector<LintDiagnostic>* out) {
  // The accumulated order references transactions from every epoch; the
  // session's carries (via tx_op) are the only surviving view of them.
  static const Advice kEmptyAdvice;
  LintEpochContext ctx;
  ctx.tx_op = tx_op;
  Linter(kEmptyAdvice, ctx, out).RunWriteOrderRules(write_order);
}

}  // namespace karousos
