// Happens-before race detection for unannotated ("untracked") variables.
//
// §5's soundness argument for untracked variables has an unchecked
// precondition: every access to an untracked variable must be ordered by the
// reconstructed order R. R orders two operations of the *same* request iff
// their handlers are related by the activation partial order A (one handler's
// label is a prefix of the other's) — plus program order within a handler —
// and orders initialization before everything; operations of *different*
// requests are never R-ordered. When the precondition is violated the audit
// loses Completeness (honest executions get rejected) with an opaque
// divergence reason; this detector checks the precondition mechanically from
// the server's untracked-access log and names the offending variable and
// access pair.
//
// Mechanics: per request, each handler activation becomes one vector-clock
// component (interned from its A-order label); an access's clock assigns
// count-so-far to every ancestor component and its own sequence number to its
// handler's component. Access a happens-before access b iff clock(a) <=
// clock(b) pointwise — which holds exactly when b's handler is an A-descendant
// of a's (or the same handler, later in program order). Two conflicting
// accesses (same variable, at least one write, neither from initialization)
// whose clocks are incomparable are a race: the §5 precondition is violated
// and the variable must be annotated as loggable.
#ifndef SRC_ANALYSIS_RACE_H_
#define SRC_ANALYSIS_RACE_H_

#include <string>
#include <vector>

#include "src/analysis/access_log.h"
#include "src/analysis/diagnostic.h"

namespace karousos {

// Stable rule IDs for race findings (the analysis layer's diagnostics share
// one namespace with the advice linter's KAR-ADV-* rules).
inline constexpr const char* kRuleRaceWriteWrite = "KAR-RACE-001";
inline constexpr const char* kRuleRaceReadWrite = "KAR-RACE-002";

struct RaceFinding {
  std::string rule;  // kRuleRaceWriteWrite or kRuleRaceReadWrite.
  VarId vid = 0;
  std::string var_name;
  UntrackedAccess first;   // In log (observation) order.
  UntrackedAccess second;
  std::string Describe() const;
};

// Scans the access log and returns every conflicting, un-R-ordered access
// pair, deduplicated by (variable, handler pair, access kinds) so one racy
// code path reports once rather than once per request pair. Deterministic in
// the log order. An empty result means the §5 precondition held for this
// execution.
std::vector<RaceFinding> DetectUntrackedRaces(const UntrackedAccessLog& log);

// Renders findings as analysis-layer diagnostics (warning severity: a race is
// a Completeness hazard the developer must fix by annotating, not a proof of
// server misbehavior, so the audit reports it without rejecting on it).
std::vector<LintDiagnostic> RaceFindingsToDiagnostics(const std::vector<RaceFinding>& findings);

}  // namespace karousos

#endif  // SRC_ANALYSIS_RACE_H_
