// Shard-axis mutation catalog, shared by the mutation fuzzer
// (tools/kseg_fuzz.cc) and the static-check bench: every semantic mutation of
// the sharded-audit pipeline's inputs — shard file bytes, boundary-manifest
// allegations, and post-audit verdict artifacts — must be rejected somewhere
// in load → per-shard audit → merge, and nothing may crash. Three families:
//
//   * file     — byte-level damage (flips, truncations) against one encoded
//     shard file: the container CRC/framing layer's turf (KAR-SEG-001..003);
//   * boundary — semantic lies in the kShardBoundary manifest, re-encoded
//     over honest content (dropped/ghost rids, stale digests, position and
//     totals tampering, chain/export-obligation edits): caught at load
//     (KAR-SEG-011) or at merge (KAR-SEG-012..015);
//   * artifact — merge-only adversaries: every shard passes individually, the
//     verdict artifacts are tampered afterwards (stolen rids, duplicated
//     stitch positions, totals lies, split groups, missing/duplicated
//     artifacts, artifact byte damage). Only MergeShardArtifacts or the
//     artifact loader can see these.
//
// Unlike kseg_mutate.h this module evaluates the corpus too: a mutation's
// rejection point (load, audit, or merge) is part of what the fuzzer checks,
// and the pipeline is cheap enough to run inline.
#ifndef SRC_ANALYSIS_SHARD_MUTATE_H_
#define SRC_ANALYSIS_SHARD_MUTATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/server/advice.h"
#include "src/server/shard.h"
#include "src/trace/trace.h"

namespace karousos {

class Program;

struct ShardMutationOutcome {
  std::string name;   // family:detail, e.g. "boundary:write-order-total+1".
  bool rejected = false;
  bool crashed = false;
  std::string stage;  // Where the pipeline stopped: "load", "audit", "merge".
  std::string rule;   // The rejection's rule ("" for a dynamic reason).
  std::string reason;
};

// Builds and evaluates the shard mutation corpus over one honest run,
// sharded spec.count ways at epoch_requests. Deterministic. The first
// outcome is the honest control ("control:honest"), which must come back
// rejected == false; every other outcome must be rejected without a crash.
std::vector<ShardMutationOutcome> RunShardMutationCorpus(const Program& program,
                                                         const Trace& trace,
                                                         const Advice& advice,
                                                         uint64_t epoch_requests,
                                                         const ShardSpec& spec);

}  // namespace karousos

#endif  // SRC_ANALYSIS_SHARD_MUTATE_H_
