// Typed diagnostics emitted by the analysis layer (advice linter, untracked
// race detector). Every finding carries a stable rule ID so that tests, the
// CLI, and the verifier's structured RejectErrors can name the exact check
// that fired, independent of message wording.
#ifndef SRC_ANALYSIS_DIAGNOSTIC_H_
#define SRC_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

namespace karousos {

enum class LintSeverity : uint8_t {
  kError,    // Structurally invalid advice: the audit rejects up front.
  kWarning,  // Advisory (e.g. an untracked-variable race): reported, not fatal.
};

const char* LintSeverityName(LintSeverity severity);

struct LintDiagnostic {
  std::string rule;      // Stable rule ID, e.g. "KAR-ADV-003".
  LintSeverity severity = LintSeverity::kError;
  std::string location;  // Advice coordinates, e.g. "var_logs[0xbeef][(r1,h2a,3)].prec".
  std::string message;   // Human-readable explanation.

  // "KAR-ADV-003 error at var_logs[...]: ..." — the single-line rendering
  // used by the CLI and by the verifier's reject reasons.
  std::string Format() const;
};

// True iff any diagnostic has error severity.
bool HasLintErrors(const std::vector<LintDiagnostic>& diagnostics);

}  // namespace karousos

#endif  // SRC_ANALYSIS_DIAGNOSTIC_H_
