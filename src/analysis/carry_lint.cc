#include "src/analysis/carry_lint.h"

#include <algorithm>
#include <sstream>

#include "src/server/advice.h"

namespace karousos {

namespace {

std::string VarLogLoc(VarId vid, const OpRef& op) {
  std::ostringstream out;
  out << "var_logs[0x" << std::hex << vid << std::dec << "][" << op.ToString() << "]";
  return out.str();
}

std::string TxImportLoc(const TxOpRef& ref) { return "imports[" + ref.ToString() + "]"; }

std::string VarImportLoc(VarId vid, const OpRef& op) {
  std::ostringstream out;
  out << "imports[var 0x" << std::hex << vid << std::dec << " " << op.ToString() << "]";
  return out.str();
}

}  // namespace

void CarryLint::Begin(uint64_t epoch_requests, bool standalone) {
  *this = CarryLint();
  epoch_requests_ = epoch_requests;
  standalone_ = standalone;
}

void CarryLint::Emit(const char* rule, std::string location, std::string message,
                     std::vector<LintDiagnostic>* out) const {
  out->push_back(
      LintDiagnostic{rule, LintSeverity::kError, std::move(location), std::move(message)});
}

void CarryLint::RegisterImports(const EpochSegment& segment) {
  // Mirror of the session's registration: every allegation is recorded
  // (first one wins on a duplicate coordinate), direction checked later in
  // CheckImports so the per-epoch diagnostics keep catalogue order.
  for (const auto& imp : segment.imports.tx_ops) {
    pending_tx_imports_.emplace(imp.ref, PendingTxImport{imp, epochs_});
  }
  for (const auto& imp : segment.imports.var_entries) {
    pending_var_imports_.emplace(std::make_pair(imp.vid, imp.op),
                                 PendingVarImport{imp, epochs_});
  }
}

void CarryLint::CheckEpoch(const EpochSegment& segment, const std::set<RequestId>& trace_rids,
                           std::vector<LintDiagnostic>* out) {
  CheckDuplicateClaims(segment, out);      // 004
  CheckOpcountEpochs(segment, out);        // 005
  CheckWriteOrderRecurrence(segment, out); // 006
  // 007 needs the trace universe: misplacement is only meaningful for real
  // requests, phantom rids are KAR-ADV-001's finding.
  {
    const Advice& advice = segment.advice;
    auto place = [&](RequestId rid, auto&& loc) {
      if (trace_rids.count(rid) == 0) {
        return;
      }
      uint64_t owner = EpochOfRid(rid, epoch_requests_);
      if (owner < epochs_) {
        Emit(kKarSeg007, loc(),
             "advice content for request " + std::to_string(rid) + " (epoch " +
                 std::to_string(owner) + ") appears in epoch " + std::to_string(epochs_) +
                 "'s slice",
             out);
      } else if (owner > epochs_) {
        // Forward content is only legal as the final slice's clamped tail;
        // judged at Finish once the last epoch is known.
        early_content_.push_back(EarlyContent{epochs_, owner, loc()});
      }
    };
    for (const auto& [rid, tag] : advice.tags) {
      place(rid, [rid = rid] { return "tags[r" + std::to_string(rid) + "]"; });
    }
    for (const auto& [rid, log] : advice.handler_logs) {
      place(rid, [rid = rid] { return "handler_logs[r" + std::to_string(rid) + "]"; });
    }
    for (const auto& [vid, log] : advice.var_logs) {
      for (const auto& [op, entry] : log) {
        place(op.rid, [vid = vid, &op] { return VarLogLoc(vid, op); });
      }
    }
    for (const auto& [txn, log] : advice.tx_logs) {
      place(txn.rid, [&txn] { return "tx_logs[r" + std::to_string(txn.rid) + "]"; });
    }
    for (const auto& [rid, by] : advice.response_emitted_by) {
      place(rid, [rid = rid] { return "response_emitted_by[r" + std::to_string(rid) + "]"; });
    }
    for (const auto& [key, count] : advice.opcounts) {
      place(key.first, [rid = key.first, hid = key.second] {
        return "opcounts[(r" + std::to_string(rid) + ",h" + std::to_string(hid) + ")]";
      });
    }
    for (const auto& [op, record] : advice.nondet) {
      place(op.rid, [&op] { return "nondet[" + op.ToString() + "]"; });
    }
  }
  CheckImports(segment, trace_rids, out);  // 008
}

bool CarryLint::ForeignTarget(RequestId rid, const std::set<RequestId>& trace_rids) const {
  // The init pseudo-request is replicated into every shard, and rids outside
  // the trace have no owning shard a local audit could defer to — both stay
  // on the unsharded path. Only real requests owned elsewhere defer to the
  // merge.
  return shard_filter_ != nullptr && rid != 0 && shard_filter_->count(rid) == 0 &&
         trace_rids.count(rid) != 0;
}

// KAR-SEG-004: an operation executes in exactly one epoch, so coordinates
// already claimed by a completed epoch's log entry cannot recur. The slice's
// own duplicates are KAR-ADV-006's finding; only the cross-epoch probe lives
// here (claimed_ops_ holds strictly earlier epochs until EndEpoch folds).
void CarryLint::CheckDuplicateClaims(const EpochSegment& segment,
                                     std::vector<LintDiagnostic>* out) {
  auto claim = [&](const OpRef& op, auto&& loc) {
    auto it = claimed_ops_.find(op);
    if (it != claimed_ops_.end()) {
      Emit(kKarSeg004, loc(),
           "operation " + op.ToString() + " was already claimed by a log entry in epoch " +
               std::to_string(it->second),
           out);
    }
  };
  const Advice& advice = segment.advice;
  for (const auto& [rid, log] : advice.handler_logs) {
    for (size_t i = 0; i < log.size(); ++i) {
      claim(OpRef{rid, log[i].hid, log[i].opnum}, [rid = rid, i] {
        return "handler_logs[r" + std::to_string(rid) + "][" + std::to_string(i) + "]";
      });
    }
  }
  for (const auto& [txn, log] : advice.tx_logs) {
    for (size_t i = 0; i < log.size(); ++i) {
      claim(OpRef{txn.rid, log[i].hid, log[i].opnum}, [&txn, i] {
        return "tx_logs[" + TxOpRef{txn.rid, txn.tid, static_cast<uint32_t>(i) + 1}.ToString() +
               "]";
      });
    }
  }
  for (const auto& [vid, log] : advice.var_logs) {
    for (const auto& [op, entry] : log) {
      claim(op, [vid = vid, &op] { return VarLogLoc(vid, op); });
    }
  }
}

// KAR-SEG-005: a handler's opcount is declared once, in its owning epoch; a
// second declaration could silently widen the operation space re-execution
// trusts.
void CarryLint::CheckOpcountEpochs(const EpochSegment& segment,
                                   std::vector<LintDiagnostic>* out) {
  for (const auto& [key, count] : segment.advice.opcounts) {
    auto it = opcount_epochs_.find(key);
    if (it != opcount_epochs_.end()) {
      Emit(kKarSeg005,
           "opcounts[(r" + std::to_string(key.first) + ",h" + std::to_string(key.second) + ")]",
           "opcount for handler h" + std::to_string(key.second) + " of request " +
               std::to_string(key.first) + " was already declared in epoch " +
               std::to_string(it->second),
           out);
    }
  }
}

// KAR-SEG-006: the chunks concatenate to one alleged total order, so an entry
// recurring in a later chunk is the cross-epoch form of KAR-ADV-010's cycle —
// caught here per epoch instead of at Finish.
void CarryLint::CheckWriteOrderRecurrence(const EpochSegment& segment,
                                          std::vector<LintDiagnostic>* out) {
  const WriteOrder& order = segment.advice.write_order;
  for (size_t i = 0; i < order.size(); ++i) {
    auto it = write_order_epochs_.find(order[i]);
    if (it != write_order_epochs_.end()) {
      Emit(kKarSeg006, "write_order[" + std::to_string(i) + "]",
           "write-order entry " + order[i].ToString() + " already appeared in epoch " +
               std::to_string(it->second) + "'s chunk",
           out);
    }
  }
}

// KAR-SEG-008, per-epoch half: direction of this epoch's allegations, and
// confirmation of earlier allegations whose target epoch just arrived. The
// comparison semantics mirror the session's StreamConfirmImports exactly,
// with the carry replaced by the live slice.
void CarryLint::CheckImports(const EpochSegment& segment, const std::set<RequestId>& trace_rids,
                             std::vector<LintDiagnostic>* out) {
  for (const auto& imp : segment.imports.tx_ops) {
    uint64_t target = EpochOfRid(imp.ref.rid, epoch_requests_);
    if (target <= epochs_ && !ForeignTarget(imp.ref.rid, trace_rids)) {
      Emit(kKarSeg008, TxImportLoc(imp.ref),
           "continuity import does not point forward (registered in epoch " +
               std::to_string(epochs_) + ", target epoch " + std::to_string(target) + ")",
           out);
    }
  }
  for (const auto& imp : segment.imports.var_entries) {
    uint64_t target = EpochOfRid(imp.op.rid, epoch_requests_);
    if (target <= epochs_ && !ForeignTarget(imp.op.rid, trace_rids)) {
      Emit(kKarSeg008, VarImportLoc(imp.vid, imp.op),
           "continuity import does not point forward (registered in epoch " +
               std::to_string(epochs_) + ", target epoch " + std::to_string(target) + ")",
           out);
    }
  }

  const Advice& advice = segment.advice;
  for (auto it = pending_tx_imports_.begin(); it != pending_tx_imports_.end();) {
    const TxOpRef& ref = it->first;
    if (it->second.registered_epoch >= epochs_ ||
        EpochOfRid(ref.rid, epoch_requests_) != epochs_ ||
        ForeignTarget(ref.rid, trace_rids)) {
      ++it;
      continue;
    }
    const ContinuityImports::TxOpImport& imp = it->second.imp;
    bool real_txn = false;
    bool real_op = false;
    const TxOperation* real = nullptr;
    auto log_it = advice.tx_logs.find(TxnKey{ref.rid, ref.tid});
    if (log_it != advice.tx_logs.end()) {
      real_txn = true;
      if (ref.index >= 1 && ref.index <= log_it->second.size()) {
        real_op = true;
        real = &log_it->second[ref.index - 1];
      }
    }
    bool ok = real_txn == imp.txn_present && real_op == imp.op_present;
    if (ok && imp.op_present) {
      bool real_is_put = real != nullptr && real->type == TxOpType::kPut;
      bool imp_is_put = static_cast<TxOpType>(imp.type) == TxOpType::kPut;
      ok = real_is_put == imp_is_put;
      if (ok && imp_is_put) {
        ok = real->key == imp.key && real->put_value == imp.value && real->hid == imp.hid &&
             real->opnum == imp.opnum;
      }
    }
    if (!ok) {
      Emit(kKarSeg008, TxImportLoc(ref),
           "continuity import does not match the advice it mirrors (epoch " +
               std::to_string(epochs_) + " arrived)",
           out);
    }
    it = pending_tx_imports_.erase(it);
  }
  for (auto it = pending_var_imports_.begin(); it != pending_var_imports_.end();) {
    const auto& [vid, op] = it->first;
    if (it->second.registered_epoch >= epochs_ ||
        EpochOfRid(op.rid, epoch_requests_) != epochs_ ||
        ForeignTarget(op.rid, trace_rids)) {
      ++it;
      continue;
    }
    const ContinuityImports::VarImport& imp = it->second.imp;
    const VarLogEntry* real = nullptr;
    auto log_it = advice.var_logs.find(vid);
    if (log_it != advice.var_logs.end()) {
      auto entry_it = log_it->second.find(op);
      if (entry_it != log_it->second.end()) {
        real = &entry_it->second;
      }
    }
    bool ok;
    if (real == nullptr) {
      ok = !imp.present;
    } else {
      bool real_is_write = real->kind == VarLogEntry::Kind::kWrite;
      bool imp_is_write = static_cast<VarLogEntry::Kind>(imp.kind) == VarLogEntry::Kind::kWrite;
      ok = imp.present && real_is_write == imp_is_write &&
           (!real_is_write || real->value == imp.value);
    }
    if (!ok) {
      Emit(kKarSeg008, VarImportLoc(vid, op),
           "continuity import does not match the advice it mirrors (epoch " +
               std::to_string(epochs_) + " arrived)",
           out);
    }
    it = pending_var_imports_.erase(it);
  }
}

void CarryLint::EndEpoch(const EpochSegment& segment) {
  const Advice& advice = segment.advice;
  for (const auto& [rid, log] : advice.handler_logs) {
    for (const HandlerLogEntry& e : log) {
      claimed_ops_.emplace(OpRef{rid, e.hid, e.opnum}, epochs_);
    }
  }
  for (const auto& [txn, log] : advice.tx_logs) {
    for (const TxOperation& op : log) {
      claimed_ops_.emplace(OpRef{txn.rid, op.hid, op.opnum}, epochs_);
    }
    if (standalone_) {
      txn_sizes_[txn] = static_cast<uint32_t>(log.size());
      for (uint32_t i = 1; i <= log.size(); ++i) {
        if (log[i - 1].type == TxOpType::kPut) {
          put_keys_[TxOpRef{txn.rid, txn.tid, i}] = log[i - 1].key;
        }
      }
    }
  }
  for (const auto& [vid, log] : advice.var_logs) {
    for (const auto& [op, entry] : log) {
      claimed_ops_.emplace(op, epochs_);
      if (!entry.prec.IsNil() && entry.prec != op) {
        prec_edges_.emplace(std::make_pair(vid, op), PrecEdge{entry.prec, epochs_});
      }
      if (standalone_) {
        var_kinds_[{vid, op}] = entry.kind == VarLogEntry::Kind::kWrite;
      }
    }
  }
  for (const auto& [key, count] : advice.opcounts) {
    opcount_epochs_.emplace(key, epochs_);
  }
  for (const TxOpRef& w : advice.write_order) {
    write_order_epochs_.emplace(w, epochs_);
  }
  if (standalone_) {
    order_.insert(order_.end(), advice.write_order.begin(), advice.write_order.end());
  }
  ++epochs_;
}

void CarryLint::Finish(std::vector<LintDiagnostic>* out) {
  if (standalone_) {
    // The accumulated write-order lint holds the same position it has in the
    // session's StreamFinish: before any KAR-SEG finish rule (whose pass is
    // skipped if the order lint errors, as the session's throw would skip it).
    size_t first_new = out->size();
    LintWriteOrder(order_, [this](const TxOpRef& ref) { return ResolveTxOp(ref); }, out);
    for (size_t i = first_new; i < out->size(); ++i) {
      if ((*out)[i].severity == LintSeverity::kError) {
        return;
      }
    }
  }
  FinishEarlyContent(out);  // 007, forward half
  FinishImports(out);       // 008, residual closure
  FinishPrecChains(out);    // 009
}

// KAR-SEG-007, forward half: content ahead of its epoch is legal only as the
// final slice's clamped tail (rids beyond the last trace epoch land there, so
// the not-in-trace rule reports them as the one-shot audit would).
void CarryLint::FinishEarlyContent(std::vector<LintDiagnostic>* out) {
  uint64_t last = epochs_ == 0 ? 0 : epochs_ - 1;
  for (const EarlyContent& e : early_content_) {
    if (e.owner_epoch <= last || e.seen_epoch != last) {
      Emit(kKarSeg007, e.location,
           "advice content for epoch " + std::to_string(e.owner_epoch) +
               " appeared early in epoch " + std::to_string(e.seen_epoch) + "'s slice",
           out);
    }
  }
}

// KAR-SEG-008, residual half: allegations whose target epoch never arrived
// mirror nothing, so they may only claim absence.
void CarryLint::FinishImports(std::vector<LintDiagnostic>* out) {
  for (const auto& [ref, pending] : pending_tx_imports_) {
    if (EpochOfRid(ref.rid, epoch_requests_) < epochs_) {
      continue;  // Non-forward; already reported at registration.
    }
    if (pending.imp.txn_present || pending.imp.op_present) {
      Emit(kKarSeg008, TxImportLoc(ref), "continuity import claims content beyond the final epoch",
           out);
    }
  }
  for (const auto& [key, pending] : pending_var_imports_) {
    if (EpochOfRid(key.second.rid, epoch_requests_) < epochs_) {
      continue;
    }
    if (pending.imp.present) {
      Emit(kKarSeg008, VarImportLoc(key.first, key.second),
           "continuity import claims content beyond the final epoch", out);
    }
  }
}

// KAR-SEG-009: each var-log entry names at most one predecessor, so the prec
// relation is a functional graph per variable — one forward walk with path
// marking finds every cycle in linear time. Cycles confined to a single epoch
// are left to the dynamic chain checks (a one-shot audit could never fire a
// KAR-SEG rule); only cycles spanning epochs report here.
void CarryLint::FinishPrecChains(std::vector<LintDiagnostic>* out) {
  FlatMap<std::pair<VarId, OpRef>, uint8_t> color;  // 0 new, 1 on path, 2 done.
  for (const auto& [start, start_edge] : prec_edges_) {
    if (color[start] != 0) {
      continue;
    }
    std::vector<std::pair<VarId, OpRef>> path;
    std::pair<VarId, OpRef> cur = start;
    while (true) {
      uint8_t& c = color[cur];
      if (c == 2) {
        break;
      }
      if (c == 1) {
        // Found a cycle: the tail of `path` from the first occurrence of cur.
        size_t first = 0;
        while (path[first] != cur) {
          ++first;
        }
        std::set<uint64_t> epochs_in_cycle;
        std::ostringstream cycle;
        for (size_t i = first; i < path.size(); ++i) {
          const PrecEdge& edge = prec_edges_.find(path[i])->second;
          epochs_in_cycle.insert(edge.epoch);
          cycle << " " << path[i].second.ToString() << "@e" << edge.epoch;
        }
        if (epochs_in_cycle.size() >= 2) {
          std::ostringstream loc;
          loc << "var_logs[0x" << std::hex << cur.first << std::dec << "]";
          Emit(kKarSeg009, loc.str(),
               "variable prec chain is cyclic across epochs:" + cycle.str(), out);
        }
        break;
      }
      c = 1;
      path.push_back(cur);
      auto edge_it = prec_edges_.find(cur);
      if (edge_it == prec_edges_.end()) {
        break;
      }
      cur = {cur.first, edge_it->second.prec};
    }
    for (const auto& node : path) {
      color[node] = 2;
    }
  }
}

ResolvedTxOp CarryLint::ResolveTxOp(const TxOpRef& ref) const {
  auto size_it = txn_sizes_.find(TxnKey{ref.rid, ref.tid});
  if (size_it != txn_sizes_.end()) {
    ResolvedTxOp out;
    out.txn_present = true;
    if (ref.index >= 1 && ref.index <= size_it->second) {
      out.op_present = true;
      auto put_it = put_keys_.find(ref);
      if (put_it != put_keys_.end()) {
        out.is_put = true;
        out.key = put_it->second;
      }
    }
    return out;
  }
  auto imp_it = pending_tx_imports_.find(ref);
  if (imp_it != pending_tx_imports_.end()) {
    const ContinuityImports::TxOpImport& imp = imp_it->second.imp;
    ResolvedTxOp out;
    out.txn_present = imp.txn_present;
    out.op_present = imp.op_present;
    if (imp.op_present) {
      out.is_put = static_cast<TxOpType>(imp.type) == TxOpType::kPut;
      out.key = imp.key;
      out.put_value = &imp.value;
      out.hid = imp.hid;
      out.opnum = imp.opnum;
    }
    return out;
  }
  return ResolvedTxOp{};
}

VarPrecLookup CarryLint::ResolveVarPrec(VarId vid, const OpRef& op) const {
  auto kind_it = var_kinds_.find({vid, op});
  if (kind_it != var_kinds_.end()) {
    return VarPrecLookup{true, kind_it->second};
  }
  auto imp_it = pending_var_imports_.find({vid, op});
  if (imp_it != pending_var_imports_.end() && imp_it->second.imp.present) {
    return VarPrecLookup{
        true, static_cast<VarLogEntry::Kind>(imp_it->second.imp.kind) == VarLogEntry::Kind::kWrite};
  }
  return VarPrecLookup{};
}

void CarryLint::Serialize(ByteWriter* out) const {
  out->WriteVarint(epoch_requests_);
  out->WriteBool(standalone_);
  out->WriteVarint(epochs_);

  std::vector<OpRef> claimed;
  claimed.reserve(claimed_ops_.size());
  for (const auto& [op, epoch] : claimed_ops_) {
    claimed.push_back(op);
  }
  std::sort(claimed.begin(), claimed.end());
  out->WriteVarint(claimed.size());
  for (const OpRef& op : claimed) {
    SerializeOpRef(op, out);
    out->WriteVarint(claimed_ops_.find(op)->second);
  }

  std::vector<std::pair<RequestId, HandlerId>> opcount_keys;
  opcount_keys.reserve(opcount_epochs_.size());
  for (const auto& [key, epoch] : opcount_epochs_) {
    opcount_keys.push_back(key);
  }
  std::sort(opcount_keys.begin(), opcount_keys.end());
  out->WriteVarint(opcount_keys.size());
  for (const auto& key : opcount_keys) {
    out->WriteVarint(key.first);
    out->WriteVarint(key.second);
    out->WriteVarint(opcount_epochs_.find(key)->second);
  }

  std::vector<TxOpRef> wo_keys;
  wo_keys.reserve(write_order_epochs_.size());
  for (const auto& [ref, epoch] : write_order_epochs_) {
    wo_keys.push_back(ref);
  }
  std::sort(wo_keys.begin(), wo_keys.end());
  out->WriteVarint(wo_keys.size());
  for (const TxOpRef& ref : wo_keys) {
    SerializeTxOpRef(ref, out);
    out->WriteVarint(write_order_epochs_.find(ref)->second);
  }

  std::vector<std::pair<VarId, OpRef>> prec_keys;
  prec_keys.reserve(prec_edges_.size());
  for (const auto& [key, edge] : prec_edges_) {
    prec_keys.push_back(key);
  }
  std::sort(prec_keys.begin(), prec_keys.end());
  out->WriteVarint(prec_keys.size());
  for (const auto& key : prec_keys) {
    const PrecEdge& edge = prec_edges_.find(key)->second;
    out->WriteVarint(key.first);
    SerializeOpRef(key.second, out);
    SerializeOpRef(edge.prec, out);
    out->WriteVarint(edge.epoch);
  }

  out->WriteVarint(early_content_.size());
  for (const EarlyContent& e : early_content_) {
    out->WriteVarint(e.seen_epoch);
    out->WriteVarint(e.owner_epoch);
    out->WriteString(e.location);
  }

  out->WriteVarint(pending_tx_imports_.size());
  for (const auto& [ref, pending] : pending_tx_imports_) {
    SerializeTxOpRef(ref, out);
    const ContinuityImports::TxOpImport& imp = pending.imp;
    out->WriteBool(imp.txn_present);
    out->WriteBool(imp.op_present);
    out->WriteByte(imp.type);
    out->WriteString(imp.key);
    out->WriteValue(imp.value);
    out->WriteVarint(imp.hid);
    out->WriteVarint(imp.opnum);
    out->WriteVarint(pending.registered_epoch);
  }

  out->WriteVarint(pending_var_imports_.size());
  for (const auto& [key, pending] : pending_var_imports_) {
    out->WriteVarint(key.first);
    SerializeOpRef(key.second, out);
    const ContinuityImports::VarImport& imp = pending.imp;
    out->WriteBool(imp.present);
    out->WriteByte(imp.kind);
    out->WriteValue(imp.value);
    out->WriteVarint(pending.registered_epoch);
  }

  if (!standalone_) {
    return;  // The session's checkpoint never carries the resolution mirror.
  }
  std::vector<TxnKey> txn_keys;
  txn_keys.reserve(txn_sizes_.size());
  for (const auto& [key, size] : txn_sizes_) {
    txn_keys.push_back(key);
  }
  std::sort(txn_keys.begin(), txn_keys.end());
  out->WriteVarint(txn_keys.size());
  for (const TxnKey& key : txn_keys) {
    out->WriteVarint(key.rid);
    out->WriteVarint(key.tid);
    out->WriteVarint(txn_sizes_.find(key)->second);
  }
  out->WriteVarint(put_keys_.size());
  for (const auto& [ref, key] : put_keys_) {
    SerializeTxOpRef(ref, out);
    out->WriteString(key);
  }
  std::vector<std::pair<VarId, OpRef>> kind_keys;
  kind_keys.reserve(var_kinds_.size());
  for (const auto& [key, is_write] : var_kinds_) {
    kind_keys.push_back(key);
  }
  std::sort(kind_keys.begin(), kind_keys.end());
  out->WriteVarint(kind_keys.size());
  for (const auto& key : kind_keys) {
    out->WriteVarint(key.first);
    SerializeOpRef(key.second, out);
    out->WriteBool(var_kinds_.find(key)->second);
  }
  out->WriteVarint(order_.size());
  for (const TxOpRef& ref : order_) {
    SerializeTxOpRef(ref, out);
  }
}

bool CarryLint::Deserialize(ByteReader* in) {
  *this = CarryLint();
  auto epoch_requests = in->ReadVarint();
  auto standalone = in->ReadBool();
  auto epochs = in->ReadVarint();
  if (!epoch_requests || !standalone || !epochs) {
    return false;
  }
  epoch_requests_ = *epoch_requests;
  standalone_ = *standalone;
  epochs_ = *epochs;

  // Every element costs at least one byte, so a count beyond the remaining
  // bytes is malformed — the bound keeps a hostile checkpoint from forcing a
  // huge allocation before the truncation surfaces.
  auto bounded = [in](std::optional<uint64_t> n) -> std::optional<uint64_t> {
    if (!n || *n > in->remaining()) {
      return std::nullopt;
    }
    return n;
  };

  auto n = bounded(in->ReadVarint());
  if (!n) {
    return false;
  }
  claimed_ops_.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto op = DeserializeOpRef(in);
    auto epoch = in->ReadVarint();
    if (!op || !epoch) {
      return false;
    }
    claimed_ops_.emplace(*op, *epoch);
  }

  n = bounded(in->ReadVarint());
  if (!n) {
    return false;
  }
  opcount_epochs_.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto rid = in->ReadVarint();
    auto hid = in->ReadVarint();
    auto epoch = in->ReadVarint();
    if (!rid || !hid || !epoch) {
      return false;
    }
    opcount_epochs_.emplace(std::make_pair(*rid, *hid), *epoch);
  }

  n = bounded(in->ReadVarint());
  if (!n) {
    return false;
  }
  write_order_epochs_.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto ref = DeserializeTxOpRef(in);
    auto epoch = in->ReadVarint();
    if (!ref || !epoch) {
      return false;
    }
    write_order_epochs_.emplace(*ref, *epoch);
  }

  n = bounded(in->ReadVarint());
  if (!n) {
    return false;
  }
  prec_edges_.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto vid = in->ReadVarint();
    auto op = DeserializeOpRef(in);
    auto prec = DeserializeOpRef(in);
    auto epoch = in->ReadVarint();
    if (!vid || !op || !prec || !epoch) {
      return false;
    }
    prec_edges_.emplace(std::make_pair(*vid, *op), PrecEdge{*prec, *epoch});
  }

  n = bounded(in->ReadVarint());
  if (!n) {
    return false;
  }
  early_content_.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto seen = in->ReadVarint();
    auto owner = in->ReadVarint();
    auto location = in->ReadString();
    if (!seen || !owner || !location) {
      return false;
    }
    early_content_.push_back(EarlyContent{*seen, *owner, std::move(*location)});
  }

  n = bounded(in->ReadVarint());
  if (!n) {
    return false;
  }
  for (uint64_t i = 0; i < *n; ++i) {
    auto ref = DeserializeTxOpRef(in);
    auto txn_present = in->ReadBool();
    auto op_present = in->ReadBool();
    auto type = in->ReadByte();
    auto key = in->ReadString();
    auto value = in->ReadValue();
    auto hid = in->ReadVarint();
    auto opnum = in->ReadVarint();
    auto registered = in->ReadVarint();
    if (!ref || !txn_present || !op_present || !type || !key || !value || !hid || !opnum ||
        !registered) {
      return false;
    }
    ContinuityImports::TxOpImport imp;
    imp.ref = *ref;
    imp.txn_present = *txn_present;
    imp.op_present = *op_present;
    imp.type = *type;
    imp.key = std::move(*key);
    imp.value = std::move(*value);
    imp.hid = *hid;
    imp.opnum = static_cast<OpNum>(*opnum);
    pending_tx_imports_.emplace(*ref, PendingTxImport{std::move(imp), *registered});
  }

  n = bounded(in->ReadVarint());
  if (!n) {
    return false;
  }
  for (uint64_t i = 0; i < *n; ++i) {
    auto vid = in->ReadVarint();
    auto op = DeserializeOpRef(in);
    auto present = in->ReadBool();
    auto kind = in->ReadByte();
    auto value = in->ReadValue();
    auto registered = in->ReadVarint();
    if (!vid || !op || !present || !kind || !value || !registered) {
      return false;
    }
    ContinuityImports::VarImport imp;
    imp.vid = *vid;
    imp.op = *op;
    imp.present = *present;
    imp.kind = *kind;
    imp.value = std::move(*value);
    pending_var_imports_.emplace(std::make_pair(*vid, *op),
                                 PendingVarImport{std::move(imp), *registered});
  }

  if (!standalone_) {
    return true;
  }
  n = bounded(in->ReadVarint());
  if (!n) {
    return false;
  }
  txn_sizes_.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto rid = in->ReadVarint();
    auto tid = in->ReadVarint();
    auto size = in->ReadVarint();
    if (!rid || !tid || !size) {
      return false;
    }
    txn_sizes_.emplace(TxnKey{*rid, static_cast<TxId>(*tid)}, static_cast<uint32_t>(*size));
  }
  n = bounded(in->ReadVarint());
  if (!n) {
    return false;
  }
  for (uint64_t i = 0; i < *n; ++i) {
    auto ref = DeserializeTxOpRef(in);
    auto key = in->ReadString();
    if (!ref || !key) {
      return false;
    }
    put_keys_.emplace(*ref, std::move(*key));
  }
  n = bounded(in->ReadVarint());
  if (!n) {
    return false;
  }
  var_kinds_.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto vid = in->ReadVarint();
    auto op = DeserializeOpRef(in);
    auto is_write = in->ReadBool();
    if (!vid || !op || !is_write) {
      return false;
    }
    var_kinds_.emplace(std::make_pair(*vid, *op), *is_write);
  }
  n = bounded(in->ReadVarint());
  if (!n) {
    return false;
  }
  order_.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto ref = DeserializeTxOpRef(in);
    if (!ref) {
      return false;
    }
    order_.push_back(*ref);
  }
  return true;
}

}  // namespace karousos
