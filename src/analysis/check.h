// Standalone streaming model check over KSEG segment streams — the static
// half of the audit, runnable without a program, a store, or re-execution.
//
// Layering: SegmentChecker replays exactly the static prefix of the
// AuditSession's per-epoch work (trace-window ingestion, the slice-local
// KAR-ADV lint with carry-backed resolution, the KAR-SEG cross-epoch rules of
// src/analysis/carry_lint.h), so any stream the checker rejects is rejected
// by the full audit with the same first rule — and the session's fast-reject
// pre-screen is this same pass, so statically-rejectable advice never reaches
// ReExec. The container walk (PairedSegmentCursor inside check.cc) owns the
// file-layer rules KAR-SEG-001..003 and 010 and is shared with
// LoadSegmentStreams, the audit path's segment-container front end.
#ifndef SRC_ANALYSIS_CHECK_H_
#define SRC_ANALYSIS_CHECK_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/carry_lint.h"
#include "src/analysis/diagnostic.h"
#include "src/server/rollover.h"
#include "src/trace/trace.h"

namespace karousos {

// Outcome of a standalone model check. `reason`/`rule` describe the first
// error (the verdict the session's RejectError would carry); `diagnostics`
// holds every finding up to and including the epoch that produced it.
struct CheckResult {
  bool ok = true;
  std::string reason;
  std::string rule;
  std::vector<LintDiagnostic> diagnostics;
  uint64_t epochs = 0;
  uint64_t frames = 0;  // Frames consumed across both containers.
};

// Per-epoch driver over already-decoded segments. Feed epochs in order; stop
// feeding once CheckEpoch returns false (an error-severity finding exists).
class SegmentChecker {
 public:
  explicit SegmentChecker(uint64_t epoch_requests);

  bool CheckEpoch(const EpochSegment& segment);
  CheckResult Finish();
  // Result so far without the finish-time rules — for callers whose container
  // walk failed (a truncated stream has no meaningful end-of-stream state).
  CheckResult Abandon();

 private:
  void NoteVerdict();

  uint64_t epoch_requests_;
  uint64_t epochs_fed_ = 0;
  std::set<RequestId> trace_rids_;
  std::set<RequestId> epoch_rids_;
  CarryLint carry_;
  CheckResult result_;
};

// Streaming check of a (trace, advice) container pair: walks both KSEG
// streams in lockstep (file-layer rules 001..003/010), then runs the
// SegmentChecker over each decoded epoch.
CheckResult CheckSegmentStreams(const std::vector<uint8_t>& trace_bytes,
                                const std::vector<uint8_t>& advice_bytes,
                                uint64_t epoch_requests);

// Slices a monolithic pair (the same SliceRun the session uses) and checks
// the slices. epoch_requests == 0 checks the run as a single epoch.
CheckResult CheckRun(const Trace& trace, const Advice& advice, uint64_t epoch_requests);

// Container front end for the audit path: decodes a (trace, advice) container
// pair into EpochSlices. File-layer findings become a not-ok result with the
// same reason/rule `karousos check` reports, so a corrupt container rejects
// identically whether checked or audited.
struct SegmentLoadResult {
  bool ok = true;
  std::string reason;
  std::string rule;
  std::vector<LintDiagnostic> diagnostics;
  EpochSlices slices;
};
SegmentLoadResult LoadSegmentStreams(const std::vector<uint8_t>& trace_bytes,
                                     const std::vector<uint8_t>& advice_bytes,
                                     uint64_t epoch_requests);

}  // namespace karousos

#endif  // SRC_ANALYSIS_CHECK_H_
