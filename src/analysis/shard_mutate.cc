#include "src/analysis/shard_mutate.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "src/verifier/shard_audit.h"
#include "src/verifier/verifier.h"

namespace karousos {
namespace {

constexpr VerifierConfig kAuditConfig{IsolationLevel::kSerializable, 1};

// Runs shard-file bytes through the whole pipeline: load every shard, audit
// every shard, merge. Records where (if anywhere) the pipeline rejected.
ShardMutationOutcome EvalShardFiles(const Program& program, std::string name,
                                    const std::vector<std::vector<uint8_t>>& files) {
  ShardMutationOutcome out;
  out.name = std::move(name);
  try {
    std::vector<ShardArtifact> artifacts;
    for (const std::vector<uint8_t>& bytes : files) {
      ShardLoadResult loaded = LoadShardBytes(bytes);
      if (!loaded.ok) {
        out.rejected = true;
        out.stage = "load";
        out.rule = loaded.rule;
        out.reason = loaded.reason;
        return out;
      }
      ShardArtifact artifact = RunShardAudit(program, loaded.file, kAuditConfig);
      if (!artifact.accepted) {
        out.rejected = true;
        out.stage = "audit";
        out.rule = artifact.rule;
        out.reason = artifact.reason;
        return out;
      }
      artifacts.push_back(std::move(artifact));
    }
    AuditResult merged = MergeShardArtifacts(artifacts);
    if (!merged.accepted) {
      out.rejected = true;
      out.stage = "merge";
      out.rule = merged.rule;
      out.reason = merged.reason;
    }
  } catch (const std::exception& e) {
    out.crashed = true;
    out.reason = e.what();
  }
  return out;
}

ShardMutationOutcome EvalMerge(std::string name, const std::vector<ShardArtifact>& artifacts) {
  ShardMutationOutcome out;
  out.name = std::move(name);
  try {
    AuditResult merged = MergeShardArtifacts(artifacts);
    if (!merged.accepted) {
      out.rejected = true;
      out.stage = "merge";
      out.rule = merged.rule;
      out.reason = merged.reason;
    }
  } catch (const std::exception& e) {
    out.crashed = true;
    out.reason = e.what();
  }
  return out;
}

// Artifact containers through the loader, then (if everything decodes) the
// merge — the audit-merge CLI's exact path.
ShardMutationOutcome EvalArtifactBytes(std::string name,
                                       const std::vector<std::vector<uint8_t>>& encoded) {
  ShardMutationOutcome out;
  out.name = std::move(name);
  try {
    std::vector<ShardArtifact> artifacts;
    for (const std::vector<uint8_t>& bytes : encoded) {
      ShardArtifactLoadResult loaded = LoadShardArtifactBytes(bytes);
      if (!loaded.ok) {
        out.rejected = true;
        out.stage = "load";
        out.rule = loaded.rule;
        out.reason = loaded.reason;
        return out;
      }
      artifacts.push_back(std::move(loaded.artifact));
    }
    AuditResult merged = MergeShardArtifacts(artifacts);
    if (!merged.accepted) {
      out.rejected = true;
      out.stage = "merge";
      out.rule = merged.rule;
      out.reason = merged.reason;
    }
  } catch (const std::exception& e) {
    out.crashed = true;
    out.reason = e.what();
  }
  return out;
}

}  // namespace

std::vector<ShardMutationOutcome> RunShardMutationCorpus(const Program& program,
                                                         const Trace& trace,
                                                         const Advice& advice,
                                                         uint64_t epoch_requests,
                                                         const ShardSpec& spec) {
  std::vector<ShardMutationOutcome> outcomes;

  std::vector<ShardFile> shards = ShardRun(trace, advice, epoch_requests, spec);
  std::vector<std::vector<uint8_t>> honest;
  honest.reserve(shards.size());
  for (const ShardFile& shard : shards) {
    honest.push_back(EncodeShardFile(shard));
  }

  // Controls: the honest encodings (raw and storage-class compressed) must
  // sail through, or every rejection below is meaningless.
  outcomes.push_back(EvalShardFiles(program, "control:honest", honest));
  {
    std::vector<std::vector<uint8_t>> packed;
    packed.reserve(shards.size());
    for (const ShardFile& shard : shards) {
      packed.push_back(EncodeShardFile(shard, KsegCompression::All()));
    }
    outcomes.push_back(EvalShardFiles(program, "control:compressed", packed));
  }

  // --- file: byte damage against shard 0's encoding ------------------------
  {
    const std::vector<uint8_t>& target = honest[0];
    const size_t stride = std::max<size_t>(1, target.size() / 48);
    for (size_t off = 0; off < target.size(); off += stride) {
      std::vector<std::vector<uint8_t>> mutated = honest;
      mutated[0][off] ^= 0xFF;
      outcomes.push_back(
          EvalShardFiles(program, "file:flip@" + std::to_string(off), mutated));
    }
    for (size_t cut : {size_t{1}, target.size() / 4, target.size() / 2,
                       3 * target.size() / 4, target.size() - 1}) {
      std::vector<std::vector<uint8_t>> mutated = honest;
      mutated[0].resize(cut);
      outcomes.push_back(
          EvalShardFiles(program, "file:truncate@" + std::to_string(cut), mutated));
    }
  }

  // --- boundary: semantic manifest lies over honest content ----------------
  auto boundary_case = [&](const std::string& name, auto&& mutate) {
    ShardFile copy = shards[0];
    if (!mutate(copy.boundary)) {
      return;  // Inapplicable to this schedule.
    }
    std::vector<std::vector<uint8_t>> mutated = honest;
    mutated[0] = EncodeShardFile(copy);
    outcomes.push_back(EvalShardFiles(program, "boundary:" + name, mutated));
  };
  boundary_case("drop-last-rid", [](ShardBoundary& b) {
    if (b.rids.empty()) return false;
    b.rids.pop_back();
    b.rid_digest = DigestRids(b.rids);
    return true;
  });
  boundary_case("ghost-rid", [](ShardBoundary& b) {
    if (b.rids.empty()) return false;
    b.rids.push_back(b.rids.back() + 999983);
    b.rid_digest = DigestRids(b.rids);
    return true;
  });
  boundary_case("stale-rid-digest", [](ShardBoundary& b) {
    b.rid_digest ^= 0x5a5a5a5a;
    return true;
  });
  boundary_case("trace-digest-flip", [](ShardBoundary& b) {
    b.trace_digest ^= 1;
    return true;
  });
  boundary_case("balance-digest-flip", [](ShardBoundary& b) {
    b.balance_digest ^= 1;
    return true;
  });
  boundary_case("epochs+1", [](ShardBoundary& b) {
    b.epochs += 1;
    return true;
  });
  boundary_case("write-order-total+1", [](ShardBoundary& b) {
    b.write_order_total += 1;
    return true;
  });
  boundary_case("swap-positions", [](ShardBoundary& b) {
    if (b.write_order_positions.size() < 2) return false;
    std::swap(b.write_order_positions.front(), b.write_order_positions.back());
    return true;
  });
  boundary_case("position-out-of-range", [](ShardBoundary& b) {
    if (b.write_order_positions.empty()) return false;
    b.write_order_positions.back() = b.write_order_total + 17;
    return true;
  });
  boundary_case("total-tags+1", [](ShardBoundary& b) {
    b.total_tags += 1;
    return true;
  });
  boundary_case("drop-chain", [](ShardBoundary& b) {
    if (b.chains.empty()) return false;
    b.chains.pop_back();
    return true;
  });
  boundary_case("chain-writes+1", [](ShardBoundary& b) {
    if (b.chains.empty()) return false;
    b.chains.front().writes += 1;
    return true;
  });
  boundary_case("drop-export-tx", [](ShardBoundary& b) {
    if (b.export_tx_refs.empty()) return false;
    b.export_tx_refs.pop_back();
    return true;
  });
  boundary_case("drop-export-var", [](ShardBoundary& b) {
    if (b.export_var_refs.empty()) return false;
    b.export_var_refs.pop_back();
    return true;
  });

  // --- artifact: merge-only adversaries over individually-passing shards ---
  std::vector<ShardArtifact> accepted;
  accepted.reserve(shards.size());
  bool all_accepted = true;
  for (const ShardFile& shard : shards) {
    accepted.push_back(RunShardAudit(program, shard, kAuditConfig));
    all_accepted = all_accepted && accepted.back().accepted;
  }
  if (all_accepted && accepted.size() >= 2) {
    auto artifact_case = [&](const std::string& name, auto&& mutate) {
      std::vector<ShardArtifact> copy = accepted;
      if (!mutate(copy)) {
        return;
      }
      outcomes.push_back(EvalMerge("artifact:" + name, copy));
    };
    artifact_case("steal-rid", [](std::vector<ShardArtifact>& a) {
      for (RequestId rid : a[1].rids) {
        if (rid != 0) {
          a[0].rids.insert(std::lower_bound(a[0].rids.begin(), a[0].rids.end(), rid), rid);
          a[0].rid_digest = DigestRids(a[0].rids);
          return true;
        }
      }
      return false;
    });
    artifact_case("dup-stitch-position", [](std::vector<ShardArtifact>& a) {
      for (ShardArtifact& art : a) {
        if (art.write_order_positions.size() >= 2) {
          art.write_order_positions[1] = art.write_order_positions[0];
          return true;
        }
      }
      return false;
    });
    artifact_case("stitch-position-oob", [](std::vector<ShardArtifact>& a) {
      for (ShardArtifact& art : a) {
        if (!art.write_order_positions.empty()) {
          art.write_order_positions.back() = art.write_order_total + 3;
          return true;
        }
      }
      return false;
    });
    artifact_case("totals-lie-one", [](std::vector<ShardArtifact>& a) {
      a[1].write_order_total += 1;
      return true;
    });
    artifact_case("totals-lie-all", [](std::vector<ShardArtifact>& a) {
      for (ShardArtifact& art : a) {
        art.write_order_total += 1;
      }
      return true;
    });
    artifact_case("split-group", [](std::vector<ShardArtifact>& a) {
      if (a[0].tags.empty() || a[1].tags.empty()) return false;
      a[0].tags.begin()->second = a[1].tags.begin()->second;
      return true;
    });
    artifact_case("missing-shard", [](std::vector<ShardArtifact>& a) {
      a.pop_back();
      return true;
    });
    artifact_case("duplicate-shard", [](std::vector<ShardArtifact>& a) {
      a[1] = a[0];
      return true;
    });
    artifact_case("count-lie", [](std::vector<ShardArtifact>& a) {
      a[0].count += 1;
      return true;
    });
    artifact_case("isolation-lie", [](std::vector<ShardArtifact>& a) {
      a[0].isolation = IsolationLevel::kReadCommitted;
      return true;
    });

    // Artifact container byte damage: the audit-merge loader's turf.
    std::vector<std::vector<uint8_t>> encoded;
    encoded.reserve(accepted.size());
    for (const ShardArtifact& artifact : accepted) {
      encoded.push_back(EncodeShardArtifact(artifact));
    }
    const std::vector<uint8_t>& target = encoded[0];
    const size_t stride = std::max<size_t>(1, target.size() / 16);
    for (size_t off = 0; off < target.size(); off += stride) {
      std::vector<std::vector<uint8_t>> mutated = encoded;
      mutated[0][off] ^= 0xFF;
      outcomes.push_back(EvalArtifactBytes("artifact:flip@" + std::to_string(off), mutated));
    }
    for (size_t cut : {size_t{1}, target.size() / 2, target.size() - 1}) {
      std::vector<std::vector<uint8_t>> mutated = encoded;
      mutated[0].resize(cut);
      outcomes.push_back(
          EvalArtifactBytes("artifact:truncate@" + std::to_string(cut), mutated));
    }
  }

  return outcomes;
}

}  // namespace karousos
