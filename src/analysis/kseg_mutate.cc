#include "src/analysis/kseg_mutate.h"

#include <algorithm>
#include <utility>

#include "src/common/kcodec.h"
#include "src/common/segment.h"
#include "src/server/rollover.h"

namespace karousos {

namespace {

KsegMutation Encode(std::string name, const EpochSlices& slices) {
  return KsegMutation{std::move(name), EncodeTraceSegments(slices),
                      EncodeAdviceSegments(slices)};
}

KsegMutation EncodeRun(std::string name, const Trace& trace, const Advice& advice,
                       uint64_t epoch_requests) {
  return Encode(std::move(name), SliceRun(trace, advice, epoch_requests));
}

// --- Component family: the epoch_audit_test seeds over the monolith --------

void BuildComponentMutations(const Trace& trace, const Advice& advice, uint64_t epoch_requests,
                             std::vector<KsegMutation>* out) {
  {
    Trace t = trace;
    for (TraceEvent& ev : t.events) {
      if (ev.kind == TraceEvent::Kind::kResponse) {
        ev.payload = Value("forged");
        out->push_back(EncodeRun("component:forged-response", t, advice, epoch_requests));
        break;
      }
    }
  }
  {
    Trace t = trace;
    for (auto it = t.events.rbegin(); it != t.events.rend(); ++it) {
      if (it->kind == TraceEvent::Kind::kResponse) {
        it->payload = Value("forged");
        out->push_back(EncodeRun("component:forged-response-late", t, advice, epoch_requests));
        break;
      }
    }
  }
  {
    Advice a = advice;
    bool mutated = false;
    for (auto& [vid, log] : a.var_logs) {
      for (auto& [op, entry] : log) {
        if (entry.kind == VarLogEntry::Kind::kWrite) {
          entry.value = Value("poisoned");
          mutated = true;
          break;
        }
      }
      if (mutated) {
        break;
      }
    }
    if (mutated) {
      out->push_back(EncodeRun("component:tampered-var-write-value", trace, a, epoch_requests));
    }
  }
  if (!advice.var_logs.empty()) {
    Advice a = advice;
    VarLogEntry ghost;
    ghost.kind = VarLogEntry::Kind::kWrite;
    ghost.value = Value("ghost");
    ghost.prec = kNilOp;
    a.var_logs.begin()->second.emplace(OpRef{1, 0x1234, 77}, ghost);
    out->push_back(EncodeRun("component:ghost-var-log-entry", trace, a, epoch_requests));
  }
  {
    Advice a = advice;
    for (auto& [rid, log] : a.handler_logs) {
      if (!log.empty()) {
        log.pop_back();
        out->push_back(
            EncodeRun("component:dropped-handler-log-entry", trace, a, epoch_requests));
        break;
      }
    }
  }
  if (!advice.opcounts.empty()) {
    Advice a = advice;
    a.opcounts.begin()->second += 1;
    out->push_back(EncodeRun("component:inflated-opcount", trace, a, epoch_requests));
  }
  if (!advice.response_emitted_by.empty()) {
    Advice a = advice;
    a.response_emitted_by.erase(a.response_emitted_by.begin());
    out->push_back(EncodeRun("component:missing-response-emitted-by", trace, a, epoch_requests));
  }
  if (advice.write_order.size() >= 2) {
    Advice a = advice;
    std::swap(a.write_order.front(), a.write_order.back());
    out->push_back(EncodeRun("component:swapped-write-order", trace, a, epoch_requests));
  }
  {
    Advice a = advice;
    bool mutated = false;
    for (auto& [txn, log] : a.tx_logs) {
      for (TxOperation& op : log) {
        if (op.type == TxOpType::kGet && op.get_found) {
          op.get_found = false;
          op.get_from = kNilTxOp;
          mutated = true;
          break;
        }
      }
      if (mutated) {
        break;
      }
    }
    if (mutated) {
      out->push_back(EncodeRun("component:get-claimed-not-found", trace, a, epoch_requests));
    }
  }
  {
    Trace t = trace;
    for (auto it = t.events.rbegin(); it != t.events.rend(); ++it) {
      if (it->kind == TraceEvent::Kind::kResponse) {
        t.events.erase(std::next(it).base());
        out->push_back(EncodeRun("component:unbalanced-trace", t, advice, epoch_requests));
        break;
      }
    }
  }
}

// --- Slice family: cross-epoch defects injected after slicing --------------

void BuildSliceMutations(const Trace& trace, const Advice& advice, uint64_t epoch_requests,
                         std::vector<KsegMutation>* out) {
  const EpochSlices honest = SliceRun(trace, advice, epoch_requests);
  if (honest.segments.size() < 2) {
    return;  // Every mutation here needs at least two epochs.
  }
  const size_t last = honest.segments.size() - 1;

  // Content from an earlier epoch duplicated into a later slice.
  for (size_t from = 0; from < last; ++from) {
    const Advice& src = honest.segments[from].advice;
    if (!src.tags.empty()) {
      EpochSlices s = honest;
      s.segments[last].advice.tags.insert(*src.tags.begin());
      out->push_back(Encode("slice:dup-tag[" + std::to_string(from) + "->last]", s));
    }
    if (!src.opcounts.empty()) {
      EpochSlices s = honest;
      s.segments[last].advice.opcounts.insert(*src.opcounts.begin());
      out->push_back(Encode("slice:dup-opcount[" + std::to_string(from) + "->last]", s));
    }
    if (!src.var_logs.empty() && !src.var_logs.begin()->second.empty()) {
      // Duplicate a var-log entry *and* its covering opcounts row, so the
      // slice-local coverage rule stays quiet and the cross-epoch claim rule
      // is what has to fire.
      EpochSlices s = honest;
      auto vid_it = src.var_logs.begin();
      auto entry_it = vid_it->second.begin();
      s.segments[last].advice.var_logs[vid_it->first].insert(*entry_it);
      const OpRef& op = entry_it->first;
      auto oc = src.opcounts.find({op.rid, op.hid});
      if (oc != src.opcounts.end()) {
        s.segments[last].advice.opcounts.insert(*oc);
      }
      out->push_back(Encode("slice:dup-var-entry[" + std::to_string(from) + "->last]", s));
    }
    if (!src.write_order.empty()) {
      EpochSlices s = honest;
      s.segments[last].advice.write_order.push_back(src.write_order.front());
      out->push_back(
          Encode("slice:recur-write-order[" + std::to_string(from) + "->last]", s));
    }
  }

  // Continuity-import tampering: flip the truth of each kind of allegation.
  // Registration is first-wins across segments, so a mutated copy of an
  // import some earlier segment also carries would be silently shadowed by
  // the honest registration — only tamper an import whose FIRST registration
  // is in this segment.
  for (size_t e = 0; e <= last; ++e) {
    const ContinuityImports& imports = honest.segments[e].imports;
    auto var_seen_earlier = [&](const ContinuityImports::VarImport& imp) {
      for (size_t p = 0; p < e; ++p) {
        for (const auto& prev : honest.segments[p].imports.var_entries) {
          if (prev.vid == imp.vid && prev.op == imp.op) {
            return true;
          }
        }
      }
      return false;
    };
    auto tx_seen_earlier = [&](const ContinuityImports::TxOpImport& imp) {
      for (size_t p = 0; p < e; ++p) {
        for (const auto& prev : honest.segments[p].imports.tx_ops) {
          if (prev.ref == imp.ref) {
            return true;
          }
        }
      }
      return false;
    };
    for (size_t vi = 0; vi < imports.var_entries.size(); ++vi) {
      const ContinuityImports::VarImport& cand = imports.var_entries[vi];
      // Only a present WRITE import has its value pinned by confirmation; a
      // read's value (or an absence claim) would make the tamper vacuous.
      if (!cand.present ||
          static_cast<VarLogEntry::Kind>(cand.kind) != VarLogEntry::Kind::kWrite ||
          var_seen_earlier(cand)) {
        continue;
      }
      EpochSlices s = honest;
      ContinuityImports::VarImport& imp = s.segments[e].imports.var_entries[vi];
      imp.value = Value("tampered-import");
      imp.kind = static_cast<uint8_t>(VarLogEntry::Kind::kWrite);
      out->push_back(Encode("slice:tamper-var-import[" + std::to_string(e) + "]", s));

      // Claim the entry is absent from its epoch: the arriving slice refutes
      // the allegation whether or not any replay ever consumes it.
      EpochSlices d = honest;
      d.segments[e].imports.var_entries[vi].present = false;
      out->push_back(Encode("slice:deny-var-import[" + std::to_string(e) + "]", d));
      break;
    }
    for (size_t ti = 0; ti < imports.tx_ops.size(); ++ti) {
      if (tx_seen_earlier(imports.tx_ops[ti])) {
        continue;
      }
      EpochSlices s = honest;
      ContinuityImports::TxOpImport& imp = s.segments[e].imports.tx_ops[ti];
      imp.txn_present = !imp.txn_present;
      imp.op_present = imp.txn_present;
      out->push_back(Encode("slice:tamper-tx-import[" + std::to_string(e) + "]", s));
      break;
    }
  }

  // A fabricated allegation about coordinates beyond the final epoch: no
  // later slice ever arrives to confirm it.
  {
    EpochSlices s = honest;
    ContinuityImports::TxOpImport imp;
    imp.ref = TxOpRef{(last + 2) * (epoch_requests == 0 ? 1 : epoch_requests), 7, 1};
    imp.txn_present = true;
    imp.op_present = true;
    imp.type = static_cast<uint8_t>(TxOpType::kPut);
    imp.key = "phantom";
    imp.value = Value("phantom");
    s.segments[0].imports.tx_ops.push_back(imp);
    out->push_back(Encode("slice:dangling-tx-import", s));
  }

  // A backward (non-forward) allegation: imports may only point ahead.
  if (!honest.segments[0].advice.tx_logs.empty()) {
    EpochSlices s = honest;
    const auto& [txn, log] = *honest.segments[0].advice.tx_logs.begin();
    if (!log.empty()) {
      ContinuityImports::TxOpImport imp;
      imp.ref = TxOpRef{txn.rid, txn.tid, 1};
      imp.txn_present = true;
      imp.op_present = true;
      imp.type = static_cast<uint8_t>(log[0].type);
      imp.key = log[0].key;
      imp.value = log[0].put_value;
      imp.hid = log[0].hid;
      imp.opnum = log[0].opnum;
      s.segments[last].imports.tx_ops.push_back(imp);
      out->push_back(Encode("slice:backward-tx-import", s));
    }
  }

  // A prec pointing into a later epoch with no covering import: the forward
  // reference cannot resolve statically or dynamically.
  {
    EpochSlices s = honest;
    bool planted = false;
    for (auto& [vid, log] : s.segments[0].advice.var_logs) {
      for (auto& [op, entry] : log) {
        uint64_t target_rid =
            (last + 1) * (epoch_requests == 0 ? 1 : epoch_requests);  // Beyond the stream.
        entry.prec = OpRef{target_rid, 0x1, 1};
        planted = true;
        break;
      }
      if (planted) {
        break;
      }
    }
    if (planted) {
      out->push_back(Encode("slice:uncovered-forward-prec", s));
    }
  }
}

// --- Frame family: byte-level container damage ------------------------------

struct FrameSpan {
  uint64_t begin = 0;  // Frame header offset.
  uint64_t end = 0;    // One past the payload.
  size_t payload_len = 0;
};

std::vector<FrameSpan> MapFrames(const std::vector<uint8_t>& bytes) {
  std::vector<FrameSpan> frames;
  std::string error;
  auto reader = SegmentReader::FromBytes(bytes.data(), bytes.size(), &error);
  if (reader == nullptr) {
    return frames;
  }
  SegmentRecord rec;
  while (reader->Next(&rec)) {
    if (!frames.empty()) {
      frames.back().end = rec.offset;
    }
    frames.push_back(FrameSpan{rec.offset, bytes.size(), rec.payload.size()});
  }
  return frames;
}

void BuildFrameMutations(const char* stream, const std::vector<uint8_t>& honest_bytes,
                         const std::vector<uint8_t>& other_bytes, bool mutate_trace,
                         std::vector<KsegMutation>* out) {
  auto emit = [&](std::string name, std::vector<uint8_t> mutated) {
    KsegMutation m;
    m.name = std::move(name);
    if (mutate_trace) {
      m.trace_bytes = std::move(mutated);
      m.advice_bytes = other_bytes;
    } else {
      m.trace_bytes = other_bytes;
      m.advice_bytes = std::move(mutated);
    }
    out->push_back(std::move(m));
  };
  auto tag = [&](size_t frame, const char* what) {
    return std::string("frame:") + stream + "[" + std::to_string(frame) + "]:" + what;
  };
  const std::vector<FrameSpan> frames = MapFrames(honest_bytes);
  if (frames.empty()) {
    return;
  }

  // Container header damage.
  {
    std::vector<uint8_t> b = honest_bytes;
    b[0] ^= 0xff;
    emit(std::string("frame:") + stream + ":bad-magic", std::move(b));
  }
  {
    std::vector<uint8_t> b = honest_bytes;
    b[4] ^= 0x80;  // Unsupported format version (v2 exists now, so +1 on a v1
                   // stream would be a *valid* upgrade, not damage).
    emit(std::string("frame:") + stream + ":bad-version", std::move(b));
  }

  for (size_t i = 0; i < frames.size(); ++i) {
    const FrameSpan& f = frames[i];
    const uint64_t payload_begin = f.end - f.payload_len;
    // Payload byte flips (CRC catches them) at spread positions.
    for (size_t pos : {size_t{0}, f.payload_len / 3, (2 * f.payload_len) / 3,
                       f.payload_len - 1}) {
      if (pos >= f.payload_len) {
        continue;
      }
      std::vector<uint8_t> b = honest_bytes;
      b[payload_begin + pos] ^= 0x5a;
      emit(tag(i, ("payload-flip@" + std::to_string(pos)).c_str()), std::move(b));
    }
    {
      std::vector<uint8_t> b = honest_bytes;
      b[payload_begin - 4] ^= 0x01;  // Stored CRC word.
      emit(tag(i, "bad-crc"), std::move(b));
    }
    {
      std::vector<uint8_t> b = honest_bytes;
      b[f.begin] = static_cast<uint8_t>(SegmentKind::kCheckpoint);
      emit(tag(i, "kind-checkpoint"), std::move(b));
    }
    {
      std::vector<uint8_t> b = honest_bytes;
      b[f.begin] = 99;  // Unknown kind.
      emit(tag(i, "kind-unknown"), std::move(b));
    }
    if (honest_bytes[f.begin + 1] < 0x7f) {
      // Epoch varint bump (single-byte epochs only): breaks the sequence.
      std::vector<uint8_t> b = honest_bytes;
      b[f.begin + 1] += 1;
      emit(tag(i, "epoch-bump"), std::move(b));
    }
    {
      // Drop the frame entirely: a gap (or, for the last frame, a stream
      // ending before its peer).
      std::vector<uint8_t> b = honest_bytes;
      b.erase(b.begin() + static_cast<ptrdiff_t>(f.begin),
              b.begin() + static_cast<ptrdiff_t>(f.end));
      emit(tag(i, "drop-frame"), std::move(b));
    }
    {
      // Duplicate the frame in place.
      std::vector<uint8_t> b = honest_bytes;
      std::vector<uint8_t> frame(honest_bytes.begin() + static_cast<ptrdiff_t>(f.begin),
                                 honest_bytes.begin() + static_cast<ptrdiff_t>(f.end));
      b.insert(b.begin() + static_cast<ptrdiff_t>(f.end), frame.begin(), frame.end());
      emit(tag(i, "dup-frame"), std::move(b));
    }
    if (i + 1 < frames.size()) {
      // Swap with the next frame.
      const FrameSpan& g = frames[i + 1];
      std::vector<uint8_t> b(honest_bytes.begin(),
                             honest_bytes.begin() + static_cast<ptrdiff_t>(f.begin));
      b.insert(b.end(), honest_bytes.begin() + static_cast<ptrdiff_t>(g.begin),
               honest_bytes.begin() + static_cast<ptrdiff_t>(g.end));
      b.insert(b.end(), honest_bytes.begin() + static_cast<ptrdiff_t>(f.begin),
               honest_bytes.begin() + static_cast<ptrdiff_t>(g.begin));
      b.insert(b.end(), honest_bytes.begin() + static_cast<ptrdiff_t>(g.end),
               honest_bytes.end());
      emit(tag(i, "swap-next"), std::move(b));
    }
    {
      // Truncate at the frame boundary: this stream ends while its peer
      // continues.
      std::vector<uint8_t> b(honest_bytes.begin(),
                             honest_bytes.begin() + static_cast<ptrdiff_t>(f.begin));
      emit(tag(i, "truncate-before"), std::move(b));
    }
    if (f.payload_len > 0) {
      // Truncate mid-payload: the reader hits a short payload. Cutting at the
      // payload midpoint always removes at least the payload's final byte —
      // cutting after byte one would be a no-op on a one-byte last frame.
      const uint64_t cut = payload_begin + f.payload_len / 2;
      std::vector<uint8_t> b(honest_bytes.begin(),
                             honest_bytes.begin() + static_cast<ptrdiff_t>(cut));
      emit(tag(i, "truncate-mid"), std::move(b));
    }
  }
}

// --- Codec family: damage to storage-class compressed (v2) frames ------------

// Parses every frame of a container into records (empty on malformed input).
std::vector<SegmentRecord> ParseFrames(const std::vector<uint8_t>& bytes) {
  std::vector<SegmentRecord> records;
  std::string error;
  auto reader = SegmentReader::FromBytes(bytes.data(), bytes.size(), &error);
  if (reader == nullptr) {
    return records;
  }
  SegmentRecord rec;
  while (reader->Next(&rec)) {
    records.push_back(rec);
  }
  return records;
}

// Re-frames records through a v2 writer, recomputing lengths and CRCs — the
// container structure stays honest, so the mutation lands on the codec layer
// (the payload decoder), not the framing layer.
std::vector<uint8_t> RebuildStream(const std::vector<SegmentRecord>& records) {
  SegmentWriter writer(kSegmentFormatVersionV2);
  for (const SegmentRecord& r : records) {
    writer.Append(r.kind, r.epoch, r.flags, r.payload);
  }
  return writer.Take();
}

void BuildCodecMutations(const char* stream, const std::vector<uint8_t>& honest_bytes,
                         const std::vector<uint8_t>& other_bytes, bool mutate_trace,
                         std::vector<KsegMutation>* out) {
  auto emit = [&](std::string name, std::vector<uint8_t> mutated) {
    KsegMutation m;
    m.name = std::move(name);
    if (mutate_trace) {
      m.trace_bytes = std::move(mutated);
      m.advice_bytes = other_bytes;
    } else {
      m.trace_bytes = other_bytes;
      m.advice_bytes = std::move(mutated);
    }
    out->push_back(std::move(m));
  };
  auto tag = [&](size_t frame, const char* what) {
    return std::string("codec:") + stream + "[" + std::to_string(frame) + "]:" + what;
  };
  const std::vector<SegmentRecord> records = ParseFrames(honest_bytes);
  for (size_t i = 0; i < records.size(); ++i) {
    const SegmentRecord& f = records[i];
    // The flags byte sits right after the kind byte and is NOT covered by the
    // CRC (which seals the stored payload), so flag tampering is a pure
    // byte-level patch — exactly the attack surface the reader must close.
    const size_t flags_at = static_cast<size_t>(f.offset) + 1;
    {
      // An unknown flag bit: the reader must refuse the whole frame rather
      // than decode the stages it does recognize.
      std::vector<uint8_t> b = honest_bytes;
      b[flags_at] |= static_cast<uint8_t>(kFrameFlagsKnownMask + 1);
      emit(tag(i, "flag-unknown-bit"), std::move(b));
    }
    if (f.flags != 0) {
      // Strip the flags: compact/blocked bytes reach the raw grammar decoder.
      std::vector<uint8_t> b = honest_bytes;
      b[flags_at] = 0;
      emit(tag(i, "flag-clear"), std::move(b));
    }
    if ((f.flags & kFrameFlagBlock) != 0) {
      // Drop only the block bit: LZ4-style sequences reach the lane decoder.
      std::vector<uint8_t> b = honest_bytes;
      b[flags_at] = f.flags & static_cast<uint8_t>(~kFrameFlagBlock);
      emit(tag(i, "flag-drop-block"), std::move(b));
    }
    if (!f.payload.empty()) {
      // Truncate the stored payload with the length varint and CRC fixed up:
      // only the codec's own structural checks can catch it.
      std::vector<SegmentRecord> mutated = records;
      mutated[i].payload.pop_back();
      emit(tag(i, "truncate-stored"), RebuildStream(mutated));
    }
    if ((f.flags & kFrameFlagBlock) != 0 && !f.payload.empty()) {
      // Bump the declared decoded size leading a blocked payload (CRC fixed
      // up): the decompressor's exact-size contract is the only defense.
      std::vector<SegmentRecord> mutated = records;
      mutated[i].payload[0] = static_cast<uint8_t>(mutated[i].payload[0] + 1);
      emit(tag(i, "block-size-bump"), RebuildStream(mutated));
    }
  }
}

}  // namespace

std::vector<KsegMutation> BuildMutationCorpus(const Trace& trace, const Advice& advice,
                                              uint64_t epoch_requests) {
  std::vector<KsegMutation> corpus;
  BuildComponentMutations(trace, advice, epoch_requests, &corpus);
  BuildSliceMutations(trace, advice, epoch_requests, &corpus);
  EpochSlices honest = SliceRun(trace, advice, epoch_requests);
  std::vector<uint8_t> trace_bytes = EncodeTraceSegments(honest);
  std::vector<uint8_t> advice_bytes = EncodeAdviceSegments(honest);
  BuildFrameMutations("trace", trace_bytes, advice_bytes, /*mutate_trace=*/true, &corpus);
  BuildFrameMutations("advice", advice_bytes, trace_bytes, /*mutate_trace=*/false, &corpus);
  const KsegCompression all = KsegCompression::All();
  std::vector<uint8_t> packed_trace = EncodeTraceSegments(honest, all);
  std::vector<uint8_t> packed_advice = EncodeAdviceSegments(honest, all);
  BuildCodecMutations("trace", packed_trace, packed_advice, /*mutate_trace=*/true, &corpus);
  BuildCodecMutations("advice", packed_advice, packed_trace, /*mutate_trace=*/false, &corpus);
  return corpus;
}

}  // namespace karousos
