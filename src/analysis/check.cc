#include "src/analysis/check.h"

#include <memory>
#include <utility>

#include "src/analysis/lint.h"
#include "src/common/segment.h"

namespace karousos {

namespace {

// Reject-reason prefix by rule family, mirroring the session's throw sites:
// slice-local lint findings reject as "advice lint: ...", the cross-epoch
// static rules as "model check: ...", and the container walk (which the
// session never sees — its front end is LoadSegmentStreams) as
// "segment stream: ...".
std::string ReasonFor(const LintDiagnostic& d) {
  bool seg = d.rule.rfind("KAR-SEG", 0) == 0;
  bool file_layer = d.rule == kKarSeg001 || d.rule == kKarSeg002 || d.rule == kKarSeg003 ||
                    d.rule == kKarSeg010;
  const char* prefix = !seg ? "advice lint: " : file_layer ? "segment stream: " : "model check: ";
  return prefix + d.Format();
}

// Walks a (trace, advice) container pair in lockstep, yielding one decoded
// EpochSegment per epoch. Owns the file-layer rules: unreadable container
// (001), frame schema (002), epoch sequencing (003), stream pairing (010).
class PairedSegmentCursor {
 public:
  PairedSegmentCursor(const std::vector<uint8_t>& trace_bytes,
                      const std::vector<uint8_t>& advice_bytes) {
    trace_ = SegmentReader::FromBytes(trace_bytes.data(), trace_bytes.size(), &trace_open_error_);
    advice_ =
        SegmentReader::FromBytes(advice_bytes.data(), advice_bytes.size(), &advice_open_error_);
  }

  // 1: *out filled. 0: both streams cleanly ended. -1: error (one finding
  // appended to *diags).
  int Next(EpochSegment* out, std::vector<LintDiagnostic>* diags) {
    if (trace_ == nullptr) {
      return Fail(kKarSeg001, "trace", "unreadable segment container: " + trace_open_error_,
                  diags);
    }
    if (advice_ == nullptr) {
      return Fail(kKarSeg001, "advice", "unreadable segment container: " + advice_open_error_,
                  diags);
    }
    SegmentRecord trace_rec;
    bool have_trace = trace_->Next(&trace_rec);
    if (!have_trace && !trace_->ok()) {
      return Fail(kKarSeg001, "trace", "unreadable segment container: " + trace_->error(), diags);
    }
    SegmentRecord advice_rec;
    bool have_advice = advice_->Next(&advice_rec);
    if (!have_advice && !advice_->ok()) {
      return Fail(kKarSeg001, "advice", "unreadable segment container: " + advice_->error(),
                  diags);
    }
    if (!have_trace && !have_advice) {
      return 0;
    }
    if (have_trace != have_advice) {
      uint64_t epoch = have_trace ? trace_rec.epoch : advice_rec.epoch;
      frames_ += 1;
      return Fail(kKarSeg010, have_trace ? "trace" : "advice",
                  std::string("trace and advice streams disagree on the epoch set: the ") +
                      (have_trace ? "trace" : "advice") + " stream has a frame for epoch " +
                      std::to_string(epoch) + " but the " +
                      (have_trace ? "advice" : "trace") + " stream ended",
                  diags);
    }
    frames_ += 2;
    if (trace_rec.kind != SegmentKind::kTrace) {
      return Fail(kKarSeg002, FrameLoc("trace", trace_rec),
                  std::string("unexpected ") + SegmentKindName(trace_rec.kind) +
                      " frame in the trace stream",
                  diags);
    }
    if (advice_rec.kind != SegmentKind::kAdvice) {
      return Fail(kKarSeg002, FrameLoc("advice", advice_rec),
                  std::string("unexpected ") + SegmentKindName(advice_rec.kind) +
                      " frame in the advice stream",
                  diags);
    }
    if (trace_rec.epoch != next_epoch_) {
      return Fail(kKarSeg003, FrameLoc("trace", trace_rec),
                  SequencingMessage(trace_rec.epoch), diags);
    }
    if (advice_rec.epoch != next_epoch_) {
      return Fail(kKarSeg003, FrameLoc("advice", advice_rec),
                  SequencingMessage(advice_rec.epoch), diags);
    }
    auto window = DecodeTraceSegmentPayload(trace_rec.payload, trace_rec.flags);
    if (!window) {
      return Fail(kKarSeg002, FrameLoc("trace", trace_rec),
                  "trace segment payload for epoch " + std::to_string(trace_rec.epoch) +
                      " is malformed",
                  diags);
    }
    auto advice_payload = DecodeAdviceSegmentPayload(advice_rec.payload, advice_rec.flags);
    if (!advice_payload) {
      return Fail(kKarSeg002, FrameLoc("advice", advice_rec),
                  "advice segment payload for epoch " + std::to_string(advice_rec.epoch) +
                      " is malformed",
                  diags);
    }
    out->epoch = next_epoch_;
    out->window = std::move(*window);
    out->advice = std::move(advice_payload->advice);
    out->imports = std::move(advice_payload->imports);
    ++next_epoch_;
    return 1;
  }

  uint64_t frames() const { return frames_; }

 private:
  static std::string FrameLoc(const char* stream, const SegmentRecord& rec) {
    return std::string(stream) + "[offset " + std::to_string(rec.offset) + "]";
  }

  std::string SequencingMessage(uint64_t got) const {
    if (got < next_epoch_) {
      return "duplicate or out-of-order frame for epoch " + std::to_string(got) +
             " (expected epoch " + std::to_string(next_epoch_) + ")";
    }
    return "epoch gap: frame for epoch " + std::to_string(got) + " (expected epoch " +
           std::to_string(next_epoch_) + ")";
  }

  static int Fail(const char* rule, std::string location, std::string message,
                  std::vector<LintDiagnostic>* diags) {
    diags->push_back(
        LintDiagnostic{rule, LintSeverity::kError, std::move(location), std::move(message)});
    return -1;
  }

  std::unique_ptr<SegmentReader> trace_;
  std::unique_ptr<SegmentReader> advice_;
  std::string trace_open_error_;
  std::string advice_open_error_;
  uint64_t next_epoch_ = 0;
  uint64_t frames_ = 0;
};

}  // namespace

SegmentChecker::SegmentChecker(uint64_t epoch_requests) : epoch_requests_(epoch_requests) {
  carry_.Begin(epoch_requests, /*standalone=*/true);
}

void SegmentChecker::NoteVerdict() {
  if (!result_.ok) {
    return;
  }
  for (const LintDiagnostic& d : result_.diagnostics) {
    if (d.severity == LintSeverity::kError) {
      result_.ok = false;
      result_.rule = d.rule;
      result_.reason = ReasonFor(d);
      return;
    }
  }
}

bool SegmentChecker::CheckEpoch(const EpochSegment& segment) {
  if (!result_.ok) {
    return false;
  }
  // The static prefix of the session's StreamEpoch, in the same order: ingest
  // the window, derive this epoch's rid set, register the forward
  // allegations, lint the slice (carry-backed resolution), then the
  // cross-epoch rules. Dynamic-only checks (trace balance, epoch
  // completeness) are deliberately absent — they are the audit's to make.
  for (const TraceEvent& ev : segment.window) {
    if (ev.kind == TraceEvent::Kind::kRequest) {
      trace_rids_.insert(ev.rid);
    }
  }
  epoch_rids_.clear();
  for (RequestId rid : trace_rids_) {
    if (EpochOfRid(rid, epoch_requests_) == epochs_fed_) {
      epoch_rids_.insert(rid);
    }
  }
  carry_.RegisterImports(segment);
  LintEpochContext ctx;
  ctx.trace_rids = &trace_rids_;
  ctx.epoch_rids = &epoch_rids_;
  ctx.var_prec = [this](VarId vid, const OpRef& op) { return carry_.ResolveVarPrec(vid, op); };
  ctx.tx_op = [this](const TxOpRef& ref) { return carry_.ResolveTxOp(ref); };
  for (LintDiagnostic& d : LintAdviceEpoch(segment.advice, ctx)) {
    result_.diagnostics.push_back(std::move(d));
  }
  // Mirror the session's throw points: an ADV error stops before the SEG
  // pass, and a failing epoch is never folded into the carries.
  NoteVerdict();
  if (result_.ok) {
    carry_.CheckEpoch(segment, trace_rids_, &result_.diagnostics);
    NoteVerdict();
  }
  if (result_.ok) {
    carry_.EndEpoch(segment);
  }
  ++epochs_fed_;
  result_.epochs = epochs_fed_;
  return result_.ok;
}

CheckResult SegmentChecker::Finish() {
  if (result_.ok) {
    carry_.Finish(&result_.diagnostics);
    NoteVerdict();
  }
  result_.epochs = epochs_fed_;
  return std::move(result_);
}

CheckResult CheckSegmentStreams(const std::vector<uint8_t>& trace_bytes,
                                const std::vector<uint8_t>& advice_bytes,
                                uint64_t epoch_requests) {
  SegmentChecker checker(epoch_requests);
  PairedSegmentCursor cursor(trace_bytes, advice_bytes);
  std::vector<LintDiagnostic> file_diags;
  EpochSegment segment;
  bool container_error = false;
  while (true) {
    int r = cursor.Next(&segment, &file_diags);
    if (r < 0) {
      container_error = true;
      break;
    }
    if (r == 0 || !checker.CheckEpoch(segment)) {
      break;
    }
  }
  CheckResult result;
  if (container_error) {
    // An unreadable stream has no meaningful end-of-stream state; skip the
    // finish rules and let the file-layer finding be the verdict.
    result = checker.Abandon();
    for (LintDiagnostic& d : file_diags) {
      result.diagnostics.push_back(std::move(d));
    }
    result.ok = false;
    const LintDiagnostic& first = result.diagnostics.back();
    result.rule = first.rule;
    result.reason = ReasonFor(first);
  } else {
    result = checker.Finish();
  }
  result.frames = cursor.frames();
  return result;
}

CheckResult SegmentChecker::Abandon() {
  result_.epochs = epochs_fed_;
  return std::move(result_);
}

CheckResult CheckRun(const Trace& trace, const Advice& advice, uint64_t epoch_requests) {
  EpochSlices slices = SliceRun(trace, advice, epoch_requests);
  SegmentChecker checker(slices.epoch_requests);
  for (const EpochSegment& segment : slices.segments) {
    if (!checker.CheckEpoch(segment)) {
      break;
    }
  }
  return checker.Finish();
}

SegmentLoadResult LoadSegmentStreams(const std::vector<uint8_t>& trace_bytes,
                                     const std::vector<uint8_t>& advice_bytes,
                                     uint64_t epoch_requests) {
  SegmentLoadResult out;
  out.slices.epoch_requests = epoch_requests;
  PairedSegmentCursor cursor(trace_bytes, advice_bytes);
  EpochSegment segment;
  while (true) {
    int r = cursor.Next(&segment, &out.diagnostics);
    if (r < 0) {
      out.ok = false;
      const LintDiagnostic& first = out.diagnostics.back();
      out.rule = first.rule;
      out.reason = ReasonFor(first);
      break;
    }
    if (r == 0) {
      break;
    }
    out.slices.segments.push_back(std::move(segment));
  }
  return out;
}

}  // namespace karousos
