// The untracked-access log: one record per read/write of an *unannotated*
// (VarScope::kUntracked) variable observed during server execution.
//
// Untracked variables produce no advice — the paper's soundness argument for
// them (§5) rests on the precondition that every access is ordered by the
// reconstructed order R. The server cannot enforce that precondition, but it
// can cheaply *record* the accesses; the race detector in
// src/analysis/race.h then checks the precondition mechanically.
#ifndef SRC_ANALYSIS_ACCESS_LOG_H_
#define SRC_ANALYSIS_ACCESS_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/kem/label.h"

namespace karousos {

struct UntrackedAccess {
  enum class Kind : uint8_t { kRead, kWrite };
  Kind kind = Kind::kRead;
  VarId vid = 0;
  std::string name;    // Declared variable name ("" if accessed undeclared).
  RequestId rid = 0;   // kInitRequestId for initialization-time accesses.
  HandlerId hid = 0;
  HandlerLabel label;  // The accessing handler's A-order label.
  // 1-based position of this access within its handler activation's stream
  // of untracked accesses (program order within the handler).
  uint32_t seq = 0;

  std::string ToString() const;
};

using UntrackedAccessLog = std::vector<UntrackedAccess>;

}  // namespace karousos

#endif  // SRC_ANALYSIS_ACCESS_LOG_H_
