// The sequential re-executor baseline (§6, "Baselines"): the application
// server, modified to re-execute from the trusted trace, one request at a
// time, with no batching and no advice. As the paper notes this is
// pessimistic for Karousos — a real unbatched verifier would also need to
// consult advice, and so would only be slower.
//
// Sequential replay of a trace produced under concurrency may legitimately
// produce different responses (it re-executes one interleaving, the original
// had another); the result records the mismatch count, and Figure 7 uses
// only its running time.
#ifndef SRC_BASELINE_SEQUENTIAL_H_
#define SRC_BASELINE_SEQUENTIAL_H_

#include <cstddef>

#include "src/apps/app.h"
#include "src/trace/trace.h"

namespace karousos {

struct SequentialReplayResult {
  size_t requests = 0;
  size_t mismatches = 0;  // Responses differing from the trace.
  bool outputs_match() const { return mismatches == 0; }
};

SequentialReplayResult SequentialReplay(const AppSpec& app, const Trace& trace);

}  // namespace karousos

#endif  // SRC_BASELINE_SEQUENTIAL_H_
