#include "src/baseline/sequential.h"

#include "src/server/server.h"

namespace karousos {

SequentialReplayResult SequentialReplay(const AppSpec& app, const Trace& trace) {
  SequentialReplayResult result;
  std::vector<Value> inputs;
  std::vector<RequestId> rids = trace.RequestIds();
  TraceIndex index(trace);
  inputs.reserve(rids.size());
  for (RequestId rid : rids) {
    inputs.push_back(*index.RequestInput(rid));
  }
  ServerConfig config;
  config.mode = CollectMode::kOff;
  config.concurrency = 1;
  Server replayer(*app.program, config);
  ServerRunResult run = replayer.Run(inputs);
  result.requests = rids.size();
  TraceIndex replayed_index(run.trace);
  for (size_t i = 0; i < rids.size(); ++i) {
    // The replayer assigned ids 1..N in order; map back to the trace's ids.
    auto replayed = replayed_index.Response(static_cast<RequestId>(i) + 1);
    auto original = index.Response(rids[i]);
    if (!replayed.has_value() || !original.has_value() || !(*replayed == *original)) {
      ++result.mismatches;
    }
  }
  return result;
}

}  // namespace karousos
