#include "src/baseline/sequential.h"

#include "src/server/server.h"

namespace karousos {

SequentialReplayResult SequentialReplay(const AppSpec& app, const Trace& trace) {
  SequentialReplayResult result;
  std::vector<Value> inputs;
  std::vector<RequestId> rids = trace.RequestIds();
  inputs.reserve(rids.size());
  for (RequestId rid : rids) {
    inputs.push_back(*trace.RequestInput(rid));
  }
  ServerConfig config;
  config.mode = CollectMode::kOff;
  config.concurrency = 1;
  Server replayer(*app.program, config);
  ServerRunResult run = replayer.Run(inputs);
  result.requests = rids.size();
  for (size_t i = 0; i < rids.size(); ++i) {
    // The replayer assigned ids 1..N in order; map back to the trace's ids.
    auto replayed = run.trace.Response(static_cast<RequestId>(i) + 1);
    auto original = trace.Response(rids[i]);
    if (!replayed.has_value() || !original.has_value() || !(*replayed == *original)) {
      ++result.mismatches;
    }
  }
  return result;
}

}  // namespace karousos
