#include "src/server/advice_builder.h"

#include <algorithm>

namespace karousos {

void AdviceBuilder::AddVarEntry(VarId vid, const OpRef& op, VarLogEntry entry) {
  auto it = var_index_.find(vid);
  uint32_t lane;
  if (it == var_index_.end()) {
    lane = static_cast<uint32_t>(var_lanes_.size());
    var_index_.emplace(vid, lane);
    var_lanes_.push_back(VarLane{vid, {}});
  } else {
    lane = it->second;
  }
  var_lanes_[lane].entries.emplace_back(op, std::move(entry));
  ++var_entry_count_;
}

TransactionLog& AdviceBuilder::TxLog(const TxnKey& txn) {
  auto it = tx_index_.find(txn);
  if (it != tx_index_.end()) {
    return tx_lanes_[it->second].log;
  }
  uint32_t lane = static_cast<uint32_t>(tx_lanes_.size());
  tx_index_.emplace(txn, lane);
  tx_lanes_.push_back(TxLane{txn, {}});
  return tx_lanes_[lane].log;
}

void AdviceBuilder::AddNondet(const OpRef& op, NondetRecord record) {
  nondet_.emplace_back(op, std::move(record));
}

void AdviceBuilder::AddOpcount(RequestId rid, HandlerId hid, OpNum count) {
  opcounts_.emplace_back(std::make_pair(rid, hid), count);
}

void AdviceBuilder::AddResponse(RequestId rid, HandlerId hid, OpNum opnum) {
  responses_.emplace_back(rid, std::make_pair(hid, opnum));
}

void AdviceBuilder::AddRequest(RequestId rid, uint64_t tag, std::vector<HandlerLogEntry>&& log) {
  requests_.push_back(RequestRow{rid, tag, std::move(log)});
}

Advice AdviceBuilder::Finalize() {
  Advice out;

  // Requests: unique rids, so a plain sort then hinted inserts rebuild both
  // rid-keyed maps in one pass each.
  std::sort(requests_.begin(), requests_.end(),
            [](const RequestRow& a, const RequestRow& b) { return a.rid < b.rid; });
  for (RequestRow& row : requests_) {
    out.tags.emplace_hint(out.tags.end(), row.rid, row.tag);
    out.handler_logs.emplace_hint(out.handler_logs.end(), row.rid, std::move(row.log));
  }

  // Variable logs: lanes sort by vid, entries within a lane by access
  // coordinates (unique — see AddVarEntry's contract).
  std::sort(var_lanes_.begin(), var_lanes_.end(),
            [](const VarLane& a, const VarLane& b) { return a.vid < b.vid; });
  for (VarLane& lane : var_lanes_) {
    std::sort(lane.entries.begin(), lane.entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    VarLog log;
    for (auto& [op, entry] : lane.entries) {
      log.emplace_hint(log.end(), op, std::move(entry));
    }
    out.var_logs.emplace_hint(out.var_logs.end(), lane.vid, std::move(log));
  }

  // Transaction logs: unique keys, append order within a lane already final.
  std::sort(tx_lanes_.begin(), tx_lanes_.end(),
            [](const TxLane& a, const TxLane& b) { return a.txn < b.txn; });
  for (TxLane& lane : tx_lanes_) {
    out.tx_logs.emplace_hint(out.tx_logs.end(), lane.txn, std::move(lane.log));
  }

  // Opcounts and nondet used assignment semantics in the map they replace:
  // stable sort keeps append order within equal keys, and taking the last of
  // each equal-key run reproduces last-assignment-wins.
  std::stable_sort(opcounts_.begin(), opcounts_.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 0; i < opcounts_.size(); ++i) {
    if (i + 1 < opcounts_.size() && opcounts_[i + 1].first == opcounts_[i].first) {
      continue;
    }
    out.opcounts.emplace_hint(out.opcounts.end(), opcounts_[i].first, opcounts_[i].second);
  }
  std::stable_sort(nondet_.begin(), nondet_.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 0; i < nondet_.size(); ++i) {
    if (i + 1 < nondet_.size() && nondet_[i + 1].first == nondet_[i].first) {
      continue;
    }
    out.nondet.emplace_hint(out.nondet.end(), nondet_[i].first, std::move(nondet_[i].second));
  }

  std::sort(responses_.begin(), responses_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [rid, by] : responses_) {
    out.response_emitted_by.emplace_hint(out.response_emitted_by.end(), rid, by);
  }

  out.write_order = std::move(write_order_);
  Reset();
  return out;
}

void AdviceBuilder::Reset() {
  var_index_.clear();
  var_lanes_.clear();
  tx_index_.clear();
  tx_lanes_.clear();
  nondet_.clear();
  opcounts_.clear();
  responses_.clear();
  requests_.clear();
  write_order_.clear();
  var_entry_count_ = 0;
}

}  // namespace karousos
