#include "src/server/server.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/apps/app_util.h"
#include "src/server/rollover.h"

namespace karousos {

const char* CollectModeName(CollectMode mode) {
  switch (mode) {
    case CollectMode::kOff:
      return "unmodified";
    case CollectMode::kKarousos:
      return "karousos";
    case CollectMode::kOrochi:
      return "orochi-js";
  }
  return "?";
}

namespace {

[[noreturn]] void AppBug(const char* what) {
  std::fprintf(stderr, "karousos server: application error: %s\n", what);
  std::abort();
}

// Salt for the event/function name-digest memo (EventId and function ids are
// both DigestOf(name), so one lane serves both).
constexpr uint64_t kNameSalt = 1;

}  // namespace

// The Ctx implementation for online execution (lane width 1). One instance
// per handler activation; also used (with rid == kInitRequestId) for the
// initialization pseudo-handler I, whose operations are *not* reported in the
// advice — the verifier re-runs initialization itself (Figure 14 line 20).
class ServerCtx : public Ctx {
 public:
  ServerCtx(Server* server, RequestId rid, HandlerId hid, LabelStore::Ref label,
            const Value& payload, ServerRunResult* result)
      : server_(*server),
        rid_(rid),
        hid_(hid),
        label_ref_(label),
        input_(MultiValue(payload)),
        result_(result) {}

  const MultiValue& Input() const override { return input_; }

  void DeclareVar(std::string_view name, VarScope scope) override {
    VarId vid = server_.varid_cache_.Resolve(name, scope, rid_);
    if (scope == VarScope::kUntracked) {
      Server::UntrackedVar& var = server_.untracked_vars_[vid];
      var.value = Value();
      var.name = std::string(name);
      var.written = false;
      return;
    }
    OpNum opnum = NextOp();
    auto& var = server_.tracked_vars_[vid];
    if (var.declared) {
      AppBug("variable declared twice");
    }
    var.declared = true;
    var.last_is_declaration = true;
    var.last_write_logged = false;
    var.value = Value();
    if (instrumented()) {
      var.last_write = OpRef{rid_, hid_, opnum};
      var.last_write_label = label_ref_;
    }
  }

  MultiValue ReadVar(std::string_view name, VarScope scope) override {
    VarId vid = server_.varid_cache_.Resolve(name, scope, rid_);
    if (scope == VarScope::kUntracked) {
      Server::UntrackedVar& var = server_.untracked_vars_[vid];
      RecordUntrackedAccess(UntrackedAccess::Kind::kRead, vid, var);
      LintUntrackedAccess(var);
      return MultiValue(var.value);
    }
    auto it = server_.tracked_vars_.find(vid);
    if (it == server_.tracked_vars_.end() || !it->second.declared) {
      AppBug("read of undeclared variable");
    }
    Server::TrackedVar& var = it->second;
    ++result_->var_accesses;
    if (!instrumented()) {
      return MultiValue(var.value);
    }
    OpNum opnum = NextOp();
    // Figure 13, OnRead: log iff R-concurrent with the dictating write (or
    // always, in Orochi mode). Init-handler ops are never logged but do feed
    // the R test (I R-precedes everything).
    OpRef cur{rid_, hid_, opnum};
    // Reads whose dictating write is the init handler's are R-ordered by
    // definition (I precedes everything) and are never logged — even in
    // Orochi log-all mode, where a log entry could not reference the init
    // write (init operations are re-created by the verifier, not logged).
    bool log_read =
        (server_.config_.mode == CollectMode::kOrochi ||
         RConcurrent(cur, label(), var.last_write, server_.label_store_.Get(var.last_write_label))) &&
        var.last_write.rid != kInitRequestId && !var.last_is_declaration;
    if (log_read && rid_ != kInitRequestId) {
      EnsureWriteLogged(vid, var);
      VarLogEntry entry;
      entry.kind = VarLogEntry::Kind::kRead;
      entry.prec = var.last_write;
      SerializeOpRef(cur, &server_.advice_spool_);
      SerializeOpRef(entry.prec, &server_.advice_spool_);
      server_.builder_.AddVarEntry(vid, cur, std::move(entry));
    }
    return MultiValue(var.value);
  }

  void WriteVar(std::string_view name, VarScope scope, const MultiValue& value) override {
    VarId vid = server_.varid_cache_.Resolve(name, scope, rid_);
    if (!value.collapsed()) {
      AppBug("expanded multivalue written at width-1 server");
    }
    if (scope == VarScope::kUntracked) {
      Server::UntrackedVar& var = server_.untracked_vars_[vid];
      RecordUntrackedAccess(UntrackedAccess::Kind::kWrite, vid, var);
      LintUntrackedAccess(var);
      var.value = value.CollapsedValue();
      if (server_.config_.annotation_lint && instrumented()) {
        var.written = true;
        var.last_write = OpRef{rid_, hid_, ++lint_opnum_};
        var.last_write_label = label_ref_;
      }
      return;
    }
    auto it = server_.tracked_vars_.find(vid);
    if (it == server_.tracked_vars_.end() || !it->second.declared) {
      AppBug("write of undeclared variable");
    }
    Server::TrackedVar& var = it->second;
    ++result_->var_accesses;
    if (!instrumented()) {
      var.value = value.CollapsedValue();
      return;
    }
    OpNum opnum = NextOp();
    OpRef cur{rid_, hid_, opnum};
    // Figure 13, OnWrite: log iff R-concurrent with the preceding write.
    bool log_write =
        server_.config_.mode == CollectMode::kOrochi ||
        RConcurrent(cur, label(), var.last_write, server_.label_store_.Get(var.last_write_label));
    bool logged = log_write && rid_ != kInitRequestId;
    if (logged) {
      EnsureWriteLogged(vid, var);
      VarLogEntry entry;
      entry.kind = VarLogEntry::Kind::kWrite;
      entry.value = value.CollapsedValue();
      // Init-handler and declaration predecessors are not loggable; the
      // verifier recovers the chain link through FindNearestRPrecedingWrite
      // (nil-prec path).
      entry.prec = var.last_write.rid == kInitRequestId || var.last_is_declaration
                       ? kNilOp
                       : var.last_write;
      SerializeOpRef(cur, &server_.advice_spool_);
      server_.advice_spool_.WriteValue(entry.value);
      server_.builder_.AddVarEntry(vid, cur, std::move(entry));
    }
    var.value = value.CollapsedValue();
    var.last_is_declaration = false;
    var.last_write = cur;
    var.last_write_label = label_ref_;
    var.last_write_logged = logged;
  }

  bool Branch(const MultiValue& condition) override {
    bool truth = condition.CollapsedValue().Truthy();
    if (instrumented()) {
      cf_digest_.Update(static_cast<uint64_t>(truth));
    }
    return truth;
  }

  void Emit(std::string_view event, const MultiValue& payload) override {
    if (rid_ == kInitRequestId) {
      AppBug("initialization function may not emit events");
    }
    OpNum opnum = NextOp();
    uint64_t event_id = server_.NameDigest(event);
    Server::RequestState& req = server_.requests_[rid_];
    if (instrumented()) {
      HandlerLogEntry e;
      e.kind = HandlerLogEntry::Kind::kEmit;
      e.hid = hid_;
      e.opnum = opnum;
      e.event = event_id;
      req.handler_log.Append(&server_.arena_, e);
    }
    Server::PendingEvent pending;
    pending.event = event_id;
    pending.payload = payload.CollapsedValue();
    pending.activator_hid = hid_;
    pending.activator_opnum = opnum;
    req.pending.push_back(std::move(pending));
  }

  void RegisterHandler(std::string_view event, std::string_view function) override {
    OpNum opnum = NextOp();
    uint64_t event_id = server_.NameDigest(event);
    FunctionId function_id = server_.NameDigest(function);
    if (server_.program_.FindFunction(function_id) == nullptr) {
      AppBug("registration of unknown function");
    }
    if (rid_ == kInitRequestId) {
      server_.global_handlers_.push_back({event_id, function_id});
      return;
    }
    Server::RequestState& req = server_.requests_[rid_];
    if (instrumented()) {
      HandlerLogEntry e;
      e.kind = HandlerLogEntry::Kind::kRegister;
      e.hid = hid_;
      e.opnum = opnum;
      e.event = event_id;
      e.function = function_id;
      req.handler_log.Append(&server_.arena_, e);
    }
    req.registered.push_back({event_id, function_id});
  }

  void UnregisterHandler(std::string_view event, std::string_view function) override {
    if (rid_ == kInitRequestId) {
      AppBug("initialization function may not unregister handlers");
    }
    OpNum opnum = NextOp();
    uint64_t event_id = server_.NameDigest(event);
    FunctionId function_id = server_.NameDigest(function);
    Server::RequestState& req = server_.requests_[rid_];
    if (instrumented()) {
      HandlerLogEntry e;
      e.kind = HandlerLogEntry::Kind::kUnregister;
      e.hid = hid_;
      e.opnum = opnum;
      e.event = event_id;
      e.function = function_id;
      req.handler_log.Append(&server_.arena_, e);
    }
    auto& regs = req.registered;
    for (auto it = regs.begin(); it != regs.end(); ++it) {
      if (it->event == event_id && it->function == function_id) {
        regs.erase(it);
        return;
      }
    }
  }

  TxHandle TxStart() override {
    OpNum opnum = NextOp();
    ++result_->state_ops;
    TxId tid = DigestOfInts(rid_, hid_, opnum);
    if (server_.store_.Begin(rid_, tid) != TxStatus::kOk) {
      AppBug("transaction id collision");
    }
    if (instrumented()) {
      TxOperation op;
      op.type = TxOpType::kTxStart;
      op.hid = hid_;
      op.opnum = opnum;
      server_.builder_.TxLog(TxnKey{rid_, tid}).push_back(std::move(op));
    }
    TxHandle handle;
    handle.slot = static_cast<uint32_t>(open_txns_.size());
    handle.valid = true;
    open_txns_.push_back(tid);
    return handle;
  }

  TxGetResult TxGet(TxHandle tx, const MultiValue& key) override {
    TxGetResult out;
    OpNum opnum = NextOp();
    ++result_->state_ops;
    TxId tid = TidOf(tx);
    std::string key_str = key.CollapsedValue().AsString();
    KvGetResult got = server_.store_.Get(rid_, tid, key_str);
    if (got.status == TxStatus::kConflict) {
      ++result_->conflicts;
      if (instrumented()) {
        server_.builder_.AddNondet(OpRef{rid_, hid_, opnum},
                                   NondetRecord{NondetRecord::Kind::kConflict, Value()});
      }
      out.conflict = true;
      return out;
    }
    if (got.status != TxStatus::kOk) {
      AppBug("GET on invalid transaction");
    }
    if (instrumented()) {
      TxOperation op;
      op.type = TxOpType::kGet;
      op.hid = hid_;
      op.opnum = opnum;
      op.key = key_str;
      op.get_found = got.found;
      op.get_from = got.found ? got.dictating_write : kNilTxOp;
      server_.builder_.TxLog(TxnKey{rid_, tid}).push_back(std::move(op));
    }
    out.value = MultiValue(got.value);
    out.found = MultiValue(Value(got.found));
    return out;
  }

  bool TxPut(TxHandle tx, const MultiValue& key, const MultiValue& value) override {
    OpNum opnum = NextOp();
    ++result_->state_ops;
    TxId tid = TidOf(tx);
    std::string key_str = key.CollapsedValue().AsString();
    // The PUT's index within the transaction log identifies it as a version;
    // it must be computed before appending (1-based position).
    TxnKey txn{rid_, tid};
    uint32_t index = instrumented()
                         ? static_cast<uint32_t>(server_.builder_.TxLog(txn).size()) + 1
                         : server_.NextUninstrumentedPutIndex(txn);
    TxStatus status = server_.store_.Put(rid_, tid, index, key_str, value.CollapsedValue());
    if (status == TxStatus::kConflict) {
      ++result_->conflicts;
      if (instrumented()) {
        server_.builder_.AddNondet(OpRef{rid_, hid_, opnum},
                                   NondetRecord{NondetRecord::Kind::kConflict, Value()});
      }
      return false;
    }
    if (status != TxStatus::kOk) {
      AppBug("PUT on invalid transaction");
    }
    if (instrumented()) {
      TxOperation op;
      op.type = TxOpType::kPut;
      op.hid = hid_;
      op.opnum = opnum;
      op.key = key_str;
      op.put_value = value.CollapsedValue();
      server_.advice_spool_.WriteString(op.key);
      server_.advice_spool_.WriteValue(op.put_value);
      server_.builder_.TxLog(txn).push_back(std::move(op));
    }
    return true;
  }

  bool TxCommit(TxHandle tx) override {
    OpNum opnum = NextOp();
    ++result_->state_ops;
    TxId tid = TidOf(tx);
    TxStatus status = server_.store_.Commit(rid_, tid);
    if (instrumented()) {
      TxOperation op;
      op.type = status == TxStatus::kOk ? TxOpType::kTxCommit : TxOpType::kTxAbort;
      op.hid = hid_;
      op.opnum = opnum;
      server_.builder_.TxLog(TxnKey{rid_, tid}).push_back(std::move(op));
    }
    return status == TxStatus::kOk;
  }

  void TxAbort(TxHandle tx) override {
    OpNum opnum = NextOp();
    ++result_->state_ops;
    TxId tid = TidOf(tx);
    server_.store_.Abort(rid_, tid);
    if (instrumented()) {
      TxOperation op;
      op.type = TxOpType::kTxAbort;
      op.hid = hid_;
      op.opnum = opnum;
      server_.builder_.TxLog(TxnKey{rid_, tid}).push_back(std::move(op));
    }
  }

  MultiValue AppWork(const MultiValue& seed, uint32_t units) override {
    if (!instrumented()) {
      return MvExpensive(seed, units);
    }
    // Instrumented app code must pass the activator's id to every function it
    // calls and keep the control-flow digest current (§5); the tax applies
    // per simulated call. The low-overhead instrumentation threads the
    // activator id through each call as an argument — one context mix per
    // simulated call — instead of saving and restoring the activation context
    // around it, and flushes the context to memory once per activation rather
    // than per call. The produced value is identical to the plain run (the
    // h chain never touches the context).
    HandlerId hid = hid_;
    uint64_t context_slot = hid;
    MultiValue result = MultiValue::Map(seed, [units, hid, &context_slot](const Value& v) {
      uint64_t h = v.DigestValue();
      uint64_t context = context_slot;
      for (uint32_t i = 0; i < units; ++i) {
        h = Avalanche(h + i);
        // One full mix threads the call result through the context; the
        // activator id rides along as a half-round fold instead of the
        // second full mix the save/restore pair paid.
        context = Avalanche(context ^ h);
        context ^= context >> 30;
        context = context * 0x94d049bb133111ebULL + hid;
      }
      context_slot = context;
      char buf[17];
      int n = std::snprintf(buf, sizeof(buf), "%" PRIx64, h);
      return Value(std::string(buf, static_cast<size_t>(n)));
    });
    server_.instrumentation_sink_ = context_slot;
    return result;
  }

  MultiValue Random() override {
    OpNum opnum = NextOp();
    Value v(static_cast<int64_t>(server_.value_rng_->Below(1000000000)));
    if (instrumented()) {
      server_.builder_.AddNondet(OpRef{rid_, hid_, opnum},
                                 NondetRecord{NondetRecord::Kind::kValue, v});
    }
    return MultiValue(v);
  }

  void Respond(const MultiValue& body) override {
    if (rid_ == kInitRequestId) {
      AppBug("initialization function may not respond");
    }
    Server::RequestState& req = server_.requests_[rid_];
    if (req.responded) {
      AppBug("request responded twice");
    }
    req.responded = true;
    server_.trace_.events.push_back(
        TraceEvent{TraceEvent::Kind::kResponse, rid_, body.CollapsedValue()});
    if (server_.capture_responses_) {
      req.response = body.CollapsedValue();
    }
    if (instrumented()) {
      server_.builder_.AddResponse(rid_, hid_, ops_issued_);
    }
  }

  // Exposes the tid values so applications can hand a transaction across
  // handlers via event payloads (a transaction "split across multiple
  // handlers", §4.4).
  MultiValue TxIdValue(TxHandle tx) override { return MultiValue(Value(TidOf(tx))); }

  TxHandle TxResume(const MultiValue& tid_value) override {
    TxHandle handle;
    handle.slot = static_cast<uint32_t>(open_txns_.size());
    handle.valid = true;
    open_txns_.push_back(static_cast<TxId>(tid_value.CollapsedValue().AsInt()));
    return handle;
  }

  OpNum ops_issued() const { return ops_issued_; }
  uint64_t cf_digest() const { return cf_digest_.Finish(); }

 private:
  bool instrumented() const { return server_.config_.mode != CollectMode::kOff; }

  // This activation's interned label. The reference is only used transiently
  // (no labels are interned while an activation runs, so it cannot dangle).
  const HandlerLabel& label() const { return server_.label_store_.Get(label_ref_); }

  OpNum NextOp() {
    ++result_->ops_executed;
    return ++ops_issued_;
  }

  TxId TidOf(TxHandle tx) const {
    if (!tx.valid || tx.slot >= open_txns_.size()) {
      AppBug("use of invalid transaction handle");
    }
    return open_txns_[tx.slot];
  }

  // Feeds the §5-precondition race detector (src/analysis/race.h). Labels
  // only exist in instrumented modes; an uninstrumented run records nothing.
  void RecordUntrackedAccess(UntrackedAccess::Kind kind, VarId vid,
                             const Server::UntrackedVar& var) {
    if (!instrumented() || !server_.config_.record_untracked_accesses) {
      return;
    }
    UntrackedAccess rec;
    rec.kind = kind;
    rec.vid = vid;
    rec.name = var.name;
    rec.rid = rid_;
    rec.hid = hid_;
    rec.label = label();
    rec.seq = ++untracked_seq_;
    result_->untracked_accesses.push_back(std::move(rec));
  }

  // Shadow R-concurrency check for unannotated variables (annotation
  // advisor). Accesses R-concurrent with the variable's most recent write
  // mean the developer must annotate it as loggable.
  void LintUntrackedAccess(Server::UntrackedVar& var) {
    if (!server_.config_.annotation_lint || !instrumented() || !var.written ||
        rid_ == kInitRequestId) {
      return;
    }
    OpRef cur{rid_, hid_, lint_opnum_ + 1};
    if (RConcurrent(cur, label(), var.last_write,
                    server_.label_store_.Get(var.last_write_label)) &&
        var.last_write.rid != kInitRequestId) {
      ++result_->lint_violations[var.name];
    }
  }

  // Back-fills the log entry for the variable's most recent write, per
  // Figure 13 lines 14-15 / 21-22 (the write predates the decision to log).
  // The last_write_logged flag stands in for the membership test the ordered
  // map used to answer (the builder's append lanes have no keyed lookup).
  void EnsureWriteLogged(VarId vid, Server::TrackedVar& var) {
    if (var.last_is_declaration) {
      return;  // Declarations are not writes; nothing to back-fill.
    }
    if (var.last_write.rid == kInitRequestId) {
      return;  // Initialization writes are re-created by the verifier's own
               // init run; they are never logged (I R-precedes everything,
               // so an honest Karousos server wouldn't reach here, but the
               // Orochi log-all mode does).
    }
    if (var.last_write_logged) {
      return;
    }
    VarLogEntry entry;
    entry.kind = VarLogEntry::Kind::kWrite;
    entry.value = var.value;
    entry.prec = kNilOp;
    SerializeOpRef(var.last_write, &server_.advice_spool_);
    server_.advice_spool_.WriteValue(entry.value);
    server_.builder_.AddVarEntry(vid, var.last_write, std::move(entry));
    var.last_write_logged = true;
  }

  Server& server_;
  RequestId rid_;
  HandlerId hid_;
  LabelStore::Ref label_ref_;
  MultiValue input_;
  ServerRunResult* result_;
  OpNum ops_issued_ = 0;
  // Shadow counter for lint-mode untracked accesses: keeps their coordinates
  // distinct without perturbing the real opnum stream.
  OpNum lint_opnum_ = 0;
  // Per-activation position counter for the untracked-access log.
  uint32_t untracked_seq_ = 0;
  Digest cf_digest_;
  std::vector<TxId> open_txns_;
};

Server::Server(const Program& program, const ServerConfig& config)
    : program_(program),
      config_(config),
      store_(config.isolation),
      sched_rng_(std::make_unique<Rng>(config.seed * 2 + 1)),
      value_rng_(std::make_unique<Rng>(config.seed * 2 + 2)) {}

Server::~Server() = default;

uint64_t Server::NameDigest(std::string_view name) {
  return name_cache_.Get(name, kNameSalt, [&] { return DigestOf(name); });
}

ServerRunResult Server::Run(const std::vector<Value>& request_inputs) {
  BeginRun(request_inputs.size());
  size_t next = 0;
  while (next < request_inputs.size() || !in_flight_.empty()) {
    while (in_flight_.size() < static_cast<size_t>(config_.concurrency) &&
           next < request_inputs.size()) {
      InjectRequest(request_inputs[next]);
      ++next;
    }
    if (!StepOne()) {
      break;  // Every in-flight request is drained; if any is unresponded the
              // trace will be unbalanced, which audits surface loudly.
    }
  }
  return FinishRun();
}

void Server::BeginRun(size_t expected_requests) {
  run_ = std::make_unique<ServerRunResult>();
  current_result_ = run_.get();
  requests_.clear();
  requests_.reserve(expected_requests + 1);
  requests_.resize(1);  // Slot 0 unused; rids run 1..N.
  in_flight_.clear();
  completed_.clear();
  responses_delivered_ = 0;
  warm_ = config_.warmup_requests == 0;

  // Initialization: runs as pseudo-handler I. Its registrations become the
  // global handlers; its variable writes seed the tracked variables.
  {
    ServerCtx init_ctx(this, kInitRequestId, kInitHandlerId, LabelStore::kEmpty, Value(),
                       run_.get());
    if (program_.init()) {
      program_.init()(init_ctx);
    }
  }
  serve_start_ = std::chrono::steady_clock::now();
}

RequestId Server::InjectRequest(const Value& input) {
  RequestId rid = static_cast<RequestId>(requests_.size());
  trace_.events.push_back(TraceEvent{TraceEvent::Kind::kRequest, rid, input});
  requests_.emplace_back();
  RequestState& req = requests_[rid];
  req.input = input;
  if (config_.measure_request_latencies) {
    req.arrival = std::chrono::steady_clock::now();
  }
  PendingEvent arrival;
  arrival.event = EventId(kRequestEventName);
  arrival.payload = req.input;
  arrival.activator_hid = kNoHandler;
  arrival.activator_opnum = 0;
  req.pending.push_back(std::move(arrival));
  in_flight_.push_back(rid);
  return rid;
}

bool Server::has_runnable() const {
  for (RequestId rid : in_flight_) {
    if (!requests_[rid].pending.empty()) {
      return true;
    }
  }
  return false;
}

bool Server::StepOne() {
  // Candidates: in-flight requests with pending events, in rid order for
  // determinism; the scheduler picks one uniformly.
  std::vector<size_t> candidates;
  for (size_t i = 0; i < in_flight_.size(); ++i) {
    if (!requests_[in_flight_[i]].pending.empty()) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    return false;
  }
  size_t pick = candidates[sched_rng_->Below(candidates.size())];
  RequestId rid = in_flight_[pick];
  RequestState& req = requests_[rid];
  // KEM's dispatch loop selects non-deterministically from the *set* of
  // pending events (§3). Under load, I/O completions (child-handler
  // events) finish out of order; we model that by widening the selection
  // window with the number of in-flight requests. With one request in
  // flight the loop is FIFO — no reordering without concurrency, matching
  // the paper's observation that reordering grows with concurrency.
  size_t window = std::min(req.pending.size(), in_flight_.size());
  size_t slot = window > 1 ? sched_rng_->Below(window) : 0;
  PendingEvent event = std::move(req.pending[slot]);
  req.pending.erase(req.pending.begin() + static_cast<long>(slot));
  DispatchEvent(rid, event, run_.get());
  if (req.pending.empty() && req.responded) {
    in_flight_.erase(in_flight_.begin() + static_cast<long>(pick));
    ++responses_delivered_;
    if (config_.measure_request_latencies) {
      run_->request_latencies.push_back(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - req.arrival)
              .count());
    }
    if (capture_responses_) {
      completed_.push_back(CompletedRequest{rid, std::move(req.response)});
    }
    if (!warm_ && responses_delivered_ >= config_.warmup_requests) {
      warm_ = true;
      serve_start_ = std::chrono::steady_clock::now();
    }
  }
  return true;
}

std::vector<CompletedRequest> Server::TakeCompleted() {
  std::vector<CompletedRequest> out = std::move(completed_);
  completed_.clear();
  return out;
}

ServerRunResult Server::FinishRun() {
  ServerRunResult& result = *run_;
  result.serve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - serve_start_).count();

  if (instrumented()) {
    for (RequestId rid = 1; rid < requests_.size(); ++rid) {
      RequestState& req = requests_[rid];
      uint64_t tag = config_.mode == CollectMode::kKarousos ? DigestOfInts(req.tree_tag_acc)
                                                            : req.seq_tag.Finish();
      builder_.AddRequest(rid, tag, req.handler_log.ToVector());
    }
    builder_.SetWriteOrder(store_.binlog());
  }

  result.advice_spool_bytes = advice_spool_.size();
  result.trace = std::move(trace_);
  result.advice = builder_.Finalize();
  result.var_log_entries = result.advice.var_log_entry_count();
  if (config_.epoch_requests > 0) {
    // Slicing takes the advice by move (no re-copy of logs or values) and
    // the merge hands the identical monolithic advice back.
    EpochSlices slices =
        SliceRunOwned(result.trace, std::move(result.advice), config_.epoch_requests);
    result.trace_segments = EncodeTraceSegments(slices, config_.segment_compression);
    result.advice_segments = EncodeAdviceSegments(slices, config_.segment_compression);
    result.advice = MergeSlices(std::move(slices));
  }
  trace_ = Trace{};
  requests_.clear();
  in_flight_.clear();
  arena_.Reset();
  current_result_ = nullptr;
  ServerRunResult out = std::move(*run_);
  run_.reset();
  return out;
}

void Server::DispatchEvent(RequestId rid, const PendingEvent& event, ServerRunResult* result) {
  // Canonical activation order: global handlers in registration order, then
  // the request's own registrations in registration order. The verifier's
  // AddHandlerRelatedEdges iterates the same way; the orders must agree.
  // DispatchEvent never nests (handlers queue events; they don't dispatch),
  // so one scratch list serves the whole run.
  std::vector<FunctionId>& matched = matched_scratch_;
  matched.clear();
  for (const Registration& reg : global_handlers_) {
    if (reg.event == event.event) {
      matched.push_back(reg.function);
    }
  }
  for (const Registration& reg : requests_[rid].registered) {
    if (reg.event == event.event) {
      matched.push_back(reg.function);
    }
  }
  for (FunctionId function : matched) {
    HandlerId hid;
    if (instrumented()) {
      hid = ComputeHandlerId(function, event.activator_hid, event.activator_opnum);
    } else {
      // Uninstrumented servers still need distinct per-request activation
      // identities for transaction ids; a counter is the cheap substitute.
      hid = ++requests_[rid].handler_count;
    }
    RunActivation(rid, function, hid, event.payload, event.activator_hid, result);
  }
}

void Server::RunActivation(RequestId rid, FunctionId function, HandlerId hid,
                           const Value& payload, HandlerId activator, ServerRunResult* result) {
  ++result->handler_activations;
  RequestState& req = requests_[rid];
  LabelStore::Ref label = LabelStore::kEmpty;
  if (instrumented()) {
    // label = parent_label / num (§5). Request handlers hang off the
    // per-request root (ref 0, the empty label — same slot the init
    // pseudo-handler uses).
    LabelStore::Ref parent = activator == kNoHandler ? LabelStore::kEmpty : req.labels[activator];
    label = label_store_.AppendChild(parent, req.child_counts[activator]++);
    req.labels[hid] = label;
    ++req.handler_count;
  }
  const FunctionDef* def = program_.FindFunction(function);
  if (def == nullptr) {
    AppBug("activation of unknown function");
  }
  ServerCtx ctx(this, rid, hid, label, payload, result);
  def->fn(ctx);
  if (instrumented()) {
    builder_.AddOpcount(rid, hid, ctx.ops_issued());
    uint64_t handler_digest = DigestOfInts(hid, ctx.cf_digest());
    req.tree_tag_acc = CombineUnordered(req.tree_tag_acc, handler_digest);
    req.seq_tag.Update(handler_digest);
  }
}

}  // namespace karousos
