// The advice the server reports to the verifier (§2.1, C.1.3).
//
// Advice is *untrusted*: every structure here is an allegation the verifier
// must validate. The components map one-to-one onto the paper's list:
//   * tags               — the control-flow groupings C (§4.1, §5);
//   * handler_logs       — HLs: per-request ordered handler operations;
//   * var_logs           — VLs: per-variable logged reads/writes (Figure 13);
//   * tx_logs            — TXLs: per-transaction operation logs (§4.4);
//   * write_order        — the alleged global order of external-state writes;
//   * response_emitted_by— which handler op delivered each response;
//   * opcounts           — per-(rid, hid) total operation counts;
//   * nondet             — recorded non-deterministic results (§5).
//
// Advice has a real wire format (Serialize/Deserialize) so that Figure 8's
// advice-size experiment measures actual bytes.
#ifndef SRC_SERVER_ADVICE_H_
#define SRC_SERVER_ADVICE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/adya/history.h"
#include "src/common/ids.h"
#include "src/common/serde.h"
#include "src/common/value.h"

namespace karousos {

struct HandlerLogEntry {
  enum class Kind : uint8_t { kRegister, kEmit, kUnregister };
  Kind kind = Kind::kEmit;
  HandlerId hid = 0;
  OpNum opnum = 0;
  uint64_t event = 0;       // Event-name digest.
  FunctionId function = 0;  // Register / unregister only.
};

struct VarLogEntry {
  enum class Kind : uint8_t { kRead, kWrite };
  Kind kind = Kind::kRead;
  Value value;  // Writes only: the value written.
  // Reads: the dictating write. Writes: the overwritten write. Nil for
  // back-filled write entries whose predecessor was not logged.
  OpRef prec;
};

// Ordered map keyed by access coordinates; ordering keeps serialization and
// verifier iteration deterministic.
using VarLog = std::map<OpRef, VarLogEntry>;

struct NondetRecord {
  enum class Kind : uint8_t { kConflict, kValue };
  Kind kind = Kind::kValue;
  Value value;  // kValue only.
};

struct Advice {
  std::map<RequestId, uint64_t> tags;
  std::map<RequestId, std::vector<HandlerLogEntry>> handler_logs;
  std::map<VarId, VarLog> var_logs;
  TransactionLogs tx_logs;
  WriteOrder write_order;
  std::map<RequestId, std::pair<HandlerId, OpNum>> response_emitted_by;
  std::map<std::pair<RequestId, HandlerId>, OpNum> opcounts;
  std::map<OpRef, NondetRecord> nondet;

  void Serialize(ByteWriter* out) const;
  static std::optional<Advice> Deserialize(ByteReader* in);

  // Encoded size, total and per component (Figure 8 and its breakdowns).
  struct SizeBreakdown {
    size_t total = 0;
    size_t tags = 0;
    size_t handler_logs = 0;
    size_t var_logs = 0;
    size_t tx_logs = 0;
    size_t write_order = 0;
    size_t other = 0;
  };
  SizeBreakdown MeasureSize() const;

  // Counters used by the logging ablation.
  size_t var_log_entry_count() const;
  size_t handler_log_entry_count() const;
};

void SerializeOpRef(const OpRef& op, ByteWriter* out);
std::optional<OpRef> DeserializeOpRef(ByteReader* in);
void SerializeTxOpRef(const TxOpRef& op, ByteWriter* out);
std::optional<TxOpRef> DeserializeTxOpRef(ByteReader* in);

}  // namespace karousos

#endif  // SRC_SERVER_ADVICE_H_
