// Shard-axis slicing: partitions one run's advice across K self-contained
// shard files so K independent processes can audit in parallel (ROADMAP
// item 2; the scale-out counterpart to the epoch slicer in rollover.h).
//
// The two axes compose orthogonally:
//   * epochs  slice *time* — every shard file still carries one frame pair
//     per epoch, so each shard process streams with bounded residency;
//   * shards  slice *requests* — advice content is owned by the shard of its
//     request id, the trace windows are replicated to every shard (the trace
//     is trusted and small relative to advice), and the write order is
//     filtered per shard with each entry's *global* position recorded so the
//     merge can re-stitch the alleged total order exactly.
//
// Partitioning is group-atomic: the unit is the re-execution tag group (all
// requests sharing an advice tag), keyed by the group's *lead* — its minimum
// request id. Handlers only interact across requests through (a) external
// state, whose cross-references travel as continuity imports, and (b) tagged
// event chains, which never span groups; so a shard's audit input is closed
// under everything but imports, and a shard verifies with the full
// Verifier/AuditSession machinery.
//
// Continuity imports generalize from "forward across an epoch boundary" to
// "forward across an epoch boundary OR owned by another shard": a reference
// whose target lives out-of-shard is never confirmable locally, so the shard
// audits against the allegation and the merge confirms allegations across
// shards (a wrong import can only cause rejection, exactly as on the epoch
// axis).
//
// Every shard file opens with a kShardBoundary frame — the cross-shard
// manifest the merge checks: covered rid set + digest, replicated-trace and
// balance digests (equal across shards by construction), write-order global
// positions and alleged total, per-component advice totals, and per-variable
// write-chain heads/tails. Boundary allegations are validated against the
// shard's own content at load time (KAR-SEG-011) and against each other at
// merge time (KAR-SEG-012..015).
#ifndef SRC_SERVER_SHARD_H_
#define SRC_SERVER_SHARD_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/diagnostic.h"
#include "src/common/kcodec.h"
#include "src/common/segment.h"
#include "src/server/rollover.h"

namespace karousos {

enum class ShardMode : uint8_t {
  kHash = 0,   // shard(lead) = SplitMix64(lead) % K — stable request-hash.
  kRange = 1,  // contiguous, equal-count ranges of sorted group leads.
};

const char* ShardModeName(ShardMode mode);
std::optional<ShardMode> ParseShardMode(const std::string& name);

struct ShardSpec {
  uint32_t count = 1;
  ShardMode mode = ShardMode::kHash;
};

// The shard owning every request id that appears in the trace or the advice.
// Tag groups are atomic: each rid maps with its group lead, so causally
// related requests always land together. Rid 0 (the init pseudo-request) is
// shard 0's. Exposed for tests and `karousos inspect`.
std::map<RequestId, uint32_t> AssignShards(const Trace& trace, const Advice& advice,
                                           const ShardSpec& spec);

// The cross-shard boundary manifest (first frame of every shard file).
struct ShardBoundary {
  uint32_t shard = 0;
  uint32_t count = 1;
  ShardMode mode = ShardMode::kHash;
  uint64_t epoch_requests = 0;
  uint64_t epochs = 0;  // Epoch frame pairs that follow the boundary frame.

  // Trace rids owned by this shard, ascending, plus an order-sensitive
  // digest. The merge checks that the K rid sets partition the trace exactly
  // (KAR-SEG-012).
  std::vector<RequestId> rids;
  uint64_t rid_digest = 0;

  // Digests over the replicated trace windows and the per-rid
  // arrival/response summary — identical across shards by construction, so
  // any disagreement at merge means the shards were cut from different runs
  // (KAR-SEG-015).
  uint64_t trace_digest = 0;
  uint64_t balance_digest = 0;

  // Global position (in the alleged total write order) of each write-order
  // entry this shard carries, aligned with the concatenation of its per-epoch
  // chunks; plus the alleged total length. The merge re-stitches: positions
  // across shards must cover 0..total-1 exactly once (KAR-SEG-013).
  std::vector<uint64_t> write_order_positions;
  uint64_t write_order_total = 0;

  // Per-component advice totals for this shard (validated against content at
  // load; summed and cross-checked at merge).
  uint64_t total_tags = 0;
  uint64_t total_handler_entries = 0;
  uint64_t total_var_entries = 0;
  uint64_t total_tx_ops = 0;
  uint64_t total_opcount_sum = 0;

  // Per-variable write-chain endpoints among this shard's var-log write
  // entries: head/tail in access-coordinate order, plus the write count.
  struct Chain {
    VarId vid = 0;
    OpRef head;
    OpRef tail;
    uint64_t writes = 0;
  };
  std::vector<Chain> chains;  // Ascending vid.

  // Export obligations: coordinates *inside this shard* that other shards'
  // continuity imports reference. The shard audit describes its real content
  // at each (into the artifact's export tables) so the merge can confirm
  // every cross-shard allegation against the owning shard — the shard-axis
  // counterpart of StreamConfirmImports' carry lookup. Dropping an obligation
  // only removes an export, which the merge reports as a missing confirmation
  // (KAR-SEG-014): tampering here can only cause rejection.
  std::vector<TxOpRef> export_tx_refs;                   // Sorted, unique.
  std::vector<std::pair<VarId, OpRef>> export_var_refs;  // Sorted, unique.

  void Serialize(ByteWriter* out) const;
  static std::optional<ShardBoundary> Deserialize(ByteReader* in);
};

// One shard's complete audit input: its boundary manifest plus per-epoch
// slices (full trace windows, shard-filtered advice, shard-aware imports).
struct ShardFile {
  ShardBoundary boundary;
  EpochSlices slices;
};

// Partitions a run into spec.count shard files. epoch_requests == 0 means one
// epoch holding everything (the axes compose: every K×epoch combination is
// valid). For spec.count == 1 shard 0's slices are byte-identical to
// SliceRun's output — the K=1 shard path reproduces the epoch path exactly.
std::vector<ShardFile> ShardRun(const Trace& trace, const Advice& advice,
                                uint64_t epoch_requests, const ShardSpec& spec);

// Single-file container encode: one kShardBoundary frame (epoch field = shard
// index), then per epoch a kTrace frame and a kAdvice frame. The storage-class
// variant compresses the epoch frames exactly like the epoch-stream encoders;
// the boundary frame always stays raw (the merge must read it before touching
// any payload codec).
std::vector<uint8_t> EncodeShardFile(const ShardFile& shard);
std::vector<uint8_t> EncodeShardFile(const ShardFile& shard, const KsegCompression& c);

// Decode + validate one shard file. `ok == false` carries the same
// reason/rule/diagnostic shape the audit uses: container defects reject under
// KAR-SEG-001/002/003, boundary defects (frame order, epoch count, position
// monotonicity/bounds, digest or totals disagreeing with the decoded content)
// under KAR-SEG-011.
struct ShardLoadResult {
  bool ok = false;
  std::string reason;  // Prefixed ("segment stream: ...") like the audit's.
  std::string rule;
  std::vector<LintDiagnostic> diagnostics;
  ShardFile file;
};

ShardLoadResult LoadShardFile(const std::string& path);
ShardLoadResult LoadShardBytes(const std::vector<uint8_t>& bytes);

// Recomputes the boundary digests/totals/chains from content — shared by the
// slicer, the loader's validation, and tests that build adversarial fixtures.
uint64_t DigestRids(const std::vector<RequestId>& rids);
uint64_t DigestTraceWindows(const EpochSlices& slices);
uint64_t DigestBalance(const EpochSlices& slices);

}  // namespace karousos

#endif  // SRC_SERVER_SHARD_H_
