#include "src/server/shard.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/analysis/carry_lint.h"
#include "src/server/kseg_codec.h"

namespace karousos {

namespace {

constexpr uint8_t kShardBoundaryFormatVersion = 1;
constexpr uint64_t kDigestSeed = 0x6b736567;  // "kseg"

uint64_t Mix(uint64_t d, uint64_t x) { return HashMix64(d, SplitMix64(x)); }

}  // namespace

const char* ShardModeName(ShardMode mode) {
  switch (mode) {
    case ShardMode::kHash:
      return "hash";
    case ShardMode::kRange:
      return "range";
  }
  return "unknown";
}

std::optional<ShardMode> ParseShardMode(const std::string& name) {
  if (name == "hash") return ShardMode::kHash;
  if (name == "range") return ShardMode::kRange;
  return std::nullopt;
}

std::map<RequestId, uint32_t> AssignShards(const Trace& trace, const Advice& advice,
                                           const ShardSpec& spec) {
  const uint32_t shards = spec.count == 0 ? 1 : spec.count;

  // Group leads: every tagged rid maps with the minimum rid of its tag group,
  // untagged rids lead themselves. Causally related requests (Emit chains)
  // share a tag, so group-atomic assignment keeps every re-execution group in
  // one shard.
  std::map<uint64_t, RequestId> tag_lead;
  for (const auto& [rid, tag] : advice.tags) {
    auto [it, inserted] = tag_lead.emplace(tag, rid);
    if (!inserted && rid < it->second) it->second = rid;
  }
  const auto lead_of = [&](RequestId rid) -> RequestId {
    auto t = advice.tags.find(rid);
    if (t == advice.tags.end()) return rid;
    return tag_lead.find(t->second)->second;
  };

  // Assignment covers every rid the run mentions: trace arrivals plus every
  // advice owner coordinate (mutated advice may name rids outside the trace;
  // they still need a deterministic owner so exactly one shard's lint
  // reports them, as the one-shot lint would once).
  std::set<RequestId> universe;
  for (const TraceEvent& ev : trace.events) universe.insert(ev.rid);
  for (const auto& [rid, tag] : advice.tags) universe.insert(rid);
  for (const auto& [rid, log] : advice.handler_logs) universe.insert(rid);
  for (const auto& [vid, log] : advice.var_logs) {
    for (const auto& [op, entry] : log) universe.insert(op.rid);
  }
  for (const auto& [txn, log] : advice.tx_logs) universe.insert(txn.rid);
  for (const auto& [rid, emitter] : advice.response_emitted_by) universe.insert(rid);
  for (const auto& [key, count] : advice.opcounts) universe.insert(key.first);
  for (const auto& [op, record] : advice.nondet) universe.insert(op.rid);
  for (const TxOpRef& ref : advice.write_order) universe.insert(ref.rid);

  // Range mode: sorted distinct leads split into contiguous, equally-counted
  // chunks — the key-range alternative to the stable request hash.
  std::map<RequestId, uint32_t> lead_shard;
  if (spec.mode == ShardMode::kRange) {
    std::set<RequestId> leads;
    for (RequestId rid : universe) {
      if (rid != 0) leads.insert(lead_of(rid));
    }
    const uint64_t n = leads.size();
    uint64_t i = 0;
    for (RequestId lead : leads) {
      lead_shard[lead] = n == 0 ? 0 : static_cast<uint32_t>((i * shards) / n);
      ++i;
    }
  }

  std::map<RequestId, uint32_t> out;
  for (RequestId rid : universe) {
    const RequestId lead = rid == 0 ? 0 : lead_of(rid);
    if (lead == 0) {
      out[rid] = 0;  // The init pseudo-request (and its group) is shard 0's.
    } else if (spec.mode == ShardMode::kHash) {
      out[rid] = static_cast<uint32_t>(SplitMix64(lead) % shards);
    } else {
      out[rid] = lead_shard[lead];
    }
  }
  return out;
}

uint64_t DigestRids(const std::vector<RequestId>& rids) {
  uint64_t d = kDigestSeed;
  for (RequestId rid : rids) d = Mix(d, rid);
  return Mix(d, rids.size());
}

uint64_t DigestTraceWindows(const EpochSlices& slices) {
  uint64_t d = kDigestSeed;
  ByteWriter payload;
  for (const EpochSegment& seg : slices.segments) {
    payload.Clear();
    SerializeTraceEvents(seg.window, &payload);
    d = Mix(d, (static_cast<uint64_t>(Crc32(payload.bytes())) << 32) | payload.size());
  }
  return Mix(d, slices.segments.size());
}

uint64_t DigestBalance(const EpochSlices& slices) {
  std::map<RequestId, std::pair<uint64_t, uint64_t>> counts;  // rid -> (arrivals, responses)
  for (const EpochSegment& seg : slices.segments) {
    for (const TraceEvent& ev : seg.window) {
      auto& c = counts[ev.rid];
      (ev.kind == TraceEvent::Kind::kRequest ? c.first : c.second) += 1;
    }
  }
  uint64_t d = kDigestSeed;
  for (const auto& [rid, c] : counts) {
    d = Mix(d, rid);
    d = Mix(d, c.first);
    d = Mix(d, c.second);
  }
  return Mix(d, counts.size());
}

void ShardBoundary::Serialize(ByteWriter* out) const {
  out->WriteByte(kShardBoundaryFormatVersion);
  out->WriteVarint(shard);
  out->WriteVarint(count);
  out->WriteByte(static_cast<uint8_t>(mode));
  out->WriteVarint(epoch_requests);
  out->WriteVarint(epochs);
  out->WriteVarint(rids.size());
  for (RequestId rid : rids) out->WriteFixed64(rid);
  out->WriteFixed64(rid_digest);
  out->WriteFixed64(trace_digest);
  out->WriteFixed64(balance_digest);
  out->WriteVarint(write_order_positions.size());
  for (uint64_t pos : write_order_positions) out->WriteVarint(pos);
  out->WriteVarint(write_order_total);
  out->WriteVarint(total_tags);
  out->WriteVarint(total_handler_entries);
  out->WriteVarint(total_var_entries);
  out->WriteVarint(total_tx_ops);
  out->WriteVarint(total_opcount_sum);
  out->WriteVarint(chains.size());
  for (const Chain& c : chains) {
    out->WriteFixed64(c.vid);
    SerializeOpRef(c.head, out);
    SerializeOpRef(c.tail, out);
    out->WriteVarint(c.writes);
  }
  out->WriteVarint(export_tx_refs.size());
  for (const TxOpRef& ref : export_tx_refs) SerializeTxOpRef(ref, out);
  out->WriteVarint(export_var_refs.size());
  for (const auto& [vid, op] : export_var_refs) {
    out->WriteFixed64(vid);
    SerializeOpRef(op, out);
  }
}

std::optional<ShardBoundary> ShardBoundary::Deserialize(ByteReader* in) {
  auto version = in->ReadByte();
  if (!version || *version != kShardBoundaryFormatVersion) return std::nullopt;
  ShardBoundary b;
  auto shard = in->ReadVarint();
  auto count = in->ReadVarint();
  auto mode = in->ReadByte();
  auto epoch_requests = in->ReadVarint();
  auto epochs = in->ReadVarint();
  if (!shard || !count || !mode || !epoch_requests || !epochs) return std::nullopt;
  if (*mode > static_cast<uint8_t>(ShardMode::kRange)) return std::nullopt;
  b.shard = static_cast<uint32_t>(*shard);
  b.count = static_cast<uint32_t>(*count);
  b.mode = static_cast<ShardMode>(*mode);
  b.epoch_requests = *epoch_requests;
  b.epochs = *epochs;
  auto rid_count = in->ReadVarint();
  if (!rid_count || *rid_count > in->remaining() / 8) return std::nullopt;
  b.rids.reserve(*rid_count);
  for (uint64_t i = 0; i < *rid_count; ++i) {
    auto rid = in->ReadFixed64();
    if (!rid) return std::nullopt;
    b.rids.push_back(*rid);
  }
  auto rid_digest = in->ReadFixed64();
  auto trace_digest = in->ReadFixed64();
  auto balance_digest = in->ReadFixed64();
  if (!rid_digest || !trace_digest || !balance_digest) return std::nullopt;
  b.rid_digest = *rid_digest;
  b.trace_digest = *trace_digest;
  b.balance_digest = *balance_digest;
  auto pos_count = in->ReadVarint();
  if (!pos_count || *pos_count > in->remaining()) return std::nullopt;
  b.write_order_positions.reserve(*pos_count);
  for (uint64_t i = 0; i < *pos_count; ++i) {
    auto pos = in->ReadVarint();
    if (!pos) return std::nullopt;
    b.write_order_positions.push_back(*pos);
  }
  auto write_order_total = in->ReadVarint();
  auto total_tags = in->ReadVarint();
  auto total_handler_entries = in->ReadVarint();
  auto total_var_entries = in->ReadVarint();
  auto total_tx_ops = in->ReadVarint();
  auto total_opcount_sum = in->ReadVarint();
  if (!write_order_total || !total_tags || !total_handler_entries || !total_var_entries ||
      !total_tx_ops || !total_opcount_sum) {
    return std::nullopt;
  }
  b.write_order_total = *write_order_total;
  b.total_tags = *total_tags;
  b.total_handler_entries = *total_handler_entries;
  b.total_var_entries = *total_var_entries;
  b.total_tx_ops = *total_tx_ops;
  b.total_opcount_sum = *total_opcount_sum;
  auto chain_count = in->ReadVarint();
  if (!chain_count || *chain_count > in->remaining()) return std::nullopt;
  b.chains.reserve(*chain_count);
  for (uint64_t i = 0; i < *chain_count; ++i) {
    Chain c;
    auto vid = in->ReadFixed64();
    auto head = DeserializeOpRef(in);
    auto tail = DeserializeOpRef(in);
    auto writes = in->ReadVarint();
    if (!vid || !head || !tail || !writes) return std::nullopt;
    c.vid = *vid;
    c.head = *head;
    c.tail = *tail;
    c.writes = *writes;
    b.chains.push_back(c);
  }
  auto tx_ref_count = in->ReadVarint();
  if (!tx_ref_count || *tx_ref_count > in->remaining()) return std::nullopt;
  b.export_tx_refs.reserve(*tx_ref_count);
  for (uint64_t i = 0; i < *tx_ref_count; ++i) {
    auto ref = DeserializeTxOpRef(in);
    if (!ref) return std::nullopt;
    b.export_tx_refs.push_back(*ref);
  }
  auto var_ref_count = in->ReadVarint();
  if (!var_ref_count || *var_ref_count > in->remaining()) return std::nullopt;
  b.export_var_refs.reserve(*var_ref_count);
  for (uint64_t i = 0; i < *var_ref_count; ++i) {
    auto vid = in->ReadFixed64();
    auto op = DeserializeOpRef(in);
    if (!vid || !op) return std::nullopt;
    b.export_var_refs.emplace_back(*vid, *op);
  }
  return b;
}

namespace {

// Recomputes the content-derived boundary fields (totals + write chains) from
// a shard's slices. Used by the slicer to fill them and by the loader to
// validate the manifest against what the file actually carries.
void SummarizeContent(const EpochSlices& slices, ShardBoundary* b) {
  b->total_tags = 0;
  b->total_handler_entries = 0;
  b->total_var_entries = 0;
  b->total_tx_ops = 0;
  b->total_opcount_sum = 0;
  b->chains.clear();
  std::map<VarId, ShardBoundary::Chain> chains;
  for (const EpochSegment& seg : slices.segments) {
    const Advice& a = seg.advice;
    b->total_tags += a.tags.size();
    for (const auto& [rid, log] : a.handler_logs) b->total_handler_entries += log.size();
    for (const auto& [vid, log] : a.var_logs) {
      b->total_var_entries += log.size();
      for (const auto& [op, entry] : log) {
        if (entry.kind != VarLogEntry::Kind::kWrite) continue;
        auto [it, inserted] = chains.emplace(vid, ShardBoundary::Chain{vid, op, op, 1});
        if (!inserted) {
          if (op < it->second.head) it->second.head = op;
          if (it->second.tail < op) it->second.tail = op;
          it->second.writes += 1;
        }
      }
    }
    for (const auto& [txn, log] : a.tx_logs) b->total_tx_ops += log.size();
    for (const auto& [key, count] : a.opcounts) b->total_opcount_sum += count;
  }
  b->chains.reserve(chains.size());
  for (const auto& [vid, c] : chains) b->chains.push_back(c);
}

}  // namespace

std::vector<ShardFile> ShardRun(const Trace& trace, const Advice& advice,
                                uint64_t epoch_requests, const ShardSpec& spec) {
  ShardSpec norm = spec;
  if (norm.count == 0) norm.count = 1;
  const uint32_t shards = norm.count;
  const std::map<RequestId, uint32_t> assignment = AssignShards(trace, advice, norm);
  const auto shard_of = [&](RequestId rid) -> uint32_t {
    auto it = assignment.find(rid);
    return it == assignment.end() ? 0 : it->second;
  };

  // Epoch math, mirroring SliceRunOwned: the trace fixes the epoch count and
  // out-of-trace advice rids clamp into the final epoch.
  std::set<RequestId> trace_rids;
  for (const TraceEvent& ev : trace.events) trace_rids.insert(ev.rid);
  uint64_t max_epoch = 0;
  for (RequestId rid : trace_rids) {
    max_epoch = std::max(max_epoch, EpochOfRid(rid, epoch_requests));
  }
  const auto clamp_epoch = [&](RequestId rid) {
    return std::min(EpochOfRid(rid, epoch_requests), max_epoch);
  };

  // Filter the advice by owning shard. The write order additionally records
  // each kept entry's global position — filtering preserves relative order,
  // so per-shard positions are strictly increasing and the merge re-stitches
  // the total order by position.
  std::vector<Advice> parts(shards);
  std::vector<std::vector<uint64_t>> positions(shards);
  for (const auto& [rid, tag] : advice.tags) {
    Advice& t = parts[shard_of(rid)];
    t.tags.emplace_hint(t.tags.end(), rid, tag);
  }
  for (const auto& [rid, log] : advice.handler_logs) {
    Advice& t = parts[shard_of(rid)];
    t.handler_logs.emplace_hint(t.handler_logs.end(), rid, log);
  }
  for (const auto& [vid, log] : advice.var_logs) {
    for (const auto& [op, entry] : log) {
      VarLog& target = parts[shard_of(op.rid)].var_logs[vid];
      target.emplace_hint(target.end(), op, entry);
    }
  }
  for (const auto& [txn, log] : advice.tx_logs) {
    Advice& t = parts[shard_of(txn.rid)];
    t.tx_logs.emplace_hint(t.tx_logs.end(), txn, log);
  }
  for (const auto& [rid, emitter] : advice.response_emitted_by) {
    Advice& t = parts[shard_of(rid)];
    t.response_emitted_by.emplace_hint(t.response_emitted_by.end(), rid, emitter);
  }
  for (const auto& [key, count] : advice.opcounts) {
    Advice& t = parts[shard_of(key.first)];
    t.opcounts.emplace_hint(t.opcounts.end(), key, count);
  }
  for (const auto& [op, record] : advice.nondet) {
    Advice& t = parts[shard_of(op.rid)];
    t.nondet.emplace_hint(t.nondet.end(), op, record);
  }
  for (size_t pos = 0; pos < advice.write_order.size(); ++pos) {
    const uint32_t s = shard_of(advice.write_order[pos].rid);
    parts[s].write_order.push_back(advice.write_order[pos]);
    positions[s].push_back(pos);
  }

  // Shard-aware continuity imports, one pass over the full advice: a
  // reference needs an allegation when its target is in a later epoch (the
  // epoch rule) OR owned by another shard (never locally confirmable). The
  // imports are recomputed against the *full* advice — the filtered copies
  // would misdescribe out-of-shard targets as absent — and deduplicated in
  // sorted order, like the epoch slicer, so shard files are deterministic
  // byte-for-byte. The same pass records the reverse index: every cross-shard
  // target charges its owning shard with an export obligation, so the merge
  // can confirm the allegation against the owner's real content.
  const size_t epochs_total = static_cast<size_t>(max_epoch) + 1;
  std::vector<std::vector<std::map<TxOpRef, ContinuityImports::TxOpImport>>> tx_imports(
      shards, std::vector<std::map<TxOpRef, ContinuityImports::TxOpImport>>(epochs_total));
  std::vector<std::vector<std::map<std::pair<VarId, OpRef>, ContinuityImports::VarImport>>>
      var_imports(shards,
                  std::vector<std::map<std::pair<VarId, OpRef>, ContinuityImports::VarImport>>(
                      epochs_total));
  std::vector<std::set<TxOpRef>> tx_obligations(shards);
  std::vector<std::set<std::pair<VarId, OpRef>>> var_obligations(shards);
  for (const auto& [txn, log] : advice.tx_logs) {
    const uint32_t s = shard_of(txn.rid);
    const size_t e = static_cast<size_t>(clamp_epoch(txn.rid));
    for (const TxOperation& op : log) {
      if (op.type != TxOpType::kGet || op.get_from.IsNil()) continue;
      const uint32_t owner = shard_of(op.get_from.rid);
      if (clamp_epoch(op.get_from.rid) <= e && owner == s) continue;
      tx_imports[s][e].emplace(op.get_from, DescribeTxOp(advice, op.get_from));
      if (owner != s) tx_obligations[owner].insert(op.get_from);
    }
  }
  for (const auto& [vid, log] : advice.var_logs) {
    for (const auto& [op, entry] : log) {
      if (entry.prec.IsNil()) continue;
      const uint32_t s = shard_of(op.rid);
      const size_t e = static_cast<size_t>(clamp_epoch(op.rid));
      const uint32_t owner = shard_of(entry.prec.rid);
      if (clamp_epoch(entry.prec.rid) <= e && owner == s) continue;
      var_imports[s][e].emplace(std::make_pair(vid, entry.prec),
                                DescribeVarEntry(advice, vid, entry.prec));
      if (owner != s) var_obligations[owner].insert({vid, entry.prec});
    }
  }

  std::vector<ShardFile> out(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    ShardFile& sf = out[s];
    // The epoch slicer does the window cuts and per-epoch advice slicing.
    sf.slices = SliceRunOwned(trace, std::move(parts[s]), epoch_requests);
    const size_t epochs = sf.slices.segments.size();
    for (size_t e = 0; e < epochs && e < epochs_total; ++e) {
      EpochSegment& seg = sf.slices.segments[e];
      seg.imports = ContinuityImports{};
      for (auto& [ref, imp] : tx_imports[s][e]) seg.imports.tx_ops.push_back(std::move(imp));
      for (auto& [key, imp] : var_imports[s][e]) {
        seg.imports.var_entries.push_back(std::move(imp));
      }
    }

    ShardBoundary& b = sf.boundary;
    b.shard = s;
    b.count = shards;
    b.mode = norm.mode;
    b.epoch_requests = epoch_requests;
    b.epochs = epochs;
    for (RequestId rid : trace_rids) {
      if (shard_of(rid) == s) b.rids.push_back(rid);
    }
    b.rid_digest = DigestRids(b.rids);
    b.trace_digest = DigestTraceWindows(sf.slices);
    b.balance_digest = DigestBalance(sf.slices);
    b.write_order_positions = std::move(positions[s]);
    b.write_order_total = advice.write_order.size();
    b.export_tx_refs.assign(tx_obligations[s].begin(), tx_obligations[s].end());
    b.export_var_refs.assign(var_obligations[s].begin(), var_obligations[s].end());
    SummarizeContent(sf.slices, &b);
  }
  return out;
}

std::vector<uint8_t> EncodeShardFile(const ShardFile& shard) {
  SegmentWriter writer;
  ByteWriter payload;
  shard.boundary.Serialize(&payload);
  writer.Append(SegmentKind::kShardBoundary, shard.boundary.shard, payload.bytes());
  for (const EpochSegment& seg : shard.slices.segments) {
    payload.Clear();
    SerializeTraceEvents(seg.window, &payload);
    writer.Append(SegmentKind::kTrace, seg.epoch, payload.bytes());
    payload.Clear();
    seg.advice.Serialize(&payload);
    seg.imports.Serialize(&payload);
    writer.Append(SegmentKind::kAdvice, seg.epoch, payload.bytes());
  }
  return writer.Take();
}

namespace {

// Per-frame storage-class encode, mirroring rollover.cc's: compact transcode
// when lanes/dict are on, then a block attempt that keeps whichever form is
// smaller (flags always describe the stored bytes).
template <typename EncodeBody>
void AppendCompressedFrame(SegmentWriter* writer, SegmentKind kind, uint64_t epoch,
                           const KsegCompression& c, ByteWriter* payload,
                           EncodeBody&& encode_body) {
  payload->Clear();
  encode_body(payload);
  uint8_t flags = static_cast<uint8_t>(c.Flags() & ~kFrameFlagBlock);
  if (c.block) {
    std::vector<uint8_t> blocked = BlockFrameEncode(payload->bytes());
    if (blocked.size() < payload->size()) {
      writer->Append(kind, epoch, static_cast<uint8_t>(flags | kFrameFlagBlock), blocked);
      return;
    }
  }
  writer->Append(kind, epoch, flags, payload->bytes());
}

}  // namespace

std::vector<uint8_t> EncodeShardFile(const ShardFile& shard, const KsegCompression& c) {
  if (!c.any()) return EncodeShardFile(shard);
  SegmentWriter writer(kSegmentFormatVersionV2);
  ByteWriter payload;
  shard.boundary.Serialize(&payload);
  // The boundary frame stays raw: the merge reads manifests before anything
  // else and must not depend on payload codecs.
  writer.Append(SegmentKind::kShardBoundary, shard.boundary.shard, /*flags=*/0, payload.bytes());
  for (const EpochSegment& seg : shard.slices.segments) {
    AppendCompressedFrame(&writer, SegmentKind::kTrace, seg.epoch, c, &payload,
                          [&](ByteWriter* out) {
                            if (c.lanes || c.dict) {
                              EncodeCompactTracePayload(seg.window, c, out);
                            } else {
                              SerializeTraceEvents(seg.window, out);
                            }
                          });
    AppendCompressedFrame(&writer, SegmentKind::kAdvice, seg.epoch, c, &payload,
                          [&](ByteWriter* out) {
                            if (c.lanes || c.dict) {
                              EncodeCompactAdvicePayload(seg.advice, seg.imports, c, out);
                            } else {
                              seg.advice.Serialize(out);
                              seg.imports.Serialize(out);
                            }
                          });
  }
  return writer.Take();
}

namespace {

// Loader core. Walks the single-file layout (boundary, then one trace +
// advice frame pair per epoch), decodes every payload, then validates the
// boundary manifest against the decoded content.
class ShardFileLoader {
 public:
  ShardLoadResult Load(std::unique_ptr<SegmentReader> reader, const std::string& open_error) {
    ShardLoadResult out;
    const auto fail = [&out](const char* rule, std::string location,
                             std::string message) -> ShardLoadResult& {
      Fail(&out, rule, std::move(location), std::move(message));
      return out;
    };
    if (reader == nullptr) {
      return fail(kKarSeg001, "shard", "unreadable segment container: " + open_error);
    }

    SegmentRecord rec;
    bool have = reader->Next(&rec);
    if (!have) {
      if (!reader->ok()) {
        return fail(kKarSeg001, "shard", "unreadable segment container: " + reader->error());
      }
      return fail(kKarSeg011, "shard", "shard file has no boundary frame");
    }
    if (rec.kind != SegmentKind::kShardBoundary) {
      return fail(kKarSeg011, FrameLoc(rec),
                  std::string("shard file must open with a shard-boundary frame, found ") +
                      SegmentKindName(rec.kind));
    }
    if (rec.flags != 0) {
      return fail(kKarSeg011, FrameLoc(rec), "shard-boundary frame must be raw (flags 0)");
    }
    {
      ByteReader in(rec.payload);
      auto boundary = ShardBoundary::Deserialize(&in);
      if (!boundary || !in.AtEnd()) {
        return fail(kKarSeg011, FrameLoc(rec), "shard-boundary payload is malformed");
      }
      out.file.boundary = std::move(*boundary);
    }
    const ShardBoundary& b = out.file.boundary;
    out.file.slices.epoch_requests = b.epoch_requests;

    // Epoch frame pairs.
    uint64_t next_epoch = 0;
    while (true) {
      have = reader->Next(&rec);
      if (!have) {
        if (!reader->ok()) {
          return fail(kKarSeg001, "shard",
                      "unreadable segment container: " + reader->error());
        }
        break;
      }
      if (rec.kind != SegmentKind::kTrace) {
        return fail(kKarSeg002, FrameLoc(rec),
                    std::string("unexpected ") + SegmentKindName(rec.kind) +
                        " frame where an epoch's trace frame belongs");
      }
      if (rec.epoch != next_epoch) {
        return fail(kKarSeg003, FrameLoc(rec), SequencingMessage(rec.epoch, next_epoch));
      }
      auto window = DecodeTraceSegmentPayload(rec.payload, rec.flags);
      if (!window) {
        return fail(kKarSeg002, FrameLoc(rec),
                    "trace segment payload for epoch " + std::to_string(rec.epoch) +
                        " is malformed");
      }
      have = reader->Next(&rec);
      if (!have) {
        if (!reader->ok()) {
          return fail(kKarSeg001, "shard",
                      "unreadable segment container: " + reader->error());
        }
        return fail(kKarSeg011, "shard",
                    "epoch " + std::to_string(next_epoch) +
                        " has a trace frame but no advice frame");
      }
      if (rec.kind != SegmentKind::kAdvice) {
        return fail(kKarSeg002, FrameLoc(rec),
                    std::string("unexpected ") + SegmentKindName(rec.kind) +
                        " frame where an epoch's advice frame belongs");
      }
      if (rec.epoch != next_epoch) {
        return fail(kKarSeg003, FrameLoc(rec), SequencingMessage(rec.epoch, next_epoch));
      }
      auto advice_payload = DecodeAdviceSegmentPayload(rec.payload, rec.flags);
      if (!advice_payload) {
        return fail(kKarSeg002, FrameLoc(rec),
                    "advice segment payload for epoch " + std::to_string(rec.epoch) +
                        " is malformed");
      }
      EpochSegment seg;
      seg.epoch = next_epoch;
      seg.window = std::move(*window);
      seg.advice = std::move(advice_payload->advice);
      seg.imports = std::move(advice_payload->imports);
      out.file.slices.segments.push_back(std::move(seg));
      ++next_epoch;
    }

    if (!ValidateBoundary(&out)) return out;
    out.ok = true;
    return out;
  }

 private:
  static std::string FrameLoc(const SegmentRecord& rec) {
    return "shard[offset " + std::to_string(rec.offset) + "]";
  }

  static std::string SequencingMessage(uint64_t got, uint64_t expected) {
    if (got < expected) {
      return "duplicate or out-of-order frame for epoch " + std::to_string(got) +
             " (expected epoch " + std::to_string(expected) + ")";
    }
    return "epoch gap: frame for epoch " + std::to_string(got) + " (expected epoch " +
           std::to_string(expected) + ")";
  }

  static void Fail(ShardLoadResult* out, const char* rule, std::string location,
                   std::string message) {
    LintDiagnostic d{rule, LintSeverity::kError, std::move(location), std::move(message)};
    out->ok = false;
    out->rule = rule;
    out->reason = "segment stream: " + d.Format();
    out->diagnostics.push_back(std::move(d));
  }

  // Boundary-vs-content validation (KAR-SEG-011). Every allegation in the
  // manifest must match what the file actually carries; a clean shard file's
  // boundary is therefore trustworthy input for the merge's cross-shard
  // checks.
  static bool ValidateBoundary(ShardLoadResult* out) {
    const ShardBoundary& b = out->file.boundary;
    const EpochSlices& slices = out->file.slices;
    const auto fail = [&](std::string message) {
      Fail(out, kKarSeg011, "boundary[shard " + std::to_string(b.shard) + "]",
           std::move(message));
      return false;
    };
    if (b.count == 0) return fail("shard count is zero");
    if (b.shard >= b.count) {
      return fail("shard index " + std::to_string(b.shard) + " out of range for count " +
                  std::to_string(b.count));
    }
    if (b.epochs != slices.segments.size()) {
      return fail("boundary declares " + std::to_string(b.epochs) + " epochs but the file has " +
                  std::to_string(slices.segments.size()));
    }
    for (size_t i = 1; i < b.rids.size(); ++i) {
      if (b.rids[i] <= b.rids[i - 1]) {
        return fail("covered rid list is not strictly ascending at index " + std::to_string(i));
      }
    }
    if (b.rid_digest != DigestRids(b.rids)) return fail("covered rid-set digest mismatch");
    if (b.trace_digest != DigestTraceWindows(slices)) {
      return fail("replicated-trace digest mismatch");
    }
    if (b.balance_digest != DigestBalance(slices)) return fail("balance digest mismatch");

    // The rid list must name exactly the trace rids this shard's advice can
    // own: a subset of the replicated trace, covering every in-trace advice
    // owner in the file.
    std::set<RequestId> trace_rids;
    for (const EpochSegment& seg : slices.segments) {
      for (const TraceEvent& ev : seg.window) trace_rids.insert(ev.rid);
    }
    std::set<RequestId> covered(b.rids.begin(), b.rids.end());
    for (RequestId rid : b.rids) {
      if (trace_rids.count(rid) == 0) {
        return fail("covered rid " + std::to_string(rid) + " does not appear in the trace");
      }
    }
    size_t write_order_entries = 0;
    for (const EpochSegment& seg : slices.segments) {
      const Advice& a = seg.advice;
      const auto owned = [&](RequestId rid) {
        return rid == 0 || trace_rids.count(rid) == 0 || covered.count(rid) != 0;
      };
      for (const auto& [rid, tag] : a.tags) {
        if (!owned(rid)) {
          return fail("advice content for rid " + std::to_string(rid) +
                      " is not in the covered rid set");
        }
      }
      for (const auto& [rid, log] : a.handler_logs) {
        if (!owned(rid)) {
          return fail("advice content for rid " + std::to_string(rid) +
                      " is not in the covered rid set");
        }
      }
      for (const auto& [vid, log] : a.var_logs) {
        for (const auto& [op, entry] : log) {
          if (!owned(op.rid)) {
            return fail("advice content for rid " + std::to_string(op.rid) +
                        " is not in the covered rid set");
          }
        }
      }
      for (const auto& [txn, log] : a.tx_logs) {
        if (!owned(txn.rid)) {
          return fail("advice content for rid " + std::to_string(txn.rid) +
                      " is not in the covered rid set");
        }
      }
      write_order_entries += a.write_order.size();
    }

    if (b.write_order_positions.size() != write_order_entries) {
      return fail("boundary records " + std::to_string(b.write_order_positions.size()) +
                  " write-order positions but the file carries " +
                  std::to_string(write_order_entries) + " entries");
    }
    for (size_t i = 0; i < b.write_order_positions.size(); ++i) {
      if (b.write_order_positions[i] >= b.write_order_total) {
        return fail("write-order position " + std::to_string(b.write_order_positions[i]) +
                    " exceeds the alleged total " + std::to_string(b.write_order_total));
      }
      if (i > 0 && b.write_order_positions[i] <= b.write_order_positions[i - 1]) {
        return fail("write-order positions are not strictly increasing at index " +
                    std::to_string(i));
      }
    }

    ShardBoundary recomputed;
    SummarizeContent(slices, &recomputed);
    if (b.total_tags != recomputed.total_tags ||
        b.total_handler_entries != recomputed.total_handler_entries ||
        b.total_var_entries != recomputed.total_var_entries ||
        b.total_tx_ops != recomputed.total_tx_ops ||
        b.total_opcount_sum != recomputed.total_opcount_sum) {
      return fail("advice totals disagree with the file's content");
    }
    if (b.chains.size() != recomputed.chains.size()) {
      return fail("write-chain manifest disagrees with the file's content");
    }
    for (size_t i = 0; i < b.chains.size(); ++i) {
      const ShardBoundary::Chain& got = b.chains[i];
      const ShardBoundary::Chain& want = recomputed.chains[i];
      if (got.vid != want.vid || got.head != want.head || got.tail != want.tail ||
          got.writes != want.writes) {
        return fail("write-chain manifest disagrees with the file's content");
      }
    }

    // Export obligations must be canonical (sorted, unique) and name
    // coordinates this shard can actually describe — requests it owns. What
    // the content at each obligation really is stays the audit's business.
    const auto obligation_owned = [&](RequestId rid) {
      return rid == 0 || trace_rids.count(rid) == 0 || covered.count(rid) != 0;
    };
    for (size_t i = 0; i < b.export_tx_refs.size(); ++i) {
      if (i > 0 && !(b.export_tx_refs[i - 1] < b.export_tx_refs[i])) {
        return fail("export obligations are not strictly ascending at index " +
                    std::to_string(i));
      }
      if (!obligation_owned(b.export_tx_refs[i].rid)) {
        return fail("export obligation " + b.export_tx_refs[i].ToString() +
                    " is not owned by this shard");
      }
    }
    for (size_t i = 0; i < b.export_var_refs.size(); ++i) {
      if (i > 0 && !(b.export_var_refs[i - 1] < b.export_var_refs[i])) {
        return fail("export obligations are not strictly ascending at index " +
                    std::to_string(i));
      }
      if (!obligation_owned(b.export_var_refs[i].second.rid)) {
        return fail("export obligation " + b.export_var_refs[i].second.ToString() +
                    " is not owned by this shard");
      }
    }
    return true;
  }
};

}  // namespace

ShardLoadResult LoadShardFile(const std::string& path) {
  std::string error;
  auto reader = SegmentReader::OpenFile(path, &error);
  return ShardFileLoader().Load(std::move(reader), error);
}

ShardLoadResult LoadShardBytes(const std::vector<uint8_t>& bytes) {
  std::string error;
  auto reader = SegmentReader::FromBytes(bytes.data(), bytes.size(), &error);
  return ShardFileLoader().Load(std::move(reader), error);
}

}  // namespace karousos
