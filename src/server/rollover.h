// Collector-side epoch rollover: slices one run's trace and advice into
// epoch segments so the collector can ship them incrementally and the
// verifier's AuditSession can consume them one epoch at a time.
//
// Epoch assignment is by request id: rid r belongs to epoch (r-1)/N for
// ServerConfig::epoch_requests == N. The three slicing axes:
//   * trace   — chronological windows. Window e extends the event stream to
//     the earliest point where every request of epochs <= e has both arrived
//     and responded (concurrency lets later-epoch events appear inside
//     earlier windows; that is fine — the verifier ingests windows as a
//     single continuous stream).
//   * advice  — by the owning request id (tags, handler logs, var logs, tx
//     logs, opcounts, responseEmittedBy, nondet), except the write order,
//     which is cut positionally so the chunks concatenate to exactly the
//     alleged global order.
//   * continuity imports — for every reference that points *forward* across
//     an epoch boundary (a GET's dictating PUT in a later epoch, a var-log
//     prec in a later epoch), the slice carries what the collector alleges
//     lives at the referenced coordinates. The verifier uses the allegation
//     immediately and confirms it against the real slice when that epoch
//     arrives: a wrong continuity record can only cause rejection.
//
// The same slicer runs server-side (emitting segment files) and
// verifier-side (re-slicing monolithic inputs for `audit --epoch-size N`),
// so both paths produce byte-identical segments.
#ifndef SRC_SERVER_ROLLOVER_H_
#define SRC_SERVER_ROLLOVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/kcodec.h"
#include "src/common/segment.h"
#include "src/server/advice.h"
#include "src/trace/trace.h"

namespace karousos {

// Epoch of a request id (init/reserved rid 0 maps to epoch 0).
uint64_t EpochOfRid(RequestId rid, uint64_t epoch_requests);

// What the collector alleges lives at out-of-epoch coordinates that this
// epoch's slice references. Allegations mirror whatever the full advice
// holds — including its defects — so that epoch-sliced validation reaches
// the same verdict as one-shot validation.
struct ContinuityImports {
  struct TxOpImport {
    TxOpRef ref;
    bool txn_present = false;  // The referenced transaction exists at all.
    bool op_present = false;   // ... and ref.index is within its log.
    uint8_t type = 0;          // TxOpType of the referenced op (when present).
    std::string key;           // PUT/GET key (when present).
    Value value;               // PUT value (when present and a PUT).
    HandlerId hid = 0;         // Issuing handler op (when present).
    OpNum opnum = 0;
  };
  struct VarImport {
    VarId vid = 0;
    OpRef op;
    bool present = false;  // The referenced entry exists in vid's log.
    uint8_t kind = 0;      // VarLogEntry::Kind (when present).
    Value value;           // Entry value (when present).
  };

  std::vector<TxOpImport> tx_ops;
  std::vector<VarImport> var_entries;

  bool empty() const { return tx_ops.empty() && var_entries.empty(); }

  void Serialize(ByteWriter* out) const;
  static std::optional<ContinuityImports> Deserialize(ByteReader* in);
};

// Looks up what the full advice alleges at an out-of-slice transaction-log /
// var-log coordinate. Allegations mirror defects faithfully (absent txn,
// out-of-range index, missing entry) so sliced validation reaches the same
// verdict as one-shot validation. Shared by the epoch slicer below and the
// shard slicer (src/server/shard.h).
ContinuityImports::TxOpImport DescribeTxOp(const Advice& advice, const TxOpRef& ref);
ContinuityImports::VarImport DescribeVarEntry(const Advice& advice, VarId vid, const OpRef& op);

// One epoch's audit input: the trace window, the advice slice, and the
// continuity imports for the slice's forward references.
struct EpochSegment {
  uint64_t epoch = 0;
  std::vector<TraceEvent> window;
  Advice advice;
  ContinuityImports imports;
};

struct EpochSlices {
  uint64_t epoch_requests = 0;
  std::vector<EpochSegment> segments;  // One per epoch, in epoch order.
};

// Slices a complete run. epoch_requests == 0 means one epoch holding
// everything. Advice content whose rid falls beyond the last trace epoch is
// clamped into the final slice (where the lint's not-in-trace rule reports
// it, exactly as the one-shot audit would).
EpochSlices SliceRun(const Trace& trace, const Advice& advice, uint64_t epoch_requests);

// Move-based slicer for the collector's own emission path: consumes the
// advice instead of copying every log and value into the slices (continuity
// imports are computed from the full advice before any content moves).
// Produces slices byte-identical to SliceRun's for the same inputs.
EpochSlices SliceRunOwned(const Trace& trace, Advice&& advice, uint64_t epoch_requests);

// Rebuilds the monolithic advice from a run's slices, consuming them. For
// slices produced by SliceRun/SliceRunOwned this is an exact inverse: epochs
// partition the key space in ascending rid ranges, so concatenating the
// per-epoch maps in epoch order restores every component's key order.
Advice MergeSlices(EpochSlices&& slices);

// Segment-container encode/decode. Trace and advice travel as two segment
// streams (one kTrace frame per epoch; one kAdvice frame per epoch whose
// payload is the advice slice followed by the imports).
std::vector<uint8_t> EncodeTraceSegments(const EpochSlices& slices);
std::vector<uint8_t> EncodeAdviceSegments(const EpochSlices& slices);

// Storage-class variants: apply the requested codec stages per frame and
// record them in the v2 frame flags. With no stages requested these forward
// to the raw (v1, byte-identical) encoders above. The block stage is dropped
// per-frame when it does not shrink the payload, so a frame's flags always
// name exactly the transforms its bytes carry.
std::vector<uint8_t> EncodeTraceSegments(const EpochSlices& slices, const KsegCompression& c);
std::vector<uint8_t> EncodeAdviceSegments(const EpochSlices& slices, const KsegCompression& c);

// Decodes one frame payload. Returns nullopt on malformed payloads (the
// caller turns that into a clean rejection).
std::optional<std::vector<TraceEvent>> DecodeTraceSegmentPayload(const std::vector<uint8_t>& payload);
struct AdviceSegmentPayload {
  Advice advice;
  ContinuityImports imports;
};
std::optional<AdviceSegmentPayload> DecodeAdviceSegmentPayload(const std::vector<uint8_t>& payload);

// Flag-aware variants: undo the stages named in the frame's flags byte
// (block first, then the grammar-aware lanes/dict transcoder). flags == 0 is
// exactly the raw decode. Unknown flag bits reject (the segment reader
// already screens them, but the payload decoders never trust their input).
std::optional<std::vector<TraceEvent>> DecodeTraceSegmentPayload(
    const std::vector<uint8_t>& payload, uint8_t flags);
std::optional<AdviceSegmentPayload> DecodeAdviceSegmentPayload(
    const std::vector<uint8_t>& payload, uint8_t flags);

}  // namespace karousos

#endif  // SRC_SERVER_ROLLOVER_H_
