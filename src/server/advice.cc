#include "src/server/advice.h"

namespace karousos {

void SerializeOpRef(const OpRef& op, ByteWriter* out) {
  out->WriteVarint(op.rid);
  out->WriteFixed64(op.hid);
  out->WriteVarint(op.opnum);
}

std::optional<OpRef> DeserializeOpRef(ByteReader* in) {
  auto rid = in->ReadVarint();
  auto hid = in->ReadFixed64();
  auto opnum = in->ReadVarint();
  if (!rid || !hid || !opnum || *opnum > kOpNumInf) {
    return std::nullopt;
  }
  return OpRef{*rid, *hid, static_cast<OpNum>(*opnum)};
}

void SerializeTxOpRef(const TxOpRef& op, ByteWriter* out) {
  out->WriteVarint(op.rid);
  out->WriteFixed64(op.tid);
  out->WriteVarint(op.index);
}

std::optional<TxOpRef> DeserializeTxOpRef(ByteReader* in) {
  auto rid = in->ReadVarint();
  auto tid = in->ReadFixed64();
  auto index = in->ReadVarint();
  if (!rid || !tid || !index) {
    return std::nullopt;
  }
  return TxOpRef{*rid, *tid, static_cast<uint32_t>(*index)};
}

namespace {

void SerializeTags(const std::map<RequestId, uint64_t>& tags, ByteWriter* out) {
  out->WriteVarint(tags.size());
  for (const auto& [rid, tag] : tags) {
    out->WriteVarint(rid);
    out->WriteFixed64(tag);
  }
}

void SerializeHandlerLogs(const std::map<RequestId, std::vector<HandlerLogEntry>>& logs,
                          ByteWriter* out) {
  out->WriteVarint(logs.size());
  for (const auto& [rid, log] : logs) {
    out->WriteVarint(rid);
    out->WriteVarint(log.size());
    for (const HandlerLogEntry& e : log) {
      out->WriteByte(static_cast<uint8_t>(e.kind));
      out->WriteFixed64(e.hid);
      out->WriteVarint(e.opnum);
      out->WriteFixed64(e.event);
      if (e.kind != HandlerLogEntry::Kind::kEmit) {
        out->WriteFixed64(e.function);
      }
    }
  }
}

void SerializeVarLogs(const std::map<VarId, VarLog>& logs, ByteWriter* out) {
  out->WriteVarint(logs.size());
  for (const auto& [vid, log] : logs) {
    out->WriteFixed64(vid);
    out->WriteVarint(log.size());
    for (const auto& [op, entry] : log) {
      SerializeOpRef(op, out);
      out->WriteByte(static_cast<uint8_t>(entry.kind));
      if (entry.kind == VarLogEntry::Kind::kWrite) {
        out->WriteValue(entry.value);
      }
      SerializeOpRef(entry.prec, out);
    }
  }
}

void SerializeTxLogs(const TransactionLogs& logs, ByteWriter* out) {
  out->WriteVarint(logs.size());
  for (const auto& [txn, log] : logs) {
    out->WriteVarint(txn.rid);
    out->WriteFixed64(txn.tid);
    out->WriteVarint(log.size());
    for (const TxOperation& op : log) {
      out->WriteByte(static_cast<uint8_t>(op.type));
      out->WriteFixed64(op.hid);
      out->WriteVarint(op.opnum);
      if (op.type == TxOpType::kPut) {
        out->WriteString(op.key);
        out->WriteValue(op.put_value);
      } else if (op.type == TxOpType::kGet) {
        out->WriteString(op.key);
        out->WriteBool(op.get_found);
        if (op.get_found) {
          SerializeTxOpRef(op.get_from, out);
        }
      }
    }
  }
}

// Single serialization pass shared by Serialize and MeasureSize: the
// component boundaries are noted as writer offsets while encoding, so
// measuring the breakdown no longer costs a second (or sixth) full encode.
void SerializeWithBreakdown(const Advice& a, ByteWriter* out, Advice::SizeBreakdown* breakdown) {
  const size_t start = out->size();
  SerializeTags(a.tags, out);
  const size_t after_tags = out->size();
  SerializeHandlerLogs(a.handler_logs, out);
  const size_t after_hls = out->size();
  SerializeVarLogs(a.var_logs, out);
  const size_t after_vls = out->size();
  SerializeTxLogs(a.tx_logs, out);
  const size_t after_txls = out->size();
  out->WriteVarint(a.write_order.size());
  for (const TxOpRef& w : a.write_order) {
    SerializeTxOpRef(w, out);
  }
  const size_t after_wo = out->size();
  out->WriteVarint(a.response_emitted_by.size());
  for (const auto& [rid, by] : a.response_emitted_by) {
    out->WriteVarint(rid);
    out->WriteFixed64(by.first);
    out->WriteVarint(by.second);
  }
  out->WriteVarint(a.opcounts.size());
  for (const auto& [key, count] : a.opcounts) {
    out->WriteVarint(key.first);
    out->WriteFixed64(key.second);
    out->WriteVarint(count);
  }
  out->WriteVarint(a.nondet.size());
  for (const auto& [op, record] : a.nondet) {
    SerializeOpRef(op, out);
    out->WriteByte(static_cast<uint8_t>(record.kind));
    if (record.kind == NondetRecord::Kind::kValue) {
      out->WriteValue(record.value);
    }
  }
  if (breakdown != nullptr) {
    breakdown->tags = after_tags - start;
    breakdown->handler_logs = after_hls - after_tags;
    breakdown->var_logs = after_vls - after_hls;
    breakdown->tx_logs = after_txls - after_vls;
    breakdown->write_order = after_wo - after_txls;
    breakdown->other = out->size() - after_wo;
    breakdown->total = out->size() - start;
  }
}

}  // namespace

void Advice::Serialize(ByteWriter* out) const {
  SerializeWithBreakdown(*this, out, nullptr);
}

std::optional<Advice> Advice::Deserialize(ByteReader* in) {
  Advice a;
  auto n_tags = in->ReadVarint();
  if (!n_tags) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < *n_tags; ++i) {
    auto rid = in->ReadVarint();
    auto tag = in->ReadFixed64();
    if (!rid || !tag) {
      return std::nullopt;
    }
    a.tags[*rid] = *tag;
  }
  auto n_hls = in->ReadVarint();
  if (!n_hls) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < *n_hls; ++i) {
    auto rid = in->ReadVarint();
    auto n = in->ReadVarint();
    if (!rid || !n || *n > in->remaining()) {
      return std::nullopt;
    }
    std::vector<HandlerLogEntry> log;
    log.reserve(*n);
    for (uint64_t j = 0; j < *n; ++j) {
      HandlerLogEntry e;
      auto kind = in->ReadByte();
      auto hid = in->ReadFixed64();
      auto opnum = in->ReadVarint();
      auto event = in->ReadFixed64();
      if (!kind || *kind > 2 || !hid || !opnum || !event) {
        return std::nullopt;
      }
      e.kind = static_cast<HandlerLogEntry::Kind>(*kind);
      e.hid = *hid;
      e.opnum = static_cast<OpNum>(*opnum);
      e.event = *event;
      if (e.kind != HandlerLogEntry::Kind::kEmit) {
        auto function = in->ReadFixed64();
        if (!function) {
          return std::nullopt;
        }
        e.function = *function;
      }
      log.push_back(e);
    }
    a.handler_logs[*rid] = std::move(log);
  }
  auto n_vls = in->ReadVarint();
  if (!n_vls) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < *n_vls; ++i) {
    auto vid = in->ReadFixed64();
    auto n = in->ReadVarint();
    if (!vid || !n || *n > in->remaining()) {
      return std::nullopt;
    }
    VarLog log;
    for (uint64_t j = 0; j < *n; ++j) {
      auto op = DeserializeOpRef(in);
      auto kind = in->ReadByte();
      if (!op || !kind || *kind > 1) {
        return std::nullopt;
      }
      VarLogEntry entry;
      entry.kind = static_cast<VarLogEntry::Kind>(*kind);
      if (entry.kind == VarLogEntry::Kind::kWrite) {
        auto value = in->ReadValue();
        if (!value) {
          return std::nullopt;
        }
        entry.value = std::move(*value);
      }
      auto prec = DeserializeOpRef(in);
      if (!prec) {
        return std::nullopt;
      }
      entry.prec = *prec;
      // Honest advice arrives key-sorted (serialized from a std::map), so the
      // end hint makes each insert amortized O(1); duplicate keys still keep
      // the first occurrence, exactly as plain emplace does.
      log.emplace_hint(log.end(), *op, std::move(entry));
    }
    a.var_logs[*vid] = std::move(log);
  }
  auto n_txls = in->ReadVarint();
  if (!n_txls) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < *n_txls; ++i) {
    auto rid = in->ReadVarint();
    auto tid = in->ReadFixed64();
    auto n = in->ReadVarint();
    if (!rid || !tid || !n || *n > in->remaining()) {
      return std::nullopt;
    }
    TransactionLog log;
    log.reserve(*n);
    for (uint64_t j = 0; j < *n; ++j) {
      TxOperation op;
      auto type = in->ReadByte();
      auto hid = in->ReadFixed64();
      auto opnum = in->ReadVarint();
      if (!type || *type > static_cast<uint8_t>(TxOpType::kGet) || !hid || !opnum) {
        return std::nullopt;
      }
      op.type = static_cast<TxOpType>(*type);
      op.hid = *hid;
      op.opnum = static_cast<OpNum>(*opnum);
      if (op.type == TxOpType::kPut) {
        auto key = in->ReadString();
        auto value = in->ReadValue();
        if (!key || !value) {
          return std::nullopt;
        }
        op.key = std::move(*key);
        op.put_value = std::move(*value);
      } else if (op.type == TxOpType::kGet) {
        auto key = in->ReadString();
        auto found = in->ReadBool();
        if (!key || !found) {
          return std::nullopt;
        }
        op.key = std::move(*key);
        op.get_found = *found;
        if (op.get_found) {
          auto from = DeserializeTxOpRef(in);
          if (!from) {
            return std::nullopt;
          }
          op.get_from = *from;
        }
      }
      log.push_back(std::move(op));
    }
    a.tx_logs[TxnKey{*rid, *tid}] = std::move(log);
  }
  auto n_wo = in->ReadVarint();
  if (!n_wo || *n_wo > in->remaining()) {
    return std::nullopt;
  }
  a.write_order.reserve(*n_wo);
  for (uint64_t i = 0; i < *n_wo; ++i) {
    auto w = DeserializeTxOpRef(in);
    if (!w) {
      return std::nullopt;
    }
    a.write_order.push_back(*w);
  }
  auto n_reb = in->ReadVarint();
  if (!n_reb) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < *n_reb; ++i) {
    auto rid = in->ReadVarint();
    auto hid = in->ReadFixed64();
    auto opnum = in->ReadVarint();
    if (!rid || !hid || !opnum) {
      return std::nullopt;
    }
    a.response_emitted_by[*rid] = {*hid, static_cast<OpNum>(*opnum)};
  }
  auto n_oc = in->ReadVarint();
  if (!n_oc) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < *n_oc; ++i) {
    auto rid = in->ReadVarint();
    auto hid = in->ReadFixed64();
    auto count = in->ReadVarint();
    if (!rid || !hid || !count) {
      return std::nullopt;
    }
    a.opcounts[{*rid, *hid}] = static_cast<OpNum>(*count);
  }
  auto n_nd = in->ReadVarint();
  if (!n_nd) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < *n_nd; ++i) {
    auto op = DeserializeOpRef(in);
    auto kind = in->ReadByte();
    if (!op || !kind || *kind > 1) {
      return std::nullopt;
    }
    NondetRecord record;
    record.kind = static_cast<NondetRecord::Kind>(*kind);
    if (record.kind == NondetRecord::Kind::kValue) {
      auto value = in->ReadValue();
      if (!value) {
        return std::nullopt;
      }
      record.value = std::move(*value);
    }
    a.nondet.emplace(*op, std::move(record));
  }
  return a;
}

Advice::SizeBreakdown Advice::MeasureSize() const {
  SizeBreakdown b;
  ByteWriter w;
  SerializeWithBreakdown(*this, &w, &b);
  return b;
}

size_t Advice::var_log_entry_count() const {
  size_t n = 0;
  for (const auto& [vid, log] : var_logs) {
    n += log.size();
  }
  return n;
}

size_t Advice::handler_log_entry_count() const {
  size_t n = 0;
  for (const auto& [rid, log] : handler_logs) {
    n += log.size();
  }
  return n;
}

}  // namespace karousos
