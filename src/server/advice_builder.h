// Streaming advice accumulator for the record path (collector side).
//
// The server used to build its Advice directly in the ordered std::maps the
// wire format is defined over, paying a node allocation plus an O(log n)
// rebalance on every logged access — on the request hot path, while handlers
// run. The builder moves all ordering off that path: appends go into flat
// per-key lanes (open-addressed index + contiguous vectors), and ONE
// deterministic sort per component at Finalize() reproduces exactly the key
// order std::map iteration would have produced. Serialization therefore
// emits byte-identical advice; golden tests in tests/advice_golden_test.cc
// enforce that against pre-builder fixtures.
//
// Duplicate-key semantics mirror the maps they replace:
//   * var-log entries and responses — callers guarantee unique keys (fresh
//     opnums; the server's last_write_logged flag replaces log.count());
//   * opcounts and nondet — assignment semantics (`map[k] = v`), reproduced
//     by a stable sort plus last-occurrence-wins dedup;
//   * tx logs — get-or-create append, reproduced by keyed lanes.
#ifndef SRC_SERVER_ADVICE_BUILDER_H_
#define SRC_SERVER_ADVICE_BUILDER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/adya/history.h"
#include "src/common/flat_map.h"
#include "src/common/ids.h"
#include "src/server/advice.h"

namespace karousos {

class AdviceBuilder {
 public:
  // Appends an entry to vid's variable log. The caller guarantees `op` is not
  // already in the lane (the map this replaces used emplace, which would have
  // silently dropped a duplicate; the server never produces one).
  void AddVarEntry(VarId vid, const OpRef& op, VarLogEntry entry);

  // Number of var-log entries appended so far (the logging-ablation counter).
  size_t var_log_entries() const { return var_entry_count_; }

  // Get-or-create the transaction log for `txn`. The reference stays valid
  // until the next TxLog call (lane storage may grow).
  TransactionLog& TxLog(const TxnKey& txn);

  // Assignment semantics: a later record for the same key wins.
  void AddNondet(const OpRef& op, NondetRecord record);
  void AddOpcount(RequestId rid, HandlerId hid, OpNum count);
  void AddResponse(RequestId rid, HandlerId hid, OpNum opnum);

  // One call per served request (any order; rids must be unique): the
  // request's grouping tag and its complete handler log.
  void AddRequest(RequestId rid, uint64_t tag, std::vector<HandlerLogEntry>&& log);

  void SetWriteOrder(WriteOrder order) { write_order_ = std::move(order); }

  // Sorts every lane into canonical key order and materializes the Advice
  // the wire format (and every existing consumer) expects. The builder is
  // empty afterwards.
  Advice Finalize();

  void Reset();

 private:
  struct VarLane {
    VarId vid = 0;
    std::vector<std::pair<OpRef, VarLogEntry>> entries;
  };
  struct TxLane {
    TxnKey txn;
    TransactionLog log;
  };
  struct RequestRow {
    RequestId rid = 0;
    uint64_t tag = 0;
    std::vector<HandlerLogEntry> log;
  };

  FlatMap<VarId, uint32_t> var_index_;
  std::vector<VarLane> var_lanes_;
  FlatMap<TxnKey, uint32_t> tx_index_;
  std::vector<TxLane> tx_lanes_;
  std::vector<std::pair<OpRef, NondetRecord>> nondet_;
  std::vector<std::pair<std::pair<RequestId, HandlerId>, OpNum>> opcounts_;
  std::vector<std::pair<RequestId, std::pair<HandlerId, OpNum>>> responses_;
  std::vector<RequestRow> requests_;
  WriteOrder write_order_;
  size_t var_entry_count_ = 0;
};

}  // namespace karousos

#endif  // SRC_SERVER_ADVICE_BUILDER_H_
