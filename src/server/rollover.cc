#include "src/server/rollover.h"

#include <algorithm>
#include <map>
#include <utility>

namespace karousos {

uint64_t EpochOfRid(RequestId rid, uint64_t epoch_requests) {
  if (epoch_requests == 0 || rid == 0) return 0;
  return (rid - 1) / epoch_requests;
}

void ContinuityImports::Serialize(ByteWriter* out) const {
  out->WriteVarint(tx_ops.size());
  for (const TxOpImport& imp : tx_ops) {
    SerializeTxOpRef(imp.ref, out);
    out->WriteBool(imp.txn_present);
    out->WriteBool(imp.op_present);
    out->WriteByte(imp.type);
    out->WriteString(imp.key);
    out->WriteValue(imp.value);
    out->WriteFixed64(imp.hid);
    out->WriteVarint(imp.opnum);
  }
  out->WriteVarint(var_entries.size());
  for (const VarImport& imp : var_entries) {
    out->WriteFixed64(imp.vid);
    SerializeOpRef(imp.op, out);
    out->WriteBool(imp.present);
    out->WriteByte(imp.kind);
    out->WriteValue(imp.value);
  }
}

std::optional<ContinuityImports> ContinuityImports::Deserialize(ByteReader* in) {
  ContinuityImports imports;
  auto tx_count = in->ReadVarint();
  if (!tx_count) return std::nullopt;
  imports.tx_ops.reserve(*tx_count);
  for (uint64_t i = 0; i < *tx_count; ++i) {
    TxOpImport imp;
    auto ref = DeserializeTxOpRef(in);
    auto txn_present = in->ReadBool();
    auto op_present = in->ReadBool();
    auto type = in->ReadByte();
    auto key = in->ReadString();
    auto value = in->ReadValue();
    auto hid = in->ReadFixed64();
    auto opnum = in->ReadVarint();
    if (!ref || !txn_present || !op_present || !type || !key || !value || !hid || !opnum) {
      return std::nullopt;
    }
    imp.ref = *ref;
    imp.txn_present = *txn_present;
    imp.op_present = *op_present;
    imp.type = *type;
    imp.key = std::move(*key);
    imp.value = std::move(*value);
    imp.hid = *hid;
    imp.opnum = static_cast<OpNum>(*opnum);
    imports.tx_ops.push_back(std::move(imp));
  }
  auto var_count = in->ReadVarint();
  if (!var_count) return std::nullopt;
  imports.var_entries.reserve(*var_count);
  for (uint64_t i = 0; i < *var_count; ++i) {
    VarImport imp;
    auto vid = in->ReadFixed64();
    auto op = DeserializeOpRef(in);
    auto present = in->ReadBool();
    auto kind = in->ReadByte();
    auto value = in->ReadValue();
    if (!vid || !op || !present || !kind || !value) return std::nullopt;
    imp.vid = *vid;
    imp.op = *op;
    imp.present = *present;
    imp.kind = *kind;
    imp.value = std::move(*value);
    imports.var_entries.push_back(std::move(imp));
  }
  return imports;
}

namespace {

// Looks up what the full advice alleges at a cross-epoch transaction-log
// coordinate. Mirrors defects faithfully (absent txn, out-of-range index,
// wrong op type) so sliced validation rejects exactly where one-shot does.
ContinuityImports::TxOpImport DescribeTxOp(const Advice& advice, const TxOpRef& ref) {
  ContinuityImports::TxOpImport imp;
  imp.ref = ref;
  auto it = advice.tx_logs.find(TxnKey{ref.rid, ref.tid});
  if (it == advice.tx_logs.end()) return imp;
  imp.txn_present = true;
  if (ref.index < 1 || ref.index > it->second.size()) return imp;
  imp.op_present = true;
  const TxOperation& op = it->second[ref.index - 1];
  imp.type = static_cast<uint8_t>(op.type);
  imp.key = op.key;
  imp.value = op.put_value;
  imp.hid = op.hid;
  imp.opnum = op.opnum;
  return imp;
}

ContinuityImports::VarImport DescribeVarEntry(const Advice& advice, VarId vid, const OpRef& op) {
  ContinuityImports::VarImport imp;
  imp.vid = vid;
  imp.op = op;
  auto vit = advice.var_logs.find(vid);
  if (vit == advice.var_logs.end()) return imp;
  auto eit = vit->second.find(op);
  if (eit == vit->second.end()) return imp;
  imp.present = true;
  imp.kind = static_cast<uint8_t>(eit->second.kind);
  imp.value = eit->second.value;
  return imp;
}

}  // namespace

EpochSlices SliceRun(const Trace& trace, const Advice& advice, uint64_t epoch_requests) {
  EpochSlices out;
  out.epoch_requests = epoch_requests;

  // The trace's request ids fix the epoch count; advice content beyond the
  // last trace epoch is clamped into the final slice.
  struct RidSeen {
    bool req = false;
    bool resp = false;
    size_t last = 0;
  };
  std::map<RequestId, RidSeen> seen;
  for (size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& ev = trace.events[i];
    RidSeen& s = seen[ev.rid];
    (ev.kind == TraceEvent::Kind::kRequest ? s.req : s.resp) = true;
    s.last = i;
  }
  uint64_t max_epoch = 0;
  for (const auto& [rid, s] : seen) {
    max_epoch = std::max(max_epoch, EpochOfRid(rid, epoch_requests));
  }
  const size_t epochs = static_cast<size_t>(max_epoch) + 1;
  const auto clamp_epoch = [&](RequestId rid) {
    return std::min(EpochOfRid(rid, epoch_requests), max_epoch);
  };

  // Chronological cuts: window e ends at the earliest index past the last
  // event of every completed request of epochs <= e. A request missing its
  // arrival or response never completes, so its epoch's cut collapses to the
  // end of the trace (the streaming balance check then rejects at Finish,
  // exactly as the one-shot balance check would up front).
  std::vector<size_t> completion(epochs, 0);  // One-past-last event index.
  std::vector<bool> incomplete(epochs, false);
  for (const auto& [rid, s] : seen) {
    const size_t e = static_cast<size_t>(EpochOfRid(rid, epoch_requests));
    if (!s.req || !s.resp) {
      incomplete[e] = true;
    } else {
      completion[e] = std::max(completion[e], s.last + 1);
    }
  }
  out.segments.resize(epochs);
  size_t prev_cut = 0;
  size_t running_completion = 0;
  bool running_incomplete = false;
  for (size_t e = 0; e < epochs; ++e) {
    running_completion = std::max(running_completion, completion[e]);
    running_incomplete = running_incomplete || incomplete[e];
    size_t cut = running_incomplete ? trace.events.size() : running_completion;
    if (e + 1 == epochs) cut = trace.events.size();
    cut = std::max(cut, prev_cut);
    out.segments[e].epoch = e;
    out.segments[e].window.assign(trace.events.begin() + static_cast<ptrdiff_t>(prev_cut),
                                  trace.events.begin() + static_cast<ptrdiff_t>(cut));
    prev_cut = cut;
  }

  // Advice slices, by owning request id.
  for (const auto& [rid, tag] : advice.tags) {
    out.segments[clamp_epoch(rid)].advice.tags.emplace(rid, tag);
  }
  for (const auto& [rid, log] : advice.handler_logs) {
    out.segments[clamp_epoch(rid)].advice.handler_logs.emplace(rid, log);
  }
  for (const auto& [vid, log] : advice.var_logs) {
    for (const auto& [op, entry] : log) {
      out.segments[clamp_epoch(op.rid)].advice.var_logs[vid].emplace(op, entry);
    }
  }
  for (const auto& [txn, log] : advice.tx_logs) {
    out.segments[clamp_epoch(txn.rid)].advice.tx_logs.emplace(txn, log);
  }
  for (const auto& [rid, emitter] : advice.response_emitted_by) {
    out.segments[clamp_epoch(rid)].advice.response_emitted_by.emplace(rid, emitter);
  }
  for (const auto& [key, count] : advice.opcounts) {
    out.segments[clamp_epoch(key.first)].advice.opcounts.emplace(key, count);
  }
  for (const auto& [op, record] : advice.nondet) {
    out.segments[clamp_epoch(op.rid)].advice.nondet.emplace(op, record);
  }

  // Write order: positional prefix chunks. Chunk e extends while entries
  // belong to epochs <= e; the first later-epoch entry ends the chunk, and
  // earlier-epoch entries stranded behind it move to the later chunk. The
  // chunks therefore concatenate to exactly the alleged global order.
  size_t pos = 0;
  for (size_t e = 0; e < epochs; ++e) {
    WriteOrder& chunk = out.segments[e].advice.write_order;
    if (e + 1 == epochs) {
      chunk.assign(advice.write_order.begin() + static_cast<ptrdiff_t>(pos),
                   advice.write_order.end());
      pos = advice.write_order.size();
      break;
    }
    while (pos < advice.write_order.size() &&
           clamp_epoch(advice.write_order[pos].rid) <= e) {
      chunk.push_back(advice.write_order[pos]);
      ++pos;
    }
  }

  // Continuity imports: allegations for every forward cross-epoch reference
  // in each slice, deduplicated and emitted in sorted order so server-side
  // and verifier-side slicing produce byte-identical segments.
  for (size_t e = 0; e < epochs; ++e) {
    EpochSegment& seg = out.segments[e];
    std::map<TxOpRef, ContinuityImports::TxOpImport> tx_imports;
    std::map<std::pair<VarId, OpRef>, ContinuityImports::VarImport> var_imports;
    for (const auto& [txn, log] : seg.advice.tx_logs) {
      for (const TxOperation& op : log) {
        if (op.type != TxOpType::kGet || op.get_from.IsNil()) continue;
        if (clamp_epoch(op.get_from.rid) <= e) continue;
        tx_imports.emplace(op.get_from, DescribeTxOp(advice, op.get_from));
      }
    }
    for (const auto& [vid, log] : seg.advice.var_logs) {
      for (const auto& [op, entry] : log) {
        if (entry.prec.IsNil()) continue;
        if (clamp_epoch(entry.prec.rid) <= e) continue;
        var_imports.emplace(std::make_pair(vid, entry.prec),
                            DescribeVarEntry(advice, vid, entry.prec));
      }
    }
    for (auto& [ref, imp] : tx_imports) seg.imports.tx_ops.push_back(std::move(imp));
    for (auto& [key, imp] : var_imports) seg.imports.var_entries.push_back(std::move(imp));
  }

  return out;
}

std::vector<uint8_t> EncodeTraceSegments(const EpochSlices& slices) {
  SegmentWriter writer;
  for (const EpochSegment& seg : slices.segments) {
    ByteWriter payload;
    Trace window{seg.window};
    window.Serialize(&payload);
    writer.Append(SegmentKind::kTrace, seg.epoch, payload.bytes());
  }
  return writer.Take();
}

std::vector<uint8_t> EncodeAdviceSegments(const EpochSlices& slices) {
  SegmentWriter writer;
  for (const EpochSegment& seg : slices.segments) {
    ByteWriter payload;
    seg.advice.Serialize(&payload);
    seg.imports.Serialize(&payload);
    writer.Append(SegmentKind::kAdvice, seg.epoch, payload.bytes());
  }
  return writer.Take();
}

std::optional<std::vector<TraceEvent>> DecodeTraceSegmentPayload(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  auto window = Trace::Deserialize(&reader);
  if (!window || !reader.AtEnd()) return std::nullopt;
  return std::move(window->events);
}

std::optional<AdviceSegmentPayload> DecodeAdviceSegmentPayload(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  auto advice = Advice::Deserialize(&reader);
  if (!advice) return std::nullopt;
  auto imports = ContinuityImports::Deserialize(&reader);
  if (!imports || !reader.AtEnd()) return std::nullopt;
  AdviceSegmentPayload out;
  out.advice = std::move(*advice);
  out.imports = std::move(*imports);
  return out;
}

}  // namespace karousos
