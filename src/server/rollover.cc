#include "src/server/rollover.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/server/kseg_codec.h"

namespace karousos {

uint64_t EpochOfRid(RequestId rid, uint64_t epoch_requests) {
  if (epoch_requests == 0 || rid == 0) return 0;
  return (rid - 1) / epoch_requests;
}

void ContinuityImports::Serialize(ByteWriter* out) const {
  out->WriteVarint(tx_ops.size());
  for (const TxOpImport& imp : tx_ops) {
    SerializeTxOpRef(imp.ref, out);
    out->WriteBool(imp.txn_present);
    out->WriteBool(imp.op_present);
    out->WriteByte(imp.type);
    out->WriteString(imp.key);
    out->WriteValue(imp.value);
    out->WriteFixed64(imp.hid);
    out->WriteVarint(imp.opnum);
  }
  out->WriteVarint(var_entries.size());
  for (const VarImport& imp : var_entries) {
    out->WriteFixed64(imp.vid);
    SerializeOpRef(imp.op, out);
    out->WriteBool(imp.present);
    out->WriteByte(imp.kind);
    out->WriteValue(imp.value);
  }
}

std::optional<ContinuityImports> ContinuityImports::Deserialize(ByteReader* in) {
  ContinuityImports imports;
  auto tx_count = in->ReadVarint();
  if (!tx_count) return std::nullopt;
  imports.tx_ops.reserve(*tx_count);
  for (uint64_t i = 0; i < *tx_count; ++i) {
    TxOpImport imp;
    auto ref = DeserializeTxOpRef(in);
    auto txn_present = in->ReadBool();
    auto op_present = in->ReadBool();
    auto type = in->ReadByte();
    auto key = in->ReadString();
    auto value = in->ReadValue();
    auto hid = in->ReadFixed64();
    auto opnum = in->ReadVarint();
    if (!ref || !txn_present || !op_present || !type || !key || !value || !hid || !opnum) {
      return std::nullopt;
    }
    imp.ref = *ref;
    imp.txn_present = *txn_present;
    imp.op_present = *op_present;
    imp.type = *type;
    imp.key = std::move(*key);
    imp.value = std::move(*value);
    imp.hid = *hid;
    imp.opnum = static_cast<OpNum>(*opnum);
    imports.tx_ops.push_back(std::move(imp));
  }
  auto var_count = in->ReadVarint();
  if (!var_count) return std::nullopt;
  imports.var_entries.reserve(*var_count);
  for (uint64_t i = 0; i < *var_count; ++i) {
    VarImport imp;
    auto vid = in->ReadFixed64();
    auto op = DeserializeOpRef(in);
    auto present = in->ReadBool();
    auto kind = in->ReadByte();
    auto value = in->ReadValue();
    if (!vid || !op || !present || !kind || !value) return std::nullopt;
    imp.vid = *vid;
    imp.op = *op;
    imp.present = *present;
    imp.kind = *kind;
    imp.value = std::move(*value);
    imports.var_entries.push_back(std::move(imp));
  }
  return imports;
}

// Looks up what the full advice alleges at a cross-epoch transaction-log
// coordinate. Mirrors defects faithfully (absent txn, out-of-range index,
// wrong op type) so sliced validation rejects exactly where one-shot does.
ContinuityImports::TxOpImport DescribeTxOp(const Advice& advice, const TxOpRef& ref) {
  ContinuityImports::TxOpImport imp;
  imp.ref = ref;
  auto it = advice.tx_logs.find(TxnKey{ref.rid, ref.tid});
  if (it == advice.tx_logs.end()) return imp;
  imp.txn_present = true;
  if (ref.index < 1 || ref.index > it->second.size()) return imp;
  imp.op_present = true;
  const TxOperation& op = it->second[ref.index - 1];
  imp.type = static_cast<uint8_t>(op.type);
  imp.key = op.key;
  imp.value = op.put_value;
  imp.hid = op.hid;
  imp.opnum = op.opnum;
  return imp;
}

ContinuityImports::VarImport DescribeVarEntry(const Advice& advice, VarId vid, const OpRef& op) {
  ContinuityImports::VarImport imp;
  imp.vid = vid;
  imp.op = op;
  auto vit = advice.var_logs.find(vid);
  if (vit == advice.var_logs.end()) return imp;
  auto eit = vit->second.find(op);
  if (eit == vit->second.end()) return imp;
  imp.present = true;
  imp.kind = static_cast<uint8_t>(eit->second.kind);
  imp.value = eit->second.value;
  return imp;
}

EpochSlices SliceRun(const Trace& trace, const Advice& advice, uint64_t epoch_requests) {
  // One up-front copy, then the owned slicer: a single slicing implementation
  // keeps server-side and verifier-side segments byte-identical by
  // construction.
  Advice copy = advice;
  return SliceRunOwned(trace, std::move(copy), epoch_requests);
}

EpochSlices SliceRunOwned(const Trace& trace, Advice&& advice, uint64_t epoch_requests) {
  EpochSlices out;
  out.epoch_requests = epoch_requests;

  // The trace's request ids fix the epoch count; advice content beyond the
  // last trace epoch is clamped into the final slice.
  struct RidSeen {
    bool req = false;
    bool resp = false;
    size_t last = 0;
  };
  std::map<RequestId, RidSeen> seen;
  for (size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& ev = trace.events[i];
    RidSeen& s = seen[ev.rid];
    (ev.kind == TraceEvent::Kind::kRequest ? s.req : s.resp) = true;
    s.last = i;
  }
  uint64_t max_epoch = 0;
  for (const auto& [rid, s] : seen) {
    max_epoch = std::max(max_epoch, EpochOfRid(rid, epoch_requests));
  }
  const size_t epochs = static_cast<size_t>(max_epoch) + 1;
  const auto clamp_epoch = [&](RequestId rid) {
    return std::min(EpochOfRid(rid, epoch_requests), max_epoch);
  };

  // Chronological cuts: window e ends at the earliest index past the last
  // event of every completed request of epochs <= e. A request missing its
  // arrival or response never completes, so its epoch's cut collapses to the
  // end of the trace (the streaming balance check then rejects at Finish,
  // exactly as the one-shot balance check would up front).
  std::vector<size_t> completion(epochs, 0);  // One-past-last event index.
  std::vector<bool> incomplete(epochs, false);
  for (const auto& [rid, s] : seen) {
    const size_t e = static_cast<size_t>(EpochOfRid(rid, epoch_requests));
    if (!s.req || !s.resp) {
      incomplete[e] = true;
    } else {
      completion[e] = std::max(completion[e], s.last + 1);
    }
  }
  out.segments.resize(epochs);
  size_t prev_cut = 0;
  size_t running_completion = 0;
  bool running_incomplete = false;
  for (size_t e = 0; e < epochs; ++e) {
    running_completion = std::max(running_completion, completion[e]);
    running_incomplete = running_incomplete || incomplete[e];
    size_t cut = running_incomplete ? trace.events.size() : running_completion;
    if (e + 1 == epochs) cut = trace.events.size();
    cut = std::max(cut, prev_cut);
    out.segments[e].epoch = e;
    out.segments[e].window.assign(trace.events.begin() + static_cast<ptrdiff_t>(prev_cut),
                                  trace.events.begin() + static_cast<ptrdiff_t>(cut));
    prev_cut = cut;
  }

  // Continuity imports: allegations for every forward cross-epoch reference,
  // deduplicated and emitted in sorted order so server-side and
  // verifier-side slicing produce byte-identical segments. Computed *before*
  // the slicing below moves the referenced content out of the full advice.
  {
    std::vector<std::map<TxOpRef, ContinuityImports::TxOpImport>> tx_imports(epochs);
    std::vector<std::map<std::pair<VarId, OpRef>, ContinuityImports::VarImport>> var_imports(
        epochs);
    for (const auto& [txn, log] : advice.tx_logs) {
      const size_t e = static_cast<size_t>(clamp_epoch(txn.rid));
      for (const TxOperation& op : log) {
        if (op.type != TxOpType::kGet || op.get_from.IsNil()) continue;
        if (clamp_epoch(op.get_from.rid) <= e) continue;
        tx_imports[e].emplace(op.get_from, DescribeTxOp(advice, op.get_from));
      }
    }
    for (const auto& [vid, log] : advice.var_logs) {
      for (const auto& [op, entry] : log) {
        const size_t e = static_cast<size_t>(clamp_epoch(op.rid));
        if (entry.prec.IsNil()) continue;
        if (clamp_epoch(entry.prec.rid) <= e) continue;
        var_imports[e].emplace(std::make_pair(vid, entry.prec),
                               DescribeVarEntry(advice, vid, entry.prec));
      }
    }
    for (size_t e = 0; e < epochs; ++e) {
      EpochSegment& seg = out.segments[e];
      for (auto& [ref, imp] : tx_imports[e]) seg.imports.tx_ops.push_back(std::move(imp));
      for (auto& [key, imp] : var_imports[e]) seg.imports.var_entries.push_back(std::move(imp));
    }
  }

  // Advice slices, by owning request id — content moves out of the full
  // advice (per-epoch key sequences are ascending subsequences of the
  // source maps, so end-hinted inserts rebuild each slice in one pass).
  for (const auto& [rid, tag] : advice.tags) {
    Advice& target = out.segments[clamp_epoch(rid)].advice;
    target.tags.emplace_hint(target.tags.end(), rid, tag);
  }
  for (auto& [rid, log] : advice.handler_logs) {
    Advice& target = out.segments[clamp_epoch(rid)].advice;
    target.handler_logs.emplace_hint(target.handler_logs.end(), rid, std::move(log));
  }
  for (auto& [vid, log] : advice.var_logs) {
    for (auto& [op, entry] : log) {
      VarLog& target = out.segments[clamp_epoch(op.rid)].advice.var_logs[vid];
      target.emplace_hint(target.end(), op, std::move(entry));
    }
  }
  for (auto& [txn, log] : advice.tx_logs) {
    Advice& target = out.segments[clamp_epoch(txn.rid)].advice;
    target.tx_logs.emplace_hint(target.tx_logs.end(), txn, std::move(log));
  }
  for (const auto& [rid, emitter] : advice.response_emitted_by) {
    Advice& target = out.segments[clamp_epoch(rid)].advice;
    target.response_emitted_by.emplace_hint(target.response_emitted_by.end(), rid, emitter);
  }
  for (const auto& [key, count] : advice.opcounts) {
    Advice& target = out.segments[clamp_epoch(key.first)].advice;
    target.opcounts.emplace_hint(target.opcounts.end(), key, count);
  }
  for (auto& [op, record] : advice.nondet) {
    Advice& target = out.segments[clamp_epoch(op.rid)].advice;
    target.nondet.emplace_hint(target.nondet.end(), op, std::move(record));
  }

  // Write order: positional prefix chunks. Chunk e extends while entries
  // belong to epochs <= e; the first later-epoch entry ends the chunk, and
  // earlier-epoch entries stranded behind it move to the later chunk. The
  // chunks therefore concatenate to exactly the alleged global order.
  size_t pos = 0;
  for (size_t e = 0; e < epochs; ++e) {
    WriteOrder& chunk = out.segments[e].advice.write_order;
    if (e + 1 == epochs) {
      chunk.assign(advice.write_order.begin() + static_cast<ptrdiff_t>(pos),
                   advice.write_order.end());
      pos = advice.write_order.size();
      break;
    }
    while (pos < advice.write_order.size() &&
           clamp_epoch(advice.write_order[pos].rid) <= e) {
      chunk.push_back(advice.write_order[pos]);
      ++pos;
    }
  }

  return out;
}

Advice MergeSlices(EpochSlices&& slices) {
  Advice out;
  // Epochs partition request ids into ascending ranges (rid 0 in epoch 0,
  // clamped high rids in the final epoch), so concatenating the per-epoch
  // maps in epoch order yields every component's keys in ascending order —
  // end-hinted inserts rebuild the monolithic maps in one pass.
  for (EpochSegment& seg : slices.segments) {
    Advice& a = seg.advice;
    for (const auto& [rid, tag] : a.tags) {
      out.tags.emplace_hint(out.tags.end(), rid, tag);
    }
    for (auto& [rid, log] : a.handler_logs) {
      out.handler_logs.emplace_hint(out.handler_logs.end(), rid, std::move(log));
    }
    for (auto& [vid, log] : a.var_logs) {
      VarLog& target = out.var_logs[vid];
      for (auto& [op, entry] : log) {
        target.emplace_hint(target.end(), op, std::move(entry));
      }
    }
    for (auto& [txn, log] : a.tx_logs) {
      out.tx_logs.emplace_hint(out.tx_logs.end(), txn, std::move(log));
    }
    for (const auto& [rid, emitter] : a.response_emitted_by) {
      out.response_emitted_by.emplace_hint(out.response_emitted_by.end(), rid, emitter);
    }
    for (const auto& [key, count] : a.opcounts) {
      out.opcounts.emplace_hint(out.opcounts.end(), key, count);
    }
    for (auto& [op, record] : a.nondet) {
      out.nondet.emplace_hint(out.nondet.end(), op, std::move(record));
    }
    out.write_order.insert(out.write_order.end(), a.write_order.begin(), a.write_order.end());
  }
  return out;
}

std::vector<uint8_t> EncodeTraceSegments(const EpochSlices& slices) {
  SegmentWriter writer;
  // One scratch payload buffer across frames: Clear keeps the capacity, so
  // only the largest epoch ever allocates.
  ByteWriter payload;
  for (const EpochSegment& seg : slices.segments) {
    payload.Clear();
    SerializeTraceEvents(seg.window, &payload);
    writer.Append(SegmentKind::kTrace, seg.epoch, payload.bytes());
  }
  return writer.Take();
}

std::vector<uint8_t> EncodeAdviceSegments(const EpochSlices& slices) {
  SegmentWriter writer;
  ByteWriter payload;
  for (const EpochSegment& seg : slices.segments) {
    payload.Clear();
    seg.advice.Serialize(&payload);
    seg.imports.Serialize(&payload);
    writer.Append(SegmentKind::kAdvice, seg.epoch, payload.bytes());
  }
  return writer.Take();
}

namespace {

// Appends one frame under the storage-class stages: compact transcode when
// lanes/dict are on, then a per-frame block attempt that keeps whichever form
// is smaller (dropping the block flag when it loses, so flags always describe
// the stored bytes).
template <typename EncodeBody>
void AppendCompressedFrame(SegmentWriter* writer, SegmentKind kind, uint64_t epoch,
                           const KsegCompression& c, ByteWriter* payload,
                           EncodeBody&& encode_body) {
  payload->Clear();
  encode_body(payload);
  uint8_t flags = static_cast<uint8_t>(c.Flags() & ~kFrameFlagBlock);
  if (c.block) {
    std::vector<uint8_t> blocked = BlockFrameEncode(payload->bytes());
    if (blocked.size() < payload->size()) {
      writer->Append(kind, epoch, static_cast<uint8_t>(flags | kFrameFlagBlock), blocked);
      return;
    }
  }
  writer->Append(kind, epoch, flags, payload->bytes());
}

}  // namespace

std::vector<uint8_t> EncodeTraceSegments(const EpochSlices& slices, const KsegCompression& c) {
  if (!c.any()) return EncodeTraceSegments(slices);
  SegmentWriter writer(kSegmentFormatVersionV2);
  ByteWriter payload;
  for (const EpochSegment& seg : slices.segments) {
    AppendCompressedFrame(&writer, SegmentKind::kTrace, seg.epoch, c, &payload,
                          [&](ByteWriter* out) {
                            if (c.lanes || c.dict) {
                              EncodeCompactTracePayload(seg.window, c, out);
                            } else {
                              SerializeTraceEvents(seg.window, out);
                            }
                          });
  }
  return writer.Take();
}

std::vector<uint8_t> EncodeAdviceSegments(const EpochSlices& slices, const KsegCompression& c) {
  if (!c.any()) return EncodeAdviceSegments(slices);
  SegmentWriter writer(kSegmentFormatVersionV2);
  ByteWriter payload;
  for (const EpochSegment& seg : slices.segments) {
    AppendCompressedFrame(&writer, SegmentKind::kAdvice, seg.epoch, c, &payload,
                          [&](ByteWriter* out) {
                            if (c.lanes || c.dict) {
                              EncodeCompactAdvicePayload(seg.advice, seg.imports, c, out);
                            } else {
                              seg.advice.Serialize(out);
                              seg.imports.Serialize(out);
                            }
                          });
  }
  return writer.Take();
}

std::optional<std::vector<TraceEvent>> DecodeTraceSegmentPayload(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  auto window = Trace::Deserialize(&reader);
  if (!window || !reader.AtEnd()) return std::nullopt;
  return std::move(window->events);
}

std::optional<AdviceSegmentPayload> DecodeAdviceSegmentPayload(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  auto advice = Advice::Deserialize(&reader);
  if (!advice) return std::nullopt;
  auto imports = ContinuityImports::Deserialize(&reader);
  if (!imports || !reader.AtEnd()) return std::nullopt;
  AdviceSegmentPayload out;
  out.advice = std::move(*advice);
  out.imports = std::move(*imports);
  return out;
}

std::optional<std::vector<TraceEvent>> DecodeTraceSegmentPayload(
    const std::vector<uint8_t>& payload, uint8_t flags) {
  if ((flags & ~kFrameFlagsKnownMask) != 0) return std::nullopt;
  if (flags == 0) return DecodeTraceSegmentPayload(payload);
  const KsegCompression c = KsegCompression::FromFlags(flags);
  const std::vector<uint8_t>* body = &payload;
  std::optional<std::vector<uint8_t>> unblocked;
  if (c.block) {
    unblocked = BlockFrameDecode(payload);
    if (!unblocked) return std::nullopt;
    body = &*unblocked;
  }
  if (!c.lanes && !c.dict) {
    return DecodeTraceSegmentPayload(*body);
  }
  return DecodeCompactTracePayload(body->data(), body->size(), c);
}

std::optional<AdviceSegmentPayload> DecodeAdviceSegmentPayload(
    const std::vector<uint8_t>& payload, uint8_t flags) {
  if ((flags & ~kFrameFlagsKnownMask) != 0) return std::nullopt;
  if (flags == 0) return DecodeAdviceSegmentPayload(payload);
  const KsegCompression c = KsegCompression::FromFlags(flags);
  const std::vector<uint8_t>* body = &payload;
  std::optional<std::vector<uint8_t>> unblocked;
  if (c.block) {
    unblocked = BlockFrameDecode(payload);
    if (!unblocked) return std::nullopt;
    body = &*unblocked;
  }
  if (!c.lanes && !c.dict) {
    return DecodeAdviceSegmentPayload(*body);
  }
  return DecodeCompactAdvicePayload(body->data(), body->size(), c);
}

}  // namespace karousos
