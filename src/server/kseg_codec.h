// Grammar-aware compact transcoder for KSEG frame payloads.
//
// The raw advice wire format (src/server/advice.cc) spends most of its bytes
// on absolute 64-bit digests (handler/var/tx/function/event ids, tags) and on
// repeated app keys. This transcoder re-encodes the same structures under the
// storage-class stages of src/common/kcodec.h:
//
//   * lanes (kFrameFlagLanes) — the monotone/near-monotone integer lanes
//     (request ids, per-log opnums, tx indices) become first-value + zigzag
//     deltas; cross-reference rids (a var-log prec, a GET's dictating PUT)
//     are coded relative to the referencing coordinate, where they cluster.
//   * dict (kFrameFlagDict) — per-segment dictionaries: every distinct id
//     digest is stored once (fixed64) and referenced by small varints; every
//     distinct string (tx keys, value strings, map keys) likewise. The tables
//     precede the body, both in first-use order.
//
// The block stage is payload-agnostic and applied by the caller (rollover) on
// the finished frame. Decoding is the exact inverse: the decoded structures
// are identical to what the raw decoder would have produced, so re-encoding
// them with the raw serializer reproduces the original bytes — the
// decode(encode(x)) == x property the golden round-trip tests pin.
//
// Malformed input (truncated dictionary, out-of-range ref, corrupt delta
// lane, trailing bytes) decodes to nullopt, never a crash: the audit treats
// it as server misbehavior, exactly like a malformed raw payload.
#ifndef SRC_SERVER_KSEG_CODEC_H_
#define SRC_SERVER_KSEG_CODEC_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/kcodec.h"
#include "src/server/rollover.h"

namespace karousos {

// Trace window payload (one kTrace frame). `c.block` is ignored here.
void EncodeCompactTracePayload(const std::vector<TraceEvent>& events, const KsegCompression& c,
                               ByteWriter* out);
std::optional<std::vector<TraceEvent>> DecodeCompactTracePayload(const uint8_t* data, size_t size,
                                                                 const KsegCompression& c);

// Advice slice + continuity imports payload (one kAdvice frame).
void EncodeCompactAdvicePayload(const Advice& advice, const ContinuityImports& imports,
                                const KsegCompression& c, ByteWriter* out);
std::optional<AdviceSegmentPayload> DecodeCompactAdvicePayload(const uint8_t* data, size_t size,
                                                               const KsegCompression& c);

}  // namespace karousos

#endif  // SRC_SERVER_KSEG_CODEC_H_
