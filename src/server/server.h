// The (instrumented) server: runs a KEM program against a stream of requests
// under simulated concurrency, producing the ground-truth trace and — unless
// instrumentation is off — the advice of §C.1.3.
//
// Concurrency model: the dispatch loop keeps up to `concurrency` requests in
// flight and, on each iteration, non-deterministically (seeded) selects one
// pending event among the in-flight requests, exactly as KEM's dispatch loop
// does (§3). Handlers run to completion; interleaving happens at handler
// granularity. More concurrency means more interleaving of different
// requests' handler activations, which is what creates R-concurrent accesses
// and drives the paper's overhead / advice-size trends.
//
// Instrumentation modes:
//   * kOff      — the "unmodified server" baseline of Figure 6: no ids, no
//                 labels, no logs; variables are plain storage.
//   * kKarousos — full §4/§5 advice collection: variable accesses are logged
//                 only when R-concurrent with the dictating/preceding write.
//   * kOrochi   — the Orochi-JS baseline (§6, "Baselines"): every tracked
//                 variable access is logged, and the grouping tag is a digest
//                 of the handler *sequence* rather than the handler tree.
//
// Record-path layout (DESIGN.md "Record path"): per-request state lives in a
// rid-indexed vector, handler logs append into arena-backed chunk lists,
// handler labels are interned in a LabelStore, variable/name digests are
// memoized, and all advice accumulation goes through AdviceBuilder — the
// ordered maps of the wire format are only materialized once, at the end of
// the run.
#ifndef SRC_SERVER_SERVER_H_
#define SRC_SERVER_SERVER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/access_log.h"
#include "src/common/arena.h"
#include "src/common/digest.h"
#include "src/common/flat_map.h"
#include "src/common/kcodec.h"
#include "src/common/rng.h"
#include "src/kem/label.h"
#include "src/kem/program.h"
#include "src/kem/varid.h"
#include "src/server/advice.h"
#include "src/server/advice_builder.h"
#include "src/trace/trace.h"
#include "src/txkv/store.h"

namespace karousos {

enum class CollectMode : uint8_t { kOff, kKarousos, kOrochi };

const char* CollectModeName(CollectMode mode);

struct ServerConfig {
  CollectMode mode = CollectMode::kKarousos;
  IsolationLevel isolation = IsolationLevel::kSerializable;
  // Maximum number of requests concurrently in flight.
  int concurrency = 1;
  // Seed for the dispatch-loop scheduler and for Ctx::Random values.
  uint64_t seed = 1;
  // Requests used to warm the application before timing starts (§6.1 uses
  // the first 120 of 600); serve_seconds excludes time until the warmup-th
  // response is delivered.
  size_t warmup_requests = 0;
  // Annotation advisor (the paper's future-work item of automating the
  // loggable-variable annotations, §1/§5): when set (requires an
  // instrumented mode), accesses to *unannotated* variables are shadow-
  // checked for R-concurrency and violations are reported per variable, so
  // a developer learns exactly which variables must be marked loggable.
  bool annotation_lint = false;
  // Record every untracked-variable access (instrumented modes only) into
  // ServerRunResult::untracked_accesses, feeding the happens-before race
  // detector in src/analysis/race.h. Honest applications keep no mutable
  // untracked state, so the default-on recording costs nothing there.
  bool record_untracked_accesses = true;
  // Epoch rollover (streaming audit): when nonzero, the collector slices the
  // run into epochs of this many requests and emits the trace and advice as
  // versioned segment streams (ServerRunResult::{trace,advice}_segments) in
  // addition to the monolithic structures. 0 = rollover off.
  uint64_t epoch_requests = 0;
  // Storage-class codec stages for the emitted segment streams (lanes / dict
  // / block, src/common/kcodec.h). Only meaningful with epoch_requests > 0.
  // All-off emits the v1 raw container, byte-identical to before.
  KsegCompression segment_compression;
  // Per-request latency capture (Figure 6 latency columns): when set, each
  // request's arrival-to-response-drain time is appended (in completion
  // order) to ServerRunResult::request_latencies.
  bool measure_request_latencies = false;
};

struct ServerRunResult {
  Trace trace;
  Advice advice;  // Empty when mode == kOff.
  // Wall-clock seconds serving the post-warmup requests (the whole run when
  // warmup_requests == 0).
  double serve_seconds = 0;
  // Work counters (bench diagnostics).
  size_t handler_activations = 0;
  size_t ops_executed = 0;
  size_t var_accesses = 0;
  size_t var_log_entries = 0;
  size_t state_ops = 0;
  size_t conflicts = 0;
  size_t advice_spool_bytes = 0;
  // Annotation-lint findings: unannotated variables with R-concurrent
  // accesses, and how many such accesses were observed.
  std::map<std::string, size_t> lint_violations;
  // Every untracked-variable access, in observation order (empty when
  // record_untracked_accesses is off or the mode is uninstrumented).
  UntrackedAccessLog untracked_accesses;
  // Epoch segment streams (empty unless ServerConfig::epoch_requests > 0):
  // the trace and advice as KSEG containers, one frame per epoch, with
  // continuity imports for cross-epoch references.
  std::vector<uint8_t> trace_segments;
  std::vector<uint8_t> advice_segments;
  // Per-request wall-clock latencies in seconds, completion order (empty
  // unless ServerConfig::measure_request_latencies). The first
  // warmup_requests entries belong to warmup.
  std::vector<double> request_latencies;
};

class ServerCtx;

// One request the incremental core has finished (drained pending events and
// responded). `response` is only populated when capture_responses is on —
// the network edge needs the payload to write back to the client; the
// in-process driver reads responses from the trace instead.
struct CompletedRequest {
  RequestId rid = 0;
  Value response;
};

class Server {
 public:
  Server(const Program& program, const ServerConfig& config);
  ~Server();

  // Serves `request_inputs` (request ids are assigned 1..N in order) and
  // returns the trace plus collected advice. Deterministic for a fixed
  // (program, config, inputs) triple across all instrumentation modes, so
  // that mode comparisons see identical schedules.
  ServerRunResult Run(const std::vector<Value>& request_inputs);

  // --- Incremental per-request core -------------------------------------
  //
  // The same engine Run drives, exposed one step at a time so a caller that
  // does not hold the whole schedule up front (the network edge, src/net)
  // can interleave admission with I/O. Run(inputs) is exactly
  //   BeginRun(); { admit while capacity; StepOne(); } FinishRun();
  // so both drivers share one dispatch loop and produce identical bytes for
  // identical admission/step interleavings.

  // Resets per-run state and executes the initialization pseudo-handler.
  void BeginRun(size_t expected_requests = 0);

  // Admits one request: assigns the next rid (1, 2, ...), records the trace
  // arrival, and queues the request event. Caller enforces any concurrency
  // window (Run admits while in_flight_count() < config.concurrency).
  RequestId InjectRequest(const Value& input);

  // Dispatches one scheduler-selected event among the in-flight requests.
  // Returns false when no in-flight request has a pending event (idle).
  bool StepOne();

  // Finalizes tags/write-order/advice (and epoch slicing when configured)
  // and returns the run result. Terminates the run started by BeginRun.
  ServerRunResult FinishRun();

  size_t in_flight_count() const { return in_flight_.size(); }
  // True iff StepOne has an event to dispatch.
  bool has_runnable() const;

  // When on, each completed request's response payload is retained for
  // TakeCompleted (the network edge replies from these; the in-process
  // driver leaves this off and pays nothing).
  void set_capture_responses(bool on) { capture_responses_ = on; }
  // Requests completed since the last call, in completion order.
  std::vector<CompletedRequest> TakeCompleted();

  const TxKvStore& store() const { return store_; }

 private:
  friend class ServerCtx;

  struct PendingEvent {
    uint64_t event = 0;
    Value payload;
    HandlerId activator_hid = kNoHandler;
    OpNum activator_opnum = 0;
  };

  struct Registration {
    uint64_t event = 0;
    FunctionId function = 0;
  };

  struct RequestState {
    Value input;
    bool responded = false;
    std::deque<PendingEvent> pending;
    // Per-request handler registrations, in registration order.
    std::vector<Registration> registered;
    // Instrumented-only state. Labels are interned in the server's
    // LabelStore; the handler log appends into the server's arena.
    FlatMap<HandlerId, LabelStore::Ref> labels;
    FlatMap<HandlerId, uint32_t> child_counts;
    ArenaLog<HandlerLogEntry> handler_log;
    uint64_t tree_tag_acc = 0;  // Karousos tag: unordered combine over handlers.
    Digest seq_tag;             // Orochi tag: order-sensitive over handlers.
    size_t handler_count = 0;
    // Arrival timestamp (measure_request_latencies only).
    std::chrono::steady_clock::time_point arrival;
    // Response payload (capture_responses_ only).
    Value response;
  };

  struct TrackedVar {
    bool declared = false;
    // True while no write has happened since OnInitialize: the declaration
    // itself is not a loggable write, so log entries may not reference it.
    bool last_is_declaration = true;
    // Whether last_write already has a var-log entry — the O(1) stand-in for
    // the log.count() membership test the builder's lanes can't answer.
    bool last_write_logged = false;
    Value value;
    OpRef last_write;  // Most recent write or the OnInitialize coordinates.
    LabelStore::Ref last_write_label = LabelStore::kEmpty;
  };

  // Runs the handlers registered for one event of one request.
  void DispatchEvent(RequestId rid, const PendingEvent& event, ServerRunResult* result);

  // Runs one handler activation to completion.
  void RunActivation(RequestId rid, FunctionId function, HandlerId hid, const Value& payload,
                     HandlerId activator, ServerRunResult* result);

  bool instrumented() const { return config_.mode != CollectMode::kOff; }

  // Memoized DigestOf for event/function names (EventId shares the mapping).
  uint64_t NameDigest(std::string_view name);

  // Uninstrumented runs still need monotone PUT indexes per transaction for
  // the store's last-writer bookkeeping (the values are discarded).
  uint32_t NextUninstrumentedPutIndex(const TxnKey& txn) { return ++put_counters_[txn]; }

  const Program& program_;
  ServerConfig config_;
  TxKvStore store_;
  std::unique_ptr<Rng> sched_rng_;
  std::unique_ptr<Rng> value_rng_;

  // Global handlers registered by the initialization function (§3).
  std::vector<Registration> global_handlers_;
  // Request state, indexed by rid (slot 0 unused; rids run 1..N).
  std::vector<RequestState> requests_;
  struct UntrackedVar {
    Value value;
    // Lint-mode shadow tracking.
    std::string name;
    bool written = false;
    OpRef last_write;
    LabelStore::Ref last_write_label = LabelStore::kEmpty;
  };

  FlatMap<VarId, TrackedVar> tracked_vars_;
  FlatMap<VarId, UntrackedVar> untracked_vars_;
  FlatMap<TxnKey, uint32_t> put_counters_;

  Trace trace_;
  // Streaming advice accumulator; Finalize() at the end of Run materializes
  // the ordered Advice (identical bytes to the map-built path).
  AdviceBuilder builder_;
  // Interning / memoization shared by every activation of the run.
  LabelStore label_store_;
  Arena arena_;
  VarIdCache varid_cache_;
  NameDigestCache name_cache_;  // Event and function name digests.
  // Scratch for DispatchEvent's matched-handler list (never nested).
  std::vector<FunctionId> matched_scratch_;
  // Incremental-run state (valid between BeginRun and FinishRun).
  std::unique_ptr<ServerRunResult> run_;
  std::vector<RequestId> in_flight_;
  size_t responses_delivered_ = 0;
  bool warm_ = true;
  std::chrono::steady_clock::time_point serve_start_;
  bool capture_responses_ = false;
  std::vector<CompletedRequest> completed_;
  // Advice spool: logged entries are serialized as they are produced, the
  // way a deployed server streams advice out (§2.1 requires keeping the
  // verifier fed without buffering the whole run). Its cost is part of the
  // instrumented server's overhead; its length approximates bytes shipped.
  ByteWriter advice_spool_;
  ServerRunResult* current_result_ = nullptr;
  // Sink for the simulated activation-context bookkeeping (keeps the
  // instrumentation tax from being optimized away).
  volatile uint64_t instrumentation_sink_ = 0;
};

}  // namespace karousos

#endif  // SRC_SERVER_SERVER_H_
