#include "src/server/kseg_codec.h"

#include <string>
#include <utility>

namespace karousos {

namespace {

// Encoder context: field-level codecs chosen by the stage set. The body is
// written to a scratch buffer first so the dictionaries (populated during the
// body pass, first-use order) can be serialized ahead of it.
class CompactEncoder {
 public:
  explicit CompactEncoder(const KsegCompression& c) : c_(c) {}

  // A 64-bit digest (hid/vid/tid/function/event/tag): dict ref or fixed64.
  void Id(uint64_t v) {
    if (c_.dict) {
      body_.WriteVarint(ids_.Ref(v));
    } else {
      body_.WriteFixed64(v);
    }
  }
  // A lane value: zigzag delta against the lane's running predecessor.
  void Lane(uint64_t v, uint64_t* prev) {
    if (c_.lanes) {
      WriteDelta(&body_, v, prev);
    } else {
      body_.WriteVarint(v);
    }
  }
  // A cross-reference rid, coded relative to its anchor (not a running lane:
  // each reference resets to its own anchor coordinate).
  void RelRid(uint64_t v, uint64_t anchor) {
    if (c_.lanes) {
      uint64_t prev = anchor;
      WriteDelta(&body_, v, &prev);
    } else {
      body_.WriteVarint(v);
    }
  }
  void Str(const std::string& s) {
    if (c_.dict) {
      body_.WriteVarint(strs_.Ref(s));
    } else {
      body_.WriteString(s);
    }
  }
  void Varint(uint64_t v) { body_.WriteVarint(v); }
  void Byte(uint8_t b) { body_.WriteByte(b); }
  void Bool(bool b) { body_.WriteBool(b); }

  // Value with dictionary-interned strings and map keys (plain serde
  // encoding when the dict stage is off).
  void Val(const Value& v) {
    if (!c_.dict) {
      body_.WriteValue(v);
      return;
    }
    body_.WriteByte(static_cast<uint8_t>(v.kind()));
    switch (v.kind()) {
      case Value::Kind::kNull:
        break;
      case Value::Kind::kBool:
        body_.WriteBool(v.AsBool());
        break;
      case Value::Kind::kInt:
        body_.WriteVarint(ZigzagEncode(v.AsInt()));
        break;
      case Value::Kind::kDouble: {
        double d = v.AsDouble();
        uint64_t bits;
        __builtin_memcpy(&bits, &d, sizeof(bits));
        body_.WriteFixed64(bits);
        break;
      }
      case Value::Kind::kString:
        Str(v.AsString());
        break;
      case Value::Kind::kList:
        body_.WriteVarint(v.AsList().size());
        for (const Value& item : v.AsList()) {
          Val(item);
        }
        break;
      case Value::Kind::kMap:
        body_.WriteVarint(v.AsMap().size());
        for (const auto& [key, item] : v.AsMap()) {
          Str(key);
          Val(item);
        }
        break;
    }
  }

  void Finish(ByteWriter* out) {
    if (c_.dict) {
      ids_.Serialize(out);
      strs_.Serialize(out);
    }
    out->WriteBytes(body_.bytes().data(), body_.size());
  }

 private:
  KsegCompression c_;
  U64DictBuilder ids_;
  StringDictBuilder strs_;
  ByteWriter body_;
};

// Decoder context: the exact inverse. Every accessor returns nullopt-style
// failure through `ok_`; callers bail on the first false.
class CompactDecoder {
 public:
  CompactDecoder(const uint8_t* data, size_t size, const KsegCompression& c)
      : in_(data, size), c_(c) {}

  bool Init() {
    if (!c_.dict) {
      return true;
    }
    auto ids = ReadU64Dict(&in_);
    if (!ids) {
      return false;
    }
    auto strs = ReadStringDict(&in_);
    if (!strs) {
      return false;
    }
    ids_ = std::move(*ids);
    strs_ = std::move(*strs);
    return true;
  }

  std::optional<uint64_t> Id() {
    if (!c_.dict) {
      return in_.ReadFixed64();
    }
    auto ref = in_.ReadVarint();
    if (!ref || *ref >= ids_.size()) {
      return std::nullopt;
    }
    return ids_[static_cast<size_t>(*ref)];
  }
  std::optional<uint64_t> Lane(uint64_t* prev) {
    return c_.lanes ? ReadDelta(&in_, prev) : in_.ReadVarint();
  }
  std::optional<uint64_t> RelRid(uint64_t anchor) {
    if (!c_.lanes) {
      return in_.ReadVarint();
    }
    uint64_t prev = anchor;
    return ReadDelta(&in_, &prev);
  }
  std::optional<std::string> Str() {
    if (!c_.dict) {
      return in_.ReadString();
    }
    auto ref = in_.ReadVarint();
    if (!ref || *ref >= strs_.size()) {
      return std::nullopt;
    }
    return strs_[static_cast<size_t>(*ref)];
  }
  std::optional<uint64_t> Varint() { return in_.ReadVarint(); }
  std::optional<uint8_t> Byte() { return in_.ReadByte(); }
  std::optional<bool> Bool() { return in_.ReadBool(); }

  std::optional<Value> Val() {
    if (!c_.dict) {
      return in_.ReadValue();
    }
    auto kind_byte = in_.ReadByte();
    if (!kind_byte || *kind_byte > static_cast<uint8_t>(Value::Kind::kMap)) {
      return std::nullopt;
    }
    switch (static_cast<Value::Kind>(*kind_byte)) {
      case Value::Kind::kNull:
        return Value();
      case Value::Kind::kBool: {
        auto b = in_.ReadBool();
        if (!b) {
          return std::nullopt;
        }
        return Value(*b);
      }
      case Value::Kind::kInt: {
        auto z = in_.ReadVarint();
        if (!z) {
          return std::nullopt;
        }
        return Value(ZigzagDecode(*z));
      }
      case Value::Kind::kDouble: {
        auto bits = in_.ReadFixed64();
        if (!bits) {
          return std::nullopt;
        }
        double d;
        __builtin_memcpy(&d, &*bits, sizeof(d));
        return Value(d);
      }
      case Value::Kind::kString: {
        auto s = Str();
        if (!s) {
          return std::nullopt;
        }
        return Value(std::move(*s));
      }
      case Value::Kind::kList: {
        auto n = in_.ReadVarint();
        if (!n || *n > in_.remaining()) {
          return std::nullopt;
        }
        ValueList items;
        items.reserve(static_cast<size_t>(*n));
        for (uint64_t i = 0; i < *n; ++i) {
          auto item = Val();
          if (!item) {
            return std::nullopt;
          }
          items.push_back(std::move(*item));
        }
        return Value(std::move(items));
      }
      case Value::Kind::kMap: {
        auto n = in_.ReadVarint();
        if (!n || *n > in_.remaining()) {
          return std::nullopt;
        }
        ValueMap m;
        for (uint64_t i = 0; i < *n; ++i) {
          auto key = Str();
          if (!key) {
            return std::nullopt;
          }
          auto item = Val();
          if (!item) {
            return std::nullopt;
          }
          m.emplace(std::move(*key), std::move(*item));
        }
        return Value(std::move(m));
      }
    }
    return std::nullopt;
  }

  size_t remaining() const { return in_.remaining(); }
  bool AtEnd() const { return in_.AtEnd(); }

 private:
  ByteReader in_;
  KsegCompression c_;
  std::vector<uint64_t> ids_;
  std::vector<std::string> strs_;
};

// --- Advice body, component by component ------------------------------------
// The component order and per-entry field order mirror the raw grammar in
// src/server/advice.cc exactly; only the field codecs differ.

void EncodeAdviceBody(const Advice& a, CompactEncoder* e) {
  e->Varint(a.tags.size());
  uint64_t prev_rid = 0;
  for (const auto& [rid, tag] : a.tags) {
    e->Lane(rid, &prev_rid);
    e->Id(tag);
  }

  e->Varint(a.handler_logs.size());
  prev_rid = 0;
  for (const auto& [rid, log] : a.handler_logs) {
    e->Lane(rid, &prev_rid);
    e->Varint(log.size());
    uint64_t prev_opnum = 0;
    for (const HandlerLogEntry& entry : log) {
      e->Byte(static_cast<uint8_t>(entry.kind));
      e->Id(entry.hid);
      e->Lane(entry.opnum, &prev_opnum);
      e->Id(entry.event);
      if (entry.kind != HandlerLogEntry::Kind::kEmit) {
        e->Id(entry.function);
      }
    }
  }

  e->Varint(a.var_logs.size());
  for (const auto& [vid, log] : a.var_logs) {
    e->Id(vid);
    e->Varint(log.size());
    uint64_t prev_op_rid = 0;
    uint64_t prev_op_opnum = 0;
    for (const auto& [op, entry] : log) {
      e->Lane(op.rid, &prev_op_rid);
      e->Id(op.hid);
      e->Lane(op.opnum, &prev_op_opnum);
      e->Byte(static_cast<uint8_t>(entry.kind));
      if (entry.kind == VarLogEntry::Kind::kWrite) {
        e->Val(entry.value);
      }
      // The dictating/overwritten op clusters near the entry's own request.
      e->RelRid(entry.prec.rid, op.rid);
      e->Id(entry.prec.hid);
      e->Varint(entry.prec.opnum);
    }
  }

  e->Varint(a.tx_logs.size());
  prev_rid = 0;
  for (const auto& [txn, log] : a.tx_logs) {
    e->Lane(txn.rid, &prev_rid);
    e->Id(txn.tid);
    e->Varint(log.size());
    uint64_t prev_opnum = 0;
    for (const TxOperation& op : log) {
      e->Byte(static_cast<uint8_t>(op.type));
      e->Id(op.hid);
      e->Lane(op.opnum, &prev_opnum);
      if (op.type == TxOpType::kPut) {
        e->Str(op.key);
        e->Val(op.put_value);
      } else if (op.type == TxOpType::kGet) {
        e->Str(op.key);
        e->Bool(op.get_found);
        if (op.get_found) {
          e->RelRid(op.get_from.rid, txn.rid);
          e->Id(op.get_from.tid);
          e->Varint(op.get_from.index);
        }
      }
    }
  }

  e->Varint(a.write_order.size());
  prev_rid = 0;
  for (const TxOpRef& w : a.write_order) {
    e->Lane(w.rid, &prev_rid);
    e->Id(w.tid);
    e->Varint(w.index);
  }

  e->Varint(a.response_emitted_by.size());
  prev_rid = 0;
  for (const auto& [rid, by] : a.response_emitted_by) {
    e->Lane(rid, &prev_rid);
    e->Id(by.first);
    e->Varint(by.second);
  }

  e->Varint(a.opcounts.size());
  prev_rid = 0;
  for (const auto& [key, count] : a.opcounts) {
    e->Lane(key.first, &prev_rid);
    e->Id(key.second);
    e->Varint(count);
  }

  e->Varint(a.nondet.size());
  prev_rid = 0;
  for (const auto& [op, record] : a.nondet) {
    e->Lane(op.rid, &prev_rid);
    e->Id(op.hid);
    e->Varint(op.opnum);
    e->Byte(static_cast<uint8_t>(record.kind));
    if (record.kind == NondetRecord::Kind::kValue) {
      e->Val(record.value);
    }
  }
}

std::optional<Advice> DecodeAdviceBody(CompactDecoder* d) {
  Advice a;

  auto n_tags = d->Varint();
  if (!n_tags) {
    return std::nullopt;
  }
  uint64_t prev_rid = 0;
  for (uint64_t i = 0; i < *n_tags; ++i) {
    auto rid = d->Lane(&prev_rid);
    auto tag = d->Id();
    if (!rid || !tag) {
      return std::nullopt;
    }
    a.tags[*rid] = *tag;
  }

  auto n_hls = d->Varint();
  if (!n_hls) {
    return std::nullopt;
  }
  prev_rid = 0;
  for (uint64_t i = 0; i < *n_hls; ++i) {
    auto rid = d->Lane(&prev_rid);
    auto n = d->Varint();
    if (!rid || !n || *n > d->remaining()) {
      return std::nullopt;
    }
    std::vector<HandlerLogEntry> log;
    log.reserve(static_cast<size_t>(*n));
    uint64_t prev_opnum = 0;
    for (uint64_t j = 0; j < *n; ++j) {
      HandlerLogEntry entry;
      auto kind = d->Byte();
      if (!kind || *kind > 2) {
        return std::nullopt;
      }
      auto hid = d->Id();
      auto opnum = d->Lane(&prev_opnum);
      auto event = d->Id();
      if (!hid || !opnum || *opnum > kOpNumInf || !event) {
        return std::nullopt;
      }
      entry.kind = static_cast<HandlerLogEntry::Kind>(*kind);
      entry.hid = *hid;
      entry.opnum = static_cast<OpNum>(*opnum);
      entry.event = *event;
      if (entry.kind != HandlerLogEntry::Kind::kEmit) {
        auto function = d->Id();
        if (!function) {
          return std::nullopt;
        }
        entry.function = *function;
      }
      log.push_back(entry);
    }
    a.handler_logs[*rid] = std::move(log);
  }

  auto n_vls = d->Varint();
  if (!n_vls) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < *n_vls; ++i) {
    auto vid = d->Id();
    auto n = d->Varint();
    if (!vid || !n || *n > d->remaining()) {
      return std::nullopt;
    }
    VarLog log;
    uint64_t prev_op_rid = 0;
    uint64_t prev_op_opnum = 0;
    for (uint64_t j = 0; j < *n; ++j) {
      auto op_rid = d->Lane(&prev_op_rid);
      auto op_hid = d->Id();
      auto op_opnum = d->Lane(&prev_op_opnum);
      auto kind = d->Byte();
      if (!op_rid || !op_hid || !op_opnum || *op_opnum > kOpNumInf || !kind || *kind > 1) {
        return std::nullopt;
      }
      OpRef op{*op_rid, *op_hid, static_cast<OpNum>(*op_opnum)};
      VarLogEntry entry;
      entry.kind = static_cast<VarLogEntry::Kind>(*kind);
      if (entry.kind == VarLogEntry::Kind::kWrite) {
        auto value = d->Val();
        if (!value) {
          return std::nullopt;
        }
        entry.value = std::move(*value);
      }
      auto prec_rid = d->RelRid(op.rid);
      auto prec_hid = d->Id();
      auto prec_opnum = d->Varint();
      if (!prec_rid || !prec_hid || !prec_opnum || *prec_opnum > kOpNumInf) {
        return std::nullopt;
      }
      entry.prec = OpRef{*prec_rid, *prec_hid, static_cast<OpNum>(*prec_opnum)};
      log.emplace_hint(log.end(), op, std::move(entry));
    }
    a.var_logs[*vid] = std::move(log);
  }

  auto n_txls = d->Varint();
  if (!n_txls) {
    return std::nullopt;
  }
  prev_rid = 0;
  for (uint64_t i = 0; i < *n_txls; ++i) {
    auto rid = d->Lane(&prev_rid);
    auto tid = d->Id();
    auto n = d->Varint();
    if (!rid || !tid || !n || *n > d->remaining()) {
      return std::nullopt;
    }
    TransactionLog log;
    log.reserve(static_cast<size_t>(*n));
    uint64_t prev_opnum = 0;
    for (uint64_t j = 0; j < *n; ++j) {
      TxOperation op;
      auto type = d->Byte();
      if (!type || *type > static_cast<uint8_t>(TxOpType::kGet)) {
        return std::nullopt;
      }
      auto hid = d->Id();
      auto opnum = d->Lane(&prev_opnum);
      if (!hid || !opnum || *opnum > kOpNumInf) {
        return std::nullopt;
      }
      op.type = static_cast<TxOpType>(*type);
      op.hid = *hid;
      op.opnum = static_cast<OpNum>(*opnum);
      if (op.type == TxOpType::kPut) {
        auto key = d->Str();
        auto value = d->Val();
        if (!key || !value) {
          return std::nullopt;
        }
        op.key = std::move(*key);
        op.put_value = std::move(*value);
      } else if (op.type == TxOpType::kGet) {
        auto key = d->Str();
        auto found = d->Bool();
        if (!key || !found) {
          return std::nullopt;
        }
        op.key = std::move(*key);
        op.get_found = *found;
        if (op.get_found) {
          auto from_rid = d->RelRid(*rid);
          auto from_tid = d->Id();
          auto from_index = d->Varint();
          if (!from_rid || !from_tid || !from_index) {
            return std::nullopt;
          }
          op.get_from = TxOpRef{*from_rid, *from_tid, static_cast<uint32_t>(*from_index)};
        }
      }
      log.push_back(std::move(op));
    }
    a.tx_logs[TxnKey{*rid, *tid}] = std::move(log);
  }

  auto n_wo = d->Varint();
  if (!n_wo || *n_wo > d->remaining()) {
    return std::nullopt;
  }
  a.write_order.reserve(static_cast<size_t>(*n_wo));
  prev_rid = 0;
  for (uint64_t i = 0; i < *n_wo; ++i) {
    auto rid = d->Lane(&prev_rid);
    auto tid = d->Id();
    auto index = d->Varint();
    if (!rid || !tid || !index) {
      return std::nullopt;
    }
    a.write_order.push_back(TxOpRef{*rid, *tid, static_cast<uint32_t>(*index)});
  }

  auto n_reb = d->Varint();
  if (!n_reb) {
    return std::nullopt;
  }
  prev_rid = 0;
  for (uint64_t i = 0; i < *n_reb; ++i) {
    auto rid = d->Lane(&prev_rid);
    auto hid = d->Id();
    auto opnum = d->Varint();
    if (!rid || !hid || !opnum) {
      return std::nullopt;
    }
    a.response_emitted_by[*rid] = {*hid, static_cast<OpNum>(*opnum)};
  }

  auto n_oc = d->Varint();
  if (!n_oc) {
    return std::nullopt;
  }
  prev_rid = 0;
  for (uint64_t i = 0; i < *n_oc; ++i) {
    auto rid = d->Lane(&prev_rid);
    auto hid = d->Id();
    auto count = d->Varint();
    if (!rid || !hid || !count) {
      return std::nullopt;
    }
    a.opcounts[{*rid, *hid}] = static_cast<OpNum>(*count);
  }

  auto n_nd = d->Varint();
  if (!n_nd) {
    return std::nullopt;
  }
  prev_rid = 0;
  for (uint64_t i = 0; i < *n_nd; ++i) {
    auto rid = d->Lane(&prev_rid);
    auto hid = d->Id();
    auto opnum = d->Varint();
    auto kind = d->Byte();
    if (!rid || !hid || !opnum || *opnum > kOpNumInf || !kind || *kind > 1) {
      return std::nullopt;
    }
    NondetRecord record;
    record.kind = static_cast<NondetRecord::Kind>(*kind);
    if (record.kind == NondetRecord::Kind::kValue) {
      auto value = d->Val();
      if (!value) {
        return std::nullopt;
      }
      record.value = std::move(*value);
    }
    a.nondet.emplace(OpRef{*rid, *hid, static_cast<OpNum>(*opnum)}, std::move(record));
  }

  return a;
}

void EncodeImports(const ContinuityImports& imports, CompactEncoder* e) {
  e->Varint(imports.tx_ops.size());
  uint64_t prev_rid = 0;
  for (const ContinuityImports::TxOpImport& imp : imports.tx_ops) {
    e->Lane(imp.ref.rid, &prev_rid);
    e->Id(imp.ref.tid);
    e->Varint(imp.ref.index);
    e->Bool(imp.txn_present);
    e->Bool(imp.op_present);
    e->Byte(imp.type);
    e->Str(imp.key);
    e->Val(imp.value);
    e->Id(imp.hid);
    e->Varint(imp.opnum);
  }
  e->Varint(imports.var_entries.size());
  prev_rid = 0;
  for (const ContinuityImports::VarImport& imp : imports.var_entries) {
    e->Id(imp.vid);
    e->Lane(imp.op.rid, &prev_rid);
    e->Id(imp.op.hid);
    e->Varint(imp.op.opnum);
    e->Bool(imp.present);
    e->Byte(imp.kind);
    e->Val(imp.value);
  }
}

std::optional<ContinuityImports> DecodeImports(CompactDecoder* d) {
  ContinuityImports imports;
  auto tx_count = d->Varint();
  if (!tx_count || *tx_count > d->remaining()) {
    return std::nullopt;
  }
  imports.tx_ops.reserve(static_cast<size_t>(*tx_count));
  uint64_t prev_rid = 0;
  for (uint64_t i = 0; i < *tx_count; ++i) {
    ContinuityImports::TxOpImport imp;
    auto rid = d->Lane(&prev_rid);
    auto tid = d->Id();
    auto index = d->Varint();
    auto txn_present = d->Bool();
    auto op_present = d->Bool();
    auto type = d->Byte();
    auto key = d->Str();
    auto value = d->Val();
    auto hid = d->Id();
    auto opnum = d->Varint();
    if (!rid || !tid || !index || !txn_present || !op_present || !type || !key || !value ||
        !hid || !opnum) {
      return std::nullopt;
    }
    imp.ref = TxOpRef{*rid, *tid, static_cast<uint32_t>(*index)};
    imp.txn_present = *txn_present;
    imp.op_present = *op_present;
    imp.type = *type;
    imp.key = std::move(*key);
    imp.value = std::move(*value);
    imp.hid = *hid;
    imp.opnum = static_cast<OpNum>(*opnum);
    imports.tx_ops.push_back(std::move(imp));
  }
  auto var_count = d->Varint();
  if (!var_count || *var_count > d->remaining()) {
    return std::nullopt;
  }
  imports.var_entries.reserve(static_cast<size_t>(*var_count));
  prev_rid = 0;
  for (uint64_t i = 0; i < *var_count; ++i) {
    ContinuityImports::VarImport imp;
    auto vid = d->Id();
    auto rid = d->Lane(&prev_rid);
    auto hid = d->Id();
    auto opnum = d->Varint();
    auto present = d->Bool();
    auto kind = d->Byte();
    auto value = d->Val();
    if (!vid || !rid || !hid || !opnum || *opnum > kOpNumInf || !present || !kind || !value) {
      return std::nullopt;
    }
    imp.vid = *vid;
    imp.op = OpRef{*rid, *hid, static_cast<OpNum>(*opnum)};
    imp.present = *present;
    imp.kind = *kind;
    imp.value = std::move(*value);
    imports.var_entries.push_back(std::move(imp));
  }
  return imports;
}

}  // namespace

void EncodeCompactTracePayload(const std::vector<TraceEvent>& events, const KsegCompression& c,
                               ByteWriter* out) {
  CompactEncoder e(c);
  e.Varint(events.size());
  uint64_t prev_rid = 0;
  for (const TraceEvent& ev : events) {
    e.Byte(static_cast<uint8_t>(ev.kind));
    e.Lane(ev.rid, &prev_rid);
    e.Val(ev.payload);
  }
  e.Finish(out);
}

std::optional<std::vector<TraceEvent>> DecodeCompactTracePayload(const uint8_t* data, size_t size,
                                                                 const KsegCompression& c) {
  CompactDecoder d(data, size, c);
  if (!d.Init()) {
    return std::nullopt;
  }
  auto n = d.Varint();
  if (!n || *n > d.remaining() + 1) {
    return std::nullopt;
  }
  std::vector<TraceEvent> events;
  events.reserve(static_cast<size_t>(*n));
  uint64_t prev_rid = 0;
  for (uint64_t i = 0; i < *n; ++i) {
    auto kind = d.Byte();
    auto rid = d.Lane(&prev_rid);
    auto payload = d.Val();
    if (!kind || *kind > 1 || !rid || !payload) {
      return std::nullopt;
    }
    events.push_back(
        TraceEvent{static_cast<TraceEvent::Kind>(*kind), *rid, std::move(*payload)});
  }
  if (!d.AtEnd()) {
    return std::nullopt;
  }
  return events;
}

void EncodeCompactAdvicePayload(const Advice& advice, const ContinuityImports& imports,
                                const KsegCompression& c, ByteWriter* out) {
  CompactEncoder e(c);
  EncodeAdviceBody(advice, &e);
  EncodeImports(imports, &e);
  e.Finish(out);
}

std::optional<AdviceSegmentPayload> DecodeCompactAdvicePayload(const uint8_t* data, size_t size,
                                                               const KsegCompression& c) {
  CompactDecoder d(data, size, c);
  if (!d.Init()) {
    return std::nullopt;
  }
  auto advice = DecodeAdviceBody(&d);
  if (!advice) {
    return std::nullopt;
  }
  auto imports = DecodeImports(&d);
  if (!imports || !d.AtEnd()) {
    return std::nullopt;
  }
  AdviceSegmentPayload out;
  out.advice = std::move(*advice);
  out.imports = std::move(*imports);
  return out;
}

}  // namespace karousos
