// Programs in the KEM model (§3): a deterministic initialization function
// plus a table of named handler functions. The function table is the C++
// analogue of the deployed source code — both the server and the verifier
// hold the same Program, mirroring the premise that the verifier knows the
// golden-master code and re-executes it.
#ifndef SRC_KEM_PROGRAM_H_
#define SRC_KEM_PROGRAM_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/digest.h"
#include "src/common/ids.h"
#include "src/kem/ctx.h"

namespace karousos {

using HandlerFn = std::function<void(Ctx&)>;

// The event type that user requests arrive on: handlers registered for this
// event during initialization are the request handlers (§3).
inline constexpr std::string_view kRequestEventName = "request";

inline uint64_t EventId(std::string_view name) { return DigestOf(name); }

struct FunctionDef {
  FunctionId id = 0;
  std::string name;
  HandlerFn fn;
};

class Program {
 public:
  // Registers a named handler function. Names must be unique.
  void DefineFunction(std::string_view name, HandlerFn fn);

  // Sets the initialization function (runs as pseudo-handler I, §3).
  void SetInit(HandlerFn init) { init_ = std::move(init); }

  const HandlerFn& init() const { return init_; }
  const FunctionDef* FindFunction(FunctionId id) const;
  const FunctionDef* FindFunctionByName(std::string_view name) const;
  const std::map<FunctionId, FunctionDef>& functions() const { return functions_; }

 private:
  HandlerFn init_;
  std::map<FunctionId, FunctionDef> functions_;
};

// Computes a handler id from its structural coordinates (§5, C.1.2):
// hid = H(functionID, parent hid, opnum of the activating operation).
// Request handlers use parent = kNoHandler, opnum = 0; the initialization
// pseudo-handler has the fixed id kInitHandlerId.
inline HandlerId ComputeHandlerId(FunctionId function, HandlerId parent, OpNum activating_opnum) {
  return DigestOfInts(function, parent, activating_opnum);
}

}  // namespace karousos

#endif  // SRC_KEM_PROGRAM_H_
