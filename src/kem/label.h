// Handler labels (§5, "Testing A, computing the activator relation").
//
// A handler's label is parent_label/num, where num is the number of children
// the parent had already activated. Two handlers of the same request are
// ordered by the activation partial order A iff one label is a prefix of the
// other. Labels do not correspond across requests; they exist purely to make
// the A test and activator() computation O(depth).
#ifndef SRC_KEM_LABEL_H_
#define SRC_KEM_LABEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.h"

namespace karousos {

using HandlerLabel = std::vector<uint32_t>;

// True iff `ancestor` is a strict or equal prefix of `descendant`.
inline bool IsLabelPrefix(const HandlerLabel& ancestor, const HandlerLabel& descendant) {
  if (ancestor.size() > descendant.size()) {
    return false;
  }
  for (size_t i = 0; i < ancestor.size(); ++i) {
    if (ancestor[i] != descendant[i]) {
      return false;
    }
  }
  return true;
}

std::string LabelToString(const HandlerLabel& label);

// R-order test over operation coordinates plus their handler labels
// (Definition 7). `init` coordinates (rid == kInitRequestId) R-precede every
// operation of every request, because the initialization pseudo-handler I is
// the activator of all request handlers (§3).
//
// Preconditions: when a.rid == b.rid and the hids differ, the caller supplies
// the two handlers' labels from that request's label map.
inline bool RPrecedes(const OpRef& a, const HandlerLabel& label_a, const OpRef& b,
                      const HandlerLabel& label_b) {
  if (a.rid == kInitRequestId && b.rid != kInitRequestId) {
    return true;
  }
  if (a.rid != b.rid) {
    return false;
  }
  if (a.hid == b.hid) {
    return a.opnum < b.opnum;
  }
  return IsLabelPrefix(label_a, label_b);
}

inline bool RConcurrent(const OpRef& a, const HandlerLabel& label_a, const OpRef& b,
                        const HandlerLabel& label_b) {
  return !RPrecedes(a, label_a, b, label_b) && !RPrecedes(b, label_b, a, label_a);
}

// Interning store for handler labels. The collector's hot path used to copy a
// HandlerLabel vector into every tracked variable on every write (the
// variable's last-write label, consulted by the R-concurrency test); the
// store keeps each activation's label exactly once and hands out dense
// 32-bit refs instead. Ref 0 is always the empty label (the init
// pseudo-handler / per-request root), so value-initialized refs are valid.
class LabelStore {
 public:
  using Ref = uint32_t;
  static constexpr Ref kEmpty = 0;

  LabelStore() { labels_.emplace_back(); }

  // Interns parent/num (§5's label construction) and returns its ref.
  Ref AppendChild(Ref parent, uint32_t num);

  const HandlerLabel& Get(Ref ref) const { return labels_[ref]; }
  size_t size() const { return labels_.size(); }

 private:
  std::vector<HandlerLabel> labels_;
};

}  // namespace karousos

#endif  // SRC_KEM_LABEL_H_
