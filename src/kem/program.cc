#include "src/kem/program.h"

#include <cstdio>
#include <cstdlib>

namespace karousos {

void Program::DefineFunction(std::string_view name, HandlerFn fn) {
  FunctionDef def;
  def.id = DigestOf(name);
  def.name = std::string(name);
  def.fn = std::move(fn);
  auto [it, inserted] = functions_.emplace(def.id, std::move(def));
  if (!inserted) {
    std::fprintf(stderr, "karousos: duplicate function definition '%s'\n", it->second.name.c_str());
    std::abort();
  }
}

const FunctionDef* Program::FindFunction(FunctionId id) const {
  auto it = functions_.find(id);
  return it == functions_.end() ? nullptr : &it->second;
}

const FunctionDef* Program::FindFunctionByName(std::string_view name) const {
  return FindFunction(DigestOf(name));
}

}  // namespace karousos
