// The application-facing execution context: the KEM surface (§3) that
// handler code is written against.
//
// Application handlers are C++ closures receiving a Ctx&. The same handler
// code runs in three settings:
//   * online at the (instrumented or plain) server, where the lane width is
//     1 and every Ctx operation may additionally collect advice (§4, §5);
//   * at the verifier during grouped re-execution, where the lane width is
//     the size of the re-execution group and values are SIMD-on-demand
//     multivalues (Figure 18);
//   * at the sequential-replay baseline (width 1, fed from the trace).
//
// Every Ctx operation that the paper counts as a handler "operation"
// consumes an opnum: Emit/RegisterHandler/UnregisterHandler (handler ops),
// TxStart/TxGet/TxPut/TxCommit/TxAbort (external state ops), DeclareVar/
// ReadVar/WriteVar on tracked variables (annotated ops), and Random (recorded
// non-determinism). Branch and Respond do not consume opnums; Respond is the
// boundary event recorded in responseEmittedBy.
#ifndef SRC_KEM_CTX_H_
#define SRC_KEM_CTX_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/ids.h"
#include "src/common/value.h"
#include "src/multivalue/multivalue.h"

namespace karousos {

// Scope of a tracked variable (§5 "loggable" variables; annotations C.1.1).
enum class VarScope : uint8_t {
  kGlobal,     // One variable shared by all requests (e.g. the MOTD hashmap).
  kRequest,    // One variable per request (ids derived from the request id);
               // used for per-request accumulators shared across a request's
               // concurrent child handlers.
  kUntracked,  // NOT annotated: no logging, no version tracking. Sound only
               // if every access is R-ordered (§5); the ablation tests
               // exercise what happens when that assumption is violated.
};

// Handle onto an open transaction (per-lane transaction ids internally).
struct TxHandle {
  uint32_t slot = 0;
  bool valid = false;
};

// Result of a transactional read.
struct TxGetResult {
  MultiValue value;   // Null lanes where not found.
  MultiValue found;   // Boolean lanes.
  bool conflict = false;  // No-wait lock conflict (uniform across lanes).
};

class Ctx {
 public:
  virtual ~Ctx() = default;

  // ---- Request / event data -------------------------------------------
  // Payload of the event that activated this handler (the request input for
  // request handlers).
  virtual const MultiValue& Input() const = 0;

  // ---- Tracked program variables (§4.2, Figures 13/20/21) --------------
  // Declares a variable (the OnInitialize annotation). Declaring an existing
  // variable id aborts: ids must be unique per execution.
  virtual void DeclareVar(std::string_view name, VarScope scope) = 0;
  // Reads / writes route through the OnRead / OnWrite annotations.
  virtual MultiValue ReadVar(std::string_view name, VarScope scope) = 0;
  virtual void WriteVar(std::string_view name, VarScope scope, const MultiValue& value) = 0;

  // ---- Control flow -----------------------------------------------------
  // Evaluates the condition's truthiness. The condition must be uniform
  // across the group (diverging control flow within a re-execution group is
  // a REJECT; online it feeds the control-flow digest, §5).
  virtual bool Branch(const MultiValue& condition) = 0;

  // ---- Handler operations (§3, §4.1) ------------------------------------
  virtual void Emit(std::string_view event, const MultiValue& payload) = 0;
  virtual void RegisterHandler(std::string_view event, std::string_view function) = 0;
  virtual void UnregisterHandler(std::string_view event, std::string_view function) = 0;

  // ---- Transactional state (§4.4) ----------------------------------------
  virtual TxHandle TxStart() = 0;
  virtual TxGetResult TxGet(TxHandle tx, const MultiValue& key) = 0;
  // Returns false on lock conflict (the application should TxAbort and take
  // its retry path).
  virtual bool TxPut(TxHandle tx, const MultiValue& key, const MultiValue& value) = 0;
  // Returns true iff the transaction committed.
  virtual bool TxCommit(TxHandle tx) = 0;
  virtual void TxAbort(TxHandle tx) = 0;
  // Transactions may be split across multiple (non-concurrent) handlers
  // (§4.4): TxIdValue turns a handle into plain data an event payload can
  // carry, and TxResume re-attaches to that transaction in a later handler.
  virtual MultiValue TxIdValue(TxHandle tx) = 0;
  virtual TxHandle TxResume(const MultiValue& tid_value) = 0;

  // ---- Application computation ---------------------------------------------
  // Deterministic app work (`units` simulated statements/calls over the seed
  // value), standing in for the real template rendering / parsing the paper's
  // applications do. Implementations differ in *cost*, never in result:
  //   * the instrumented server pays a per-call tax for propagating the
  //     activator id through the call graph (§5 "Maintaining the activation
  //     partial order ... a significant source of runtime overheads");
  //   * the unmodified server runs it plain;
  //   * the verifier runs it once per distinct operand in the group
  //     (SIMD-on-demand dedup).
  virtual MultiValue AppWork(const MultiValue& seed, uint32_t units) = 0;

  // ---- Non-determinism (§5) ----------------------------------------------
  // A recorded non-deterministic value: fresh online, replayed at audit.
  virtual MultiValue Random() = 0;

  // ---- Response ----------------------------------------------------------
  // Sends the response for this request. At most one response per request.
  virtual void Respond(const MultiValue& body) = 0;
};

}  // namespace karousos

#endif  // SRC_KEM_CTX_H_
