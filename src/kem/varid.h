// Variable-id derivation, shared verbatim by the server and the verifier:
// both sides must map (name, scope, request) to the same VarId or variable
// logs could never line up.
#ifndef SRC_KEM_VARID_H_
#define SRC_KEM_VARID_H_

#include <string_view>

#include "src/common/digest.h"
#include "src/common/ids.h"
#include "src/kem/ctx.h"

namespace karousos {

inline VarId ResolveVarId(std::string_view name, VarScope scope, RequestId rid) {
  Digest d;
  switch (scope) {
    case VarScope::kGlobal:
      d.Update(uint64_t{1});
      break;
    case VarScope::kRequest:
      d.Update(uint64_t{2});
      d.Update(rid);
      break;
    case VarScope::kUntracked:
      d.Update(uint64_t{3});
      break;
  }
  d.Update(name);
  return d.Finish();
}

}  // namespace karousos

#endif  // SRC_KEM_VARID_H_
