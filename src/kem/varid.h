// Variable-id derivation, shared verbatim by the server and the verifier:
// both sides must map (name, scope, request) to the same VarId or variable
// logs could never line up.
#ifndef SRC_KEM_VARID_H_
#define SRC_KEM_VARID_H_

#include <string_view>

#include "src/common/digest.h"
#include "src/common/ids.h"
#include "src/kem/ctx.h"

namespace karousos {

inline VarId ResolveVarId(std::string_view name, VarScope scope, RequestId rid) {
  Digest d;
  switch (scope) {
    case VarScope::kGlobal:
      d.Update(uint64_t{1});
      break;
    case VarScope::kRequest:
      d.Update(uint64_t{2});
      d.Update(rid);
      break;
    case VarScope::kUntracked:
      d.Update(uint64_t{3});
      break;
  }
  d.Update(name);
  return d.Finish();
}

// Memoized ResolveVarId for the collector's per-access hot path. Handlers
// name the same few variables over and over; the digest is recomputed only
// when (name, scope, rid-for-request-scope) misses the cache. Produces
// bit-identical VarIds to ResolveVarId — the ids are shared with the
// verifier, so this must never diverge.
class VarIdCache {
 public:
  VarId Resolve(std::string_view name, VarScope scope, RequestId rid) {
    // Request-scoped names salt with the rid (their ids differ per request);
    // the other scopes ignore it.
    uint64_t salt = static_cast<uint64_t>(scope) + 1;
    if (scope == VarScope::kRequest) {
      salt = HashMix64(salt, rid);
    }
    return cache_.Get(name, salt, [&] { return ResolveVarId(name, scope, rid); });
  }

 private:
  NameDigestCache cache_;
};

}  // namespace karousos

#endif  // SRC_KEM_VARID_H_
