#include "src/kem/label.h"

#include <sstream>

namespace karousos {

std::string LabelToString(const HandlerLabel& label) {
  std::ostringstream out;
  out << "/";
  for (size_t i = 0; i < label.size(); ++i) {
    if (i > 0) {
      out << "/";
    }
    out << label[i];
  }
  return out.str();
}

LabelStore::Ref LabelStore::AppendChild(Ref parent, uint32_t num) {
  // Build the child from the parent in place: reserve exact size so the one
  // copy this label ever needs happens here, not per variable write.
  const HandlerLabel& parent_label = labels_[parent];
  HandlerLabel child;
  child.reserve(parent_label.size() + 1);
  child.assign(parent_label.begin(), parent_label.end());
  child.push_back(num);
  labels_.push_back(std::move(child));
  return static_cast<Ref>(labels_.size() - 1);
}

}  // namespace karousos
