#include "src/kem/label.h"

#include <sstream>

namespace karousos {

std::string LabelToString(const HandlerLabel& label) {
  std::ostringstream out;
  out << "/";
  for (size_t i = 0; i < label.size(); ++i) {
    if (i > 0) {
      out << "/";
    }
    out << label[i];
  }
  return out.str();
}

}  // namespace karousos
