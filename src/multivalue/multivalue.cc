#include "src/multivalue/multivalue.h"

#include <sstream>

namespace karousos {

MultiValue MultiValue::Expanded(std::vector<Value> lanes) {
  MultiValue mv;
  if (lanes.empty()) {
    return mv;
  }
  bool uniform = true;
  for (size_t i = 1; i < lanes.size(); ++i) {
    if (!(lanes[i] == lanes[0])) {
      uniform = false;
      break;
    }
  }
  if (uniform) {
    mv.collapsed_ = std::move(lanes[0]);
    return mv;
  }
  mv.lanes_ = std::move(lanes);
  return mv;
}

MultiValue MultiValue::Map(const MultiValue& a, const std::function<Value(const Value&)>& f) {
  if (a.collapsed()) {
    return MultiValue(f(a.collapsed_));
  }
  // SIMD-on-demand: apply f once per *distinct* lane value. Groups routinely
  // contain many lanes carrying the same operand (identical requests fed the
  // same dictating writes); the deduplicated evaluation is where batched
  // re-execution gets its speedup (§2.3).
  std::map<Value, Value> memo;
  std::vector<Value> out;
  out.reserve(a.lanes_.size());
  for (const Value& lane : a.lanes_) {
    auto it = memo.find(lane);
    if (it == memo.end()) {
      it = memo.emplace(lane, f(lane)).first;
    }
    out.push_back(it->second);
  }
  return Expanded(std::move(out));
}

MultiValue MultiValue::Zip(const MultiValue& a, const MultiValue& b,
                           const std::function<Value(const Value&, const Value&)>& f) {
  if (a.collapsed() && b.collapsed()) {
    return MultiValue(f(a.collapsed_, b.collapsed_));
  }
  size_t width = a.collapsed() ? b.lanes_.size() : a.lanes_.size();
  std::vector<Value> out;
  out.reserve(width);
  for (size_t i = 0; i < width; ++i) {
    out.push_back(f(a.Lane(i), b.Lane(i)));
  }
  return Expanded(std::move(out));
}

std::string MultiValue::ToString() const {
  if (collapsed()) {
    return collapsed_.ToString();
  }
  std::ostringstream out;
  out << "mv<";
  for (size_t i = 0; i < lanes_.size(); ++i) {
    if (i > 0) {
      out << "|";
    }
    out << lanes_[i].ToString();
  }
  out << ">";
  return out.str();
}

MultiValue MvAdd(const MultiValue& a, const MultiValue& b) {
  return MultiValue::Zip(a, b, [](const Value& x, const Value& y) {
    return Value(x.IntOr(0) + y.IntOr(0));
  });
}

MultiValue MvEq(const MultiValue& a, const MultiValue& b) {
  return MultiValue::Zip(a, b, [](const Value& x, const Value& y) { return Value(x == y); });
}

MultiValue MvConcat(const MultiValue& a, const MultiValue& b) {
  return MultiValue::Zip(a, b, [](const Value& x, const Value& y) {
    return Value(x.StringOrToString() + y.StringOrToString());
  });
}

}  // namespace karousos
