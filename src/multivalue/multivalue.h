// SIMD-on-demand multivalues (§2.3, §5).
//
// During batched re-execution the verifier runs each handler *once* for a
// whole group of requests. Data that is identical across the group is kept
// collapsed as a single Value; data that differs is expanded into a
// per-request vector. Operations are applied element-wise and the result
// re-collapses when all lanes agree — this is the "SIMD-on-demand" technique
// Karousos borrows from Orochi. During online execution at the server the
// group width is 1, so every multivalue is collapsed and the same application
// code runs unchanged.
#ifndef SRC_MULTIVALUE_MULTIVALUE_H_
#define SRC_MULTIVALUE_MULTIVALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace karousos {

class MultiValue {
 public:
  // Collapsed null.
  MultiValue() = default;
  // Collapsed scalar.
  MultiValue(Value v) : collapsed_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  MultiValue(int64_t v) : collapsed_(Value(v)) {}    // NOLINT(google-explicit-constructor)
  MultiValue(int v) : collapsed_(Value(v)) {}        // NOLINT(google-explicit-constructor)
  MultiValue(bool v) : collapsed_(Value(v)) {}       // NOLINT(google-explicit-constructor)
  MultiValue(const char* v) : collapsed_(Value(v)) {}          // NOLINT
  MultiValue(std::string v) : collapsed_(Value(std::move(v))) {}  // NOLINT

  // Expanded vector of per-lane values. Collapses eagerly when all lanes are
  // equal (the invariant: an expanded MultiValue has >= 2 distinct lanes or
  // was built from fewer than 1 lane... it never stores an all-equal vector).
  static MultiValue Expanded(std::vector<Value> lanes);

  bool collapsed() const { return lanes_.empty(); }
  size_t lane_count_or_one() const { return collapsed() ? 1 : lanes_.size(); }

  // Lane access: for a collapsed multivalue every lane is the single value.
  const Value& Lane(size_t i) const { return collapsed() ? collapsed_ : lanes_[i]; }
  const Value& CollapsedValue() const { return collapsed_; }

  // True iff collapsed and equal across lanes trivially; callers that require
  // group-uniform data (e.g. Branch conditions) use TryCollapse.
  bool UniformAcross(size_t width) const { return collapsed() || lanes_.size() == width; }

  // Element-wise unary / binary application. Width rules: collapsed op
  // collapsed -> collapsed; otherwise widths must agree (or one side is
  // collapsed and broadcast).
  static MultiValue Map(const MultiValue& a, const std::function<Value(const Value&)>& f);
  static MultiValue Zip(const MultiValue& a, const MultiValue& b,
                        const std::function<Value(const Value&, const Value&)>& f);

  // Structural equality (collapsed(x) == expanded([x,x]) is impossible by the
  // eager-collapse invariant, so representation equality is value equality).
  friend bool operator==(const MultiValue& a, const MultiValue& b) {
    return a.collapsed_ == b.collapsed_ && a.lanes_ == b.lanes_;
  }
  friend bool operator!=(const MultiValue& a, const MultiValue& b) { return !(a == b); }

  std::string ToString() const;

 private:
  Value collapsed_;           // Valid iff lanes_ empty.
  std::vector<Value> lanes_;  // Expanded representation.
};

// Arithmetic and logic helpers used by application code. Integer ops treat
// non-int lanes as 0 (JavaScript-ish permissiveness keeps app code short).
MultiValue MvAdd(const MultiValue& a, const MultiValue& b);
MultiValue MvEq(const MultiValue& a, const MultiValue& b);
MultiValue MvConcat(const MultiValue& a, const MultiValue& b);

}  // namespace karousos

#endif  // SRC_MULTIVALUE_MULTIVALUE_H_
