// Attack gallery: a misbehaving server tries six classes of deception
// against the wiki application; the verifier must reject all of them while
// still accepting the honest run. This is the executable version of §4.3's
// threat analysis.
//
//   ./build/examples/attack_gallery
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/audit/audit.h"
#include "src/workload/workload.h"

using namespace karousos;

int main() {
  AppSpec app = MakeWikiApp();
  WorkloadConfig wl;
  wl.app = "wiki";
  wl.kind = WorkloadKind::kWikiMix;
  wl.requests = 120;
  wl.connections = 8;
  ServerConfig config;
  config.concurrency = 8;
  Server server(*app.program, config);
  ServerRunResult honest = server.Run(GenerateWorkload(wl));

  {
    AuditResult audit = AuditOnly(app, honest.trace, honest.advice, config.isolation);
    std::printf("%-44s %s\n", "honest server:",
                audit.accepted ? "ACCEPTED (as it must be)" : "REJECTED (BUG!)");
    if (!audit.accepted) {
      std::printf("  !! %s\n", audit.reason.c_str());
      return 1;
    }
  }

  struct Attack {
    const char* name;
    std::function<void(Trace&, Advice&)> apply;
  };
  std::vector<Attack> attacks = {
      {"forge a response body", [](Trace& trace, Advice&) {
         for (TraceEvent& ev : trace.events) {
           if (ev.kind == TraceEvent::Kind::kResponse) {
             ev.payload = MakeMap({{"html", "<h1>hacked</h1>"}});
             break;
           }
         }
       }},
      {"poison a logged variable value", [](Trace&, Advice& advice) {
         for (auto& [vid, log] : advice.var_logs) {
           for (auto& [op, entry] : log) {
             if (entry.kind == VarLogEntry::Kind::kWrite) {
               entry.value = Value("poison");
               return;
             }
           }
         }
       }},
      {"smuggle a ghost write into a variable log", [](Trace&, Advice& advice) {
         VarLogEntry ghost;
         ghost.kind = VarLogEntry::Kind::kWrite;
         ghost.value = Value("ghost");
         advice.var_logs.begin()->second.emplace(OpRef{1, 0xdead, 99}, ghost);
       }},
      {"drop a handler-log entry", [](Trace&, Advice& advice) {
         for (auto& [rid, log] : advice.handler_logs) {
           if (!log.empty()) {
             log.pop_back();
             return;
           }
         }
       }},
      {"reverse the external write order", [](Trace&, Advice& advice) {
         if (advice.write_order.size() >= 2) {
           std::swap(advice.write_order.front(), advice.write_order.back());
         }
       }},
      {"claim a different re-execution group", [](Trace&, Advice& advice) {
         auto first = advice.tags.begin();
         auto last = std::prev(advice.tags.end());
         if (first->second != last->second) {
           first->second = last->second;
         } else {
           first->second ^= 1;
         }
       }},
  };

  int failures = 0;
  for (const Attack& attack : attacks) {
    Trace trace = honest.trace;
    Advice advice = honest.advice;
    attack.apply(trace, advice);
    AuditResult audit = AuditOnly(app, trace, advice, config.isolation);
    bool ok = !audit.accepted;
    std::printf("%-44s %s\n", attack.name, ok ? "REJECTED (good)" : "ACCEPTED (BUG!)");
    if (ok) {
      std::string reason = audit.reason.substr(0, 90);
      std::printf("    verifier: %s%s\n", reason.c_str(),
                  audit.reason.size() > 90 ? "..." : "");
    } else {
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
