// Quickstart: the full Karousos pipeline in one file.
//
//   1. Define an event-driven application against the KEM Ctx API.
//   2. Serve requests with the instrumented server (collector records the
//      trace, server records the advice).
//   3. Audit: the verifier re-executes the trace in groups and accepts.
//   4. Tamper with a response and watch the audit reject.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "src/apps/app_util.h"
#include "src/audit/audit.h"

using namespace karousos;

// A tiny "counter service": GET returns the counter, ADD increments it by a
// user-supplied amount. The counter lives in one shared (loggable) variable,
// so concurrent requests produce R-concurrent accesses that the server must
// log and the verifier must validate.
AppSpec MakeCounterApp() {
  auto program = std::make_shared<Program>();
  program->DefineFunction("counter_handle", [](Ctx& ctx) {
    MultiValue in = ctx.Input();
    if (ctx.Branch(MvEq(MvField(in, "op"), MultiValue("add")))) {
      MultiValue current = ctx.ReadVar("counter", VarScope::kGlobal);
      MultiValue next = MvAdd(current, MvField(in, "amount"));
      ctx.WriteVar("counter", VarScope::kGlobal, next);
      ctx.Respond(MvMakeMap({{"value", next}}));
    } else {
      ctx.Respond(MvMakeMap({{"value", ctx.ReadVar("counter", VarScope::kGlobal)}}));
    }
  });
  program->SetInit([](Ctx& ctx) {
    ctx.DeclareVar("counter", VarScope::kGlobal);
    ctx.WriteVar("counter", VarScope::kGlobal, MultiValue(0));
    ctx.RegisterHandler(kRequestEventName, "counter_handle");
  });
  return AppSpec{"counter", std::move(program)};
}

int main() {
  AppSpec app = MakeCounterApp();

  // Requests, served 4-way concurrent.
  std::vector<Value> inputs;
  for (int i = 0; i < 20; ++i) {
    if (i % 3 == 0) {
      inputs.push_back(MakeMap({{"op", "add"}, {"amount", i}}));
    } else {
      inputs.push_back(MakeMap({{"op", "get"}}));
    }
  }
  ServerConfig config;
  config.concurrency = 4;

  // Serve + audit.
  AuditPipelineResult result = RunAndAudit(app, inputs, config);
  std::printf("trace: %zu events, advice: %zu var-log entries, %zu bytes\n",
              result.server.trace.events.size(), result.server.advice.var_log_entry_count(),
              result.server.advice.MeasureSize().total);
  std::printf("audit: %s (%zu groups, %zu handler executions for %zu requests)\n",
              result.audit.accepted ? "ACCEPTED" : "REJECTED", result.audit.stats.groups,
              result.audit.stats.handler_executions, result.audit.stats.group_lane_total);
  if (!result.audit.accepted) {
    std::printf("  reason: %s\n", result.audit.reason.c_str());
    return 1;
  }

  // Now pretend the server lied about one response.
  Trace tampered = result.server.trace;
  for (TraceEvent& ev : tampered.events) {
    if (ev.kind == TraceEvent::Kind::kResponse) {
      ev.payload = MakeMap({{"value", 424242}});
      break;
    }
  }
  AuditResult bad = AuditOnly(app, tampered, result.server.advice, config.isolation);
  std::printf("tampered audit: %s\n  reason: %s\n", bad.accepted ? "ACCEPTED (BUG!)" : "REJECTED",
              bad.reason.c_str());
  return bad.accepted ? 1 : 0;
}
