// Isolation tour: runs the stack-dump application against the transactional
// store at each isolation level, audits each run, and then shows the Adya
// checker rejecting classic anomalies — write skew passes read-committed but
// fails serializability, dirty reads pass only read-uncommitted.
//
//   ./build/examples/isolation_tour
#include <cstdio>

#include "src/adya/checker.h"
#include "src/audit/audit.h"
#include "src/workload/workload.h"

using namespace karousos;

int main() {
  // Part 1: end-to-end audits per isolation level.
  for (IsolationLevel level : {IsolationLevel::kSerializable, IsolationLevel::kReadCommitted,
                               IsolationLevel::kReadUncommitted}) {
    AppSpec app = MakeStacksApp();
    WorkloadConfig wl;
    wl.app = "stacks";
    wl.kind = WorkloadKind::kMixed;
    wl.requests = 120;
    ServerConfig config;
    config.isolation = level;
    config.concurrency = 8;
    AuditPipelineResult result = RunAndAudit(app, GenerateWorkload(wl), config);
    std::printf("stacks @ %-17s audit=%s  txns=%zu  conflicts=%zu  write-order=%zu\n",
                IsolationLevelName(level), result.audit.accepted ? "ACCEPTED" : "REJECTED",
                result.server.advice.tx_logs.size(), result.server.conflicts,
                result.server.advice.write_order.size());
    if (!result.audit.accepted) {
      std::printf("  !! %s\n", result.audit.reason.c_str());
      return 1;
    }
  }

  // Part 2: Adya's algorithms on hand-built anomalies.
  auto start = [] { return TxOperation{TxOpType::kTxStart, 1, 1, "", Value(), kNilTxOp, false}; };
  auto commit = [] { return TxOperation{TxOpType::kTxCommit, 1, 9, "", Value(), kNilTxOp, false}; };
  auto put = [](std::string key, int64_t v, OpNum n) {
    return TxOperation{TxOpType::kPut, 1, n, std::move(key), Value(v), kNilTxOp, false};
  };
  auto get = [](std::string key, TxOpRef from, OpNum n) {
    return TxOperation{TxOpType::kGet, 1, n, std::move(key), Value(), from, true};
  };

  // Write skew: T1 reads a & writes b, T2 reads b & writes a.
  TransactionLogs skew;
  skew[{9, 90}] = {start(), put("a", 0, 2), put("b", 0, 3), commit()};
  skew[{1, 10}] = {start(), get("a", TxOpRef{9, 90, 2}, 2), put("b", 1, 3), commit()};
  skew[{2, 20}] = {start(), get("b", TxOpRef{9, 90, 3}, 2), put("a", 2, 3), commit()};
  WriteOrder skew_order = {TxOpRef{9, 90, 2}, TxOpRef{9, 90, 3}, TxOpRef{1, 10, 3},
                           TxOpRef{2, 20, 3}};
  std::printf("\nwrite skew:   serializable=%s  read-committed=%s\n",
              CheckHistory(IsolationLevel::kSerializable, skew, skew_order).ok ? "PASS (BUG!)"
                                                                               : "REJECTED",
              CheckHistory(IsolationLevel::kReadCommitted, skew, skew_order).ok ? "PASS"
                                                                                : "REJECTED");

  // Dirty read: T2 reads T1's write before T1 aborts.
  TransactionLogs dirty;
  dirty[{1, 10}] = {start(), put("k", 7, 2),
                    TxOperation{TxOpType::kTxAbort, 1, 3, "", Value(), kNilTxOp, false}};
  dirty[{2, 20}] = {start(), get("k", TxOpRef{1, 10, 2}, 2), commit()};
  std::printf("dirty read:   read-committed=%s  read-uncommitted=%s\n",
              CheckHistory(IsolationLevel::kReadCommitted, dirty, {}).ok ? "PASS (BUG!)"
                                                                         : "REJECTED",
              CheckHistory(IsolationLevel::kReadUncommitted, dirty, {}).ok ? "PASS" : "REJECTED");
  return 0;
}
