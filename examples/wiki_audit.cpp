// Wiki walkthrough: serves the paper's realistic workload mix (25% page
// creations, 15% comments, 60% renders) at configurable concurrency, prints
// the advice composition, audits, and compares against the Orochi-JS
// baseline. Usage:
//
//   ./build/examples/wiki_audit [requests] [concurrency]
#include <cstdio>
#include <cstdlib>

#include "src/audit/audit.h"
#include "src/baseline/sequential.h"
#include "src/workload/workload.h"

using namespace karousos;

int main(int argc, char** argv) {
  size_t requests = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 300;
  int concurrency = argc > 2 ? std::atoi(argv[2]) : 15;

  WorkloadConfig wl;
  wl.app = "wiki";
  wl.kind = WorkloadKind::kWikiMix;
  wl.requests = requests;
  wl.connections = concurrency;
  std::vector<Value> inputs = GenerateWorkload(wl);

  std::printf("serving %zu wiki requests at concurrency %d...\n", requests, concurrency);
  for (CollectMode mode : {CollectMode::kKarousos, CollectMode::kOrochi}) {
    AppSpec app = MakeWikiApp();
    ServerConfig config;
    config.mode = mode;
    config.concurrency = concurrency;
    Server server(*app.program, config);
    ServerRunResult run = server.Run(inputs);
    Advice::SizeBreakdown size = run.advice.MeasureSize();
    AppSpec verifier_app = MakeWikiApp();
    AuditResult audit = AuditOnly(verifier_app, run.trace, run.advice, config.isolation);
    std::printf("\n[%s]\n", CollectModeName(mode));
    std::printf("  server: %zu handler activations, %zu conflicts, %.3fs\n",
                run.handler_activations, run.conflicts, run.serve_seconds);
    std::printf("  advice: %zu B total | var logs %zu B | handler logs %zu B | tx logs %zu B\n",
                size.total, size.var_logs, size.handler_logs, size.tx_logs);
    std::printf("  audit:  %s | %zu groups | %zu handler executions | G: %zu nodes, %zu edges\n",
                audit.accepted ? "ACCEPTED" : "REJECTED", audit.stats.groups,
                audit.stats.handler_executions, audit.stats.graph_nodes,
                audit.stats.graph_edges);
    if (!audit.accepted) {
      std::printf("  !! %s\n", audit.reason.c_str());
      return 1;
    }
    if (mode == CollectMode::kKarousos) {
      SequentialReplayResult seq = SequentialReplay(verifier_app, run.trace);
      std::printf("  sequential baseline: %zu requests, %zu response mismatches "
                  "(expected under concurrency)\n",
                  seq.requests, seq.mismatches);
    }
  }
  return 0;
}
