#!/usr/bin/env python3
"""Diff two BENCH_*.json files and report per-row regressions.

Usage:
  tools/bench_diff.py OLD.json NEW.json [--threshold PCT]

Both files must come from the same benchmark binary (matching "benchmark"
fields). Rows are matched on their identity fields (every key except the
measured ones); for each match the measured fields are compared and rows whose
time grew by more than --threshold percent (default 5) are flagged as
regressions. Exit status is 1 if any regression was found, so the script can
gate CI.
"""

import argparse
import json
import sys

# Fields that carry measurements; everything else identifies the row.
MEASURE_FIELDS = (
    "seconds",
    "preprocess_seconds",
    "reexec_seconds",
    "postprocess_seconds",
    "ops_per_second",
    "speedup",
    "baseline_seconds",
    "speedup_vs_baseline",
    # fig6_server_overhead record-path fields.
    "off_seconds",
    "karousos_seconds",
    "overhead_seconds",
    "ratio",
    "off_p50_ms",
    "off_p99_ms",
    "karousos_p50_ms",
    "karousos_p99_ms",
    "off_rps",
    "karousos_rps",
    "baseline_overhead_seconds",
    "overhead_speedup",
    # check_overhead static model-check fields.
    "check_seconds",
    "check_per_epoch_ms",
    "audit_seconds",
    "audit_no_prescreen_seconds",
    "prescreen_overhead_pct",
    # auction_contention hot-key fields. conflicts/abort_rate are workload
    # shape, not speed — reported in the diff but never gated on time.
    "conflicts",
    "abort_rate",
    "serve_off_seconds",
    "serve_karousos_seconds",
    "record_overhead_ratio",
    # advice_size storage-class codec fields: stored bytes per stage, the
    # compression ratios, and the codec's clock cost.
    "raw_advice_bytes",
    "lanes_advice_bytes",
    "lanes_dict_advice_bytes",
    "packed_advice_bytes",
    "advice_ratio",
    "raw_trace_bytes",
    "packed_trace_bytes",
    "trace_ratio",
    "raw_advice_bytes_per_request",
    "packed_advice_bytes_per_request",
    "tags_bytes",
    "handler_logs_bytes",
    "var_logs_bytes",
    "tx_logs_bytes",
    "write_order_bytes",
    "other_bytes",
    "imports_bytes",
    "record_seconds",
    "encode_seconds",
    "decode_seconds",
    "codec_overhead_pct",
    # net_wire front-end fields: throughput, client-observed wire latency,
    # server-side serve time, the karousos-off transport baseline and its
    # record-overhead ratio, and the slow-client bounded-memory counters.
    "wire_rps",
    "wire_p50_ms",
    "wire_p99_ms",
    "serve_seconds",
    "wire_off_rps",
    "wire_record_overhead",
    "peak_buffered_bytes",
    "read_disables",
    # shard_audit scale-out fields: wall-clock is recorded but informational
    # (K real processes on a shared runner are too noisy to gate); the
    # per-process peak RSS is the gated number — sharding exists to shrink it.
    "shard_seconds",
    "audit_parallel_seconds",
    "merge_seconds",
    "shard_peak_rss_mb",
    "merge_peak_rss_mb",
)

# Of the measured fields, the ones where bigger is worse. off_seconds is the
# uninstrumented server and p50/p99 are noisy single-request tails, so for
# fig6 only the instrumented serve time and the collection overhead gate.
TIME_FIELDS = (
    "seconds",
    "preprocess_seconds",
    "reexec_seconds",
    "postprocess_seconds",
    "karousos_seconds",
    "overhead_seconds",
    # check_overhead: gate the checker pass and the screened audit; the
    # per-epoch and percentage columns are derived from these two.
    "check_seconds",
    "audit_seconds",
    # auction_contention: gate the instrumented serve time (audit_seconds
    # above already covers its audit column).
    "serve_karousos_seconds",
    # advice_size: gate the codec's clock cost (sizes are deterministic, so
    # byte fields are covered by the ratio gate below instead).
    "encode_seconds",
    "decode_seconds",
    # net_wire: gate the median client-observed wire latency; p99 and the
    # wall-clock serve time are too noisy on shared runners.
    "wire_p50_ms",
    # shard_audit: gate the per-process peak RSS (smaller is the whole point
    # of sharding; it is also deterministic enough to gate). The three
    # wall-clock columns stay informational.
    "shard_peak_rss_mb",
)

# Measured fields where bigger is BETTER: a shrink beyond the threshold is the
# regression. Used for the advice_size compression ratios — a codec change
# that quietly stops compressing must fail the gate even though no time grew.
RATIO_FIELDS = (
    "advice_ratio",
    "trace_ratio",
    # net_wire throughput: a shrink beyond the threshold is the regression.
    "wire_rps",
)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")


def row_key(row):
    return tuple(sorted((k, v) for k, v in row.items() if k not in MEASURE_FIELDS))


def fmt_key(key):
    return ", ".join(f"{k}={v}" for k, v in key)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        help="regression threshold in percent (default: 5)",
    )
    args = parser.parse_args()

    old = load(args.old)
    new = load(args.new)
    if old.get("benchmark") != new.get("benchmark"):
        sys.exit(
            f"error: benchmark mismatch: {old.get('benchmark')!r} vs {new.get('benchmark')!r}"
        )

    old_rows = {row_key(r): r for r in old.get("rows", [])}
    new_rows = {row_key(r): r for r in new.get("rows", [])}

    regressions = []
    print(f"benchmark: {new.get('benchmark')}")
    for key, new_row in new_rows.items():
        old_row = old_rows.get(key)
        if old_row is None:
            print(f"  NEW ROW   {fmt_key(key)}")
            continue
        deltas = []
        regressed = False
        for field in TIME_FIELDS:
            if field not in old_row or field not in new_row:
                continue
            before, after = old_row[field], new_row[field]
            if not before:
                continue
            pct = (after - before) / before * 100.0
            deltas.append(f"{field} {before:.4f}->{after:.4f} ({pct:+.1f}%)")
            if pct > args.threshold:
                regressed = True
        for field in RATIO_FIELDS:
            if field not in old_row or field not in new_row:
                continue
            before, after = old_row[field], new_row[field]
            if not before:
                continue
            pct = (after - before) / before * 100.0
            deltas.append(f"{field} {before:.2f}x->{after:.2f}x ({pct:+.1f}%)")
            if pct < -args.threshold:
                regressed = True
        line = f"{fmt_key(key)}: " + ("; ".join(deltas) if deltas else "no timed fields")
        if regressed:
            regressions.append(line)
            print(f"  REGRESSED {line}")
        else:
            print(f"  ok        {line}")
    for key in old_rows:
        if key not in new_rows:
            print(f"  DROPPED   {fmt_key(key)}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) above {args.threshold:.1f}%:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
