#!/bin/sh
# Runs clang-tidy (config: .clang-tidy at the repo root) over the library,
# tools, tests, and benches, using the compile database from the build tree.
#
#   usage: tools/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# The build directory must have been configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the default here is ./build).
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
[ $# -gt 0 ] && shift
[ "${1:-}" = "--" ] && shift

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not found on PATH; skipping" >&2
  exit 0
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "no compile database at $build_dir/compile_commands.json" >&2
  echo "configure with: cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

files="$(find "$repo_root/src" "$repo_root/tools" "$repo_root/tests" "$repo_root/bench" \
  -name '*.cc' 2>/dev/null | sort)"
status=0
for f in $files; do
  clang-tidy -p "$build_dir" --quiet "$@" "$f" || status=1
done
exit $status
