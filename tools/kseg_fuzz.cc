// KSEG mutation fuzzer: every semantic mutation of a segment stream must be
// rejected — by the static model checker or by the full audit — and neither
// may crash on any of them. Where both the checker and the audit name a rule,
// they must name the same one (the pre-screen *is* the audit's static half).
//
// Corpus: src/analysis/kseg_mutate.h over one honest run per seed family —
// the nine adversarial seeds from tests/epoch_audit_test.cc, cross-epoch
// slice defects, byte-level frame damage against every frame of both streams,
// and codec damage (flag tampering, fixed-up truncation, declared-size lies)
// against the storage-class compressed encoding of the same run. Two workload
// families:
//
//   * stacks  — the original handler-tree/KV workload;
//   * auction — hot-key contention: aborted transactions, retries, and
//               transactions spanning event (and epoch) boundaries give the
//               advice a different shape, so frame- and slice-level damage
//               lands on different structures.
//
// A third family ("shard", src/analysis/shard_mutate.h) attacks the shard
// axis: byte and boundary-manifest damage against encoded shard files, and
// merge-only artifact tampering where every shard passes individually — the
// whole load → audit-shard → audit-merge pipeline must reject each one.
//
// Prints one summary line per family (with a per-mutation-kind breakdown)
// plus a JSON blob with per-family, per-kind, and total static-catch
// fractions (consumed by bench/check_overhead.cc's fuzz row). Exits nonzero
// with a "BUG:" line on any violated invariant. Both the raw and the
// fully-compressed encodings of each honest run must be accepted — the
// compressed control guards the codec family's rejections from being "the
// decoder is just broken".
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "src/analysis/check.h"
#include "src/analysis/kseg_mutate.h"
#include "src/analysis/shard_mutate.h"
#include "src/apps/app.h"
#include "src/audit/stream.h"
#include "src/server/server.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

struct Family {
  const char* name;
  WorkloadKind kind;
  size_t requests;
  int concurrency;
  uint64_t epoch_size;
  size_t min_mutations;
  // Floor on the static-catch fraction; the acceptance bar for the family.
  double min_static_fraction;
};

constexpr Family kFamilies[] = {
    {"stacks", WorkloadKind::kMixed, 63, 6, 7, 200, 0.90},
    {"auction", WorkloadKind::kAuctionMix, 72, 12, 8, 200, 0.90},
};

struct MutationKindStats {
  size_t mutations = 0;
  size_t caught_static = 0;

  double fraction() const {
    return mutations == 0 ? 0.0
                          : static_cast<double>(caught_static) / static_cast<double>(mutations);
  }
};

struct FamilyStats {
  std::string name;
  size_t mutations = 0;
  size_t caught_static = 0;
  size_t rule_matched = 0;
  size_t bugs = 0;
  // Keyed by the mutation-name prefix (component/slice/frame/codec), in
  // first-seen order so the JSON is deterministic.
  std::vector<std::pair<std::string, MutationKindStats>> by_kind;

  MutationKindStats* Kind(const std::string& mutation_name) {
    const size_t colon = mutation_name.find(':');
    const std::string prefix =
        colon == std::string::npos ? mutation_name : mutation_name.substr(0, colon);
    for (auto& [kind_name, kind_stats] : by_kind) {
      if (kind_name == prefix) {
        return &kind_stats;
      }
    }
    by_kind.emplace_back(prefix, MutationKindStats{});
    return &by_kind.back().second;
  }

  double fraction() const {
    return mutations == 0 ? 0.0
                          : static_cast<double>(caught_static) / static_cast<double>(mutations);
  }
};

AppSpec MakeApp(const std::string& name) {
  return name == "stacks" ? MakeStacksApp() : MakeAuctionApp();
}

FamilyStats RunFamily(const Family& family) {
  FamilyStats stats;
  stats.name = family.name;

  AppSpec app = MakeApp(family.name);
  WorkloadConfig wl;
  wl.app = family.name;
  wl.kind = family.kind;
  wl.requests = family.requests;
  wl.seed = 7;
  wl.connections = family.concurrency;
  ServerConfig server_config;
  server_config.concurrency = family.concurrency;
  server_config.seed = 7;
  Server server(*app.program, server_config);
  ServerRunResult run = server.Run(GenerateWorkload(wl));

  VerifierConfig audit_config{IsolationLevel::kSerializable, 1};

  // Control: the unmutated stream must be statically clean and audit-accepted,
  // or every "rejected" result below would be meaningless.
  EpochSlices honest = SliceRun(run.trace, run.advice, family.epoch_size);
  std::vector<uint8_t> honest_trace = EncodeTraceSegments(honest);
  std::vector<uint8_t> honest_advice = EncodeAdviceSegments(honest);
  CheckResult honest_check =
      CheckSegmentStreams(honest_trace, honest_advice, family.epoch_size);
  if (!honest_check.ok) {
    std::printf("BUG: [%s] honest stream fails the model check: %s\n", family.name,
                honest_check.reason.c_str());
    ++stats.bugs;
    return stats;
  }
  StreamAuditResult honest_audit =
      AuditSegments(app, honest_trace, honest_advice, audit_config, family.epoch_size);
  if (!honest_audit.audit.accepted) {
    std::printf("BUG: [%s] honest stream rejected by the audit: %s\n", family.name,
                honest_audit.audit.reason.c_str());
    ++stats.bugs;
    return stats;
  }
  // Second control, for the codec mutation family: the same run compressed
  // with every storage-class stage must still check clean and audit-accept.
  std::vector<uint8_t> packed_trace = EncodeTraceSegments(honest, KsegCompression::All());
  std::vector<uint8_t> packed_advice = EncodeAdviceSegments(honest, KsegCompression::All());
  CheckResult packed_check =
      CheckSegmentStreams(packed_trace, packed_advice, family.epoch_size);
  if (!packed_check.ok) {
    std::printf("BUG: [%s] compressed honest stream fails the model check: %s\n", family.name,
                packed_check.reason.c_str());
    ++stats.bugs;
    return stats;
  }
  StreamAuditResult packed_audit =
      AuditSegments(app, packed_trace, packed_advice, audit_config, family.epoch_size);
  if (!packed_audit.audit.accepted) {
    std::printf("BUG: [%s] compressed honest stream rejected by the audit: %s\n", family.name,
                packed_audit.audit.reason.c_str());
    ++stats.bugs;
    return stats;
  }

  std::vector<KsegMutation> corpus =
      BuildMutationCorpus(run.trace, run.advice, family.epoch_size);
  if (corpus.size() < family.min_mutations) {
    std::printf("BUG: [%s] corpus holds only %zu mutations (need >= %zu)\n", family.name,
                corpus.size(), family.min_mutations);
    ++stats.bugs;
    return stats;
  }
  stats.mutations = corpus.size();

  for (const KsegMutation& m : corpus) {
    MutationKindStats* kind = stats.Kind(m.name);
    ++kind->mutations;
    CheckResult check;
    try {
      check = CheckSegmentStreams(m.trace_bytes, m.advice_bytes, family.epoch_size);
    } catch (const std::exception& e) {
      std::printf("BUG: [%s] %s: model check crashed: %s\n", family.name, m.name.c_str(),
                  e.what());
      ++stats.bugs;
      continue;
    }
    StreamAuditResult audited;
    try {
      audited =
          AuditSegments(app, m.trace_bytes, m.advice_bytes, audit_config, family.epoch_size);
    } catch (const std::exception& e) {
      std::printf("BUG: [%s] %s: audit crashed: %s\n", family.name, m.name.c_str(), e.what());
      ++stats.bugs;
      continue;
    }
    if (audited.audit.accepted) {
      std::printf("BUG: [%s] %s: audit ACCEPTED a mutated stream\n", family.name,
                  m.name.c_str());
      ++stats.bugs;
      continue;
    }
    if (!check.ok) {
      ++stats.caught_static;
      ++kind->caught_static;
      // The fast-reject contract: where both sides name a rule, the static
      // verdict is the one the audit reports — the pre-screen fired before
      // any replay could.
      if (!check.rule.empty() && !audited.audit.rule.empty()) {
        if (check.rule != audited.audit.rule) {
          std::printf("BUG: [%s] %s: rule mismatch (check %s vs audit %s)\n", family.name,
                      m.name.c_str(), check.rule.c_str(), audited.audit.rule.c_str());
          ++stats.bugs;
          continue;
        }
        ++stats.rule_matched;
      }
    }
  }

  if (stats.fraction() < family.min_static_fraction) {
    std::printf("BUG: [%s] static catch %.1f%% below the %.0f%% floor\n", family.name,
                100.0 * stats.fraction(), 100.0 * family.min_static_fraction);
    ++stats.bugs;
  }
  std::printf("kseg_fuzz[%s]: %zu mutations, %zu rejected statically (%.1f%%), "
              "%zu rule-matched, %zu bugs\n",
              family.name, stats.mutations, stats.caught_static, 100.0 * stats.fraction(),
              stats.rule_matched, stats.bugs);
  for (const auto& [kind, ks] : stats.by_kind) {
    std::printf("  %-10s %4zu mutations, %4zu static (%.1f%%)\n", kind.c_str(), ks.mutations,
                ks.caught_static, 100.0 * ks.fraction());
  }
  return stats;
}

// The shard-axis family: the corpus of src/analysis/shard_mutate.h over a
// stacks run sharded two ways. "Static" here means the rejection carries a
// KAR-SEG rule — the load/merge structural layer caught it without (or
// before) any re-execution deciding.
FamilyStats RunShardFamily() {
  FamilyStats stats;
  stats.name = "shard";

  AppSpec app = MakeStacksApp();
  WorkloadConfig wl;
  wl.app = "stacks";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = 63;
  wl.seed = 7;
  wl.connections = 6;
  ServerConfig server_config;
  server_config.concurrency = 6;
  server_config.seed = 7;
  Server server(*app.program, server_config);
  ServerRunResult run = server.Run(GenerateWorkload(wl));

  std::vector<ShardMutationOutcome> outcomes = RunShardMutationCorpus(
      *app.program, run.trace, run.advice, 7, ShardSpec{2, ShardMode::kHash});
  for (const ShardMutationOutcome& o : outcomes) {
    if (o.name.rfind("control:", 0) == 0) {
      if (o.crashed || o.rejected) {
        std::printf("BUG: [shard] %s: honest control %s: %s\n", o.name.c_str(),
                    o.crashed ? "crashed" : "rejected", o.reason.c_str());
        ++stats.bugs;
      }
      continue;
    }
    MutationKindStats* kind = stats.Kind(o.name);
    ++stats.mutations;
    ++kind->mutations;
    if (o.crashed) {
      std::printf("BUG: [shard] %s: pipeline crashed: %s\n", o.name.c_str(), o.reason.c_str());
      ++stats.bugs;
      continue;
    }
    if (!o.rejected) {
      std::printf("BUG: [shard] %s: pipeline ACCEPTED a mutated input\n", o.name.c_str());
      ++stats.bugs;
      continue;
    }
    if (!o.rule.empty()) {
      ++stats.caught_static;
      ++kind->caught_static;
    }
  }

  constexpr size_t kMinMutations = 60;
  if (stats.mutations < kMinMutations) {
    std::printf("BUG: [shard] corpus holds only %zu mutations (need >= %zu)\n", stats.mutations,
                kMinMutations);
    ++stats.bugs;
  }
  constexpr double kMinStaticFraction = 0.90;
  if (stats.fraction() < kMinStaticFraction) {
    std::printf("BUG: [shard] static catch %.1f%% below the %.0f%% floor\n",
                100.0 * stats.fraction(), 100.0 * kMinStaticFraction);
    ++stats.bugs;
  }
  std::printf("kseg_fuzz[shard]: %zu mutations, %zu rejected with a KAR-SEG rule (%.1f%%), "
              "%zu bugs\n",
              stats.mutations, stats.caught_static, 100.0 * stats.fraction(), stats.bugs);
  for (const auto& [kind, ks] : stats.by_kind) {
    std::printf("  %-10s %4zu mutations, %4zu static (%.1f%%)\n", kind.c_str(), ks.mutations,
                ks.caught_static, 100.0 * ks.fraction());
  }
  return stats;
}

int Run() {
  std::vector<FamilyStats> all;
  size_t total_mutations = 0;
  size_t total_caught = 0;
  size_t total_bugs = 0;
  for (const Family& family : kFamilies) {
    all.push_back(RunFamily(family));
    total_mutations += all.back().mutations;
    total_caught += all.back().caught_static;
    total_bugs += all.back().bugs;
  }
  all.push_back(RunShardFamily());
  total_mutations += all.back().mutations;
  total_caught += all.back().caught_static;
  total_bugs += all.back().bugs;

  double fraction = total_mutations == 0
                        ? 0.0
                        : static_cast<double>(total_caught) / static_cast<double>(total_mutations);
  std::printf("{\"mutations_total\": %zu, \"mutations_caught_static\": %zu, "
              "\"static_catch_fraction\": %.4f, \"families\": {",
              total_mutations, total_caught, fraction);
  for (size_t i = 0; i < all.size(); ++i) {
    std::printf("%s\"%s\": {\"mutations_total\": %zu, \"mutations_caught_static\": %zu, "
                "\"static_catch_fraction\": %.4f, \"by_kind\": {",
                i == 0 ? "" : ", ", all[i].name.c_str(), all[i].mutations,
                all[i].caught_static, all[i].fraction());
    for (size_t k = 0; k < all[i].by_kind.size(); ++k) {
      const auto& [kind, ks] = all[i].by_kind[k];
      std::printf("%s\"%s\": {\"mutations_total\": %zu, \"mutations_caught_static\": %zu, "
                  "\"static_catch_fraction\": %.4f}",
                  k == 0 ? "" : ", ", kind.c_str(), ks.mutations, ks.caught_static,
                  ks.fraction());
    }
    std::printf("}}");
  }
  std::printf("}}\n");
  return total_bugs == 0 ? 0 : 1;
}

}  // namespace
}  // namespace karousos

int main() { return karousos::Run(); }
