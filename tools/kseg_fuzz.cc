// KSEG mutation fuzzer: every semantic mutation of a segment stream must be
// rejected — by the static model checker or by the full audit — and neither
// may crash on any of them. Where both the checker and the audit name a rule,
// they must name the same one (the pre-screen *is* the audit's static half).
//
// Corpus: src/analysis/kseg_mutate.h over one honest run per seed family —
// the nine adversarial seeds from tests/epoch_audit_test.cc, cross-epoch
// slice defects, and byte-level frame damage against every frame of both
// streams. Two families:
//
//   * stacks  — the original handler-tree/KV workload;
//   * auction — hot-key contention: aborted transactions, retries, and
//               transactions spanning event (and epoch) boundaries give the
//               advice a different shape, so frame- and slice-level damage
//               lands on different structures.
//
// Prints one summary line per family plus a JSON blob with per-family and
// total static-catch fractions (consumed by bench/check_overhead.cc's fuzz
// row). Exits nonzero with a "BUG:" line on any violated invariant.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "src/analysis/check.h"
#include "src/analysis/kseg_mutate.h"
#include "src/apps/app.h"
#include "src/audit/stream.h"
#include "src/server/server.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

struct Family {
  const char* name;
  WorkloadKind kind;
  size_t requests;
  int concurrency;
  uint64_t epoch_size;
  size_t min_mutations;
  // Floor on the static-catch fraction; the acceptance bar for the family.
  double min_static_fraction;
};

constexpr Family kFamilies[] = {
    {"stacks", WorkloadKind::kMixed, 63, 6, 7, 200, 0.90},
    {"auction", WorkloadKind::kAuctionMix, 72, 12, 8, 200, 0.90},
};

struct FamilyStats {
  std::string name;
  size_t mutations = 0;
  size_t caught_static = 0;
  size_t rule_matched = 0;
  size_t bugs = 0;

  double fraction() const {
    return mutations == 0 ? 0.0
                          : static_cast<double>(caught_static) / static_cast<double>(mutations);
  }
};

AppSpec MakeApp(const std::string& name) {
  return name == "stacks" ? MakeStacksApp() : MakeAuctionApp();
}

FamilyStats RunFamily(const Family& family) {
  FamilyStats stats;
  stats.name = family.name;

  AppSpec app = MakeApp(family.name);
  WorkloadConfig wl;
  wl.app = family.name;
  wl.kind = family.kind;
  wl.requests = family.requests;
  wl.seed = 7;
  wl.connections = family.concurrency;
  ServerConfig server_config;
  server_config.concurrency = family.concurrency;
  server_config.seed = 7;
  Server server(*app.program, server_config);
  ServerRunResult run = server.Run(GenerateWorkload(wl));

  VerifierConfig audit_config{IsolationLevel::kSerializable, 1};

  // Control: the unmutated stream must be statically clean and audit-accepted,
  // or every "rejected" result below would be meaningless.
  EpochSlices honest = SliceRun(run.trace, run.advice, family.epoch_size);
  std::vector<uint8_t> honest_trace = EncodeTraceSegments(honest);
  std::vector<uint8_t> honest_advice = EncodeAdviceSegments(honest);
  CheckResult honest_check =
      CheckSegmentStreams(honest_trace, honest_advice, family.epoch_size);
  if (!honest_check.ok) {
    std::printf("BUG: [%s] honest stream fails the model check: %s\n", family.name,
                honest_check.reason.c_str());
    ++stats.bugs;
    return stats;
  }
  StreamAuditResult honest_audit =
      AuditSegments(app, honest_trace, honest_advice, audit_config, family.epoch_size);
  if (!honest_audit.audit.accepted) {
    std::printf("BUG: [%s] honest stream rejected by the audit: %s\n", family.name,
                honest_audit.audit.reason.c_str());
    ++stats.bugs;
    return stats;
  }

  std::vector<KsegMutation> corpus =
      BuildMutationCorpus(run.trace, run.advice, family.epoch_size);
  if (corpus.size() < family.min_mutations) {
    std::printf("BUG: [%s] corpus holds only %zu mutations (need >= %zu)\n", family.name,
                corpus.size(), family.min_mutations);
    ++stats.bugs;
    return stats;
  }
  stats.mutations = corpus.size();

  for (const KsegMutation& m : corpus) {
    CheckResult check;
    try {
      check = CheckSegmentStreams(m.trace_bytes, m.advice_bytes, family.epoch_size);
    } catch (const std::exception& e) {
      std::printf("BUG: [%s] %s: model check crashed: %s\n", family.name, m.name.c_str(),
                  e.what());
      ++stats.bugs;
      continue;
    }
    StreamAuditResult audited;
    try {
      audited =
          AuditSegments(app, m.trace_bytes, m.advice_bytes, audit_config, family.epoch_size);
    } catch (const std::exception& e) {
      std::printf("BUG: [%s] %s: audit crashed: %s\n", family.name, m.name.c_str(), e.what());
      ++stats.bugs;
      continue;
    }
    if (audited.audit.accepted) {
      std::printf("BUG: [%s] %s: audit ACCEPTED a mutated stream\n", family.name,
                  m.name.c_str());
      ++stats.bugs;
      continue;
    }
    if (!check.ok) {
      ++stats.caught_static;
      // The fast-reject contract: where both sides name a rule, the static
      // verdict is the one the audit reports — the pre-screen fired before
      // any replay could.
      if (!check.rule.empty() && !audited.audit.rule.empty()) {
        if (check.rule != audited.audit.rule) {
          std::printf("BUG: [%s] %s: rule mismatch (check %s vs audit %s)\n", family.name,
                      m.name.c_str(), check.rule.c_str(), audited.audit.rule.c_str());
          ++stats.bugs;
          continue;
        }
        ++stats.rule_matched;
      }
    }
  }

  if (stats.fraction() < family.min_static_fraction) {
    std::printf("BUG: [%s] static catch %.1f%% below the %.0f%% floor\n", family.name,
                100.0 * stats.fraction(), 100.0 * family.min_static_fraction);
    ++stats.bugs;
  }
  std::printf("kseg_fuzz[%s]: %zu mutations, %zu rejected statically (%.1f%%), "
              "%zu rule-matched, %zu bugs\n",
              family.name, stats.mutations, stats.caught_static, 100.0 * stats.fraction(),
              stats.rule_matched, stats.bugs);
  return stats;
}

int Run() {
  std::vector<FamilyStats> all;
  size_t total_mutations = 0;
  size_t total_caught = 0;
  size_t total_bugs = 0;
  for (const Family& family : kFamilies) {
    all.push_back(RunFamily(family));
    total_mutations += all.back().mutations;
    total_caught += all.back().caught_static;
    total_bugs += all.back().bugs;
  }

  double fraction = total_mutations == 0
                        ? 0.0
                        : static_cast<double>(total_caught) / static_cast<double>(total_mutations);
  std::printf("{\"mutations_total\": %zu, \"mutations_caught_static\": %zu, "
              "\"static_catch_fraction\": %.4f, \"families\": {",
              total_mutations, total_caught, fraction);
  for (size_t i = 0; i < all.size(); ++i) {
    std::printf("%s\"%s\": {\"mutations_total\": %zu, \"mutations_caught_static\": %zu, "
                "\"static_catch_fraction\": %.4f}",
                i == 0 ? "" : ", ", all[i].name.c_str(), all[i].mutations,
                all[i].caught_static, all[i].fraction());
  }
  std::printf("}}\n");
  return total_bugs == 0 ? 0 : 1;
}

}  // namespace
}  // namespace karousos

int main() { return karousos::Run(); }
