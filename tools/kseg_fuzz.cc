// KSEG mutation fuzzer: every semantic mutation of a segment stream must be
// rejected — by the static model checker or by the full audit — and neither
// may crash on any of them. Where both the checker and the audit name a rule,
// they must name the same one (the pre-screen *is* the audit's static half).
//
// Corpus: src/analysis/kseg_mutate.h over one honest stacks run — the nine
// adversarial seeds from tests/epoch_audit_test.cc, cross-epoch slice
// defects, and byte-level frame damage against every frame of both streams.
//
// Prints one summary line plus a JSON blob with the static-catch fraction
// (consumed by bench/check_overhead.cc's fuzz row). Exits nonzero with a
// "BUG:" line on any violated invariant.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "src/analysis/check.h"
#include "src/analysis/kseg_mutate.h"
#include "src/apps/app.h"
#include "src/audit/stream.h"
#include "src/server/server.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

constexpr size_t kRequests = 63;
constexpr uint64_t kEpochSize = 7;
constexpr size_t kMinMutations = 200;

int Run() {
  AppSpec app = MakeStacksApp();
  WorkloadConfig wl;
  wl.app = "stacks";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = kRequests;
  wl.seed = 7;
  ServerConfig server_config;
  server_config.concurrency = 6;
  Server server(*app.program, server_config);
  ServerRunResult run = server.Run(GenerateWorkload(wl));

  VerifierConfig audit_config{IsolationLevel::kSerializable, 1};

  // Control: the unmutated stream must be statically clean and audit-accepted,
  // or every "rejected" result below would be meaningless.
  EpochSlices honest = SliceRun(run.trace, run.advice, kEpochSize);
  std::vector<uint8_t> honest_trace = EncodeTraceSegments(honest);
  std::vector<uint8_t> honest_advice = EncodeAdviceSegments(honest);
  CheckResult honest_check = CheckSegmentStreams(honest_trace, honest_advice, kEpochSize);
  if (!honest_check.ok) {
    std::printf("BUG: honest stream fails the model check: %s\n", honest_check.reason.c_str());
    return 1;
  }
  StreamAuditResult honest_audit =
      AuditSegments(app, honest_trace, honest_advice, audit_config, kEpochSize);
  if (!honest_audit.audit.accepted) {
    std::printf("BUG: honest stream rejected by the audit: %s\n",
                honest_audit.audit.reason.c_str());
    return 1;
  }

  std::vector<KsegMutation> corpus = BuildMutationCorpus(run.trace, run.advice, kEpochSize);
  if (corpus.size() < kMinMutations) {
    std::printf("BUG: corpus holds only %zu mutations (need >= %zu)\n", corpus.size(),
                kMinMutations);
    return 1;
  }

  size_t caught_static = 0;
  size_t rule_matched = 0;
  size_t bugs = 0;
  for (const KsegMutation& m : corpus) {
    CheckResult check;
    try {
      check = CheckSegmentStreams(m.trace_bytes, m.advice_bytes, kEpochSize);
    } catch (const std::exception& e) {
      std::printf("BUG: %s: model check crashed: %s\n", m.name.c_str(), e.what());
      ++bugs;
      continue;
    }
    StreamAuditResult audited;
    try {
      audited = AuditSegments(app, m.trace_bytes, m.advice_bytes, audit_config, kEpochSize);
    } catch (const std::exception& e) {
      std::printf("BUG: %s: audit crashed: %s\n", m.name.c_str(), e.what());
      ++bugs;
      continue;
    }
    if (audited.audit.accepted) {
      std::printf("BUG: %s: audit ACCEPTED a mutated stream\n", m.name.c_str());
      ++bugs;
      continue;
    }
    if (!check.ok) {
      ++caught_static;
      // The fast-reject contract: where both sides name a rule, the static
      // verdict is the one the audit reports — the pre-screen fired before
      // any replay could.
      if (!check.rule.empty() && !audited.audit.rule.empty()) {
        if (check.rule != audited.audit.rule) {
          std::printf("BUG: %s: rule mismatch (check %s vs audit %s)\n", m.name.c_str(),
                      check.rule.c_str(), audited.audit.rule.c_str());
          ++bugs;
          continue;
        }
        ++rule_matched;
      }
    }
  }

  double fraction =
      corpus.empty() ? 0.0 : static_cast<double>(caught_static) / static_cast<double>(corpus.size());
  std::printf("kseg_fuzz: %zu mutations, %zu rejected statically (%.1f%%), %zu rule-matched, "
              "%zu bugs\n",
              corpus.size(), caught_static, 100.0 * fraction, rule_matched, bugs);
  std::printf("{\"mutations_total\": %zu, \"mutations_caught_static\": %zu, "
              "\"static_catch_fraction\": %.4f}\n",
              corpus.size(), caught_static, fraction);
  return bugs == 0 ? 0 : 1;
}

}  // namespace
}  // namespace karousos

int main() { return karousos::Run(); }
