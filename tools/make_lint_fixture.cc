// Generates tests/fixtures/lint_bad.{trace,advice}: an honest stacks serve
// whose advice is then corrupted in two independent, lint-detectable ways —
//   * one logged read's dictating-write reference is redirected to an
//     operation position that no log entry occupies (KAR-ADV-003), and
//   * the first write-order entry is appended again at the end, turning the
//     alleged total order into a cycle (KAR-ADV-010).
// Both corruptions survive serialization, so `karousos analyze` and the
// verifier's preprocess stage must both report them from the checked-in
// files. Regenerate with the `make_lint_fixture` build target.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/analysis/lint.h"
#include "src/apps/app.h"
#include "src/server/server.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

bool WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

int Main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: make_lint_fixture <out-trace> <out-advice>\n");
    return 2;
  }

  WorkloadConfig wl;
  wl.app = "stacks";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = 40;
  wl.seed = 7;
  wl.connections = 6;

  AppSpec app = MakeStacksApp();
  ServerConfig config;
  config.concurrency = 6;
  config.seed = 7;
  Server server(*app.program, config);
  ServerRunResult run = server.Run(GenerateWorkload(wl));

  // Corruption 1 (KAR-ADV-003): dangling VarLogEntry::prec. Pick the first
  // logged read and point its dictating write at an opnum no entry holds.
  bool corrupted_prec = false;
  for (auto& [vid, log] : run.advice.var_logs) {
    for (auto& [op, entry] : log) {
      if (entry.kind == VarLogEntry::Kind::kRead) {
        entry.prec = OpRef{op.rid, op.hid, kOpNumInf - 1};
        corrupted_prec = true;
        break;
      }
    }
    if (corrupted_prec) {
      break;
    }
  }
  if (!corrupted_prec) {
    std::fprintf(stderr, "no logged read to corrupt; raise concurrency\n");
    return 1;
  }

  // Corruption 2 (KAR-ADV-010): duplicate write-order entry => cycle.
  if (run.advice.write_order.size() < 2) {
    std::fprintf(stderr, "write order too small to corrupt\n");
    return 1;
  }
  run.advice.write_order.push_back(run.advice.write_order.front());

  // Sanity: the linter must flag exactly the two planted rules.
  bool saw_003 = false;
  bool saw_010 = false;
  for (const LintDiagnostic& d : LintAdvice(run.trace, run.advice)) {
    saw_003 |= d.rule == "KAR-ADV-003";
    saw_010 |= d.rule == "KAR-ADV-010";
  }
  if (!saw_003 || !saw_010) {
    std::fprintf(stderr, "planted corruptions not detected (003=%d, 010=%d)\n", saw_003,
                 saw_010);
    return 1;
  }

  ByteWriter trace_bytes;
  run.trace.Serialize(&trace_bytes);
  ByteWriter advice_bytes;
  run.advice.Serialize(&advice_bytes);
  if (!WriteFile(argv[1], trace_bytes.bytes()) || !WriteFile(argv[2], advice_bytes.bytes())) {
    std::fprintf(stderr, "failed to write fixture files\n");
    return 1;
  }
  std::printf("wrote %s (%zu B) and %s (%zu B)\n", argv[1], trace_bytes.size(), argv[2],
              advice_bytes.size());
  return 0;
}

}  // namespace
}  // namespace karousos

int main(int argc, char** argv) { return karousos::Main(argc, argv); }
