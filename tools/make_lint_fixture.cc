// Generates tests/fixtures/lint_bad.{trace,advice}: an honest stacks serve
// whose advice is then corrupted in two independent, lint-detectable ways —
//   * one logged read's dictating-write reference is redirected to an
//     operation position that no log entry occupies (KAR-ADV-003), and
//   * the first write-order entry is appended again at the end, turning the
//     alleged total order into a cycle (KAR-ADV-010).
// Both corruptions survive serialization, so `karousos analyze` and the
// verifier's preprocess stage must both report them from the checked-in
// files. Regenerate with the `make_lint_fixture` build target.
//
// With a third argument, also emits one segmented known-bad fixture pair per
// KAR-SEG rule under <seg-out-dir>: kar-seg-NNN.{trace,advice}.kseg, each a
// KSEG stream carrying exactly one planted defect that the streaming model
// checker (src/analysis/check.h) must report under that rule. Every pair is
// self-checked through CheckSegmentStreams before it is written.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/analysis/check.h"
#include "src/analysis/lint.h"
#include "src/apps/app.h"
#include "src/common/segment.h"
#include "src/server/rollover.h"
#include "src/server/server.h"
#include "src/workload/workload.h"

namespace karousos {
namespace {

bool WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

// One byte-identical fixture pair per KAR-SEG rule. The defects are planted
// against one honest segmented run (epoch size 7) and each stream is verified
// to report exactly the expected rule before anything lands on disk.
int EmitSegmentFixtures(const Trace& trace, const Advice& advice, const std::string& dir) {
  constexpr uint64_t kEpochSize = 7;
  const EpochSlices honest = SliceRun(trace, advice, kEpochSize);
  if (honest.segments.size() < 3) {
    std::fprintf(stderr, "need >= 3 epochs for segment fixtures\n");
    return 1;
  }
  const size_t last = honest.segments.size() - 1;
  const std::vector<uint8_t> honest_trace = EncodeTraceSegments(honest);
  const std::vector<uint8_t> honest_advice = EncodeAdviceSegments(honest);

  // Frame offsets of one encoded stream (for the byte-level recipes).
  auto map_frames = [](const std::vector<uint8_t>& bytes) {
    struct Span {
      uint64_t begin;
      uint64_t end;
      size_t payload_len;
    };
    std::vector<Span> frames;
    std::string error;
    auto reader = SegmentReader::FromBytes(bytes.data(), bytes.size(), &error);
    SegmentRecord rec;
    while (reader != nullptr && reader->Next(&rec)) {
      if (!frames.empty()) {
        frames.back().end = rec.offset;
      }
      frames.push_back(Span{rec.offset, bytes.size(), rec.payload.size()});
    }
    return frames;
  };

  struct Fixture {
    std::string rule;
    std::vector<uint8_t> trace_bytes;
    std::vector<uint8_t> advice_bytes;
  };
  std::vector<Fixture> fixtures;
  auto add_sliced = [&](const char* rule, const EpochSlices& s) {
    fixtures.push_back(Fixture{rule, EncodeTraceSegments(s), EncodeAdviceSegments(s)});
  };

  // KAR-SEG-001: flip one payload byte of the first trace frame — the CRC no
  // longer matches and the container is unreadable at that frame.
  {
    auto frames = map_frames(honest_trace);
    std::vector<uint8_t> b = honest_trace;
    b[frames[0].end - frames[0].payload_len] ^= 0x5a;
    fixtures.push_back(Fixture{kKarSeg001, std::move(b), honest_advice});
  }

  // KAR-SEG-002: a checkpoint frame where an advice frame belongs — readable,
  // but the wrong kind for the stream.
  {
    auto frames = map_frames(honest_advice);
    std::vector<uint8_t> b = honest_advice;
    b[frames[1].begin] = static_cast<uint8_t>(SegmentKind::kCheckpoint);
    fixtures.push_back(Fixture{kKarSeg002, honest_trace, std::move(b)});
  }

  // KAR-SEG-003: swap the advice frames for epochs 1 and 2.
  {
    auto frames = map_frames(honest_advice);
    const auto& f1 = frames[1];
    const auto& f2 = frames[2];
    std::vector<uint8_t> b(honest_advice.begin(),
                           honest_advice.begin() + static_cast<ptrdiff_t>(f1.begin));
    b.insert(b.end(), honest_advice.begin() + static_cast<ptrdiff_t>(f2.begin),
             honest_advice.begin() + static_cast<ptrdiff_t>(f2.end));
    b.insert(b.end(), honest_advice.begin() + static_cast<ptrdiff_t>(f1.begin),
             honest_advice.begin() + static_cast<ptrdiff_t>(f2.begin));
    b.insert(b.end(), honest_advice.begin() + static_cast<ptrdiff_t>(f2.end),
             honest_advice.end());
    fixtures.push_back(Fixture{kKarSeg003, honest_trace, std::move(b)});
  }

  // KAR-SEG-004: a var-log entry from epoch 0 claimed again by the final
  // epoch's slice (with its covering opcount, so the slice-local coverage
  // rule stays quiet and the cross-epoch claim is what fires).
  {
    const Advice& src = honest.segments[0].advice;
    if (!src.var_logs.empty() && !src.var_logs.begin()->second.empty()) {
      EpochSlices s = honest;
      auto vid_it = src.var_logs.begin();
      auto entry_it = vid_it->second.begin();
      s.segments[last].advice.var_logs[vid_it->first].insert(*entry_it);
      auto oc = src.opcounts.find({entry_it->first.rid, entry_it->first.hid});
      if (oc != src.opcounts.end()) {
        s.segments[last].advice.opcounts.insert(*oc);
      }
      add_sliced(kKarSeg004, s);
    }
  }

  // KAR-SEG-005: an opcount row declared again in a later epoch (no log entry
  // alongside it, so the opcount rule is the first to fire).
  if (!honest.segments[0].advice.opcounts.empty()) {
    EpochSlices s = honest;
    s.segments[last].advice.opcounts.insert(*honest.segments[0].advice.opcounts.begin());
    add_sliced(kKarSeg005, s);
  }

  // KAR-SEG-006: a write-order entry from epoch 0's chunk recurring in the
  // final chunk.
  if (!honest.segments[0].advice.write_order.empty()) {
    EpochSlices s = honest;
    s.segments[last].advice.write_order.push_back(
        honest.segments[0].advice.write_order.front());
    add_sliced(kKarSeg006, s);
  }

  // KAR-SEG-007: an epoch-0 request's tag re-announced by the final slice.
  if (!honest.segments[0].advice.tags.empty()) {
    EpochSlices s = honest;
    s.segments[last].advice.tags.insert(*honest.segments[0].advice.tags.begin());
    add_sliced(kKarSeg007, s);
  }

  // KAR-SEG-008: a fabricated continuity import in epoch 0 alleging a log
  // entry the final epoch's slice does not contain.
  if (!honest.segments[0].advice.var_logs.empty()) {
    EpochSlices s = honest;
    ContinuityImports::VarImport imp;
    imp.vid = honest.segments[0].advice.var_logs.begin()->first;
    imp.op = OpRef{last * kEpochSize + 1, 0x1, 1};  // A rid in the final epoch.
    imp.present = true;
    imp.kind = static_cast<uint8_t>(VarLogEntry::Kind::kWrite);
    imp.value = Value("phantom");
    s.segments[0].imports.var_entries.push_back(imp);
    add_sliced(kKarSeg008, s);
  }

  // KAR-SEG-009: redirect one entry's predecessor to an entry of the same
  // variable in a DIFFERENT epoch that transitively points back — a prec
  // cycle no single slice can see. A truthful import covers the forward hop
  // so resolution (and the import confirmation) stays quiet.
  {
    bool planted = false;
    for (const auto& [vid, log] : advice.var_logs) {
      if (planted) {
        break;
      }
      for (const auto& [op_b, entry_b] : log) {
        if (entry_b.kind != VarLogEntry::Kind::kWrite) {
          continue;  // A write target satisfies every kind rule a prec has.
        }
        // Walk B's prec chain looking for an ancestor A in another epoch.
        OpRef cur = entry_b.prec;
        while (!planted && !cur.IsNil()) {
          auto it = log.find(cur);
          if (it == log.end()) {
            break;
          }
          uint64_t epoch_a = EpochOfRid(cur.rid, kEpochSize);
          uint64_t epoch_b = EpochOfRid(op_b.rid, kEpochSize);
          if (epoch_a != epoch_b) {
            EpochSlices s = honest;
            s.segments[epoch_a].advice.var_logs[vid][cur].prec = op_b;
            if (epoch_b > epoch_a) {
              ContinuityImports::VarImport imp;
              imp.vid = vid;
              imp.op = op_b;
              imp.present = true;
              imp.kind = static_cast<uint8_t>(entry_b.kind);
              imp.value = entry_b.value;
              s.segments[epoch_a].imports.var_entries.push_back(imp);
            }
            add_sliced(kKarSeg009, s);
            planted = true;
          }
          cur = it->second.prec;
        }
        if (planted) {
          break;
        }
      }
    }
    if (!planted) {
      std::fprintf(stderr, "no cross-epoch prec chain to corrupt for KAR-SEG-009\n");
      return 1;
    }
  }

  // KAR-SEG-010: drop the final advice frame — the trace stream still has an
  // epoch the advice stream never delivers.
  {
    auto frames = map_frames(honest_advice);
    std::vector<uint8_t> b(honest_advice.begin(),
                           honest_advice.begin() + static_cast<ptrdiff_t>(frames.back().begin));
    fixtures.push_back(Fixture{kKarSeg010, honest_trace, std::move(b)});
  }

  if (fixtures.size() != 10) {
    std::fprintf(stderr, "expected 10 segment fixtures, built %zu\n", fixtures.size());
    return 1;
  }
  for (const Fixture& f : fixtures) {
    CheckResult r = CheckSegmentStreams(f.trace_bytes, f.advice_bytes, kEpochSize);
    if (r.ok || r.rule != f.rule) {
      std::fprintf(stderr, "fixture self-check failed for %s: ok=%d rule=%s reason=%s\n",
                   f.rule.c_str(), r.ok, r.rule.c_str(), r.reason.c_str());
      return 1;
    }
    std::string stem = f.rule;
    for (char& c : stem) {
      c = c == '-' ? '-' : static_cast<char>(std::tolower(c));
    }
    if (!WriteFile(dir + "/" + stem + ".trace.kseg", f.trace_bytes) ||
        !WriteFile(dir + "/" + stem + ".advice.kseg", f.advice_bytes)) {
      std::fprintf(stderr, "failed to write segment fixture for %s\n", f.rule.c_str());
      return 1;
    }
    std::printf("wrote %s/%s.{trace,advice}.kseg (%zu + %zu B)\n", dir.c_str(), stem.c_str(),
                f.trace_bytes.size(), f.advice_bytes.size());
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc != 3 && argc != 4) {
    std::fprintf(stderr, "usage: make_lint_fixture <out-trace> <out-advice> [<seg-out-dir>]\n");
    return 2;
  }

  WorkloadConfig wl;
  wl.app = "stacks";
  wl.kind = WorkloadKind::kMixed;
  wl.requests = 40;
  wl.seed = 7;
  wl.connections = 6;

  AppSpec app = MakeStacksApp();
  ServerConfig config;
  config.concurrency = 6;
  config.seed = 7;
  Server server(*app.program, config);
  ServerRunResult run = server.Run(GenerateWorkload(wl));

  // The segment fixtures plant their own defects into honest slices, so they
  // must be cut before the monolithic lint corruptions below land.
  if (argc == 4) {
    int rc = EmitSegmentFixtures(run.trace, run.advice, argv[3]);
    if (rc != 0) {
      return rc;
    }
  }

  // Corruption 1 (KAR-ADV-003): dangling VarLogEntry::prec. Pick the first
  // logged read and point its dictating write at an opnum no entry holds.
  bool corrupted_prec = false;
  for (auto& [vid, log] : run.advice.var_logs) {
    for (auto& [op, entry] : log) {
      if (entry.kind == VarLogEntry::Kind::kRead) {
        entry.prec = OpRef{op.rid, op.hid, kOpNumInf - 1};
        corrupted_prec = true;
        break;
      }
    }
    if (corrupted_prec) {
      break;
    }
  }
  if (!corrupted_prec) {
    std::fprintf(stderr, "no logged read to corrupt; raise concurrency\n");
    return 1;
  }

  // Corruption 2 (KAR-ADV-010): duplicate write-order entry => cycle.
  if (run.advice.write_order.size() < 2) {
    std::fprintf(stderr, "write order too small to corrupt\n");
    return 1;
  }
  run.advice.write_order.push_back(run.advice.write_order.front());

  // Sanity: the linter must flag exactly the two planted rules.
  bool saw_003 = false;
  bool saw_010 = false;
  for (const LintDiagnostic& d : LintAdvice(run.trace, run.advice)) {
    saw_003 |= d.rule == "KAR-ADV-003";
    saw_010 |= d.rule == "KAR-ADV-010";
  }
  if (!saw_003 || !saw_010) {
    std::fprintf(stderr, "planted corruptions not detected (003=%d, 010=%d)\n", saw_003,
                 saw_010);
    return 1;
  }

  ByteWriter trace_bytes;
  run.trace.Serialize(&trace_bytes);
  ByteWriter advice_bytes;
  run.advice.Serialize(&advice_bytes);
  if (!WriteFile(argv[1], trace_bytes.bytes()) || !WriteFile(argv[2], advice_bytes.bytes())) {
    std::fprintf(stderr, "failed to write fixture files\n");
    return 1;
  }
  std::printf("wrote %s (%zu B) and %s (%zu B)\n", argv[1], trace_bytes.size(), argv[2],
              advice_bytes.size());
  return 0;
}

}  // namespace
}  // namespace karousos

int main(int argc, char** argv) { return karousos::Main(argc, argv); }
